// Heterogeneous-cluster extension: straggler servers / mixed GPU speeds
// (the Pipe-torch scenario the paper cites as related work). Verifies the
// speed plumbing through topology, estimator, runtime and planner.
#include <gtest/gtest.h>

#include "common/error.h"
#include "dapple/dapple.h"

namespace dapple {
namespace {

TEST(Hetero, ClusterSpeedAccessors) {
  const topo::Cluster base = topo::MakeConfigA(2);
  EXPECT_TRUE(base.homogeneous());
  EXPECT_DOUBLE_EQ(base.device_speed(0), 1.0);

  const topo::Cluster mixed = base.WithServerSpeeds({1.0, 0.5});
  EXPECT_FALSE(mixed.homogeneous());
  EXPECT_DOUBLE_EQ(mixed.device_speed(0), 1.0);
  EXPECT_DOUBLE_EQ(mixed.device_speed(8), 0.5);
  EXPECT_DOUBLE_EQ(mixed.server_speed(1), 0.5);

  EXPECT_THROW(base.WithServerSpeeds({1.0}), Error);          // arity
  EXPECT_THROW(base.WithServerSpeeds({1.0, 0.0}), Error);     // non-positive
}

TEST(Hetero, WithServersPreservesSpeeds) {
  const topo::Cluster mixed = topo::MakeConfigA(3).WithServerSpeeds({1.0, 0.5, 2.0});
  const topo::Cluster sliced = mixed.WithServers(2);
  EXPECT_FALSE(sliced.homogeneous());
  EXPECT_DOUBLE_EQ(sliced.server_speed(1), 0.5);
}

TEST(Hetero, StragglerReplicaGatesSplitStage) {
  // A stage replicated across a fast and a slow device: the micro-batch
  // completes when the slow slice does, so latency tracks the straggler.
  const auto m = model::MakeUniformSynthetic(4, 0.010, 0.020, 1_MiB, 1000, 2);
  const topo::Cluster fast = topo::Cluster("pair", 2, 1, topo::DeviceSpec{},
                                           topo::MakeConfigB(2).interconnect());
  const topo::Cluster straggler = fast.WithServerSpeeds({1.0, 0.5});

  planner::ParallelPlan plan;
  plan.model = m.name();
  planner::StagePlan s;
  s.layer_begin = 0;
  s.layer_end = 4;
  s.devices = topo::DeviceSet::Range(0, 2);
  plan.stages = {s};

  runtime::BuildOptions o;
  o.global_batch_size = 16;
  o.micro_batch_size = 4;
  const auto r_fast = runtime::PipelineExecutor(m, fast, plan, o).Run();
  const auto r_slow = runtime::PipelineExecutor(m, straggler, plan, o).Run();
  // The slow replica runs at half speed: its compute takes 2x, and with
  // gradient sync at the end the iteration roughly doubles.
  EXPECT_GT(r_slow.pipeline_latency, 1.8 * r_fast.pipeline_latency);
}

TEST(Hetero, EstimatorUsesSlowestReplica) {
  const auto m = model::MakeUniformSynthetic(4, 0.010, 0.020, 0, 0, 1);
  const topo::Cluster mixed = topo::Cluster("pair", 2, 1, topo::DeviceSpec{},
                                            topo::MakeConfigB(2).interconnect())
                                  .WithServerSpeeds({1.0, 0.25});
  planner::LatencyEstimator est(m, mixed);
  planner::ParallelPlan fast_only;
  fast_only.model = m.name();
  planner::StagePlan s;
  s.layer_begin = 0;
  s.layer_end = 4;
  s.devices = topo::DeviceSet({0});
  fast_only.stages = {s};
  planner::ParallelPlan slow_only = fast_only;
  slow_only.stages[0].devices = topo::DeviceSet({1});

  const auto e_fast = est.Estimate(fast_only, 8);
  const auto e_slow = est.Estimate(slow_only, 8);
  EXPECT_NEAR(e_slow.latency, 4.0 * e_fast.latency, 0.05 * e_slow.latency);
}

TEST(Hetero, PlannerShiftsWorkTowardFastServer) {
  // 2x8 Config-A with server 1 at half speed: the two-stage split must
  // give the slow server fewer BERT layers than the fast one.
  const auto bert = model::MakeBert48();
  const topo::Cluster mixed = topo::MakeConfigA(2).WithServerSpeeds({1.0, 0.5});
  Session session(bert, mixed);
  const auto planned = session.Plan(64);
  ASSERT_GE(planned.plan.num_stages(), 2);

  int fast_layers = 0, slow_layers = 0;
  for (const auto& stage : planned.plan.stages) {
    // A stage counts toward the slowest server it touches.
    double slowest = 1e9;
    for (topo::DeviceId d : stage.devices.devices()) {
      slowest = std::min(slowest, mixed.device_speed(d));
    }
    if (slowest < 1.0) {
      slow_layers += stage.num_layers();
    } else {
      fast_layers += stage.num_layers();
    }
  }
  EXPECT_GT(fast_layers, slow_layers);
  // And the heterogeneous cluster is genuinely slower end to end.
  Session homogeneous(bert, topo::MakeConfigA(2));
  EXPECT_LT(homogeneous.PlanAndRun(64).pipeline_latency,
            session.Run(planned.plan, 64).pipeline_latency);
}

TEST(Hetero, FreshFirstPrefersFasterServers) {
  const topo::Cluster mixed = topo::MakeConfigA(3).WithServerSpeeds({0.5, 2.0, 1.0});
  topo::AllocationState state(mixed);
  const auto set = state.Plan(topo::PlacementPolicy::kFreshFirst, 8);
  ASSERT_TRUE(set.has_value());
  // All eight devices land on server 1 (speed 2.0).
  for (topo::DeviceId d : set->devices()) {
    EXPECT_EQ(mixed.server_of(d), 1);
  }
}

TEST(Hetero, DeterministicPlansOnHeterogeneousClusters) {
  const auto gnmt = model::MakeGnmt16();
  const topo::Cluster mixed = topo::MakeConfigA(2).WithServerSpeeds({1.0, 0.75});
  Session session(gnmt, mixed);
  const auto a = session.Plan(1024);
  const auto b = session.Plan(1024);
  EXPECT_EQ(a.plan.ToDetailedString(), b.plan.ToDetailedString());
}

}  // namespace
}  // namespace dapple
