// Property tests for the scenario layer, pinning the guarantees the
// long-horizon episode driver makes:
//
//   - elastic-up throughput is never below sync-stall on any seeded churn
//     episode (the whole point of re-admitting hardware);
//   - a scale-up cutover never rolls back further than the checkpoint
//     period (the checkpoint-bounded-loss guarantee);
//   - the co-scheduler never double-assigns a device, every per-job
//     pipeline passes the full ScheduleValidator invariant set, and the
//     searched split never loses to the naive even split;
//   - RemapPlanToCluster with growth enabled spreads rejoined devices as
//     extra replicas instead of silently keeping the shrunken plan (the
//     historical bug on the rejoin path);
//   - generated churn scripts round-trip through the FaultScript DSL.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "check/validator.h"
#include "common/units.h"
#include "fault/degrade.h"
#include "fault/recovery.h"
#include "fault/script.h"
#include "model/zoo.h"
#include "planner/dp_planner.h"
#include "scenario/coscheduler.h"
#include "scenario/episode.h"
#include "scenario/fuzz.h"
#include "scenario/stream.h"
#include "topo/cluster.h"

namespace dapple::scenario {
namespace {

/// Lowest `dapple_fuzz --scenario` seed whose episode draws the elastic-up
/// policy AND takes a scale-up cutover (8-layer model, fuzz-2x2(4),
/// rolling maintenance under a V-Half schedule) — found by sweeping seeds
/// 0..120 and pinned so the fuzz corpus always covers the rejoin-growth
/// path end to end.
constexpr std::uint64_t kPinnedScaleUpSeed = 39;

model::ModelProfile TestModel() {
  return model::MakeUniformSynthetic(6, 0.002, 0.004, 1_MiB, 1'000'000);
}

/// Churn shaped so the elastic-up-beats-stall margin is structural, not
/// luck: outages are long relative to the recovery costs below, every
/// outage rejoins, and there is no straggler noise muddying the comparison.
ChurnOptions TestChurn(TimeSec horizon) {
  ChurnOptions churn;
  churn.horizon = horizon;
  churn.preempt_rate = 0.08;
  churn.min_outage = 4.0;
  churn.max_outage = 8.0;
  churn.rejoin_probability = 1.0;
  churn.maintenance_period = 8.0;
  churn.drain_duration = 4.0;
  return churn;
}

fault::FaultOptions TestFaultOptions() {
  fault::FaultOptions options;
  options.build.global_batch_size = 8;
  options.planner.keep_alternatives = 0;
  options.checkpoint_period = 5;
  options.checkpoint_cost = 0.01;
  options.restore_cost = 0.2;
  options.detect_latency = 0.1;
  options.replan_cost = 0.1;
  return options;
}

EpisodeReport RunOne(const model::ModelProfile& m, const topo::Cluster& cluster,
                     const planner::ParallelPlan& plan, std::uint64_t seed,
                     ChurnModel churn, fault::RecoveryPolicy policy) {
  EpisodeOptions options;
  options.seed = seed;
  options.churn = churn;
  options.churn_options = TestChurn(40.0);
  options.policy = policy;
  options.fault = TestFaultOptions();
  return RunEpisode(m, cluster, plan, options);
}

TEST(ScenarioPropertyTest, ElasticUpNeverBelowSyncStallOnChurnCorpus) {
  const model::ModelProfile m = TestModel();
  const topo::Cluster cluster = topo::MakeConfigB(3);
  planner::PlannerOptions po;
  po.global_batch_size = 8;
  po.keep_alternatives = 0;
  const planner::ParallelPlan plan = planner::DapplePlanner(m, cluster, po).Plan().plan;

  for (const ChurnModel churn : {ChurnModel::kSpotChurn, ChurnModel::kRollingMaintenance}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const EpisodeReport stall =
          RunOne(m, cluster, plan, seed, churn, fault::RecoveryPolicy::kSyncStall);
      const EpisodeReport up =
          RunOne(m, cluster, plan, seed, churn, fault::RecoveryPolicy::kElasticUp);
      EXPECT_GE(up.fault.goodput, stall.fault.goodput)
          << "elastic-up lost to sync-stall on churn=" << ToString(churn)
          << " seed=" << seed << " (stall " << stall.fault.goodput << ", elastic-up "
          << up.fault.goodput << " samples/s)";
      EXPECT_GE(stall.preemptions, 1) << "vacuous episode at seed " << seed;
    }
  }
}

TEST(ScenarioPropertyTest, ScaleUpCutoverIsCheckpointBounded) {
  const model::ModelProfile m = TestModel();
  const topo::Cluster cluster = topo::MakeConfigB(3);
  planner::PlannerOptions po;
  po.global_batch_size = 8;
  po.keep_alternatives = 0;
  const planner::ParallelPlan plan = planner::DapplePlanner(m, cluster, po).Plan().plan;

  int episodes_with_scale_up = 0;
  for (const ChurnModel churn : {ChurnModel::kSpotChurn, ChurnModel::kRollingMaintenance}) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const EpisodeReport up =
          RunOne(m, cluster, plan, seed, churn, fault::RecoveryPolicy::kElasticUp);
      EXPECT_LE(up.fault.max_scale_up_rollback, TestFaultOptions().checkpoint_period)
          << "cutover lost more than a checkpoint period on churn=" << ToString(churn)
          << " seed=" << seed;
      if (up.fault.scale_ups > 0) ++episodes_with_scale_up;
    }
  }
  // The corpus must actually exercise the cutover path, or the bound above
  // is vacuous.
  EXPECT_GE(episodes_with_scale_up, 3);
}

TEST(ScenarioPropertyTest, ElasticUpEndsOnTheFullClusterAfterRejoin) {
  // The regression the rejoin path fixes: a crash followed by a rejoin used
  // to leave every policy on the shrunken plan forever (RemapPlanToCluster
  // silently kept the old plan when the cluster grew). Elastic-up must take
  // a scale-up cutover and finish on a plan spanning the full cluster.
  const model::ModelProfile m = TestModel();
  const topo::Cluster cluster = topo::MakeConfigB(2);
  planner::PlannerOptions po;
  po.global_batch_size = 8;
  po.keep_alternatives = 0;
  const planner::ParallelPlan plan = planner::DapplePlanner(m, cluster, po).Plan().plan;

  const fault::FaultScript script = fault::ParseFaultScript(
      "crash device=1 at=2\n"
      "rejoin device=1 at=6\n");
  fault::FaultOptions options = TestFaultOptions();
  options.horizon = 12.0;
  const fault::FaultReport report = fault::RunFaultExperiment(
      m, cluster, plan, script, fault::RecoveryPolicy::kElasticUp, options);

  EXPECT_GE(report.scale_ups, 1);
  bool has_scale_up_row = false;
  for (const fault::TimelineRow& row : report.timeline) {
    if (row.kind == "scale-up") has_scale_up_row = true;
  }
  EXPECT_TRUE(has_scale_up_row) << "no scale-up row in the elastic-up timeline";
  EXPECT_TRUE(report.recovered);

  // The legacy policies must see the same script as crash-permanent: byte-
  // identical to running without the rejoin line.
  const fault::FaultScript permanent = fault::ParseFaultScript("crash device=1 at=2\n");
  for (const auto policy :
       {fault::RecoveryPolicy::kSyncStall, fault::RecoveryPolicy::kCheckpointRestart,
        fault::RecoveryPolicy::kElasticReplan}) {
    const fault::FaultReport with_rejoin =
        fault::RunFaultExperiment(m, cluster, plan, script, policy, options);
    const fault::FaultReport without =
        fault::RunFaultExperiment(m, cluster, plan, permanent, policy, options);
    EXPECT_EQ(with_rejoin.iterations_completed, without.iterations_completed)
        << fault::ToString(policy) << " reacted to a rejoin it cannot use";
    EXPECT_EQ(with_rejoin.goodput, without.goodput) << fault::ToString(policy);
    EXPECT_EQ(with_rejoin.final_plan, without.final_plan) << fault::ToString(policy);
  }
}

TEST(ScenarioPropertyTest, RemapGrowthSpreadsRejoinedDevices) {
  const model::ModelProfile m = TestModel();
  const topo::Cluster cluster = topo::MakeConfigB(3);

  // The plan a policy would be running after losing server 2: two stages on
  // the two survivors.
  planner::ParallelPlan shrunken;
  shrunken.model = m.name();
  shrunken.stages.push_back({0, 3, topo::DeviceSet::Range(0, 1)});
  shrunken.stages.push_back({3, 6, topo::DeviceSet::Range(1, 1)});

  // The cluster after the rejoin: fully healthy again.
  const fault::ClusterState healthy =
      fault::StateAt(fault::FaultScript{}, cluster, 0.0);
  const fault::DegradedCluster grown = fault::MakeDegradedCluster(cluster, healthy);
  ASSERT_EQ(grown.cluster.num_devices(), 3);

  // Historical behaviour (allow_growth=false): the spare device stays idle.
  const auto kept = fault::RemapPlanToCluster(shrunken, grown);
  ASSERT_TRUE(kept.has_value());
  int kept_devices = 0;
  for (const auto& stage : kept->stages) kept_devices += stage.devices.size();
  EXPECT_EQ(kept_devices, 2);

  // Growth mode: the rejoined device becomes an extra replica.
  const auto regrown = fault::RemapPlanToCluster(shrunken, grown, /*allow_growth=*/true);
  ASSERT_TRUE(regrown.has_value());
  int regrown_devices = 0;
  for (const auto& stage : regrown->stages) regrown_devices += stage.devices.size();
  EXPECT_EQ(regrown_devices, 3);

  // Disjointness: no device serves two stages.
  std::set<topo::DeviceId> seen;
  for (const auto& stage : regrown->stages) {
    for (const topo::DeviceId d : stage.devices.devices()) {
      EXPECT_TRUE(seen.insert(d).second) << "device " << d << " double-assigned";
    }
  }
}

TEST(ScenarioPropertyTest, CoSchedulerDisjointValidatedAndNeverWorseThanEven) {
  const model::ModelProfile m = TestModel();
  const topo::Cluster budget = topo::MakeConfigB(5);

  std::vector<JobSpec> jobs;
  jobs.push_back(JobSpec{"heavy", m, 16, 120});
  jobs.push_back(JobSpec{"medium", m, 8, 60});
  jobs.push_back(JobSpec{"light", m, 4, 20});

  CoScheduleOptions options;
  options.planner.keep_alternatives = 0;
  int validated = 0;
  options.pipeline_observer = [&](const runtime::BuiltPipeline& built,
                                  const planner::ParallelPlan& plan,
                                  const topo::Cluster& slice) {
    (void)slice;
    const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
    check::ScheduleValidator validator(plan, built.options);
    const check::ValidationReport report = validator.Validate(built, result);
    EXPECT_TRUE(report.ok()) << "job pipeline failed validation:\n" << report.ToString();
    ++validated;
  };

  const CoScheduleReport report = CoSchedule(budget, jobs, options);
  EXPECT_EQ(validated, 3);
  ASSERT_EQ(report.jobs.size(), 3u);

  // Contiguous, disjoint server ranges inside the budget — no device is
  // ever assigned to two jobs.
  int next = 0;
  for (const JobAssignment& a : report.jobs) {
    EXPECT_EQ(a.server_begin, next);
    EXPECT_GE(a.servers, 1);
    next = a.server_begin + a.servers;
  }
  EXPECT_LE(next, budget.num_servers());

  EXPECT_LE(report.aggregate_makespan, report.naive_even_makespan)
      << "the searched split lost to the naive even split";
  EXPECT_GT(report.utilization, 0.0);
}

TEST(ScenarioPropertyTest, ChurnScriptsRoundTripThroughTheDsl) {
  const topo::Cluster cluster = topo::MakeConfigB(4);
  ChurnOptions churn = TestChurn(30.0);
  churn.slowdown_probability = 0.4;  // exercise the straggler-noise lines too
  for (const ChurnModel model : {ChurnModel::kSpotChurn, ChurnModel::kRollingMaintenance}) {
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
      const fault::FaultScript script = GenerateChurnScript(seed, cluster, model, churn);
      const std::string printed = script.ToString();
      EXPECT_EQ(fault::ParseFaultScript(printed).ToString(), printed)
          << "round trip drifted for churn=" << ToString(model) << " seed=" << seed;
      bool any_rejoin_or_crash = false;
      for (const fault::FaultEvent& e : script.events) {
        if (e.kind == fault::FaultKind::kDeviceCrash) any_rejoin_or_crash = true;
      }
      EXPECT_TRUE(any_rejoin_or_crash) << "churn script without churn at seed " << seed;
    }
  }
}

// Pinned from a `dapple_fuzz --scenario` sweep: the lowest seed whose
// episode takes a scale-up cutover (rejoin-driven growth replan) under the
// elastic-up policy — the closest the corpus came to the historical
// keep-the-old-plan bug. Must stay green and must keep exercising that
// path.
TEST(ScenarioPropertyTest, PinnedScaleUpFuzzSeedStaysGreen) {
  const ScenarioFuzzCase c = MakeScenarioFuzzCase(kPinnedScaleUpSeed);
  EXPECT_EQ(c.policy, fault::RecoveryPolicy::kElasticUp) << c.Describe();
  const ScenarioFuzzOutcome out = RunScenarioFuzzCase(c);
  EXPECT_TRUE(out.ok()) << out.Summary();
  EXPECT_GE(out.scale_ups, 1) << "pinned seed no longer exercises the cutover path: "
                              << c.Describe();
}

}  // namespace
}  // namespace dapple::scenario
