// Golden-file test for the scenario layer's Chrome trace: a seeded
// rolling-maintenance episode under the elastic-up policy must serialize
// byte-for-byte. The trace pins the pieces that make elastic-up different
// from the legacy policies — outage windows that *close* at each rejoin
// instead of running to the horizon, zero-width rejoin markers, and the
// scale-up cutover rows on the recovery track.
//
// To regenerate after an intentional change:
//
//   DAPPLE_REGEN_GOLDEN=1 ctest -L golden
//
// then review the diffs under tests/golden/ by hand.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/units.h"
#include "model/zoo.h"
#include "planner/dp_planner.h"
#include "scenario/episode.h"
#include "scenario/report.h"
#include "topo/cluster.h"

namespace dapple::scenario {
namespace {

std::string GoldenPath(const char* file) {
  return std::string(DAPPLE_GOLDEN_DIR) + "/" + file;
}

void CompareAgainstGolden(const std::string& rendered, const std::string& path) {
  if (std::getenv("DAPPLE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    GTEST_SKIP() << "regenerated " << path << "; review the diff";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with DAPPLE_REGEN_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();

  EXPECT_EQ(rendered, golden.str())
      << "output drifted from " << path
      << "; if intentional, regenerate with DAPPLE_REGEN_GOLDEN=1 and review";
}

EpisodeReport RunRollingElasticUpEpisode() {
  // Exact-representable layer times (2 ms / 4 ms) as in trace_golden_test.
  const auto m = model::MakeUniformSynthetic(6, 0.002, 0.004, 1_MiB, 1'000'000);
  const topo::Cluster cluster = topo::MakeConfigB(3);
  planner::PlannerOptions po;
  po.global_batch_size = 8;
  po.keep_alternatives = 0;
  const planner::ParallelPlan plan = planner::DapplePlanner(m, cluster, po).Plan().plan;

  EpisodeOptions options;
  options.seed = 7;
  options.churn = ChurnModel::kRollingMaintenance;
  options.churn_options.horizon = 24.0;
  options.churn_options.maintenance_period = 8.0;
  options.churn_options.drain_duration = 4.0;
  options.policy = fault::RecoveryPolicy::kElasticUp;
  options.fault.build.global_batch_size = 8;
  options.fault.planner.keep_alternatives = 0;
  // Exact-representable recovery costs sized well below the 4 s drains.
  options.fault.checkpoint_cost = 0.015625;
  options.fault.restore_cost = 0.25;
  options.fault.detect_latency = 0.125;
  options.fault.replan_cost = 0.125;
  return RunEpisode(m, cluster, plan, options);
}

TEST(ScenarioGoldenTest, RollingMaintenanceElasticUpTraceMatchesGolden) {
  const EpisodeReport report = RunRollingElasticUpEpisode();
  // Sanity before byte-comparison: the episode must actually exercise the
  // rejoin-and-scale-up path, or the golden pins a trivial timeline.
  EXPECT_GE(report.rejoins, 1);
  EXPECT_GE(report.fault.scale_ups, 1);
  EXPECT_GE(report.preemptions, 2);
  CompareAgainstGolden(ToChromeTrace(report),
                       GoldenPath("scenario_trace_rolling_elastic_up.json"));
}

TEST(ScenarioGoldenTest, RollingMaintenanceEpisodeJsonMatchesGolden) {
  CompareAgainstGolden(ToJson(RunRollingElasticUpEpisode()),
                       GoldenPath("scenario_episode_rolling_elastic_up.json"));
}

}  // namespace
}  // namespace dapple::scenario
