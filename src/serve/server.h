// Planner-as-a-service core: the request handler behind `dapple serve`.
//
// A Server answers protocol requests (serve/protocol.h) against one
// process-wide plan cache: a capacity-bounded, sharded LRU keyed by the
// canonical fingerprint of (model, cluster, global batch, schedule kind,
// memory cap, recompute policy, planner options). Identical requests return
// byte-identical cached plans without re-searching — the plan-reuse idiom
// of poplibs' ConvPlan cache applied to pipeline planning. Eviction and
// cache races only ever cost a re-search, never correctness: the parallel
// planner is byte-deterministic, so a recomputed entry equals the evicted
// one.
//
// Concurrency: HandleBatch fans request lines across a sim::BatchRunner
// worker pool and returns responses slot-indexed in request order, so the
// response stream is byte-identical at every worker count. To keep that
// guarantee, response bodies carry no cache status and no wall-clock
// timing; those surface through the "stats" request kind and the
// MetricsRegistry (serve.requests, serve.cache.{hits,misses,evictions},
// serve.latency.<kind> histograms with p50/p95/p99).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sharded_cache.h"
#include "planner/dp_planner.h"
#include "serve/protocol.h"
#include "sim/batch.h"

namespace dapple::serve {

struct ServerOptions {
  /// Worker threads requests fan across: 1 = inline on the caller (the
  /// degenerate case determinism tests compare against), 0 = hardware
  /// concurrency, n > 1 = a pool of n.
  int workers = 1;
  /// Total plan-cache capacity in entries (split across shards, min 1 per
  /// shard). A plan entry is a few hundred bytes, so thousands are cheap.
  long cache_entries = 1024;
  /// Plan-cache lock shards (rounded up to a power of two).
  int cache_shards = 8;
  /// Largest number of request lines one HandleBatch call dispatches.
  int max_batch = 64;
  /// Per-shard LRU bound handed to each planner run's stage-cost cache so
  /// a long-lived daemon's memo tables stay bounded too.
  long stage_cache_entries_per_shard = 1 << 15;
};

/// Point-in-time server statistics (also rendered by the "stats" request).
struct ServerStats {
  std::int64_t requests = 0;
  std::int64_t plans = 0;
  std::int64_t simulates = 0;
  std::int64_t reports = 0;
  std::int64_t stats_requests = 0;
  std::int64_t errors = 0;
  CacheShardStats cache;  // aggregate over plan-cache shards
  long cache_capacity = 0;
  int workers = 1;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  const ServerOptions& options() const { return options_; }
  int workers() const;

  /// Handles one request line, returning one response document (no
  /// trailing newline). Never throws: every failure becomes a structured
  /// error response.
  std::string HandleLine(const std::string& line);

  /// Handles a batch of request lines across the worker pool; responses
  /// match `lines` by index regardless of scheduling.
  std::vector<std::string> HandleBatch(const std::vector<std::string>& lines);

  ServerStats Stats() const;

 private:
  /// One cached planning result; shared_ptr so cache copies stay cheap.
  struct PlanEntry {
    planner::ParallelPlan plan;
    planner::PlanEstimate estimate;
    std::string plan_text;  // SerializePlan(plan), the byte-stable form
    int recompute_stages = 0;
  };
  using PlanEntryPtr = std::shared_ptr<const PlanEntry>;

  std::string Dispatch(const ServeRequest& request);
  std::string HandlePlan(const ServeRequest& request);
  std::string HandleSimulate(const ServeRequest& request);
  std::string HandleReport(const ServeRequest& request);
  std::string HandleStats(const ServeRequest& request);

  /// The cached (or freshly planned and inserted) result for a request.
  PlanEntryPtr PlanFor(const ServeRequest& request, std::uint64_t* fingerprint);

  void ExportCacheCounters();

  ServerOptions options_;
  ShardedCache<std::uint64_t, PlanEntryPtr> cache_;
  sim::BatchRunner runner_;

  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> plans_{0};
  std::atomic<std::int64_t> simulates_{0};
  std::atomic<std::int64_t> reports_{0};
  std::atomic<std::int64_t> stats_requests_{0};
  std::atomic<std::int64_t> errors_{0};
  /// Eviction count already forwarded to the metrics counter (evictions are
  /// tallied inside the cache; the registry wants monotonic increments).
  std::atomic<std::int64_t> exported_evictions_{0};
};

}  // namespace dapple::serve
