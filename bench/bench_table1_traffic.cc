// Table I: traffic volume — activation size at the planner's partition
// boundary vs. full-model gradient size, per benchmark model.
#include "harness.h"

#include <cstdio>

#include "common/table.h"

using namespace dapple;

int main() {
  bench::PrintHeader("Table I — traffic volume (boundary activations vs gradients)",
                     "DAPPLE paper, Table I");

  struct PaperRow {
    const char* name;
    double act_mb;     // activation at partition boundary
    double grad_gb;    // gradient size
    long gbs;
    char config;       // config whose plan defines the boundary
  };
  const PaperRow paper_rows[] = {
      {"GNMT-16", 26.0, 1.1, 1024, 'A'},  {"BERT-48", 8.8, 2.8, 64, 'A'},
      {"XLNet-36", 4.2, 2.1, 128, 'A'},   {"AmoebaNet-36", 11.2, 3.7, 128, 'A'},
      {"VGG-19", 6.0, 0.55, 2048, 'C'},
  };

  AsciiTable table({"Benchmark", "Boundary act (paper)", "Boundary act (measured)",
                    "Gradients (paper)", "Gradients (measured)"});
  for (const PaperRow& row : paper_rows) {
    const model::ModelProfile m = model::ModelByName(row.name);
    const topo::Cluster cluster = bench::SixteenDeviceConfig(row.config);
    Session session(m, cluster);
    const auto planned = session.Plan(row.gbs);

    // Activation crossing the first stage boundary at the profile
    // micro-batch (the paper measures per profile batch).
    Bytes act = 0;
    if (planned.plan.num_stages() > 1) {
      act = m.ActivationAt(planned.plan.stages[0].layer_end, m.profile_micro_batch());
    } else {
      // DP plan: report the mid-model boundary the paper used.
      act = m.ActivationAt(m.num_layers() / 2, m.profile_micro_batch());
    }
    table.AddRow({row.name, AsciiTable::Num(row.act_mb, 1) + "MB", FormatBytes(act),
                  AsciiTable::Num(row.grad_gb, 2) + "GB",
                  FormatBytes(m.TotalParamBytes())});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nShape check: boundary activations are MBs while gradients are GBs;\n"
              "this asymmetry is what makes 'NVLink for gradients, Ethernet for\n"
              "activations' (Fig. 2) the winning device mapping.\n");
  return 0;
}
