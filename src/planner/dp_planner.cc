#include "planner/dp_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "topo/assignment.h"

namespace dapple::planner {

namespace {

/// Canonical allocation key. Identical servers are interchangeable, so on
/// homogeneous clusters two allocations with the same sorted per-server
/// used counts lead to equivalent futures; on heterogeneous clusters the
/// server identity matters and the counts stay positional.
std::string CanonicalKey(const topo::AllocationState& state) {
  std::vector<int> counts;
  counts.reserve(static_cast<std::size_t>(state.cluster().num_servers()));
  for (int s = 0; s < state.cluster().num_servers(); ++s) {
    counts.push_back(state.used_on_server(s));
  }
  if (state.cluster().homogeneous()) {
    std::sort(counts.begin(), counts.end());
  }
  std::string key;
  for (int c : counts) {
    key += std::to_string(c);
    key += ',';
  }
  return key;
}

struct SearchNode {
  std::vector<StagePlan> prefix;  // stages covering layers [0, prefix_end)
  topo::AllocationState state;
  double tpl = 0.0;  // latency of prefix + default suffix (the paper's TPL)
};

}  // namespace

DapplePlanner::DapplePlanner(const model::ModelProfile& model, const topo::Cluster& cluster,
                             PlannerOptions options)
    : model_(&model), cluster_(&cluster), options_(options) {
  DAPPLE_CHECK_GT(options_.global_batch_size, 0) << "planner needs a global batch size";
}

PlanEstimate DapplePlanner::Evaluate(const ParallelPlan& plan) const {
  LatencyEstimator estimator(*model_, *cluster_, options_.latency);
  return estimator.Estimate(plan, options_.global_batch_size);
}

PlanResult DapplePlanner::Plan() const {
  const int num_layers = model_->num_layers();
  const int num_devices = cluster_->num_devices();
  const int max_stages =
      options_.max_stages > 0 ? options_.max_stages : num_devices;
  DAPPLE_CHECK_GT(num_devices, 0);

  LatencyEstimator estimator(*model_, *cluster_, options_.latency);

  PlanResult best;
  best.estimate.feasible = false;
  best.estimate.latency = std::numeric_limits<TimeSec>::infinity();
  // Track the best infeasible plan too so error messages are informative.
  std::string last_infeasible;
  long evaluated = 0;
  long pruned = 0;

  // Top-k distinct feasible candidates for simulator re-ranking. The
  // signature set mirrors `alternatives` so a merge is one set lookup, not
  // O(k) signature rebuilds of every stored alternative.
  struct Alternative {
    ParallelPlan plan;
    PlanEstimate estimate;
    std::string sig;
  };
  std::vector<Alternative> alternatives;
  std::set<std::string> alternative_sigs;
  auto plan_signature = [](const ParallelPlan& p) {
    std::string sig;
    for (const StagePlan& s : p.stages) {
      sig += std::to_string(s.layer_begin) + "-" + std::to_string(s.layer_end) + "@";
      for (topo::DeviceId d : s.devices.devices()) sig += std::to_string(d) + ",";
      sig += "|";
    }
    return sig;
  };
  auto record_candidate = [&](const ParallelPlan& plan, const PlanEstimate& est) {
    if (options_.keep_alternatives <= 0) return;
    std::string sig = plan_signature(plan);
    if (!alternative_sigs.insert(sig).second) return;
    alternatives.push_back({plan, est, std::move(sig)});
    std::sort(alternatives.begin(), alternatives.end(), [](const auto& a, const auto& b) {
      return a.estimate.latency < b.estimate.latency;
    });
    while (static_cast<int>(alternatives.size()) > options_.keep_alternatives) {
      alternative_sigs.erase(alternatives.back().sig);
      alternatives.pop_back();
    }
  };

  // Builds the complete plan for a prefix: remaining layers on all free
  // devices. Pure (thread-safe); returns nullopt when no device is free.
  auto build_completed = [&](const SearchNode& node,
                             int prefix_end) -> std::optional<ParallelPlan> {
    std::vector<topo::DeviceId> free;
    for (topo::DeviceId d = 0; d < num_devices; ++d) {
      if (!node.state.is_used(d)) free.push_back(d);
    }
    if (free.empty()) return std::nullopt;
    ParallelPlan plan;
    plan.model = model_->name();
    plan.stages = node.prefix;
    StagePlan last;
    last.layer_begin = prefix_end;
    last.layer_end = num_layers;
    last.devices = topo::DeviceSet(std::move(free));
    plan.stages.push_back(std::move(last));
    return plan;
  };

  // Sequential merge of an evaluated candidate into the incumbent state.
  auto merge = [&](const ParallelPlan& plan, const PlanEstimate& est) -> std::optional<double> {
    ++evaluated;
    if (!est.feasible) {
      last_infeasible = est.infeasible_reason;
      return std::nullopt;
    }
    record_candidate(plan, est);
    if (est.latency < best.estimate.latency || !best.estimate.feasible) {
      best.plan = plan;
      best.estimate = est;
    }
    return est.latency;
  };

  auto complete = [&](const SearchNode& node, int prefix_end) -> std::optional<double> {
    auto plan = build_completed(node, prefix_end);
    if (!plan) return std::nullopt;
    const PlanEstimate est = estimator.Estimate(*plan, options_.global_batch_size);
    return merge(*plan, est);
  };

  // Level-by-level DP: frontier[j] holds the best node per canonical
  // allocation key whose prefix covers layers [0, j).
  std::vector<std::map<std::string, SearchNode>> frontier(
      static_cast<std::size_t>(num_layers));
  {
    SearchNode root{{}, topo::AllocationState(*cluster_), 0.0};
    auto tpl = complete(root, 0);
    root.tpl = tpl.value_or(std::numeric_limits<double>::infinity());
    frontier[0].emplace(CanonicalKey(root.state), std::move(root));
  }

  // One candidate expansion of a frontier node: carve stage [j, jp) onto
  // `devices`, completing the rest with the default suffix.
  struct Expansion {
    SearchNode child;
    int jp = 0;
    std::optional<ParallelPlan> completed;
    PlanEstimate estimate;
  };

  for (int j = 0; j < num_layers; ++j) {
    // Phase 1 (sequential, cheap): enumerate this level's expansions.
    std::vector<Expansion> expansions;
    for (auto& [key, node] : frontier[static_cast<std::size_t>(j)]) {
      (void)key;
      if (static_cast<int>(node.prefix.size()) + 1 >= max_stages) continue;
      // Nodes whose default-suffix completion was infeasible (tpl = inf)
      // must stay expandable: splitting the suffix further may restore
      // memory feasibility (this is exactly how AmoebaNet-36, which cannot
      // run data-parallel, still gets planned).
      if (options_.prune_slack > 0.0 && best.estimate.feasible &&
          std::isfinite(node.tpl) &&
          node.tpl > best.estimate.latency * options_.prune_slack) {
        ++pruned;
        continue;
      }
      const int free_devices = node.state.num_free();
      for (int m = 1; m < free_devices; ++m) {
        // Distinct device sets for this size; on fresh or flat clusters the
        // three policies frequently coincide.
        std::vector<topo::DeviceSet> placements;
        std::vector<topo::PlacementPolicy> placement_policies;
        const std::vector<topo::PlacementPolicy>& policy_set =
            options_.policies.empty() ? topo::AllPlacementPolicies() : options_.policies;
        for (topo::PlacementPolicy policy : policy_set) {
          auto devices = node.state.Plan(policy, m);
          if (!devices) continue;
          if (std::find(placements.begin(), placements.end(), *devices) !=
              placements.end()) {
            continue;
          }
          placements.push_back(std::move(*devices));
          placement_policies.push_back(policy);
        }
        for (std::size_t p = 0; p < placements.size(); ++p) {
          for (int jp = j + 1; jp < num_layers; ++jp) {
            Expansion e{SearchNode{node.prefix, node.state, 0.0}, jp, std::nullopt, {}};
            StagePlan stage;
            stage.layer_begin = j;
            stage.layer_end = jp;
            stage.devices = placements[p];
            stage.policy = placement_policies[p];
            e.child.prefix.push_back(std::move(stage));
            e.child.state.Commit(placements[p]);
            e.completed = build_completed(e.child, jp);
            expansions.push_back(std::move(e));
          }
        }
      }
    }

    // Phase 2 (parallel, hot): evaluate every completed candidate. The
    // estimator is pure, so evaluations are independent; results land in
    // their own slots.
    ThreadPool::Shared().ParallelFor(expansions.size(), [&](std::size_t i) {
      Expansion& e = expansions[i];
      if (e.completed) {
        e.estimate = estimator.Estimate(*e.completed, options_.global_batch_size);
      }
    });
    obs::MetricsRegistry::Global()
        .histogram("planner.level_expansions")
        .Observe(static_cast<double>(expansions.size()));

    // Phase 3 (sequential, deterministic): merge in enumeration order —
    // identical outcomes to the single-threaded search.
    for (Expansion& e : expansions) {
      std::optional<double> tpl;
      if (e.completed) tpl = merge(*e.completed, e.estimate);
      e.child.tpl = tpl.value_or(std::numeric_limits<double>::infinity());
      const std::string child_key = CanonicalKey(e.child.state);
      auto& level = frontier[static_cast<std::size_t>(e.jp)];
      auto it = level.find(child_key);
      if (it == level.end() || e.child.tpl < it->second.tpl) {
        level.insert_or_assign(child_key, std::move(e.child));
      }
    }
    // Free processed level early; the search only moves forward.
    frontier[static_cast<std::size_t>(j)].clear();
  }

  best.candidates_evaluated = evaluated;
  best.alternatives.reserve(alternatives.size());
  for (Alternative& alt : alternatives) {
    best.alternatives.emplace_back(std::move(alt.plan), alt.estimate);
  }

  {
    auto& metrics = obs::MetricsRegistry::Global();
    metrics.counter("planner.plans").Increment();
    metrics.counter("planner.candidates_evaluated").Increment(evaluated);
    metrics.counter("planner.candidates_pruned").Increment(pruned);
  }

  // Pin the pure data-parallel plan into the alternatives (appended past
  // the top-k cut if necessary): it is the paper's universal baseline and
  // the simulator re-ranking should always get to veto in its favour.
  if (options_.keep_alternatives > 0 && best.estimate.feasible) {
    ParallelPlan dp;
    dp.model = model_->name();
    StagePlan all;
    all.layer_begin = 0;
    all.layer_end = num_layers;
    all.devices = topo::DeviceSet::Range(0, num_devices);
    dp.stages.push_back(std::move(all));
    const PlanEstimate dp_est = estimator.Estimate(dp, options_.global_batch_size);
    if (dp_est.feasible) {
      bool present = false;
      for (const auto& [p, e] : best.alternatives) {
        (void)e;
        if (p.IsDataParallel()) {
          present = true;
          break;
        }
      }
      if (!present) best.alternatives.emplace_back(std::move(dp), dp_est);
    }
  }

  if (!best.estimate.feasible) {
    std::ostringstream os;
    os << "no feasible plan for " << model_->name() << " on " << cluster_->name() << " ("
       << num_devices << " devices)";
    if (!last_infeasible.empty()) os << ": " << last_infeasible;
    throw Error(os.str());
  }
  DAPPLE_LOG_INFO << "planned " << model_->name() << " on " << cluster_->name() << ": "
                  << best.plan.ToString() << " (evaluated " << evaluated << " candidates)";
  return best;
}

}  // namespace dapple::planner
