#include "check/fuzz.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "common/rng.h"
#include "common/units.h"
#include "fault/degrade.h"
#include "planner/dp_planner.h"
#include "planner/latency.h"
#include "planner/prefilter.h"
#include "sim/batch.h"
#include "sim/engine.h"
#include "sim/soa.h"
#include "topo/device_set.h"

namespace dapple::check {

namespace {

model::ModelProfile RandomModel(Rng& rng) {
  const int layers = static_cast<int>(rng.UniformInt(2, 12));
  std::vector<model::LayerProfile> list;
  list.reserve(static_cast<std::size_t>(layers));
  for (int i = 0; i < layers; ++i) {
    model::LayerProfile l;
    l.name = "l" + std::to_string(i);
    l.forward_time = rng.Uniform(0.001, 0.05);
    l.backward_time = l.forward_time * rng.Uniform(1.5, 2.5);
    l.fixed_overhead = rng.Uniform(0.0, 0.001);
    l.output_activation = static_cast<Bytes>(rng.UniformInt(0, 32)) * 1_MiB;
    l.activation_memory = l.output_activation * 2 + 1_KiB;
    l.param_count = static_cast<std::uint64_t>(rng.UniformInt(0, 20'000'000));
    list.push_back(std::move(l));
  }
  const auto optimizer = static_cast<model::OptimizerKind>(rng.UniformInt(0, 2));
  return model::ModelProfile("fuzz", std::move(list),
                             static_cast<int>(rng.UniformInt(1, 4)), optimizer);
}

topo::Cluster RandomCluster(Rng& rng) {
  topo::Cluster cluster = [&] {
    switch (rng.UniformInt(0, 3)) {
      case 0: return topo::MakeConfigA(1);  // 8 devices, NVLink inside
      case 1: return topo::MakeConfigB(static_cast<int>(rng.UniformInt(2, 4)));
      case 2: return topo::MakeConfigC(static_cast<int>(rng.UniformInt(2, 4)));
      default:  // two small multi-GPU servers: placement policies diverge
        return topo::Cluster("fuzz-2x2", 2, 2, topo::DeviceSpec{},
                             topo::InterconnectSpec{});
    }
  }();
  if (rng.Bernoulli(0.25)) {
    std::vector<double> speeds(static_cast<std::size_t>(cluster.num_servers()));
    for (double& s : speeds) s = rng.Uniform(0.5, 1.0);
    cluster = cluster.WithServerSpeeds(std::move(speeds));
  }
  return cluster;
}

planner::ParallelPlan RandomPlan(Rng& rng, const model::ModelProfile& m,
                                 const topo::Cluster& cluster) {
  const int max_stages =
      std::min({m.num_layers(), cluster.num_devices(), 4});
  const int stages = static_cast<int>(rng.UniformInt(1, max_stages));
  std::vector<int> splits = {0, m.num_layers()};
  while (static_cast<int>(splits.size()) < stages + 1) {
    const int s = static_cast<int>(rng.UniformInt(1, m.num_layers() - 1));
    if (std::find(splits.begin(), splits.end(), s) == splits.end()) splits.push_back(s);
  }
  std::sort(splits.begin(), splits.end());
  planner::ParallelPlan plan;
  plan.model = m.name();
  int next_dev = 0;
  for (std::size_t i = 0; i + 1 < splits.size(); ++i) {
    const int remaining_stages = static_cast<int>(splits.size() - 2 - i);
    const int available = cluster.num_devices() - next_dev - remaining_stages;
    const int r = static_cast<int>(rng.UniformInt(1, std::max(1, std::min(available, 4))));
    planner::StagePlan sp;
    sp.layer_begin = splits[i];
    sp.layer_end = splits[i + 1];
    sp.devices = topo::DeviceSet::Range(next_dev, r);
    next_dev += r;
    plan.stages.push_back(std::move(sp));
  }
  return plan;
}

}  // namespace

std::string FuzzCase::Describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " model=" << model.num_layers() << "L/pmb"
     << model.profile_micro_batch() << " cluster=" << cluster.name() << "("
     << cluster.num_devices() << ") plan=" << plan.ToString() << " gbs="
     << options.global_batch_size << " " << runtime::ToString(options.schedule.kind) << "/"
     << runtime::ToString(options.schedule.warmup)
     << (options.schedule.recompute ? "/recompute" : "");
  if (options.schedule.warmup_override > 0) {
    os << "/K=" << options.schedule.warmup_override;
  }
  os << " " << runtime::ToString(options.replication)
     << (options.enforce_memory_capacity ? " capped" : " uncapped");
  return os.str();
}

FuzzCase MakeFuzzCase(std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull);
  model::ModelProfile model = RandomModel(rng);
  topo::Cluster cluster = RandomCluster(rng);

  runtime::BuildOptions options;
  options.global_batch_size =
      rng.UniformInt(1, 6) * 4 * model.profile_micro_batch();
  // The kind draw lives on its own salted side-stream (same rationale as
  // the fault-script stream below): when the schedule space grew past two
  // kinds, replacing this draw in the main stream would have shifted every
  // later model/cluster/plan draw and silently rewritten the pinned
  // regression seeds. The legacy Bernoulli is still consumed so the main
  // stream stays bit-identical to the two-kind era.
  (void)rng.Bernoulli(0.5);
  Rng kind_rng(seed * 0x9e3779b97f4a7c15ull + 0xa0761d6478bd642full);
  const auto& kinds = runtime::AllScheduleKinds();
  options.schedule.kind = kinds[static_cast<std::size_t>(
      kind_rng.UniformInt(0, static_cast<std::int64_t>(kinds.size()) - 1))];
  options.schedule.warmup = rng.Bernoulli(0.5) ? runtime::WarmupPolicy::kPA
                                               : runtime::WarmupPolicy::kPB;
  options.schedule.recompute = rng.Bernoulli(0.3);
  if (rng.Bernoulli(0.2)) {
    options.schedule.warmup_override = static_cast<int>(rng.UniformInt(1, 3));
  }
  options.replication = rng.Bernoulli(0.7) ? runtime::ReplicationMode::kSplitMicroBatch
                                           : runtime::ReplicationMode::kRoundRobin;
  options.enforce_memory_capacity = rng.Bernoulli(0.5);
  options.overlap_allreduce = rng.Bernoulli(0.5);

  // Most seeds exercise arbitrary hand-rolled plans; every seventh runs the
  // real planner so its output is differentially validated too.
  planner::ParallelPlan plan;
  bool planned = false;
  if (seed % 7 == 0 && cluster.num_devices() <= 4) {
    try {
      planner::PlannerOptions po;
      po.global_batch_size = options.global_batch_size;
      po.latency.check_memory = false;
      po.keep_alternatives = 0;
      plan = planner::DapplePlanner(model, cluster, po).Plan().plan;
      planned = true;
    } catch (const Error&) {
      // Fall through to a random plan; infeasibility is not a fuzz failure.
    }
  }
  if (!planned) plan = RandomPlan(rng, model, cluster);

  return FuzzCase{seed, std::move(model), std::move(cluster), std::move(plan),
                  std::move(options)};
}

std::string FuzzOutcome::Summary() const {
  if (ok()) return "";
  std::ostringstream os;
  os << "fuzz case failed (reproduce with seed " << seed << "):\n";
  if (!report.ok()) os << report.ToString();
  if (!latency_bracketed) {
    os << "  analytic latency " << analytic_latency << " vs simulated makespan "
       << simulated_makespan
       << " outside the tolerance bracket (see check/fuzz.h)\n";
  }
  if (!peak_independent) {
    os << "  DAPPLE peak memory depends on M: " << peak_at_m << " B at M vs " << peak_at_2m
       << " B at 2M\n";
  }
  return os.str();
}

std::string MemoryCapFuzzCase::Describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " model=" << model.num_layers() << "L/pmb"
     << model.profile_micro_batch() << " cluster=" << cluster.name() << "("
     << cluster.num_devices() << ") gbs=" << global_batch_size << " "
     << runtime::ToString(kind) << " cap=" << FormatBytes(memory_cap)
     << " recompute=" << planner::ToString(recompute);
  return os.str();
}

MemoryCapFuzzCase MakeMemoryCapFuzzCase(std::uint64_t seed) {
  // The memory-cap mode owns its own salted stream (same rationale as the
  // fault stream): draws added here can never shift the schedule/fault
  // streams and silently rewrite their pinned regression seeds.
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x589965cc75374cc3ull);
  model::ModelProfile model = RandomModel(rng);
  // Small clusters only: every seed runs the real planner (twice — once to
  // scale the cap, once under it), and the DP search is exponential in
  // device count.
  topo::Cluster cluster = [&] {
    switch (rng.UniformInt(0, 2)) {
      case 0: return topo::MakeConfigB(static_cast<int>(rng.UniformInt(2, 4)));
      case 1: return topo::MakeConfigC(static_cast<int>(rng.UniformInt(2, 4)));
      default:
        return topo::Cluster("fuzz-2x2", 2, 2, topo::DeviceSpec{},
                             topo::InterconnectSpec{});
    }
  }();
  const long gbs = rng.UniformInt(1, 6) * 4 * model.profile_micro_batch();
  const auto& kinds = runtime::AllScheduleKinds();
  const runtime::ScheduleKind kind = kinds[static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<std::int64_t>(kinds.size()) - 1))];
  const planner::RecomputePolicy policy = rng.Bernoulli(0.7)
                                              ? planner::RecomputePolicy::kAuto
                                              : planner::RecomputePolicy::kOff;
  const double factor = rng.Uniform(0.25, 1.3);

  // Scale the cap off the uncapped plan's family peak so the draw lands on
  // both sides of feasibility; fall back to the device memory if even the
  // uncapped search is structurally infeasible (the capped run will then
  // throw the same way, which is a valid outcome).
  Bytes reference_peak = cluster.device().memory;
  try {
    planner::PlannerOptions po;
    po.global_batch_size = gbs;
    po.latency.check_memory = false;
    po.latency.schedule_kind = kind;
    po.keep_alternatives = 0;
    po.num_threads = 1;
    const planner::PlanResult uncapped =
        planner::DapplePlanner(model, cluster, po).Plan();
    if (uncapped.estimate.max_peak_memory > 0) {
      reference_peak = uncapped.estimate.max_peak_memory;
    }
  } catch (const Error&) {
  }
  const Bytes cap =
      std::max<Bytes>(1, static_cast<Bytes>(factor * static_cast<double>(reference_peak)));
  return MemoryCapFuzzCase{seed, std::move(model), std::move(cluster),
                           kind, gbs,              cap,
                           policy};
}

std::string MemoryCapFuzzOutcome::Summary() const {
  if (ok()) return "";
  std::ostringstream os;
  os << "memory-cap fuzz case failed (reproduce with seed " << seed << "):\n"
     << report.ToString();
  return os.str();
}

MemoryCapFuzzOutcome RunMemoryCapFuzzCase(const MemoryCapFuzzCase& c) {
  MemoryCapFuzzOutcome out;
  out.seed = c.seed;
  out.kind = c.kind;
  out.memory_cap = c.memory_cap;

  planner::PlannerOptions po;
  po.global_batch_size = c.global_batch_size;
  po.memory_cap = c.memory_cap;
  po.recompute = c.recompute;
  po.latency.schedule_kind = c.kind;
  po.keep_alternatives = 0;
  po.num_threads = 1;

  planner::PlanResult planned;
  try {
    planned = planner::DapplePlanner(c.model, c.cluster, po).Plan();
  } catch (const Error& e) {
    // Declared infeasible: the contract allows refusal, never an OOMing
    // plan.
    out.infeasible_reason = e.what();
    return out;
  }
  out.planned = true;
  out.analytic_peak = planned.estimate.max_peak_memory;
  for (const planner::StagePlan& s : planned.plan.stages) {
    if (c.recompute == planner::RecomputePolicy::kAll || s.recompute) {
      ++out.recompute_stages;
    }
  }
  if (out.analytic_peak > c.memory_cap) {
    out.report.violations.push_back(
        {"planner-cap", "planner accepted a plan whose analytic peak " +
                            FormatBytes(out.analytic_peak) + " exceeds the cap " +
                            FormatBytes(c.memory_cap)});
  }

  runtime::BuildOptions bo;
  bo.global_batch_size = c.global_batch_size;
  bo.schedule.kind = c.kind;
  bo.schedule.recompute = c.recompute == planner::RecomputePolicy::kAll;
  bo.memory_cap = c.memory_cap;
  bo.enforce_memory_capacity = true;
  try {
    runtime::GraphBuilder builder(c.model, c.cluster, planned.plan, bo);
    const runtime::BuiltPipeline built = builder.Build();
    const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
    out.simulated_peak = result.MaxPeakMemory();

    ScheduleValidator validator(planned.plan, bo);
    ValidationReport report = validator.Validate(built, result);
    for (Violation& v : report.violations) {
      out.report.violations.push_back(std::move(v));
    }
    if (result.AnyOom()) {
      out.report.violations.push_back(
          {"memory-cap-oom", "simulated execution OOMed under the declared cap " +
                                 FormatBytes(c.memory_cap) + " (simulated peak " +
                                 FormatBytes(out.simulated_peak) + ")"});
    }
  } catch (const std::exception& e) {
    out.report.violations.push_back(
        {"exception", std::string("capped build/simulate threw: ") + e.what()});
  }
  return out;
}

std::string FaultFuzzCase::Describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " model=" << model.num_layers() << "L cluster=" << cluster.name()
     << "(" << cluster.num_devices() << ") plan=" << plan.ToString() << " gbs="
     << options.build.global_batch_size << " policy=" << fault::ToString(policy)
     << " horizon=" << options.horizon << " faults={";
  for (std::size_t i = 0; i < script.events.size(); ++i) {
    os << (i ? "; " : "") << script.events[i].ToString();
  }
  os << "}";
  return os.str();
}

FaultFuzzCase MakeFaultFuzzCase(std::uint64_t seed) {
  // Decorrelated from MakeFuzzCase's stream: same mixing, different salt.
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x8e2f9d4a7c15b36dull);
  model::ModelProfile model = RandomModel(rng);
  topo::Cluster cluster = RandomCluster(rng);

  fault::FaultOptions options;
  options.build.global_batch_size = rng.UniformInt(1, 6) * 4 * model.profile_micro_batch();
  // Side-stream kind draw; the legacy Bernoulli is consumed to keep the
  // main stream — and with it every pinned fault script — unchanged (see
  // MakeFuzzCase and the script stream note below).
  (void)rng.Bernoulli(0.7);
  Rng fault_kind_rng(seed * 0x9e3779b97f4a7c15ull + 0xe7037ed1a0b428dbull);
  const auto& fault_kinds = runtime::AllScheduleKinds();
  options.build.schedule.kind = fault_kinds[static_cast<std::size_t>(
      fault_kind_rng.UniformInt(0, static_cast<std::int64_t>(fault_kinds.size()) - 1))];
  options.build.schedule.recompute = rng.Bernoulli(0.2);
  options.build.enforce_memory_capacity = false;
  options.horizon = rng.Uniform(2.0, 20.0);
  options.max_iterations = 60;
  options.checkpoint_period = static_cast<int>(rng.UniformInt(2, 6));
  options.checkpoint_cost = rng.Uniform(0.0, 0.1);
  options.restore_cost = rng.Uniform(0.1, 1.0);
  options.detect_latency = rng.Uniform(0.0, 0.3);
  options.replan_cost = rng.Uniform(0.1, 1.0);
  options.planner.latency.check_memory = false;
  options.planner.keep_alternatives = 0;
  options.planner.max_stages = 4;

  planner::ParallelPlan plan = RandomPlan(rng, model, cluster);

  fault::RandomFaultOptions random;
  random.horizon = options.horizon;
  random.max_events = 4;
  // The script draws from its own independently salted stream. Forking the
  // topology rng here would couple the two: any added or removed draw above
  // (a new option, a wider model range) would silently rewrite every pinned
  // fault script. With a separate stream, topology changes leave scripts
  // stable and vice versa — only the targeted-entity validity still ties
  // them together (RandomFaultScript samples within `cluster`).
  Rng script_rng(seed * 0x9e3779b97f4a7c15ull + 0xd1342543de82ef95ull);
  fault::FaultScript script = fault::RandomFaultScript(script_rng.Fork(), cluster, random);

  const auto policy = static_cast<fault::RecoveryPolicy>(seed % 3);
  return FaultFuzzCase{seed,   std::move(model),  std::move(cluster), std::move(plan),
                       std::move(script), policy, std::move(options)};
}

std::string FaultFuzzOutcome::Summary() const {
  if (ok()) return "";
  std::ostringstream os;
  os << "fault fuzz case failed (reproduce with seed " << seed << "):\n" << report.ToString();
  return os.str();
}

FaultFuzzOutcome RunFaultFuzzCase(const FaultFuzzCase& c) {
  FaultFuzzOutcome out;
  out.seed = c.seed;

  fault::FaultOptions options = c.options;
  // Every pipeline the experiment builds — including checkpoint remaps and
  // elastic replans on degraded clusters — must satisfy the full invariant
  // set when executed fault-free.
  options.pipeline_observer = [&](const runtime::BuiltPipeline& built,
                                  const planner::ParallelPlan& plan,
                                  const topo::Cluster& cluster) {
    (void)cluster;
    const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
    ScheduleValidator validator(plan, built.options);
    ValidationReport report = validator.Validate(built, result);
    for (Violation& v : report.violations) {
      v.message = "[plan " + plan.ToString() + "] " + v.message;
      out.report.violations.push_back(std::move(v));
    }
    ++out.pipelines_validated;
  };

  try {
    const fault::FaultReport report =
        fault::RunFaultExperiment(c.model, c.cluster, c.plan, c.script, c.policy, options);
    out.iterations_completed = report.iterations_completed;
    out.replans = report.replans;
    out.restores = report.restores;

    // Structural sanity of the report itself.
    if (report.iterations_completed < 0 || report.goodput < 0.0) {
      out.report.violations.push_back(
          {"fault-report", "negative progress in the fault report"});
    }
    TimeSec previous_end = 0.0;
    for (const fault::TimelineRow& row : report.timeline) {
      if (row.end < row.start) {
        out.report.violations.push_back(
            {"fault-timeline", row.kind + " row runs backwards"});
      }
      if (row.start < previous_end - 1e-9) {
        out.report.violations.push_back(
            {"fault-timeline", row.kind + " row overlaps its predecessor"});
      }
      previous_end = row.end;
    }
    if (report.recovered && report.time_to_recover < 0.0) {
      out.report.violations.push_back(
          {"fault-report", "recovered with a negative time-to-recover"});
    }
  } catch (const std::exception& e) {
    out.report.violations.push_back(
        {"exception", std::string("fault experiment threw: ") + e.what()});
  }
  return out;
}

std::string RankingFuzzCase::Describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " model=" << model.num_layers() << "L/pmb"
     << model.profile_micro_batch() << " cluster=" << cluster.name() << "("
     << cluster.num_devices() << ") candidates=" << candidates.size()
     << " gbs=" << options.global_batch_size << " "
     << runtime::ToString(options.schedule.warmup)
     << (options.schedule.recompute ? "/recompute" : "");
  return os.str();
}

RankingFuzzCase MakeRankingFuzzCase(std::uint64_t seed, int num_candidates) {
  // Own salted stream (same mixing as the fault/memory-cap side-streams),
  // so adding this mode never shifted the pinned seeds of the others.
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x94d049bb133111ebull);
  model::ModelProfile model = RandomModel(rng);
  topo::Cluster cluster = RandomCluster(rng);

  // Pin the schedule family the analytic/sim brackets are calibrated for:
  // split-mode DAPPLE, policy warmup depths (no override), uncapped pools.
  runtime::BuildOptions options;
  options.global_batch_size = rng.UniformInt(1, 6) * 4 * model.profile_micro_batch();
  options.schedule.kind = runtime::ScheduleKind::kDapple;
  options.schedule.warmup = rng.Bernoulli(0.5) ? runtime::WarmupPolicy::kPA
                                               : runtime::WarmupPolicy::kPB;
  options.schedule.recompute = rng.Bernoulli(0.3);
  options.replication = runtime::ReplicationMode::kSplitMicroBatch;
  options.enforce_memory_capacity = false;
  options.overlap_allreduce = rng.Bernoulli(0.5);

  std::vector<planner::ParallelPlan> candidates;
  candidates.reserve(static_cast<std::size_t>(num_candidates));
  for (int i = 0; i < num_candidates; ++i) {
    candidates.push_back(RandomPlan(rng, model, cluster));
  }
  return RankingFuzzCase{seed, std::move(model), std::move(cluster),
                         std::move(candidates), std::move(options)};
}

std::string RankingFuzzOutcome::Summary() const {
  if (ok()) return "";
  std::ostringstream os;
  os << "seed " << seed << ": prefilter recall violation — prefiltered best #"
     << best_prefiltered << " makespan " << best_prefiltered_makespan
     << " vs full-sweep best #" << best_full << " makespan " << best_full_makespan
     << " (" << num_simulated << "/" << num_candidates << " simulated)";
  return os.str();
}

RankingFuzzOutcome RunRankingFuzzCase(const RankingFuzzCase& c, bool prefilter) {
  RankingFuzzOutcome out;
  out.seed = c.seed;
  out.num_candidates = static_cast<int>(c.candidates.size());

  // Exactly the estimator configuration RunFuzzCase's latency bracket is
  // checked with — the band guarantee inherits that calibration.
  planner::LatencyOptions lo;
  lo.check_memory = false;
  lo.overlap_allreduce = c.options.overlap_allreduce;
  lo.recompute = c.options.schedule.recompute;
  lo.recompute_overhead = c.options.schedule.recompute_overhead;
  const planner::LatencyEstimator estimator(c.model, c.cluster, lo);

  std::vector<planner::RankingCandidate> candidates;
  candidates.reserve(c.candidates.size());
  for (const planner::ParallelPlan& plan : c.candidates) {
    candidates.push_back({plan, c.options.global_batch_size});
  }

  // A candidate whose build or simulation throws never wins either leg.
  const auto simulate = [&](int i) -> double {
    try {
      const runtime::BuiltPipeline built =
          runtime::GraphBuilder(c.model, c.cluster,
                                c.candidates[static_cast<std::size_t>(i)], c.options)
              .Build();
      return sim::SoaEngine::Run(built.graph, built.engine_options).makespan;
    } catch (const std::exception&) {
      return std::numeric_limits<double>::infinity();
    }
  };

  planner::RankingOptions ro;
  ro.prefilter = prefilter;
  const planner::RankingResult pre =
      planner::RankCandidates(estimator, candidates, simulate, ro);
  ro.prefilter = false;
  const planner::RankingResult full =
      planner::RankCandidates(estimator, candidates, simulate, ro);

  out.num_simulated = static_cast<int>(pre.sim.simulated.size());
  out.best_prefiltered = pre.best;
  out.best_full = full.best;
  out.best_prefiltered_makespan = pre.sim.best_value;
  out.best_full_makespan = full.sim.best_value;
  // Bit-exact value comparison, not index: exact ties may legitimately
  // resolve to different candidates.
  out.recall_ok = full.best < 0
                      ? pre.best < 0
                      : pre.best >= 0 && pre.sim.best_value == full.sim.best_value;
  return out;
}

FuzzOutcome RunFuzzCase(const FuzzCase& c) {
  FuzzOutcome out;
  out.seed = c.seed;
  out.kind = c.options.schedule.kind;
  out.num_stages = c.plan.num_stages();
  try {
    runtime::GraphBuilder builder(c.model, c.cluster, c.plan, c.options);
    const runtime::BuiltPipeline built = builder.Build();
    const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
    out.num_tasks = built.graph.num_tasks();
    out.simulated_makespan = result.makespan;

    ScheduleValidator validator(c.plan, c.options);
    out.report = validator.Validate(built, result);

    // Differential 1: the analytic estimator models the split-mode DAPPLE
    // schedule with policy warmup depths; on that family its latency must
    // bracket the simulated makespan.
    if (c.options.schedule.kind == runtime::ScheduleKind::kDapple &&
        c.options.replication == runtime::ReplicationMode::kSplitMicroBatch &&
        c.options.schedule.warmup_override == 0) {
      planner::LatencyOptions lo;
      lo.check_memory = false;
      lo.overlap_allreduce = c.options.overlap_allreduce;
      lo.recompute = c.options.schedule.recompute;
      lo.recompute_overhead = c.options.schedule.recompute_overhead;
      const planner::LatencyEstimator estimator(c.model, c.cluster, lo);
      const planner::PlanEstimate e =
          estimator.Estimate(c.plan, c.options.global_batch_size);
      out.checked_latency = true;
      out.analytic_latency = e.latency;
      const double over = c.plan.num_stages() == 1 ? kAnalyticOverSimTolerance
                                                   : kAnalyticOverSimCommTolerance;
      out.latency_bracketed = e.latency <= result.makespan * over + 1e-12 &&
                              result.makespan <= e.latency * kSimOverAnalyticTolerance + 1e-12;
    }

    // Differential 2: with an early-backward schedule (DAPPLE, and its 2BP
    // split, whose extra stash is one transient slot regardless of M), peak
    // pool memory is O(K), not O(M) — doubling the micro-batch count at a
    // fixed micro-batch size must leave every peak unchanged. Only
    // meaningful when no warmup depth is clamped by M itself (then K would
    // legitimately grow with M).
    const int max_warmup = built.warmup_depths.empty()
                               ? 0
                               : *std::max_element(built.warmup_depths.begin(),
                                                   built.warmup_depths.end());
    if ((c.options.schedule.kind == runtime::ScheduleKind::kDapple ||
         c.options.schedule.kind == runtime::ScheduleKind::kDappleSplitBw) &&
        built.num_micro_batches >= 2 && max_warmup < built.num_micro_batches) {
      runtime::BuildOptions doubled = c.options;
      doubled.micro_batch_size = built.micro_batch_size;
      doubled.global_batch_size = static_cast<long>(built.micro_batch_size) *
                                  built.num_micro_batches * 2;
      const runtime::BuiltPipeline built2 =
          runtime::GraphBuilder(c.model, c.cluster, c.plan, doubled).Build();
      const sim::SimResult result2 = sim::Engine::Run(built2.graph, built2.engine_options);
      out.checked_peak = true;
      out.peak_at_m = result.MaxPeakMemory();
      out.peak_at_2m = result2.MaxPeakMemory();
      out.peak_independent = out.peak_at_m == out.peak_at_2m;
    }
  } catch (const std::exception& e) {
    out.report.violations.push_back(
        {"exception", std::string("build/simulate threw: ") + e.what()});
  }
  return out;
}

std::vector<FuzzOutcome> RunFuzzSweep(const std::vector<std::uint64_t>& seeds,
                                      int threads) {
  sim::BatchRunner runner({.threads = threads});
  return runner.Map<FuzzOutcome>(static_cast<int>(seeds.size()), [&](int i) {
    return RunFuzzSeed(seeds[static_cast<std::size_t>(i)]);
  });
}

std::vector<MemoryCapFuzzOutcome> RunMemoryCapFuzzSweep(
    const std::vector<std::uint64_t>& seeds, int threads) {
  sim::BatchRunner runner({.threads = threads});
  return runner.Map<MemoryCapFuzzOutcome>(static_cast<int>(seeds.size()), [&](int i) {
    return RunMemoryCapFuzzSeed(seeds[static_cast<std::size_t>(i)]);
  });
}

std::vector<FaultFuzzOutcome> RunFaultFuzzSweep(const std::vector<std::uint64_t>& seeds,
                                                int threads) {
  sim::BatchRunner runner({.threads = threads});
  return runner.Map<FaultFuzzOutcome>(static_cast<int>(seeds.size()), [&](int i) {
    return RunFaultFuzzSeed(seeds[static_cast<std::size_t>(i)]);
  });
}

std::vector<RankingFuzzOutcome> RunRankingFuzzSweep(
    const std::vector<std::uint64_t>& seeds, int threads, bool prefilter) {
  sim::BatchRunner runner({.threads = threads});
  return runner.Map<RankingFuzzOutcome>(static_cast<int>(seeds.size()), [&](int i) {
    return RunRankingFuzzSeed(seeds[static_cast<std::size_t>(i)], prefilter);
  });
}

}  // namespace dapple::check
