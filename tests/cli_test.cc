// End-to-end CLI smoke tests: exercise `dapple zoo/plan/run` as a user
// would, including the plan-file round trip and chrome-trace export.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

#ifndef DAPPLE_CLI_PATH
#define DAPPLE_CLI_PATH "./dapple"
#endif

/// Paths include the pid: ctest runs each discovered test as its own
/// process, concurrently, so a shared fixed path would be clobbered.
std::string TempPath(const std::string& tag) {
  return "/tmp/dapple_cli_test_" + std::to_string(getpid()) + "_" + tag;
}

std::string RunCli(const std::string& args, int* exit_code) {
  const std::string output_path = TempPath("out.txt");
  const std::string command =
      std::string(DAPPLE_CLI_PATH) + " " + args + " > " + output_path + " 2>&1";
  const int status = std::system(command.c_str());
  *exit_code = WEXITSTATUS(status);
  std::ifstream in(output_path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  std::remove(output_path.c_str());
  return content;
}

TEST(Cli, ZooListsBenchmarkModels) {
  int code = 0;
  const std::string out = RunCli("zoo", &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("BERT-48"), std::string::npos);
  EXPECT_NE(out.find("AmoebaNet-36"), std::string::npos);
  EXPECT_NE(out.find("933.0M"), std::string::npos);
}

TEST(Cli, PlanSaveRunRoundTrip) {
  const std::string plan_path = TempPath("roundtrip.plan");
  int code = 0;
  const std::string plan_out =
      RunCli("plan GNMT-16 A 2 1024 --save " + plan_path, &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(plan_out.find("8 : 8"), std::string::npos);
  EXPECT_NE(plan_out.find("saved to"), std::string::npos);

  const std::string run_out =
      RunCli("run GNMT-16 A 2 1024 --plan " + plan_path, &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(run_out.find("speedup"), std::string::npos);
  EXPECT_NE(run_out.find("Stage"), std::string::npos);
  std::remove(plan_path.c_str());
}

TEST(Cli, RunWithTraceAndGantt) {
  const std::string trace_path = TempPath("trace.json");
  int code = 0;
  const std::string out = RunCli(
      "run BERT-48 B 2 8 --schedule gpipe --recompute --gantt --trace " + trace_path,
      &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("GPipe schedule + recompute"), std::string::npos);
  EXPECT_NE(out.find("R0 "), std::string::npos);  // gantt lane
  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.good());
  std::string content((std::istreambuf_iterator<char>(trace)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("traceEvents"), std::string::npos);
  std::remove(trace_path.c_str());
}

TEST(Cli, FaultsComparesPoliciesAndWritesJson) {
  const std::string json_path = TempPath("faults.json");
  int code = 0;
  const std::string out = RunCli(
      "faults GNMT-16 B 2 8 --script-text \"slowdown server=1 start=1 mult=0.5\" "
      "--policy all --horizon 5 --json " + json_path,
      &code);
  EXPECT_EQ(code, 0);
  EXPECT_NE(out.find("fault script"), std::string::npos);
  EXPECT_NE(out.find("stall"), std::string::npos);
  EXPECT_NE(out.find("checkpoint"), std::string::npos);
  EXPECT_NE(out.find("replan"), std::string::npos);
  std::ifstream json(json_path);
  ASSERT_TRUE(json.good());
  std::string content((std::istreambuf_iterator<char>(json)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"policy\": \"replan\""), std::string::npos);
  EXPECT_NE(content.find("\"goodput\""), std::string::npos);
  std::remove(json_path.c_str());
}

TEST(Cli, FaultsRejectsBadScripts) {
  int code = 0;
  const std::string out =
      RunCli("faults GNMT-16 B 2 8 --script-text \"explode device=0 at=1\"", &code);
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("unknown event kind"), std::string::npos);
}

TEST(Cli, BadUsageFails) {
  int code = 0;
  RunCli("", &code);
  EXPECT_NE(code, 0);
  RunCli("plan", &code);
  EXPECT_NE(code, 0);
  const std::string out = RunCli("run NoSuchModel A 2 8", &code);
  EXPECT_EQ(code, 1);
  EXPECT_NE(out.find("unknown benchmark model"), std::string::npos);
}

TEST(Cli, UnknownFlagIsDiagnosedPerSubcommand) {
  // Every subcommand shares the FlagParser, so each rejects a stray flag
  // with the same diagnostic and usage exit code.
  for (const char* command :
       {"plan GNMT-16 A 2 8 --frobnicate", "run GNMT-16 A 2 8 --frobnicate",
        "report GNMT-16 A 2 8 --frobnicate",
        "faults GNMT-16 A 2 8 --seed 1 --frobnicate", "serve --frobnicate"}) {
    int code = 0;
    const std::string out = RunCli(command, &code);
    EXPECT_EQ(code, 2) << command;
    EXPECT_NE(out.find("unknown flag --frobnicate"), std::string::npos) << out;
    EXPECT_NE(out.find("usage:"), std::string::npos) << out;
  }
}

TEST(Cli, MissingFlagValueIsDiagnosed) {
  int code = 0;
  std::string out = RunCli("plan GNMT-16 A 2 8 --save", &code);
  EXPECT_EQ(code, 2);
  EXPECT_NE(out.find("flag --save requires a value"), std::string::npos) << out;

  out = RunCli("run GNMT-16 A 2 8 --schedule", &code);
  EXPECT_EQ(code, 2);
  EXPECT_NE(out.find("flag --schedule requires a value"), std::string::npos) << out;

  out = RunCli("serve --workers", &code);
  EXPECT_EQ(code, 2);
  EXPECT_NE(out.find("flag --workers requires a value"), std::string::npos) << out;
}

}  // namespace
