#include "common/units.h"

#include <array>
#include <cstdio>

namespace dapple {

std::string FormatBytes(Bytes bytes) {
  static constexpr std::array<const char*, 5> kSuffix = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t idx = 0;
  while (value >= 1024.0 && idx + 1 < kSuffix.size()) {
    value /= 1024.0;
    ++idx;
  }
  char buf[32];
  if (idx == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f%s", value, kSuffix[idx]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", value, kSuffix[idx]);
  }
  return buf;
}

std::string FormatTime(TimeSec seconds) {
  char buf[32];
  if (seconds < 0) {
    std::snprintf(buf, sizeof(buf), "-%s", FormatTime(-seconds).c_str());
  } else if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1fns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

}  // namespace dapple
