// Parallelization plan representation: an ordered list of pipeline stages,
// each owning a contiguous layer range and a (possibly replicated) device
// set. Data parallelism is the one-stage special case; a straight pipeline
// is the all-stages-unreplicated special case — both exactly as the paper
// treats them ("We treat DP and straight as special cases of general DAPPLE
// plans", §VI-B).
#pragma once

#include <string>
#include <vector>

#include "model/profile.h"
#include "topo/assignment.h"
#include "topo/device_set.h"

namespace dapple::planner {

/// One pipeline stage: layers [layer_begin, layer_end) replicated across
/// `devices` (replica r processes 1/|devices| of each micro-batch).
struct StagePlan {
  int layer_begin = 0;
  int layer_end = 0;
  topo::DeviceSet devices;
  /// Placement policy that produced the device set (reporting only).
  topo::PlacementPolicy policy = topo::PlacementPolicy::kFreshFirst;
  /// Recompute (checkpoint) activations on this stage: the builder stashes
  /// only the stage-boundary checkpoint and replays the forward before the
  /// backward (§II-A). Set by the memory-constrained planner when the stage
  /// must trade latency for peak memory; defaults off so existing plans and
  /// serializations are unchanged.
  bool recompute = false;

  int num_layers() const { return layer_end - layer_begin; }
  int replication() const { return devices.size(); }
};

struct ParallelPlan {
  std::string model;
  std::vector<StagePlan> stages;

  int num_stages() const { return static_cast<int>(stages.size()); }
  int num_devices() const;

  /// Single stage covering the whole model => pure data parallelism.
  bool IsDataParallel() const { return stages.size() == 1; }

  /// Every stage on exactly one device (paper's "straight" plan).
  bool IsStraight() const;

  /// Validates stage contiguity/coverage against the model and device
  /// disjointness; throws on violation.
  void Validate(const model::ModelProfile& model_profile) const;

  /// Paper Table V notation: "DP", "Straight", or "P : Q" replica counts.
  std::string ToString() const;

  /// Paper Table V "Split Position" notation: layer counts per stage,
  /// e.g. "9 : 7"; "-" for DP.
  std::string SplitString() const;

  /// Paper Table VII notation: "(begin, end) @ [Gi - Gj]" lines.
  std::string ToDetailedString() const;
};

}  // namespace dapple::planner
