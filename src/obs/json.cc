#include "obs/json.h"

#include <cmath>
#include <cstdio>

namespace dapple::obs {

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonWriter::Number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void JsonWriter::Newline() {
  if (layout_ == Layout::kCompact) return;
  out_ += '\n';
  out_.append(2 * first_in_container_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!first_in_container_.empty()) {
    if (!first_in_container_.back()) out_ += ',';
    first_in_container_.back() = false;
    Newline();
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  const bool empty = first_in_container_.back();
  first_in_container_.pop_back();
  if (!empty) Newline();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  const bool empty = first_in_container_.back();
  first_in_container_.pop_back();
  if (!empty) Newline();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (!first_in_container_.back()) out_ += ',';
  first_in_container_.back() = false;
  Newline();
  out_ += '"';
  out_ += Escape(name);
  out_ += layout_ == Layout::kCompact ? "\":" : "\": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(const std::string& v) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(const char* v) { return Value(std::string(v)); }

JsonWriter& JsonWriter::Value(double v) {
  BeforeValue();
  out_ += Number(v);
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t v) {
  BeforeValue();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Value(bool v) {
  BeforeValue();
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace dapple::obs
