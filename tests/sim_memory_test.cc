// Direct unit coverage for sim/memory.cc (previously tested only through
// the engine) plus the schedule-level high-water claims that rest on it:
// GPipe's fill-drain peak grows with the micro-batch count M while
// DAPPLE's early-backward peak stays flat (paper §III), recomputation
// trades the activation footprint down, and under both PA and PB warmup
// the peak is a property-tested invariant of M across fuzzed pipelines
// (§V-C).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>

#include "common/error.h"
#include "check/fuzz.h"
#include "model/zoo.h"
#include "planner/plan.h"
#include "runtime/graph_builder.h"
#include "sim/engine.h"
#include "sim/memory.h"
#include "topo/cluster.h"
#include "topo/device_set.h"

namespace dapple::sim {
namespace {

TEST(MemoryPool, PeakTracksHighWaterIncrementally) {
  MemoryPool pool;
  pool.Allocate(1.0, 100);
  EXPECT_EQ(pool.peak(), 100u);
  EXPECT_DOUBLE_EQ(pool.peak_time(), 1.0);
  pool.Free(2.0, 40);
  EXPECT_EQ(pool.current(), 60u);
  EXPECT_EQ(pool.peak(), 100u);  // peak never decreases
  EXPECT_DOUBLE_EQ(pool.peak_time(), 1.0);
  pool.Allocate(3.0, 50);
  EXPECT_EQ(pool.peak(), 110u);
  EXPECT_DOUBLE_EQ(pool.peak_time(), 3.0);
}

TEST(MemoryPool, PeakTimeIsFirstInstantOfPeak) {
  MemoryPool pool;
  pool.Allocate(1.0, 100);
  pool.Free(2.0, 100);
  // Re-reaching (not exceeding) the old peak keeps the original instant.
  pool.Allocate(5.0, 100);
  EXPECT_EQ(pool.peak(), 100u);
  EXPECT_DOUBLE_EQ(pool.peak_time(), 1.0);
}

TEST(MemoryPool, TransientSpikeAtOneTimestampStillCountsAsPeak) {
  // Alloc + free at the same simulated instant coalesce to one timeline
  // sample, but the bytes were resident: the high-water mark and its time
  // must reflect the spike the device had to hold.
  MemoryPool pool;
  pool.Allocate(1.0, 10);
  pool.Allocate(2.0, 90);
  pool.Free(2.0, 90);
  EXPECT_EQ(pool.current(), 10u);
  EXPECT_EQ(pool.peak(), 100u);
  EXPECT_DOUBLE_EQ(pool.peak_time(), 2.0);
  // The coalesced timeline keeps only the settled value at t=2...
  EXPECT_EQ(pool.timeline().back().bytes, 10u);
}

TEST(MemoryPool, BaselineCountsTowardPeak) {
  MemoryPool pool(0);
  pool.SetBaseline(500);
  EXPECT_EQ(pool.peak(), 500u);
  EXPECT_DOUBLE_EQ(pool.peak_time(), 0.0);
  pool.Allocate(1.5, 10);
  EXPECT_EQ(pool.peak(), 510u);
  EXPECT_DOUBLE_EQ(pool.peak_time(), 1.5);
}

TEST(MemoryPool, ZeroByteTrafficIsInvisible) {
  MemoryPool pool;
  pool.Allocate(1.0, 0);
  pool.Free(2.0, 0);
  EXPECT_EQ(pool.peak(), 0u);
  EXPECT_EQ(pool.timeline().size(), 1u);  // just the initial sample
}

TEST(MemoryPool, OomAgainstCapacity) {
  MemoryPool pool(100);
  pool.Allocate(1.0, 100);
  EXPECT_FALSE(pool.oom());
  pool.Allocate(2.0, 1);
  EXPECT_TRUE(pool.oom());
}

TEST(MemoryPool, OverFreeBelowBaselineThrows) {
  MemoryPool pool;
  pool.SetBaseline(100);
  pool.Allocate(1.0, 10);
  EXPECT_THROW(pool.Free(2.0, 20), Error);
}

// --- Schedule-level high-water claims --------------------------------------

/// Two single-device stages on Config-B, uniform layers — the paper's
/// Fig. 3 shape, with M controlled through the global batch size.
struct TwoStage {
  model::ModelProfile model = model::MakeUniformSynthetic(4, 0.002, 0.004, 1_MiB, 1'000'000);
  topo::Cluster cluster = topo::MakeConfigB(2);
  planner::ParallelPlan plan;
  runtime::BuildOptions options;

  TwoStage() {
    plan.model = model.name();
    plan.stages.push_back({0, 2, topo::DeviceSet::Range(0, 1)});
    plan.stages.push_back({2, 4, topo::DeviceSet::Range(1, 1)});
    options.micro_batch_size = 1;
    options.enforce_memory_capacity = false;
  }

  Bytes PeakAt(int m) {
    options.global_batch_size = m;
    const runtime::BuiltPipeline built =
        runtime::GraphBuilder(model, cluster, plan, options).Build();
    const SimResult result = Engine::Run(built.graph, built.engine_options);
    return result.MaxPeakMemory();
  }
};

TEST(SimMemory, GPipeFillDrainPeakGrowsWithM) {
  TwoStage fig;
  fig.options.schedule.kind = runtime::ScheduleKind::kGPipe;
  const Bytes at4 = fig.PeakAt(4);
  const Bytes at8 = fig.PeakAt(8);
  const Bytes at16 = fig.PeakAt(16);
  // GPipe holds all M forward activations before the drain: O(M).
  EXPECT_LT(at4, at8);
  EXPECT_LT(at8, at16);
}

TEST(SimMemory, DappleEarlyBackwardPeakIsFlatInM) {
  TwoStage fig;
  fig.options.schedule.kind = runtime::ScheduleKind::kDapple;
  const Bytes at4 = fig.PeakAt(4);
  const Bytes at8 = fig.PeakAt(8);
  const Bytes at16 = fig.PeakAt(16);
  // Early backward caps resident activations at the warmup depth K: O(K).
  EXPECT_EQ(at4, at8);
  EXPECT_EQ(at8, at16);
  EXPECT_GT(at4, 0u);
}

TEST(SimMemory, RecomputationLowersTheActivationPeak) {
  TwoStage plain;
  plain.options.schedule.kind = runtime::ScheduleKind::kDapple;
  TwoStage recomputed;
  recomputed.options.schedule.kind = runtime::ScheduleKind::kDapple;
  recomputed.options.schedule.recompute = true;
  // Recomputation keeps only stage-boundary activations live between
  // forward and backward, at the price of extra compute — the peak drops.
  EXPECT_LT(recomputed.PeakAt(8), plain.PeakAt(8));
}

/// §V-C property, fuzzed: for DAPPLE schedules under either warmup policy,
/// doubling M at a fixed micro-batch size leaves every pool peak unchanged
/// whenever no stage's warmup depth is clamped by M itself.
TEST(SimMemory, WarmupPolicyPeakIsIndependentOfMAcrossFuzzedPipelines) {
  int checked = 0;
  int fuzz_cases = 150;
  if (const char* env = std::getenv("DAPPLE_FUZZ_ITERATIONS")) {
    const int n = std::atoi(env);
    if (n > fuzz_cases) fuzz_cases = n;
  }
  for (std::uint64_t seed = 0; seed < static_cast<std::uint64_t>(fuzz_cases); ++seed) {
    check::FuzzCase c = check::MakeFuzzCase(seed);
    if (c.options.schedule.kind != runtime::ScheduleKind::kDapple) continue;
    // Round-robin replication hands each replica ~M/|g| whole micro-batches,
    // so its per-device residency genuinely depends on M (the Fig. 8 tail
    // effect) — the flat-peak claim covers DAPPLE's split-micro-batch mode.
    if (c.options.replication == runtime::ReplicationMode::kRoundRobin) continue;
    for (const runtime::WarmupPolicy policy :
         {runtime::WarmupPolicy::kPA, runtime::WarmupPolicy::kPB}) {
      runtime::BuildOptions options = c.options;
      options.schedule.warmup = policy;
      options.schedule.warmup_override = 0;
      const runtime::BuiltPipeline built =
          runtime::GraphBuilder(c.model, c.cluster, c.plan, options).Build();
      if (built.num_micro_batches < 2) continue;
      int max_warmup = 0;
      for (int k : built.warmup_depths) max_warmup = std::max(max_warmup, k);
      if (max_warmup >= built.num_micro_batches) continue;  // clamped by M

      runtime::BuildOptions doubled = options;
      doubled.micro_batch_size = built.micro_batch_size;
      doubled.global_batch_size =
          static_cast<long>(built.micro_batch_size) * built.num_micro_batches * 2;
      const runtime::BuiltPipeline built2 =
          runtime::GraphBuilder(c.model, c.cluster, c.plan, doubled).Build();

      const SimResult r1 = Engine::Run(built.graph, built.engine_options);
      const SimResult r2 = Engine::Run(built2.graph, built2.engine_options);
      ASSERT_EQ(r1.pools.size(), r2.pools.size()) << "seed=" << seed;
      for (std::size_t p = 0; p < r1.pools.size(); ++p) {
        ASSERT_EQ(r1.pools[p].peak(), r2.pools[p].peak())
            << "seed=" << seed << " policy=" << runtime::ToString(policy)
            << " pool=" << p << " M=" << built.num_micro_batches << " -> "
            << built2.num_micro_batches << " " << c.Describe();
      }
      ++checked;
    }
  }
  // Non-vacuity: a healthy fraction of fuzz cases must actually run the
  // differential (DAPPLE schedule, M >= 2, warmup not clamped).
  EXPECT_GT(checked, fuzz_cases / 4);
}

}  // namespace
}  // namespace dapple::sim
