#include "serve/protocol.h"

#include <set>

#include "serve/json.h"

namespace dapple::serve {

const char* ToString(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPlan: return "plan";
    case RequestKind::kSimulate: return "simulate";
    case RequestKind::kReport: return "report";
    case RequestKind::kStats: return "stats";
  }
  return "?";
}

planner::PlannerOptions ServeRequest::ToPlannerOptions() const {
  planner::PlannerOptions options;
  options.global_batch_size = gbs;
  options.max_stages = max_stages;
  options.memory_cap = memory_cap;
  options.recompute = recompute;
  options.latency.schedule_kind = schedule;
  options.num_threads = planner_threads;
  return options;
}

namespace {

RequestKind ParseKind(const std::string& name) {
  if (name == "plan") return RequestKind::kPlan;
  if (name == "simulate") return RequestKind::kSimulate;
  if (name == "report") return RequestKind::kReport;
  if (name == "stats") return RequestKind::kStats;
  throw RequestError("bad_request", "unknown request kind '" + name +
                                        "' (plan | simulate | report | stats)");
}

/// Known field set per request family; anything else is rejected so typos
/// fail loudly instead of silently planning something unintended.
const std::set<std::string>& KnownFields() {
  static const std::set<std::string>* fields = new std::set<std::string>{
      "kind",       "id",         "model",      "config",
      "servers",    "gbs",        "schedule",   "memory_cap",
      "recompute",  "max_stages", "planner_threads"};
  return *fields;
}

}  // namespace

ServeRequest ParseRequest(const std::string& line) {
  JsonValue doc;
  try {
    doc = ParseJson(line);
  } catch (const Error& e) {
    throw RequestError("parse_error", e.what());
  }
  if (!doc.is_object()) throw RequestError("bad_request", "request must be a JSON object");

  for (const std::string& key : doc.Keys()) {
    if (!KnownFields().count(key)) {
      throw RequestError("bad_request", "unknown field '" + key + "'");
    }
  }

  ServeRequest request;
  try {
    request.kind = ParseKind(doc.Get("kind").AsString());
    if (const JsonValue* id = doc.Find("id")) request.id = id->AsString();

    if (request.kind == RequestKind::kStats) return request;

    request.model = doc.Get("model").AsString();
    const std::string config = doc.Get("config").AsString();
    if (config.size() != 1 || (config[0] != 'A' && config[0] != 'B' && config[0] != 'C')) {
      throw RequestError("bad_request", "config must be \"A\", \"B\" or \"C\"");
    }
    request.config = config[0];
    request.servers = static_cast<int>(doc.Get("servers").AsInt());
    if (request.servers <= 0) throw RequestError("bad_request", "servers must be positive");
    request.gbs = static_cast<long>(doc.Get("gbs").AsInt());
    if (request.gbs <= 0) throw RequestError("bad_request", "gbs must be positive");

    if (const JsonValue* schedule = doc.Find("schedule")) {
      if (!runtime::ParseScheduleKind(schedule->AsString(), &request.schedule)) {
        throw RequestError("bad_request",
                           "unknown schedule kind '" + schedule->AsString() + "'");
      }
    }
    if (const JsonValue* cap = doc.Find("memory_cap")) {
      if (cap->is_string()) {
        request.memory_cap = ParseBytes(cap->AsString());
      } else {
        const std::int64_t bytes = cap->AsInt();
        if (bytes < 0) throw RequestError("bad_request", "memory_cap must be >= 0");
        request.memory_cap = static_cast<Bytes>(bytes);
      }
    }
    if (const JsonValue* recompute = doc.Find("recompute")) {
      request.recompute = planner::ParseRecomputePolicy(recompute->AsString());
    }
    if (const JsonValue* max_stages = doc.Find("max_stages")) {
      request.max_stages = static_cast<int>(max_stages->AsInt());
      if (request.max_stages < 0) {
        throw RequestError("bad_request", "max_stages must be >= 0");
      }
    }
    if (const JsonValue* threads = doc.Find("planner_threads")) {
      request.planner_threads = static_cast<int>(threads->AsInt());
      if (request.planner_threads < 0) {
        throw RequestError("bad_request", "planner_threads must be >= 0");
      }
    }
  } catch (const RequestError&) {
    throw;
  } catch (const Error& e) {
    // Field accessors and value parsers (ParseBytes, ParseRecomputePolicy)
    // throw plain dapple::Error; classify them all as bad requests.
    throw RequestError("bad_request", e.what());
  }
  return request;
}

}  // namespace dapple::serve
