// Golden-file tests for the fault-report exporters: a fixed straggler-then-
// crash scenario under the elastic-replan policy must serialize byte-for-
// byte — both the JSON report and the Chrome trace. Any change to the
// recovery loop's timeline, the planner's tie-breaking on degraded
// clusters, or the JSON formatting shows up as a diff here before it
// reaches users' reports.
//
// To regenerate after an intentional change:
//
//   DAPPLE_REGEN_GOLDEN=1 ctest -L golden
//
// then review the diffs under tests/golden/ by hand.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/units.h"
#include "fault/recovery.h"
#include "fault/report.h"
#include "fault/script.h"
#include "model/zoo.h"
#include "planner/dp_planner.h"
#include "planner/plan.h"
#include "topo/cluster.h"
#include "topo/device_set.h"

namespace dapple::fault {
namespace {

std::string GoldenPath(const char* file) {
  return std::string(DAPPLE_GOLDEN_DIR) + "/" + file;
}

FaultReport RunReplanScenario() {
  // Exact-representable layer times (2 ms / 4 ms) as in trace_golden_test.
  const auto m = model::MakeUniformSynthetic(8, 0.002, 0.004, 1_MiB, 1'000'000);
  const topo::Cluster cluster = topo::MakeConfigB(2);
  planner::ParallelPlan plan;
  plan.model = m.name();
  plan.stages.push_back({0, 4, topo::DeviceSet::Range(0, 1)});
  plan.stages.push_back({4, 8, topo::DeviceSet::Range(1, 1)});

  // A transient straggler window, then a fail-stop: the elastic policy
  // replans twice (onto the slowed cluster, then onto the survivor).
  const FaultScript script = ParseFaultScript(
      "slowdown server=1 start=0.25 end=0.75 mult=0.5\n"
      "crash device=1 at=1.25\n");

  FaultOptions options;
  options.build.global_batch_size = 4;
  options.planner.keep_alternatives = 0;
  options.horizon = 2.0;
  // Exact-representable recovery costs small enough that the job recovers
  // inside the two-second horizon (the defaults assume multi-second
  // iterations; this scenario's are ~120 ms).
  options.detect_latency = 0.125;
  options.replan_cost = 0.125;
  return RunFaultExperiment(m, cluster, plan, script, RecoveryPolicy::kElasticReplan,
                            options);
}

void CompareAgainstGolden(const std::string& rendered, const std::string& path) {
  if (std::getenv("DAPPLE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    GTEST_SKIP() << "regenerated " << path << "; review the diff";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with DAPPLE_REGEN_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();

  EXPECT_EQ(rendered, golden.str())
      << "output drifted from " << path
      << "; if intentional, regenerate with DAPPLE_REGEN_GOLDEN=1 and review";
}

TEST(FaultGoldenTest, ReplanScenarioReportMatchesGolden) {
  CompareAgainstGolden(ToJson(RunReplanScenario()),
                       GoldenPath("fault_report_replan.json"));
}

TEST(FaultGoldenTest, ReplanScenarioTraceMatchesGolden) {
  CompareAgainstGolden(ToChromeTrace(RunReplanScenario()),
                       GoldenPath("fault_trace_replan.json"));
}

/// The paper-scale recovery scenario: GNMT-16 on Config-A (2 servers x 8
/// GPUs), planner-chosen initial plan, a fail-stop crash on server 1 and an
/// elastic replan onto the survivor. The full timeline trace rides on the
/// simulation engine end to end — iteration makespans, fault re-costing and
/// the replanned schedule all feed it — so any drift in event ordering or
/// the arena engine's arithmetic lands here as a byte diff.
FaultReport RunGnmtCrashScenario() {
  const model::ModelProfile m = model::MakeGnmt16();
  const topo::Cluster cluster = topo::MakeConfigA(2);

  planner::PlannerOptions planner_options;
  planner_options.global_batch_size = 64;
  planner_options.keep_alternatives = 0;
  const planner::ParallelPlan plan =
      planner::DapplePlanner(m, cluster, planner_options).Plan().plan;

  // device 12 lives on server 1; its crash drains the whole server.
  const FaultScript script = ParseFaultScript("crash device=12 at=1\n");

  FaultOptions options;
  options.build.global_batch_size = 64;
  options.planner.keep_alternatives = 0;
  // GNMT-16 iterations are ~160 ms here; exact-representable horizon and
  // control-plane costs sized so the job crashes mid-run, replans once and
  // recovers well inside the horizon.
  options.horizon = 5.0;
  options.detect_latency = 0.25;
  options.replan_cost = 0.5;
  return RunFaultExperiment(m, cluster, plan, script, RecoveryPolicy::kElasticReplan,
                            options);
}

TEST(FaultGoldenTest, GnmtCrashReplanTraceMatchesGolden) {
  const FaultReport report = RunGnmtCrashScenario();
  // Sanity before byte-comparison: the scenario must actually exercise the
  // crash-and-replan path, or the golden pins a trivial timeline.
  EXPECT_EQ(report.replans, 1);
  EXPECT_TRUE(report.recovered);
  EXPECT_GT(report.iterations_completed, 5);
  CompareAgainstGolden(ToChromeTrace(report),
                       GoldenPath("fault_trace_gnmt_crash.json"));
}

}  // namespace
}  // namespace dapple::fault
