#include "model/profiler.h"

#include <algorithm>

#include "common/rng.h"

namespace dapple::model {

Profiler::Profiler(topo::DeviceSpec device, ProfilerOptions options)
    : device_(std::move(device)), options_(options) {}

ModelProfile Profiler::Measure(const ModelProfile& model) const {
  Rng rng(options_.seed);
  std::vector<LayerProfile> layers = model.layers();
  for (LayerProfile& l : layers) {
    double noise = 1.0;
    if (options_.time_jitter > 0.0) {
      // Clamp so noisy measurements can never go non-positive.
      noise = std::max(0.05, rng.Normal(1.0, options_.time_jitter));
    }
    l.forward_time = l.forward_time / device_.relative_speed * noise;
    l.backward_time = l.backward_time / device_.relative_speed * noise;
    l.fixed_overhead = l.fixed_overhead / device_.relative_speed;
  }
  return ModelProfile(model.name(), std::move(layers), model.profile_micro_batch(),
                      model.optimizer());
}

ProfileReport Profiler::Report(const ModelProfile& model) const {
  ProfileReport report;
  report.model = model.name();
  report.param_count = model.TotalParamCount();
  report.param_bytes = model.TotalParamBytes();
  report.profile_micro_batch = model.profile_micro_batch();
  const double samples = model.profile_micro_batch();
  report.memory_cost = model.BaselineMemory(0, model.num_layers()) +
                       model.ActivationMemory(0, model.num_layers(), samples);
  report.forward_time =
      model.ForwardTime(0, model.num_layers(), samples, device_.relative_speed);
  report.backward_time =
      model.BackwardTime(0, model.num_layers(), samples, device_.relative_speed);
  report.fits_single_device = report.memory_cost <= device_.memory;
  return report;
}

}  // namespace dapple::model
