#include "check/validator.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_set>

#include "common/error.h"
#include "runtime/schedule.h"

namespace dapple::check {

namespace {

constexpr double kEps = 1e-9;

/// (start, end, id) triple used to order tasks on a timeline; ties broken
/// deterministically by end then id.
struct Interval {
  TimeSec start = 0.0;
  TimeSec end = 0.0;
  sim::TaskId id = sim::kInvalidTask;
  bool operator<(const Interval& other) const {
    if (start != other.start) return start < other.start;
    if (end != other.end) return end < other.end;
    return id < other.id;
  }
};

std::string TaskLabel(const sim::TaskGraph& graph, sim::TaskId id) {
  std::ostringstream os;
  os << "task " << id << " '" << graph.task(id).name << "'";
  return os.str();
}

}  // namespace

bool ValidationReport::Has(std::string_view code) const {
  return std::any_of(violations.begin(), violations.end(),
                     [&](const Violation& v) { return v.code == code; });
}

std::string ValidationReport::ToString() const {
  if (violations.empty()) return "OK (" + std::to_string(checks_run) + " invariant families)";
  std::ostringstream os;
  os << violations.size() << " violation(s):\n";
  for (const Violation& v : violations) {
    os << "  [" << v.code << "] " << v.message << "\n";
  }
  return os.str();
}

ScheduleValidator::ScheduleValidator(const planner::ParallelPlan& plan,
                                     runtime::BuildOptions options)
    : plan_(&plan), options_(std::move(options)) {
  DAPPLE_CHECK_GT(plan.num_stages(), 0) << "empty plan";
}

ValidationReport ScheduleValidator::Validate(const runtime::BuiltPipeline& built,
                                             const sim::SimResult& result) const {
  ValidationReport report;
  auto add = [&](std::string_view code, const std::string& message) {
    report.violations.push_back({std::string(code), message});
  };

  const sim::TaskGraph& graph = built.graph;
  const int n = graph.num_tasks();
  const int num_stages = plan_->num_stages();
  const int m_total = built.num_micro_batches;
  const bool split = options_.replication == runtime::ReplicationMode::kSplitMicroBatch;
  const runtime::ScheduleKind kind = options_.schedule.kind;
  const bool v_shape = runtime::IsVShape(kind);
  const bool split_bw = kind == runtime::ScheduleKind::kDappleSplitBw;
  // Device/replication source per stage: the host group's stage for the V
  // shapes (chunk c folds onto stage min(c, S-1-c)), the stage itself
  // otherwise. Re-derived here, independently of the builder's folding.
  auto exec_stage = [&](int i) -> const planner::StagePlan& {
    return plan_->stages[static_cast<std::size_t>(
        runtime::HostStage(kind, i, num_stages))];
  };
  runtime::VSchedule vsched;
  if (v_shape) vsched = runtime::BuildVSchedule(kind, num_stages, m_total);

  if (static_cast<int>(result.records.size()) != n) {
    add(kViolationTaskCount, "result has " + std::to_string(result.records.size()) +
                                 " records for " + std::to_string(n) + " tasks");
    return report;  // nothing else is meaningful
  }
  if (static_cast<int>(built.warmup_depths.size()) != num_stages) {
    add(kViolationWarmupShape,
        "pipeline reports " + std::to_string(built.warmup_depths.size()) +
            " warmup depths for " + std::to_string(num_stages) + " stages");
    return report;
  }

  // --- Index tasks by role -----------------------------------------------
  // fw[i][m] / bw[i][m] / bww[i][m]: per-replica compute tasks (bw holds
  // 2BP's backward-input halves, bww its deferred weight halves); ar[i]:
  // gradient syncs; apply[i]: weight updates.
  std::vector<std::vector<std::vector<sim::TaskId>>> fw(
      static_cast<std::size_t>(num_stages)),
      bw(static_cast<std::size_t>(num_stages)),
      bww(static_cast<std::size_t>(num_stages));
  std::vector<std::vector<sim::TaskId>> ar(static_cast<std::size_t>(num_stages)),
      apply(static_cast<std::size_t>(num_stages));
  for (int i = 0; i < num_stages; ++i) {
    fw[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(m_total));
    bw[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(m_total));
    bww[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(m_total));
  }
  for (const sim::Task& t : graph.tasks()) {
    const bool staged = t.stage >= 0 && t.stage < num_stages;
    switch (t.kind) {
      case sim::TaskKind::kForward:
      case sim::TaskKind::kBackward:
      case sim::TaskKind::kBackwardWeight: {
        if (!staged || t.microbatch < 0 || t.microbatch >= m_total) {
          add(kViolationTaskCount, TaskLabel(graph, t.id) + " has out-of-range stage/microbatch");
          continue;
        }
        auto& slot = t.kind == sim::TaskKind::kForward
                         ? fw
                         : (t.kind == sim::TaskKind::kBackward ? bw : bww);
        slot[static_cast<std::size_t>(t.stage)][static_cast<std::size_t>(t.microbatch)]
            .push_back(t.id);
        break;
      }
      case sim::TaskKind::kAllReduce:
        if (staged) ar[static_cast<std::size_t>(t.stage)].push_back(t.id);
        break;
      case sim::TaskKind::kApply:
        if (staged) apply[static_cast<std::size_t>(t.stage)].push_back(t.id);
        break;
      default: break;
    }
  }

  // --- (a1) every task executed, inside the makespan ---------------------
  ++report.checks_run;
  TimeSec max_end = 0.0;
  for (sim::TaskId t = 0; t < n; ++t) {
    const sim::TaskRecord& rec = result.records[static_cast<std::size_t>(t)];
    if (!rec.executed) {
      add(kViolationNotExecuted, TaskLabel(graph, t) + " never executed");
      continue;
    }
    if (rec.start < -kEps || rec.end + kEps < rec.start) {
      add(kViolationMakespan, TaskLabel(graph, t) + " has an inverted interval");
    }
    max_end = std::max(max_end, rec.end);
  }
  if (std::abs(max_end - result.makespan) > kEps) {
    std::ostringstream os;
    os << "makespan " << result.makespan << " != last task end " << max_end;
    add(kViolationMakespan, os.str());
  }
  if (report.Has(kViolationNotExecuted)) return report;  // timing checks need records

  // --- (a2) resource exclusivity -----------------------------------------
  ++report.checks_run;
  std::map<sim::ResourceId, std::vector<Interval>> by_resource;
  for (sim::TaskId t = 0; t < n; ++t) {
    const sim::TaskRecord& rec = result.records[static_cast<std::size_t>(t)];
    by_resource[graph.task(t).resource].push_back({rec.start, rec.end, t});
  }
  for (auto& [resource, intervals] : by_resource) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t k = 1; k < intervals.size(); ++k) {
      if (intervals[k].start + kEps < intervals[k - 1].end) {
        std::ostringstream os;
        os << TaskLabel(graph, intervals[k].id) << " starts at " << intervals[k].start
           << " while " << TaskLabel(graph, intervals[k - 1].id) << " runs until "
           << intervals[k - 1].end << " on resource " << resource;
        add(kViolationResourceOverlap, os.str());
      }
    }
  }

  // --- (a3) dependency order ---------------------------------------------
  ++report.checks_run;
  for (sim::TaskId t = 0; t < n; ++t) {
    const TimeSec pred_end = result.records[static_cast<std::size_t>(t)].end;
    for (sim::TaskId succ : graph.successors(t)) {
      if (result.records[static_cast<std::size_t>(succ)].start + kEps < pred_end) {
        std::ostringstream os;
        os << TaskLabel(graph, succ) << " starts before its predecessor "
           << TaskLabel(graph, t) << " ends";
        add(kViolationDependencyOrder, os.str());
      }
    }
  }

  // --- warmup depth shape -------------------------------------------------
  ++report.checks_run;
  for (int i = 0; i < num_stages; ++i) {
    const int k = built.warmup_depths[static_cast<std::size_t>(i)];
    if (options_.schedule.kind == runtime::ScheduleKind::kGPipe) {
      if (k != m_total) {
        add(kViolationWarmupShape, "GPipe stage " + std::to_string(i) +
                                       " reports warmup " + std::to_string(k) +
                                       " != M = " + std::to_string(m_total));
      }
      continue;
    }
    if (v_shape) {
      // V depths are the realized per-chunk stash counts of the
      // deterministic greedy order — an exact expectation, not a range.
      const int want = vsched.in_flight[static_cast<std::size_t>(i)];
      if (k != want) {
        add(kViolationWarmupShape, ToString(kind) + std::string(" chunk ") +
                                       std::to_string(i) + " reports depth " +
                                       std::to_string(k) + " != V order's " +
                                       std::to_string(want));
      }
      const int cap = runtime::VStashCap(kind, i, num_stages);
      if (k > std::min(cap, m_total)) {
        add(kViolationWarmupShape, ToString(kind) + std::string(" chunk ") +
                                       std::to_string(i) + " depth " + std::to_string(k) +
                                       " exceeds its stash cap " + std::to_string(cap));
      }
      continue;
    }
    if (k < 1 || k > m_total) {
      add(kViolationWarmupShape, "stage " + std::to_string(i) + " warmup depth " +
                                     std::to_string(k) + " outside [1, M=" +
                                     std::to_string(m_total) + "]");
    }
    // A warmup depth growing downstream would deadlock the interleaved
    // control chains (see graph_builder.cc); the builder must clamp it.
    if (i > 0 && k > built.warmup_depths[static_cast<std::size_t>(i - 1)]) {
      add(kViolationWarmupShape,
          "stage " + std::to_string(i) + " warmup depth " + std::to_string(k) +
              " exceeds upstream stage's " +
              std::to_string(built.warmup_depths[static_cast<std::size_t>(i - 1)]));
    }
  }

  // --- (b) per-device compute total order matches the schedule ------------
  ++report.checks_run;
  if (v_shape) {
    // Each device group must follow BuildVSchedule's merged two-chunk
    // order exactly (restricted to its own micro-batches in round-robin
    // mode).
    const int groups = runtime::NumGroups(kind, num_stages);
    for (int g = 0; g < groups; ++g) {
      const planner::StagePlan& host = exec_stage(g);
      const int r = host.replication();
      const auto& order = vsched.group_orders[static_cast<std::size_t>(g)];
      const int late = num_stages - 1 - g;
      for (int rep = 0; rep < r; ++rep) {
        const topo::DeviceId dev = host.devices[rep];
        std::vector<runtime::GroupStep> expected;
        for (const runtime::GroupStep& step : order) {
          if (!split && step.microbatch % r != rep) continue;
          expected.push_back(step);
        }
        std::vector<Interval> ran;
        auto gather = [&](int chunk) {
          for (int m = 0; m < m_total; ++m) {
            for (const auto* list :
                 {&fw[static_cast<std::size_t>(chunk)][static_cast<std::size_t>(m)],
                  &bw[static_cast<std::size_t>(chunk)][static_cast<std::size_t>(m)]}) {
              for (sim::TaskId t : *list) {
                if (graph.task(t).device != dev) continue;
                const sim::TaskRecord& rec = result.records[static_cast<std::size_t>(t)];
                ran.push_back({rec.start, rec.end, t});
              }
            }
          }
        };
        gather(g);
        if (late != g) gather(late);
        std::sort(ran.begin(), ran.end());
        if (ran.size() != expected.size()) {
          add(kViolationScheduleOrder,
              "group " + std::to_string(g) + " device " + std::to_string(dev) + " ran " +
                  std::to_string(ran.size()) + " FW/BW tasks, V order has " +
                  std::to_string(expected.size()));
          continue;
        }
        for (std::size_t k = 0; k < ran.size(); ++k) {
          const sim::Task& t = graph.task(ran[k].id);
          const bool is_backward = t.kind == sim::TaskKind::kBackward;
          if (t.stage != expected[k].stage || is_backward != expected[k].is_backward ||
              t.microbatch != expected[k].microbatch) {
            std::ostringstream os;
            os << "group " << g << " device " << dev << " position " << k << ": ran "
               << (is_backward ? "BW" : "FW") << " s" << t.stage << " m" << t.microbatch
               << ", V order says " << (expected[k].is_backward ? "BW" : "FW") << " s"
               << expected[k].stage << " m" << expected[k].microbatch;
            add(kViolationScheduleOrder, os.str());
            break;  // one mismatch per device keeps reports readable
          }
        }
      }
    }
  } else {
    for (int i = 0; i < num_stages; ++i) {
      const planner::StagePlan& stage = plan_->stages[static_cast<std::size_t>(i)];
      const int r = stage.replication();
      const std::vector<runtime::ScheduleStep> order = runtime::StageOrder(
          options_.schedule, i, num_stages, m_total,
          built.warmup_depths[static_cast<std::size_t>(i)]);
      for (int rep = 0; rep < r; ++rep) {
        const topo::DeviceId dev = stage.devices[rep];
        // The order this device must follow: the stage order, restricted to
        // its own micro-batches in round-robin mode.
        std::vector<runtime::ScheduleStep> expected;
        for (const runtime::ScheduleStep& step : order) {
          if (!split && step.microbatch % r != rep) continue;
          expected.push_back(step);
        }
        // The order it actually followed, reconstructed from start times
        // (2BP's weight halves are part of the total order).
        std::vector<Interval> ran;
        for (int m = 0; m < m_total; ++m) {
          for (const auto* list :
               {&fw[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)],
                &bw[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)],
                &bww[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)]}) {
            for (sim::TaskId t : *list) {
              if (graph.task(t).device != dev) continue;
              const sim::TaskRecord& rec = result.records[static_cast<std::size_t>(t)];
              ran.push_back({rec.start, rec.end, t});
            }
          }
        }
        std::sort(ran.begin(), ran.end());
        if (ran.size() != expected.size()) {
          add(kViolationScheduleOrder,
              "stage " + std::to_string(i) + " device " + std::to_string(dev) + " ran " +
                  std::to_string(ran.size()) + " compute tasks, schedule has " +
                  std::to_string(expected.size()));
          continue;
        }
        for (std::size_t k = 0; k < ran.size(); ++k) {
          const sim::Task& t = graph.task(ran[k].id);
          const bool is_backward = t.kind != sim::TaskKind::kForward;
          const bool weight_grad = t.kind == sim::TaskKind::kBackwardWeight;
          if (is_backward != expected[k].is_backward ||
              weight_grad != expected[k].weight_grad ||
              t.microbatch != expected[k].microbatch) {
            auto step_name = [](bool backward, bool weight) {
              return weight ? "BWW" : (backward ? "BW" : "FW");
            };
            std::ostringstream os;
            os << "stage " << i << " device " << dev << " position " << k << ": ran "
               << step_name(is_backward, weight_grad) << " m" << t.microbatch
               << ", schedule says "
               << step_name(expected[k].is_backward, expected[k].weight_grad) << " m"
               << expected[k].microbatch;
            add(kViolationScheduleOrder, os.str());
            break;  // one mismatch per device keeps reports readable
          }
        }
      }
    }
  }

  // --- (c) in-flight activations never exceed the warmup depth ------------
  // A micro-batch's activations are live on a device from its FW start (the
  // engine applies alloc_at_start there) until the end of the task that
  // carries free_at_end — BW normally, the deferred BWW under 2BP. The 2BP
  // steady pattern [BI_m, FW_{m+K}, BWW_m] runs the next forward before
  // BWW_m frees micro-batch m, so one transient extra stash is legal.
  ++report.checks_run;
  const auto& free_tasks = split_bw ? bww : bw;
  for (int i = 0; i < num_stages; ++i) {
    const planner::StagePlan& stage = exec_stage(i);
    const int limit =
        built.warmup_depths[static_cast<std::size_t>(i)] + (split_bw ? 1 : 0);
    for (topo::DeviceId dev : stage.devices.devices()) {
      // (time, delta); frees sort before allocations at equal times, the
      // engine's completion-before-dispatch order.
      std::vector<std::pair<TimeSec, int>> events;
      for (int m = 0; m < m_total; ++m) {
        for (sim::TaskId t : fw[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)]) {
          if (graph.task(t).device == dev) {
            events.emplace_back(result.records[static_cast<std::size_t>(t)].start, +1);
          }
        }
        for (sim::TaskId t :
             free_tasks[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)]) {
          if (graph.task(t).device == dev) {
            events.emplace_back(result.records[static_cast<std::size_t>(t)].end, -1);
          }
        }
      }
      std::sort(events.begin(), events.end());
      int in_flight = 0, peak = 0;
      for (const auto& [time, delta] : events) {
        (void)time;
        in_flight += delta;
        peak = std::max(peak, in_flight);
      }
      if (peak > limit) {
        add(kViolationWarmupExceeded,
            "stage " + std::to_string(i) + " device " + std::to_string(dev) + " held " +
                std::to_string(peak) + " micro-batches in flight, warmup depth is " +
                std::to_string(limit));
      }
    }
  }

  // --- (d) memory accounting conserves ------------------------------------
  ++report.checks_run;
  const int num_pools = static_cast<int>(result.pools.size());
  std::vector<Bytes> alloc_total(static_cast<std::size_t>(num_pools), 0);
  std::vector<Bytes> free_total(static_cast<std::size_t>(num_pools), 0);
  for (const sim::Task& t : graph.tasks()) {
    if (t.pool < 0) continue;
    if (t.pool >= num_pools) {
      add(kViolationMemoryBaseline,
          TaskLabel(graph, t.id) + " touches pool " + std::to_string(t.pool) +
              " but only " + std::to_string(num_pools) + " pools exist");
      continue;
    }
    alloc_total[static_cast<std::size_t>(t.pool)] += t.alloc_at_start;
    free_total[static_cast<std::size_t>(t.pool)] += t.free_at_end;
  }
  for (int p = 0; p < num_pools; ++p) {
    const sim::MemoryPool& pool = result.pools[static_cast<std::size_t>(p)];
    if (alloc_total[static_cast<std::size_t>(p)] != free_total[static_cast<std::size_t>(p)]) {
      add(kViolationMemoryUnbalanced,
          "pool " + std::to_string(p) + " allocates " +
              std::to_string(alloc_total[static_cast<std::size_t>(p)]) + " B but frees " +
              std::to_string(free_total[static_cast<std::size_t>(p)]) + " B");
    }
    if (pool.current() != pool.baseline()) {
      add(kViolationMemoryLeak, "pool " + std::to_string(p) + " ends at " +
                                    std::to_string(pool.current()) + " B, baseline is " +
                                    std::to_string(pool.baseline()) + " B");
    }
    if (pool.peak() < pool.baseline()) {
      add(kViolationMemoryLeak,
          "pool " + std::to_string(p) + " peak below its baseline");
    }
    const Bytes want_baseline =
        static_cast<std::size_t>(p) < built.engine_options.pool_baselines.size()
            ? built.engine_options.pool_baselines[static_cast<std::size_t>(p)]
            : 0;
    const Bytes want_capacity =
        static_cast<std::size_t>(p) < built.engine_options.pool_capacities.size()
            ? built.engine_options.pool_capacities[static_cast<std::size_t>(p)]
            : 0;
    if (pool.baseline() != want_baseline || pool.capacity() != want_capacity) {
      add(kViolationMemoryBaseline,
          "pool " + std::to_string(p) + " baseline/capacity differ from the engine options");
    }
    const bool should_oom = pool.capacity() != 0 && pool.peak() > pool.capacity();
    if (pool.oom() != should_oom) {
      add(kViolationOomFlag, "pool " + std::to_string(p) + " OOM flag is inconsistent");
    }
  }
  const bool any_oom = std::any_of(result.pools.begin(), result.pools.end(),
                                   [](const sim::MemoryPool& p) { return p.oom(); });
  if (result.AnyOom() != any_oom) {
    add(kViolationOomFlag, "SimResult::AnyOom disagrees with the per-pool flags");
  }

  // --- (e) collectives: AllReduce / apply / transfer shape -----------------
  ++report.checks_run;
  for (int i = 0; i < num_stages; ++i) {
    const planner::StagePlan& stage = exec_stage(i);
    const int r = stage.replication();
    const int per_micro = split ? r : 1;

    // FW/BW cardinality per micro-batch; 2BP additionally owes one weight
    // half per backward, every other kind owes none.
    const int want_bww = split_bw ? per_micro : 0;
    for (int m = 0; m < m_total; ++m) {
      const auto& fws = fw[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)];
      const auto& bws = bw[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)];
      if (static_cast<int>(fws.size()) != per_micro ||
          static_cast<int>(bws.size()) != per_micro) {
        add(kViolationTaskCount, "stage " + std::to_string(i) + " micro-batch " +
                                     std::to_string(m) + " has " +
                                     std::to_string(fws.size()) + " FW / " +
                                     std::to_string(bws.size()) + " BW tasks, expected " +
                                     std::to_string(per_micro) + " each");
      }
      const auto& bwws = bww[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)];
      if (static_cast<int>(bwws.size()) != want_bww) {
        add(kViolationTaskCount, "stage " + std::to_string(i) + " micro-batch " +
                                     std::to_string(m) + " has " +
                                     std::to_string(bwws.size()) +
                                     " BWW tasks, expected " + std::to_string(want_bww));
      }
    }

    // Gradient AllReduce: exactly one per replicated stage, none otherwise,
    // with every backward of the stage feeding it.
    const auto& ars = ar[static_cast<std::size_t>(i)];
    if (r > 1 && ars.empty()) {
      add(kViolationAllReduceMissing,
          "replicated stage " + std::to_string(i) + " (x" + std::to_string(r) +
              ") has no AllReduce task");
    } else if (static_cast<int>(ars.size()) > (r > 1 ? 1 : 0)) {
      add(kViolationAllReduceExtra, "stage " + std::to_string(i) + " has " +
                                        std::to_string(ars.size()) + " AllReduce tasks");
    }
    // The tasks producing this stage's weight gradients: the BWW halves
    // under 2BP, the full backwards otherwise. They gate AllReduce/APPLY.
    const auto& grads = split_bw ? bww : bw;
    if (r > 1 && ars.size() == 1) {
      const auto& preds = graph.predecessors(ars.front());
      const std::unordered_set<sim::TaskId> pred_set(preds.begin(), preds.end());
      for (int m = 0; m < m_total; ++m) {
        for (sim::TaskId t : grads[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)]) {
          if (!pred_set.count(t)) {
            add(kViolationAllReduceFanIn,
                TaskLabel(graph, t) + " does not feed stage " + std::to_string(i) +
                    "'s AllReduce");
          }
        }
      }
    }

    // Weight update: one apply per replica device, gated on the AllReduce
    // (or on the device's own backwards when the stage is not replicated).
    const auto& applies = apply[static_cast<std::size_t>(i)];
    if (static_cast<int>(applies.size()) != r) {
      add(kViolationApplyShape, "stage " + std::to_string(i) + " has " +
                                    std::to_string(applies.size()) +
                                    " apply tasks for replication " + std::to_string(r));
    } else {
      for (sim::TaskId a : applies) {
        const sim::Task& t = graph.task(a);
        if (!stage.devices.contains(t.device)) {
          add(kViolationApplyShape,
              TaskLabel(graph, a) + " applies on a device outside the stage");
          continue;
        }
        const auto& preds = graph.predecessors(a);
        const std::unordered_set<sim::TaskId> pred_set(preds.begin(), preds.end());
        if (r > 1) {
          if (ars.size() == 1 && !pred_set.count(ars.front())) {
            add(kViolationApplyShape,
                TaskLabel(graph, a) + " is not gated on the stage's AllReduce");
          }
        } else {
          for (int m = 0; m < m_total; ++m) {
            for (sim::TaskId b :
                 grads[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)]) {
              if (graph.task(b).device == t.device && !pred_set.count(b)) {
                add(kViolationApplyShape,
                    TaskLabel(graph, a) + " is not gated on " + TaskLabel(graph, b));
              }
            }
          }
        }
      }
    }
  }

  // Cross-stage transfers: one per direction per (boundary, micro-batch),
  // with split/concat fan-in from every producing replica and fan-out to
  // every consuming replica (paper Fig. 9 / Fig. 11).
  const runtime::ResourceLayout layout = built.layout();
  for (int i = 0; i + 1 < num_stages; ++i) {
    const sim::ResourceId fwd_channel = layout.ForwardChannel(i);
    const sim::ResourceId bwd_channel = layout.BackwardChannel(i);
    std::vector<std::vector<sim::TaskId>> txf(static_cast<std::size_t>(m_total)),
        txb(static_cast<std::size_t>(m_total));
    for (const sim::Task& t : graph.tasks()) {
      if (t.kind != sim::TaskKind::kTransfer) continue;
      if (t.microbatch < 0 || t.microbatch >= m_total) continue;
      if (t.resource == fwd_channel) {
        txf[static_cast<std::size_t>(t.microbatch)].push_back(t.id);
      } else if (t.resource == bwd_channel) {
        txb[static_cast<std::size_t>(t.microbatch)].push_back(t.id);
      }
    }
    auto check_link = [&](const std::vector<sim::TaskId>& links, int m,
                          const std::vector<sim::TaskId>& producers,
                          const std::vector<sim::TaskId>& consumers, const char* dir) {
      if (links.size() != 1) {
        add(kViolationTransferShape,
            "boundary " + std::to_string(i) + " micro-batch " + std::to_string(m) +
                " has " + std::to_string(links.size()) + " " + dir + " transfers");
        return;
      }
      const sim::TaskId link = links.front();
      const auto& preds = graph.predecessors(link);
      const std::unordered_set<sim::TaskId> pred_set(preds.begin(), preds.end());
      const auto& succs = graph.successors(link);
      const std::unordered_set<sim::TaskId> succ_set(succs.begin(), succs.end());
      for (sim::TaskId p : producers) {
        if (!pred_set.count(p)) {
          add(kViolationTransferShape,
              TaskLabel(graph, p) + " does not feed the " + dir + " transfer at boundary " +
                  std::to_string(i));
        }
      }
      for (sim::TaskId c : consumers) {
        if (!succ_set.count(c)) {
          add(kViolationTransferShape,
              TaskLabel(graph, c) + " is not gated on the " + dir +
                  " transfer at boundary " + std::to_string(i));
        }
      }
    };
    for (int m = 0; m < m_total; ++m) {
      check_link(txf[static_cast<std::size_t>(m)], m,
                 fw[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)],
                 fw[static_cast<std::size_t>(i + 1)][static_cast<std::size_t>(m)], "forward");
      check_link(txb[static_cast<std::size_t>(m)], m,
                 bw[static_cast<std::size_t>(i + 1)][static_cast<std::size_t>(m)],
                 bw[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)], "backward");
    }
  }

  return report;
}

}  // namespace dapple::check
