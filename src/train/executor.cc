#include "train/executor.h"

#include <algorithm>
#include <map>
#include <optional>

#include "common/error.h"
#include "train/optimizer.h"

namespace dapple::train {

namespace {

/// Forward through layers [begin, end), optionally capturing the per-layer
/// saved contexts.
Tensor ForwardRange(MlpModel& model, int begin, int end, const Tensor& input,
                    std::vector<Tensor>* saved) {
  Tensor activation = input;
  for (int l = begin; l < end; ++l) {
    Tensor ctx;
    activation = model.layer(l).Forward(activation, saved ? &ctx : nullptr);
    if (saved) saved->push_back(std::move(ctx));
  }
  return activation;
}

/// Backward through layers [begin, end) given their saved contexts and the
/// gradient w.r.t. the range's output; accumulates per-layer parameter
/// grads into `grads_by_layer` (keyed by absolute layer index).
Tensor BackwardRange(MlpModel& model, int begin, int end, const std::vector<Tensor>& saved,
                     const Tensor& grad_out, std::map<int, LayerGrads>& grads_by_layer) {
  DAPPLE_CHECK_EQ(saved.size(), static_cast<std::size_t>(end - begin));
  Tensor grad = grad_out;
  for (int l = end - 1; l >= begin; --l) {
    LayerGrads* sink = nullptr;
    if (model.layer(l).has_params()) sink = &grads_by_layer[l];
    grad = model.mutable_layer(l).Backward(saved[static_cast<std::size_t>(l - begin)],
                                           grad, sink);
  }
  return grad;
}

/// Assembles a GradientVector (aligned with Params()) from per-layer
/// accumulated grads.
GradientVector AssembleGradients(MlpModel& model, std::map<int, LayerGrads>& by_layer) {
  GradientVector grads;
  for (int l = 0; l < model.num_layers(); ++l) {
    if (!model.layer(l).has_params()) continue;
    auto it = by_layer.find(l);
    DAPPLE_CHECK(it != by_layer.end()) << "missing gradients for layer " << l;
    grads.push_back(std::move(it->second.weight));
    grads.push_back(std::move(it->second.bias));
  }
  return grads;
}

}  // namespace

BackpropResult RunSerial(MlpModel& model, const Tensor& inputs, const Tensor& targets) {
  DAPPLE_CHECK_EQ(inputs.rows(), targets.rows()) << "batch size mismatch";
  std::vector<Tensor> saved;
  const Tensor predictions = ForwardRange(model, 0, model.num_layers(), inputs, &saved);
  Tensor loss_grad;
  BackpropResult result;
  result.loss = MseLoss::Compute(predictions, targets, inputs.rows(), &loss_grad);
  std::map<int, LayerGrads> by_layer;
  BackwardRange(model, 0, model.num_layers(), saved, loss_grad, by_layer);
  result.grads = AssembleGradients(model, by_layer);
  result.max_in_flight = {1};
  return result;
}

BackpropResult RunDataParallel(const MlpModel& model, const Tensor& inputs,
                               const Tensor& targets, int replicas) {
  DAPPLE_CHECK_GT(replicas, 0);
  DAPPLE_CHECK_EQ(inputs.rows() % static_cast<std::size_t>(replicas), 0u)
      << "batch must divide evenly across replicas";
  const std::size_t shard = inputs.rows() / static_cast<std::size_t>(replicas);

  BackpropResult total;
  for (int r = 0; r < replicas; ++r) {
    MlpModel replica = model.Clone();
    std::vector<Tensor> saved;
    const Tensor x = inputs.RowSlice(static_cast<std::size_t>(r) * shard,
                                     static_cast<std::size_t>(r + 1) * shard);
    const Tensor y = targets.RowSlice(static_cast<std::size_t>(r) * shard,
                                      static_cast<std::size_t>(r + 1) * shard);
    const Tensor predictions = ForwardRange(replica, 0, replica.num_layers(), x, &saved);
    Tensor loss_grad;
    // Normalize by the GLOBAL batch so the summed shard gradients equal
    // the serial mean gradient (this is what AllReduce-mean implements).
    total.loss += MseLoss::Compute(predictions, y, inputs.rows(), &loss_grad) *
                  (static_cast<double>(shard) / inputs.rows()) * replicas;
    std::map<int, LayerGrads> by_layer;
    BackwardRange(replica, 0, replica.num_layers(), saved, loss_grad, by_layer);
    AccumulateGradients(total.grads, AssembleGradients(replica, by_layer));
  }
  total.max_in_flight = {1};
  return total;
}

BackpropResult RunPipelined(MlpModel& model, const Tensor& inputs, const Tensor& targets,
                            const PipelineRunOptions& options) {
  const auto& bounds = options.stage_bounds;
  DAPPLE_CHECK_GE(bounds.size(), 2u) << "need at least one stage";
  DAPPLE_CHECK_EQ(bounds.front(), 0);
  DAPPLE_CHECK_EQ(bounds.back(), model.num_layers());
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    DAPPLE_CHECK_GT(bounds[i], bounds[i - 1]) << "empty stage";
  }
  const int num_stages = static_cast<int>(bounds.size()) - 1;
  DAPPLE_CHECK_GT(options.micro_batch, 0);
  DAPPLE_CHECK_EQ(inputs.rows() % static_cast<std::size_t>(options.micro_batch), 0u)
      << "micro-batch must divide the batch";
  const int num_micro =
      static_cast<int>(inputs.rows() / static_cast<std::size_t>(options.micro_batch));
  std::vector<int> replicas(static_cast<std::size_t>(num_stages), 1);
  if (!options.stage_replicas.empty()) {
    DAPPLE_CHECK_EQ(options.stage_replicas.size(), static_cast<std::size_t>(num_stages))
        << "stage_replicas arity";
    for (int s = 0; s < num_stages; ++s) {
      const int r = options.stage_replicas[static_cast<std::size_t>(s)];
      DAPPLE_CHECK_GT(r, 0) << "stage " << s << " replicas";
      DAPPLE_CHECK_EQ(options.micro_batch % r, 0)
          << "replicas of stage " << s << " must divide the micro-batch";
      replicas[static_cast<std::size_t>(s)] = r;
    }
  }

  // Per-stage schedule orders and cursors.
  std::vector<std::vector<runtime::ScheduleStep>> orders;
  std::vector<std::size_t> cursor(static_cast<std::size_t>(num_stages), 0);
  for (int s = 0; s < num_stages; ++s) {
    orders.push_back(
        runtime::StageOrder(options.schedule, s, num_stages, num_micro, /*memory_limit=*/0));
  }

  // Dataflow state.
  // stage_input[s][m]: activation entering stage s for micro-batch m.
  std::vector<std::map<int, Tensor>> stage_input(static_cast<std::size_t>(num_stages));
  // grad_input[s][m]: dLoss/d(stage s output) for micro-batch m.
  std::vector<std::map<int, Tensor>> grad_input(static_cast<std::size_t>(num_stages));
  // stash[s][m]: saved contexts (or the checkpointed input if recomputing).
  std::vector<std::map<int, std::vector<Tensor>>> stash(
      static_cast<std::size_t>(num_stages));

  for (int m = 0; m < num_micro; ++m) {
    stage_input[0][m] =
        inputs.RowSlice(static_cast<std::size_t>(m) * options.micro_batch,
                        static_cast<std::size_t>(m + 1) * options.micro_batch);
  }

  BackpropResult result;
  result.max_in_flight.assign(static_cast<std::size_t>(num_stages), 0);
  std::map<int, LayerGrads> grads_by_layer;

  auto try_step = [&](int s) -> bool {
    auto& order = orders[static_cast<std::size_t>(s)];
    if (cursor[static_cast<std::size_t>(s)] >= order.size()) return false;
    const runtime::ScheduleStep step = order[cursor[static_cast<std::size_t>(s)]];
    const int m = step.microbatch;
    const int begin = bounds[static_cast<std::size_t>(s)];
    const int end = bounds[static_cast<std::size_t>(s) + 1];

    if (!step.is_backward) {
      auto input_it = stage_input[static_cast<std::size_t>(s)].find(m);
      if (input_it == stage_input[static_cast<std::size_t>(s)].end()) return false;

      // Replicated stage: split the micro-batch into row slices, forward
      // each independently (paper Fig. 9's split), and concat the outputs
      // for the next stage. Slices share the stage's weights, so the
      // concatenated result is bit-identical to the unreplicated forward
      // — which is exactly the property DAPPLE's replication relies on.
      const int r = replicas[static_cast<std::size_t>(s)];
      std::vector<Tensor> saved;
      Tensor out;
      if (r == 1) {
        out = ForwardRange(model, begin, end, input_it->second, &saved);
      } else {
        const std::size_t slice_rows = input_it->second.rows() / static_cast<std::size_t>(r);
        std::vector<Tensor> outs;
        for (int k = 0; k < r; ++k) {
          const Tensor slice = input_it->second.RowSlice(
              static_cast<std::size_t>(k) * slice_rows,
              static_cast<std::size_t>(k + 1) * slice_rows);
          std::vector<Tensor> slice_saved;
          outs.push_back(ForwardRange(model, begin, end, slice, &slice_saved));
          for (Tensor& t : slice_saved) saved.push_back(std::move(t));
        }
        out = Tensor::VStack(outs);
      }
      if (options.schedule.recompute) {
        // Checkpoint only the stage input; the saved contexts are
        // regenerated during backward.
        std::vector<Tensor> checkpoint;
        checkpoint.push_back(input_it->second);
        stash[static_cast<std::size_t>(s)][m] = std::move(checkpoint);
      } else {
        stash[static_cast<std::size_t>(s)][m] = std::move(saved);
      }
      result.max_in_flight[static_cast<std::size_t>(s)] =
          std::max(result.max_in_flight[static_cast<std::size_t>(s)],
                   static_cast<int>(stash[static_cast<std::size_t>(s)].size()));
      stage_input[static_cast<std::size_t>(s)].erase(input_it);

      if (s + 1 < num_stages) {
        stage_input[static_cast<std::size_t>(s) + 1][m] = std::move(out);
      } else {
        // Last stage: loss closes the loop immediately (its own backward
        // input becomes available).
        const Tensor y =
            targets.RowSlice(static_cast<std::size_t>(m) * options.micro_batch,
                             static_cast<std::size_t>(m + 1) * options.micro_batch);
        Tensor loss_grad;
        result.loss += MseLoss::Compute(out, y, inputs.rows(), &loss_grad) *
                       (static_cast<double>(options.micro_batch) / inputs.rows()) *
                       num_micro;
        grad_input[static_cast<std::size_t>(s)][m] = std::move(loss_grad);
      }
    } else {
      auto grad_it = grad_input[static_cast<std::size_t>(s)].find(m);
      if (grad_it == grad_input[static_cast<std::size_t>(s)].end()) return false;
      auto stash_it = stash[static_cast<std::size_t>(s)].find(m);
      DAPPLE_CHECK(stash_it != stash[static_cast<std::size_t>(s)].end())
          << "backward before forward for micro " << m << " stage " << s;

      const int r = replicas[static_cast<std::size_t>(s)];
      Tensor grad_in;
      if (r == 1) {
        std::vector<Tensor> saved;
        if (options.schedule.recompute) {
          // Replay the forward pass from the checkpointed input.
          (void)ForwardRange(model, begin, end, stash_it->second.front(), &saved);
        } else {
          saved = std::move(stash_it->second);
        }
        grad_in = BackwardRange(model, begin, end, saved, grad_it->second,
                                grads_by_layer);
      } else {
        // Replicated backward: each replica back-propagates its row slice;
        // parameter gradients accumulate into the shared sink (the
        // numeric AllReduce), and input slices re-concatenate.
        const std::size_t slice_rows =
            grad_it->second.rows() / static_cast<std::size_t>(r);
        const int layers_per = end - begin;
        std::vector<Tensor> grad_slices;
        for (int k = 0; k < r; ++k) {
          const Tensor grad_slice = grad_it->second.RowSlice(
              static_cast<std::size_t>(k) * slice_rows,
              static_cast<std::size_t>(k + 1) * slice_rows);
          std::vector<Tensor> saved;
          if (options.schedule.recompute) {
            const std::size_t in_rows =
                stash_it->second.front().rows() / static_cast<std::size_t>(r);
            const Tensor in_slice = stash_it->second.front().RowSlice(
                static_cast<std::size_t>(k) * in_rows,
                static_cast<std::size_t>(k + 1) * in_rows);
            (void)ForwardRange(model, begin, end, in_slice, &saved);
          } else {
            for (int l = 0; l < layers_per; ++l) {
              saved.push_back(std::move(
                  stash_it->second[static_cast<std::size_t>(k * layers_per + l)]));
            }
          }
          grad_slices.push_back(
              BackwardRange(model, begin, end, saved, grad_slice, grads_by_layer));
        }
        grad_in = Tensor::VStack(grad_slices);
      }
      stash[static_cast<std::size_t>(s)].erase(stash_it);  // early memory release
      grad_input[static_cast<std::size_t>(s)].erase(grad_it);
      if (s > 0) grad_input[static_cast<std::size_t>(s) - 1][m] = std::move(grad_in);
    }
    ++cursor[static_cast<std::size_t>(s)];
    return true;
  };

  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (int s = 0; s < num_stages; ++s) {
      while (try_step(s)) progressed = true;
    }
  }
  for (int s = 0; s < num_stages; ++s) {
    DAPPLE_CHECK_EQ(cursor[static_cast<std::size_t>(s)],
                    orders[static_cast<std::size_t>(s)].size())
        << "pipeline schedule deadlocked at stage " << s;
  }

  result.grads = AssembleGradients(model, grads_by_layer);
  return result;
}

AsyncResult RunAsyncPipeDream(MlpModel& model, const Tensor& inputs, const Tensor& targets,
                              const PipelineRunOptions& options, float learning_rate) {
  // Asynchronous pipeline: micro-batch m's backward must use the weights
  // its forward saw, so each in-flight micro-batch pins a weight version
  // (PipeDream's weight stashing); updates apply as soon as a micro-batch
  // finishes. We model one stage group at a time (the version-count logic
  // is per-stage identical) and run micro-batches with overlap depth equal
  // to the pipeline depth.
  const int num_stages = static_cast<int>(options.stage_bounds.size()) - 1;
  DAPPLE_CHECK_GT(options.micro_batch, 0);
  const int num_micro =
      static_cast<int>(inputs.rows() / static_cast<std::size_t>(options.micro_batch));
  const int overlap = std::min(num_stages, num_micro);

  auto sgd = MakeSgd(learning_rate);
  AsyncResult result;
  result.weight_versions_kept = overlap;

  // In steady state, `overlap` micro-batches are in flight: micro-batch m
  // forwards against version v_m = weights after update m - overlap, and
  // its update lands before micro-batch m + overlap forwards. We realize
  // this with a ring of stashed model versions.
  std::vector<MlpModel> versions;
  std::vector<std::optional<int>> inflight(static_cast<std::size_t>(overlap));
  for (int i = 0; i < overlap; ++i) versions.push_back(model.Clone());

  for (int m = 0; m < num_micro; ++m) {
    const int slot = m % overlap;
    // Retire the oldest in-flight micro-batch occupying this slot: its
    // backward ran against the stashed version; its gradient applies to
    // the live weights (stale by `overlap` updates — the async hazard).
    versions[static_cast<std::size_t>(slot)] = model.Clone();
    const Tensor x = inputs.RowSlice(static_cast<std::size_t>(m) * options.micro_batch,
                                     static_cast<std::size_t>(m + 1) * options.micro_batch);
    const Tensor y = targets.RowSlice(static_cast<std::size_t>(m) * options.micro_batch,
                                      static_cast<std::size_t>(m + 1) * options.micro_batch);
    MlpModel& version = versions[static_cast<std::size_t>(slot)];
    BackpropResult bp = RunSerial(version, x, y);
    result.loss += bp.loss / num_micro;
    // Apply the (stale) gradient to the live weights immediately.
    const std::vector<Tensor*> params = model.Params();
    sgd->Step(params, bp.grads);
    inflight[static_cast<std::size_t>(slot)] = m;
  }
  return result;
}

}  // namespace dapple::train
