// Long-horizon episode driver: one seeded churn stream played against one
// training job under one recovery policy, end to end. An episode is the
// scenario layer's unit of measurement — the fault layer's iteration-by-
// iteration experiment plus the churn metadata (model, seed, preemption/
// rejoin counts, scale-up cutovers, utilization) that ranking policies
// across a corpus needs. Deterministic: identical (spec, seed) produce a
// byte-identical report at every sweep thread count.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/recovery.h"
#include "model/profile.h"
#include "planner/plan.h"
#include "scenario/stream.h"
#include "topo/cluster.h"

namespace dapple::scenario {

struct EpisodeOptions {
  std::uint64_t seed = 0;
  ChurnModel churn = ChurnModel::kSpotChurn;
  ChurnOptions churn_options;
  fault::RecoveryPolicy policy = fault::RecoveryPolicy::kElasticUp;
  /// Fault-experiment knobs (costs, checkpoint period, planner, build).
  /// `fault.horizon` is overridden by churn_options.horizon so the stream
  /// and the experiment always agree on the episode length.
  fault::FaultOptions fault;
};

struct EpisodeReport {
  std::uint64_t seed = 0;
  ChurnModel churn = ChurnModel::kSpotChurn;
  /// The underlying iteration-level experiment (timeline, goodput, ...).
  fault::FaultReport fault;

  // Churn-stream shape, counted from the script.
  int preemptions = 0;
  int rejoins = 0;
  int slowdown_windows = 0;

  /// goodput / healthy_throughput, the fraction of the cluster's fault-free
  /// capacity the policy salvaged over the horizon.
  double utilization = 0.0;
};

/// Generates the churn script for (seed, model, options) and runs the fault
/// experiment under the episode's policy. Books scenario.episode.* counters
/// in the global MetricsRegistry.
EpisodeReport RunEpisode(const model::ModelProfile& model, const topo::Cluster& cluster,
                         const planner::ParallelPlan& plan, const EpisodeOptions& options);

/// Runs one episode per options entry on a sim::BatchRunner (`sim_threads`:
/// 1 = inline serial, 0 = hardware concurrency, n = dedicated pool).
/// Reports come back in `episodes` order, byte-identical at every thread
/// count.
std::vector<EpisodeReport> RunEpisodeSweep(const model::ModelProfile& model,
                                           const topo::Cluster& cluster,
                                           const planner::ParallelPlan& plan,
                                           const std::vector<EpisodeOptions>& episodes,
                                           int sim_threads = 1);

}  // namespace dapple::scenario
