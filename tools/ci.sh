#!/usr/bin/env bash
# Local CI: configure + build + unit-test the tree twice — once plain, once
# under AddressSanitizer/UBSan (DAPPLE_SANITIZE=address,undefined).
#
#   tools/ci.sh [build-dir-prefix]
#
# The two build trees land in <prefix> and <prefix>-asan (default: build-ci).
# Heavier tiers stay opt-in: `ctest -L fuzz` / `ctest -L golden`, and the
# 100k-seed sweep via `DAPPLE_FUZZ_ITERATIONS=100000 ctest -L fuzz` or
# `tools/dapple_fuzz --iterations 100000`.
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_suite() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== build ${dir}"
  cmake --build "${dir}" -j "${jobs}" >/dev/null
  echo "=== ctest -L unit (${dir})"
  ctest --test-dir "${dir}" -L unit --output-on-failure -j "${jobs}"
}

run_suite "${prefix}"
run_suite "${prefix}-asan" -DDAPPLE_SANITIZE=address,undefined
echo "=== ci ok"
