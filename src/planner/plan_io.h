// Plan serialization: a stable, human-readable text format so plans can be
// produced offline (the paper's planner is an offline step, Fig. 1) and
// shipped to the runtime, versioned, or diffed in code review.
//
// Format (one stage per line, '#' comments allowed):
//   model: BERT-48
//   stage: layers 0 24 devices 0 1 2 3 4 5 6 7
//   stage: layers 24 48 devices 8 9 10 11 12 13 14 15
#pragma once

#include <string>

#include "planner/plan.h"

namespace dapple::planner {

/// Serializes a plan; the result round-trips through ParsePlan.
std::string SerializePlan(const ParallelPlan& plan);

/// Parses the SerializePlan format; throws dapple::Error with a line
/// number on malformed input.
ParallelPlan ParsePlan(const std::string& text);

/// File helpers.
void SavePlan(const std::string& path, const ParallelPlan& plan);
ParallelPlan LoadPlan(const std::string& path);

}  // namespace dapple::planner
