// THE equivalence tests: serial, data-parallel and DAPPLE/GPipe-pipelined
// execution (with and without re-computation) must produce identical
// gradients at the same global batch — the paper's §VI-A correctness
// claim, verified on real numbers. Plus the numeric counterpart of the
// memory claims: in-flight stash counts.
#include <gtest/gtest.h>

#include "common/error.h"
#include "train/data.h"
#include "train/executor.h"
#include "train/trainer.h"

namespace dapple::train {
namespace {

constexpr float kTol = 1e-4f;  // float32 summation-order noise

struct Fixture {
  Fixture() : rng(42) {
    DatasetSpec spec;
    spec.samples = 32;
    spec.in_features = 6;
    spec.out_features = 3;
    spec.seed = 7;
    data = MakeTeacherDataset(spec);
    model = MlpModel::MakeMlp(6, 10, 3, /*hidden_layers=*/3, rng);
  }
  Rng rng;
  Dataset data;
  MlpModel model;
};

PipelineRunOptions Pipeline(std::vector<int> bounds, int micro,
                            runtime::ScheduleKind kind = runtime::ScheduleKind::kDapple,
                            bool recompute = false) {
  PipelineRunOptions o;
  o.stage_bounds = std::move(bounds);
  o.micro_batch = micro;
  o.schedule.kind = kind;
  o.schedule.recompute = recompute;
  return o;
}

TEST(Equivalence, DataParallelMatchesSerial) {
  Fixture f;
  const BackpropResult serial = RunSerial(f.model, f.data.inputs, f.data.targets);
  for (int replicas : {2, 4, 8}) {
    const BackpropResult dp =
        RunDataParallel(f.model, f.data.inputs, f.data.targets, replicas);
    EXPECT_LT(MaxGradientDiff(serial.grads, dp.grads), kTol) << replicas << " replicas";
    EXPECT_NEAR(serial.loss, dp.loss, 1e-5);
  }
}

TEST(Equivalence, DapplePipelineMatchesSerial) {
  Fixture f;
  const BackpropResult serial = RunSerial(f.model, f.data.inputs, f.data.targets);
  // MakeMlp(6,10,3,3): Linear Tanh Linear Tanh Linear Tanh Linear = 7 layers.
  for (int micro : {4, 8, 16}) {
    const BackpropResult pipe = RunPipelined(f.model, f.data.inputs, f.data.targets,
                                             Pipeline({0, 3, 7}, micro));
    EXPECT_LT(MaxGradientDiff(serial.grads, pipe.grads), kTol) << "micro " << micro;
    EXPECT_NEAR(serial.loss, pipe.loss, 1e-5);
  }
}

TEST(Equivalence, GPipeScheduleMatchesSerial) {
  Fixture f;
  const BackpropResult serial = RunSerial(f.model, f.data.inputs, f.data.targets);
  const BackpropResult gpipe =
      RunPipelined(f.model, f.data.inputs, f.data.targets,
                   Pipeline({0, 3, 7}, 4, runtime::ScheduleKind::kGPipe));
  EXPECT_LT(MaxGradientDiff(serial.grads, gpipe.grads), kTol);
}

TEST(Equivalence, RecomputationDoesNotChangeGradients) {
  Fixture f;
  const BackpropResult serial = RunSerial(f.model, f.data.inputs, f.data.targets);
  for (auto kind : {runtime::ScheduleKind::kDapple, runtime::ScheduleKind::kGPipe}) {
    const BackpropResult rc = RunPipelined(f.model, f.data.inputs, f.data.targets,
                                           Pipeline({0, 2, 5, 7}, 8, kind, true));
    EXPECT_LT(MaxGradientDiff(serial.grads, rc.grads), kTol)
        << runtime::ToString(kind) << " + recompute";
  }
}

TEST(Equivalence, ThreeAndFourStagePipelines) {
  Fixture f;
  const BackpropResult serial = RunSerial(f.model, f.data.inputs, f.data.targets);
  for (const auto& bounds :
       std::vector<std::vector<int>>{{0, 2, 4, 7}, {0, 1, 3, 5, 7}, {0, 7}}) {
    const BackpropResult pipe =
        RunPipelined(f.model, f.data.inputs, f.data.targets, Pipeline(bounds, 8));
    EXPECT_LT(MaxGradientDiff(serial.grads, pipe.grads), kTol)
        << bounds.size() - 1 << " stages";
  }
}

TEST(Memory, DappleStashBoundedByWarmupDepth) {
  // The numeric counterpart of early backward scheduling: stage i keeps at
  // most K_i = S - i (policy PA) micro-batch stashes live.
  Fixture f;
  const int micro = 2;  // 16 micro-batches
  const BackpropResult pipe = RunPipelined(f.model, f.data.inputs, f.data.targets,
                                           Pipeline({0, 2, 4, 7}, micro));
  ASSERT_EQ(pipe.max_in_flight.size(), 3u);
  EXPECT_LE(pipe.max_in_flight[0], 3);
  EXPECT_LE(pipe.max_in_flight[1], 2);
  EXPECT_EQ(pipe.max_in_flight[2], 1);
}

TEST(Memory, GPipeStashGrowsToM) {
  Fixture f;
  const int micro = 2;  // M = 16
  const BackpropResult gpipe =
      RunPipelined(f.model, f.data.inputs, f.data.targets,
                   Pipeline({0, 2, 4, 7}, micro, runtime::ScheduleKind::kGPipe));
  for (int stash : gpipe.max_in_flight) EXPECT_EQ(stash, 16);
}

TEST(Memory, PolicyBKeepsMoreInFlight) {
  Fixture f;
  PipelineRunOptions pb = Pipeline({0, 2, 4, 7}, 2);
  pb.schedule.warmup = runtime::WarmupPolicy::kPB;
  const BackpropResult r = RunPipelined(f.model, f.data.inputs, f.data.targets, pb);
  EXPECT_LE(r.max_in_flight[0], 5);  // 2S-1 = 5
  EXPECT_GE(r.max_in_flight[0], 3);  // more than PA's S
}

TEST(Async, PipeDreamStyleDivergesFromSync) {
  // The paper's §I motivation: async pipelining applies stale gradients
  // and must stash one weight version per in-flight micro-batch; the
  // resulting weights differ from synchronous training.
  Fixture f;
  MlpModel sync_model = f.model.Clone();
  const BackpropResult sync = RunSerial(sync_model, f.data.inputs, f.data.targets);
  // One SGD step of the sync gradients.
  auto params = sync_model.Params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->data();
    const float* g = sync.grads[i].data();
    for (std::size_t k = 0; k < params[i]->size(); ++k) p[k] -= 0.05f * g[k];
  }

  MlpModel async_model = f.model.Clone();
  const AsyncResult async = RunAsyncPipeDream(async_model, f.data.inputs, f.data.targets,
                                              Pipeline({0, 3, 7}, 4), 0.05f);
  EXPECT_EQ(async.weight_versions_kept, 2);  // one per in-flight micro-batch
  EXPECT_GT(MaxWeightDiff(sync_model, async_model), 1e-6f);
}

TEST(Validation, BadOptionsRejected) {
  Fixture f;
  EXPECT_THROW(RunPipelined(f.model, f.data.inputs, f.data.targets,
                            Pipeline({0, 3}, 8)),  // does not cover model
               Error);
  EXPECT_THROW(RunPipelined(f.model, f.data.inputs, f.data.targets,
                            Pipeline({0, 3, 7}, 5)),  // 5 does not divide 32
               Error);
  EXPECT_THROW(RunPipelined(f.model, f.data.inputs, f.data.targets,
                            Pipeline({0, 3, 3, 7}, 8)),  // empty stage
               Error);
  EXPECT_THROW(RunDataParallel(f.model, f.data.inputs, f.data.targets, 5), Error);
}

TEST(Dataset, TeacherIsDeterministic) {
  DatasetSpec spec;
  spec.samples = 16;
  const Dataset a = MakeTeacherDataset(spec);
  const Dataset b = MakeTeacherDataset(spec);
  EXPECT_EQ(Tensor::MaxAbsDiff(a.inputs, b.inputs), 0.0f);
  EXPECT_EQ(Tensor::MaxAbsDiff(a.targets, b.targets), 0.0f);
  spec.seed = 1;
  const Dataset c = MakeTeacherDataset(spec);
  EXPECT_GT(Tensor::MaxAbsDiff(a.inputs, c.inputs), 0.0f);
}

TEST(Dataset, NoiseChangesTargetsOnly) {
  DatasetSpec spec;
  spec.samples = 16;
  DatasetSpec noisy = spec;
  noisy.label_noise = 0.5;
  const Dataset clean = MakeTeacherDataset(spec);
  const Dataset with_noise = MakeTeacherDataset(noisy);
  EXPECT_EQ(Tensor::MaxAbsDiff(clean.inputs, with_noise.inputs), 0.0f);
  EXPECT_GT(Tensor::MaxAbsDiff(clean.targets, with_noise.targets), 0.0f);
}

}  // namespace
}  // namespace dapple::train

// -- appended: hybrid replication (paper Fig. 9 on real numbers) ---------

namespace dapple::train {
namespace {

TEST(Hybrid, ReplicatedStagesMatchSerial) {
  Rng rng(43);
  DatasetSpec spec;
  spec.samples = 32;
  spec.in_features = 6;
  spec.out_features = 3;
  const Dataset data = MakeTeacherDataset(spec);
  MlpModel model = MlpModel::MakeMlp(6, 10, 3, 3, rng);
  const BackpropResult serial = RunSerial(model, data.inputs, data.targets);

  PipelineRunOptions o;
  o.stage_bounds = {0, 3, 7};
  o.micro_batch = 8;
  for (std::vector<int> replicas :
       std::vector<std::vector<int>>{{2, 1}, {1, 2}, {4, 2}, {2, 4}}) {
    o.stage_replicas = replicas;
    MlpModel copy = model.Clone();
    const BackpropResult hybrid = RunPipelined(copy, data.inputs, data.targets, o);
    EXPECT_LT(MaxGradientDiff(serial.grads, hybrid.grads), 1e-4f)
        << replicas[0] << ":" << replicas[1];
    EXPECT_NEAR(serial.loss, hybrid.loss, 1e-5);
  }
}

TEST(Hybrid, ReplicationWithRecompute) {
  Rng rng(44);
  DatasetSpec spec;
  spec.samples = 16;
  spec.in_features = 4;
  spec.out_features = 2;
  const Dataset data = MakeTeacherDataset(spec);
  MlpModel model = MlpModel::MakeMlp(4, 8, 2, 2, rng);
  const BackpropResult serial = RunSerial(model, data.inputs, data.targets);

  PipelineRunOptions o;
  o.stage_bounds = {0, 2, 5};
  o.micro_batch = 4;
  o.stage_replicas = {2, 2};
  o.schedule.recompute = true;
  const BackpropResult hybrid = RunPipelined(model, data.inputs, data.targets, o);
  EXPECT_LT(MaxGradientDiff(serial.grads, hybrid.grads), 1e-4f);
}

TEST(Hybrid, InvalidReplicationRejected) {
  Rng rng(45);
  DatasetSpec spec;
  spec.samples = 16;
  spec.in_features = 4;
  spec.out_features = 2;
  const Dataset data = MakeTeacherDataset(spec);
  MlpModel model = MlpModel::MakeMlp(4, 8, 2, 2, rng);
  PipelineRunOptions o;
  o.stage_bounds = {0, 2, 5};
  o.micro_batch = 4;
  o.stage_replicas = {3, 1};  // 3 does not divide micro-batch 4
  EXPECT_THROW(RunPipelined(model, data.inputs, data.targets, o), Error);
  o.stage_replicas = {2};  // arity mismatch
  EXPECT_THROW(RunPipelined(model, data.inputs, data.targets, o), Error);
}

}  // namespace
}  // namespace dapple::train

// -- appended: randomized equivalence sweep ------------------------------

namespace dapple::train {
namespace {

class RandomEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomEquivalenceTest, PipelineAlwaysMatchesSerial) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()) * 31);
  DatasetSpec spec;
  spec.samples = 8 * static_cast<std::size_t>(rng.UniformInt(2, 6));
  spec.in_features = static_cast<std::size_t>(rng.UniformInt(2, 8));
  spec.out_features = static_cast<std::size_t>(rng.UniformInt(1, 4));
  spec.seed = rng.Fork();
  const Dataset data = MakeTeacherDataset(spec);
  const int hidden_layers = static_cast<int>(rng.UniformInt(1, 4));
  MlpModel model = MlpModel::MakeMlp(spec.in_features, 8, spec.out_features,
                                     hidden_layers, rng, rng.Bernoulli(0.5));
  const BackpropResult serial = RunSerial(model, data.inputs, data.targets);

  // Random contiguous stage bounds.
  PipelineRunOptions o;
  o.stage_bounds = {0};
  const int layers = model.num_layers();
  const int stages = static_cast<int>(rng.UniformInt(1, std::min(3, layers)));
  for (int s = 1; s < stages; ++s) {
    int candidate = static_cast<int>(rng.UniformInt(o.stage_bounds.back() + 1,
                                                    layers - (stages - s)));
    o.stage_bounds.push_back(candidate);
  }
  o.stage_bounds.push_back(layers);
  // Random micro-batch dividing the sample count.
  std::vector<int> divisors;
  for (int d = 1; d <= static_cast<int>(spec.samples); ++d) {
    if (static_cast<int>(spec.samples) % d == 0) divisors.push_back(d);
  }
  o.micro_batch = divisors[static_cast<std::size_t>(
      rng.UniformInt(0, static_cast<long>(divisors.size()) - 1))];
  o.schedule.kind = rng.Bernoulli(0.5) ? runtime::ScheduleKind::kDapple
                                       : runtime::ScheduleKind::kGPipe;
  o.schedule.warmup = rng.Bernoulli(0.5) ? runtime::WarmupPolicy::kPA
                                         : runtime::WarmupPolicy::kPB;
  o.schedule.recompute = rng.Bernoulli(0.3);

  const BackpropResult pipe = RunPipelined(model, data.inputs, data.targets, o);
  EXPECT_LT(MaxGradientDiff(serial.grads, pipe.grads), 2e-4f)
      << "stages=" << stages << " micro=" << o.micro_batch
      << " schedule=" << runtime::ToString(o.schedule.kind)
      << " recompute=" << o.schedule.recompute;
  EXPECT_NEAR(serial.loss, pipe.loss, 1e-5 * (1 + std::abs(serial.loss)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomEquivalenceTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace dapple::train
