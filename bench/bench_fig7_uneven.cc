// Fig. 7: the minimum example where a slightly uneven partition beats the
// perfectly even split on two devices.
#include "harness.h"

#include <cstdio>

#include "common/table.h"

using namespace dapple;

int main() {
  bench::PrintHeader("Fig. 7 — uneven pipeline minimum example", "DAPPLE paper, Fig. 7");

  // GNMT-16's encoder/decoder imbalance on 2x8 devices: sweep the split
  // position and report simulated latency per split.
  const model::ModelProfile gnmt = model::MakeGnmt16();
  const topo::Cluster cluster = topo::MakeConfigA(2);
  const long gbs = 1024;

  AsciiTable table({"Split (enc-side : dec-side)", "Simulated latency", "Speedup",
                    "Note"});
  double best_latency = 1e30;
  int best_split = -1;
  for (int split = 6; split <= 11; ++split) {
    planner::ParallelPlan plan;
    plan.model = gnmt.name();
    planner::StagePlan s0, s1;
    s0.layer_begin = 0;
    s0.layer_end = split;
    s0.devices = topo::DeviceSet::Range(0, 8);
    s1.layer_begin = split;
    s1.layer_end = 16;
    s1.devices = topo::DeviceSet::Range(8, 8);
    plan.stages = {s0, s1};
    runtime::BuildOptions o;
    o.global_batch_size = gbs;
    runtime::PipelineExecutor exec(gnmt, cluster, plan, o);
    const auto r = exec.Run();
    if (r.pipeline_latency < best_latency) {
      best_latency = r.pipeline_latency;
      best_split = split;
    }
    table.AddRow({std::to_string(split) + " : " + std::to_string(16 - split),
                  FormatTime(r.pipeline_latency), AsciiTable::Num(r.speedup, 2),
                  split == 8 ? "even split" : ""});
  }
  std::printf("%s", table.ToString().c_str());
  bench::PrintComparison("best split", "uneven (9:7)",
                         std::to_string(best_split) + ":" + std::to_string(16 - best_split));
  std::printf("\nShape check: the even 8:8 split is NOT optimal; shifting the\n"
              "boundary into the cheaper encoder side balances the stages\n"
              "(decoder layers cost ~1.45x an encoder layer).\n");
  return 0;
}
