// Fault injection and recovery-policy comparison (the paper's elasticity
// argument, §VI): the DP planner is cheap enough to re-run online, so a
// degraded cluster should be replanned, not waited out. Three scenarios on
// Config-A with GNMT-16 — a persistent 0.5x straggler server, a fail-stop
// crash mid-training, and a transient link degradation — each measured
// under all three recovery policies (sync-stall, checkpoint–restart,
// elastic replan).
#include "harness.h"

#include <cmath>
#include <cstdio>
#include <string>

using namespace dapple;

namespace {

std::string Num(double v, const char* unit) {
  if (std::isinf(v)) return "never";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f%s", v, unit);
  return buf;
}

void RunScenario(const char* title, const model::ModelProfile& m,
                 const topo::Cluster& cluster, const planner::ParallelPlan& plan,
                 const fault::FaultScript& script, const fault::FaultOptions& options) {
  std::printf("\n--- %s ---\n", title);
  std::printf("%s", script.ToString().c_str());
  std::printf("  %-12s %6s %12s %8s %10s %12s %s\n", "policy", "iters", "goodput",
              "loss", "recover", "post-fault", "actions");
  for (auto policy :
       {fault::RecoveryPolicy::kSyncStall, fault::RecoveryPolicy::kCheckpointRestart,
        fault::RecoveryPolicy::kElasticReplan}) {
    const fault::FaultReport r =
        fault::RunFaultExperiment(m, cluster, plan, script, policy, options);
    char actions[64];
    std::snprintf(actions, sizeof(actions), "%dx replan %dx ckpt %dx restore",
                  r.replans, r.checkpoints, r.restores);
    std::printf("  %-12s %6d %12s %7.1f%% %10s %12s %s\n", fault::ToString(policy),
                r.iterations_completed, Num(r.goodput, "/s").c_str(),
                100.0 * r.goodput_loss, Num(r.time_to_recover, "s").c_str(),
                Num(r.post_fault_throughput, "/s").c_str(), actions);
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Fault injection — recovery-policy comparison on Config-A",
                     "DAPPLE paper, §VI (planner reuse under cluster changes)");

  const model::ModelProfile m = model::MakeGnmt16();
  const topo::Cluster cluster = topo::MakeConfigA(2);
  const long gbs = 64;

  // Healthy baseline row (also lands in the BENCH_*.json record).
  const bench::EvalRow healthy = bench::Evaluate(m, cluster, gbs);
  std::printf("\nhealthy plan %s: %.2f samples/s\n",
              healthy.planned.plan.ToString().c_str(), healthy.hybrid.throughput);

  fault::FaultOptions options;
  options.build.global_batch_size = gbs;
  options.planner.keep_alternatives = 0;
  // GNMT-16 iterations are ~160 ms here, so scale the horizon and the
  // control-plane costs accordingly (the FaultOptions defaults assume
  // multi-second iterations).
  options.horizon = 20.0;
  options.checkpoint_cost = 0.05;
  options.restore_cost = 1.0;
  options.detect_latency = 0.25;
  options.replan_cost = 0.5;

  const fault::FaultScript straggler =
      fault::ParseFaultScript("slowdown server=1 start=2 mult=0.5\n");
  RunScenario("persistent 0.5x straggler server", m, cluster, healthy.planned.plan,
              straggler, options);

  const fault::FaultReport stall = fault::RunFaultExperiment(
      m, cluster, healthy.planned.plan, straggler, fault::RecoveryPolicy::kSyncStall,
      options);
  const fault::FaultReport replan = fault::RunFaultExperiment(
      m, cluster, healthy.planned.plan, straggler, fault::RecoveryPolicy::kElasticReplan,
      options);

  RunScenario("fail-stop crash mid-training", m, cluster, healthy.planned.plan,
              fault::ParseFaultScript("crash device=12 at=12\n"), options);

  RunScenario("transient link degradation", m, cluster, healthy.planned.plan,
              fault::ParseFaultScript(
                  "degrade server=1 start=4 end=14 bandwidth=0.25 latency=0.0005\n"),
              options);

  bench::PrintComparison(
      "straggler goodput, elastic replan vs sync-stall",
      "replan wins",
      Num(replan.goodput, "/s") + " vs " + Num(stall.goodput, "/s"));
  bench::PrintComparison("straggler time-to-recover (replan)", "few iterations",
                         Num(replan.time_to_recover, "s"));
  return 0;
}
