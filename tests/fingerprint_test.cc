// Golden-value tests for the stable 64-bit fingerprint. These constants pin
// the canonical encoding itself: if any of them changes, every persisted
// fingerprint (plan-cache keys, BENCH row ids) silently changes meaning.
// Update them only for a deliberate, versioned encoding change.
#include "common/fingerprint.h"

#include <gtest/gtest.h>

namespace dapple {
namespace {

TEST(Fingerprint, GoldenValues) {
  EXPECT_EQ(Fingerprint64().digest(), 14695981039346656037ull);  // FNV offset basis
  EXPECT_EQ(Fingerprint64().Mix(std::uint64_t{0}).digest(), 12161962213042174405ull);
  EXPECT_EQ(Fingerprint64().Mix(std::uint64_t{1}).digest(), 9929646806074584996ull);
  EXPECT_EQ(Fingerprint64().Mix(std::int64_t{-1}).digest(), 10157053723145373757ull);
  EXPECT_EQ(Fingerprint64().Mix(3.25).digest(), 12156152393599842831ull);
  EXPECT_EQ(Fingerprint64().Mix(true).digest(), 12638152016183539244ull);
  EXPECT_EQ(Fingerprint64().Mix("GNMT-16").digest(), 7430650025091691278ull);
  EXPECT_EQ(
      Fingerprint64().Mix("model/v1").Mix(std::int64_t{64}).Mix(2.5).Mix(false).digest(),
      9681871815477372230ull);
}

TEST(Fingerprint, SignedZeroNormalizesToPositiveZero) {
  EXPECT_EQ(Fingerprint64().Mix(0.0).digest(), Fingerprint64().Mix(-0.0).digest());
  // And double 0.0 encodes exactly like integer 0 (all-zero bit pattern).
  EXPECT_EQ(Fingerprint64().Mix(0.0).digest(),
            Fingerprint64().Mix(std::uint64_t{0}).digest());
}

TEST(Fingerprint, LengthPrefixKeepsStringBoundariesDistinct) {
  const auto ab_c = Fingerprint64().Mix("ab").Mix("c").digest();
  const auto a_bc = Fingerprint64().Mix("a").Mix("bc").digest();
  EXPECT_EQ(ab_c, 9106356563233852118ull);
  EXPECT_EQ(a_bc, 13411190885463677162ull);
  EXPECT_NE(ab_c, a_bc);
}

TEST(Fingerprint, OrderMatters) {
  EXPECT_NE(Fingerprint64().Mix(std::uint64_t{1}).Mix(std::uint64_t{2}).digest(),
            Fingerprint64().Mix(std::uint64_t{2}).Mix(std::uint64_t{1}).digest());
}

TEST(Fingerprint, DigestIsNeverZero) {
  // The empty digest is the offset basis; any digest that lands on 0 is
  // remapped so 0 stays usable as an "absent" sentinel.
  EXPECT_NE(Fingerprint64().digest(), 0u);
  EXPECT_NE(Fingerprint64().Mix(std::uint64_t{0}).digest(), 0u);
}

TEST(Fingerprint, ToStringIsFixedWidthHex) {
  EXPECT_EQ(FingerprintToString(9681871815477372230ull), "fp:865ceb1e92652546");
  EXPECT_EQ(FingerprintToString(1), "fp:0000000000000001");
}

}  // namespace
}  // namespace dapple
