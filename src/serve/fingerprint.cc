#include "serve/fingerprint.h"

#include "runtime/schedule.h"
#include "topo/assignment.h"

namespace dapple::serve {

std::uint64_t FingerprintModel(const model::ModelProfile& model) {
  Fingerprint64 fp;
  fp.Mix("model/v1");
  fp.Mix(model.name());
  fp.Mix(static_cast<std::int64_t>(model.optimizer()));
  fp.Mix(model.profile_micro_batch());
  fp.Mix(static_cast<std::uint64_t>(model.num_layers()));
  for (const model::LayerProfile& layer : model.layers()) {
    fp.Mix(layer.name);
    fp.Mix(layer.forward_time);
    fp.Mix(layer.backward_time);
    fp.Mix(layer.fixed_overhead);
    fp.Mix(layer.output_activation);
    fp.Mix(layer.activation_memory);
    fp.Mix(layer.param_count);
  }
  return fp.digest();
}

std::uint64_t FingerprintCluster(const topo::Cluster& cluster) {
  Fingerprint64 fp;
  fp.Mix("cluster/v1");
  fp.Mix(cluster.name());
  fp.Mix(cluster.num_servers());
  fp.Mix(cluster.gpus_per_server());
  const topo::DeviceSpec& device = cluster.device();
  fp.Mix(device.name);
  fp.Mix(device.memory);
  fp.Mix(device.relative_speed);
  const topo::InterconnectSpec& net = cluster.interconnect();
  fp.Mix(net.intra_server_bandwidth);
  fp.Mix(net.intra_server_latency);
  fp.Mix(net.inter_server_bandwidth);
  fp.Mix(net.inter_server_latency);
  fp.Mix(cluster.homogeneous());
  if (!cluster.homogeneous()) {
    for (int s = 0; s < cluster.num_servers(); ++s) fp.Mix(cluster.server_speed(s));
  }
  return fp.digest();
}

std::uint64_t FingerprintPlannerOptions(const planner::PlannerOptions& options) {
  Fingerprint64 fp;
  fp.Mix("planner-options/v1");
  fp.Mix(static_cast<std::int64_t>(options.global_batch_size));
  fp.Mix(options.max_stages);
  fp.Mix(options.prune_slack);
  fp.Mix(options.keep_alternatives);
  fp.Mix(static_cast<std::uint64_t>(options.policies.size()));
  for (const topo::PlacementPolicy policy : options.policies) {
    fp.Mix(static_cast<std::int64_t>(policy));
  }
  fp.Mix(options.memory_cap);
  fp.Mix(static_cast<std::int64_t>(options.recompute));
  const planner::LatencyOptions& latency = options.latency;
  fp.Mix(latency.overlap_allreduce);
  fp.Mix(latency.overlap_efficiency);
  fp.Mix(latency.check_memory);
  fp.Mix(latency.memory_cap);
  fp.Mix(static_cast<std::int64_t>(latency.schedule_kind));
  fp.Mix(latency.recompute);
  fp.Mix(latency.recompute_overhead);
  return fp.digest();
}

std::uint64_t FingerprintPlanRequest(const model::ModelProfile& model,
                                     const topo::Cluster& cluster,
                                     long global_batch_size,
                                     const planner::PlannerOptions& options) {
  Fingerprint64 fp;
  fp.Mix("plan-request/v1");
  fp.Mix(FingerprintModel(model));
  fp.Mix(FingerprintCluster(cluster));
  fp.Mix(static_cast<std::int64_t>(global_batch_size));
  fp.Mix(FingerprintPlannerOptions(options));
  return fp.digest();
}

}  // namespace dapple::serve
