// Pinned fuzz-seed regressions. Each seed here once exposed (or guards
// against reintroducing) a specific estimator/simulator divergence; the
// cases run in the fast unit tier so the bracket constants in check/fuzz.h
// cannot loosen unnoticed between full fuzz sweeps.
#include <gtest/gtest.h>

#include <set>

#include "check/fuzz.h"
#include "fault/script.h"

namespace dapple {
namespace {

// Seed 16186: a two-stage 1:3 plan on Config-C whose steady phase is
// transfer-heavy. Under the old serial comm model (steady = (M-1)(F+B) on
// one lane) the analytic latency overshot the simulated makespan by far
// more than the duplex-aware bracket allows; with comm rounds gated by
// max(F, B) it sits well inside kAnalyticOverSimCommTolerance.
//
// Re-pinned from seed 4299 when the generator grew the schedule-kind draw
// (4299 now lands on V-Min, which skips the latency bracket); 16186 is the
// same case shape — 2L/pmb3, Config-C(4), 1:3 split — under the new stream.
TEST(FuzzRegression, Seed16186StaysInsideTheDuplexBracket) {
  const check::FuzzCase c = check::MakeFuzzCase(16186);
  ASSERT_GE(c.plan.num_stages(), 2) << c.Describe();
  const check::FuzzOutcome out = check::RunFuzzCase(c);
  EXPECT_TRUE(out.ok()) << out.Summary();
  ASSERT_TRUE(out.checked_latency) << c.Describe();
  ASSERT_GT(out.simulated_makespan, 0.0);
  ASSERT_GT(out.analytic_latency, 0.0);

  // The tightened bracket, asserted explicitly so a tolerance loosening in
  // check/fuzz.h needs a deliberate edit here too.
  EXPECT_LE(out.analytic_latency,
            out.simulated_makespan * check::kAnalyticOverSimCommTolerance);
  EXPECT_LE(out.simulated_makespan,
            out.analytic_latency * check::kSimOverAnalyticTolerance);
  EXPECT_LE(check::kAnalyticOverSimCommTolerance, 1.30);
  EXPECT_LE(check::kSimOverAnalyticTolerance, 2.0);
}

// Seed 3410 produced the worst analytic/sim ratio (1.049) of the 100k-seed
// calibration sweep; it anchors the headroom below the 1.30 tolerance. It
// survived the schedule-kind expansion unchanged: a 20k-seed re-sweep over
// the five-kind generator still reports 3410 as the multi-stage worst case
// at the same 1.0489 ratio.
TEST(FuzzRegression, Seed3410IsTheSweepWorstCaseAndPasses) {
  const check::FuzzOutcome out = check::RunFuzzSeed(3410);
  EXPECT_TRUE(out.ok()) << out.Summary();
  ASSERT_TRUE(out.checked_latency);
  EXPECT_LE(out.analytic_latency / out.simulated_makespan, 1.10);
}

// One pinned seed per schedule family added in the schedule-space
// expansion, each chosen for breadth: a replicated stage, a warmup
// override, or recompute on top of the new family's own machinery. These
// run the full validator invariant set (warmup shape, per-device order,
// in-flight cap, AllReduce gating) in the fast unit tier, so a generator
// or builder change that breaks a family fails here before the next long
// fuzz sweep.

// DAPPLE-2BP on a 3-stage 2:1:1 plan with a K=1 warmup override and the
// memory cap active: the split backward emits BI/BWW halves, the BWW half
// gates the replicated stage's AllReduce, and the in-flight window runs at
// the clamped K+1 transient.
TEST(FuzzRegression, Seed15PinsTheSplitBackwardFamily) {
  const check::FuzzCase c = check::MakeFuzzCase(15);
  ASSERT_EQ(c.options.schedule.kind, runtime::ScheduleKind::kDappleSplitBw)
      << c.Describe();
  ASSERT_GE(c.plan.num_stages(), 2) << c.Describe();
  const check::FuzzOutcome out = check::RunFuzzCase(c);
  EXPECT_TRUE(out.ok()) << out.Summary();
  EXPECT_GT(out.num_tasks, 0);
}

// V-Min on a 4-stage 2:4:1:1 plan (folds onto two groups) with recompute:
// every device hosts two non-adjacent chunks and the validator checks the
// merged group order against BuildVSchedule.
TEST(FuzzRegression, Seed64PinsTheVMinFamily) {
  const check::FuzzCase c = check::MakeFuzzCase(64);
  ASSERT_EQ(c.options.schedule.kind, runtime::ScheduleKind::kVMin) << c.Describe();
  ASSERT_GE(c.plan.num_stages(), 3) << c.Describe();
  const check::FuzzOutcome out = check::RunFuzzCase(c);
  EXPECT_TRUE(out.ok()) << out.Summary();
  EXPECT_GT(out.num_tasks, 0);
}

// V-Half on a 3-stage 3:2:2 plan with round-robin micro-batch assignment:
// the odd chunk count leaves the middle group hosting a single chunk, and
// round-robin filtering applies per replica inside each group order.
TEST(FuzzRegression, Seed6PinsTheVHalfFamily) {
  const check::FuzzCase c = check::MakeFuzzCase(6);
  ASSERT_EQ(c.options.schedule.kind, runtime::ScheduleKind::kVHalf) << c.Describe();
  ASSERT_GE(c.plan.num_stages(), 3) << c.Describe();
  const check::FuzzOutcome out = check::RunFuzzCase(c);
  EXPECT_TRUE(out.ok()) << out.Summary();
  EXPECT_GT(out.num_tasks, 0);
}

// Fault-fuzz seed 27: a DP plan that uses a strict subset of the cluster's
// devices, leaving the task graph with fewer referenced resources than the
// cluster has hardware, plus a fault script that targets only the idle
// hardware. The first BuildSpeedProfiles emitted windows for the idle
// devices and the engine rejected them ("speed profile for unknown
// resource 2"); profiles must silently skip resources the graph never
// references — a fault on idle hardware is a no-op.
//
// Re-pinned when MakeFaultFuzzCase split the script draw onto its own
// rng stream (decoupling scripts from topology draws); seed 27 kept the
// property under the new stream, and the preconditions below now assert it
// outright so a future generator change that loses it fails loudly here
// instead of quietly pinning nothing.
TEST(FuzzRegression, FaultSeed27ToleratesFaultsOnIdleDevices) {
  const check::FaultFuzzCase c = check::MakeFaultFuzzCase(27);
  std::set<topo::DeviceId> used;
  for (const auto& stage : c.plan.stages) {
    for (topo::DeviceId d : stage.devices.devices()) used.insert(d);
  }
  ASSERT_LT(static_cast<int>(used.size()), c.cluster.num_devices()) << c.Describe();
  bool targets_idle_hardware = false;
  for (const fault::FaultEvent& e : c.script.events) {
    if (e.device >= 0 && !used.contains(e.device)) targets_idle_hardware = true;
    if (e.server >= 0) {
      bool server_used = false;
      for (int g = 0; g < c.cluster.gpus_per_server(); ++g) {
        if (used.contains(e.server * c.cluster.gpus_per_server() + g)) server_used = true;
      }
      if (!server_used) targets_idle_hardware = true;
    }
  }
  ASSERT_TRUE(targets_idle_hardware) << c.Describe();

  const check::FaultFuzzOutcome out = check::RunFaultFuzzCase(c);
  EXPECT_TRUE(out.ok()) << out.Summary();
  EXPECT_GE(out.pipelines_validated, 1);
}

}  // namespace
}  // namespace dapple
