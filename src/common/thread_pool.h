// Minimal fixed-size thread pool used to parallelize embarrassingly
// parallel phases: the planner's per-level candidate evaluations and the
// Session's simulator re-ranking. Tasks are std::function<void()>; the
// pool offers a bulk ParallelFor that blocks until every index is done.
//
// Determinism note: callers must make worker outputs order-independent
// (e.g. write to pre-sized slots indexed by the loop variable) — the pool
// guarantees completion, not ordering.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dapple {

class ThreadPool {
 public:
  /// `threads` of 0 picks the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Enqueues every task under one lock acquisition and wakes all workers
  /// once — the planner submits whole search levels at a time, where
  /// per-task locking is measurable overhead.
  void SubmitBatch(std::vector<std::function<void()>> tasks);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Runs body(i) for i in [0, count) across the pool and waits. Exceptions
  /// from the body propagate (the first one captured is rethrown).
  void ParallelFor(std::size_t count, const std::function<void(std::size_t)>& body);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& Shared();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_idle_;
  std::size_t in_flight_ = 0;
  bool shutdown_ = false;
};

}  // namespace dapple
