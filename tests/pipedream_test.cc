// Tests for the PipeDream baseline planner (paper SVI-F): min-max stage
// balancing, straight pipelines on uniform models, and the qualitative
// contrast with DAPPLE's fewer-stages preference.
#include <gtest/gtest.h>

#include "common/error.h"
#include "model/zoo.h"
#include "planner/dp_planner.h"
#include "planner/pipedream_planner.h"
#include "topo/cluster.h"

namespace dapple::planner {
namespace {

using model::MakeUniformSynthetic;

TEST(Pipedream, PlanIsValid) {
  const auto bert = model::MakeBertLarge();
  const auto cluster = topo::MakeConfigA(2);
  PipedreamPlanner planner(bert, cluster);
  const ParallelPlan plan = planner.Plan();
  plan.Validate(bert);
  EXPECT_EQ(plan.num_devices(), cluster.num_devices());
}

TEST(Pipedream, UniformModelBalancesPerfectly) {
  // 16 identical layers on 16 flat devices with small activations: the
  // min-max optimum is the straight pipeline (Table VII: XLNet-36 and
  // AmoebaNet-36 get "straight" from PipeDream).
  const auto m = MakeUniformSynthetic(16, 0.010, 0.020, 1000, 1'000'000, 1);
  const auto cluster = topo::MakeConfigB(16);
  PipedreamPlanner planner(m, cluster);
  const ParallelPlan plan = planner.Plan();
  EXPECT_TRUE(plan.IsStraight());
  EXPECT_EQ(plan.num_stages(), 16);
}

TEST(Pipedream, BottleneckIsMinimal) {
  // Brute force all two-stage splits with all replica splits on a small
  // instance; PipeDream's plan must achieve the best min-max value.
  const auto m = MakeUniformSynthetic(4, 0.010, 0.020, 1000, 1'000'000, 1);
  const auto cluster = topo::MakeConfigB(4);
  PipedreamPlanner planner(m, cluster);
  const ParallelPlan plan = planner.Plan();
  const double got = planner.Bottleneck(plan);

  double best = std::numeric_limits<double>::infinity();
  // Single stage on all 4.
  {
    ParallelPlan p;
    p.model = m.name();
    StagePlan s;
    s.layer_begin = 0;
    s.layer_end = 4;
    s.devices = topo::DeviceSet::Range(0, 4);
    p.stages = {s};
    best = std::min(best, planner.Bottleneck(p));
  }
  for (int split = 1; split < 4; ++split) {
    for (int r0 = 1; r0 < 4; ++r0) {
      ParallelPlan p;
      p.model = m.name();
      StagePlan s0, s1;
      s0.layer_begin = 0;
      s0.layer_end = split;
      s0.devices = topo::DeviceSet::Range(0, r0);
      s1.layer_begin = split;
      s1.layer_end = 4;
      s1.devices = topo::DeviceSet::Range(r0, 4 - r0);
      p.stages = {s0, s1};
      best = std::min(best, planner.Bottleneck(p));
    }
  }
  EXPECT_LE(got, best + 1e-12);
}

TEST(Pipedream, ReplicatesAroundHeavyLayer) {
  // One dominant layer amid light ones: the heavy layer's stage gets the
  // lion's share of devices.
  auto layers = MakeUniformSynthetic(5, 0.001, 0.002, 1000, 100'000, 1).layers();
  layers[2].forward_time = 0.100;
  layers[2].backward_time = 0.200;
  const model::ModelProfile m("skewed", layers, 1, model::OptimizerKind::kSGD);
  const auto cluster = topo::MakeConfigB(8);
  PipedreamPlanner planner(m, cluster);
  const ParallelPlan plan = planner.Plan();
  int heavy_stage_devices = 0;
  for (const StagePlan& s : plan.stages) {
    if (s.layer_begin <= 2 && 2 < s.layer_end) heavy_stage_devices = s.replication();
  }
  EXPECT_GE(heavy_stage_devices, 5);
}

TEST(Pipedream, ProducesMoreStagesThanDapple) {
  // The SIV-D contrast: DAPPLE prefers few uneven stages; PipeDream
  // balances into more stages on uniform models.
  const auto xlnet = model::MakeXlnet36();
  const auto cluster = topo::MakeConfigA(2);
  PipedreamPlanner pd(xlnet, cluster);
  const ParallelPlan pd_plan = pd.Plan();

  PlannerOptions o;
  o.global_batch_size = 128;
  DapplePlanner dapple(xlnet, cluster, o);
  const PlanResult dapple_plan = dapple.Plan();
  EXPECT_GE(pd_plan.num_stages(), dapple_plan.plan.num_stages());
}

TEST(Pipedream, DappleWinsUnderSynchronousEvaluation) {
  // Fig. 13's headline: evaluating PipeDream's strategy under the
  // synchronous objective is no better than DAPPLE's own plan.
  const auto bert = model::MakeBertLarge();
  const auto cluster = topo::MakeConfigA(2);
  PlannerOptions o;
  o.global_batch_size = 128;
  DapplePlanner dapple(bert, cluster, o);
  const PlanResult ours = dapple.Plan();
  const ParallelPlan theirs = PipedreamPlanner(bert, cluster).Plan();
  const PlanEstimate theirs_eval = dapple.Evaluate(theirs);
  EXPECT_LE(ours.estimate.latency, theirs_eval.latency * (1 + 1e-9));
}

TEST(Pipedream, MicroBatchOptionDefaultsToProfile) {
  const auto bert = model::MakeBert48();
  const auto cluster = topo::MakeConfigB(4);
  PipedreamOptions o;
  o.micro_batch_size = 8;
  PipedreamPlanner planner(bert, cluster, o);
  const ParallelPlan plan = planner.Plan();
  plan.Validate(bert);
}

}  // namespace
}  // namespace dapple::planner
