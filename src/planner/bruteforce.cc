#include "planner/bruteforce.h"

#include <limits>

#include "common/error.h"

namespace dapple::planner {

BruteForcePlanner::BruteForcePlanner(const model::ModelProfile& model,
                                     const topo::Cluster& cluster,
                                     BruteForceOptions options)
    : model_(&model), cluster_(&cluster), options_(options) {
  DAPPLE_CHECK_GT(options_.global_batch_size, 0);
  DAPPLE_CHECK_GT(options_.max_stages, 0);
}

void BruteForcePlanner::Recurse(int layer_begin, topo::AllocationState state,
                                std::vector<StagePlan>& prefix,
                                const LatencyEstimator& estimator, PlanResult& best,
                                long& evaluated) const {
  const int num_layers = model_->num_layers();

  // Option 1: close the plan with a final stage on any policy's placement
  // of any remaining device count.
  for (int m = 1; m <= state.num_free(); ++m) {
    for (topo::PlacementPolicy policy : topo::AllPlacementPolicies()) {
      const auto devices = state.Plan(policy, m);
      if (!devices) continue;
      ParallelPlan plan;
      plan.model = model_->name();
      plan.stages = prefix;
      StagePlan last;
      last.layer_begin = layer_begin;
      last.layer_end = num_layers;
      last.devices = *devices;
      last.policy = policy;
      plan.stages.push_back(std::move(last));
      const PlanEstimate est = estimator.Estimate(plan, options_.global_batch_size);
      ++evaluated;
      if (est.feasible &&
          (!best.estimate.feasible || est.latency < best.estimate.latency)) {
        best.plan = std::move(plan);
        best.estimate = est;
      }
    }
  }

  // Option 2: carve one more interior stage.
  if (static_cast<int>(prefix.size()) + 2 > options_.max_stages) return;
  for (int split = layer_begin + 1; split < num_layers; ++split) {
    for (int m = 1; m < state.num_free(); ++m) {
      for (topo::PlacementPolicy policy : topo::AllPlacementPolicies()) {
        const auto devices = state.Plan(policy, m);
        if (!devices) continue;
        StagePlan stage;
        stage.layer_begin = layer_begin;
        stage.layer_end = split;
        stage.devices = *devices;
        stage.policy = policy;
        prefix.push_back(std::move(stage));
        topo::AllocationState child = state;
        child.Commit(*devices);
        Recurse(split, std::move(child), prefix, estimator, best, evaluated);
        prefix.pop_back();
      }
    }
  }
}

PlanResult BruteForcePlanner::Plan() const {
  LatencyEstimator estimator(*model_, *cluster_, options_.latency);
  PlanResult best;
  best.estimate.feasible = false;
  best.estimate.latency = std::numeric_limits<TimeSec>::infinity();
  long evaluated = 0;
  std::vector<StagePlan> prefix;
  Recurse(0, topo::AllocationState(*cluster_), prefix, estimator, best, evaluated);
  best.candidates_evaluated = evaluated;
  DAPPLE_CHECK(best.estimate.feasible)
      << "brute force found no feasible plan for " << model_->name();
  return best;
}

}  // namespace dapple::planner
