// Table IV: normalized training throughput of warmup policy PB vs PA on
// Config-A plans. The paper reports PB/PA of 1.0 (BERT-48), 1.02
// (XLNet-36), 1.1 (VGG-19) and 1.31 (GNMT-16) — gains track the ACR.
#include "harness.h"

#include <cstdio>

#include "common/table.h"

using namespace dapple;

int main() {
  bench::PrintHeader("Table IV — scheduling policy PB vs PA", "DAPPLE paper, Table IV");

  struct Row {
    const char* name;
    long gbs;
    double paper_speedup;
  };
  const Row rows[] = {
      {"BERT-48", 64, 1.00}, {"XLNet-36", 128, 1.02}, {"VGG-19", 2048, 1.10},
      {"GNMT-16", 1024, 1.31}};

  AsciiTable table({"Model", "ACR", "PA thpt (samples/s)", "PB thpt (samples/s)",
                    "PB/PA (measured)", "PB/PA (paper)"});
  for (const Row& row : rows) {
    const model::ModelProfile m = model::ModelByName(row.name);
    const topo::Cluster cluster = topo::MakeConfigA(2);
    Session session(m, cluster);
    const auto planned = session.Plan(row.gbs);

    auto run_with = [&](runtime::WarmupPolicy policy) {
      runtime::BuildOptions o;
      o.global_batch_size = row.gbs;
      o.schedule.warmup = policy;
      return session.Run(planned.plan, row.gbs, o);
    };
    const auto pa = run_with(runtime::WarmupPolicy::kPA);
    const auto pb = run_with(runtime::WarmupPolicy::kPB);
    table.AddRow({row.name, AsciiTable::Num(planned.estimate.acr, 2),
                  AsciiTable::Num(pa.throughput, 1), AsciiTable::Num(pb.throughput, 1),
                  AsciiTable::Num(pb.throughput / pa.throughput, 3),
                  AsciiTable::Num(row.paper_speedup, 2)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nShape check: PB never hurts, and only pays off when cross-stage\n"
              "communication is non-negligible relative to compute (higher ACR).\n");
  return 0;
}
