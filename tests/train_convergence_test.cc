// Convergence equivalence (paper §VI-A: "convergence is safely
// preserved"): full training runs under serial, data-parallel and
// DAPPLE-pipelined execution must produce identical loss curves and final
// weights, and must actually converge on a learnable task. Parameterized
// across optimizers — the paper trains with Adam, SGD and RMSProp.
#include <gtest/gtest.h>

#include <memory>

#include "train/trainer.h"

namespace dapple::train {
namespace {

struct ConvergenceCase {
  const char* name;
  std::function<std::unique_ptr<Optimizer>()> make_optimizer;
  // Adaptive optimizers divide by accumulated squared gradients, which
  // amplifies float32 summation-order differences between strategies over
  // long runs; they get wider (still tight) tolerances.
  double loss_tolerance = 1e-4;
  float weight_tolerance = 5e-3f;
};

class ConvergenceTest : public ::testing::TestWithParam<ConvergenceCase> {
 protected:
  ConvergenceTest() {
    DatasetSpec spec;
    spec.samples = 64;
    spec.in_features = 5;
    spec.out_features = 2;
    spec.teacher_hidden = 8;
    spec.seed = 2024;
    data_ = MakeTeacherDataset(spec);
    Rng rng(77);
    model_ = MlpModel::MakeMlp(5, 12, 2, /*hidden_layers=*/2, rng);
  }
  Dataset data_;
  MlpModel model_;
};

TEST_P(ConvergenceTest, AllStrategiesProduceIdenticalTrajectories) {
  const auto& param = GetParam();

  TrainerOptions serial;
  serial.strategy = Strategy::kSerial;
  serial.iterations = 60;
  auto opt1 = param.make_optimizer();
  TrainingRun run_serial = Train(model_, data_, *opt1, serial);

  TrainerOptions dp = serial;
  dp.strategy = Strategy::kDataParallel;
  dp.replicas = 4;
  auto opt2 = param.make_optimizer();
  TrainingRun run_dp = Train(model_, data_, *opt2, dp);

  TrainerOptions pipe = serial;
  pipe.strategy = Strategy::kPipelined;
  pipe.pipeline.stage_bounds = {0, 2, 5};  // Linear Tanh | Linear Tanh Linear
  pipe.pipeline.micro_batch = 8;
  auto opt3 = param.make_optimizer();
  TrainingRun run_pipe = Train(model_, data_, *opt3, pipe);

  // Loss curves match step for step.
  ASSERT_EQ(run_serial.losses.size(), run_pipe.losses.size());
  for (std::size_t i = 0; i < run_serial.losses.size(); ++i) {
    EXPECT_NEAR(run_serial.losses[i], run_dp.losses[i],
                param.loss_tolerance * (1.0 + std::abs(run_serial.losses[i])))
        << param.name << " iter " << i;
    EXPECT_NEAR(run_serial.losses[i], run_pipe.losses[i],
                param.loss_tolerance * (1.0 + std::abs(run_serial.losses[i])))
        << param.name << " iter " << i;
  }

  // Final weights match.
  EXPECT_LT(MaxWeightDiff(run_serial.final_model, run_dp.final_model),
            param.weight_tolerance);
  EXPECT_LT(MaxWeightDiff(run_serial.final_model, run_pipe.final_model),
            param.weight_tolerance);

  // And training actually converged (teacher task is learnable).
  EXPECT_LT(run_serial.final_loss(), 0.5 * run_serial.losses.front());
}

INSTANTIATE_TEST_SUITE_P(
    Optimizers, ConvergenceTest,
    ::testing::Values(ConvergenceCase{"SGD", [] { return MakeSgd(0.05f); }},
                      ConvergenceCase{"Momentum", [] { return MakeMomentum(0.02f); }},
                      ConvergenceCase{"Adam", [] { return MakeAdam(0.01f); }},
                      ConvergenceCase{"RMSProp", [] { return MakeRmsProp(0.005f); },
                                      /*loss_tolerance=*/3e-2, /*weight_tolerance=*/0.05f}),
    [](const auto& info) { return info.param.name; });

TEST(Convergence, RecomputePipelineTrainsIdentically) {
  DatasetSpec spec;
  spec.samples = 32;
  spec.in_features = 4;
  spec.out_features = 1;
  const Dataset data = MakeTeacherDataset(spec);
  Rng rng(5);
  const MlpModel model = MlpModel::MakeMlp(4, 8, 1, 2, rng);

  TrainerOptions plain;
  plain.strategy = Strategy::kPipelined;
  plain.iterations = 40;
  plain.pipeline.stage_bounds = {0, 2, 5};
  plain.pipeline.micro_batch = 4;
  TrainerOptions rc = plain;
  rc.pipeline.schedule.recompute = true;

  auto o1 = MakeSgd(0.05f);
  auto o2 = MakeSgd(0.05f);
  TrainingRun r_plain = Train(model, data, *o1, plain);
  TrainingRun r_rc = Train(model, data, *o2, rc);
  for (std::size_t i = 0; i < r_plain.losses.size(); ++i) {
    EXPECT_NEAR(r_plain.losses[i], r_rc.losses[i], 1e-5);
  }
  EXPECT_LT(MaxWeightDiff(r_plain.final_model, r_rc.final_model), 1e-4f);
}

TEST(Convergence, StashBoundHoldsAcrossWholeRun) {
  DatasetSpec spec;
  spec.samples = 32;
  spec.in_features = 4;
  spec.out_features = 1;
  const Dataset data = MakeTeacherDataset(spec);
  Rng rng(6);
  const MlpModel model = MlpModel::MakeMlp(4, 8, 1, 2, rng);

  TrainerOptions pipe;
  pipe.strategy = Strategy::kPipelined;
  pipe.iterations = 10;
  pipe.pipeline.stage_bounds = {0, 2, 5};
  pipe.pipeline.micro_batch = 2;  // M = 16 per iteration
  auto opt = MakeSgd(0.05f);
  const TrainingRun run = Train(model, data, *opt, pipe);
  ASSERT_EQ(run.max_in_flight.size(), 2u);
  EXPECT_LE(run.max_in_flight[0], 2);  // K_0 = S = 2
  EXPECT_EQ(run.max_in_flight[1], 1);
}

TEST(Convergence, StrategyNames) {
  EXPECT_STREQ(ToString(Strategy::kSerial), "serial");
  EXPECT_STREQ(ToString(Strategy::kDataParallel), "data-parallel");
  EXPECT_STREQ(ToString(Strategy::kPipelined), "pipelined");
}

}  // namespace
}  // namespace dapple::train
