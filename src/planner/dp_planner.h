// The DAPPLE planner (paper §IV): dynamic programming over (partition
// point, device allocation) states. A state TPL(j, state) means "the first
// j layers are planned; the remaining layers form one stage on all free
// devices". Transitions carve one more stage [j, j') placed by one of the
// three topology-aware policies; states are memoized on (j, canonical
// allocation key), where the canonical key exploits server symmetry
// (identical machines are interchangeable). Every visited state is also a
// complete candidate plan (prefix + default suffix), so pure data
// parallelism (j = 0) and straight pipelines fall out of the same search.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "planner/latency.h"
#include "planner/plan.h"
#include "planner/stage_cache.h"

namespace dapple::planner {

struct PlannerOptions {
  long global_batch_size = 0;
  /// Cap on computation stages (0 = number of devices). Smaller caps speed
  /// up the search; the paper's insight is that few stages win anyway.
  int max_stages = 0;
  /// Prune transitions whose prefix-TPL already exceeds the incumbent by
  /// this factor. 0 disables pruning.
  double prune_slack = 2.0;
  /// Number of best distinct candidates to keep for downstream re-ranking
  /// (the Session verifies the analytic top-k against the discrete-event
  /// simulator, whose schedule is exact where formula 1 approximates).
  int keep_alternatives = 8;
  /// Ablation hook: restrict the device-placement search to a subset of
  /// the three policies. Empty = all (the paper's full search space).
  std::vector<topo::PlacementPolicy> policies;
  LatencyOptions latency;
  /// Worker threads for the subproblem-parallel search: 0 = the shared
  /// pool (sized to hardware concurrency), 1 = fully serial in the calling
  /// thread, n > 1 = a dedicated pool of n workers for this search. The
  /// winning plan is byte-identical at every setting (the merge is
  /// sequential in enumeration order; parallel work is slot-indexed).
  int num_threads = 0;
  /// Lock shards of the stage-cost memo cache (rounded up to a power of
  /// two). More shards cut contention when many threads evaluate at once.
  int cache_shards = 16;
  /// Disables the stage-cost memo cache (A/B benchmarking hook). Cached
  /// values are bit-identical to recomputation, so this never changes the
  /// resulting plan — only how fast the search finds it.
  bool use_stage_cache = true;
};

struct PlanResult {
  ParallelPlan plan;
  PlanEstimate estimate;
  /// Number of complete candidate plans evaluated during the search.
  long candidates_evaluated = 0;
  /// Best distinct candidates by analytic latency, ascending (includes the
  /// winner at index 0).
  std::vector<std::pair<ParallelPlan, PlanEstimate>> alternatives;
  /// How the search ran: decomposition, cache traffic, wall time.
  PlannerSearchStats stats;
};

class DapplePlanner {
 public:
  DapplePlanner(const model::ModelProfile& model, const topo::Cluster& cluster,
                PlannerOptions options);

  /// Runs the search and returns the best feasible plan. Throws when no
  /// feasible plan exists (model cannot fit the cluster at all).
  PlanResult Plan() const;

  /// Evaluates a fully specified plan with this planner's latency options
  /// (used to compare externally produced strategies, e.g. PipeDream's).
  PlanEstimate Evaluate(const ParallelPlan& plan) const;

 private:
  const model::ModelProfile* model_;
  const topo::Cluster* cluster_;
  PlannerOptions options_;
};

}  // namespace dapple::planner
