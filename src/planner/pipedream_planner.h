// PipeDream's planner (Narayanan et al., SOSP'19), reimplemented as the
// paper's §VI-F baseline. PipeDream optimizes asynchronous steady-state
// throughput: it minimizes the *maximum* per-stage time (compute divided by
// the stage's replica count, plus incoming activation transfer), via a
// hierarchical dynamic program with contiguous device assignment. It does
// not model synchronous pipeline latency, AllReduce cost at iteration end,
// or the stage-count bubble penalty — precisely the blind spots DAPPLE's
// planner addresses. We run its strategies under the DAPPLE runtime, as
// the paper does, to produce Table VII / Fig. 13.
#pragma once

#include "model/profile.h"
#include "planner/plan.h"
#include "topo/cluster.h"

namespace dapple::planner {

struct PipedreamOptions {
  /// Micro-batch size used to weigh per-stage costs (PipeDream balances at
  /// the training micro-batch). 0 = the model's profile micro-batch.
  int micro_batch_size = 0;
};

class PipedreamPlanner {
 public:
  PipedreamPlanner(const model::ModelProfile& model, const topo::Cluster& cluster,
                   PipedreamOptions options = {});

  /// Runs the min-max balancing DP over all G devices and returns the
  /// resulting plan (stages in layer order, devices assigned contiguously).
  ParallelPlan Plan() const;

  /// The DP objective value of a plan: max over stages of per-replica
  /// stage time (compute/replicas + inbound activation transfer).
  double Bottleneck(const ParallelPlan& plan) const;

 private:
  double StageCostValue(int layer_begin, int layer_end, int replicas) const;

  const model::ModelProfile* model_;
  const topo::Cluster* cluster_;
  PipedreamOptions options_;
};

}  // namespace dapple::planner
