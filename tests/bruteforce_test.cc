// Validates the DP planner against the exhaustive reference on instances
// small enough to enumerate: the DP's memoization (canonical allocation
// keys + best-prefix-per-state) is a heuristic, so we check it stays
// within a tight factor of the true optimum (and is exact in most cases).
#include <gtest/gtest.h>

#include "common/error.h"
#include "model/zoo.h"
#include "planner/bruteforce.h"
#include "planner/dp_planner.h"
#include "topo/cluster.h"

namespace dapple::planner {
namespace {

using model::MakeUniformSynthetic;

TEST(BruteForce, FindsFeasiblePlansOnly) {
  const auto m = MakeUniformSynthetic(4, 0.01, 0.02, 1_MiB, 1'000'000, 1);
  const auto cluster = topo::MakeConfigB(3);
  BruteForceOptions o;
  o.global_batch_size = 16;
  BruteForcePlanner planner(m, cluster, o);
  const PlanResult result = planner.Plan();
  result.plan.Validate(m);
  EXPECT_TRUE(result.estimate.feasible);
  EXPECT_GT(result.candidates_evaluated, 3);
}

TEST(BruteForce, ThrowsWhenNothingFits) {
  const auto huge = MakeUniformSynthetic(3, 0.01, 0.02, 1_MiB, 3'000'000'000ull, 1,
                                         model::OptimizerKind::kAdam);
  const auto cluster = topo::MakeConfigB(2);
  BruteForceOptions o;
  o.global_batch_size = 8;
  BruteForcePlanner planner(huge, cluster, o);
  EXPECT_THROW(planner.Plan(), dapple::Error);
}

class DpVsBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(DpVsBruteForceTest, DpWithinFactorOfOptimum) {
  // Sweep a family of small instances: layer counts, device counts,
  // gradient weights and activation sizes varied by the parameter.
  const int seed = GetParam();
  const int layers = 3 + seed % 3;
  const int devices = 2 + seed % 3;
  const auto m = MakeUniformSynthetic(layers, 0.005 + 0.004 * (seed % 4),
                                      0.010 + 0.008 * (seed % 4),
                                      static_cast<Bytes>((1 + seed % 8) * 1024 * 1024),
                                      static_cast<std::uint64_t>(1 + seed % 5) * 4'000'000,
                                      1);
  const auto cluster = seed % 2 == 0 ? topo::MakeConfigB(devices)
                                     : topo::MakeConfigC(devices);

  BruteForceOptions bf;
  bf.global_batch_size = 16;
  bf.max_stages = 3;
  BruteForcePlanner reference(m, cluster, bf);
  const PlanResult optimal = reference.Plan();

  PlannerOptions dp;
  dp.global_batch_size = 16;
  dp.max_stages = 3;
  DapplePlanner planner(m, cluster, dp);
  const PlanResult ours = planner.Plan();

  EXPECT_LE(ours.estimate.latency, optimal.estimate.latency * 1.05)
      << "layers=" << layers << " devices=" << devices << " dp=" << ours.plan.ToString()
      << " optimal=" << optimal.plan.ToString();
  // The DP can never beat the true optimum (same estimator).
  EXPECT_GE(ours.estimate.latency, optimal.estimate.latency - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SmallInstances, DpVsBruteForceTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace dapple::planner
