#include "topo/device_set.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "common/error.h"

namespace dapple::topo {

DeviceSet::DeviceSet(std::vector<DeviceId> devices) : devices_(std::move(devices)) {
  std::set<DeviceId> seen;
  for (DeviceId d : devices_) {
    DAPPLE_CHECK_GE(d, 0) << "negative device id";
    DAPPLE_CHECK(seen.insert(d).second) << "duplicate device " << d << " in set";
  }
}

DeviceSet DeviceSet::Range(DeviceId first, int count) {
  DAPPLE_CHECK_GE(count, 0);
  std::vector<DeviceId> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) ids.push_back(first + i);
  return DeviceSet(std::move(ids));
}

bool DeviceSet::contains(DeviceId d) const {
  return std::find(devices_.begin(), devices_.end(), d) != devices_.end();
}

int DeviceSet::NumServers(const Cluster& cluster) const {
  std::set<ServerId> servers;
  for (DeviceId d : devices_) servers.insert(cluster.server_of(d));
  return static_cast<int>(servers.size());
}

bool DeviceSet::SingleServer(const Cluster& cluster) const {
  return NumServers(cluster) <= 1;
}

std::vector<int> DeviceSet::PerServerCounts(const Cluster& cluster) const {
  std::vector<int> counts(static_cast<std::size_t>(cluster.num_servers()), 0);
  for (DeviceId d : devices_) counts[static_cast<std::size_t>(cluster.server_of(d))]++;
  return counts;
}

BytesPerSec DeviceSet::BottleneckBandwidth(const Cluster& cluster) const {
  if (size() < 2) return std::numeric_limits<BytesPerSec>::infinity();
  // The bottleneck is inter-server iff the set spans servers; checking the
  // span avoids the O(n^2) pair loop.
  return SingleServer(cluster) ? cluster.interconnect().intra_server_bandwidth
                               : cluster.interconnect().inter_server_bandwidth;
}

TimeSec DeviceSet::MaxLatency(const Cluster& cluster) const {
  if (size() < 2) return 0.0;
  return SingleServer(cluster) ? cluster.interconnect().intra_server_latency
                               : cluster.interconnect().inter_server_latency;
}

DeviceSet DeviceSet::Union(const DeviceSet& other) const {
  std::vector<DeviceId> ids = devices_;
  for (DeviceId d : other.devices_) {
    DAPPLE_CHECK(!contains(d)) << "device sets overlap at " << d;
    ids.push_back(d);
  }
  return DeviceSet(std::move(ids));
}

std::string DeviceSet::ToString() const {
  if (devices_.empty()) return "[]";
  // Prefer the compact range form used by Table VII in the paper.
  bool contiguous = true;
  for (std::size_t i = 1; i < devices_.size(); ++i) {
    if (devices_[i] != devices_[i - 1] + 1) {
      contiguous = false;
      break;
    }
  }
  std::ostringstream os;
  if (contiguous && devices_.size() > 1) {
    os << "[G" << devices_.front() << "-G" << devices_.back() << "]";
    return os.str();
  }
  os << "[";
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    if (i) os << ",";
    os << "G" << devices_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace dapple::topo
