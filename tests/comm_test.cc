#include <gtest/gtest.h>

#include "comm/cost_model.h"
#include "topo/cluster.h"

namespace dapple::comm {
namespace {

using topo::Cluster;
using topo::DeviceSet;
using topo::MakeConfigA;
using topo::MakeConfigB;

TEST(CostModel, P2PRespectsLocality) {
  const Cluster a = MakeConfigA(2);
  CostModel cost(a);
  const Bytes bytes = 100_MiB;
  const TimeSec intra = cost.P2P(0, 1, bytes);
  const TimeSec inter = cost.P2P(0, 8, bytes);
  EXPECT_LT(intra, inter);
  // 100 MiB over 25 Gbps ~ 33.6 ms dominates overheads.
  EXPECT_NEAR(inter, static_cast<double>(bytes) / Gbps(25.0), 1e-3);
  EXPECT_EQ(cost.P2P(0, 0, bytes), 0.0);
  EXPECT_EQ(cost.P2P(0, 1, 0), 0.0);
}

TEST(CostModel, RingAllReduceMatchesClosedForm) {
  const Cluster a = MakeConfigA(1);
  CostModel cost(a);
  const DeviceSet ring = DeviceSet::Range(0, 4);
  const Bytes bytes = 1_GiB;
  const double expected_volume = 2.0 * 3.0 / 4.0 * static_cast<double>(bytes);
  const TimeSec t = cost.RingAllReduce(ring, bytes);
  EXPECT_NEAR(t, expected_volume / GBps(130.0), 1e-3);
}

TEST(CostModel, AllReduceZeroForTrivialCases) {
  const Cluster a = MakeConfigA(1);
  CostModel cost(a);
  EXPECT_EQ(cost.AllReduce(DeviceSet::Range(0, 1), 1_GiB), 0.0);
  EXPECT_EQ(cost.AllReduce(DeviceSet::Range(0, 4), 0), 0.0);
}

TEST(CostModel, HierarchicalBeatsFlatRingAcrossServers) {
  const Cluster a = MakeConfigA(2);
  CostModel cost(a);
  const DeviceSet span = DeviceSet::Range(0, 16);
  const Bytes bytes = 1_GiB;
  const TimeSec ring = cost.RingAllReduce(span, bytes);
  const TimeSec hier = cost.HierarchicalAllReduce(span, bytes);
  // Flat ring is bottlenecked by Ethernet for the full 2(n-1)/n volume;
  // hierarchical only sends 2(k-1)/k over Ethernet.
  EXPECT_LT(hier, ring);
  // NCCL-2.4-era default: flat ring.
  EXPECT_DOUBLE_EQ(cost.AllReduce(span, bytes), ring);
  CostModelOptions opt;
  opt.enable_hierarchical = true;
  EXPECT_DOUBLE_EQ(CostModel(a, opt).AllReduce(span, bytes), hier);
}

TEST(CostModel, HierarchicalFallsBackToRingWithinServer) {
  const Cluster a = MakeConfigA(2);
  CostModel cost(a);
  const DeviceSet local = DeviceSet::Range(0, 8);
  EXPECT_DOUBLE_EQ(cost.HierarchicalAllReduce(local, 1_GiB),
                   cost.RingAllReduce(local, 1_GiB));
}

TEST(CostModel, AllReduceMonotoneInSize) {
  const Cluster b = MakeConfigB(8);
  CostModel cost(b);
  const DeviceSet devices = DeviceSet::Range(0, 8);
  TimeSec prev = 0.0;
  for (Bytes bytes : {1_MiB, 16_MiB, 256_MiB, 1_GiB}) {
    const TimeSec t = cost.AllReduce(devices, bytes);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(CostModel, CrossStageUsesWorstLink) {
  const Cluster a = MakeConfigA(2);
  CostModel cost(a);
  const Bytes act = 26_MiB;  // GNMT boundary traffic (Table I)
  const TimeSec same_server =
      cost.CrossStage(DeviceSet::Range(0, 4), DeviceSet::Range(4, 4), act);
  const TimeSec cross_server =
      cost.CrossStage(DeviceSet::Range(0, 8), DeviceSet::Range(8, 8), act);
  EXPECT_LT(same_server, cross_server);
}

TEST(CostModel, CrossStageParallelizesOverReplicas) {
  const Cluster b = MakeConfigB(16);
  CostModel cost(b);
  const Bytes act = 64_MiB;
  // 8 senders each ship act/8: faster than 1 sender shipping act.
  const TimeSec wide =
      cost.CrossStage(DeviceSet::Range(0, 8), DeviceSet::Range(8, 8), act);
  const TimeSec narrow =
      cost.CrossStage(DeviceSet::Range(0, 1), DeviceSet::Range(1, 1), act);
  EXPECT_LT(wide, narrow);
}

TEST(CostModel, CrossStageChargesSplitConcatOnlyWhenUnequal) {
  const Cluster a = MakeConfigA(2);
  CostModelOptions slow_memcpy;
  slow_memcpy.memcpy_bandwidth = GBps(10.0);  // make staging visible
  CostModel cost(a, slow_memcpy);
  const Bytes act = 64_MiB;
  const TimeSec equal =
      cost.CrossStage(DeviceSet::Range(0, 4), DeviceSet::Range(8, 4), act);
  const TimeSec unequal =
      cost.CrossStage(DeviceSet::Range(0, 4), DeviceSet::Range(8, 2), act);
  // Many-to-one needs concat staging AND moves bigger per-endpoint slices.
  EXPECT_GT(unequal, equal);
}

TEST(CostModel, CrossStageZeroBytesIsFree) {
  const Cluster a = MakeConfigA(2);
  CostModel cost(a);
  EXPECT_EQ(cost.CrossStage(DeviceSet::Range(0, 1), DeviceSet::Range(1, 1), 0), 0.0);
}

TEST(CostModel, TableITrafficAsymmetry) {
  // The paper's Table I motivation: boundary activations are MBs while
  // gradients are GBs, so the hybrid plan keeps AllReduce on NVLink and
  // lets only activations cross Ethernet. Verify the cost asymmetry.
  const Cluster a = MakeConfigA(2);
  CostModel cost(a);
  const TimeSec act_cross =
      cost.CrossStage(DeviceSet::Range(0, 8), DeviceSet::Range(8, 8), 9_MiB);
  const TimeSec grads_nvlink = cost.AllReduce(DeviceSet::Range(0, 8), MiB(2800));
  const TimeSec grads_ethernet = cost.AllReduce(
      DeviceSet({0, 1, 2, 3, 8, 9, 10, 11}), MiB(2800));
  EXPECT_LT(act_cross, grads_nvlink);
  EXPECT_LT(grads_nvlink, grads_ethernet);
}

}  // namespace
}  // namespace dapple::comm
