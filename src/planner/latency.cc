#include "planner/latency.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "obs/metrics.h"
#include "planner/stage_cache.h"

namespace dapple::planner {

LatencyEstimator::LatencyEstimator(const model::ModelProfile& model,
                                   const topo::Cluster& cluster, LatencyOptions options)
    : model_(&model), cluster_(&cluster), cost_(cluster), options_(options) {}

MicroBatching ChooseMicroBatching(long global_batch_size, int profile_micro_batch,
                                  int max_replication, int num_stages) {
  DAPPLE_CHECK_GT(global_batch_size, 0);
  DAPPLE_CHECK_GT(profile_micro_batch, 0);
  DAPPLE_CHECK_GT(max_replication, 0);
  DAPPLE_CHECK_GT(num_stages, 0);
  // Upper bound: every replica of the widest stage must see at least one
  // example per micro-batch.
  const long m_max = std::max<long>(1, global_batch_size / max_replication);
  // Efficiency target: one profile micro-batch per replica...
  const long ideal_mbs =
      std::min<long>(global_batch_size,
                     static_cast<long>(profile_micro_batch) * max_replication);
  long target = std::max<long>(1, (global_batch_size + ideal_mbs - 1) / ideal_mbs);
  // ...but never so few micro-batches that a pipeline starves: bubble
  // fraction ~ (S-1)/M (paper SII-A). The floor is deliberately the same
  // for every multi-stage shape so competing plans are compared at the
  // same operating point; the formula-1 objective ignores internal
  // bubbles and would otherwise reward small-M plans. Pure DP (one stage)
  // is exempt: gradient accumulation has no bubbles and fewer
  // micro-batches just mean less launch overhead.
  if (num_stages >= 2) {
    target = std::max(target, std::min<long>(8, m_max));
  }
  // Round up to the next divisor of the global batch so M * mbs covers the
  // batch exactly and competing plans are compared on identical work.
  long m = std::min(target, m_max);
  while (m < m_max && global_batch_size % m != 0) ++m;
  while (m > 1 && global_batch_size % m != 0) --m;
  MicroBatching mb;
  mb.num_micro_batches = static_cast<int>(m);
  mb.micro_batch_size = static_cast<int>(global_batch_size / m);
  return mb;
}

int LatencyEstimator::ChooseMicroBatchSize(const ParallelPlan& plan,
                                           long global_batch_size) const {
  int max_replication = 1;
  for (const StagePlan& s : plan.stages) {
    max_replication = std::max(max_replication, s.replication());
  }
  return ChooseMicroBatching(global_batch_size, model_->profile_micro_batch(),
                             max_replication, plan.num_stages())
      .micro_batch_size;
}

TimeSec LatencyEstimator::SingleDeviceTime(long global_batch_size) const {
  const int mb = model_->profile_micro_batch();
  const long full = global_batch_size / mb;
  const long rem = global_batch_size % mb;
  const int n = model_->num_layers();
  TimeSec t = static_cast<double>(full) *
              (model_->ForwardTime(0, n, mb) + model_->BackwardTime(0, n, mb));
  if (rem > 0) {
    t += model_->ForwardTime(0, n, static_cast<double>(rem)) +
         model_->BackwardTime(0, n, static_cast<double>(rem));
  }
  return t;
}

TimeSec LatencyEstimator::ExposedAllReduce(int layer_begin, int layer_end,
                                           const topo::DeviceSet& devices,
                                           double samples) const {
  if (devices.size() < 2) return 0.0;
  const Bytes total_bytes = model_->ParamBytes(layer_begin, layer_end);
  const TimeSec raw = cost_.AllReduce(devices, total_bytes);
  if (!options_.overlap_allreduce) return raw;

  // Backward visits layers in reverse; a layer's gradient bucket can start
  // synchronizing as soon as its backward completes, serialized on the
  // wire. The tail extending past the backward pass is always exposed; of
  // the hideable part, only `overlap_efficiency` is actually hidden.
  TimeSec bw_elapsed = 0.0;
  TimeSec comm_free = 0.0;
  TimeSec ar_total = 0.0;
  for (int l = layer_end - 1; l >= layer_begin; --l) {
    bw_elapsed += model_->BackwardTime(l, l + 1, samples);
    const Bytes bucket = model_->ParamBytes(l, l + 1);
    if (bucket == 0) continue;
    const TimeSec ar = cost_.AllReduce(devices, bucket);
    comm_free = std::max(comm_free, bw_elapsed) + ar;
    ar_total += ar;
  }
  const TimeSec tail = std::max(0.0, comm_free - bw_elapsed);
  const TimeSec hidden = std::max(0.0, ar_total - tail);
  return tail + (1.0 - options_.overlap_efficiency) * hidden;
}

int LatencyEstimator::ChoosePivot(const std::vector<StageCost>& stages,
                                  int num_micro_batches) {
  DAPPLE_CHECK(!stages.empty());
  const double m1 = std::max(0, num_micro_batches - 1);
  // Comm stages run forward and backward transfers on independent duplex
  // channels, so their steady phase is gated by the slower direction, not
  // the sum (see the matching term in Estimate's latency_at).
  auto steady = [&](int s) {
    const StageCost& sc = stages[static_cast<std::size_t>(s)];
    return m1 * (sc.is_comm ? std::max(sc.forward, sc.backward)
                            : sc.forward + sc.backward);
  };
  // Paper formula 3: start at the last stage and move the pivot to an
  // earlier stage s whenever s's bubble-free steady phase dominates Q's
  // steady phase plus the forward/backward costs separating them.
  int q = static_cast<int>(stages.size()) - 1;
  for (int s = q - 1; s >= 0; --s) {
    double separation = 0.0;
    for (int a = s + 1; a <= q - 1; ++a) {
      separation += stages[static_cast<std::size_t>(a)].forward +
                    stages[static_cast<std::size_t>(a)].backward;
    }
    if (steady(s) > steady(q) + separation) {
      q = s;
    }
  }
  return q;
}

Bytes LatencyEstimator::StagePeakMemory(const StagePlan& stage, double samples,
                                        int warmup_depth, bool recompute) const {
  const Bytes baseline = model_->BaselineMemory(stage.layer_begin, stage.layer_end);
  Bytes per_micro;
  Bytes transient = 0;
  if (recompute) {
    per_micro = model_->CheckpointMemory(stage.layer_begin, stage.layer_end, samples);
    // While a backward pass replays one layer block, that block's full
    // activation set is transiently resident.
    transient =
        model_->MaxLayerActivationMemory(stage.layer_begin, stage.layer_end, samples);
  } else {
    per_micro = model_->ActivationMemory(stage.layer_begin, stage.layer_end, samples);
  }
  return baseline + static_cast<Bytes>(warmup_depth) * per_micro + transient;
}

Bytes LatencyEstimator::EffectiveCapacity() const {
  return options_.memory_cap > 0 ? options_.memory_cap : cluster_->device().memory;
}

Bytes LatencyEstimator::FamilyPeakMemory(runtime::ScheduleKind kind,
                                         const ParallelPlan& plan,
                                         const MicroBatching& mb) const {
  const int S = plan.num_stages();
  const int M = mb.num_micro_batches;
  // Per-stage stash piece: baseline + K x (activation | checkpoint) +
  // recompute transient, memoized in the stage cache. Stage i's samples and
  // replication come from its host group (the stage itself for the linear
  // families; chunk folding for the V shapes).
  auto piece = [&](int i, int k) -> Bytes {
    const StagePlan& stage = plan.stages[static_cast<std::size_t>(i)];
    const StagePlan& host =
        plan.stages[static_cast<std::size_t>(runtime::HostStage(kind, i, S))];
    const double samples =
        static_cast<double>(mb.micro_batch_size) / host.replication();
    const bool rc = options_.recompute || stage.recompute;
    auto compute_memory = [&]() -> StageCostValue {
      return {StageCost{}, StagePeakMemory(stage, samples, k, rc)};
    };
    return cache_ ? cache_
                        ->GetOrCompute(
                            StageCostCache::MemoryKey(stage.layer_begin, stage.layer_end,
                                                      host.replication(),
                                                      mb.micro_batch_size, k, rc),
                            compute_memory)
                        .bytes
                  : compute_memory().bytes;
  };

  Bytes peak = 0;
  switch (kind) {
    case runtime::ScheduleKind::kGPipe:
      // GPipe stashes every micro-batch before the first backward.
      for (int i = 0; i < S; ++i) peak = std::max(peak, piece(i, M));
      break;
    case runtime::ScheduleKind::kDapple:
    case runtime::ScheduleKind::kDappleSplitBw:
      // 1F1B warmup policy PA: K_i = min(S - i, M); 2BP holds one extra
      // transient stash until its deferred weight half frees it.
      for (int i = 0; i < S; ++i) {
        const int k = std::min(S - i, M) +
                      (kind == runtime::ScheduleKind::kDappleSplitBw ? 1 : 0);
        peak = std::max(peak, piece(i, k));
      }
      break;
    case runtime::ScheduleKind::kVMin:
    case runtime::ScheduleKind::kVHalf: {
      // Chunk c folds onto group min(c, S-1-c); a group's devices hold both
      // hosted chunks' stashes, each capped by its VStashCap.
      const int groups = runtime::NumGroups(kind, S);
      for (int g = 0; g < groups; ++g) {
        const int late = S - 1 - g;
        Bytes p = piece(g, std::min(runtime::VStashCap(kind, g, S), M));
        if (late != g) {
          p += piece(late, std::min(runtime::VStashCap(kind, late, S), M));
        }
        peak = std::max(peak, p);
      }
      break;
    }
  }
  return peak;
}

ScheduleFamilyEstimate LatencyEstimator::EstimateFamily(runtime::ScheduleKind kind,
                                                        const ParallelPlan& plan,
                                                        long global_batch_size) const {
  plan.Validate(*model_);
  ScheduleFamilyEstimate est;
  est.kind = kind;
  int max_replication = 1;
  for (const StagePlan& s : plan.stages) {
    max_replication = std::max(max_replication, s.replication());
  }
  const MicroBatching mb =
      ChooseMicroBatching(global_batch_size, model_->profile_micro_batch(),
                          max_replication, plan.num_stages());
  est.micro_batch_size = mb.micro_batch_size;
  est.num_micro_batches = mb.num_micro_batches;
  const int S = plan.num_stages();
  const int M = mb.num_micro_batches;

  // Per-chunk compute costs. For the V shapes chunk c runs on its host
  // group's devices, so its samples/speed come from there. The memory side
  // lives in FamilyPeakMemory (shared with Estimate's feasibility check).
  std::vector<TimeSec> fwd(static_cast<std::size_t>(S)), bwd(static_cast<std::size_t>(S)),
      bwd_raw(static_cast<std::size_t>(S));
  for (int i = 0; i < S; ++i) {
    const StagePlan& stage = plan.stages[static_cast<std::size_t>(i)];
    const StagePlan& host =
        plan.stages[static_cast<std::size_t>(runtime::HostStage(kind, i, S))];
    const double samples =
        static_cast<double>(mb.micro_batch_size) / host.replication();
    double speed = std::numeric_limits<double>::infinity();
    for (topo::DeviceId d : host.devices.devices()) {
      speed = std::min(speed, cluster_->device_speed(d));
    }
    const auto idx = static_cast<std::size_t>(i);
    fwd[idx] = model_->ForwardTime(stage.layer_begin, stage.layer_end, samples, speed);
    bwd_raw[idx] =
        model_->BackwardTime(stage.layer_begin, stage.layer_end, samples, speed);
    bwd[idx] = bwd_raw[idx];
    if (options_.recompute || stage.recompute) {
      bwd[idx] += options_.recompute_overhead * fwd[idx];
    }
  }
  TimeSec sum_f = 0.0, sum_b = 0.0, max_f = 0.0, max_b = 0.0, max_round = 0.0;
  for (int i = 0; i < S; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    sum_f += fwd[idx];
    sum_b += bwd[idx];
    max_f = std::max(max_f, fwd[idx]);
    max_b = std::max(max_b, bwd[idx]);
    max_round = std::max(max_round, fwd[idx] + bwd[idx]);
  }

  const double m1 = static_cast<double>(M - 1);
  switch (kind) {
    case runtime::ScheduleKind::kGPipe: {
      est.latency = sum_f + m1 * max_f + sum_b + m1 * max_b;
      break;
    }
    case runtime::ScheduleKind::kDapple:
    case runtime::ScheduleKind::kDappleSplitBw: {
      const bool split_bw = kind == runtime::ScheduleKind::kDappleSplitBw;
      TimeSec drain = 0.0;
      for (int i = 0; i < S; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        // 2BP's drain cascade waits only on the backward-input halves
        // (recompute overhead included there); stage 0 then finishes its
        // own deferred weight half.
        drain += split_bw ? bwd[idx] - 0.5 * bwd_raw[idx] : bwd[idx];
      }
      if (split_bw) drain += 0.5 * bwd_raw[0];
      est.latency = sum_f + m1 * max_round + drain;
      break;
    }
    case runtime::ScheduleKind::kVMin:
    case runtime::ScheduleKind::kVHalf: {
      const int groups = runtime::NumGroups(kind, S);
      TimeSec round = 0.0;
      for (int g = 0; g < groups; ++g) {
        const int late = S - 1 - g;
        TimeSec r = fwd[static_cast<std::size_t>(g)] + bwd[static_cast<std::size_t>(g)];
        if (late != g) {
          r += fwd[static_cast<std::size_t>(late)] + bwd[static_cast<std::size_t>(late)];
        }
        round = std::max(round, r);
      }
      est.latency = sum_f + m1 * round + sum_b;
      break;
    }
  }
  est.max_peak_memory = FamilyPeakMemory(kind, plan, mb);

  // Compute-only utilization over the device groups the family occupies.
  const int groups = runtime::NumGroups(kind, S);
  const TimeSec busy = static_cast<double>(M) * (sum_f + sum_b);
  if (est.latency > 0.0 && groups > 0) {
    est.bubble_ratio =
        std::max(0.0, 1.0 - busy / (static_cast<double>(groups) * est.latency));
  }
  return est;
}

PlanEstimate LatencyEstimator::Estimate(const ParallelPlan& plan,
                                        long global_batch_size) const {
  plan.Validate(*model_);
  obs::MetricsRegistry::Global().counter("planner.estimator_calls").Increment();
  PlanEstimate est;
  int max_replication = 1;
  for (const StagePlan& s : plan.stages) {
    max_replication = std::max(max_replication, s.replication());
  }
  const MicroBatching mb =
      ChooseMicroBatching(global_batch_size, model_->profile_micro_batch(),
                          max_replication, plan.num_stages());
  est.micro_batch_size = mb.micro_batch_size;
  est.num_micro_batches = mb.num_micro_batches;
  const int M = est.num_micro_batches;

  // Expanded stage list: comp0, comm01, comp1, comm12, ... Each entry's
  // cost is a pure function of (layer range, devices, micro-batch size)
  // given this estimator's fixed model/cluster/options, so it is memoized
  // in the attached stage-cost cache when the planner provides one.
  const int num_comp = plan.num_stages();
  for (int i = 0; i < num_comp; ++i) {
    const StagePlan& stage = plan.stages[static_cast<std::size_t>(i)];
    const double samples =
        static_cast<double>(est.micro_batch_size) / stage.replication();
    const bool stage_recompute = options_.recompute || stage.recompute;
    auto compute_comp = [&]() -> StageCostValue {
      // The slowest replica gates the stage: a split micro-batch completes
      // only when every slice has (heterogeneous clusters, stragglers).
      double stage_speed = std::numeric_limits<double>::infinity();
      for (topo::DeviceId d : stage.devices.devices()) {
        stage_speed = std::min(stage_speed, cluster_->device_speed(d));
      }
      StageCost comp;
      comp.is_comm = false;
      comp.forward =
          model_->ForwardTime(stage.layer_begin, stage.layer_end, samples, stage_speed);
      comp.backward =
          model_->BackwardTime(stage.layer_begin, stage.layer_end, samples, stage_speed);
      if (stage_recompute) {
        comp.backward += options_.recompute_overhead * comp.forward;
      }
      comp.allreduce_raw = stage.replication() > 1
                               ? cost_.AllReduce(stage.devices, model_->ParamBytes(
                                                                    stage.layer_begin,
                                                                    stage.layer_end))
                               : 0.0;
      comp.allreduce =
          ExposedAllReduce(stage.layer_begin, stage.layer_end, stage.devices, samples);
      return {comp, 0};
    };
    StageCost comp =
        cache_ ? cache_
                     ->GetOrCompute(StageCostCache::CompKey(stage.layer_begin,
                                                            stage.layer_end, stage.devices,
                                                            est.micro_batch_size,
                                                            stage_recompute),
                                    compute_comp)
                     .cost
               : compute_comp().cost;
    comp.comp_index = i;  // plan-relative, so assigned outside the memo
    est.stages.push_back(comp);

    if (i + 1 < num_comp) {
      const StagePlan& next = plan.stages[static_cast<std::size_t>(i + 1)];
      auto compute_comm = [&]() -> StageCostValue {
        const Bytes act = model_->ActivationAt(stage.layer_end,
                                               static_cast<double>(est.micro_batch_size));
        StageCost comm;
        comm.is_comm = true;
        comm.forward = cost_.CrossStage(stage.devices, next.devices, act);
        comm.backward = cost_.CrossStage(next.devices, stage.devices, act);
        return {comm, 0};
      };
      const StageCost comm =
          cache_ ? cache_
                       ->GetOrCompute(StageCostCache::CommKey(stage.layer_end, stage.devices,
                                                              next.devices,
                                                              est.micro_batch_size),
                                      compute_comm)
                       .cost
                 : compute_comm().cost;
      est.stages.push_back(comm);
    }
  }

  // ACR: mean network stage cost over mean computation stage cost.
  {
    double comm_sum = 0.0, comp_sum = 0.0;
    int comm_n = 0, comp_n = 0;
    for (const StageCost& s : est.stages) {
      if (s.is_comm) {
        comm_sum += s.forward + s.backward;
        ++comm_n;
      } else {
        comp_sum += s.forward + s.backward;
        ++comp_n;
      }
    }
    if (comm_n > 0 && comp_sum > 0.0) {
      est.acr = (comm_sum / comm_n) / (comp_sum / comp_n);
    }
  }

  // Formulas 1-2, evaluated at every pivot candidate. Formula 3 is the
  // paper's heuristic for finding the dominant stage; taking the explicit
  // maximum over q is the exact version of the same objective and stays
  // tight when several stages are nearly dominant (each L(q) is a valid
  // lower bound on the schedule length).
  const int total = static_cast<int>(est.stages.size());
  auto latency_at = [&](int q, TimeSec* warmup_out, TimeSec* steady_out,
                        TimeSec* ending_out) {
    const auto& sq = est.stages[static_cast<std::size_t>(q)];
    TimeSec warmup = 0.0;
    for (int s = 0; s <= q; ++s) {
      warmup += est.stages[static_cast<std::size_t>(s)].forward;
    }
    // A computation stage alternates one forward and one backward per
    // steady-state round on a single engine. A comm stage does not: the
    // simulator gives each boundary a duplex channel pair, so forward and
    // backward transfers overlap and the round is gated by max(F, B).
    const TimeSec per_round =
        sq.is_comm ? std::max(sq.forward, sq.backward) : sq.forward + sq.backward;
    const TimeSec steady = static_cast<double>(M - 1) * per_round;
    TimeSec ending = 0.0;
    for (int s = 0; s < total; ++s) {
      TimeSec tail = 0.0;
      if (s <= q) {
        for (int a = s; a <= q; ++a) {
          tail += est.stages[static_cast<std::size_t>(a)].backward;
        }
      } else {
        for (int a = q + 1; a <= s; ++a) {
          tail -= est.stages[static_cast<std::size_t>(a)].backward;
        }
      }
      ending = std::max(ending, est.stages[static_cast<std::size_t>(s)].allreduce + tail);
    }
    if (warmup_out) *warmup_out = warmup;
    if (steady_out) *steady_out = steady;
    if (ending_out) *ending_out = ending;
    return warmup + steady + ending;
  };

  est.pivot = 0;
  est.latency = 0.0;
  for (int q = 0; q < total; ++q) {
    const TimeSec l = latency_at(q, nullptr, nullptr, nullptr);
    if (l > est.latency) {
      est.latency = l;
      est.pivot = q;
    }
  }
  latency_at(est.pivot, &est.warmup, &est.steady, &est.ending);
  est.speedup = SingleDeviceTime(global_batch_size) / est.latency;

  // Memory feasibility under the configured schedule family's stash
  // discipline (DAPPLE warmup policy PA by default). Shares FamilyPeakMemory
  // with EstimateFamily so cap semantics agree byte-for-byte, and uses the
  // MemoryPool convention: peak == capacity fits, peak > capacity does not.
  const Bytes peak = FamilyPeakMemory(options_.schedule_kind, plan, mb);
  est.max_peak_memory = peak;
  est.memory_capacity = EffectiveCapacity();
  if (options_.check_memory && peak > est.memory_capacity) {
    est.feasible = false;
    est.memory_limited = true;
    est.infeasible_reason =
        "peak memory " + FormatBytes(peak) + " exceeds " +
        (options_.memory_cap > 0 ? "memory cap " : "device ") +
        FormatBytes(est.memory_capacity);
  }
  return est;
}

}  // namespace dapple::planner
