// Fault-window arithmetic in the engine: piecewise-constant resource speed
// profiles (sim/engine.h). Covers the FinishTime integral directly — a task
// spanning a slowdown boundary is split and re-costed segment by segment —
// and the engine-level fail-stop semantics: a crashed device pins its tasks
// while independent work (including an in-flight transfer on the link into
// the dead device) drains normally.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "sim/engine.h"
#include "sim/graph.h"

namespace dapple::sim {
namespace {

ResourceSpeedProfile Profile(ResourceId r, std::vector<SpeedSegment> segments) {
  ResourceSpeedProfile p;
  p.resource = r;
  p.segments = std::move(segments);
  return p;
}

TEST(FinishTimeTest, NoSegmentsIsUnitSpeed) {
  EXPECT_DOUBLE_EQ(FinishTime(Profile(0, {}), 1.5, 4.0), 5.5);
}

TEST(FinishTimeTest, ZeroWorkFinishesAtStart) {
  EXPECT_DOUBLE_EQ(FinishTime(Profile(0, {{2.0, 0.5}}), 3.0, 0.0), 3.0);
}

// The satellite case: work 4 started at 0 under a 0.5x slowdown beginning at
// t = 2 must be split at the boundary — 2 units at speed 1, then 2 units at
// speed 0.5 — and finish at 6, not at 4 (ignoring the fault) or 8 (pricing
// the whole task at the degraded speed).
TEST(FinishTimeTest, TaskSpanningSlowdownBoundaryIsSplitAndRecosted) {
  EXPECT_DOUBLE_EQ(FinishTime(Profile(0, {{2.0, 0.5}}), 0.0, 4.0), 6.0);
}

TEST(FinishTimeTest, SpeedRestoresAtWindowEnd) {
  // [0,2) at 1.0 -> 2 work; [2,4) at 0.5 -> 1 work; remainder at 1.0.
  EXPECT_DOUBLE_EQ(FinishTime(Profile(0, {{2.0, 0.5}, {4.0, 1.0}}), 0.0, 4.0), 5.0);
}

TEST(FinishTimeTest, StartInsideWindowPaysTheDegradedRate) {
  EXPECT_DOUBLE_EQ(FinishTime(Profile(0, {{2.0, 0.5}}), 3.0, 1.0), 5.0);
}

TEST(FinishTimeTest, StartAfterLastSegmentUsesItsSpeedForever) {
  EXPECT_DOUBLE_EQ(FinishTime(Profile(0, {{1.0, 0.5}}), 4.0, 2.0), 8.0);
}

TEST(FinishTimeTest, SpeedupSegmentsShortenTheTask) {
  // Residual profiles after a replan can exceed 1.0 (the baked slowdown
  // ended); the integral must handle >1x symmetrically.
  EXPECT_DOUBLE_EQ(FinishTime(Profile(0, {{0.0, 2.0}}), 0.0, 4.0), 2.0);
}

TEST(FinishTimeTest, TrailingZeroSpeedPinsRemainingWorkForever) {
  EXPECT_TRUE(std::isinf(FinishTime(Profile(0, {{3.0, 0.0}}), 0.0, 5.0)));
}

TEST(FinishTimeTest, ZeroSpeedWindowWithRecoveryStallsThenResumes) {
  // [0,3): 3 work; [3,5): nothing; remaining 2 after t = 5.
  EXPECT_DOUBLE_EQ(FinishTime(Profile(0, {{3.0, 0.0}, {5.0, 1.0}}), 0.0, 5.0), 7.0);
}

// --- Engine-level behavior -------------------------------------------------

Task MakeTask(const char* name, TaskKind kind, ResourceId resource, TimeSec duration) {
  Task t;
  t.name = name;
  t.kind = kind;
  t.resource = resource;
  t.duration = duration;
  return t;
}

TEST(EngineSpeedTest, ProfiledTaskIsRecostedAcrossTheBoundary) {
  TaskGraph graph;
  const TaskId a = graph.AddTask(MakeTask("fw", TaskKind::kForward, 0, 4.0));
  EngineOptions options;
  options.resource_speeds = {Profile(0, {{2.0, 0.5}})};
  const SimResult result = Engine::Run(graph, options);
  ASSERT_TRUE(result.completed);
  EXPECT_DOUBLE_EQ(result.records[a].start, 0.0);
  EXPECT_DOUBLE_EQ(result.records[a].end, 6.0);
  EXPECT_DOUBLE_EQ(result.makespan, 6.0);
}

TEST(EngineSpeedTest, UnprofiledResourcesKeepFixedDurationsBitForBit) {
  TaskGraph graph;
  const TaskId a = graph.AddTask(MakeTask("a", TaskKind::kForward, 0, 0.3));
  const TaskId b = graph.AddTask(MakeTask("b", TaskKind::kForward, 1, 0.7));
  graph.AddEdge(a, b);
  EngineOptions options;
  options.resource_speeds = {Profile(1, {{10.0, 0.5}})};  // never reached
  const SimResult result = Engine::Run(graph, options);
  ASSERT_TRUE(result.completed);
  // Resource 0 has no profile: end must be exactly start + duration.
  EXPECT_EQ(result.records[a].end, result.records[a].start + 0.3);
  EXPECT_EQ(result.records[b].end, result.records[b].start + 0.7);
}

// A fail-stop crash on the destination device must not leak into the link:
// the transfer in flight completes and releases the channel, the dependent
// compute on the dead device pins (started, never executed), and work on
// the surviving device drains to completion.
TEST(EngineSpeedTest, CrashMidTransferReleasesTheLinkAndPinsTheConsumer) {
  // Resources: 0 = surviving device, 1 = link, 2 = crashing device.
  TaskGraph graph;
  const TaskId fw = graph.AddTask(MakeTask("fw", TaskKind::kForward, 0, 1.0));
  const TaskId xfer = graph.AddTask(MakeTask("xfer", TaskKind::kTransfer, 1, 2.0));
  const TaskId consumer = graph.AddTask(MakeTask("fw_next", TaskKind::kForward, 2, 1.0));
  const TaskId survivor = graph.AddTask(MakeTask("more_fw", TaskKind::kForward, 0, 5.0));
  graph.AddEdge(fw, xfer);
  graph.AddEdge(xfer, consumer);
  graph.AddEdge(fw, survivor);

  EngineOptions options;
  options.allow_incomplete = true;
  // Crash at t = 2, in the middle of the transfer window [1, 3).
  options.resource_speeds = {Profile(2, {{2.0, 0.0}})};
  const SimResult result = Engine::Run(graph, options);

  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.tasks_unfinished, 1);
  // The link is unaffected: the in-flight transfer runs [1, 3) and releases.
  EXPECT_TRUE(result.records[xfer].executed);
  EXPECT_DOUBLE_EQ(result.records[xfer].end, 3.0);
  // The consumer occupies the dead device but never finishes.
  EXPECT_TRUE(result.records[consumer].started);
  EXPECT_FALSE(result.records[consumer].executed);
  EXPECT_TRUE(std::isinf(result.records[consumer].end));
  // Independent work on the surviving device drains normally.
  EXPECT_TRUE(result.records[survivor].executed);
  EXPECT_DOUBLE_EQ(result.records[survivor].end, 6.0);
}

TEST(EngineSpeedTest, PinnedTasksThrowWithoutAllowIncomplete) {
  TaskGraph graph;
  graph.AddTask(MakeTask("fw", TaskKind::kForward, 0, 1.0));
  EngineOptions options;
  options.resource_speeds = {Profile(0, {{0.0, 0.0}})};
  EXPECT_THROW(Engine::Run(graph, options), Error);
}

TEST(EngineSpeedTest, ProfiledRunsAreDeterministic) {
  auto run = [] {
    TaskGraph graph;
    const TaskId a = graph.AddTask(MakeTask("a", TaskKind::kForward, 0, 1.5));
    const TaskId b = graph.AddTask(MakeTask("b", TaskKind::kBackward, 0, 2.5));
    graph.AddEdge(a, b);
    EngineOptions options;
    options.resource_speeds = {Profile(0, {{1.0, 0.25}, {9.0, 1.0}})};
    return Engine::Run(graph, options);
  };
  const SimResult first = run();
  const SimResult second = run();
  ASSERT_EQ(first.records.size(), second.records.size());
  for (std::size_t i = 0; i < first.records.size(); ++i) {
    EXPECT_EQ(first.records[i].start, second.records[i].start);
    EXPECT_EQ(first.records[i].end, second.records[i].end);
  }
  EXPECT_EQ(first.makespan, second.makespan);
}

}  // namespace
}  // namespace dapple::sim
