// Sharded memoization cache for concurrent compute-once lookups. Keys are
// hashed onto independent shards (own mutex + map) so parallel workers —
// the planner's subproblem evaluators foremost — rarely contend on the same
// lock. The contract that keeps parallel searches deterministic: `compute`
// must be a pure function of the key, so whether a thread hits the cache or
// recomputes (two threads may race on the same fresh key; the loser's value
// is dropped) the returned value is bit-identical either way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dapple {

/// Mixes a value into a running hash seed (boost::hash_combine recipe).
inline void HashCombine(std::size_t& seed, std::size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

/// Point-in-time statistics of one shard (or, summed, the whole cache).
struct CacheShardStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t entries = 0;
  /// Wall time spent inside `compute` on misses attributed to this shard.
  double compute_seconds = 0.0;

  double hit_rate() const {
    const std::int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache {
 public:
  /// `shards` is rounded up to a power of two so the shard pick is a mask.
  explicit ShardedCache(std::size_t shards = 16) {
    std::size_t n = 1;
    while (n < shards) n <<= 1;
    shards_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  }

  std::size_t num_shards() const { return shards_.size(); }

  /// Returns the cached value for `key`, or runs `compute()` and caches its
  /// result. `compute` runs outside the shard lock so slow computations do
  /// not serialize the shard; a concurrent duplicate computation is allowed
  /// and its extra result discarded (values for one key are identical).
  template <typename Compute>
  Value GetOrCompute(const Key& key, Compute&& compute) {
    Shard& shard = ShardFor(key);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end()) {
        ++shard.hits;
        return it->second;
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    Value value = compute();
    const auto t1 = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      ++shard.misses;
      shard.compute_seconds += std::chrono::duration<double>(t1 - t0).count();
      shard.map.emplace(key, value);
    }
    return value;
  }

  /// Stats of one shard.
  CacheShardStats ShardStats(std::size_t shard) const {
    const Shard& s = *shards_[shard];
    std::lock_guard<std::mutex> lock(s.mu);
    return {s.hits, s.misses, static_cast<std::int64_t>(s.map.size()), s.compute_seconds};
  }

  /// Stats per shard, in shard order.
  std::vector<CacheShardStats> PerShardStats() const {
    std::vector<CacheShardStats> all;
    all.reserve(shards_.size());
    for (std::size_t i = 0; i < shards_.size(); ++i) all.push_back(ShardStats(i));
    return all;
  }

  /// Aggregate over every shard.
  CacheShardStats TotalStats() const {
    CacheShardStats total;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const CacheShardStats s = ShardStats(i);
      total.hits += s.hits;
      total.misses += s.misses;
      total.entries += s.entries;
      total.compute_seconds += s.compute_seconds;
    }
    return total;
  }

  std::size_t size() const { return static_cast<std::size_t>(TotalStats().entries); }

  void Clear() {
    for (auto& s : shards_) {
      std::lock_guard<std::mutex> lock(s->mu);
      s->map.clear();
      s->hits = s->misses = 0;
      s->compute_seconds = 0.0;
    }
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Key, Value, Hash> map;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    double compute_seconds = 0.0;
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[Hash{}(key) & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dapple
