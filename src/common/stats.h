// Small statistics helpers used by benchmark harnesses and the simulator's
// utilization accounting.
#pragma once

#include <cstddef>
#include <vector>

namespace dapple {

/// Online mean/min/max/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-th quantile (0 <= q <= 1) by linear interpolation between
/// order statistics. The input is copied; throws on empty input.
double Quantile(std::vector<double> values, double q);

/// Geometric mean of strictly positive values; throws otherwise.
double GeometricMean(const std::vector<double>& values);

}  // namespace dapple
