#include "planner/plan_io.h"

#include <fstream>
#include <sstream>

#include "common/error.h"

namespace dapple::planner {

std::string SerializePlan(const ParallelPlan& plan) {
  std::ostringstream os;
  os << "model: " << plan.model << "\n";
  for (const StagePlan& s : plan.stages) {
    os << "stage: layers " << s.layer_begin << " " << s.layer_end << " devices";
    for (topo::DeviceId d : s.devices.devices()) os << " " << d;
    if (s.recompute) os << " recompute";
    os << "\n";
  }
  return os.str();
}

ParallelPlan ParsePlan(const std::string& text) {
  ParallelPlan plan;
  std::istringstream in(text);
  std::string line;
  int line_number = 0;
  bool saw_model = false;
  while (std::getline(in, line)) {
    ++line_number;
    // Strip comments and whitespace-only lines.
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string head;
    if (!(ls >> head)) continue;

    if (head == "model:") {
      std::string rest;
      std::getline(ls, rest);
      const std::size_t start = rest.find_first_not_of(' ');
      DAPPLE_CHECK(start != std::string::npos)
          << "line " << line_number << ": empty model name";
      plan.model = rest.substr(start);
      saw_model = true;
    } else if (head == "stage:") {
      std::string kw;
      StagePlan stage;
      DAPPLE_CHECK(static_cast<bool>(ls >> kw) && kw == "layers")
          << "line " << line_number << ": expected 'layers'";
      DAPPLE_CHECK(static_cast<bool>(ls >> stage.layer_begin >> stage.layer_end))
          << "line " << line_number << ": expected two layer indices";
      DAPPLE_CHECK(static_cast<bool>(ls >> kw) && kw == "devices")
          << "line " << line_number << ": expected 'devices'";
      std::vector<topo::DeviceId> devices;
      std::string tok;
      while (ls >> tok) {
        if (tok == "recompute") {
          stage.recompute = true;
          DAPPLE_CHECK(!(ls >> tok))
              << "line " << line_number << ": 'recompute' must be the last token";
          break;
        }
        std::size_t pos = 0;
        topo::DeviceId d = 0;
        try {
          d = static_cast<topo::DeviceId>(std::stoi(tok, &pos));
        } catch (const std::exception&) {
          pos = 0;
        }
        DAPPLE_CHECK(pos == tok.size())
            << "line " << line_number << ": bad device id '" << tok << "'";
        devices.push_back(d);
      }
      DAPPLE_CHECK(!devices.empty()) << "line " << line_number << ": stage needs devices";
      stage.devices = topo::DeviceSet(std::move(devices));
      plan.stages.push_back(std::move(stage));
    } else {
      throw Error("plan parse error at line " + std::to_string(line_number) +
                  ": unknown directive '" + head + "'");
    }
  }
  DAPPLE_CHECK(saw_model) << "plan text has no 'model:' line";
  DAPPLE_CHECK(!plan.stages.empty()) << "plan text has no stages";
  return plan;
}

void SavePlan(const std::string& path, const ParallelPlan& plan) {
  std::ofstream out(path);
  DAPPLE_CHECK(out.good()) << "cannot open plan file " << path;
  out << SerializePlan(plan);
  DAPPLE_CHECK(out.good()) << "failed writing plan file " << path;
}

ParallelPlan LoadPlan(const std::string& path) {
  std::ifstream in(path);
  DAPPLE_CHECK(in.good()) << "cannot read plan file " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  return ParsePlan(buffer.str());
}

}  // namespace dapple::planner
