// Transforms a (model, plan, schedule) triple into a simulator task graph —
// the analogue of the paper's §V runtime, which rewrites the TF graph into
// per-stage forward/backward subgraphs connected by split/concat transfers
// and ordered by control dependencies (Fig. 11).
//
// Task graph shape, per computation stage i with replica set g_i:
//   FW(i, m, d) / BW(i, m, d) on each replica device d, per micro-batch m;
//   TX_f(i, m): all FW(i,m,*) -> transfer -> all FW(i+1,m,*);
//   TX_b(i, m): all BW(i+1,m,*) -> transfer -> all BW(i,m,*);
//   AR(i): all BW(i,*,*) -> AllReduce over g_i (when |g_i| > 1);
//   APPLY(i, d): weight update per device, after AR(i) (or local BWs).
// Control edges chain each device's FW/BW order per runtime/schedule.h.
#pragma once

#include <cstdint>
#include <vector>

#include "model/profile.h"
#include "planner/plan.h"
#include "runtime/schedule.h"
#include "sim/engine.h"
#include "sim/graph.h"
#include "topo/cluster.h"

namespace dapple::runtime {

/// How a replicated stage consumes micro-batches (paper Fig. 8).
enum class ReplicationMode {
  /// Split every micro-batch into |g| slices, one per replica (DAPPLE).
  kSplitMicroBatch,
  /// Round-robin whole micro-batches over replicas (the alternative with
  /// the tail effect).
  kRoundRobin,
};

const char* ToString(ReplicationMode mode);

struct BuildOptions {
  long global_batch_size = 0;
  /// 0 = auto: profile micro-batch times the widest stage's replication.
  int micro_batch_size = 0;
  ScheduleOptions schedule;
  ReplicationMode replication = ReplicationMode::kSplitMicroBatch;
  /// Give device pools the per-device memory capacity so OOM is observable.
  bool enforce_memory_capacity = true;
  /// Per-device memory capacity in bytes; 0 = the cluster's device memory.
  /// Feeds both the in-flight throttle's reserve math and the simulator
  /// pool capacities, so the MemoryPool OOM boundary (peak > cap) and the
  /// planner's cap check agree byte-for-byte.
  Bytes memory_cap = 0;
  /// Overlap gradient AllReduce with the final backward pass (bucketed,
  /// reverse-layer order). Matches the latency estimator's model.
  bool overlap_allreduce = true;
};

/// Resource-id layout shared by every built pipeline: device compute
/// engines first, then one duplex channel pair per stage boundary, then one
/// AllReduce lane per stage. Consumers (observability, validation, fault
/// injection) derive channel ids from this instead of re-hardcoding the
/// arithmetic.
struct ResourceLayout {
  int num_devices = 0;
  int num_stages = 0;

  int num_boundaries() const { return num_stages > 0 ? num_stages - 1 : 0; }
  int num_resources() const { return num_devices + 2 * num_boundaries() + num_stages; }

  bool IsDevice(sim::ResourceId r) const { return r >= 0 && r < num_devices; }
  sim::ResourceId ForwardChannel(int boundary) const { return num_devices + 2 * boundary; }
  sim::ResourceId BackwardChannel(int boundary) const {
    return num_devices + 2 * boundary + 1;
  }
  sim::ResourceId AllReduceLane(int stage) const {
    return num_devices + 2 * num_boundaries() + stage;
  }
};

struct BuiltPipeline {
  sim::TaskGraph graph;
  sim::EngineOptions engine_options;
  int micro_batch_size = 0;
  int num_micro_batches = 0;
  int num_devices = 0;
  /// Per computation stage: the warmup depth the schedule actually used.
  std::vector<int> warmup_depths;
  /// Per computation stage: 1 when the stage ran with activation
  /// recomputation (global ScheduleOptions::recompute or the stage's own
  /// plan flag), 0 otherwise. Feeds report/JSON output.
  std::vector<std::uint8_t> stage_recompute;
  /// The options the builder ran with (micro-batching resolved above); lets
  /// consumers such as check::ScheduleValidator re-derive expectations.
  BuildOptions options;
  /// Number of computation stages (drives the resource layout).
  int num_stages = 0;

  ResourceLayout layout() const { return ResourceLayout{num_devices, num_stages}; }
};

class GraphBuilder {
 public:
  GraphBuilder(const model::ModelProfile& model, const topo::Cluster& cluster,
               const planner::ParallelPlan& plan, BuildOptions options);

  BuiltPipeline Build() const;

 private:
  const model::ModelProfile* model_;
  const topo::Cluster* cluster_;
  const planner::ParallelPlan* plan_;
  BuildOptions options_;
};

}  // namespace dapple::runtime
