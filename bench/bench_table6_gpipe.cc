// Table VI: DAPPLE vs GPipe on BERT-48, 2-stage pipeline, Config-B,
// micro-batch fixed at 2 — throughput and average peak memory as the
// number of micro-batches M grows, with and without re-computation.
#include "harness.h"

#include <cstdio>

#include "common/table.h"

using namespace dapple;

int main() {
  bench::PrintHeader("Table VI — DAPPLE vs GPipe (BERT-48, 2 stages, Config-B, mbs=2)",
                     "DAPPLE paper, Table VI");

  const model::ModelProfile bert = model::MakeBert48();
  const topo::Cluster cluster = topo::MakeConfigB(2);
  planner::ParallelPlan plan;
  plan.model = bert.name();
  planner::StagePlan s0, s1;
  s0.layer_begin = 0;
  s0.layer_end = 24;
  s0.devices = topo::DeviceSet::Range(0, 1);
  s1.layer_begin = 24;
  s1.layer_end = 48;
  s1.devices = topo::DeviceSet::Range(1, 1);
  plan.stages = {s0, s1};

  auto run = [&](runtime::ScheduleKind kind, bool recompute, int m) {
    runtime::BuildOptions o;
    o.global_batch_size = 2L * m;
    o.micro_batch_size = 2;
    o.schedule.kind = kind;
    o.schedule.recompute = recompute;
    runtime::PipelineExecutor exec(bert, cluster, plan, o);
    return exec.Run();
  };

  AsciiTable table({"Config", "M", "Throughput (samples/s)", "Avg peak memory", "OOM?"});
  struct Variant {
    const char* name;
    runtime::ScheduleKind kind;
    bool recompute;
    std::vector<int> ms;
  };
  const Variant variants[] = {
      {"GPipe", runtime::ScheduleKind::kGPipe, false, {2, 5, 8}},
      {"GPipe + RC", runtime::ScheduleKind::kGPipe, true, {2, 5, 8}},
      {"DAPPLE", runtime::ScheduleKind::kDapple, false, {2, 8, 16}},
      {"DAPPLE + RC", runtime::ScheduleKind::kDapple, true, {2, 8, 16}},
  };
  for (const Variant& v : variants) {
    for (int m : v.ms) {
      const auto r = run(v.kind, v.recompute, m);
      table.AddRow({v.name, AsciiTable::Int(m), AsciiTable::Num(r.throughput, 2),
                    FormatBytes(r.avg_peak_memory), r.oom ? "OOM" : ""});
    }
    table.AddSeparator();
  }
  std::printf("%s", table.ToString().c_str());

  const auto gpipe8 = run(runtime::ScheduleKind::kGPipe, false, 8);
  const auto dapple16 = run(runtime::ScheduleKind::kDapple, false, 16);
  const auto dapple16rc = run(runtime::ScheduleKind::kDapple, true, 16);
  const auto gpipe2 = run(runtime::ScheduleKind::kGPipe, false, 2);
  bench::PrintComparison("DAPPLE(M=16) / best non-OOM GPipe throughput", "1.6x",
                         AsciiTable::Num(dapple16.throughput /
                                             run(runtime::ScheduleKind::kGPipe, true, 5)
                                                 .throughput, 2) + "x");
  bench::PrintComparison("DAPPLE(M=16) memory vs GPipe(M=2)", "0.88x",
                         AsciiTable::Num(static_cast<double>(dapple16.avg_peak_memory) /
                                             gpipe2.avg_peak_memory, 2) + "x");
  bench::PrintComparison("DAPPLE+RC(M=16) memory vs GPipe(M=2)", "0.70x",
                         AsciiTable::Num(static_cast<double>(dapple16rc.avg_peak_memory) /
                                             gpipe2.avg_peak_memory, 2) + "x");
  std::printf("\nShape check: DAPPLE's peak memory is flat in M while GPipe's grows\n"
              "until OOM (it OOMs at M=%d here); DAPPLE's throughput keeps rising\n"
              "with M because peak memory no longer throttles it; RC trades ~20%%\n"
              "throughput for memory.\n", gpipe8.oom ? 8 : -1);
  return 0;
}
