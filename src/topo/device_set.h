// DeviceSet: an ordered collection of device ids assigned to one pipeline
// stage, plus queries the cost models need (server span, per-server counts,
// slowest link inside the set).
#pragma once

#include <string>
#include <vector>

#include "common/units.h"
#include "topo/cluster.h"

namespace dapple::topo {

/// Ordered, duplicate-free set of devices hosting one (possibly replicated)
/// pipeline stage. Order is the replica rank order.
class DeviceSet {
 public:
  DeviceSet() = default;
  explicit DeviceSet(std::vector<DeviceId> devices);

  static DeviceSet Range(DeviceId first, int count);

  bool empty() const { return devices_.empty(); }
  int size() const { return static_cast<int>(devices_.size()); }
  const std::vector<DeviceId>& devices() const { return devices_; }
  DeviceId operator[](int i) const { return devices_.at(static_cast<std::size_t>(i)); }

  bool contains(DeviceId d) const;

  /// Number of distinct servers the set touches.
  int NumServers(const Cluster& cluster) const;

  /// True when every device lives on one server.
  bool SingleServer(const Cluster& cluster) const;

  /// Count of the set's devices on each server (indexed by ServerId, sized
  /// to cluster.num_servers()).
  std::vector<int> PerServerCounts(const Cluster& cluster) const;

  /// Minimum pairwise bandwidth inside the set: the ring-allreduce
  /// bottleneck link. Returns +inf for sets of size < 2 (no communication).
  BytesPerSec BottleneckBandwidth(const Cluster& cluster) const;

  /// Maximum pairwise latency inside the set.
  TimeSec MaxLatency(const Cluster& cluster) const;

  /// Union with disjoint `other`; throws if they overlap.
  DeviceSet Union(const DeviceSet& other) const;

  /// Compact display such as "[G0-G7]" or "[G0,G2,G4]".
  std::string ToString() const;

  bool operator==(const DeviceSet& other) const { return devices_ == other.devices_; }

 private:
  std::vector<DeviceId> devices_;
};

}  // namespace dapple::topo
