#include "runtime/schedule.h"

#include <algorithm>

#include "common/error.h"

namespace dapple::runtime {

const char* ToString(ScheduleKind kind) {
  switch (kind) {
    case ScheduleKind::kDapple: return "DAPPLE";
    case ScheduleKind::kGPipe: return "GPipe";
  }
  return "?";
}

const char* ToString(WarmupPolicy policy) {
  switch (policy) {
    case WarmupPolicy::kPA: return "PA";
    case WarmupPolicy::kPB: return "PB";
  }
  return "?";
}

int WarmupDepth(const ScheduleOptions& options, int stage_index, int num_stages,
                int num_micro_batches, int memory_limit) {
  DAPPLE_CHECK(stage_index >= 0 && stage_index < num_stages)
      << "stage " << stage_index << " of " << num_stages;
  DAPPLE_CHECK_GT(num_micro_batches, 0);
  if (options.kind == ScheduleKind::kGPipe) {
    // GPipe has no early backward: all M forwards are in flight.
    return num_micro_batches;
  }
  int k = 0;
  if (options.warmup_override > 0) {
    k = options.warmup_override;
    if (memory_limit > 0) k = std::min(k, memory_limit);
    return std::max(1, std::min(k, num_micro_batches));
  }
  switch (options.warmup) {
    case WarmupPolicy::kPA:
      k = num_stages - stage_index;
      break;
    case WarmupPolicy::kPB:
      k = 2 * (num_stages - stage_index) - 1;
      break;
  }
  if (memory_limit > 0) k = std::min(k, memory_limit);
  k = std::min(k, num_micro_batches);
  return std::max(k, 1);
}

std::vector<ScheduleStep> StageOrder(const ScheduleOptions& options, int stage_index,
                                     int num_stages, int num_micro_batches,
                                     int memory_limit) {
  const int m = num_micro_batches;
  std::vector<ScheduleStep> order;
  order.reserve(static_cast<std::size_t>(2 * m));

  if (options.kind == ScheduleKind::kGPipe) {
    for (int i = 0; i < m; ++i) order.push_back({false, i});
    for (int i = m - 1; i >= 0; --i) order.push_back({true, i});
    return order;
  }

  const int k = WarmupDepth(options, stage_index, num_stages, m, memory_limit);
  // Warmup: K forwards.
  for (int i = 0; i < std::min(k, m); ++i) order.push_back({false, i});
  // Steady: strict one-backward-one-forward round robin.
  int next_fw = k;
  int next_bw = 0;
  while (next_bw < m) {
    order.push_back({true, next_bw++});
    if (next_fw < m) order.push_back({false, next_fw++});
  }
  return order;
}

}  // namespace dapple::runtime
