// Simulation-engine throughput sweep over a corpus of fuzz-built
// pipelines. Three measurements, each fenced by byte-identity:
//
//   1. serial events/sec of the arena Engine vs the reference engine
//      (legacy ordered-set/priority-queue containers) — the win from the
//      indexed binary heaps and the reused per-Engine arena;
//   2. events/sec of the BatchRunner multi-seed path at 1/2/8 worker
//      threads vs the plain serial loop — the win from fanning independent
//      simulations across cores;
//   3. the Amdahl projection computed from the measured one-thread batch
//      overhead — on a single-core host the measured column shows ~1x
//      while the projection reports what the decomposition supports.
//
// Every simulation result is fingerprinted (bit-exact records, pool peaks,
// makespan) outside the timed regions; any divergence between the
// reference engine, the arena engine and any batched run exits non-zero,
// so the bench doubles as a determinism check on real hardware.
//
// `--quick` trims the corpus for the perf-smoke CI tier.
#include "harness.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "check/fuzz.h"
#include "common/table.h"
#include "runtime/graph_builder.h"
#include "sim/batch.h"
#include "sim/engine.h"

using namespace dapple;

namespace {

/// Bit-exact digest of everything a simulation produced. Doubles are
/// appended as raw bytes: identical digest <=> identical simulation.
std::string Fingerprint(const sim::SimResult& result) {
  std::string bytes;
  bytes.reserve(result.records.size() * 16 + 64);
  auto put = [&bytes](double v) {
    char raw[sizeof v];
    std::memcpy(raw, &v, sizeof v);
    bytes.append(raw, sizeof v);
  };
  put(result.makespan);
  put(result.completed ? 1.0 : 0.0);
  for (const sim::TaskRecord& rec : result.records) {
    put(rec.start);
    put(rec.end);
    put(rec.executed ? 1.0 : 0.0);
  }
  for (const sim::MemoryPool& pool : result.pools) {
    put(static_cast<double>(pool.peak()));
    put(pool.peak_time());
  }
  return bytes;
}

double Seconds(std::chrono::steady_clock::time_point t0,
               std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::PrintHeader("Simulation engine — arena queues and the batched multi-seed path",
                     "DAPPLE paper, Sec. 6 evaluation methodology (simulated testbed)");

  // Corpus: fuzz-derived pipelines, the same generator the differential
  // harness uses, so the bench exercises both schedules, recomputation,
  // replication modes and straggler clusters.
  const int corpus_size = quick ? 32 : 192;
  std::vector<runtime::BuiltPipeline> corpus;
  corpus.reserve(static_cast<std::size_t>(corpus_size));
  long total_tasks = 0;
  for (std::uint64_t seed = 0; corpus.size() < static_cast<std::size_t>(corpus_size);
       ++seed) {
    const check::FuzzCase c = check::MakeFuzzCase(seed);
    corpus.push_back(runtime::GraphBuilder(c.model, c.cluster, c.plan, c.options).Build());
    total_tasks += corpus.back().graph.num_tasks();
  }
  // Each timed region replays the corpus `reps` times so walls are well
  // above timer resolution even for the quick CI corpus; fingerprints are
  // taken from the final pass.
  const int reps = quick ? 20 : 5;
  const long total_events = total_tasks * reps;
  std::printf("\ncorpus: %d fuzz pipelines, %ld tasks total, %d passes per measurement\n",
              corpus_size, total_tasks, reps);

  std::vector<sim::SimJob> jobs;
  jobs.reserve(corpus.size());
  for (const runtime::BuiltPipeline& b : corpus) {
    jobs.push_back({&b.graph, b.engine_options});
  }

  int mismatches = 0;

  // 1. Reference vs arena engine, serial. The arena Engine instance is
  // reused across the corpus — exactly how BatchRunner workers run it.
  const auto ref_t0 = std::chrono::steady_clock::now();
  std::vector<sim::SimResult> ref_results;
  for (int rep = 0; rep < reps; ++rep) {
    ref_results.clear();
    ref_results.reserve(jobs.size());
    for (const sim::SimJob& job : jobs) {
      ref_results.push_back(sim::RunReferenceEngine(*job.graph, job.options));
    }
  }
  const auto ref_t1 = std::chrono::steady_clock::now();
  const double ref_wall = Seconds(ref_t0, ref_t1);

  sim::Engine engine;
  const auto arena_t0 = std::chrono::steady_clock::now();
  std::vector<sim::SimResult> arena_results;
  for (int rep = 0; rep < reps; ++rep) {
    arena_results.clear();
    arena_results.reserve(jobs.size());
    for (const sim::SimJob& job : jobs) {
      arena_results.push_back(engine.Simulate(*job.graph, job.options));
    }
  }
  const auto arena_t1 = std::chrono::steady_clock::now();
  const double arena_wall = Seconds(arena_t0, arena_t1);

  std::vector<std::string> expected;
  expected.reserve(ref_results.size());
  for (const sim::SimResult& r : ref_results) expected.push_back(Fingerprint(r));
  for (std::size_t i = 0; i < arena_results.size(); ++i) {
    if (Fingerprint(arena_results[i]) != expected[i]) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: arena engine diverged from the "
                   "reference on corpus pipeline %zu\n",
                   i);
      ++mismatches;
    }
  }

  const double events_per_sec_ref =
      ref_wall > 0.0 ? static_cast<double>(total_events) / ref_wall : 0.0;
  const double events_per_sec_arena =
      arena_wall > 0.0 ? static_cast<double>(total_events) / arena_wall : 0.0;

  AsciiTable table({"Path", "Threads", "Wall (s)", "Events/s", "Speedup", "Projected"});
  table.AddRow({"reference", "1", AsciiTable::Num(ref_wall, 3),
                AsciiTable::Num(events_per_sec_ref, 0), "1.00x", "-"});
  const double arena_speedup = arena_wall > 0.0 ? ref_wall / arena_wall : 0.0;
  table.AddRow({"arena", "1", AsciiTable::Num(arena_wall, 3),
                AsciiTable::Num(events_per_sec_arena, 0),
                AsciiTable::Num(arena_speedup, 2) + "x", "-"});
  table.AddSeparator();

  // 2. The batched multi-seed path. One-thread batch measures the driver's
  // overhead over the plain loop; that overhead feeds the Amdahl projection
  // for hosts without real cores to show the parallel win directly.
  double batch1_wall = 0.0;
  const std::vector<int> thread_counts = quick ? std::vector<int>{1, 8}
                                               : std::vector<int>{1, 2, 8};
  for (int threads : thread_counts) {
    sim::BatchRunner runner({.threads = threads});
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<sim::SimResult> results;
    for (int rep = 0; rep < reps; ++rep) {
      results = runner.RunSimulations(jobs);
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = Seconds(t0, t1);
    if (threads == 1) batch1_wall = wall;

    for (std::size_t i = 0; i < results.size(); ++i) {
      if (Fingerprint(results[i]) != expected[i]) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: batched run at %d threads diverged "
                     "from the reference on corpus pipeline %zu\n",
                     threads, i);
        ++mismatches;
      }
    }

    // Amdahl from the measured driver overhead: the per-simulation work is
    // fully parallel; only the dispatch overhead (batch1 - serial) is not.
    const double overhead = batch1_wall > arena_wall ? batch1_wall - arena_wall : 0.0;
    const double projected =
        arena_wall > 0.0 ? arena_wall / (overhead + arena_wall / threads) : 0.0;
    const double speedup = wall > 0.0 ? arena_wall / wall : 0.0;
    const double events = wall > 0.0 ? static_cast<double>(total_events) / wall : 0.0;
    table.AddRow({"batched", AsciiTable::Int(threads), AsciiTable::Num(wall, 3),
                  AsciiTable::Num(events, 0), AsciiTable::Num(speedup, 2) + "x",
                  AsciiTable::Num(projected, 2) + "x"});

    if (threads == 8) {
      char measured[96];
      std::snprintf(measured, sizeof(measured),
                    "%.2fx measured, %.2fx Amdahl-projected", speedup, projected);
      bench::PrintComparison("batched multi-seed events/sec speedup @ 8 threads",
                             ">=3x", measured);
    }
  }

  char arena_measured[64];
  std::snprintf(arena_measured, sizeof(arena_measured), "%.2fx events/sec", arena_speedup);
  bench::PrintComparison("arena engine vs reference containers (serial)",
                         ">=1x (no regression)", arena_measured);

  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nReading guide: 'Speedup' compares against the serial arena loop of\n"
      "the same corpus and reflects the host's real core count; 'Projected'\n"
      "is the Amdahl bound from the measured one-thread batch overhead (the\n"
      "per-simulation work itself is embarrassingly parallel). On a\n"
      "single-core host trust the projection. Identity of every simulation\n"
      "against the reference engine is asserted in this same run.\n");

  if (mismatches > 0) {
    std::fprintf(stderr, "%d determinism violation(s)\n", mismatches);
    return 1;
  }
  return 0;
}
