#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <string>
#include <thread>

#include "common/error.h"
#include "common/thread_pool.h"

namespace dapple {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroAndOne) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);  // count==1 runs inline on the caller
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(64,
                                [](std::size_t i) {
                                  if (i == 13) throw Error("boom");
                                }),
               Error);
  // Pool still usable afterwards.
  std::atomic<int> counter{0};
  pool.ParallelFor(8, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 8);
}

TEST(ThreadPool, ConcurrentThrowsLeaveExactlyOneAndAUsablePool) {
  // Stress the ParallelFor exception path with *genuinely concurrent*
  // throws: each body spin-waits until all kWorkers bodies have entered
  // (a spinning body pins its worker thread, so with exactly kWorkers
  // tasks on a kWorkers-thread pool, all of them throw in parallel).
  // Exactly one exception must escape the call; the rest are swallowed,
  // and the pool must stay fully usable afterwards.
  constexpr std::size_t kWorkers = 8;
  ThreadPool pool(kWorkers);
  ASSERT_EQ(pool.num_threads(), kWorkers);
  for (int round = 0; round < 25; ++round) {
    std::atomic<std::size_t> entered{0};
    std::atomic<int> thrown{0};
    bool caught = false;
    try {
      pool.ParallelFor(kWorkers, [&](std::size_t i) {
        entered.fetch_add(1);
        while (entered.load() < kWorkers) std::this_thread::yield();
        thrown.fetch_add(1);
        throw Error("boom-" + std::to_string(i));
      });
    } catch (const Error& e) {
      caught = true;
      EXPECT_EQ(std::string(e.what()).rfind("boom-", 0), 0u) << e.what();
    }
    EXPECT_TRUE(caught) << "round " << round;
    EXPECT_EQ(thrown.load(), static_cast<int>(kWorkers)) << "round " << round;

    std::atomic<int> counter{0};
    pool.ParallelFor(64, [&](std::size_t) { counter.fetch_add(1); });
    EXPECT_EQ(counter.load(), 64) << "round " << round;
  }
}

TEST(ThreadPool, DeterministicResultSlots) {
  ThreadPool pool(8);
  std::vector<double> out(1000);
  pool.ParallelFor(out.size(), [&](std::size_t i) { out[i] = i * 0.5; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_DOUBLE_EQ(out[i], i * 0.5);
}

TEST(ThreadPool, SharedPoolSingleton) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
  EXPECT_GE(ThreadPool::Shared().num_threads(), 1u);
}

TEST(ThreadPool, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPool, RejectsNullTask) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.Submit(nullptr), Error);
}

}  // namespace
}  // namespace dapple
