#include "train/data.h"

#include "common/error.h"

namespace dapple::train {

Dataset MakeTeacherDataset(const DatasetSpec& spec) {
  DAPPLE_CHECK_GT(spec.samples, 0u);
  Rng rng(spec.seed);
  Dataset data;
  data.inputs = Tensor::Random(spec.samples, spec.in_features, rng, 1.0f);

  Rng teacher_rng(rng.Fork());
  MlpModel teacher = MlpModel::MakeMlp(spec.in_features, spec.teacher_hidden,
                                       spec.out_features, /*hidden_layers=*/1, teacher_rng);
  Tensor out = data.inputs;
  for (int l = 0; l < teacher.num_layers(); ++l) {
    out = teacher.layer(l).Forward(out, nullptr);
  }
  if (spec.label_noise > 0.0) {
    for (std::size_t r = 0; r < out.rows(); ++r) {
      for (std::size_t c = 0; c < out.cols(); ++c) {
        out.at(r, c) += static_cast<float>(rng.Normal(0.0, spec.label_noise));
      }
    }
  }
  data.targets = std::move(out);
  return data;
}

}  // namespace dapple::train
