// Canonical fingerprints of the serve daemon's planning inputs, built on
// the stable common::Fingerprint64 primitive. A plan request is identified
// by the digest of everything the planner's answer depends on — the full
// model profile (every layer vector), the cluster topology, the global
// batch size, the schedule family, the memory cap, the recompute policy and
// the result-affecting planner options — and by nothing it does not
// (thread counts, cache shard counts: the search is byte-identical across
// those, so requests differing only there must share a cache entry).
//
// The digests are stable across processes and platforms, which is what
// makes them usable as plan-cache keys with a meaningful lifetime and as
// durable instance ids in BENCH rows. tests/fingerprint_test.cc pins
// golden values.
#pragma once

#include <cstdint>

#include "common/fingerprint.h"
#include "model/profile.h"
#include "planner/dp_planner.h"
#include "topo/cluster.h"

namespace dapple::serve {

/// Digest of a full model profile: name, optimizer, profile micro-batch
/// and every per-layer statistic.
std::uint64_t FingerprintModel(const model::ModelProfile& model);

/// Digest of a cluster: shape, device spec, interconnect, per-server speeds.
std::uint64_t FingerprintCluster(const topo::Cluster& cluster);

/// Digest of the result-affecting planner options (excludes num_threads,
/// cache_shards, cache_entries_per_shard and use_stage_cache — the plan is
/// byte-identical across those by the parallel-planner contract).
std::uint64_t FingerprintPlannerOptions(const planner::PlannerOptions& options);

/// The plan-cache key: model x cluster x global batch x options, bound to
/// a format version so key semantics can evolve without aliasing old
/// entries.
std::uint64_t FingerprintPlanRequest(const model::ModelProfile& model,
                                     const topo::Cluster& cluster,
                                     long global_batch_size,
                                     const planner::PlannerOptions& options);

}  // namespace dapple::serve
