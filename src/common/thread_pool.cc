#include "common/thread_pool.h"

#include <atomic>
#include <exception>

#include "common/error.h"

namespace dapple {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  DAPPLE_CHECK(task != nullptr) << "null task";
  {
    std::unique_lock<std::mutex> lock(mutex_);
    DAPPLE_CHECK(!shutdown_) << "submit after shutdown";
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::SubmitBatch(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    DAPPLE_CHECK(!shutdown_) << "submit after shutdown";
    for (std::function<void()>& task : tasks) {
      DAPPLE_CHECK(task != nullptr) << "null task";
      queue_.push(std::move(task));
      ++in_flight_;
    }
  }
  work_available_.notify_all();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1) {
    body(0);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const std::size_t shards = std::min(count, num_threads());
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    tasks.push_back([&] {
      for (std::size_t i = next.fetch_add(1); i < count; i = next.fetch_add(1)) {
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  SubmitBatch(std::move(tasks));
  Wait();
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace dapple
