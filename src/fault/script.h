// Deterministic fault scripts (tentpole of the fault-injection subsystem).
// A script is a list of timed fault events against a cluster: transient
// device slowdowns, link bandwidth/latency degradation on a server's NIC,
// and fail-stop device crashes at a simulated time t. Scripts are plain
// data — seeded random generation, a one-line-per-event text format, and
// validation against a concrete cluster all live here; turning a script
// into engine speed profiles is fault/degrade.h's job.
//
// Everything is reproducible: RandomFaultScript derives the whole script
// from one 64-bit seed, so any recovery-policy comparison or fuzz failure
// replays from the seed alone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "topo/cluster.h"

namespace dapple::fault {

enum class FaultKind {
  /// A device (or a whole server) computes at `compute_multiplier` times its
  /// normal speed during [start, end) — a transient straggler.
  kDeviceSlowdown,
  /// A server's network attachment degrades during [start, end): bandwidth
  /// scales by `bandwidth_multiplier`, and every transfer crossing the
  /// server pays `extra_latency` on top.
  kLinkDegradation,
  /// A device fail-stops at `start`. It stays down forever unless a later
  /// kDeviceRejoin of the same device ends the outage.
  kDeviceCrash,
  /// A previously crashed device comes back at `start` (a spot instance
  /// returning, a machine leaving maintenance). The outage it terminates is
  /// the closest earlier crash of the same device; only the elastic-up
  /// recovery policy actually re-admits the hardware, the others keep
  /// treating the crash as permanent in their control-plane view.
  kDeviceRejoin,
};

const char* ToString(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::kDeviceSlowdown;
  TimeSec start = 0.0;
  /// Window close; ignored for crashes (a crash never ends). Infinity means
  /// the degradation persists to the end of the experiment.
  TimeSec end = 0.0;
  /// Target device (slowdown / crash). -1 when `server` targets a machine.
  topo::DeviceId device = -1;
  /// Target server: every device of the machine for a slowdown, the
  /// machine's network attachment for a link degradation.
  topo::ServerId server = -1;
  double compute_multiplier = 1.0;
  double bandwidth_multiplier = 1.0;
  TimeSec extra_latency = 0.0;

  /// True when the event degrades anything at time t.
  bool ActiveAt(TimeSec t) const;
  /// One-line text form, parseable by ParseFaultScript.
  std::string ToString() const;
};

struct FaultScript {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  /// Earliest event start; 0 when empty.
  TimeSec FirstOnset() const;
  /// True when any event is a crash.
  bool HasCrash() const;
  /// True when any event is a rejoin (the script can grow the cluster back).
  bool HasRejoin() const;
  /// Throws dapple::Error when a target is out of range for the cluster, a
  /// window is inverted, or a multiplier is not in a sane range.
  void Validate(const topo::Cluster& cluster) const;
  /// Line-per-event text form (the same DSL ParseFaultScript reads).
  std::string ToString() const;
};

/// Parses the one-line-per-event DSL. Blank lines and `#` comments are
/// skipped. Lines look like:
///
///   slowdown device=3 start=2.0 end=8.0 mult=0.5
///   slowdown server=1 start=2.0 end=8.0 mult=0.5
///   degrade server=1 start=2.0 end=8.0 bandwidth=0.25 latency=0.001
///   crash device=5 at=12.0
///   rejoin device=5 at=30.0
///
/// Throws dapple::Error on malformed input.
FaultScript ParseFaultScript(const std::string& text);

/// Time the outage opened by `crash` ends: the start of the closest later
/// rejoin of the same device, +inf when the crash is permanent. `crash`
/// must be a kDeviceCrash event of `script`.
TimeSec RejoinTimeAfter(const FaultScript& script, const FaultEvent& crash);

struct RandomFaultOptions {
  /// Events are placed in [0, horizon).
  TimeSec horizon = 60.0;
  int min_events = 1;
  int max_events = 3;
  double crash_probability = 0.15;
  double link_probability = 0.3;
};

/// Seeded random script: slowdown windows (0.3x–0.9x), link degradations
/// (0.2x–0.8x bandwidth plus up to 1 ms extra latency) and, with the stated
/// probability, one fail-stop crash. Identical (seed, cluster shape,
/// options) produce identical scripts.
FaultScript RandomFaultScript(std::uint64_t seed, const topo::Cluster& cluster,
                              const RandomFaultOptions& options = {});

}  // namespace dapple::fault
