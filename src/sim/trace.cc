#include "sim/trace.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/units.h"

namespace dapple::sim {

namespace {

char GlyphFor(const Task& task) {
  switch (task.kind) {
    case TaskKind::kForward:
      return static_cast<char>('0' + (task.microbatch >= 0 ? task.microbatch % 10 : 0));
    case TaskKind::kBackward:
      return static_cast<char>('a' + (task.microbatch >= 0 ? task.microbatch % 26 : 0));
    case TaskKind::kRecompute: return 'r';
    case TaskKind::kTransfer: return '-';
    case TaskKind::kAllReduce: return '#';
    case TaskKind::kApply: return '=';
    case TaskKind::kGeneric: return '*';
  }
  return '?';
}

}  // namespace

std::string RenderGantt(const TaskGraph& graph, const SimResult& result, int width) {
  width = std::max(width, 10);
  const int num_resources = std::max(graph.num_resources(), 1);
  const TimeSec horizon = std::max(result.makespan, 1e-12);
  std::vector<std::string> lanes(static_cast<std::size_t>(num_resources),
                                 std::string(static_cast<std::size_t>(width), '.'));

  for (const TaskRecord& rec : result.records) {
    if (!rec.executed || rec.id == kInvalidTask) continue;
    const Task& task = graph.task(rec.id);
    if (task.duration <= 0.0) continue;
    auto col = [&](TimeSec t) {
      return std::clamp(static_cast<int>(std::floor(t / horizon * width)), 0, width - 1);
    };
    const int c0 = col(rec.start);
    const int c1 = std::max(col(rec.end - 1e-15), c0);
    for (int c = c0; c <= c1; ++c) {
      lanes[static_cast<std::size_t>(task.resource)][static_cast<std::size_t>(c)] =
          GlyphFor(task);
    }
  }

  std::ostringstream os;
  os << "time -> 0 .. " << FormatTime(result.makespan) << "\n";
  for (int r = 0; r < num_resources; ++r) {
    os << "R" << r << (r < 10 ? " " : "") << " |" << lanes[static_cast<std::size_t>(r)]
       << "|\n";
  }
  return os.str();
}

std::string RenderMemoryTimeline(const MemoryPool& pool, TimeSec horizon, int width,
                                 int height) {
  width = std::max(width, 10);
  height = std::max(height, 2);
  horizon = std::max(horizon, 1e-12);

  // Resident bytes at the start of each column's time slice; the trajectory
  // within a slice is max-sampled so short spikes stay visible.
  std::vector<Bytes> columns(static_cast<std::size_t>(width), 0);
  const auto& samples = pool.timeline();
  std::size_t si = 0;
  Bytes current = 0;
  for (int c = 0; c < width; ++c) {
    const TimeSec t0 = horizon * c / width;
    const TimeSec t1 = horizon * (c + 1) / width;
    Bytes peak_in_slice = current;
    while (si < samples.size() && samples[si].time < t1) {
      if (samples[si].time <= t0) {
        current = samples[si].bytes;
        peak_in_slice = std::max(peak_in_slice, current);
      } else {
        current = samples[si].bytes;
        peak_in_slice = std::max(peak_in_slice, current);
      }
      ++si;
    }
    peak_in_slice = std::max(peak_in_slice, current);
    columns[static_cast<std::size_t>(c)] = peak_in_slice;
  }

  const Bytes max_bytes = std::max<Bytes>(pool.peak(), 1);
  std::ostringstream os;
  os << "peak " << FormatBytes(pool.peak()) << " (baseline " << FormatBytes(pool.baseline())
     << ")\n";
  for (int row = height; row >= 1; --row) {
    const double threshold = static_cast<double>(max_bytes) * row / height;
    os << "  |";
    for (int c = 0; c < width; ++c) {
      os << (static_cast<double>(columns[static_cast<std::size_t>(c)]) >= threshold ? '#'
                                                                                    : ' ');
    }
    os << "|\n";
  }
  os << "  +" << std::string(static_cast<std::size_t>(width), '-') << "+ t="
     << FormatTime(horizon) << "\n";
  return os.str();
}

}  // namespace dapple::sim
