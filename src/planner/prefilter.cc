#include "planner/prefilter.h"

#include <limits>

#include "sim/batch.h"

namespace dapple::planner {

RankingResult RankCandidates(const LatencyEstimator& estimator,
                             const std::vector<RankingCandidate>& candidates,
                             const std::function<double(int)>& simulate,
                             const RankingOptions& options) {
  RankingResult result;
  {
    sim::BatchRunner scorer({.threads = options.threads});
    result.scores = scorer.Map<double>(
        static_cast<int>(candidates.size()), [&](int i) {
          const RankingCandidate& c = candidates[static_cast<std::size_t>(i)];
          const PlanEstimate e = estimator.Estimate(c.plan, c.global_batch_size);
          return e.feasible ? e.latency : std::numeric_limits<double>::infinity();
        });
  }

  sim::PrefilterOptions po;
  po.enabled = options.prefilter;
  po.analytic_over_sim = options.analytic_over_sim;
  po.probe = options.probe;
  po.threads = options.threads;
  result.sim = sim::PrefilterBatch(result.scores, simulate, po);
  result.best = result.sim.best;
  return result;
}

}  // namespace dapple::planner
