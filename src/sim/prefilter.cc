#include "sim/prefilter.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace dapple::sim {

namespace {

/// Finite-scored indices sorted by (score, index) ascending.
std::vector<int> SortedFinite(const std::vector<double>& scores) {
  std::vector<int> order;
  order.reserve(scores.size());
  for (int i = 0; i < static_cast<int>(scores.size()); ++i) {
    if (std::isfinite(scores[i])) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (scores[static_cast<std::size_t>(a)] != scores[static_cast<std::size_t>(b)]) {
      return scores[static_cast<std::size_t>(a)] < scores[static_cast<std::size_t>(b)];
    }
    return a < b;
  });
  return order;
}

}  // namespace

std::vector<int> SelectWithinBand(const std::vector<double>& scores, double band,
                                  int min_keep) {
  const std::vector<int> order = SortedFinite(scores);
  std::vector<int> selected;
  if (order.empty()) return selected;

  const double cut = band * scores[static_cast<std::size_t>(order.front())];
  for (const int i : order) {
    if (scores[static_cast<std::size_t>(i)] <= cut ||
        static_cast<int>(selected.size()) < min_keep) {
      selected.push_back(i);
    } else {
      break;  // sorted: everything after is above the cut too
    }
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

PrefilterResult PrefilterBatch(const std::vector<double>& scores,
                               const std::function<double(int)>& simulate,
                               const PrefilterOptions& options) {
  PrefilterResult result;
  result.num_candidates = static_cast<int>(scores.size());
  const std::vector<int> order = SortedFinite(scores);

  BatchRunner runner({.threads = options.threads});
  // (index, value) pairs in simulation order; sorted by index at the end.
  std::vector<std::pair<int, double>> ran;

  auto run_span = [&](std::size_t begin, std::size_t end) {
    const int count = static_cast<int>(end - begin);
    const std::vector<double> values = runner.Map<double>(count, [&](int slot) {
      return simulate(order[begin + static_cast<std::size_t>(slot)]);
    });
    for (int slot = 0; slot < count; ++slot) {
      ran.emplace_back(order[begin + static_cast<std::size_t>(slot)],
                       values[static_cast<std::size_t>(slot)]);
    }
  };

  if (!options.enabled) {
    run_span(0, order.size());
  } else {
    // Phase 1: probe the best-scored candidates to anchor the cut.
    const std::size_t probe =
        std::min(order.size(), static_cast<std::size_t>(std::max(options.probe, 1)));
    run_span(0, probe);
    double best_sim = std::numeric_limits<double>::infinity();
    for (const auto& [idx, value] : ran) best_sim = std::min(best_sim, value);

    // Phase 2: everything that could still beat the probe's best. The
    // order is score-ascending, so the survivors are a prefix.
    result.cutoff = options.analytic_over_sim * best_sim;
    std::size_t keep_end = probe;
    while (keep_end < order.size() &&
           scores[static_cast<std::size_t>(order[keep_end])] <= result.cutoff) {
      ++keep_end;
    }
    run_span(probe, keep_end);
  }

  std::sort(ran.begin(), ran.end());
  result.simulated.reserve(ran.size());
  result.values.reserve(ran.size());
  for (const auto& [idx, value] : ran) {
    result.simulated.push_back(idx);
    result.values.push_back(value);
    if (value < result.best_value) {
      result.best_value = value;
      result.best = idx;
    }
  }
  result.num_skipped = result.num_candidates - static_cast<int>(ran.size());

  auto& metrics = obs::MetricsRegistry::Global();
  metrics.counter("prefilter.sweeps").Increment();
  metrics.counter("prefilter.candidates").Increment(result.num_candidates);
  metrics.counter("prefilter.simulated").Increment(static_cast<int>(ran.size()));
  metrics.counter("prefilter.skipped").Increment(result.num_skipped);
  return result;
}

}  // namespace dapple::sim
