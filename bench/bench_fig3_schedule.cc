// Fig. 3 (+ Fig. 4's phase anatomy): GPipe vs DAPPLE schedules on a
// 3-stage pipeline with 7 micro-batches, with GPU0's memory-over-time
// trajectory for both — the paper's motivating picture for early backward
// scheduling.
#include "harness.h"

#include <cstdio>

#include "sim/trace.h"

using namespace dapple;

int main() {
  bench::PrintHeader("Fig. 3 — GPipe vs DAPPLE schedule and GPU0 memory",
                     "DAPPLE paper, Figs. 3 and 4");

  // A 3-stage, 7-micro-batch uniform pipeline mirroring the figure.
  const model::ModelProfile m = model::MakeUniformSynthetic(
      6, 0.010, 0.020, 2_MiB, 1'000'000, 1);
  const topo::Cluster cluster = topo::MakeConfigB(3);
  planner::ParallelPlan plan;
  plan.model = m.name();
  for (int s = 0; s < 3; ++s) {
    planner::StagePlan sp;
    sp.layer_begin = 2 * s;
    sp.layer_end = 2 * (s + 1);
    sp.devices = topo::DeviceSet::Range(s, 1);
    plan.stages.push_back(sp);
  }

  runtime::BuildOptions o;
  o.global_batch_size = 7;
  o.micro_batch_size = 1;
  o.enforce_memory_capacity = false;

  for (auto kind : {runtime::ScheduleKind::kGPipe, runtime::ScheduleKind::kDapple}) {
    o.schedule.kind = kind;
    runtime::PipelineExecutor exec(m, cluster, plan, o);
    const auto detail = exec.RunDetailed();
    std::printf("\n--- %s schedule (digits = FW micro-batch, letters = BW) ---\n",
                runtime::ToString(kind));
    std::printf("%s", sim::RenderGantt(detail.pipeline.graph, detail.result, 96).c_str());
    std::printf("GPU0 memory over time:\n%s",
                sim::RenderMemoryTimeline(detail.result.pools[0], detail.result.makespan,
                                          96, 6)
                    .c_str());
    std::printf("latency %s, peak GPU0 %s, warmup depths:",
                FormatTime(detail.report.pipeline_latency).c_str(),
                FormatBytes(detail.result.pools[0].peak()).c_str());
    for (int k : detail.report.warmup_depths) std::printf(" %d", k);
    std::printf("\n");
  }

  // Fig. 4 phase anatomy from the analytic estimator.
  planner::LatencyEstimator est(m, cluster);
  const auto e = est.Estimate(plan, 7);
  std::printf("\nFig. 4 phases (analytic): warmup %s, steady %s, ending %s, pivot %d\n",
              FormatTime(e.warmup).c_str(), FormatTime(e.steady).c_str(),
              FormatTime(e.ending).c_str(), e.pivot);
  bench::PrintComparison("DAPPLE vs GPipe bubble time (same partition/M)", "equal",
                         "see identical makespans above");
  bench::PrintComparison("DAPPLE peak memory vs GPipe", "lower (O(K) vs O(M))",
                         "see GPU0 plots");
  return 0;
}
