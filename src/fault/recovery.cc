#include "fault/recovery.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"
#include "sim/batch.h"
#include "sim/engine.h"

namespace dapple::fault {

namespace {

constexpr TimeSec kInf = std::numeric_limits<TimeSec>::infinity();

/// Runs the (parallel, memoized) planner for an online elastic replan and
/// books its search stats under fault.replan.* — replans happen on the
/// recovery critical path, so their wall time and cache behaviour are the
/// numbers an operator actually cares about.
planner::ParallelPlan ReplanOnline(const model::ModelProfile& model,
                                   const topo::Cluster& degraded,
                                   const planner::PlannerOptions& options) {
  planner::PlanResult result = planner::DapplePlanner(model, degraded, options).Plan();
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.counter("fault.replan.runs").Increment();
  metrics.counter("fault.replan.subproblems").Increment(result.stats.subproblems);
  metrics.counter("fault.replan.cache_hits").Increment(result.stats.cache_hits);
  metrics.histogram("fault.replan.wall_seconds").Observe(result.stats.wall_seconds);
  return std::move(result.plan);
}

/// One running configuration: a plan built against a (possibly degraded)
/// cluster, plus the id map back to the original and the state it targets.
struct Config {
  planner::ParallelPlan plan;
  topo::Cluster cluster;
  std::vector<topo::DeviceId> to_original_device;
  runtime::BuiltPipeline built;
  ClusterState planned_state;
};

std::vector<topo::DeviceId> IdentityMap(int n) {
  std::vector<topo::DeviceId> map(static_cast<std::size_t>(n));
  for (int d = 0; d < n; ++d) map[static_cast<std::size_t>(d)] = d;
  return map;
}

ClusterState HealthyState(const topo::Cluster& cluster) {
  return StateAt(FaultScript{}, cluster, 0.0);
}

/// Earliest crash time a run starting at t would hit; +inf when none.
/// Crashes whose device the current configuration already excludes
/// (`handled_dead`) no longer disrupt anything, and neither does an outage
/// whose rejoin is already behind t.
TimeSec NextCrash(const FaultScript& script, TimeSec t,
                  const std::vector<bool>* handled_dead = nullptr) {
  TimeSec next = kInf;
  for (const FaultEvent& e : script.events) {
    if (e.kind != FaultKind::kDeviceCrash) continue;
    if (handled_dead != nullptr && (*handled_dead)[static_cast<std::size_t>(e.device)]) {
      continue;
    }
    if (RejoinTimeAfter(script, e) <= t) continue;  // outage fully over
    next = std::min(next, std::max(e.start, t));
  }
  return next;
}

/// The cluster state a policy's control plane acts on at time t. Only
/// elastic-up has a state-migration path onto returning hardware, so only
/// it sees rejoins; every other policy keeps crashes permanent — which also
/// keeps their reports byte-identical on rejoin-free legacy scripts.
ClusterState PolicyStateAt(const FaultScript& script, const topo::Cluster& cluster,
                           TimeSec t, RecoveryPolicy policy) {
  if (policy == RecoveryPolicy::kElasticUp || !script.HasRejoin()) {
    return StateAt(script, cluster, t);
  }
  FaultScript pessimistic;
  for (const FaultEvent& e : script.events) {
    if (e.kind != FaultKind::kDeviceRejoin) pessimistic.events.push_back(e);
  }
  return StateAt(pessimistic, cluster, t);
}

/// True when no fault-script boundary falls strictly inside (begin, end).
bool NoBoundaryInside(const FaultScript& script, TimeSec begin, TimeSec end) {
  for (const FaultEvent& e : script.events) {
    if (e.start > begin && e.start < end) return false;
    if (e.kind != FaultKind::kDeviceCrash && e.end > begin && e.end < end) return false;
  }
  return true;
}

/// True when some transient (non-crash) window overlaps [begin, end).
bool WindowOverlaps(const FaultScript& script, TimeSec begin, TimeSec end) {
  for (const FaultEvent& e : script.events) {
    if (e.kind == FaultKind::kDeviceCrash) continue;
    if (e.start < end && e.end > begin) return true;
  }
  return false;
}

}  // namespace

const char* ToString(RecoveryPolicy policy) {
  switch (policy) {
    case RecoveryPolicy::kSyncStall: return "stall";
    case RecoveryPolicy::kCheckpointRestart: return "checkpoint";
    case RecoveryPolicy::kElasticReplan: return "replan";
    case RecoveryPolicy::kElasticUp: return "elastic-up";
  }
  return "?";
}

RecoveryPolicy ParseRecoveryPolicy(const std::string& name) {
  if (name == "stall") return RecoveryPolicy::kSyncStall;
  if (name == "checkpoint") return RecoveryPolicy::kCheckpointRestart;
  if (name == "replan") return RecoveryPolicy::kElasticReplan;
  if (name == "elastic-up") return RecoveryPolicy::kElasticUp;
  throw Error("unknown recovery policy '" + name +
              "' (stall | checkpoint | replan | elastic-up)");
}

std::vector<RecoveryPolicy> AllRecoveryPolicies() {
  return {RecoveryPolicy::kSyncStall, RecoveryPolicy::kCheckpointRestart,
          RecoveryPolicy::kElasticReplan, RecoveryPolicy::kElasticUp};
}

FaultReport RunFaultExperiment(const model::ModelProfile& model, const topo::Cluster& cluster,
                               const planner::ParallelPlan& plan, const FaultScript& script,
                               RecoveryPolicy policy, const FaultOptions& options) {
  DAPPLE_CHECK_GT(options.build.global_batch_size, 0) << "global batch size required";
  script.Validate(cluster);

  FaultReport report;
  report.policy = policy;
  report.model = model.name();
  report.cluster = cluster.name();
  report.script = script;
  report.global_batch_size = options.build.global_batch_size;
  report.initial_plan = plan.ToString();

  auto build_config = [&](planner::ParallelPlan p, topo::Cluster c,
                          std::vector<topo::DeviceId> map, ClusterState state) {
    runtime::BuiltPipeline built =
        runtime::GraphBuilder(model, c, p, options.build).Build();
    if (options.pipeline_observer) options.pipeline_observer(built, p, c);
    return Config{std::move(p), std::move(c), std::move(map), std::move(built),
                  std::move(state)};
  };

  Config config =
      build_config(plan, cluster, IdentityMap(cluster.num_devices()), HealthyState(cluster));

  {
    const sim::SimResult healthy =
        sim::Engine::Run(config.built.graph, config.built.engine_options);
    report.healthy_iteration_time = healthy.makespan;
    report.healthy_throughput =
        static_cast<double>(report.global_batch_size) / healthy.makespan;
  }
  const TimeSec horizon =
      options.horizon > 0.0 ? options.horizon : 25.0 * report.healthy_iteration_time;
  report.horizon = horizon;

  const TimeSec onset = script.empty() ? 0.0 : script.FirstOnset();
  planner::PlannerOptions planner_options = options.planner;
  if (planner_options.global_batch_size == 0) {
    planner_options.global_batch_size = options.build.global_batch_size;
  }

  TimeSec t = 0.0;
  int iterations = 0;
  int last_checkpoint_iter = 0;
  TimeSec recovered_start = kInf;  // start of the first clean post-onset iteration
  bool halted = false;
  int steps = 0;

  auto halt = [&](TimeSec from, const std::string& why) {
    report.timeline.push_back({"stall", from, horizon, -1, why});
    t = horizon;
    halted = true;
  };

  while (t < horizon && !halted && steps++ < options.max_iterations) {
    // Elastic replans at iteration boundaries whenever the observed cluster
    // state no longer matches the one the running plan targets.
    if (policy == RecoveryPolicy::kElasticReplan || policy == RecoveryPolicy::kElasticUp) {
      const ClusterState now = PolicyStateAt(script, cluster, t, policy);
      if (now != config.planned_state) {
        const DegradedCluster degraded = MakeDegradedCluster(cluster, now);
        if (!degraded.feasible) {
          halt(t, "no surviving server to replan onto");
          break;
        }
        // A grown cluster means a device rejoined: probe the planner on the
        // full new topology (elastic-up only ever reaches here with growth
        // enabled in the remap fallback, so the new hardware is never
        // silently wasted).
        const bool grew = degraded.cluster.num_devices() > config.cluster.num_devices();
        planner::ParallelPlan next_plan;
        try {
          next_plan = ReplanOnline(model, degraded.cluster, planner_options);
        } catch (const Error&) {
          const auto remapped = RemapPlanToCluster(config.plan, degraded, grew);
          if (!remapped) {
            halt(t, "planner found no feasible plan on the degraded cluster");
            break;
          }
          next_plan = *remapped;
        }
        if (grew && policy == RecoveryPolicy::kElasticUp) {
          // Checkpoint-bounded cutover: new devices need a state snapshot,
          // so pay a restore on top of the replan and roll back to the last
          // periodic checkpoint — at most checkpoint_period iterations.
          const int rollback = iterations - last_checkpoint_iter;
          report.iterations_lost += rollback;
          iterations = last_checkpoint_iter;
          ++report.scale_ups;
          report.max_scale_up_rollback = std::max(report.max_scale_up_rollback, rollback);
          ++report.restores;
          ++report.replans;
          const TimeSec done = t + options.replan_cost + options.restore_cost;
          report.timeline.push_back(
              {"scale-up", t, done, -1,
               "rolled back to iteration " + std::to_string(last_checkpoint_iter) +
                   ", replanned onto " + degraded.cluster.name() + " as " +
                   next_plan.ToString()});
          config = build_config(std::move(next_plan), degraded.cluster,
                                degraded.to_original_device, now);
          t = done;
          continue;
        }
        const TimeSec done = t + options.replan_cost;
        report.timeline.push_back(
            {"replan", t, done, -1, "replanned onto " + degraded.cluster.name() + " as " +
                                        next_plan.ToString()});
        ++report.replans;
        config = build_config(std::move(next_plan), degraded.cluster,
                              degraded.to_original_device, now);
        t = done;
        continue;  // state may have shifted again while replanning
      }
    }

    sim::EngineOptions engine_options = config.built.engine_options;
    engine_options.resource_speeds =
        BuildSpeedProfiles(script, cluster, config.to_original_device, config.plan,
                           config.built, t, &config.planned_state);
    engine_options.allow_incomplete = script.HasCrash();
    const sim::SimResult result = sim::Engine::Run(config.built.graph, engine_options);

    if (result.completed) {
      const TimeSec end = t + result.makespan;
      report.timeline.push_back(
          {"iteration", t, end, iterations, config.plan.ToString()});
      if (recovered_start == kInf && (script.empty() || t >= onset)) {
        bool clean;
        if (policy == RecoveryPolicy::kElasticReplan || policy == RecoveryPolicy::kElasticUp) {
          clean = PolicyStateAt(script, cluster, t, policy) == config.planned_state &&
                  NoBoundaryInside(script, t, end);
        } else {
          // Stall and checkpoint never adapt to transient windows: clean
          // means no window touches the iteration and every crash so far is
          // one this config was (re)built without.
          clean = !WindowOverlaps(script, t, end) &&
                  PolicyStateAt(script, cluster, t, policy).device_dead ==
                      config.planned_state.device_dead &&
                  NextCrash(script, t, &config.planned_state.device_dead) >= end;
        }
        if (clean) {
          recovered_start = t;
          report.recovered = true;
          report.time_to_recover = end - onset;
        }
      }
      t = end;
      ++iterations;
      if ((policy == RecoveryPolicy::kCheckpointRestart ||
           policy == RecoveryPolicy::kElasticUp) &&
          iterations - last_checkpoint_iter >= options.checkpoint_period && t < horizon) {
        report.timeline.push_back({"checkpoint", t, t + options.checkpoint_cost, -1,
                                   "iteration " + std::to_string(iterations)});
        t += options.checkpoint_cost;
        last_checkpoint_iter = iterations;
        ++report.checkpoints;
      }
      continue;
    }

    // The iteration stalled: a fail-stop crash pinned part of the graph.
    const TimeSec crash_time = std::min(horizon, NextCrash(script, t));
    ++report.iterations_lost;  // the in-flight iteration is gone
    switch (policy) {
      case RecoveryPolicy::kSyncStall:
        halt(crash_time, "fail-stop device halts synchronous training");
        break;
      case RecoveryPolicy::kCheckpointRestart: {
        const TimeSec resumed = crash_time + options.detect_latency + options.restore_cost;
        const ClusterState now = PolicyStateAt(script, cluster, resumed, policy);
        const DegradedCluster degraded = MakeDegradedCluster(cluster, now);
        const auto remapped = RemapPlanToCluster(config.plan, degraded);
        if (!remapped) {
          halt(crash_time, "no surviving devices fit the plan's stages");
          break;
        }
        report.iterations_lost += iterations - last_checkpoint_iter;
        iterations = last_checkpoint_iter;
        report.timeline.push_back({"restore", crash_time, resumed, -1,
                                   "rolled back to iteration " +
                                       std::to_string(last_checkpoint_iter) + ", plan " +
                                       remapped->ToString()});
        ++report.restores;
        config = build_config(*remapped, degraded.cluster, degraded.to_original_device, now);
        t = resumed;
        break;
      }
      case RecoveryPolicy::kElasticReplan:
      case RecoveryPolicy::kElasticUp: {
        const TimeSec resumed = crash_time + options.detect_latency + options.replan_cost;
        const ClusterState now = PolicyStateAt(script, cluster, resumed, policy);
        const DegradedCluster degraded = MakeDegradedCluster(cluster, now);
        if (!degraded.feasible) {
          halt(crash_time, "no surviving server to replan onto");
          break;
        }
        planner::ParallelPlan next_plan;
        try {
          next_plan = ReplanOnline(model, degraded.cluster, planner_options);
        } catch (const Error&) {
          const auto remapped = RemapPlanToCluster(
              config.plan, degraded,
              policy == RecoveryPolicy::kElasticUp &&
                  degraded.cluster.num_devices() > config.cluster.num_devices());
          if (!remapped) {
            halt(crash_time, "planner found no feasible plan on the degraded cluster");
            break;
          }
          next_plan = *remapped;
        }
        report.timeline.push_back({"replan", crash_time, resumed, -1,
                                   "replanned onto " + degraded.cluster.name() + " as " +
                                       next_plan.ToString()});
        ++report.replans;
        config = build_config(std::move(next_plan), degraded.cluster,
                              degraded.to_original_device, now);
        t = resumed;
        break;
      }
    }
  }

  const TimeSec elapsed = std::max(t, horizon);
  report.iterations_completed = iterations;
  report.goodput = static_cast<double>(report.global_batch_size) * iterations / elapsed;
  report.goodput_loss =
      report.healthy_throughput > 0.0 ? 1.0 - report.goodput / report.healthy_throughput : 0.0;
  report.final_plan = config.plan.ToString();

  if (report.recovered) {
    int post = 0;
    for (const TimelineRow& row : report.timeline) {
      if (row.kind == "iteration" && row.start >= recovered_start) ++post;
    }
    // Checkpoint rollback can discard iterations counted above; clamp so a
    // rolled-back tail never inflates the post-fault rate.
    post = std::min(post, iterations);
    if (elapsed > recovered_start && post > 0) {
      report.post_fault_throughput =
          static_cast<double>(report.global_batch_size) * post / (elapsed - recovered_start);
    }
  } else {
    report.time_to_recover = kInf;
  }
  return report;
}

std::vector<FaultReport> RunFaultPolicySweep(const model::ModelProfile& model,
                                             const topo::Cluster& cluster,
                                             const planner::ParallelPlan& plan,
                                             const FaultScript& script,
                                             const std::vector<RecoveryPolicy>& policies,
                                             const FaultOptions& options, int sim_threads) {
  sim::BatchRunner runner({.threads = sim_threads});
  return runner.Map<FaultReport>(static_cast<int>(policies.size()), [&](int i) {
    return RunFaultExperiment(model, cluster, plan, script,
                              policies[static_cast<std::size_t>(i)], options);
  });
}

}  // namespace dapple::fault
