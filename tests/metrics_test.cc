// Unit coverage for the obs metrics instruments, centered on the
// Histogram quantile edge cases the log-bucket grid makes subtle: the
// empty histogram, a single sample, many samples in one bucket, and
// high quantiles on tiny counts — p99 of two samples must be the upper
// sample (nearest-rank), not the lower (a floor-based rank's answer).
#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"

namespace dapple::obs {
namespace {

TEST(HistogramTest, EmptyHistogramIsAllZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(h.Quantile(q), 0.0) << "q=" << q;
  }
}

TEST(HistogramTest, SingleSampleIsEveryQuantile) {
  // The bucket's upper edge is clamped to the observed [min, max], so a
  // lone sample comes back exactly — no bucket-resolution fuzz.
  Histogram h;
  h.Observe(0.0371);
  EXPECT_EQ(h.count(), 1);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0371);
  EXPECT_DOUBLE_EQ(h.min(), 0.0371);
  EXPECT_DOUBLE_EQ(h.max(), 0.0371);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0371);
  for (const double q : {0.0, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 0.0371) << "q=" << q;
  }
}

TEST(HistogramTest, AllSamplesInOneBucketCollapseEveryQuantile) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Observe(2.5);
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.mean(), 2.5);
  for (const double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Quantile(q), 2.5) << "q=" << q;
  }
}

TEST(HistogramTest, HighQuantileOfTwoSamplesIsTheUpperSample) {
  // Nearest-rank: p99 rank is ceil(0.99 * 2) - 1 = 1, the upper sample.
  // The old floor rank floor(0.99 * 1) = 0 answered the *lower* sample —
  // a p99 below p50 territory on small counts.
  Histogram h;
  h.Observe(1.0);
  h.Observe(100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.99), 100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.51), 100.0);
  // p50 and below land in the lower sample's bucket; its upper edge is
  // within one bucket width (~14%) of the sample.
  EXPECT_GE(h.Quantile(0.50), 1.0);
  EXPECT_LE(h.Quantile(0.50), 1.2);
  EXPECT_GE(h.Quantile(0.0), 1.0);
  EXPECT_LE(h.Quantile(0.0), 1.2);
}

TEST(HistogramTest, QuantileIsMonotoneAndBracketedByMinMax) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i) * 0.01);
  double prev = 0.0;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    const double v = h.Quantile(q);
    EXPECT_GE(v, prev) << "quantiles must be monotone in q, q=" << q;
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
    prev = v;
  }
  // Out-of-range q clamps rather than indexing out of the grid.
  EXPECT_DOUBLE_EQ(h.Quantile(-0.5), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(1.5), h.Quantile(1.0));
}

TEST(HistogramTest, OutOfGridSamplesSaturateToTheEdgeBuckets) {
  // Samples below kBucketMin or above kBucketMax still count, and min/max
  // record the exact values; quantiles, however, can only answer at bucket
  // resolution, so they saturate to the grid's edge buckets.
  Histogram h;
  h.Observe(1e-12);
  h.Observe(1e9);
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.min(), 1e-12);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  EXPECT_NEAR(h.Quantile(0.99), Histogram::kBucketMax, 1.0);
  EXPECT_GE(h.Quantile(0.0), Histogram::kBucketMin);
  EXPECT_LE(h.Quantile(0.0), Histogram::kBucketMin * 1.2);
}

TEST(MetricsRegistryTest, InstrumentsPersistAndResetDrops) {
  MetricsRegistry registry;
  registry.counter("c").Increment();
  registry.counter("c").Increment(41);
  EXPECT_EQ(registry.counter("c").value(), 42);
  registry.gauge("g").Set(2.5);
  EXPECT_EQ(registry.gauge("g").value(), 2.5);
  registry.histogram("h").Observe(1.0);
  EXPECT_EQ(registry.histogram("h").count(), 1);

  registry.Reset();
  EXPECT_EQ(registry.counter("c").value(), 0);
  EXPECT_EQ(registry.gauge("g").value(), 0.0);
  EXPECT_EQ(registry.histogram("h").count(), 0);
}

TEST(MetricsRegistryTest, ExportsContainTheNearestRankQuantiles) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat");
  h.Observe(1.0);
  h.Observe(100.0);
  const std::string json = registry.ToJson();
  // The p99 of two samples must serialize as the upper sample.
  EXPECT_NE(json.find("\"p99\": 100"), std::string::npos) << json;
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("p99=100"), std::string::npos) << text;
}

}  // namespace
}  // namespace dapple::obs
