#include <gtest/gtest.h>

#include "common/error.h"
#include "model/profile.h"
#include "model/profiler.h"
#include "model/zoo.h"

namespace dapple::model {
namespace {

ModelProfile TinyModel() {
  std::vector<LayerProfile> layers(3);
  for (int i = 0; i < 3; ++i) {
    layers[static_cast<std::size_t>(i)].name = "l" + std::to_string(i);
    layers[static_cast<std::size_t>(i)].forward_time = 0.010 * (i + 1);
    layers[static_cast<std::size_t>(i)].backward_time = 0.020 * (i + 1);
    layers[static_cast<std::size_t>(i)].fixed_overhead = 0.001;
    layers[static_cast<std::size_t>(i)].output_activation = 100 * (i + 1);
    layers[static_cast<std::size_t>(i)].activation_memory = 1000 * (i + 1);
    layers[static_cast<std::size_t>(i)].param_count = 10 * (i + 1);
  }
  return ModelProfile("tiny", std::move(layers), /*profile_micro_batch=*/4,
                      OptimizerKind::kAdam);
}

TEST(OptimizerKind, BytesPerParam) {
  EXPECT_EQ(OptimizerBytesPerParam(OptimizerKind::kSGD), 8u);
  EXPECT_EQ(OptimizerBytesPerParam(OptimizerKind::kAdam), 16u);
  EXPECT_EQ(OptimizerBytesPerParam(OptimizerKind::kRMSProp), 12u);
}

TEST(ModelProfile, ParamRangeQueries) {
  const ModelProfile m = TinyModel();
  EXPECT_EQ(m.TotalParamCount(), 60u);
  EXPECT_EQ(m.ParamCount(0, 1), 10u);
  EXPECT_EQ(m.ParamCount(1, 3), 50u);
  EXPECT_EQ(m.ParamCount(2, 2), 0u);
  EXPECT_EQ(m.ParamBytes(0, 3), 240u);  // fp32
  EXPECT_EQ(m.BaselineMemory(0, 3), 960u);  // Adam: 16 B/param
}

TEST(ModelProfile, ForwardTimeScalesLinearlyPlusFixed) {
  const ModelProfile m = TinyModel();
  // At the profile micro-batch (4): variable parts exactly as listed.
  EXPECT_NEAR(m.ForwardTime(0, 3, 4.0), 0.060 + 0.003, 1e-12);
  // Half the samples: variable halves, fixed overhead does not.
  EXPECT_NEAR(m.ForwardTime(0, 3, 2.0), 0.030 + 0.003, 1e-12);
  // Double speed device halves everything.
  EXPECT_NEAR(m.ForwardTime(0, 3, 4.0, 2.0), (0.060 + 0.003) / 2.0, 1e-12);
}

TEST(ModelProfile, BackwardTimeRangeAndScale) {
  const ModelProfile m = TinyModel();
  EXPECT_NEAR(m.BackwardTime(1, 3, 4.0), 0.100 + 0.002, 1e-12);
  EXPECT_NEAR(m.BackwardTime(1, 3, 8.0), 0.200 + 0.002, 1e-12);
}

TEST(ModelProfile, ActivationAtBoundary) {
  const ModelProfile m = TinyModel();
  EXPECT_EQ(m.ActivationAt(0, 4.0), 0u);  // model input
  EXPECT_EQ(m.ActivationAt(1, 4.0), 100u);
  EXPECT_EQ(m.ActivationAt(2, 4.0), 200u);
  EXPECT_EQ(m.ActivationAt(3, 4.0), 0u);  // loss boundary
  EXPECT_EQ(m.ActivationAt(1, 8.0), 200u);  // scales with samples
}

TEST(ModelProfile, ActivationMemoryRange) {
  const ModelProfile m = TinyModel();
  EXPECT_EQ(m.ActivationMemory(0, 3, 4.0), 6000u);
  EXPECT_EQ(m.ActivationMemory(1, 2, 2.0), 1000u);
}

TEST(ModelProfile, CheckpointMemoryIsPerLayerBoundaries) {
  const ModelProfile m = TinyModel();
  // Interior stage [1,3): one checkpoint per layer = inputs of layers 1
  // and 2 = boundary activations 1 and 2.
  EXPECT_EQ(m.CheckpointMemory(1, 3, 4.0), m.ActivationAt(1, 4.0) + m.ActivationAt(2, 4.0));
  EXPECT_LT(m.CheckpointMemory(1, 3, 4.0), m.ActivationMemory(1, 3, 4.0));
  // First stage stashes its own input footprint approximation.
  EXPECT_GT(m.CheckpointMemory(0, 2, 4.0), 0u);
  EXPECT_EQ(m.CheckpointMemory(1, 1, 4.0), 0u);
}

TEST(ModelProfile, MaxLayerActivationMemory) {
  const ModelProfile m = TinyModel();
  // Layers hold 1000/2000/3000 at the profile micro-batch of 4.
  EXPECT_EQ(m.MaxLayerActivationMemory(0, 3, 4.0), 3000u);
  EXPECT_EQ(m.MaxLayerActivationMemory(0, 2, 4.0), 2000u);
  EXPECT_EQ(m.MaxLayerActivationMemory(0, 3, 2.0), 1500u);
  EXPECT_EQ(m.MaxLayerActivationMemory(1, 1, 4.0), 0u);
}

TEST(ModelProfile, RangeValidation) {
  const ModelProfile m = TinyModel();
  EXPECT_THROW(m.ParamCount(-1, 2), Error);
  EXPECT_THROW(m.ParamCount(0, 4), Error);
  EXPECT_THROW(m.ParamCount(2, 1), Error);
  EXPECT_THROW(m.ForwardTime(0, 3, 0.0), Error);
  EXPECT_THROW(m.ActivationAt(4, 1.0), Error);
  EXPECT_THROW(m.layer(3), Error);
}

TEST(ModelProfile, RejectsEmptyModel) {
  EXPECT_THROW(ModelProfile("empty", {}, 1, OptimizerKind::kSGD), Error);
}

TEST(Profiler, MeasureScalesWithDeviceSpeed) {
  const ModelProfile m = TinyModel();
  topo::DeviceSpec fast;
  fast.relative_speed = 2.0;
  Profiler profiler(fast);
  const ModelProfile measured = profiler.Measure(m);
  EXPECT_NEAR(measured.ForwardTime(0, 3, 4.0), m.ForwardTime(0, 3, 4.0) / 2.0, 1e-12);
  // Sizes are architecture properties, not measurements.
  EXPECT_EQ(measured.TotalParamCount(), m.TotalParamCount());
}

TEST(Profiler, JitterPerturbsButStaysPositive) {
  const ModelProfile m = TinyModel();
  ProfilerOptions options;
  options.time_jitter = 0.5;
  options.seed = 99;
  Profiler profiler(topo::DeviceSpec{}, options);
  const ModelProfile noisy = profiler.Measure(m);
  for (int i = 0; i < noisy.num_layers(); ++i) {
    EXPECT_GT(noisy.layer(i).forward_time, 0.0);
    EXPECT_GT(noisy.layer(i).backward_time, 0.0);
  }
  // At 50% jitter something must have moved.
  EXPECT_NE(noisy.ForwardTime(0, 3, 4.0), m.ForwardTime(0, 3, 4.0));
}

TEST(Profiler, ReportSummarizesTableIIFields) {
  const ModelProfile bert = MakeBert48();
  Profiler profiler(topo::DeviceSpec{});
  const ProfileReport report = profiler.Report(bert);
  EXPECT_EQ(report.model, "BERT-48");
  EXPECT_EQ(report.profile_micro_batch, 2);
  EXPECT_NEAR(report.param_count / 1e6, 640.0, 1.0);
  EXPECT_GT(report.memory_cost, report.param_count * 16);  // + activations
  EXPECT_TRUE(report.fits_single_device);
}

TEST(Profiler, AmoebaNetDoesNotFitOneDevice) {
  Profiler profiler(topo::DeviceSpec{});
  const ProfileReport report = profiler.Report(MakeAmoebaNet36());
  EXPECT_FALSE(report.fits_single_device);  // Table II: OOM on 16GB V100
}

}  // namespace
}  // namespace dapple::model
