#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "model/zoo.h"
#include "planner/dp_planner.h"
#include "planner/torchgpipe_planner.h"
#include "topo/cluster.h"

namespace dapple::planner {
namespace {

TEST(TorchGpipe, UniformModelSplitsEvenly) {
  const auto m = model::MakeUniformSynthetic(16, 0.01, 0.02, 1000, 1000, 1);
  const auto cluster = topo::MakeConfigB(4);
  TorchGpipePlanner planner(m, cluster);
  const ParallelPlan plan = planner.Plan();
  ASSERT_EQ(plan.num_stages(), 4);
  for (const StagePlan& s : plan.stages) {
    EXPECT_EQ(s.num_layers(), 4);
    EXPECT_EQ(s.replication(), 1);
  }
  EXPECT_TRUE(plan.IsStraight());
}

TEST(TorchGpipe, MinMaxIsOptimalOnSmallInstance) {
  // Skewed model: brute-force all 2-splits and compare.
  auto layers = model::MakeUniformSynthetic(5, 0.01, 0.02, 1000, 1000, 1).layers();
  layers[0].forward_time = 0.05;
  layers[0].backward_time = 0.10;
  const model::ModelProfile m("skew", layers, 1, model::OptimizerKind::kSGD);
  const auto cluster = topo::MakeConfigB(2);
  TorchGpipePlanner planner(m, cluster);
  const ParallelPlan plan = planner.Plan(2);
  double best = std::numeric_limits<double>::infinity();
  for (int split = 1; split < 5; ++split) {
    const double cost = std::max(m.ForwardTime(0, split, 1) + m.BackwardTime(0, split, 1),
                                 m.ForwardTime(split, 5, 1) + m.BackwardTime(split, 5, 1));
    best = std::min(best, cost);
  }
  EXPECT_NEAR(planner.Bottleneck(plan), best, 1e-12);
}

TEST(TorchGpipe, HeavyLayerGetsItsOwnBlock) {
  auto layers = model::MakeUniformSynthetic(6, 0.005, 0.010, 1000, 1000, 1).layers();
  layers[3].forward_time = 0.2;
  layers[3].backward_time = 0.4;
  const model::ModelProfile m("one-heavy", layers, 1, model::OptimizerKind::kSGD);
  const auto cluster = topo::MakeConfigB(3);
  TorchGpipePlanner planner(m, cluster);
  const ParallelPlan plan = planner.Plan();
  // Some stage must contain exactly layer 3 +- neighbours and its cost
  // dominates; bottleneck cannot beat the heavy layer itself.
  EXPECT_NEAR(planner.Bottleneck(plan), 0.6, 0.05);
}

TEST(TorchGpipe, MoreStagesThanLayersClamped) {
  const auto m = model::MakeUniformSynthetic(3, 0.01, 0.02, 1000, 1000, 1);
  const auto cluster = topo::MakeConfigB(8);
  TorchGpipePlanner planner(m, cluster);
  const ParallelPlan plan = planner.Plan();
  EXPECT_EQ(plan.num_stages(), 3);
}

TEST(TorchGpipe, DappleBeatsItUnderSyncObjective) {
  // The §IV-D comparison: balanced blocks are reasonable but DAPPLE's
  // fewer/uneven/replicated stages evaluate faster under the synchronous
  // latency objective.
  const auto bert = model::MakeBert48();
  const auto cluster = topo::MakeConfigA(2);
  PlannerOptions o;
  o.global_batch_size = 64;
  DapplePlanner dapple(bert, cluster, o);
  const PlanResult ours = dapple.Plan();
  TorchGpipePlanner torchgpipe(bert, cluster);
  const PlanEstimate theirs = dapple.Evaluate(torchgpipe.Plan());
  EXPECT_LT(ours.estimate.latency, theirs.latency);
}

TEST(TorchGpipe, RejectsMoreStagesThanDevices) {
  const auto m = model::MakeUniformSynthetic(8, 0.01, 0.02, 1000, 1000, 1);
  const auto cluster = topo::MakeConfigB(2);
  TorchGpipePlanner planner(m, cluster);
  EXPECT_THROW(planner.Plan(4), dapple::Error);
}

}  // namespace
}  // namespace dapple::planner
