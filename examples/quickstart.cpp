// Quickstart: plan and run BERT-48 on a two-server Config-A cluster, then
// compare the planner's hybrid strategy against the data-parallel
// baselines — a miniature version of the paper's evaluation loop.
#include <cstdio>

#include "dapple/dapple.h"

int main() {
  using namespace dapple;

  const model::ModelProfile bert = model::MakeBert48();
  const topo::Cluster cluster = topo::MakeConfigA(/*num_servers=*/2);
  const long global_batch_size = 64;

  Session session(bert, cluster);

  // 1. Profile (Table II style summary).
  const model::ProfileReport profile = session.Profile();
  std::printf("model %s: %.0fM params (%s gradients), memory cost %s at micro-batch %d\n",
              profile.model.c_str(), profile.param_count / 1e6,
              FormatBytes(profile.param_bytes).c_str(),
              FormatBytes(profile.memory_cost).c_str(), profile.profile_micro_batch);

  // 2. Plan: hybrid pipeline + data parallelism.
  const planner::PlanResult planned = session.Plan(global_batch_size);
  std::printf("\nplanner output: %s (split %s), estimated latency %s, ACR %.2f\n",
              planned.plan.ToString().c_str(), planned.plan.SplitString().c_str(),
              FormatTime(planned.estimate.latency).c_str(), planned.estimate.acr);
  std::printf("%s", planned.plan.ToDetailedString().c_str());

  // 3. Run one iteration on the simulated cluster.
  const runtime::IterationReport report = session.Run(planned.plan, global_batch_size);
  std::printf("\nruntime: latency %s, throughput %.2f samples/s, speedup %.2fx\n",
              FormatTime(report.pipeline_latency).c_str(), report.throughput,
              report.speedup);
  std::printf("peak memory avg %s / max %s, utilization %.0f%%, %d micro-batches of %d\n",
              FormatBytes(report.avg_peak_memory).c_str(),
              FormatBytes(report.max_peak_memory).c_str(),
              100.0 * report.avg_device_utilization, report.num_micro_batches,
              report.micro_batch_size);

  // 4. Against data-parallel baselines.
  for (auto variant :
       {planner::DataParallelVariant::kNoOverlap, planner::DataParallelVariant::kOverlap}) {
    const auto dp = planner::EstimateDataParallel(bert, cluster, global_batch_size, variant);
    std::printf("DP %-10s: %s/iter, speedup %.2fx%s\n",
                variant == planner::DataParallelVariant::kOverlap ? "overlap" : "no-overlap",
                FormatTime(dp.iteration_time).c_str(), dp.speedup,
                dp.feasible ? "" : "  (INFEASIBLE)");
  }
  return 0;
}
