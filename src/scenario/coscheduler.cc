#include "scenario/coscheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <utility>

#include "common/error.h"
#include "obs/metrics.h"
#include "serve/fingerprint.h"
#include "sim/batch.h"
#include "sim/engine.h"

namespace dapple::scenario {

namespace {

constexpr TimeSec kInf = std::numeric_limits<TimeSec>::infinity();

}  // namespace

/// One evaluated (job, slice width) point: the plan the DAPPLE planner
/// chose on that many servers and its simulated iteration time. infeasible
/// (planner threw) keeps iteration_time at +inf so it loses every
/// comparison without special-casing.
struct CoScheduler::Cell {
  planner::ParallelPlan plan;
  TimeSec iteration_time = kInf;
  bool feasible = false;
};

/// Memoized candidate evaluation. Keys are serve-layer plan-request
/// fingerprints of (job model, budget slice, batch, planner options), so
/// the cache is shared across greedy steps, exchange passes and — because
/// the fingerprint is stable — across CoScheduler instances handed the
/// same cache. Hit/miss counts are per deduped evaluation round, which
/// keeps them (and the report bytes) independent of worker count.
class CoScheduler::Evaluator {
 public:
  Evaluator(const topo::Cluster& budget, const CoScheduleOptions& options,
            const std::vector<JobSpec>& jobs)
      : budget_(budget), options_(options), jobs_(jobs), runner_({.threads = options.sim_threads}) {}

  /// Ensures every (job, width) in `wanted` is cached; computes the missing
  /// ones concurrently.
  void Prepare(const std::vector<std::pair<int, int>>& wanted) {
    std::vector<std::pair<std::uint64_t, std::pair<int, int>>> missing;
    for (const auto& [job, width] : wanted) {
      const std::uint64_t key = KeyOf(job, width);
      if (cache_.Lookup(key).has_value()) {
        ++hits_;
        continue;
      }
      // Dedupe within the round: the first request computes, the rest hit.
      const bool queued = std::any_of(missing.begin(), missing.end(),
                                      [&](const auto& m) { return m.first == key; });
      if (queued) {
        ++hits_;
        continue;
      }
      ++misses_;
      missing.emplace_back(key, std::make_pair(job, width));
    }
    if (missing.empty()) return;
    const std::vector<std::shared_ptr<Cell>> computed =
        runner_.Map<std::shared_ptr<Cell>>(static_cast<int>(missing.size()), [&](int i) {
          const auto& [job, width] = missing[static_cast<std::size_t>(i)].second;
          return std::make_shared<Cell>(Compute(job, width));
        });
    for (std::size_t i = 0; i < missing.size(); ++i) {
      cache_.Insert(missing[i].first, computed[i]);
    }
  }

  const Cell& At(int job, int width) {
    const std::uint64_t key = KeyOf(job, width);
    auto cell = cache_.Lookup(key);
    if (!cell.has_value()) {
      // A path the round-based Prepare missed; compute inline (counted as a
      // miss so the books still balance deterministically).
      ++misses_;
      cache_.Insert(key, std::make_shared<Cell>(Compute(job, width)));
      cell = cache_.Lookup(key);
    }
    scratch_ = *cell;
    return *scratch_;
  }

  topo::Cluster Slice(int width) const { return budget_.WithServers(width); }

  long hits() const { return hits_; }
  long misses() const { return misses_; }

 private:
  std::uint64_t KeyOf(int job, int width) {
    const JobSpec& spec = jobs_[static_cast<std::size_t>(job)];
    planner::PlannerOptions po = options_.planner;
    po.global_batch_size = spec.global_batch_size;
    return serve::FingerprintPlanRequest(spec.model, Slice(width), spec.global_batch_size,
                                         po);
  }

  Cell Compute(int job, int width) const {
    const JobSpec& spec = jobs_[static_cast<std::size_t>(job)];
    const topo::Cluster slice = Slice(width);
    Cell cell;
    planner::PlannerOptions po = options_.planner;
    po.global_batch_size = spec.global_batch_size;
    try {
      cell.plan = planner::DapplePlanner(spec.model, slice, po).Plan().plan;
    } catch (const Error&) {
      return cell;  // infeasible on this slice; +inf loses every comparison
    }
    runtime::BuildOptions build = options_.build;
    build.global_batch_size = spec.global_batch_size;
    const runtime::BuiltPipeline built =
        runtime::GraphBuilder(spec.model, slice, cell.plan, build).Build();
    const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
    cell.iteration_time = result.makespan;
    cell.feasible = true;
    return cell;
  }

  const topo::Cluster& budget_;
  const CoScheduleOptions& options_;
  const std::vector<JobSpec>& jobs_;
  sim::BatchRunner runner_;
  ShardedCache<std::uint64_t, std::shared_ptr<Cell>> cache_;
  std::shared_ptr<Cell> scratch_;
  long hits_ = 0;
  long misses_ = 0;
};

CoScheduler::CoScheduler(topo::Cluster budget, CoScheduleOptions options)
    : budget_(std::move(budget)), options_(std::move(options)) {}

CoScheduleReport CoScheduler::Schedule(const std::vector<JobSpec>& jobs) {
  const int num_jobs = static_cast<int>(jobs.size());
  const int total_servers = budget_.num_servers();
  DAPPLE_CHECK_GT(num_jobs, 0) << "co-scheduling zero jobs";
  DAPPLE_CHECK(total_servers >= num_jobs)
      << "budget " << budget_.name() << " has " << total_servers << " servers for "
      << num_jobs << " jobs";
  for (const JobSpec& job : jobs) {
    DAPPLE_CHECK_GT(job.iterations, 0) << "job " << job.name << " runs no iterations";
    DAPPLE_CHECK_GT(job.global_batch_size, 0) << "job " << job.name << " has no batch";
  }

  Evaluator eval(budget_, options_, jobs);
  CoScheduleReport report;

  auto makespan = [&](int job, int width) {
    const Cell& cell = eval.At(job, width);
    return cell.feasible
               ? static_cast<double>(jobs[static_cast<std::size_t>(job)].iterations) *
                     cell.iteration_time
               : kInf;
  };
  auto aggregate = [&](const std::vector<int>& widths) {
    TimeSec worst = 0.0;
    for (int j = 0; j < num_jobs; ++j) worst = std::max(worst, makespan(j, widths[static_cast<std::size_t>(j)]));
    return worst;
  };

  // --- Naive even baseline: floor(S/N) each, remainder round-robin. ---
  std::vector<int> even(static_cast<std::size_t>(num_jobs), total_servers / num_jobs);
  for (int r = 0; r < total_servers % num_jobs; ++r) ++even[static_cast<std::size_t>(r)];
  {
    std::vector<std::pair<int, int>> wanted;
    for (int j = 0; j < num_jobs; ++j) wanted.emplace_back(j, even[static_cast<std::size_t>(j)]);
    eval.Prepare(wanted);
  }
  report.naive_even_makespan = aggregate(even);

  // --- Greedy: one server each, then each remaining server to whichever
  // job shrinks the aggregate the most (ties: lowest job index). ---
  std::vector<int> widths(static_cast<std::size_t>(num_jobs), 1);
  for (int step = num_jobs; step < total_servers; ++step) {
    std::vector<std::pair<int, int>> wanted;
    for (int j = 0; j < num_jobs; ++j) {
      wanted.emplace_back(j, widths[static_cast<std::size_t>(j)]);
      wanted.emplace_back(j, widths[static_cast<std::size_t>(j)] + 1);
    }
    eval.Prepare(wanted);
    int best_job = 0;
    TimeSec best_aggregate = kInf;
    for (int j = 0; j < num_jobs; ++j) {
      ++widths[static_cast<std::size_t>(j)];
      const TimeSec candidate = aggregate(widths);
      --widths[static_cast<std::size_t>(j)];
      if (candidate < best_aggregate) {
        best_aggregate = candidate;
        best_job = j;
      }
    }
    ++widths[static_cast<std::size_t>(best_job)];
    ++report.greedy_steps;
  }

  // Greedy can wander on non-convex makespan curves; never do worse than
  // the even split — start the exchange phase from whichever is better.
  if (aggregate(even) < aggregate(widths)) widths = even;

  // --- Exchange improvement: move one server donor -> receiver while it
  // strictly shrinks the aggregate, to a fixed point (bounded rounds). ---
  for (int round = 0; round < options_.exchange_rounds; ++round) {
    std::vector<std::pair<int, int>> wanted;
    for (int j = 0; j < num_jobs; ++j) {
      const int w = widths[static_cast<std::size_t>(j)];
      if (w > 1) wanted.emplace_back(j, w - 1);
      if (w < total_servers) wanted.emplace_back(j, w + 1);
    }
    eval.Prepare(wanted);

    bool moved = false;
    TimeSec current = aggregate(widths);
    for (int donor = 0; donor < num_jobs && !moved; ++donor) {
      if (widths[static_cast<std::size_t>(donor)] <= 1) continue;
      for (int receiver = 0; receiver < num_jobs && !moved; ++receiver) {
        if (receiver == donor) continue;
        --widths[static_cast<std::size_t>(donor)];
        ++widths[static_cast<std::size_t>(receiver)];
        const TimeSec candidate = aggregate(widths);
        if (candidate < current) {
          moved = true;
          ++report.exchange_moves;
          ++report.preemptions;  // the donor's devices get preempted
        } else {
          ++widths[static_cast<std::size_t>(donor)];
          --widths[static_cast<std::size_t>(receiver)];
        }
      }
    }
    if (!moved) break;
  }

  // --- Final assignment: contiguous disjoint server ranges in job order. ---
  report.aggregate_makespan = aggregate(widths);
  if (!std::isfinite(report.aggregate_makespan)) {
    throw Error("no feasible co-schedule: some job fits no slice of " + budget_.name());
  }
  int next_server = 0;
  double busy_device_time = 0.0;
  for (int j = 0; j < num_jobs; ++j) {
    const int w = widths[static_cast<std::size_t>(j)];
    const Cell& cell = eval.At(j, w);
    JobAssignment a;
    a.name = jobs[static_cast<std::size_t>(j)].name;
    a.server_begin = next_server;
    a.servers = w;
    a.plan = cell.plan;
    a.iteration_time = cell.iteration_time;
    a.makespan =
        static_cast<double>(jobs[static_cast<std::size_t>(j)].iterations) * cell.iteration_time;
    next_server += w;
    busy_device_time += a.makespan * w * budget_.gpus_per_server();
    if (options_.pipeline_observer) {
      const topo::Cluster slice = eval.Slice(w);
      runtime::BuildOptions build = options_.build;
      build.global_batch_size = jobs[static_cast<std::size_t>(j)].global_batch_size;
      const runtime::BuiltPipeline built =
          runtime::GraphBuilder(jobs[static_cast<std::size_t>(j)].model, slice, a.plan, build)
              .Build();
      options_.pipeline_observer(built, a.plan, slice);
    }
    report.jobs.push_back(std::move(a));
  }
  report.cache_hits = eval.hits();
  report.cache_misses = eval.misses();
  report.utilization =
      report.aggregate_makespan > 0.0
          ? busy_device_time / (budget_.num_devices() * report.aggregate_makespan)
          : 0.0;

  auto& metrics = obs::MetricsRegistry::Global();
  metrics.counter("scenario.cosched.runs").Increment();
  metrics.counter("scenario.cosched.cache_hits").Increment(report.cache_hits);
  metrics.counter("scenario.cosched.cache_misses").Increment(report.cache_misses);
  metrics.counter("scenario.cosched.preemptions").Increment(report.preemptions);
  metrics.counter("scenario.cosched.exchange_moves").Increment(report.exchange_moves);
  metrics.gauge("scenario.cosched.aggregate_makespan").Set(report.aggregate_makespan);
  metrics.gauge("scenario.cosched.utilization").Set(report.utilization);
  return report;
}

CoScheduleReport CoSchedule(const topo::Cluster& budget, const std::vector<JobSpec>& jobs,
                            const CoScheduleOptions& options) {
  return CoScheduler(budget, options).Schedule(jobs);
}

}  // namespace dapple::scenario
