// Sequential MLP model: an ordered stack of layers with parameter access
// for optimizers and deep cloning for data-parallel replicas. The layer
// granularity matches the planner's view of a model: a ParallelPlan's
// stage [begin, end) maps onto the same indices here.
#pragma once

#include <memory>
#include <vector>

#include "train/layer.h"

namespace dapple::train {

class MlpModel {
 public:
  MlpModel() = default;

  void Add(std::unique_ptr<Layer> layer);

  int num_layers() const { return static_cast<int>(layers_.size()); }
  const Layer& layer(int i) const;
  Layer& mutable_layer(int i);

  /// Pointers to every parameter tensor, in layer order (weight then bias
  /// per parametric layer). Optimizers and gradient exchange operate on
  /// this flat view.
  std::vector<Tensor*> Params();

  /// Deep copy, preserving weights (for data-parallel replicas).
  MlpModel Clone() const;

  /// Copies all parameters from another model with identical structure.
  void CopyParamsFrom(const MlpModel& other);

  /// Builds `hidden_layers` Linear+activation blocks plus a final Linear:
  /// in -> hidden -> ... -> hidden -> out. `use_tanh` picks tanh over ReLU
  /// (smooth gradients make convergence tests robust).
  static MlpModel MakeMlp(std::size_t in_features, std::size_t hidden, std::size_t out,
                          int hidden_layers, Rng& rng, bool use_tanh = true);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Gradient set aligned with MlpModel::Params(): one tensor per parameter.
using GradientVector = std::vector<Tensor>;

/// Zero-initializes a gradient vector matching the model's params.
GradientVector ZeroGradients(MlpModel& model);

/// Accumulates src into dst elementwise (dst may be empty-initialized).
void AccumulateGradients(GradientVector& dst, const GradientVector& src);

/// Largest elementwise difference over all gradient tensors.
float MaxGradientDiff(const GradientVector& a, const GradientVector& b);

}  // namespace dapple::train
