#include "sim/engine.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"

namespace dapple::sim {

TimeSec FinishTime(const ResourceSpeedProfile& profile, TimeSec start, TimeSec work) {
  if (work <= 0.0) return start;
  constexpr TimeSec kInf = std::numeric_limits<TimeSec>::infinity();
  const auto& segs = profile.segments;
  TimeSec t = start;
  TimeSec remaining = work;
  // Index of the segment active at `t` (-1 = the implicit unit-speed lead-in
  // before the first breakpoint).
  int i = -1;
  while (i + 1 < static_cast<int>(segs.size()) &&
         segs[static_cast<std::size_t>(i + 1)].start <= t) {
    ++i;
  }
  for (;;) {
    const double speed = i < 0 ? 1.0 : segs[static_cast<std::size_t>(i)].speed;
    const TimeSec seg_end = i + 1 < static_cast<int>(segs.size())
                                ? segs[static_cast<std::size_t>(i + 1)].start
                                : kInf;
    if (speed > 0.0) {
      const TimeSec finish = t + remaining / speed;
      if (finish <= seg_end) return finish;
      remaining -= (seg_end - t) * speed;
    } else if (seg_end == kInf) {
      return kInf;  // trailing zero-speed segment: pinned forever
    }
    t = seg_end;
    ++i;
  }
}

double SimResult::Utilization(ResourceId r) const {
  if (makespan <= 0.0) return 0.0;
  return resources.at(static_cast<std::size_t>(r)).busy / makespan;
}

double SimResult::ComputeUtilization(ResourceId r) const {
  if (makespan <= 0.0) return 0.0;
  return resources.at(static_cast<std::size_t>(r)).compute_busy / makespan;
}

Bytes SimResult::MaxPeakMemory() const {
  Bytes peak = 0;
  for (const MemoryPool& p : pools) peak = std::max(peak, p.peak());
  return peak;
}

bool SimResult::AnyOom() const {
  return std::any_of(pools.begin(), pools.end(),
                     [](const MemoryPool& p) { return p.oom(); });
}

namespace {

struct Completion {
  TimeSec time;
  TaskId task;
  bool operator>(const Completion& other) const {
    if (time != other.time) return time > other.time;
    return task > other.task;
  }
};

/// Ready-queue ordering: (priority, id) ascending.
struct ReadyOrder {
  const TaskGraph* graph;
  bool operator()(TaskId a, TaskId b) const {
    const Task& ta = graph->task(a);
    const Task& tb = graph->task(b);
    if (ta.priority != tb.priority) return ta.priority < tb.priority;
    return a < b;
  }
};

}  // namespace

SimResult Engine::Run(const TaskGraph& graph, EngineOptions options) {
  const int n = graph.num_tasks();
  const int num_resources = std::max(graph.num_resources(), 1);
  const int num_pools = std::max(
      graph.num_pools(), static_cast<int>(std::max(options.pool_capacities.size(),
                                                   options.pool_baselines.size())));

  SimResult result;
  result.records.resize(static_cast<std::size_t>(n));
  result.resources.resize(static_cast<std::size_t>(num_resources));
  result.pools.reserve(static_cast<std::size_t>(num_pools));
  for (int p = 0; p < num_pools; ++p) {
    const Bytes cap = static_cast<std::size_t>(p) < options.pool_capacities.size()
                          ? options.pool_capacities[static_cast<std::size_t>(p)]
                          : 0;
    result.pools.emplace_back(cap);
    if (static_cast<std::size_t>(p) < options.pool_baselines.size()) {
      result.pools.back().SetBaseline(options.pool_baselines[static_cast<std::size_t>(p)]);
    }
  }

  std::vector<int> pending(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) pending[static_cast<std::size_t>(t)] = graph.in_degree(t);

  // Per-resource speed profiles (nullptr = fixed unit speed, the exact
  // legacy arithmetic: rec.end = now + duration and busy += duration).
  std::vector<const ResourceSpeedProfile*> profile_of(
      static_cast<std::size_t>(num_resources), nullptr);
  for (const ResourceSpeedProfile& p : options.resource_speeds) {
    DAPPLE_CHECK(p.resource >= 0 && p.resource < num_resources)
        << "speed profile for unknown resource " << p.resource;
    for (std::size_t s = 0; s < p.segments.size(); ++s) {
      DAPPLE_CHECK(p.segments[s].speed >= 0.0) << "negative resource speed";
      if (s > 0) {
        DAPPLE_CHECK_GT(p.segments[s].start, p.segments[s - 1].start)
            << "speed segments must be sorted by start";
      }
    }
    if (!p.segments.empty()) profile_of[static_cast<std::size_t>(p.resource)] = &p;
  }

  // Per-resource ready sets and busy flags.
  std::vector<std::set<TaskId, ReadyOrder>> ready(
      static_cast<std::size_t>(num_resources), std::set<TaskId, ReadyOrder>(ReadyOrder{&graph}));
  std::vector<TaskId> running(static_cast<std::size_t>(num_resources), kInvalidTask);

  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> completions;
  int executed = 0;
  TimeSec now = 0.0;
  // Resources that may be able to start a task after the current event.
  std::vector<ResourceId> wake;
  wake.reserve(8);

  auto start_task = [&](TaskId id) {
    const Task& task = graph.task(id);
    running[static_cast<std::size_t>(task.resource)] = id;
    auto& rec = result.records[static_cast<std::size_t>(id)];
    rec.id = id;
    rec.start = now;
    rec.started = true;
    const ResourceSpeedProfile* profile =
        profile_of[static_cast<std::size_t>(task.resource)];
    rec.end = profile ? FinishTime(*profile, now, task.duration) : now + task.duration;
    if (task.pool >= 0 && task.alloc_at_start > 0) {
      result.pools[static_cast<std::size_t>(task.pool)].Allocate(now, task.alloc_at_start);
    }
    if (rec.end == std::numeric_limits<TimeSec>::infinity()) {
      // Pinned by a permanent zero-speed window: the resource stays
      // occupied, the task never completes, and its record stays
      // executed = false.
      return;
    }
    rec.executed = true;
    completions.push({rec.end, id});
  };

  auto dispatch_resource = [&](ResourceId r) {
    auto& queue = ready[static_cast<std::size_t>(r)];
    if (running[static_cast<std::size_t>(r)] != kInvalidTask || queue.empty()) return;
    const TaskId next = *queue.begin();
    queue.erase(queue.begin());
    start_task(next);
  };

  // Seed with all zero-indegree tasks.
  for (TaskId t = 0; t < n; ++t) {
    if (pending[static_cast<std::size_t>(t)] == 0) {
      ready[static_cast<std::size_t>(graph.task(t).resource)].insert(t);
    }
  }
  for (ResourceId r = 0; r < num_resources; ++r) dispatch_resource(r);

  while (!completions.empty()) {
    const Completion done = completions.top();
    completions.pop();
    now = done.time;
    const Task& task = graph.task(done.task);

    ++executed;
    auto& usage = result.resources[static_cast<std::size_t>(task.resource)];
    if (usage.tasks_executed == 0) {
      usage.first_start = result.records[static_cast<std::size_t>(done.task)].start;
    }
    // With a speed profile the wall-clock occupancy differs from the work;
    // without one, use the duration directly to keep legacy runs bit-exact.
    const TimeSec elapsed =
        profile_of[static_cast<std::size_t>(task.resource)] != nullptr
            ? done.time - result.records[static_cast<std::size_t>(done.task)].start
            : task.duration;
    usage.busy += elapsed;
    if (IsComputeKind(task.kind)) usage.compute_busy += elapsed;
    usage.last_end = now;
    usage.tasks_executed++;
    result.makespan = std::max(result.makespan, now);

    if (task.pool >= 0 && task.free_at_end > 0) {
      result.pools[static_cast<std::size_t>(task.pool)].Free(now, task.free_at_end);
    }

    running[static_cast<std::size_t>(task.resource)] = kInvalidTask;

    // Only the freed resource and resources whose ready set gained a task
    // can start something; dispatching is idempotent, so duplicates in the
    // wake list are harmless. Dispatching exactly those keeps the loop
    // O(successors) per event instead of O(num_resources).
    wake.clear();
    wake.push_back(task.resource);
    for (TaskId succ : graph.successors(done.task)) {
      if (--pending[static_cast<std::size_t>(succ)] == 0) {
        const ResourceId r = graph.task(succ).resource;
        ready[static_cast<std::size_t>(r)].insert(succ);
        wake.push_back(r);
      }
    }
    for (ResourceId r : wake) dispatch_resource(r);
  }

  if (executed != n) {
    if (options.allow_incomplete) {
      result.completed = false;
      result.tasks_unfinished = n - executed;
      // Pinned tasks hold unreleased allocations; leave the pools as they
      // are — the partial state is what a fault-aborted iteration looks
      // like, and callers discard it anyway.
    } else {
      std::ostringstream os;
      os << "task graph deadlock: executed " << executed << " of " << n
         << " tasks; first blocked:";
      int listed = 0;
      for (TaskId t = 0; t < n && listed < 5; ++t) {
        if (!result.records[static_cast<std::size_t>(t)].executed) {
          os << " '" << graph.task(t).name << "'";
          ++listed;
        }
      }
      throw Error(os.str());
    }
  }

  auto& metrics = obs::MetricsRegistry::Global();
  metrics.counter("sim.runs").Increment();
  metrics.counter("sim.tasks_executed").Increment(executed);
  metrics.histogram("sim.makespan").Observe(result.makespan);
  return result;
}

}  // namespace dapple::sim
