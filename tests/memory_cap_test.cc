// Memory-constrained planning: the recompute_overhead calibration shared by
// the estimator and the simulator (0.4 x forward == 20% of a 2x-forward
// backward pass, the paper's "~20% extra overhead" for recomputation), the
// strict `peak > cap` OOM boundary (peak == cap is feasible) pinned at the
// cap and one byte either side across the estimator, the builder's pools
// and the validator, the planner's cap rejection, and the auto-recompute
// fit search (per-stage StagePlan::recompute flags, plan_io round-trip).
#include <gtest/gtest.h>

#include <string>

#include "check/validator.h"
#include "common/error.h"
#include "common/units.h"
#include "model/zoo.h"
#include "planner/dp_planner.h"
#include "planner/latency.h"
#include "planner/plan_io.h"
#include "runtime/graph_builder.h"
#include "runtime/schedule.h"
#include "sim/engine.h"
#include "topo/cluster.h"

namespace dapple {
namespace {

using model::MakeUniformSynthetic;
using model::ModelProfile;
using planner::LatencyEstimator;
using planner::LatencyOptions;
using planner::ParallelPlan;
using planner::PlanEstimate;
using planner::StagePlan;
using topo::Cluster;
using topo::DeviceSet;

Cluster FastCluster(int servers, int gpus) {
  topo::InterconnectSpec net;
  net.intra_server_bandwidth = GBps(1e9);
  net.inter_server_bandwidth = GBps(1e9);
  net.intra_server_latency = 0.0;
  net.inter_server_latency = 0.0;
  return Cluster("fast", servers, gpus, topo::DeviceSpec{}, net);
}

ParallelPlan SingleStagePlan(const ModelProfile& m) {
  ParallelPlan plan;
  plan.model = m.name();
  StagePlan s;
  s.layer_begin = 0;
  s.layer_end = m.num_layers();
  s.devices = DeviceSet::Range(0, 1);
  plan.stages = {s};
  return plan;
}

ParallelPlan TwoStagePlan(const ModelProfile& m) {
  ParallelPlan plan;
  plan.model = m.name();
  StagePlan s0;
  s0.layer_begin = 0;
  s0.layer_end = m.num_layers() / 2;
  s0.devices = DeviceSet::Range(0, 1);
  StagePlan s1;
  s1.layer_begin = m.num_layers() / 2;
  s1.layer_end = m.num_layers();
  s1.devices = DeviceSet::Range(1, 1);
  plan.stages = {s0, s1};
  return plan;
}

// ---------------------------------------------------------------------------
// Satellite 1: the recompute_overhead calibration. The docs promise "~20%
// extra backward overhead"; with backward ~ 2x forward across the zoo
// profiles that is 0.4 x forward. Estimator and simulator must agree on the
// constant, or capped plans tuned by one would mis-simulate under the other.

TEST(RecomputeOverhead, DefaultsAgreeAcrossEstimatorAndSimulator) {
  EXPECT_DOUBLE_EQ(LatencyOptions{}.recompute_overhead, 0.4);
  EXPECT_DOUBLE_EQ(runtime::ScheduleOptions{}.recompute_overhead, 0.4);
  EXPECT_DOUBLE_EQ(LatencyOptions{}.recompute_overhead,
                   runtime::ScheduleOptions{}.recompute_overhead);
}

TEST(RecomputeOverhead, ZooBackwardIsAboutTwiceForward) {
  // The 0.4-of-forward calibration equals 20%-of-backward only while the
  // calibrated profiles keep backward ~ 2x forward; pin that premise.
  for (const ModelProfile& m : model::AllBenchmarkModels()) {
    double fwd = 0.0, bwd = 0.0;
    for (int l = 0; l < m.num_layers(); ++l) {
      fwd += m.layer(l).forward_time;
      bwd += m.layer(l).backward_time;
    }
    EXPECT_NEAR(bwd / fwd, 2.0, 0.35) << m.name();
  }
}

TEST(RecomputeOverhead, SimulatedRecomputeAddsTwentyPercentOfBackward) {
  // Single stage, one device, free comm, no params: the iteration is
  // exactly M x (F + B) without recompute and M x (F + B + 0.4 F) with it.
  // With B = 2F the added time is 20% of the backward phase.
  const ModelProfile m = MakeUniformSynthetic(4, 0.010, 0.020, 0, 0);
  const Cluster cluster = FastCluster(1, 1);
  const ParallelPlan plan = SingleStagePlan(m);

  runtime::BuildOptions options;
  options.global_batch_size = 8;
  options.enforce_memory_capacity = false;
  auto makespan = [&](bool recompute) {
    runtime::BuildOptions o = options;
    o.schedule.recompute = recompute;
    const runtime::BuiltPipeline built =
        runtime::GraphBuilder(m, cluster, plan, o).Build();
    return sim::Engine::Run(built.graph, built.engine_options).makespan;
  };
  const TimeSec off = makespan(false);
  const TimeSec on = makespan(true);
  const TimeSec forward_total = 8 * 4 * 0.010;
  const TimeSec backward_total = 8 * 4 * 0.020;
  EXPECT_NEAR(on - off, 0.4 * forward_total, 1e-9);
  EXPECT_NEAR(on - off, 0.2 * backward_total, 1e-9);
}

TEST(RecomputeOverhead, EstimatorMatchesSimulatorUnderRecompute) {
  const ModelProfile m = MakeUniformSynthetic(4, 0.010, 0.020, 0, 0);
  const Cluster cluster = FastCluster(1, 1);
  const ParallelPlan plan = SingleStagePlan(m);

  LatencyOptions lo;
  lo.check_memory = false;
  lo.recompute = true;
  const PlanEstimate e = LatencyEstimator(m, cluster, lo).Estimate(plan, 8);

  runtime::BuildOptions o;
  o.global_batch_size = 8;
  o.enforce_memory_capacity = false;
  o.schedule.recompute = true;
  const runtime::BuiltPipeline built =
      runtime::GraphBuilder(m, cluster, plan, o).Build();
  const sim::SimResult r = sim::Engine::Run(built.graph, built.engine_options);
  EXPECT_NEAR(e.latency, r.makespan, 1e-9);
}

// ---------------------------------------------------------------------------
// Satellite 2: the OOM boundary is strict `peak > cap` everywhere — a plan
// whose peak lands exactly on the cap is feasible, one byte over is not.

TEST(MemoryCapBoundary, EstimatorFeasibleAtCapInfeasibleOneByteUnder) {
  const ModelProfile m = MakeUniformSynthetic(4, 0.010, 0.020, 1_MiB, 1'000'000);
  const Cluster cluster = FastCluster(1, 1);
  const ParallelPlan plan = SingleStagePlan(m);

  LatencyOptions lo;
  const Bytes peak = LatencyEstimator(m, cluster, lo).Estimate(plan, 8).max_peak_memory;
  ASSERT_GT(peak, 0u);

  auto estimate_at = [&](Bytes cap) {
    LatencyOptions capped = lo;
    capped.memory_cap = cap;
    return LatencyEstimator(m, cluster, capped).Estimate(plan, 8);
  };
  const PlanEstimate at_cap = estimate_at(peak);
  EXPECT_TRUE(at_cap.feasible);
  EXPECT_FALSE(at_cap.memory_limited);
  EXPECT_EQ(at_cap.memory_capacity, peak);

  const PlanEstimate under = estimate_at(peak - 1);
  EXPECT_FALSE(under.feasible);
  EXPECT_TRUE(under.memory_limited);
  EXPECT_NE(under.infeasible_reason.find("memory cap"), std::string::npos);

  EXPECT_TRUE(estimate_at(peak + 1).feasible);
}

TEST(MemoryCapBoundary, BuilderPoolsAndValidatorAgreeAtTheBoundary) {
  // GPipe is deliberately un-throttled, so the builder cannot dodge a too
  // tight cap by shrinking warmup depths: the simulated peak is what it is,
  // and the pool's strict `peak > capacity` boundary is observable.
  const ModelProfile m = MakeUniformSynthetic(4, 0.010, 0.020, 1_MiB, 1'000'000);
  const Cluster cluster = FastCluster(1, 1);
  const ParallelPlan plan = SingleStagePlan(m);

  runtime::BuildOptions base;
  base.global_batch_size = 8;
  base.schedule.kind = runtime::ScheduleKind::kGPipe;
  base.enforce_memory_capacity = false;
  const runtime::BuiltPipeline uncapped =
      runtime::GraphBuilder(m, cluster, plan, base).Build();
  const Bytes peak =
      sim::Engine::Run(uncapped.graph, uncapped.engine_options).MaxPeakMemory();
  ASSERT_GT(peak, 0u);

  auto run_at = [&](Bytes cap) {
    runtime::BuildOptions o = base;
    o.enforce_memory_capacity = true;
    o.memory_cap = cap;
    const runtime::BuiltPipeline built =
        runtime::GraphBuilder(m, cluster, plan, o).Build();
    for (Bytes capacity : built.engine_options.pool_capacities) {
      EXPECT_EQ(capacity, cap);
    }
    const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
    // The validator's oom-flag invariant re-derives the same strict
    // boundary from the recorded peaks; it must hold on both sides.
    check::ScheduleValidator validator(plan, o);
    EXPECT_TRUE(validator.Validate(built, result).ok()) << "cap=" << cap;
    return result.AnyOom();
  };
  EXPECT_FALSE(run_at(peak)) << "peak == cap must be feasible";
  EXPECT_TRUE(run_at(peak - 1)) << "one byte under the peak must OOM";
  EXPECT_FALSE(run_at(peak + 1));
}

// ---------------------------------------------------------------------------
// Tentpole: the DP search rejects placements over the cap, and the
// kAuto policy turns recompute on stage-by-stage until the plan fits.

TEST(MemoryCapPlanner, CapRejectsPlacementsAndStatsRecordIt) {
  const ModelProfile m = MakeUniformSynthetic(8, 0.010, 0.020, 8_MiB, 1'000'000);
  const Cluster cluster = FastCluster(1, 2);

  planner::PlannerOptions po;
  po.global_batch_size = 8;
  po.num_threads = 1;
  const planner::PlanResult uncapped = planner::DapplePlanner(m, cluster, po).Plan();
  const Bytes peak = uncapped.estimate.max_peak_memory;
  ASSERT_GT(peak, 0u);
  EXPECT_EQ(uncapped.stats.memory_cap, 0u);

  po.memory_cap = peak;
  const planner::PlanResult capped = planner::DapplePlanner(m, cluster, po).Plan();
  EXPECT_EQ(capped.stats.memory_cap, peak);
  EXPECT_LE(capped.estimate.max_peak_memory, peak);
  EXPECT_TRUE(capped.estimate.feasible);
}

TEST(MemoryCapPlanner, InfeasibleCapThrowsInsteadOfEmittingAnOomPlan) {
  const ModelProfile m = MakeUniformSynthetic(8, 0.010, 0.020, 8_MiB, 1'000'000);
  const Cluster cluster = FastCluster(1, 2);
  planner::PlannerOptions po;
  po.global_batch_size = 8;
  po.num_threads = 1;
  po.memory_cap = 1;  // one byte: nothing can fit
  EXPECT_THROW(planner::DapplePlanner(m, cluster, po).Plan(), Error);
  po.recompute = planner::RecomputePolicy::kAuto;
  EXPECT_THROW(planner::DapplePlanner(m, cluster, po).Plan(), Error);
}

TEST(MemoryCapPlanner, AutoRecomputeFitsWherePlainPlanningCannot) {
  // Large activations, small weights, ONE device: the only placement is a
  // single stage, so the search cannot dodge the cap with a different
  // split — a cap between the checkpointed and the full peak cleanly
  // separates the two policies.
  const ModelProfile m = MakeUniformSynthetic(8, 0.010, 0.020, 32_MiB, 1'000);
  const Cluster cluster = FastCluster(1, 1);

  planner::PlannerOptions po;
  po.global_batch_size = 8;
  po.num_threads = 1;
  po.latency.check_memory = false;
  const Bytes uncapped_peak =
      planner::DapplePlanner(m, cluster, po).Plan().estimate.max_peak_memory;

  planner::PlannerOptions all = po;
  all.latency.check_memory = true;
  all.recompute = planner::RecomputePolicy::kAll;
  const Bytes recompute_peak =
      planner::DapplePlanner(m, cluster, all).Plan().estimate.max_peak_memory;
  ASSERT_LT(recompute_peak, uncapped_peak);

  const Bytes cap = (recompute_peak + uncapped_peak) / 2;
  planner::PlannerOptions plain = po;
  plain.latency.check_memory = true;
  plain.memory_cap = cap;
  EXPECT_THROW(planner::DapplePlanner(m, cluster, plain).Plan(), Error);

  planner::PlannerOptions fit = plain;
  fit.recompute = planner::RecomputePolicy::kAuto;
  const planner::PlanResult result = planner::DapplePlanner(m, cluster, fit).Plan();
  EXPECT_LE(result.estimate.max_peak_memory, cap);
  int flagged = 0;
  for (const StagePlan& s : result.plan.stages) flagged += s.recompute ? 1 : 0;
  EXPECT_GT(flagged, 0) << "the fit search must have turned recompute on somewhere";
  EXPECT_EQ(result.stats.recompute_stages, flagged);
  EXPECT_GT(result.stats.fit_probes, 0);
}

TEST(MemoryCapPlanner, AutoWithoutPressureLeavesRecomputeOff) {
  const ModelProfile m = MakeUniformSynthetic(8, 0.010, 0.020, 1_MiB, 1'000);
  const Cluster cluster = FastCluster(1, 2);
  planner::PlannerOptions po;
  po.global_batch_size = 8;
  po.num_threads = 1;
  po.recompute = planner::RecomputePolicy::kAuto;
  const planner::PlanResult result = planner::DapplePlanner(m, cluster, po).Plan();
  for (const StagePlan& s : result.plan.stages) EXPECT_FALSE(s.recompute);
  EXPECT_EQ(result.stats.recompute_stages, 0);
}

TEST(MemoryCapPlanner, PerStageFlagsMatchGlobalRecomputeInTheEstimator) {
  // A plan with every stage flagged must cost exactly what the global
  // recompute switch costs — same comp model, same peak model.
  const ModelProfile m = MakeUniformSynthetic(8, 0.010, 0.020, 4_MiB, 1'000'000);
  const Cluster cluster = FastCluster(1, 2);
  const ParallelPlan plain = TwoStagePlan(m);
  ParallelPlan flagged = plain;
  for (StagePlan& s : flagged.stages) s.recompute = true;

  LatencyOptions global;
  global.check_memory = false;
  global.recompute = true;
  LatencyOptions per_stage;
  per_stage.check_memory = false;
  const PlanEstimate a = LatencyEstimator(m, cluster, global).Estimate(plain, 8);
  const PlanEstimate b = LatencyEstimator(m, cluster, per_stage).Estimate(flagged, 8);
  EXPECT_DOUBLE_EQ(a.latency, b.latency);
  EXPECT_EQ(a.max_peak_memory, b.max_peak_memory);
}

TEST(MemoryCapPlanner, BuilderHonorsPerStageFlags) {
  const ModelProfile m = MakeUniformSynthetic(4, 0.010, 0.020, 1_MiB, 0);
  const Cluster cluster = FastCluster(1, 2);
  ParallelPlan plan = TwoStagePlan(m);
  plan.stages[1].recompute = true;

  runtime::BuildOptions o;
  o.global_batch_size = 8;
  o.enforce_memory_capacity = false;
  const runtime::BuiltPipeline built =
      runtime::GraphBuilder(m, cluster, plan, o).Build();
  ASSERT_EQ(built.stage_recompute.size(), 2u);
  EXPECT_EQ(built.stage_recompute[0], 0);
  EXPECT_EQ(built.stage_recompute[1], 1);
}

TEST(MemoryCapPlanner, PlanIoRoundTripsRecomputeFlags) {
  const ModelProfile m = MakeUniformSynthetic(4, 0.010, 0.020, 1_MiB, 0);
  ParallelPlan plan = TwoStagePlan(m);
  plan.stages[1].recompute = true;
  const ParallelPlan parsed = planner::ParsePlan(planner::SerializePlan(plan));
  ASSERT_EQ(parsed.stages.size(), 2u);
  EXPECT_FALSE(parsed.stages[0].recompute);
  EXPECT_TRUE(parsed.stages[1].recompute);
  EXPECT_EQ(planner::SerializePlan(parsed), planner::SerializePlan(plan));
}

TEST(MemoryCapPlanner, RecomputePolicyParsesAndRejects) {
  EXPECT_EQ(planner::ParseRecomputePolicy("off"), planner::RecomputePolicy::kOff);
  EXPECT_EQ(planner::ParseRecomputePolicy("all"), planner::RecomputePolicy::kAll);
  EXPECT_EQ(planner::ParseRecomputePolicy("on"), planner::RecomputePolicy::kAll);
  EXPECT_EQ(planner::ParseRecomputePolicy("auto"), planner::RecomputePolicy::kAuto);
  EXPECT_EQ(planner::ParseRecomputePolicy("AUTO"), planner::RecomputePolicy::kAuto);
  EXPECT_THROW(planner::ParseRecomputePolicy("sometimes"), Error);
}

// ---------------------------------------------------------------------------
// ParseBytes: the CLI's cap argument.

TEST(ParseBytes, AcceptsPlainAndSuffixedSizes) {
  EXPECT_EQ(ParseBytes("123"), 123u);
  EXPECT_EQ(ParseBytes("512KiB"), 512u * 1024u);
  EXPECT_EQ(ParseBytes("512K"), 512u * 1024u);
  EXPECT_EQ(ParseBytes("2MiB"), 2_MiB);
  EXPECT_EQ(ParseBytes("2mb"), 2_MiB);
  EXPECT_EQ(ParseBytes("1.5GiB"), 1_GiB + 512_MiB);
  EXPECT_EQ(ParseBytes("2TiB"), 2048_GiB);
  EXPECT_EQ(ParseBytes("0"), 0u);
}

TEST(ParseBytes, RejectsMalformedInput) {
  EXPECT_THROW(ParseBytes(""), Error);
  EXPECT_THROW(ParseBytes("lots"), Error);
  EXPECT_THROW(ParseBytes("-1GiB"), Error);
  EXPECT_THROW(ParseBytes("12XiB"), Error);
}

}  // namespace
}  // namespace dapple
