#include "obs/report.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "common/table.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "runtime/schedule.h"
#include "sim/batch.h"
#include "sim/soa.h"

namespace dapple::obs {

namespace {

std::string LinkName(const runtime::ResourceLayout& layout, int resource,
                     const sim::Task& sample) {
  if (sample.kind == sim::TaskKind::kAllReduce) {
    return "ar s" + std::to_string(sample.stage);
  }
  const int boundary = sample.stage;
  if (resource == layout.BackwardChannel(boundary)) {
    return "txb s" + std::to_string(boundary + 1) + "->s" + std::to_string(boundary);
  }
  return "txf s" + std::to_string(boundary) + "->s" + std::to_string(boundary + 1);
}

}  // namespace

IterationReport BuildIterationReport(const runtime::BuiltPipeline& pipeline,
                                     const sim::SimResult& result) {
  const sim::TaskGraph& graph = pipeline.graph;
  const runtime::ResourceLayout layout = pipeline.layout();
  IterationReport report;
  report.makespan = result.makespan;
  report.schedule = runtime::ToString(pipeline.options.schedule.kind);
  report.replication = runtime::ToString(pipeline.options.replication);
  report.recompute = pipeline.options.schedule.recompute;
  for (std::uint8_t rc : pipeline.stage_recompute) report.recompute_stages += rc ? 1 : 0;
  report.memory_cap = pipeline.options.memory_cap;
  report.micro_batch_size = pipeline.micro_batch_size;
  report.num_micro_batches = pipeline.num_micro_batches;
  report.num_stages = static_cast<int>(pipeline.warmup_depths.size());
  if (report.makespan > 0.0) {
    report.throughput = static_cast<double>(pipeline.micro_batch_size) *
                        pipeline.num_micro_batches / report.makespan;
  }

  // --- Pass over the records: per-device, per-stage, per-link, phases ----
  std::map<int, DeviceReport> devices;           // device id -> report
  std::map<int, StageReport> stages;             // stage -> report
  std::map<sim::ResourceId, LinkReport> links;   // comm resource -> report
  TimeSec first_backward = std::numeric_limits<TimeSec>::infinity();
  TimeSec last_forward = 0.0;

  for (const sim::TaskRecord& rec : result.records) {
    if (!rec.executed || rec.id == sim::kInvalidTask) continue;
    const sim::Task& task = graph.task(rec.id);
    const TimeSec duration = rec.end - rec.start;

    if (sim::IsComputeKind(task.kind) && task.device >= 0) {
      DeviceReport& dev = devices[task.device];
      dev.device = task.device;
      if (task.stage >= 0) dev.stage = task.stage;
      switch (task.kind) {
        case sim::TaskKind::kForward:
        case sim::TaskKind::kRecompute:
          dev.forward_busy += duration;
          last_forward = std::max(last_forward, rec.end);
          break;
        case sim::TaskKind::kBackward:
          dev.backward_busy += duration;
          first_backward = std::min(first_backward, rec.start);
          break;
        // 2BP weight halves count as backward work, but the warmup phase
        // boundary keys off the backward-input halves (kBackward) only.
        case sim::TaskKind::kBackwardWeight:
          dev.backward_busy += duration;
          break;
        case sim::TaskKind::kApply: dev.apply_busy += duration; break;
        default: break;
      }
      report.split.compute += task.kind == sim::TaskKind::kApply ? 0.0 : duration;
      if (task.kind == sim::TaskKind::kApply) report.split.apply += duration;
      if (task.stage >= 0) {
        StageReport& stage = stages[task.stage];
        stage.stage = task.stage;
        if (std::find(stage.devices.begin(), stage.devices.end(), task.device) ==
            stage.devices.end()) {
          stage.devices.push_back(task.device);
        }
        if (task.kind == sim::TaskKind::kForward) stage.forward_busy += duration;
        if (task.kind == sim::TaskKind::kBackward ||
            task.kind == sim::TaskKind::kBackwardWeight) {
          stage.backward_busy += duration;
        }
      }
    } else if (task.kind == sim::TaskKind::kTransfer ||
               task.kind == sim::TaskKind::kAllReduce) {
      LinkReport& link = links[task.resource];
      if (link.resource < 0) {
        link.resource = task.resource;
        link.name = LinkName(layout, task.resource, task);
      }
      link.transfers += 1;
      link.busy += duration;
      link.bytes += task.bytes;
      if (task.kind == sim::TaskKind::kTransfer) {
        report.split.transfer += duration;
        const bool backward = task.resource == layout.BackwardChannel(task.stage);
        if (!backward && task.stage >= 0) {
          stages[task.stage].outbound_transfer += duration;
          stages[task.stage + 1].inbound_transfer += duration;
        }
      } else {
        report.split.allreduce += duration;
        if (task.stage >= 0) stages[task.stage].allreduce += duration;
      }
    }
  }

  // --- Phase boundaries (Fig. 4): warmup | steady | drain ----------------
  report.phases.warmup_end =
      std::isfinite(first_backward) ? first_backward : report.makespan;
  report.phases.steady_end = std::max(report.phases.warmup_end, last_forward);
  report.phases.warmup = report.phases.warmup_end;
  report.phases.steady = report.phases.steady_end - report.phases.warmup_end;
  report.phases.drain = report.makespan - report.phases.steady_end;

  // --- Per-device rollups ------------------------------------------------
  double bubble_sum = 0.0;
  for (auto& [id, dev] : devices) {
    const auto& usage = result.resources.at(static_cast<std::size_t>(id));
    dev.compute_busy = usage.compute_busy;
    dev.first_start = usage.first_start;
    dev.last_end = usage.last_end;
    dev.tasks_executed = usage.tasks_executed;
    dev.utilization = result.ComputeUtilization(id);
    dev.bubble_ratio = 1.0 - dev.utilization;
    if (static_cast<std::size_t>(id) < result.pools.size()) {
      const sim::MemoryPool& pool = result.pools[static_cast<std::size_t>(id)];
      dev.peak_memory = pool.peak();
      dev.baseline_memory = pool.baseline();
      dev.oom = pool.oom();
      report.max_peak_memory = std::max(report.max_peak_memory, dev.peak_memory);
      report.oom = report.oom || dev.oom;
    }
    bubble_sum += dev.bubble_ratio;
    report.devices.push_back(dev);
  }
  report.num_devices = static_cast<int>(report.devices.size());
  if (report.num_devices > 0) {
    report.bubble_fraction = bubble_sum / report.num_devices;
  }

  // --- Per-stage rollups -------------------------------------------------
  for (auto& [s, stage] : stages) {
    std::sort(stage.devices.begin(), stage.devices.end());
    const int replicas = std::max<int>(1, static_cast<int>(stage.devices.size()));
    stage.forward_busy /= replicas;
    stage.backward_busy /= replicas;
    if (s < static_cast<int>(pipeline.warmup_depths.size())) {
      stage.warmup_depth = pipeline.warmup_depths[static_cast<std::size_t>(s)];
    }
    double util = 0.0;
    for (int d : stage.devices) {
      util += result.ComputeUtilization(d);
      if (static_cast<std::size_t>(d) < result.pools.size()) {
        stage.peak_memory = std::max(stage.peak_memory,
                                     result.pools[static_cast<std::size_t>(d)].peak());
      }
    }
    stage.utilization = util / replicas;
    stage.bubble_ratio = 1.0 - stage.utilization;
    report.stages.push_back(stage);
  }

  for (auto& [r, link] : links) {
    link.occupancy = report.makespan > 0.0 ? link.busy / report.makespan : 0.0;
    report.links.push_back(link);
  }

  // --- Memory pools ------------------------------------------------------
  for (std::size_t p = 0; p < result.pools.size(); ++p) {
    const sim::MemoryPool& pool = result.pools[p];
    if (pool.peak() == 0 && pool.baseline() == 0) continue;
    PoolReport pr;
    pr.pool = static_cast<int>(p);
    pr.peak = pool.peak();
    pr.baseline = pool.baseline();
    pr.capacity = pool.capacity();
    pr.oom = pool.oom();
    pr.peak_time = pool.peak_time();
    report.pools.push_back(pr);
  }
  return report;
}

void WriteJson(JsonWriter& w, const IterationReport& r) {
  w.BeginObject();
  w.Field("makespan", r.makespan);
  w.Field("schedule", r.schedule);
  w.Field("replication", r.replication);
  w.Field("recompute", r.recompute);
  // Cap/per-stage-recompute fields only when in play, so reports of
  // uncapped pipelines (including the goldens) are byte-identical to
  // before these knobs existed.
  if (r.memory_cap > 0 || r.recompute_stages > 0) {
    w.Field("memory_cap", r.memory_cap);
    w.Field("recompute_stages", r.recompute_stages);
  }
  w.Field("micro_batch_size", r.micro_batch_size);
  w.Field("num_micro_batches", r.num_micro_batches);
  w.Field("num_stages", r.num_stages);
  w.Field("num_devices", r.num_devices);
  w.Field("bubble_fraction", r.bubble_fraction);
  w.Field("throughput", r.throughput);
  w.Field("max_peak_memory", r.max_peak_memory);
  w.Field("oom", r.oom);

  w.Key("time_split").BeginObject();
  w.Field("compute", r.split.compute);
  w.Field("apply", r.split.apply);
  w.Field("transfer", r.split.transfer);
  w.Field("allreduce", r.split.allreduce);
  w.EndObject();

  w.Key("phases").BeginObject();
  w.Field("warmup_end", r.phases.warmup_end);
  w.Field("steady_end", r.phases.steady_end);
  w.Field("warmup", r.phases.warmup);
  w.Field("steady", r.phases.steady);
  w.Field("drain", r.phases.drain);
  w.EndObject();

  w.Key("devices").BeginArray();
  for (const DeviceReport& d : r.devices) {
    w.BeginObject();
    w.Field("device", d.device);
    w.Field("stage", d.stage);
    w.Field("forward_busy", d.forward_busy);
    w.Field("backward_busy", d.backward_busy);
    w.Field("apply_busy", d.apply_busy);
    w.Field("compute_busy", d.compute_busy);
    w.Field("utilization", d.utilization);
    w.Field("bubble_ratio", d.bubble_ratio);
    w.Field("first_start", d.first_start);
    w.Field("last_end", d.last_end);
    w.Field("tasks_executed", d.tasks_executed);
    w.Field("peak_memory", d.peak_memory);
    w.Field("baseline_memory", d.baseline_memory);
    w.Field("oom", d.oom);
    w.EndObject();
  }
  w.EndArray();

  w.Key("stages").BeginArray();
  for (const StageReport& s : r.stages) {
    w.BeginObject();
    w.Field("stage", s.stage);
    w.Key("devices").BeginArray();
    for (int d : s.devices) w.Value(d);
    w.EndArray();
    w.Field("warmup_depth", s.warmup_depth);
    w.Field("forward_busy", s.forward_busy);
    w.Field("backward_busy", s.backward_busy);
    w.Field("allreduce", s.allreduce);
    w.Field("inbound_transfer", s.inbound_transfer);
    w.Field("outbound_transfer", s.outbound_transfer);
    w.Field("utilization", s.utilization);
    w.Field("bubble_ratio", s.bubble_ratio);
    w.Field("peak_memory", s.peak_memory);
    w.EndObject();
  }
  w.EndArray();

  w.Key("links").BeginArray();
  for (const LinkReport& l : r.links) {
    w.BeginObject();
    w.Field("resource", l.resource);
    w.Field("name", l.name);
    w.Field("transfers", l.transfers);
    w.Field("busy", l.busy);
    w.Field("bytes", l.bytes);
    w.Field("occupancy", l.occupancy);
    w.EndObject();
  }
  w.EndArray();

  w.Key("pools").BeginArray();
  for (const PoolReport& p : r.pools) {
    w.BeginObject();
    w.Field("pool", p.pool);
    w.Field("peak", p.peak);
    w.Field("baseline", p.baseline);
    w.Field("capacity", p.capacity);
    w.Field("peak_time", p.peak_time);
    w.Field("oom", p.oom);
    w.EndObject();
  }
  w.EndArray();

  // Emitted only when explicitly attached so fixed-plan reports (and their
  // goldens) are unaffected. wall_seconds is wall-clock — fine for bench
  // blobs, never golden-compared.
  if (r.has_planner_stats) {
    const planner::PlannerSearchStats& ps = r.planner_stats;
    w.Key("planner").BeginObject();
    w.Field("threads", ps.threads);
    w.Field("levels", ps.levels);
    w.Field("subproblems", ps.subproblems);
    w.Field("candidates_evaluated", ps.candidates_evaluated);
    w.Field("candidates_pruned", ps.candidates_pruned);
    w.Field("cache_hits", ps.cache_hits);
    w.Field("cache_misses", ps.cache_misses);
    w.Field("cache_entries", ps.cache_entries);
    w.Field("cache_hit_rate", ps.cache_hit_rate());
    w.Field("cache_compute_seconds", ps.cache_compute_seconds);
    if (ps.memory_cap > 0) {
      w.Field("memory_cap", ps.memory_cap);
      w.Field("memory_rejected", ps.memory_rejected);
      w.Field("recompute_stages", ps.recompute_stages);
      w.Field("fit_probes", ps.fit_probes);
    }
    w.Field("wall_seconds", ps.wall_seconds);
    w.Key("shards").BeginArray();
    for (const CacheShardStats& shard : ps.shards) {
      w.BeginObject();
      w.Field("hits", shard.hits);
      w.Field("misses", shard.misses);
      w.Field("entries", shard.entries);
      w.Field("compute_seconds", shard.compute_seconds);
      w.Field("evictions", shard.evictions);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }

  w.EndObject();
}

std::string ToJson(const IterationReport& r) {
  JsonWriter w;
  WriteJson(w, r);
  return w.str();
}

std::string ToText(const IterationReport& r) {
  std::ostringstream os;
  os << "iteration: " << FormatTime(r.makespan) << " | " << r.schedule << "/"
     << r.replication << (r.recompute ? "/recompute" : "") << " | M=" << r.num_micro_batches
     << " x mbs=" << r.micro_batch_size << " | " << r.num_stages << " stages on "
     << r.num_devices << " devices\n";
  if (r.memory_cap > 0 || r.recompute_stages > 0) {
    os << "memory cap " << (r.memory_cap > 0 ? FormatBytes(r.memory_cap) : "none")
       << " | " << r.recompute_stages << "/" << r.num_stages
       << " stages recompute\n";
  }
  os << "bubble fraction " << AsciiTable::Num(100 * r.bubble_fraction, 1) << "% | throughput "
     << AsciiTable::Num(r.throughput, 2) << " samples/s | peak "
     << FormatBytes(r.max_peak_memory) << (r.oom ? " (OOM!)" : "") << "\n";
  os << "phases: warmup " << FormatTime(r.phases.warmup) << " | steady "
     << FormatTime(r.phases.steady) << " | drain " << FormatTime(r.phases.drain) << "\n";
  os << "busy split: compute " << FormatTime(r.split.compute) << " | transfer "
     << FormatTime(r.split.transfer) << " | allreduce " << FormatTime(r.split.allreduce)
     << " | apply " << FormatTime(r.split.apply) << "\n";

  AsciiTable devices({"Device", "Stage", "FW busy", "BW busy", "Util", "Bubble", "Peak mem"});
  for (const DeviceReport& d : r.devices) {
    devices.AddRow({AsciiTable::Int(d.device), AsciiTable::Int(d.stage),
                    FormatTime(d.forward_busy), FormatTime(d.backward_busy),
                    AsciiTable::Num(100 * d.utilization, 1) + "%",
                    AsciiTable::Num(100 * d.bubble_ratio, 1) + "%",
                    FormatBytes(d.peak_memory) + (d.oom ? "!" : "")});
  }
  os << devices.ToString();

  AsciiTable stages({"Stage", "Devices", "K", "FW", "BW", "AllReduce", "TX in", "TX out",
                     "Bubble"});
  for (const StageReport& s : r.stages) {
    std::string devs;
    for (std::size_t i = 0; i < s.devices.size(); ++i) {
      devs += (i > 0 ? "," : "") + std::to_string(s.devices[i]);
    }
    stages.AddRow({AsciiTable::Int(s.stage), devs, AsciiTable::Int(s.warmup_depth),
                   FormatTime(s.forward_busy), FormatTime(s.backward_busy),
                   FormatTime(s.allreduce), FormatTime(s.inbound_transfer),
                   FormatTime(s.outbound_transfer),
                   AsciiTable::Num(100 * s.bubble_ratio, 1) + "%"});
  }
  os << stages.ToString();

  if (!r.links.empty()) {
    AsciiTable links({"Link", "Transfers", "Busy", "Bytes", "Occupancy"});
    for (const LinkReport& l : r.links) {
      links.AddRow({l.name, AsciiTable::Int(l.transfers), FormatTime(l.busy),
                    FormatBytes(l.bytes), AsciiTable::Num(100 * l.occupancy, 1) + "%"});
    }
    os << links.ToString();
  }
  return os.str();
}

std::vector<PeakVsMPoint> PeakVsMCurve(const model::ModelProfile& model,
                                       const topo::Cluster& cluster,
                                       const planner::ParallelPlan& plan,
                                       runtime::BuildOptions options,
                                       const std::vector<int>& micro_batch_counts,
                                       const PeakVsMOptions& curve_options) {
  // Resolve the micro-batch size once so every point runs identical
  // per-micro-batch work and only M varies.
  const runtime::BuiltPipeline base =
      runtime::GraphBuilder(model, cluster, plan, options).Build();
  options.micro_batch_size = base.micro_batch_size;

  std::vector<int> counts;
  counts.reserve(micro_batch_counts.size());
  for (int m : micro_batch_counts) {
    if (m >= 1) counts.push_back(m);
  }
  const int n = static_cast<int>(counts.size());

  // Every point is built (cheap, and the build is what knows the exact
  // per-stage warmup depths); slot-indexed results keep the curve
  // byte-identical to the serial loop at every thread count.
  sim::BatchRunner runner({.threads = curve_options.sim_threads});
  std::vector<runtime::BuiltPipeline> builds =
      runner.Map<runtime::BuiltPipeline>(n, [&](int i) {
        runtime::BuildOptions point_options = options;
        point_options.global_batch_size =
            static_cast<long>(base.micro_batch_size) *
            counts[static_cast<std::size_t>(i)];
        return runtime::GraphBuilder(model, cluster, plan, point_options).Build();
      });

  // The simulation pre-filter: a point whose stash discipline — per-stage
  // warmup depths plus recompute flags at the fixed micro-batch size —
  // matches an earlier point holds exactly the same stash sets, so its peak
  // equals the earlier point's and the simulation is provably redundant.
  // DAPPLE saturates warmup at M >= S - i and collapses to one simulation;
  // GPipe's depth is M itself, so nothing ever dedups. Points are grouped
  // in curve order, making the representative choice deterministic.
  std::vector<int> rep_of(static_cast<std::size_t>(n));
  std::vector<int> reps;
  reps.reserve(static_cast<std::size_t>(n));
  if (curve_options.prefilter) {
    std::map<std::pair<std::vector<int>, std::vector<std::uint8_t>>, int> seen;
    for (int i = 0; i < n; ++i) {
      const runtime::BuiltPipeline& b = builds[static_cast<std::size_t>(i)];
      if (b.warmup_depths.empty()) {
        // No discipline signature — never dedup such a point.
        rep_of[static_cast<std::size_t>(i)] = i;
        reps.push_back(i);
        continue;
      }
      const auto [it, inserted] =
          seen.try_emplace({b.warmup_depths, b.stage_recompute}, i);
      rep_of[static_cast<std::size_t>(i)] = it->second;
      if (inserted) reps.push_back(i);
    }
  } else {
    for (int i = 0; i < n; ++i) {
      rep_of[static_cast<std::size_t>(i)] = i;
      reps.push_back(i);
    }
  }

  const std::vector<Bytes> peaks =
      runner.Map<Bytes>(static_cast<int>(reps.size()), [&](int r) {
        const runtime::BuiltPipeline& b =
            builds[static_cast<std::size_t>(reps[static_cast<std::size_t>(r)])];
        return sim::SoaEngine::Run(b.graph, b.engine_options).MaxPeakMemory();
      });
  std::vector<Bytes> peak_of(static_cast<std::size_t>(n));
  for (std::size_t r = 0; r < reps.size(); ++r) {
    peak_of[static_cast<std::size_t>(reps[r])] = peaks[r];
  }

  auto& metrics = MetricsRegistry::Global();
  metrics.counter("prefilter.peak_vs_m.simulated")
      .Increment(static_cast<std::int64_t>(reps.size()));
  metrics.counter("prefilter.peak_vs_m.skipped")
      .Increment(static_cast<std::int64_t>(n) - static_cast<std::int64_t>(reps.size()));

  std::vector<PeakVsMPoint> curve;
  curve.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    curve.push_back(PeakVsMPoint{
        builds[static_cast<std::size_t>(i)].num_micro_batches,
        peak_of[static_cast<std::size_t>(rep_of[static_cast<std::size_t>(i)])]});
  }
  return curve;
}

std::vector<PeakVsMPoint> PeakVsMCurve(const model::ModelProfile& model,
                                       const topo::Cluster& cluster,
                                       const planner::ParallelPlan& plan,
                                       runtime::BuildOptions options,
                                       const std::vector<int>& micro_batch_counts,
                                       int sim_threads) {
  return PeakVsMCurve(model, cluster, plan, std::move(options), micro_batch_counts,
                      PeakVsMOptions{.sim_threads = sim_threads});
}

}  // namespace dapple::obs
