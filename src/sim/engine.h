// Deterministic discrete-event engine. Executes a TaskGraph over a set of
// serial resources (device compute engines, network channels):
//
//  - a task becomes ready when all its predecessors have completed;
//  - each resource runs at most one task at a time;
//  - among ready tasks queued on one resource, the engine picks the lowest
//    (priority, id) pair;
//  - simultaneous completions drain in (time, priority, id) order — the
//    completing task's priority, then its id as the final key. The key is
//    part of the engine's contract (pinned by sim_engine_test and the
//    determinism sweep), not an artifact of container iteration order:
//    which completion is processed first decides which successors reach
//    their resource's ready queue before the next dispatch.
//  - task memory effects are applied to per-device pools at start/end.
//
// Together the two explicit keys make every simulation exactly
// reproducible — byte-identical traces, reports and memory high-water
// marks on every host and at every sim::BatchRunner thread count.
//
// This is the substitute for the paper's GPU testbed: schedule shape,
// bubbles, overlap and peak memory all emerge from the same dependency
// structure the real runtime has.
#pragma once

#include <vector>

#include "sim/graph.h"
#include "sim/memory.h"

namespace dapple::sim {

/// Execution interval of one task.
struct TaskRecord {
  TaskId id = kInvalidTask;
  TimeSec start = 0.0;
  TimeSec end = 0.0;
  bool executed = false;
  /// True once the task occupied its resource; a started-but-not-executed
  /// task was pinned by a zero-speed window (fail-stop fault) forever.
  bool started = false;
};

/// One breakpoint of a piecewise-constant resource speed function: the
/// resource runs at `speed` from `start` until the next segment (or
/// forever). Speed 0 models a fail-stop crash: work in flight makes no
/// further progress.
struct SpeedSegment {
  TimeSec start = 0.0;
  double speed = 1.0;
};

/// Time-varying speed of one resource. Before the first segment the
/// resource runs at 1.0 — task durations are "work" at unit speed, so a
/// fault-free profile reproduces the fixed-duration engine exactly.
struct ResourceSpeedProfile {
  ResourceId resource = 0;
  std::vector<SpeedSegment> segments;  // sorted by start, strictly increasing
};

/// Wall-clock completion time of `work` units started at `start` under the
/// profile: integrates speed over time segment by segment, so a task
/// spanning a fault-window boundary is re-costed piecewise. Returns
/// +infinity when a trailing zero-speed segment pins the remaining work
/// forever.
TimeSec FinishTime(const ResourceSpeedProfile& profile, TimeSec start, TimeSec work);

/// Aggregate occupancy of one resource.
struct ResourceUsage {
  TimeSec busy = 0.0;           // sum of task durations
  TimeSec compute_busy = 0.0;   // busy time of compute-kind tasks only
  TimeSec first_start = 0.0;
  TimeSec last_end = 0.0;
  int tasks_executed = 0;
};

struct SimResult {
  TimeSec makespan = 0.0;
  std::vector<TaskRecord> records;      // indexed by TaskId
  std::vector<ResourceUsage> resources; // indexed by ResourceId
  std::vector<MemoryPool> pools;        // indexed by PoolId

  /// False when the run stalled: some tasks could never finish (a
  /// zero-speed resource pinned them, or their predecessors were pinned).
  /// Only possible with EngineOptions::allow_incomplete.
  bool completed = true;
  /// Number of tasks that never completed (0 when completed).
  int tasks_unfinished = 0;

  /// Fraction of the makespan a resource spent executing tasks.
  double Utilization(ResourceId r) const;

  /// Fraction of the makespan spent on compute kinds (FW/BW/RC/Apply);
  /// 1 - ComputeUtilization is the bubble-plus-comm fraction.
  double ComputeUtilization(ResourceId r) const;

  /// Largest peak across pools.
  Bytes MaxPeakMemory() const;

  /// True if any pool exceeded its capacity.
  bool AnyOom() const;
};

struct EngineOptions {
  /// Pool capacities (0 = unlimited), indexed by PoolId. Missing entries
  /// default to unlimited.
  std::vector<Bytes> pool_capacities;
  /// Always-resident bytes per pool (weights + optimizer state).
  std::vector<Bytes> pool_baselines;
  /// Piecewise-constant speed multipliers per resource (fault windows,
  /// degraded links). Resources without a profile run at 1.0 and keep the
  /// fixed-duration fast path bit-for-bit.
  std::vector<ResourceSpeedProfile> resource_speeds;
  /// Return a partial SimResult (completed = false) instead of throwing
  /// when some tasks can never finish — the fail-stop fault case, where a
  /// crashed device pins its tasks while independent work drains normally.
  bool allow_incomplete = false;
};

/// Discrete-event engine with a per-instance arena: the ready queues (one
/// indexed binary min-heap per resource, keyed (priority, id)), the
/// completion heap (keyed (time, priority, id)) and every bookkeeping
/// vector are owned by the Engine and reused across Simulate() calls, so a
/// run performs no per-event heap allocation after the first simulation of
/// a given shape warms the arena. (The returned SimResult still allocates
/// its records/pools — per run, not per event.)
class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Runs the graph to completion on this engine's arena. Throws
  /// dapple::Error on dependency cycles (some tasks can never become
  /// ready).
  SimResult Simulate(const TaskGraph& graph, const EngineOptions& options = {});

  /// Convenience entry point: simulates on a thread-local Engine, so every
  /// thread — each sim::BatchRunner worker in particular — keeps its own
  /// warmed arena and concurrent runs never share mutable state.
  static SimResult Run(const TaskGraph& graph, EngineOptions options = {});

 private:
  /// Heap entry for both queues; `time` is unused (0) in ready heaps.
  struct Event {
    TimeSec time = 0.0;
    int priority = 0;
    TaskId task = kInvalidTask;
  };

  // Arena, reused across Simulate() calls. Inner ready heaps are cleared,
  // never deallocated, so steady-state runs reuse their capacity.
  std::vector<int> pending_;
  std::vector<const ResourceSpeedProfile*> profile_of_;
  std::vector<std::vector<Event>> ready_;  // binary min-heap per resource
  std::vector<TaskId> running_;
  std::vector<Event> completions_;  // binary min-heap
  std::vector<ResourceId> wake_;
};

/// The pre-arena engine (ordered-set ready queues, std::priority_queue
/// completion events), kept as the differential oracle: the determinism
/// sweep and bench_sim_engine run it against Engine and require
/// byte-identical results. Same (time, priority, id) completion contract;
/// allocation-heavy, so use Engine everywhere else.
SimResult RunReferenceEngine(const TaskGraph& graph, const EngineOptions& options = {});

namespace internal {

/// Scaffolding shared by all three engines (reference, arena, SoA) so their
/// results stay byte-identical by construction, not by parallel maintenance.

/// Pool count: the graph's pools widened by any capacity/baseline entries.
int NumPools(int graph_pools, const EngineOptions& options);

/// Prepares the SimResult shell (records, usage slots, pools with
/// capacities/baselines applied).
SimResult MakeResultShell(int num_tasks, const EngineOptions& options,
                          int num_resources, int num_pools);

/// Validates speed profiles and maps them onto resources (nullptr = fixed
/// unit speed, the exact legacy arithmetic).
void IndexProfiles(const EngineOptions& options, int num_resources,
                   std::vector<const ResourceSpeedProfile*>& profile_of);

/// Diagnostic for a graph that can never complete (dependency cycle).
[[noreturn]] void ThrowDeadlock(const TaskGraph& graph, const SimResult& result,
                                int executed);

}  // namespace internal

}  // namespace dapple::sim
