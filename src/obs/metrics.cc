#include "obs/metrics.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "obs/json.h"

namespace dapple::obs {

void Histogram::Observe(double v) {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) w.Field(name, c->value());
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) w.Field(name, g->value());
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name).BeginObject();
    w.Field("count", h->count());
    w.Field("sum", h->sum());
    w.Field("min", h->min());
    w.Field("max", h->max());
    w.Field("mean", h->mean());
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t width = 0;
  for (const auto& [name, c] : counters_) width = std::max(width, name.size());
  for (const auto& [name, g] : gauges_) width = std::max(width, name.size());
  for (const auto& [name, h] : histograms_) width = std::max(width, name.size());

  std::ostringstream os;
  auto pad = [&](const std::string& name) {
    os << "  " << name << std::string(width - name.size() + 2, ' ');
  };
  for (const auto& [name, c] : counters_) {
    pad(name);
    os << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    pad(name);
    os << JsonWriter::Number(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    pad(name);
    os << "n=" << h->count() << " sum=" << JsonWriter::Number(h->sum())
       << " min=" << JsonWriter::Number(h->min()) << " max=" << JsonWriter::Number(h->max())
       << " mean=" << JsonWriter::Number(h->mean()) << "\n";
  }
  return os.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace dapple::obs
