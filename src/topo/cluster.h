// Cluster topology model: a set of servers, each holding a fixed number of
// identical accelerator devices. Devices inside a server communicate over a
// fast intra-server interconnect (NVLink in the paper's Config-A); devices
// in different servers communicate over Ethernet. This mirrors the three
// hardware configurations in Table III of the DAPPLE paper.
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace dapple::topo {

/// Globally unique device index in [0, num_devices).
using DeviceId = int;
/// Server (machine) index in [0, num_servers).
using ServerId = int;

/// Per-device hardware description. `relative_speed` scales layer compute
/// times (1.0 = the reference device used for profiling).
struct DeviceSpec {
  std::string name = "V100";
  Bytes memory = 16ull * 1024 * 1024 * 1024;
  double relative_speed = 1.0;
};

/// Link characteristics between device pairs. Intra-server applies when two
/// devices share a server; inter-server otherwise.
struct InterconnectSpec {
  BytesPerSec intra_server_bandwidth = GBps(130.0);  // NVLink aggregate
  TimeSec intra_server_latency = 3e-6;
  BytesPerSec inter_server_bandwidth = Gbps(25.0);
  TimeSec inter_server_latency = 30e-6;
};

/// Immutable description of a training cluster: `num_servers` machines with
/// `gpus_per_server` devices each. Device ids are dense and laid out
/// server-major: device d lives on server d / gpus_per_server.
class Cluster {
 public:
  Cluster(std::string name, int num_servers, int gpus_per_server, DeviceSpec device,
          InterconnectSpec interconnect);

  /// Heterogeneous variant: per-server speed multipliers (e.g. a straggler
  /// rack of older GPUs at 0.5). The vector must have one entry per
  /// server; 1.0 = the reference device speed.
  Cluster WithServerSpeeds(std::vector<double> server_speeds) const;

  const std::string& name() const { return name_; }
  int num_servers() const { return num_servers_; }
  int gpus_per_server() const { return gpus_per_server_; }
  int num_devices() const { return num_servers_ * gpus_per_server_; }

  const DeviceSpec& device() const { return device_; }
  const InterconnectSpec& interconnect() const { return interconnect_; }

  ServerId server_of(DeviceId d) const;

  /// Effective compute speed of one device: the device spec's speed times
  /// its server's multiplier (1.0 when homogeneous).
  double device_speed(DeviceId d) const;

  /// Speed multiplier of one server (1.0 when homogeneous).
  double server_speed(ServerId s) const;

  /// True when all servers run at the same speed, making them
  /// interchangeable for the planner's canonical-state memoization.
  bool homogeneous() const { return server_speeds_.empty(); }

  /// True when the two devices share a server (and thus the fast link).
  bool same_server(DeviceId a, DeviceId b) const;

  /// Point-to-point bandwidth between two distinct devices.
  BytesPerSec bandwidth(DeviceId a, DeviceId b) const;

  /// Point-to-point latency between two distinct devices.
  TimeSec latency(DeviceId a, DeviceId b) const;

  /// Restriction of this cluster to its first `num_servers` machines; used
  /// by scaling studies (Figs. 13/14 run on 2x8 and 4x8 slices).
  Cluster WithServers(int num_servers) const;

 private:
  std::string name_;
  int num_servers_;
  int gpus_per_server_;
  DeviceSpec device_;
  InterconnectSpec interconnect_;
  /// Empty = homogeneous; else one multiplier per server.
  std::vector<double> server_speeds_;
};

/// Table III Config-A: servers with 8 V100s, NVLink intra-server, 25 Gbps
/// Ethernet between servers.
Cluster MakeConfigA(int num_servers);

/// Table III Config-B: single-V100 servers on 25 Gbps Ethernet (flat).
Cluster MakeConfigB(int num_servers);

/// Table III Config-C: single-V100 servers on 10 Gbps Ethernet (flat).
Cluster MakeConfigC(int num_servers);

/// Looks up a config by letter ('A'/'B'/'C') with `num_servers` machines.
Cluster MakeConfig(char which, int num_servers);

}  // namespace dapple::topo
