// Dependency graph of simulator tasks. Builders (runtime/graph_builder)
// create tasks and add data/control edges; the engine consumes the graph
// read-only. Edges are uniform: the successor may start only after the
// predecessor completes — exactly the semantics of TensorFlow control
// dependencies the paper's runtime relies on (Fig. 11).
#pragma once

#include <vector>

#include "sim/task.h"

namespace dapple::sim {

class TaskGraph {
 public:
  /// Adds a task and returns its id. The id in the task struct is assigned
  /// by the graph.
  TaskId AddTask(Task task);

  /// Declares that `successor` starts only after `predecessor` completes.
  /// Duplicate edges are tolerated (counted once per insertion; the engine
  /// tracks in-degree, so duplicates are semantically harmless but wasteful —
  /// builders avoid them).
  void AddEdge(TaskId predecessor, TaskId successor);

  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  const Task& task(TaskId id) const;
  Task& mutable_task(TaskId id);
  const std::vector<Task>& tasks() const { return tasks_; }

  const std::vector<TaskId>& successors(TaskId id) const;
  const std::vector<TaskId>& predecessors(TaskId id) const;
  int in_degree(TaskId id) const;

  /// Highest resource id referenced + 1.
  int num_resources() const;

  /// Highest pool id referenced + 1.
  int num_pools() const;

 private:
  std::vector<Task> tasks_;
  std::vector<std::vector<TaskId>> successors_;
  std::vector<std::vector<TaskId>> predecessors_;
  std::vector<int> in_degree_;
};

}  // namespace dapple::sim
