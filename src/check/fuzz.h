// Seeded randomized differential-testing harness. Generates random
// (model, cluster, plan, schedule) configurations, runs the full
// planner → graph_builder → engine stack, and pins the three layers against
// each other:
//
//   - the ScheduleValidator's invariant set must pass on every valid
//     configuration;
//   - the analytic latency (planner/latency.cc) must bracket the simulated
//     makespan within the stated tolerances;
//   - the DAPPLE schedule's peak activation memory must not change when the
//     micro-batch count doubles (the paper's O(K)-not-O(M) claim, §III).
//
// Everything derives from one 64-bit seed, so any failure reproduces from
// the seed printed in its summary (`dapple_fuzz --repro SEED`, or
// DAPPLE_FUZZ_SEED for the gtest harness).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/validator.h"
#include "fault/recovery.h"
#include "fault/script.h"
#include "model/profile.h"
#include "planner/dp_planner.h"
#include "planner/plan.h"
#include "runtime/graph_builder.h"
#include "topo/cluster.h"

namespace dapple::check {

/// Analytic latency may exceed the simulated makespan by at most 10% on
/// single-stage (pure DP) plans, where the estimator ignores only launch
/// overheads and bubbles.
inline constexpr double kAnalyticOverSimTolerance = 1.10;
/// Multi-stage plans add cross-stage transfers. The estimator matches the
/// simulator's duplex channels (steady comm rounds gated by max(F, B), not
/// F + B), so the remaining analytic pessimism comes from formula-1
/// conservatism on overlap and pivot interactions. Calibrated on a
/// 100k-seed sweep after the duplex fix: worst observed ratio 1.049
/// (seed 3410).
inline constexpr double kAnalyticOverSimCommTolerance = 1.30;
/// The simulated makespan may exceed the analytic latency by at most this
/// factor (bubbles, transfers serialized on channels, the weight update).
/// Worst observed on the same 100k-seed sweep: 1.616.
inline constexpr double kSimOverAnalyticTolerance = 2.0;

/// One generated configuration. Aggregate-constructed by MakeFuzzCase.
struct FuzzCase {
  std::uint64_t seed;
  model::ModelProfile model;
  topo::Cluster cluster;
  planner::ParallelPlan plan;
  runtime::BuildOptions options;

  /// One-line description for failure messages and verbose logs.
  std::string Describe() const;
};

/// Deterministically derives a configuration from a seed. Covers every
/// schedule kind (uniformly, from a salted side-stream so the kind draw
/// never shifts the model/cluster/plan stream), both warmup policies,
/// warmup overrides, re-computation, both replication modes, homogeneous
/// and straggler clusters, random plans and (on a subset of seeds)
/// planner-produced plans.
FuzzCase MakeFuzzCase(std::uint64_t seed);

/// Everything observed while running one case.
struct FuzzOutcome {
  std::uint64_t seed = 0;
  /// The case's schedule kind, so sweeps can report per-kind coverage.
  runtime::ScheduleKind kind = runtime::ScheduleKind::kDapple;
  ValidationReport report;

  int num_tasks = 0;
  /// Stage count of the case's plan (tolerance brackets differ by family).
  int num_stages = 0;
  TimeSec simulated_makespan = 0.0;

  /// Analytic-vs-simulated bracket (checked for split-mode DAPPLE cases
  /// without a warmup override — the estimator models exactly that family).
  bool checked_latency = false;
  bool latency_bracketed = true;
  TimeSec analytic_latency = 0.0;

  /// Peak-memory-independence differential (checked for DAPPLE cases whose
  /// warmup depths are not clamped by M itself).
  bool checked_peak = false;
  bool peak_independent = true;
  Bytes peak_at_m = 0;
  Bytes peak_at_2m = 0;

  bool ok() const { return report.ok() && latency_bracketed && peak_independent; }
  /// Failure summary including the seed; empty when ok().
  std::string Summary() const;
};

/// Runs one case end to end (build → simulate → validate → differentials).
FuzzOutcome RunFuzzCase(const FuzzCase& c);

inline FuzzOutcome RunFuzzSeed(std::uint64_t seed) {
  return RunFuzzCase(MakeFuzzCase(seed));
}

/// One generated fault-recovery configuration: a schedule-fuzz style
/// (model, cluster, plan) plus a seeded random fault script and a recovery
/// policy (cycled by seed). Aggregate-constructed by MakeFaultFuzzCase.
struct FaultFuzzCase {
  std::uint64_t seed;
  model::ModelProfile model;
  topo::Cluster cluster;
  planner::ParallelPlan plan;
  fault::FaultScript script;
  fault::RecoveryPolicy policy;
  fault::FaultOptions options;

  std::string Describe() const;
};

FaultFuzzCase MakeFaultFuzzCase(std::uint64_t seed);

/// Everything observed while running one fault case. Every pipeline the
/// experiment builds — initial, checkpoint-remapped, elastically replanned —
/// is executed fault-free and pushed through the full ScheduleValidator
/// invariant set; the experiment's own report is sanity-checked on top.
struct FaultFuzzOutcome {
  std::uint64_t seed = 0;
  /// Merged violations across every validated pipeline, each prefixed with
  /// the plan it came from.
  ValidationReport report;
  int pipelines_validated = 0;
  int iterations_completed = 0;
  int replans = 0;
  int restores = 0;

  bool ok() const { return report.ok(); }
  std::string Summary() const;
};

FaultFuzzOutcome RunFaultFuzzCase(const FaultFuzzCase& c);

inline FaultFuzzOutcome RunFaultFuzzSeed(std::uint64_t seed) {
  return RunFaultFuzzCase(MakeFaultFuzzCase(seed));
}

/// One generated memory-cap planning configuration: a random model on a
/// small cluster, a schedule family, a recompute policy, and a per-device
/// cap drawn as a factor (0.25–1.3) of the family's uncapped peak, so the
/// draws land on both sides of feasibility. Aggregate-constructed by
/// MakeMemoryCapFuzzCase.
struct MemoryCapFuzzCase {
  std::uint64_t seed;
  model::ModelProfile model;
  topo::Cluster cluster;
  runtime::ScheduleKind kind = runtime::ScheduleKind::kDapple;
  long global_batch_size = 0;
  Bytes memory_cap = 0;
  planner::RecomputePolicy recompute = planner::RecomputePolicy::kAuto;

  /// One-line description for failure messages and verbose logs.
  std::string Describe() const;
};

/// Deterministically derives a memory-cap case from a seed, on its own
/// salted side-stream so the schedule/fault fuzz streams (and their pinned
/// regression seeds) stay bit-identical.
MemoryCapFuzzCase MakeMemoryCapFuzzCase(std::uint64_t seed);

/// The OOM-free guarantee, observed on one case: the planner either throws
/// (declares the cap infeasible — allowed) or produces a plan whose
/// analytic peak fits the cap AND whose capped simulated execution passes
/// the full validator with zero OOM violations.
struct MemoryCapFuzzOutcome {
  std::uint64_t seed = 0;
  runtime::ScheduleKind kind = runtime::ScheduleKind::kDapple;
  ValidationReport report;

  /// False when the planner threw; `infeasible_reason` then carries the
  /// message. An infeasible declaration is a success, never a violation.
  bool planned = false;
  std::string infeasible_reason;

  Bytes memory_cap = 0;
  Bytes analytic_peak = 0;
  Bytes simulated_peak = 0;
  /// Stages the planner turned recompute on for (per-stage flags, or all
  /// of them under RecomputePolicy::kAll).
  int recompute_stages = 0;

  bool ok() const { return report.ok(); }
  /// Failure summary including the seed; empty when ok().
  std::string Summary() const;
};

/// Runs one memory-cap case end to end (plan → build capped → simulate →
/// validate).
MemoryCapFuzzOutcome RunMemoryCapFuzzCase(const MemoryCapFuzzCase& c);

inline MemoryCapFuzzOutcome RunMemoryCapFuzzSeed(std::uint64_t seed) {
  return RunMemoryCapFuzzCase(MakeMemoryCapFuzzCase(seed));
}

/// One candidate-ranking configuration: a fixed (model, cluster, global
/// batch) plus `num_candidates` random plans, all built as split-mode
/// DAPPLE schedules without a warmup override — exactly the family whose
/// analytic/sim brackets (the tolerances above) are pinned by the fuzz
/// harness, so the prefilter's band guarantee applies to every candidate.
/// Aggregate-constructed by MakeRankingFuzzCase on its own salted
/// side-stream (pinned seeds of the other streams never shift).
struct RankingFuzzCase {
  std::uint64_t seed;
  model::ModelProfile model;
  topo::Cluster cluster;
  std::vector<planner::ParallelPlan> candidates;
  runtime::BuildOptions options;

  std::string Describe() const;
};

RankingFuzzCase MakeRankingFuzzCase(std::uint64_t seed, int num_candidates = 24);

/// The prefilter recall property, observed on one case: ranking the
/// candidates with the analytic pre-filter on must land on a candidate
/// whose simulated makespan equals (bit-exactly) the best makespan over
/// every feasible candidate simulated in full.
struct RankingFuzzOutcome {
  std::uint64_t seed = 0;
  int num_candidates = 0;
  /// Candidates the prefiltered leg actually simulated (<= num_candidates).
  int num_simulated = 0;
  int best_prefiltered = -1;
  int best_full = -1;
  TimeSec best_prefiltered_makespan = 0.0;
  TimeSec best_full_makespan = 0.0;
  /// Rank-1 recall: the prefiltered winner's makespan equals the full-sweep
  /// winner's (index may differ only between exact ties).
  bool recall_ok = true;

  bool ok() const { return recall_ok; }
  /// Failure summary including the seed; empty when ok().
  std::string Summary() const;
};

/// Runs one ranking case twice — prefilter on, then the full-simulation
/// oracle — and compares the winners. `prefilter = false` disables the
/// band in the first leg too (the --prefilter=off knob): every feasible
/// candidate simulates in both legs and recall holds trivially.
RankingFuzzOutcome RunRankingFuzzCase(const RankingFuzzCase& c, bool prefilter = true);

inline RankingFuzzOutcome RunRankingFuzzSeed(std::uint64_t seed, bool prefilter = true) {
  return RunRankingFuzzCase(MakeRankingFuzzCase(seed), prefilter);
}

/// Runs every seed through RunFuzzSeed on a sim::BatchRunner with
/// `threads` workers (1 = inline serial, 0 = hardware concurrency).
/// Outcome i corresponds to seeds[i] and every byte of it is identical at
/// every thread count — each case derives all its state from its seed.
std::vector<FuzzOutcome> RunFuzzSweep(const std::vector<std::uint64_t>& seeds,
                                      int threads = 1);

/// Same driver for memory-cap cases (RunMemoryCapFuzzSeed).
std::vector<MemoryCapFuzzOutcome> RunMemoryCapFuzzSweep(
    const std::vector<std::uint64_t>& seeds, int threads = 1);

/// Same driver for fault-recovery cases (RunFaultFuzzSeed).
std::vector<FaultFuzzOutcome> RunFaultFuzzSweep(const std::vector<std::uint64_t>& seeds,
                                                int threads = 1);

/// Same driver for ranking cases (RunRankingFuzzSeed). Each case's two legs
/// run their candidate simulations serially inside the case, so sweep-level
/// parallelism stays at the case granularity.
std::vector<RankingFuzzOutcome> RunRankingFuzzSweep(
    const std::vector<std::uint64_t>& seeds, int threads = 1, bool prefilter = true);

}  // namespace dapple::check
