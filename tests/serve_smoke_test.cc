// Perf-smoke tier: spawn the real `dapple serve` daemon as a subprocess,
// drive it with a scripted request mix over stdio and assert the responses
// and a warm cache (hit rate > 0). This is the end-to-end path a user
// scripts against; the in-process behavior is covered by serve_test.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

#ifndef DAPPLE_CLI_PATH
#define DAPPLE_CLI_PATH "./dapple"
#endif

std::string TempPath(const std::string& tag) {
  return "/tmp/dapple_serve_smoke_" + std::to_string(getpid()) + "_" + tag;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = text.find('\n'); nl != std::string::npos;
       nl = text.find('\n', start)) {
    lines.push_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

TEST(ServeSmoke, DaemonAnswersScriptedMixWithWarmCache) {
  const std::string in_path = TempPath("in.ndjson");
  const std::string out_path = TempPath("out.ndjson");
  const std::string err_path = TempPath("err.txt");

  {
    std::ofstream in(in_path);
    // Three identical plans (two must be cache hits), one distinct plan,
    // one simulate reusing a cached plan, two failures, then stats.
    const std::string gnmt =
        R"({"kind":"plan","id":"p1","model":"GNMT-16","config":"A","servers":2,"gbs":64})";
    in << gnmt << "\n" << gnmt << "\n" << gnmt << "\n";
    in << R"({"kind":"plan","id":"p2","model":"VGG-19","config":"A","servers":1,"gbs":32})"
       << "\n";
    in << R"({"kind":"simulate","id":"s1","model":"GNMT-16","config":"A","servers":2,"gbs":64})"
       << "\n";
    in << R"({"kind":"plan","id":"bad","model":"NoSuchModel","config":"A","servers":2,"gbs":64})"
       << "\n";
    in << "{truncated\n";
    in << R"({"kind":"stats","id":"st"})" << "\n";
  }

  // Serial run: batch dispatch is in-order, so cache hit counts are exact
  // (with a pool, identical requests in one batch may race and both miss).
  const std::string command = std::string(DAPPLE_CLI_PATH) +
                              " serve --stdio --workers 1 --cache-entries 64 < " +
                              in_path + " > " + out_path + " 2> " + err_path;
  const int status = std::system(command.c_str());
  ASSERT_EQ(WEXITSTATUS(status), 0) << ReadFile(err_path);

  const std::vector<std::string> lines = SplitLines(ReadFile(out_path));
  ASSERT_EQ(lines.size(), 8u) << ReadFile(out_path);

  // The three identical plan requests return byte-identical documents
  // modulo nothing — same id, same body.
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos) << lines[0];
  EXPECT_EQ(lines[0], lines[1]);
  EXPECT_EQ(lines[0], lines[2]);
  EXPECT_NE(lines[0].find("\"fingerprint\":\"fp:"), std::string::npos);

  EXPECT_NE(lines[3].find("\"id\":\"p2\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"ok\":true"), std::string::npos) << lines[3];
  EXPECT_NE(lines[4].find("\"simulated_latency\""), std::string::npos) << lines[4];
  EXPECT_NE(lines[5].find("\"code\":\"unknown_model\""), std::string::npos) << lines[5];
  EXPECT_NE(lines[6].find("\"code\":\"parse_error\""), std::string::npos) << lines[6];

  // Stats must show a warm cache: the duplicate plans and the simulate hit.
  const std::string& stats = lines[7];
  EXPECT_NE(stats.find("\"id\":\"st\""), std::string::npos);
  EXPECT_EQ(stats.find("\"hits\":0,"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"hits\":3"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\"misses\":2"), std::string::npos) << stats;

  // The daemon's exit summary reports the hit rate on stderr.
  EXPECT_NE(ReadFile(err_path).find("hit rate"), std::string::npos);

  // Concurrent-client determinism, end to end: the same script through a
  // 4-worker daemon must produce byte-identical responses (the stats line
  // is excluded — it reports wall-clock latencies).
  const std::string pooled_out = TempPath("out4.ndjson");
  const std::string pooled_command = std::string(DAPPLE_CLI_PATH) +
                                     " serve --stdio --workers 4 --cache-entries 64 < " +
                                     in_path + " > " + pooled_out + " 2> /dev/null";
  ASSERT_EQ(WEXITSTATUS(std::system(pooled_command.c_str())), 0);
  const std::vector<std::string> pooled_lines = SplitLines(ReadFile(pooled_out));
  ASSERT_EQ(pooled_lines.size(), 8u);
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    EXPECT_EQ(lines[i], pooled_lines[i]) << "line " << i;
  }

  std::remove(in_path.c_str());
  std::remove(out_path.c_str());
  std::remove(pooled_out.c_str());
  std::remove(err_path.c_str());
}

}  // namespace
