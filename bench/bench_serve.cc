// Serving plans at scale: throughput and cache behavior of the
// planner-as-a-service daemon core (src/serve/).
//
// Two experiments:
//
//   1. Cold vs warm on GNMT-16 — one cold request pays a full planner
//      search; repeats of the same request answer from the fingerprint-
//      keyed LRU cache. The bench asserts the warm path is >= 10x faster
//      than cold AND that the cached response is byte-identical to the
//      freshly planned one (non-zero exit on either violation, so this
//      doubles as the cache-correctness acceptance check).
//
//   2. Worker sweep over a mixed zoo workload — the same request mix
//      (several models/configs/batch sizes, with duplicates) dispatched
//      through servers at 1..8 workers; requests/s and hit rate per worker
//      count, with byte-identity of the response stream across counts
//      enforced.
//
// `--quick` trims the sweep for the perf-smoke CI tier.
#include "harness.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common/table.h"
#include "serve/server.h"

using namespace dapple;

namespace {

double Seconds(const std::function<void()>& body) {
  const auto t0 = std::chrono::steady_clock::now();
  body();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

std::string PlanLine(const std::string& model, char config, int servers, long gbs,
                     const std::string& schedule = "") {
  std::string line = "{\"kind\":\"plan\",\"model\":\"" + model + "\",\"config\":\"" +
                     std::string(1, config) +
                     "\",\"servers\":" + std::to_string(servers) +
                     ",\"gbs\":" + std::to_string(gbs);
  if (!schedule.empty()) line += ",\"schedule\":\"" + schedule + "\"";
  return line + "}";
}

/// The mixed zoo workload: `rounds` passes over a fixed set of distinct
/// plan requests, so the steady-state hit rate approaches (rounds-1)/rounds.
std::vector<std::string> MixedWorkload(bool quick, int rounds) {
  std::vector<std::string> distinct = {
      PlanLine("GNMT-16", 'A', 2, 1024),
      PlanLine("GNMT-16", 'A', 2, 256),
      PlanLine("GNMT-16", 'B', 2, 1024),
      PlanLine("VGG-19", 'A', 1, 128),
      PlanLine("GNMT-16", 'A', 2, 1024, "gpipe"),
      PlanLine("VGG-19", 'B', 1, 128),
  };
  if (!quick) {
    distinct.push_back(PlanLine("GNMT-16", 'A', 4, 1024));
    distinct.push_back(PlanLine("BERT-48", 'A', 2, 64));
    distinct.push_back(PlanLine("AmoebaNet-36", 'A', 2, 128));
    distinct.push_back(PlanLine("VGG-19", 'C', 1, 128));
  }
  std::vector<std::string> lines;
  for (int r = 0; r < rounds; ++r) {
    lines.insert(lines.end(), distinct.begin(), distinct.end());
  }
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::PrintHeader("Serving plans at scale — daemon throughput and plan cache",
                     "planner-as-a-service; plan-reuse idiom of conv-plan caches");

  int violations = 0;

  // ---- 1. Cold vs warm, GNMT-16 ---------------------------------------
  const std::string gnmt = PlanLine("GNMT-16", 'A', 2, 1024);
  serve::Server cold_server;
  std::string cold_response;
  const double cold = Seconds([&] { cold_response = cold_server.HandleLine(gnmt); });

  const int warm_iters = quick ? 50 : 500;
  std::string warm_response;
  const double warm_total = Seconds([&] {
    for (int i = 0; i < warm_iters; ++i) warm_response = cold_server.HandleLine(gnmt);
  });
  const double warm = warm_total / warm_iters;
  const double ratio = warm > 0.0 ? cold / warm : 0.0;

  if (warm_response != cold_response) {
    std::fprintf(stderr, "CACHE VIOLATION: cached response differs from fresh plan\n");
    ++violations;
  }
  // And across servers: a second daemon planning from scratch must produce
  // the same bytes the first daemon now serves from cache.
  serve::Server fresh_server;
  if (fresh_server.HandleLine(gnmt) != warm_response) {
    std::fprintf(stderr, "CACHE VIOLATION: fresh daemon's plan differs from cached\n");
    ++violations;
  }
  if (ratio < 10.0) {
    std::fprintf(stderr,
                 "SPEEDUP VIOLATION: warm path only %.1fx faster than cold "
                 "(%.6fs cold vs %.6fs warm), need >= 10x\n",
                 ratio, cold, warm);
    ++violations;
  }

  std::printf("cold GNMT-16 plan: %.4fs | warm (cached): %.6fs | %.0fx\n\n", cold, warm,
              ratio);
  {
    char measured[96];
    std::snprintf(measured, sizeof(measured), "%.0fx (%.4fs cold, %.6fs warm)", ratio,
                  cold, warm);
    bench::PrintComparison("warm/cold plan latency on GNMT-16", ">=10x", measured);
  }

  // ---- 2. Worker sweep over the mixed zoo workload --------------------
  const int rounds = quick ? 2 : 4;
  const std::vector<std::string> lines = MixedWorkload(quick, rounds);
  const std::vector<int> worker_counts = quick ? std::vector<int>{1, 4}
                                               : std::vector<int>{1, 2, 4, 8};

  AsciiTable table({"Workers", "Requests", "Wall (s)", "Req/s", "Hit rate", "Speedup"});
  std::vector<std::string> reference;
  double serial_wall = 0.0;
  for (int workers : worker_counts) {
    serve::ServerOptions options;
    options.workers = workers;
    options.max_batch = static_cast<int>(lines.size());
    serve::Server server(options);
    std::vector<std::string> responses;
    const double wall = Seconds([&] { responses = server.HandleBatch(lines); });

    if (reference.empty()) {
      reference = responses;
      serial_wall = wall;
    } else if (responses != reference) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: responses at %d workers differ from serial\n",
                   workers);
      ++violations;
    }

    const serve::ServerStats stats = server.Stats();
    const double rps = wall > 0.0 ? static_cast<double>(lines.size()) / wall : 0.0;
    table.AddRow({AsciiTable::Int(workers), AsciiTable::Int(static_cast<int>(lines.size())),
                  AsciiTable::Num(wall, 3), AsciiTable::Num(rps, 1),
                  AsciiTable::Num(stats.cache.hit_rate() * 100.0, 1) + "%",
                  workers == 1 ? "1.00x"
                               : AsciiTable::Num(wall > 0.0 ? serial_wall / wall : 0.0, 2) +
                                     "x"});

    char metric[64], measured[96];
    std::snprintf(metric, sizeof(metric), "serve throughput @ %d workers", workers);
    std::snprintf(measured, sizeof(measured), "%.1f req/s, %.0f%% hit rate", rps,
                  stats.cache.hit_rate() * 100.0);
    bench::PrintComparison(metric, "scales with workers on cold misses", measured);
  }
  std::printf("%s", table.ToString().c_str());

  std::printf(
      "\nReading guide: each worker count runs a fresh daemon over the same\n"
      "request stream, so every round after the first answers from the LRU\n"
      "plan cache (steady-state hit rate (rounds-1)/rounds). Wall-clock\n"
      "speedup comes from fanning the cold misses of round one across the\n"
      "worker pool; the response stream is byte-identical at every worker\n"
      "count (checked in-run, non-zero exit on divergence).\n");

  if (violations > 0) {
    std::fprintf(stderr, "%d violation(s)\n", violations);
    return 1;
  }
  return 0;
}
