#include "sim/batch.h"

#include "common/error.h"
#include "common/thread_pool.h"

namespace dapple::sim {

BatchRunner::BatchRunner(BatchOptions options) {
  DAPPLE_CHECK_GE(options.threads, 0) << "negative thread count";
  if (options.threads == 1) {
    threads_ = 1;
    return;
  }
  pool_ = std::make_unique<ThreadPool>(static_cast<std::size_t>(options.threads));
  threads_ = static_cast<int>(pool_->num_threads());
}

BatchRunner::~BatchRunner() = default;

void BatchRunner::ForEach(int count, const std::function<void(int)>& body) {
  if (count <= 0) return;
  if (pool_ == nullptr || count == 1) {
    for (int i = 0; i < count; ++i) body(i);
    return;
  }
  // ParallelFor rethrows whichever exception a worker captured first on the
  // wall clock — nondeterministic. Capture per-index instead and rethrow
  // the lowest one after the batch drains, matching the serial loop.
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(count));
  pool_->ParallelFor(static_cast<std::size_t>(count), [&](std::size_t i) {
    try {
      body(static_cast<int>(i));
    } catch (...) {
      errors[i] = std::current_exception();
    }
  });
  for (const std::exception_ptr& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

std::vector<SimResult> BatchRunner::RunSimulations(const std::vector<SimJob>& jobs) {
  return Map<SimResult>(static_cast<int>(jobs.size()), [&](int i) {
    const SimJob& job = jobs[static_cast<std::size_t>(i)];
    DAPPLE_CHECK(job.graph != nullptr) << "SimJob with null graph";
    return Engine::Run(*job.graph, job.options);
  });
}

}  // namespace dapple::sim
