#include "sim/graph.h"

#include <algorithm>

#include "common/error.h"

namespace dapple::sim {

TaskId TaskGraph::AddTask(Task task) {
  DAPPLE_CHECK_GE(task.duration, 0.0) << "task " << task.name;
  DAPPLE_CHECK_GE(task.resource, 0) << "task " << task.name;
  const TaskId id = static_cast<TaskId>(tasks_.size());
  task.id = id;
  tasks_.push_back(std::move(task));
  successors_.emplace_back();
  predecessors_.emplace_back();
  in_degree_.push_back(0);
  return id;
}

void TaskGraph::AddEdge(TaskId predecessor, TaskId successor) {
  DAPPLE_CHECK(predecessor >= 0 && predecessor < num_tasks()) << "bad edge source";
  DAPPLE_CHECK(successor >= 0 && successor < num_tasks()) << "bad edge target";
  DAPPLE_CHECK_NE(predecessor, successor) << "self edge on task " << predecessor;
  auto& succ = successors_[static_cast<std::size_t>(predecessor)];
  if (std::find(succ.begin(), succ.end(), successor) != succ.end()) return;
  succ.push_back(successor);
  predecessors_[static_cast<std::size_t>(successor)].push_back(predecessor);
  in_degree_[static_cast<std::size_t>(successor)]++;
}

const Task& TaskGraph::task(TaskId id) const {
  return tasks_.at(static_cast<std::size_t>(id));
}

Task& TaskGraph::mutable_task(TaskId id) { return tasks_.at(static_cast<std::size_t>(id)); }

const std::vector<TaskId>& TaskGraph::successors(TaskId id) const {
  return successors_.at(static_cast<std::size_t>(id));
}

const std::vector<TaskId>& TaskGraph::predecessors(TaskId id) const {
  return predecessors_.at(static_cast<std::size_t>(id));
}

int TaskGraph::in_degree(TaskId id) const {
  return in_degree_.at(static_cast<std::size_t>(id));
}

int TaskGraph::num_resources() const {
  int max_id = -1;
  for (const Task& t : tasks_) max_id = std::max(max_id, t.resource);
  return max_id + 1;
}

int TaskGraph::num_pools() const {
  int max_id = -1;
  for (const Task& t : tasks_) max_id = std::max(max_id, t.pool);
  return max_id + 1;
}

}  // namespace dapple::sim
