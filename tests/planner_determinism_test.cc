// Determinism sweep for the parallel memoized planner: across a seeded set
// of fuzz-generated (model, cluster) instances, the search must return a
// byte-identical winning plan — and identical alternatives, evaluation
// counts and bit-identical latencies — at every thread count and with the
// stage-cost cache on or off. The parallel search is deterministic by
// construction (sequential merge in enumeration order, slot-indexed
// parallel work, pure cached values); this sweep is the regression net
// around that construction.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "check/fuzz.h"
#include "common/error.h"
#include "planner/dp_planner.h"
#include "planner/plan_io.h"

namespace dapple::planner {
namespace {

/// Everything about a search that must not depend on the thread count.
struct SearchFingerprint {
  bool feasible = false;
  std::string plan;  // SerializePlan of the winner ("" when infeasible)
  std::vector<std::string> alternatives;
  double latency = 0.0;  // compared bit-for-bit, not within a tolerance
  long evaluated = 0;

  bool operator==(const SearchFingerprint& other) const = default;
};

SearchFingerprint RunSearch(const model::ModelProfile& m, const topo::Cluster& cluster,
                            long gbs, int threads, bool use_cache) {
  PlannerOptions options;
  options.global_batch_size = gbs;
  options.num_threads = threads;
  options.use_stage_cache = use_cache;
  SearchFingerprint fp;
  try {
    const PlanResult result = DapplePlanner(m, cluster, options).Plan();
    fp.feasible = true;
    fp.plan = SerializePlan(result.plan);
    for (const auto& [alt, est] : result.alternatives) {
      (void)est;
      fp.alternatives.push_back(SerializePlan(alt));
    }
    fp.latency = result.estimate.latency;
    fp.evaluated = result.candidates_evaluated;
  } catch (const Error&) {
    // Infeasible instances stay in the sweep: every thread count must agree
    // that (and leave the fingerprint empty).
  }
  return fp;
}

int SweepInstances() {
  // DAPPLE_FUZZ_ITERATIONS scales the determinism sweep too, but never
  // below the pinned floor of 200 instances.
  if (const char* env = std::getenv("DAPPLE_FUZZ_ITERATIONS")) {
    const int n = std::atoi(env);
    if (n > 200) return n;
  }
  return 200;
}

TEST(PlannerDeterminismTest, SeededSweepIsByteIdenticalAcrossThreadCounts) {
  const int instances = SweepInstances();
  int feasible = 0;
  int multi_stage = 0;
  for (std::uint64_t seed = 0; seed < static_cast<std::uint64_t>(instances); ++seed) {
    const check::FuzzCase c = check::MakeFuzzCase(seed);
    const long gbs = c.options.global_batch_size;

    const SearchFingerprint serial = RunSearch(c.model, c.cluster, gbs, 1, true);
    if (serial.feasible) {
      ++feasible;
      if (serial.alternatives.size() > 1) ++multi_stage;
    }

    for (int threads : {2, 8}) {
      const SearchFingerprint parallel =
          RunSearch(c.model, c.cluster, gbs, threads, true);
      ASSERT_EQ(serial, parallel)
          << "thread count changed the search outcome: seed=" << seed
          << " threads=" << threads << " " << c.Describe();
    }

    // The cache must be invisible: values are pure functions of their keys,
    // so disabling it may only change speed, never the result.
    const SearchFingerprint uncached = RunSearch(c.model, c.cluster, gbs, 1, false);
    ASSERT_EQ(serial, uncached)
        << "stage cache changed the search outcome: seed=" << seed << " "
        << c.Describe();
  }
  // The sweep must not be vacuous: most fuzz instances plan successfully
  // and keep real alternative lists.
  EXPECT_GT(feasible, instances / 2);
  EXPECT_GT(multi_stage, instances / 4);
}

TEST(PlannerDeterminismTest, SharedPoolAndDedicatedPoolAgree) {
  // num_threads = 0 (shared pool, whatever size the host gives it) must
  // also match the serial fingerprint — the default configuration is
  // covered by the same guarantee, not just explicit thread counts.
  for (std::uint64_t seed : {3u, 7u, 21u, 42u, 77u}) {
    const check::FuzzCase c = check::MakeFuzzCase(seed);
    const long gbs = c.options.global_batch_size;
    const SearchFingerprint serial = RunSearch(c.model, c.cluster, gbs, 1, true);
    const SearchFingerprint shared = RunSearch(c.model, c.cluster, gbs, 0, true);
    ASSERT_EQ(serial, shared) << "seed=" << seed << " " << c.Describe();
  }
}

}  // namespace
}  // namespace dapple::planner
