// The analytic top-K pre-filter, fenced three ways:
//
//   1. arithmetic — the selection math (static band, min_keep top-up,
//      non-finite exclusion, the adaptive two-phase cut and its subset
//      relation to the static band) on hand-built score vectors, including
//      a near-miss vector at the exact worst calibrated analytic/sim
//      ratio;
//   2. constants — the planner-side bracket mirrors must equal the
//      calibrated tolerances in check/fuzz.h (the two layers cannot share
//      a header: check links planner, not the reverse);
//   3. recall — the end-to-end property on seeded fuzz corpora: ranking
//      with the pre-filter on must land on a candidate whose simulated
//      makespan bit-exactly equals the best over the full simulation
//      sweep, at every BatchRunner thread count, including the pinned
//      near-miss seeds 3410 and 16186 (the two worst analytic/sim cases
//      of the 100k-seed calibration sweep).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "check/fuzz.h"
#include "obs/metrics.h"
#include "planner/prefilter.h"
#include "sim/prefilter.h"

namespace dapple {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(PrefilterConstants, MirrorTheCalibratedBrackets) {
  // The adaptive cut is only provably recall-preserving because these
  // factors bound the analytic/sim ratios the fuzz harness calibrates. A
  // drift between the two layers voids the proof silently — so it fails
  // here instead.
  EXPECT_EQ(planner::kPrefilterAnalyticOverSim, check::kAnalyticOverSimCommTolerance);
  EXPECT_EQ(planner::kPrefilterSimOverAnalytic, check::kSimOverAnalyticTolerance);
  EXPECT_EQ(planner::kPrefilterBand,
            planner::kPrefilterAnalyticOverSim * planner::kPrefilterSimOverAnalytic);
}

TEST(SelectWithinBand, KeepsEverythingWithinBandOfTheMinimum) {
  const std::vector<double> scores = {2.0, 1.0, 2.59, 2.61, 10.0};
  // Band 2.6 x min 1.0: keeps 1.0, 2.0, 2.59; drops 2.61 and 10.0.
  EXPECT_EQ(sim::SelectWithinBand(scores, 2.6, 1), (std::vector<int>{0, 1, 2}));
}

TEST(SelectWithinBand, MinKeepTopsUpWithTheNextBestScores) {
  const std::vector<double> scores = {10.0, 1.0, 50.0, 40.0};
  // Band keeps only index 1; min_keep 3 pulls in the two next-best scores
  // (10.0 then 40.0) regardless of the band.
  EXPECT_EQ(sim::SelectWithinBand(scores, 1.5, 3), (std::vector<int>{0, 1, 3}));
}

TEST(SelectWithinBand, NonFiniteScoresAreNeverSelected) {
  EXPECT_EQ(sim::SelectWithinBand({kInf, 1.0, kInf}, 2.6, 3), (std::vector<int>{1}));
  EXPECT_TRUE(sim::SelectWithinBand({kInf, kInf}, 2.6, 3).empty());
  EXPECT_TRUE(sim::SelectWithinBand({}, 2.6, 3).empty());
}

TEST(PrefilterBatch, AdaptiveCutSkipsEverythingAboveTheBracketBound) {
  // Simulated value = 1.4x the score for every candidate: inside both
  // brackets (analytic/sim = 0.71 <= 1.3, sim/analytic = 1.4 <= 2.0).
  const std::vector<double> scores = {1.0, 1.1, 1.2, 5.0, 10.0};
  sim::PrefilterOptions po;
  po.probe = 1;
  const auto result = sim::PrefilterBatch(
      scores, [&](int i) { return scores[static_cast<std::size_t>(i)] * 1.4; }, po);

  // Probe simulates index 0 (best score): best_sim = 1.4, cutoff = 1.82.
  EXPECT_DOUBLE_EQ(result.cutoff, 1.3 * 1.4);
  EXPECT_EQ(result.simulated, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(result.num_skipped, 2);
  EXPECT_EQ(result.best, 0);
  EXPECT_DOUBLE_EQ(result.best_value, 1.4);
}

TEST(PrefilterBatch, KeepSetIsASubsetOfTheStaticWorstCaseBand) {
  // Adversarial spread: simulated values wander anywhere inside the
  // brackets (score/1.3 .. 2 x score). The adaptive keep-set must stay
  // inside the static band score <= 2.6 x min(score) for any such case.
  const std::vector<double> scores = {1.0, 1.3, 2.0, 2.55, 2.65, 3.0, 8.0};
  const std::vector<double> sims = {2.0, 1.001, 1.6, 2.2, 2.3, 5.9, 6.2};
  sim::PrefilterOptions po;
  po.probe = 2;
  const auto result = sim::PrefilterBatch(
      scores, [&](int i) { return sims[static_cast<std::size_t>(i)]; }, po);

  const std::vector<int> band =
      sim::SelectWithinBand(scores, planner::kPrefilterBand, po.probe);
  for (const int i : result.simulated) {
    EXPECT_NE(std::find(band.begin(), band.end(), i), band.end())
        << "adaptive cut simulated index " << i << " outside the static band";
  }
  // And the true best (index 1, sim 1.001) must have been simulated.
  EXPECT_EQ(result.best, 1);
}

TEST(PrefilterBatch, NearMissRatioAtTheCalibratedWorstCaseSurvives) {
  // Seed 3410's 1.0489 is the worst analytic-over-sim ratio ever observed
  // on the calibrated family. Recreate that geometry: the true best
  // candidate overshoots analytically by exactly that ratio while a decoy
  // undershoots, putting the best's score above the decoy's. The 1.30 cut
  // must still keep it; a cut tightened below ~1.05 would drop it.
  const double worst_ratio = 1.0489;
  const std::vector<double> sims = {1.00, 0.98};      // index 1 is the true best
  const std::vector<double> scores = {1.00 * 0.95,    // decoy undershoots
                                      0.98 * worst_ratio};
  ASSERT_GT(scores[1], scores[0]);
  sim::PrefilterOptions po;
  po.probe = 1;
  const auto result = sim::PrefilterBatch(
      scores, [&](int i) { return sims[static_cast<std::size_t>(i)]; }, po);
  EXPECT_EQ(result.best, 1);
  EXPECT_DOUBLE_EQ(result.best_value, 0.98);
}

TEST(PrefilterBatch, DisabledSimulatesEveryFiniteCandidate) {
  const std::vector<double> scores = {9.0, 1.0, kInf, 30.0};
  sim::PrefilterOptions po;
  po.enabled = false;
  const auto result = sim::PrefilterBatch(
      scores, [&](int i) { return scores[static_cast<std::size_t>(i)]; }, po);
  EXPECT_EQ(result.simulated, (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(result.num_skipped, 1);  // only the infeasible candidate
  EXPECT_EQ(result.best, 1);
}

TEST(PrefilterBatch, IdenticalSelectionAndBestAtEveryThreadCount) {
  std::vector<double> scores;
  for (int i = 0; i < 64; ++i) scores.push_back(1.0 + 0.1 * (i % 17));
  const auto simulate = [&](int i) {
    return scores[static_cast<std::size_t>(i)] * (1.0 + 0.3 * ((i * 7) % 3) / 3.0);
  };
  sim::PrefilterOptions po;
  const auto serial = sim::PrefilterBatch(scores, simulate, po);
  for (int threads : {2, 8}) {
    po.threads = threads;
    const auto parallel = sim::PrefilterBatch(scores, simulate, po);
    EXPECT_EQ(serial.simulated, parallel.simulated) << "threads=" << threads;
    EXPECT_EQ(serial.values, parallel.values) << "threads=" << threads;
    EXPECT_EQ(serial.best, parallel.best) << "threads=" << threads;
    EXPECT_EQ(serial.best_value, parallel.best_value) << "threads=" << threads;
  }
}

TEST(PrefilterBatch, UpdatesTheMetricsCounters) {
  auto& metrics = obs::MetricsRegistry::Global();
  const std::int64_t sweeps0 = metrics.counter("prefilter.sweeps").value();
  const std::int64_t cand0 = metrics.counter("prefilter.candidates").value();
  const std::int64_t sim0 = metrics.counter("prefilter.simulated").value();
  const std::int64_t skip0 = metrics.counter("prefilter.skipped").value();

  const std::vector<double> scores = {1.0, 1.2, 9.0};
  sim::PrefilterOptions po;
  po.probe = 1;
  const auto result = sim::PrefilterBatch(
      scores, [&](int i) { return scores[static_cast<std::size_t>(i)]; }, po);

  EXPECT_EQ(metrics.counter("prefilter.sweeps").value(), sweeps0 + 1);
  EXPECT_EQ(metrics.counter("prefilter.candidates").value(), cand0 + 3);
  EXPECT_EQ(metrics.counter("prefilter.simulated").value(),
            sim0 + static_cast<std::int64_t>(result.simulated.size()));
  EXPECT_EQ(metrics.counter("prefilter.skipped").value(), skip0 + result.num_skipped);
  EXPECT_EQ(result.num_skipped + static_cast<int>(result.simulated.size()), 3);
}

// --- End-to-end recall over seeded fuzz corpora -------------------------

TEST(PrefilterRecall, OneHundredPercentRankOneRecallOverTheSeededCorpus) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 48; ++s) seeds.push_back(s);
  const std::vector<check::RankingFuzzOutcome> outcomes =
      check::RunRankingFuzzSweep(seeds, /*threads=*/8);

  long simulated = 0, candidates = 0;
  for (const check::RankingFuzzOutcome& out : outcomes) {
    EXPECT_TRUE(out.ok()) << out.Summary();
    simulated += out.num_simulated;
    candidates += out.num_candidates;
  }
  // Non-vacuity both ways: the corpus must contain real candidate pools
  // and the prefilter must actually skip a meaningful fraction — 100%
  // recall by simulating everything proves nothing.
  EXPECT_EQ(candidates, 48 * 24);
  EXPECT_LT(simulated, candidates / 2);
  EXPECT_GT(simulated, 0);
}

TEST(PrefilterRecall, SweepIsByteIdenticalAtEveryThreadCount) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 100; s < 112; ++s) seeds.push_back(s);
  const std::vector<check::RankingFuzzOutcome> serial =
      check::RunRankingFuzzSweep(seeds, /*threads=*/1);
  const std::vector<check::RankingFuzzOutcome> parallel =
      check::RunRankingFuzzSweep(seeds, /*threads=*/8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].num_simulated, parallel[i].num_simulated) << "seed " << seeds[i];
    EXPECT_EQ(serial[i].best_prefiltered, parallel[i].best_prefiltered)
        << "seed " << seeds[i];
    EXPECT_EQ(serial[i].best_prefiltered_makespan, parallel[i].best_prefiltered_makespan)
        << "seed " << seeds[i];
    EXPECT_EQ(serial[i].best_full_makespan, parallel[i].best_full_makespan)
        << "seed " << seeds[i];
  }
}

TEST(PrefilterRecall, PinnedNearMissSeedsHold) {
  // 3410 and 16186 are the two worst analytic/sim cases of the calibration
  // sweep (see fuzz_regression_test.cc); their ranking-stream counterparts
  // stay pinned here so a bracket regression surfaces in the recall
  // property too, not just in the latency differential.
  for (const std::uint64_t seed : {3410ull, 16186ull}) {
    const check::RankingFuzzOutcome out = check::RunRankingFuzzSeed(seed);
    EXPECT_TRUE(out.ok()) << out.Summary();
    EXPECT_GT(out.num_candidates, 0) << "seed " << seed;
  }
}

TEST(PrefilterRecall, PrefilterOffIsTheTrivialBaseline) {
  const check::RankingFuzzOutcome out =
      check::RunRankingFuzzSeed(5, /*prefilter=*/false);
  EXPECT_TRUE(out.ok()) << out.Summary();
  // Off means both legs are the same full sweep: identical winners (by
  // index, not just value), and only analytically infeasible candidates
  // ever go unsimulated.
  EXPECT_EQ(out.best_prefiltered, out.best_full);
  EXPECT_GT(out.num_simulated, 0);
  EXPECT_LE(out.num_simulated, out.num_candidates);
}

}  // namespace
}  // namespace dapple
