#include "common/fingerprint.h"

#include <bit>
#include <cstdio>

namespace dapple {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ull;
}  // namespace

Fingerprint64& Fingerprint64::MixBytes(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    state_ ^= static_cast<std::uint64_t>(bytes[i]);
    state_ *= kFnvPrime;
  }
  return *this;
}

Fingerprint64& Fingerprint64::Mix(std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
  return MixBytes(bytes, sizeof(bytes));
}

Fingerprint64& Fingerprint64::Mix(double v) {
  if (v == 0.0) v = 0.0;  // normalize -0.0
  return Mix(std::bit_cast<std::uint64_t>(v));
}

Fingerprint64& Fingerprint64::Mix(bool v) {
  const unsigned char byte = v ? 1 : 0;
  return MixBytes(&byte, 1);
}

Fingerprint64& Fingerprint64::Mix(std::string_view s) {
  Mix(static_cast<std::uint64_t>(s.size()));
  return MixBytes(s.data(), s.size());
}

std::uint64_t Fingerprint64::digest() const {
  return state_ == 0 ? kFnvPrime : state_;
}

std::string FingerprintToString(std::uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "fp:%016llx", static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace dapple
