#include "planner/plan.h"

#include <set>
#include <sstream>

#include "common/error.h"

namespace dapple::planner {

int ParallelPlan::num_devices() const {
  int n = 0;
  for (const StagePlan& s : stages) n += s.devices.size();
  return n;
}

bool ParallelPlan::IsStraight() const {
  if (stages.size() < 2) return false;
  for (const StagePlan& s : stages) {
    if (s.devices.size() != 1) return false;
  }
  return true;
}

void ParallelPlan::Validate(const model::ModelProfile& model_profile) const {
  DAPPLE_CHECK(!stages.empty()) << "plan for " << model << " has no stages";
  int expected_begin = 0;
  std::set<topo::DeviceId> seen;
  for (const StagePlan& s : stages) {
    DAPPLE_CHECK_EQ(s.layer_begin, expected_begin) << "non-contiguous stages in " << model;
    DAPPLE_CHECK_GT(s.layer_end, s.layer_begin) << "empty stage in " << model;
    DAPPLE_CHECK_GT(s.devices.size(), 0) << "stage without devices in " << model;
    for (topo::DeviceId d : s.devices.devices()) {
      DAPPLE_CHECK(seen.insert(d).second) << "device G" << d << " in two stages";
    }
    expected_begin = s.layer_end;
  }
  DAPPLE_CHECK_EQ(expected_begin, model_profile.num_layers())
      << "plan does not cover model " << model;
}

std::string ParallelPlan::ToString() const {
  if (IsDataParallel()) return "DP";
  if (IsStraight()) return "Straight";
  std::ostringstream os;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i) os << " : ";
    os << stages[i].replication();
  }
  return os.str();
}

std::string ParallelPlan::SplitString() const {
  if (IsDataParallel()) return "-";
  std::ostringstream os;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (i) os << " : ";
    os << stages[i].num_layers();
  }
  return os.str();
}

std::string ParallelPlan::ToDetailedString() const {
  std::ostringstream os;
  for (const StagePlan& s : stages) {
    os << "(" << s.layer_begin << ", " << s.layer_end << ") @ " << s.devices.ToString();
    if (s.recompute) os << " [recompute]";
    os << "\n";
  }
  return os.str();
}

}  // namespace dapple::planner
