#include "common/error.h"

#include <sstream>

namespace dapple::internal {

void ThrowCheckFailure(const char* condition, const char* file, int line,
                       const std::string& message) {
  std::ostringstream os;
  os << "DAPPLE_CHECK failed: " << condition << " at " << file << ":" << line;
  if (!message.empty()) {
    os << " — " << message;
  }
  throw Error(os.str());
}

}  // namespace dapple::internal
