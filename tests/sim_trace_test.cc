#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/trace.h"

namespace dapple::sim {
namespace {

TaskGraph TwoStagePipeline() {
  TaskGraph g;
  // GPU0: FW m0, FW m1; GPU1: FW m0, BW m0, FW m1, BW m1; GPU0: BW...
  auto add = [&](TaskKind kind, ResourceId res, int micro, TimeSec dur) {
    Task t;
    t.kind = kind;
    t.resource = res;
    t.microbatch = micro;
    t.duration = dur;
    t.name = std::string(ToString(kind)) + std::to_string(micro);
    return g.AddTask(std::move(t));
  };
  const TaskId f00 = add(TaskKind::kForward, 0, 0, 1.0);
  const TaskId f01 = add(TaskKind::kForward, 0, 1, 1.0);
  const TaskId f10 = add(TaskKind::kForward, 1, 0, 1.0);
  const TaskId b10 = add(TaskKind::kBackward, 1, 0, 1.0);
  const TaskId b00 = add(TaskKind::kBackward, 0, 0, 1.0);
  g.AddEdge(f00, f01);
  g.AddEdge(f00, f10);
  g.AddEdge(f10, b10);
  g.AddEdge(b10, b00);
  return g;
}

TEST(Trace, GanttHasOneLanePerResource) {
  const TaskGraph g = TwoStagePipeline();
  const SimResult r = Engine::Run(g);
  const std::string gantt = RenderGantt(g, r, 40);
  EXPECT_NE(gantt.find("R0 "), std::string::npos);
  EXPECT_NE(gantt.find("R1 "), std::string::npos);
  // Forward glyphs are digits, backward glyphs letters.
  EXPECT_NE(gantt.find('0'), std::string::npos);
  EXPECT_NE(gantt.find('a'), std::string::npos);
}

TEST(Trace, GanttWidthClamped) {
  const TaskGraph g = TwoStagePipeline();
  const SimResult r = Engine::Run(g);
  // Absurdly small width must not crash or divide by zero.
  const std::string gantt = RenderGantt(g, r, 1);
  EXPECT_FALSE(gantt.empty());
}

TEST(Trace, MemoryTimelineShowsPeakAndBaseline) {
  MemoryPool pool;
  pool.SetBaseline(1_GiB);
  pool.Allocate(1.0, 1_GiB);
  pool.Free(2.0, 1_GiB);
  const std::string plot = RenderMemoryTimeline(pool, 3.0, 40, 4);
  EXPECT_NE(plot.find("peak 2.0GB"), std::string::npos);
  EXPECT_NE(plot.find("baseline 1.0GB"), std::string::npos);
  EXPECT_NE(plot.find('#'), std::string::npos);
}

TEST(Trace, MemoryTimelineEmptyPool) {
  MemoryPool pool;
  const std::string plot = RenderMemoryTimeline(pool, 1.0);
  EXPECT_NE(plot.find("peak 0B"), std::string::npos);
}

TEST(Trace, GlyphsForAllKinds) {
  TaskGraph g;
  int res = 0;
  for (TaskKind kind : {TaskKind::kForward, TaskKind::kBackward, TaskKind::kRecompute,
                        TaskKind::kTransfer, TaskKind::kAllReduce, TaskKind::kApply}) {
    Task t;
    t.kind = kind;
    t.resource = res++;
    t.duration = 1.0;
    t.microbatch = 3;
    t.name = ToString(kind);
    g.AddTask(std::move(t));
  }
  const SimResult r = Engine::Run(g);
  const std::string gantt = RenderGantt(g, r, 20);
  EXPECT_NE(gantt.find('3'), std::string::npos);   // FW micro 3
  EXPECT_NE(gantt.find('d'), std::string::npos);   // BW micro 3 -> 'd'
  EXPECT_NE(gantt.find('r'), std::string::npos);   // recompute
  EXPECT_NE(gantt.find('-'), std::string::npos);   // transfer
  EXPECT_NE(gantt.find('#'), std::string::npos);   // allreduce
  EXPECT_NE(gantt.find('='), std::string::npos);   // apply
}

TEST(TaskKinds, ComputeClassification) {
  EXPECT_TRUE(IsComputeKind(TaskKind::kForward));
  EXPECT_TRUE(IsComputeKind(TaskKind::kBackward));
  EXPECT_TRUE(IsComputeKind(TaskKind::kRecompute));
  EXPECT_TRUE(IsComputeKind(TaskKind::kApply));
  EXPECT_FALSE(IsComputeKind(TaskKind::kTransfer));
  EXPECT_FALSE(IsComputeKind(TaskKind::kAllReduce));
}

}  // namespace
}  // namespace dapple::sim
