#include <gtest/gtest.h>

#include <cstdio>

#include "common/error.h"
#include "model/zoo.h"
#include "planner/plan_io.h"

namespace dapple::planner {
namespace {

ParallelPlan SamplePlan() {
  ParallelPlan plan;
  plan.model = "BERT-48";
  StagePlan s0, s1;
  s0.layer_begin = 0;
  s0.layer_end = 24;
  s0.devices = topo::DeviceSet::Range(0, 8);
  s1.layer_begin = 24;
  s1.layer_end = 48;
  s1.devices = topo::DeviceSet({8, 10, 12, 14});
  plan.stages = {s0, s1};
  return plan;
}

TEST(PlanIo, RoundTripPreservesEverything) {
  const ParallelPlan plan = SamplePlan();
  const ParallelPlan back = ParsePlan(SerializePlan(plan));
  EXPECT_EQ(back.model, plan.model);
  ASSERT_EQ(back.num_stages(), plan.num_stages());
  for (int i = 0; i < plan.num_stages(); ++i) {
    EXPECT_EQ(back.stages[static_cast<std::size_t>(i)].layer_begin,
              plan.stages[static_cast<std::size_t>(i)].layer_begin);
    EXPECT_EQ(back.stages[static_cast<std::size_t>(i)].layer_end,
              plan.stages[static_cast<std::size_t>(i)].layer_end);
    EXPECT_EQ(back.stages[static_cast<std::size_t>(i)].devices,
              plan.stages[static_cast<std::size_t>(i)].devices);
  }
  // Parsed plan validates against the real model.
  back.Validate(model::MakeBert48());
}

TEST(PlanIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "model: synthetic-4\n"
      "\n"
      "stage: layers 0 4 devices 0 1  # trailing comment\n";
  const ParallelPlan plan = ParsePlan(text);
  EXPECT_EQ(plan.model, "synthetic-4");
  ASSERT_EQ(plan.num_stages(), 1);
  EXPECT_EQ(plan.stages[0].devices.size(), 2);
}

TEST(PlanIo, MalformedInputsRejectedWithLineNumbers) {
  EXPECT_THROW(ParsePlan(""), Error);
  EXPECT_THROW(ParsePlan("model: x\n"), Error);                       // no stages
  EXPECT_THROW(ParsePlan("stage: layers 0 4 devices 0\n"), Error);    // no model
  EXPECT_THROW(ParsePlan("model: x\nbogus: 1\n"), Error);             // directive
  EXPECT_THROW(ParsePlan("model: x\nstage: layers 0 devices 0\n"), Error);
  EXPECT_THROW(ParsePlan("model: x\nstage: layers 0 4 devices\n"), Error);
  try {
    ParsePlan("model: x\nstage: layers 0 4 gadgets 0\n");
    FAIL();
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(PlanIo, FileRoundTrip) {
  const std::string path = "/tmp/dapple_plan_test.txt";
  SavePlan(path, SamplePlan());
  const ParallelPlan back = LoadPlan(path);
  EXPECT_EQ(back.model, "BERT-48");
  EXPECT_EQ(back.num_stages(), 2);
  std::remove(path.c_str());
  EXPECT_THROW(LoadPlan("/no/such/file.plan"), Error);
  EXPECT_THROW(SavePlan("/no/such/dir/x.plan", SamplePlan()), Error);
}

}  // namespace
}  // namespace dapple::planner
