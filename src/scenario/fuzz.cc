#include "scenario/fuzz.h"

#include <sstream>
#include <utility>

#include "common/rng.h"
#include "sim/batch.h"
#include "sim/engine.h"

namespace dapple::scenario {

namespace {

/// Salts for the scenario fuzz side-streams. Unique among the repository's
/// stream salts (see check/fuzz.cc and scenario/stream.cc), so scenario
/// sweeps share seed ranges with every other fuzz mode without correlating.
constexpr std::uint64_t kScenarioStreamSalt = 0xa54ff53a5f1d36f1ull;
constexpr std::uint64_t kScenarioKindSalt = 0x3c6ef372fe94f82bull;

}  // namespace

std::string ScenarioFuzzCase::Describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " model=" << model.num_layers() << "L cluster=" << cluster.name()
     << "(" << cluster.num_devices() << ") plan=" << plan.ToString()
     << " churn=" << ToString(churn) << " policy=" << fault::ToString(policy)
     << " horizon=" << churn_options.horizon
     << " schedule=" << runtime::ToString(options.build.schedule.kind);
  return os.str();
}

ScenarioFuzzCase MakeScenarioFuzzCase(std::uint64_t seed) {
  // The topology, plan, schedule family and cost knobs come from the fault
  // fuzz stream; its script and policy are discarded and redrawn below from
  // scenario-salted streams (the fault-fuzz pins never shift, and neither
  // do these when the fault stream grows new draws).
  check::FaultFuzzCase base = check::MakeFaultFuzzCase(seed);

  ScenarioFuzzCase c{seed,
                     std::move(base.model),
                     std::move(base.cluster),
                     std::move(base.plan),
                     ChurnModel::kSpotChurn,
                     ChurnOptions{},
                     fault::RecoveryPolicy::kSyncStall,
                     std::move(base.options)};

  Rng rng(seed * 0x9e3779b97f4a7c15ull + kScenarioStreamSalt);
  c.churn_options.horizon = rng.Uniform(5.0, 25.0);
  c.churn_options.preempt_rate = rng.Uniform(0.02, 0.3);
  c.churn_options.min_outage = rng.Uniform(0.5, 2.0);
  c.churn_options.max_outage = c.churn_options.min_outage + rng.Uniform(0.5, 5.0);
  c.churn_options.rejoin_probability = rng.Uniform(0.3, 1.0);
  c.churn_options.maintenance_period = rng.Uniform(2.0, 8.0);
  c.churn_options.drain_duration = rng.Uniform(0.5, 3.0);
  c.churn_options.slowdown_probability = rng.Bernoulli(0.3) ? rng.Uniform(0.1, 0.5) : 0.0;

  Rng kind_rng(seed * 0x9e3779b97f4a7c15ull + kScenarioKindSalt);
  c.churn = kind_rng.Bernoulli(0.5) ? ChurnModel::kSpotChurn
                                    : ChurnModel::kRollingMaintenance;
  const std::vector<fault::RecoveryPolicy> policies = fault::AllRecoveryPolicies();
  c.policy = policies[static_cast<std::size_t>(
      kind_rng.UniformInt(0, static_cast<std::int64_t>(policies.size()) - 1))];

  c.options.horizon = c.churn_options.horizon;
  return c;
}

std::string ScenarioFuzzOutcome::Summary() const {
  if (ok()) return "";
  std::ostringstream os;
  os << "scenario fuzz case failed (reproduce with seed " << seed << "):\n"
     << report.ToString();
  return os.str();
}

ScenarioFuzzOutcome RunScenarioFuzzCase(const ScenarioFuzzCase& c) {
  ScenarioFuzzOutcome out;
  out.seed = c.seed;
  out.churn = c.churn;
  out.policy = c.policy;

  // The churn DSL round trip must be a fixed point: parse(print(script))
  // prints identically.
  try {
    const fault::FaultScript script =
        GenerateChurnScript(c.seed, c.cluster, c.churn, c.churn_options);
    const std::string printed = script.ToString();
    const std::string reprinted = fault::ParseFaultScript(printed).ToString();
    if (printed != reprinted) {
      out.report.violations.push_back(
          {"scenario-roundtrip", "churn script round trip drifted:\n  printed:   " +
                                     printed + "\n  reprinted: " + reprinted});
    }
  } catch (const std::exception& e) {
    out.report.violations.push_back(
        {"exception", std::string("churn script generation threw: ") + e.what()});
    return out;
  }

  EpisodeOptions options;
  options.seed = c.seed;
  options.churn = c.churn;
  options.churn_options = c.churn_options;
  options.policy = c.policy;
  options.fault = c.options;
  // Every pipeline the episode builds — initial, checkpoint-remapped,
  // elastically replanned, scale-up — must satisfy the full invariant set
  // and run without a single OOM task when executed fault-free.
  options.fault.pipeline_observer = [&](const runtime::BuiltPipeline& built,
                                        const planner::ParallelPlan& plan,
                                        const topo::Cluster& cluster) {
    (void)cluster;
    const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
    check::ScheduleValidator validator(plan, built.options);
    check::ValidationReport report = validator.Validate(built, result);
    for (check::Violation& v : report.violations) {
      v.message = "[plan " + plan.ToString() + "] " + v.message;
      out.report.violations.push_back(std::move(v));
    }
    if (result.AnyOom()) {
      out.report.violations.push_back(
          {"scenario-oom", "[plan " + plan.ToString() + "] episode pipeline OOMed"});
    }
    ++out.pipelines_validated;
  };

  try {
    const EpisodeReport report = RunEpisode(c.model, c.cluster, c.plan, options);
    out.iterations_completed = report.fault.iterations_completed;
    out.preemptions = report.preemptions;
    out.rejoins = report.rejoins;
    out.scale_ups = report.fault.scale_ups;

    if (report.preemptions < 1) {
      out.report.violations.push_back(
          {"scenario-stream", "churn generator produced an episode with no preemption"});
    }
    if (report.fault.max_scale_up_rollback > c.options.checkpoint_period) {
      out.report.violations.push_back(
          {"scenario-rollback",
           "scale-up cutover rolled back " +
               std::to_string(report.fault.max_scale_up_rollback) +
               " iterations, past the checkpoint period " +
               std::to_string(c.options.checkpoint_period)});
    }
    if (report.fault.iterations_completed < 0 || report.fault.goodput < 0.0) {
      out.report.violations.push_back(
          {"scenario-report", "negative progress in the episode report"});
    }
    TimeSec previous_end = 0.0;
    for (const fault::TimelineRow& row : report.fault.timeline) {
      if (row.end < row.start) {
        out.report.violations.push_back(
            {"scenario-timeline", row.kind + " row runs backwards"});
      }
      if (row.start < previous_end - 1e-9) {
        out.report.violations.push_back(
            {"scenario-timeline", row.kind + " row overlaps its predecessor"});
      }
      previous_end = row.end;
    }
  } catch (const std::exception& e) {
    out.report.violations.push_back(
        {"exception", std::string("episode threw: ") + e.what()});
  }
  return out;
}

std::vector<ScenarioFuzzOutcome> RunScenarioFuzzSweep(
    const std::vector<std::uint64_t>& seeds, int threads) {
  sim::BatchRunner runner({.threads = threads});
  return runner.Map<ScenarioFuzzOutcome>(static_cast<int>(seeds.size()), [&](int i) {
    return RunScenarioFuzzSeed(seeds[static_cast<std::size_t>(i)]);
  });
}

}  // namespace dapple::scenario
