#include <gtest/gtest.h>

#include "common/error.h"
#include "train/tensor.h"

namespace dapple::train {
namespace {

TEST(Tensor, ConstructionAndAccess) {
  Tensor t(2, 3, 1.5f);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  EXPECT_FLOAT_EQ(t.at(1, 2), 1.5f);
  t.at(0, 0) = 7.0f;
  EXPECT_FLOAT_EQ(t.at(0, 0), 7.0f);
  EXPECT_THROW(t.at(2, 0), Error);
  EXPECT_THROW(t.at(0, 3), Error);
}

TEST(Tensor, MatMulKnownValues) {
  Tensor a(2, 3);
  Tensor b(3, 2);
  // a = [[1,2,3],[4,5,6]]; b = [[7,8],[9,10],[11,12]].
  float av[] = {1, 2, 3, 4, 5, 6};
  float bv[] = {7, 8, 9, 10, 11, 12};
  std::copy(av, av + 6, a.data());
  std::copy(bv, bv + 6, b.data());
  const Tensor c = a.MatMul(b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
  EXPECT_THROW(a.MatMul(a), Error);
}

TEST(Tensor, TransposeRoundTrip) {
  Rng rng(3);
  const Tensor t = Tensor::Random(3, 5, rng, 1.0f);
  const Tensor tt = t.Transposed().Transposed();
  EXPECT_EQ(Tensor::MaxAbsDiff(t, tt), 0.0f);
  EXPECT_EQ(t.Transposed().rows(), 5u);
}

TEST(Tensor, SliceAndStackInverse) {
  Rng rng(4);
  const Tensor t = Tensor::Random(6, 4, rng, 1.0f);
  std::vector<Tensor> parts;
  for (std::size_t r = 0; r < 6; r += 2) parts.push_back(t.RowSlice(r, r + 2));
  const Tensor back = Tensor::VStack(parts);
  EXPECT_EQ(Tensor::MaxAbsDiff(t, back), 0.0f);
  EXPECT_THROW(t.RowSlice(4, 8), Error);
  EXPECT_THROW(Tensor::VStack({}), Error);
}

TEST(Tensor, AddScaleFill) {
  Tensor a(2, 2, 1.0f);
  Tensor b(2, 2, 2.0f);
  a.AddInPlace(b).Scale(3.0f);
  EXPECT_FLOAT_EQ(a.at(1, 1), 9.0f);
  a.Fill(0.5f);
  EXPECT_FLOAT_EQ(a.at(0, 1), 0.5f);
  EXPECT_THROW(a.AddInPlace(Tensor(3, 3)), Error);
}

TEST(Tensor, RandomIsDeterministicPerSeed) {
  Rng r1(9), r2(9);
  const Tensor a = Tensor::Random(4, 4, r1, 0.5f);
  const Tensor b = Tensor::Random(4, 4, r2, 0.5f);
  EXPECT_EQ(Tensor::MaxAbsDiff(a, b), 0.0f);
}

TEST(Tensor, SquaredNorm) {
  Tensor t(1, 3);
  t.at(0, 0) = 1;
  t.at(0, 1) = 2;
  t.at(0, 2) = 2;
  EXPECT_DOUBLE_EQ(t.SquaredNorm(), 9.0);
}

}  // namespace
}  // namespace dapple::train
