// Per-device memory pool accounting. Tracks current/peak usage over
// simulated time plus an explicit (time, bytes) trajectory so benches can
// reproduce the paper's Fig. 3(c) memory-over-time curves for GPipe vs
// DAPPLE.
#pragma once

#include <vector>

#include "common/units.h"

namespace dapple::sim {

/// One observed change of a pool's resident bytes.
struct MemorySample {
  TimeSec time = 0.0;
  Bytes bytes = 0;
};

/// Memory pool with a static baseline (weights + optimizer slots) and
/// dynamic activation traffic applied by the engine as tasks start/finish.
class MemoryPool {
 public:
  /// `capacity` of 0 means unlimited (no OOM detection).
  explicit MemoryPool(Bytes capacity = 0);

  /// Sets the always-resident bytes (parameters, gradients, optimizer
  /// state). Must be called before any traffic.
  void SetBaseline(Bytes bytes);

  void Allocate(TimeSec now, Bytes bytes);
  void Free(TimeSec now, Bytes bytes);

  Bytes baseline() const { return baseline_; }
  Bytes current() const { return current_; }
  Bytes peak() const { return peak_; }
  /// First simulated instant the peak was resident. Tracked incrementally —
  /// O(1) per alloc/free — so reports never rescan the timeline. The instant
  /// counts even when the bytes are freed at the same timestamp (a transient
  /// spike coalesced away in timeline()): the high-water mark is about what
  /// the device must physically hold, however briefly.
  TimeSec peak_time() const { return peak_time_; }
  Bytes capacity() const { return capacity_; }

  /// True iff the peak ever exceeded a nonzero capacity.
  bool oom() const { return capacity_ != 0 && peak_ > capacity_; }

  /// Full usage trajectory, one sample per change (plus the initial
  /// baseline sample at t=0).
  const std::vector<MemorySample>& timeline() const { return timeline_; }

 private:
  void Record(TimeSec now);

  Bytes capacity_;
  Bytes baseline_ = 0;
  Bytes current_ = 0;
  Bytes peak_ = 0;
  TimeSec peak_time_ = 0.0;
  std::vector<MemorySample> timeline_;
};

}  // namespace dapple::sim
