// dapple_fuzz — randomized differential tester for the schedule stack.
//
//   dapple_fuzz [--iterations N] [--seed BASE] [--verbose] [--threads N]
//       Run N seeded cases (default 200) starting at BASE (default 0);
//       print a summary and exit non-zero on the first failure (lowest
//       failing seed). --threads fans cases across a sim::BatchRunner;
//       every summary line and failure report is identical at any N.
//   dapple_fuzz --repro SEED
//       Re-run one failing seed with its full case description.
//   dapple_fuzz --faults [--iterations N] [--seed BASE] [--verbose]
//   dapple_fuzz --faults --repro SEED
//       Fault-recovery mode: each seed derives a random fault script and a
//       recovery policy; every pipeline the experiment builds (initial,
//       checkpoint-remapped, replanned) runs the full validator invariant
//       set.
//   dapple_fuzz --memory-cap [--iterations N] [--seed BASE] [--verbose]
//   dapple_fuzz --memory-cap --repro SEED
//       Memory-cap mode: each seed derives a random model, schedule family
//       and a per-device cap scaled around the family's uncapped peak; the
//       planner must either declare the cap infeasible or emit a plan whose
//       capped simulation passes the validator with zero OOM violations.
//   dapple_fuzz --ranking [--iterations N] [--seed BASE] [--verbose]
//               [--prefilter=off|auto]
//   dapple_fuzz --ranking --repro SEED
//       Candidate-ranking mode: each seed derives a fixed workload plus a
//       pool of random DAPPLE split-mode plans; the analytic pre-filter
//       must pick a winner whose simulated makespan equals the best over
//       every candidate simulated in full (100% rank-1 recall).
//       --prefilter=off simulates everything in both legs (baseline).
//   dapple_fuzz --scenario [--iterations N] [--seed BASE] [--verbose]
//   dapple_fuzz --scenario --repro SEED
//       Scenario mode: each seed derives a long-horizon churn episode
//       (uniform over churn model x recovery policy x schedule family, on
//       scenario-salted side-streams); every pipeline the episode builds —
//       initial, remapped, replanned, scale-up — must pass the validator
//       with zero OOM tasks, the churn script must round-trip through the
//       DSL, and elastic-up rollbacks must stay checkpoint-bounded.
//
// Each case derives entirely from its 64-bit seed, so any failure printed
// by the batch mode reproduces exactly with --repro.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "check/fuzz.h"
#include "scenario/fuzz.h"

using namespace dapple;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dapple_fuzz [--faults|--memory-cap|--ranking|--scenario]\n"
               "              [--iterations N] [--seed BASE] [--verbose]\n"
               "              [--threads N]  (0 = hardware concurrency; results\n"
               "               are identical at every N)\n"
               "  dapple_fuzz --ranking [--prefilter=off|auto]\n"
               "  dapple_fuzz [--faults|--memory-cap|--ranking|--scenario] --repro SEED\n");
  return 2;
}

std::vector<std::uint64_t> SeedRange(std::uint64_t base, long iterations) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(static_cast<std::size_t>(iterations));
  for (long i = 0; i < iterations; ++i) seeds.push_back(base + static_cast<std::uint64_t>(i));
  return seeds;
}

int ReproFaults(std::uint64_t seed) {
  const check::FaultFuzzCase c = check::MakeFaultFuzzCase(seed);
  std::printf("%s\n", c.Describe().c_str());
  const check::FaultFuzzOutcome out = check::RunFaultFuzzCase(c);
  if (!out.ok()) {
    std::printf("%s", out.Summary().c_str());
    return 1;
  }
  std::printf("ok: %d pipelines validated, %d iterations, %d replans, %d restores\n",
              out.pipelines_validated, out.iterations_completed, out.replans, out.restores);
  return 0;
}

int RunFaultSweep(std::uint64_t base, long iterations, bool verbose, int threads) {
  const std::vector<std::uint64_t> seeds = SeedRange(base, iterations);
  if (verbose) {
    for (std::uint64_t seed : seeds) {
      std::printf("%s\n", check::MakeFaultFuzzCase(seed).Describe().c_str());
    }
  }
  const std::vector<check::FaultFuzzOutcome> outcomes =
      check::RunFaultFuzzSweep(seeds, threads);
  long pipelines = 0, replans = 0, restores = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const check::FaultFuzzOutcome& out = outcomes[i];
    if (!out.ok()) {
      std::fprintf(stderr, "%s  case: %s\n", out.Summary().c_str(),
                   check::MakeFaultFuzzCase(seeds[i]).Describe().c_str());
      return 1;
    }
    pipelines += out.pipelines_validated;
    replans += out.replans;
    restores += out.restores;
  }
  std::printf("%ld fault cases ok (seeds %llu..%llu): %ld pipelines validated, "
              "%ld replans, %ld restores\n",
              iterations, static_cast<unsigned long long>(base),
              static_cast<unsigned long long>(base + iterations - 1), pipelines, replans,
              restores);
  return 0;
}

int ReproMemoryCap(std::uint64_t seed) {
  const check::MemoryCapFuzzCase c = check::MakeMemoryCapFuzzCase(seed);
  std::printf("%s\n", c.Describe().c_str());
  const check::MemoryCapFuzzOutcome out = check::RunMemoryCapFuzzCase(c);
  if (!out.ok()) {
    std::printf("%s", out.Summary().c_str());
    return 1;
  }
  if (!out.planned) {
    std::printf("ok: declared infeasible (%s)\n", out.infeasible_reason.c_str());
  } else {
    std::printf("ok: fits cap %s (analytic peak %s, simulated peak %s, "
                "%d stages recompute)\n",
                FormatBytes(out.memory_cap).c_str(), FormatBytes(out.analytic_peak).c_str(),
                FormatBytes(out.simulated_peak).c_str(), out.recompute_stages);
  }
  return 0;
}

int RunMemoryCapSweep(std::uint64_t base, long iterations, bool verbose, int threads) {
  const std::vector<std::uint64_t> seeds = SeedRange(base, iterations);
  if (verbose) {
    for (std::uint64_t seed : seeds) {
      std::printf("%s\n", check::MakeMemoryCapFuzzCase(seed).Describe().c_str());
    }
  }
  const std::vector<check::MemoryCapFuzzOutcome> outcomes =
      check::RunMemoryCapFuzzSweep(seeds, threads);
  long planned = 0, infeasible = 0, with_recompute = 0;
  // Per-kind case counts, so a sweep cannot silently skip a family.
  const auto& all_kinds = runtime::AllScheduleKinds();
  std::vector<long> kind_counts(all_kinds.size(), 0);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const check::MemoryCapFuzzOutcome& out = outcomes[i];
    if (!out.ok()) {
      std::fprintf(stderr, "%s  case: %s\n", out.Summary().c_str(),
                   check::MakeMemoryCapFuzzCase(seeds[i]).Describe().c_str());
      return 1;
    }
    planned += out.planned ? 1 : 0;
    infeasible += out.planned ? 0 : 1;
    with_recompute += out.recompute_stages > 0 ? 1 : 0;
    for (std::size_t k = 0; k < all_kinds.size(); ++k) {
      if (out.kind == all_kinds[k]) ++kind_counts[k];
    }
  }
  std::printf("%ld memory-cap cases ok (seeds %llu..%llu): %ld planned fit, "
              "%ld declared infeasible, %ld used recompute, 0 OOM\n",
              iterations, static_cast<unsigned long long>(base),
              static_cast<unsigned long long>(base + iterations - 1), planned, infeasible,
              with_recompute);
  std::printf("cases per schedule kind:");
  for (std::size_t k = 0; k < all_kinds.size(); ++k) {
    std::printf("%s %s=%ld", k ? "," : "", runtime::ToString(all_kinds[k]),
                kind_counts[k]);
  }
  std::printf("\n");
  return 0;
}

int ReproRanking(std::uint64_t seed, bool prefilter) {
  const check::RankingFuzzCase c = check::MakeRankingFuzzCase(seed);
  std::printf("%s\n", c.Describe().c_str());
  const check::RankingFuzzOutcome out = check::RunRankingFuzzCase(c, prefilter);
  if (!out.ok()) {
    std::printf("%s\n", out.Summary().c_str());
    return 1;
  }
  std::printf("ok: simulated %d/%d candidates, best #%d makespan %.6fs "
              "(full sweep agrees: #%d, %.6fs)\n",
              out.num_simulated, out.num_candidates, out.best_prefiltered,
              out.best_prefiltered_makespan, out.best_full, out.best_full_makespan);
  return 0;
}

int RunRankingSweep(std::uint64_t base, long iterations, bool verbose, int threads,
                    bool prefilter) {
  const std::vector<std::uint64_t> seeds = SeedRange(base, iterations);
  if (verbose) {
    for (std::uint64_t seed : seeds) {
      std::printf("%s\n", check::MakeRankingFuzzCase(seed).Describe().c_str());
    }
  }
  const std::vector<check::RankingFuzzOutcome> outcomes =
      check::RunRankingFuzzSweep(seeds, threads, prefilter);
  long candidates = 0, simulated = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const check::RankingFuzzOutcome& out = outcomes[i];
    if (!out.ok()) {
      std::fprintf(stderr, "%s  case: %s\n", out.Summary().c_str(),
                   check::MakeRankingFuzzCase(seeds[i]).Describe().c_str());
      return 1;
    }
    candidates += out.num_candidates;
    simulated += out.num_simulated;
    if (verbose) {
      std::printf("seed %llu: simulated %d/%d, best makespan %.6fs\n",
                  static_cast<unsigned long long>(seeds[i]), out.num_simulated,
                  out.num_candidates, out.best_full_makespan);
    }
  }
  std::printf("%ld ranking cases ok (seeds %llu..%llu): 100%% rank-1 recall, "
              "%ld/%ld candidates simulated (%.1f%% skipped by the %s)\n",
              iterations, static_cast<unsigned long long>(base),
              static_cast<unsigned long long>(base + iterations - 1), simulated,
              candidates,
              candidates > 0
                  ? 100.0 * static_cast<double>(candidates - simulated) /
                        static_cast<double>(candidates)
                  : 0.0,
              prefilter ? "analytic pre-filter" : "feasibility check only");
  return 0;
}

int ReproScenario(std::uint64_t seed) {
  const scenario::ScenarioFuzzCase c = scenario::MakeScenarioFuzzCase(seed);
  std::printf("%s\n", c.Describe().c_str());
  const scenario::ScenarioFuzzOutcome out = scenario::RunScenarioFuzzCase(c);
  if (!out.ok()) {
    std::printf("%s", out.Summary().c_str());
    return 1;
  }
  std::printf("ok: %d pipelines validated, %d iterations, %d preemptions, "
              "%d rejoins, %d scale-ups\n",
              out.pipelines_validated, out.iterations_completed, out.preemptions,
              out.rejoins, out.scale_ups);
  return 0;
}

int RunScenarioSweep(std::uint64_t base, long iterations, bool verbose, int threads) {
  const std::vector<std::uint64_t> seeds = SeedRange(base, iterations);
  if (verbose) {
    for (std::uint64_t seed : seeds) {
      std::printf("%s\n", scenario::MakeScenarioFuzzCase(seed).Describe().c_str());
    }
  }
  const std::vector<scenario::ScenarioFuzzOutcome> outcomes =
      scenario::RunScenarioFuzzSweep(seeds, threads);
  long pipelines = 0, preemptions = 0, rejoins = 0, scale_ups = 0;
  // Per-mode and per-policy case counts, so a sweep cannot silently skip a
  // churn model or a policy.
  long spot = 0, rolling = 0;
  const std::vector<fault::RecoveryPolicy> policies = fault::AllRecoveryPolicies();
  std::vector<long> policy_counts(policies.size(), 0);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const scenario::ScenarioFuzzOutcome& out = outcomes[i];
    if (!out.ok()) {
      std::fprintf(stderr, "%s  case: %s\n", out.Summary().c_str(),
                   scenario::MakeScenarioFuzzCase(seeds[i]).Describe().c_str());
      return 1;
    }
    pipelines += out.pipelines_validated;
    preemptions += out.preemptions;
    rejoins += out.rejoins;
    scale_ups += out.scale_ups;
    (out.churn == scenario::ChurnModel::kSpotChurn ? spot : rolling) += 1;
    for (std::size_t p = 0; p < policies.size(); ++p) {
      if (out.policy == policies[p]) ++policy_counts[p];
    }
  }
  std::printf("%ld scenario cases ok (seeds %llu..%llu): %ld pipelines validated, "
              "%ld preemptions, %ld rejoins, %ld scale-ups, 0 OOM\n",
              iterations, static_cast<unsigned long long>(base),
              static_cast<unsigned long long>(base + iterations - 1), pipelines,
              preemptions, rejoins, scale_ups);
  std::printf("cases per churn model: spot=%ld, rolling=%ld; per policy:", spot, rolling);
  for (std::size_t p = 0; p < policies.size(); ++p) {
    std::printf("%s %s=%ld", p ? "," : "", fault::ToString(policies[p]),
                policy_counts[p]);
  }
  std::printf("\n");
  return 0;
}

int Repro(std::uint64_t seed) {
  const check::FuzzCase c = check::MakeFuzzCase(seed);
  std::printf("%s\n", c.Describe().c_str());
  const check::FuzzOutcome out = check::RunFuzzCase(c);
  if (!out.ok()) {
    std::printf("%s", out.Summary().c_str());
    return 1;
  }
  std::printf("ok: %d tasks, makespan %.6fs", out.num_tasks, out.simulated_makespan);
  if (out.checked_latency) std::printf(", analytic %.6fs", out.analytic_latency);
  if (out.checked_peak) {
    std::printf(", peak %llu B (M-independent)",
                static_cast<unsigned long long>(out.peak_at_m));
  }
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t base = 0;
  long iterations = 200;
  bool verbose = false;
  bool faults = false;
  bool memory_cap = false;
  bool ranking = false;
  bool scenario_mode = false;
  bool prefilter = true;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--faults") == 0) {
      faults = true;
    } else if (std::strcmp(argv[i], "--memory-cap") == 0) {
      memory_cap = true;
    } else if (std::strcmp(argv[i], "--ranking") == 0) {
      ranking = true;
    } else if (std::strcmp(argv[i], "--scenario") == 0) {
      scenario_mode = true;
    } else if (std::strcmp(argv[i], "--prefilter=off") == 0) {
      prefilter = false;
    } else if (std::strcmp(argv[i], "--prefilter=auto") == 0) {
      prefilter = true;
    } else if (std::strcmp(argv[i], "--repro") == 0 && i + 1 < argc) {
      const std::uint64_t seed = std::strtoull(argv[++i], nullptr, 10);
      // The mode flag may follow --repro; scan the rest before dispatching.
      for (int j = i + 1; j < argc; ++j) {
        if (std::strcmp(argv[j], "--faults") == 0) faults = true;
        if (std::strcmp(argv[j], "--memory-cap") == 0) memory_cap = true;
        if (std::strcmp(argv[j], "--ranking") == 0) ranking = true;
        if (std::strcmp(argv[j], "--scenario") == 0) scenario_mode = true;
        if (std::strcmp(argv[j], "--prefilter=off") == 0) prefilter = false;
      }
      if (scenario_mode) return ReproScenario(seed);
      if (ranking) return ReproRanking(seed, prefilter);
      if (memory_cap) return ReproMemoryCap(seed);
      return faults ? ReproFaults(seed) : Repro(seed);
    } else if (std::strcmp(argv[i], "--iterations") == 0 && i + 1 < argc) {
      iterations = std::atol(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      base = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else {
      return Usage();
    }
  }
  if (iterations <= 0 || threads < 0 ||
      (static_cast<int>(faults) + static_cast<int>(memory_cap) +
       static_cast<int>(ranking) + static_cast<int>(scenario_mode)) > 1) {
    return Usage();
  }
  if (scenario_mode) return RunScenarioSweep(base, iterations, verbose, threads);
  if (ranking) return RunRankingSweep(base, iterations, verbose, threads, prefilter);
  if (memory_cap) return RunMemoryCapSweep(base, iterations, verbose, threads);
  if (faults) return RunFaultSweep(base, iterations, verbose, threads);

  // Tolerance calibration: track the worst observed analytic/sim ratio per
  // plan family (the constants in check/fuzz.h are pinned from sweeps of
  // this tool) and the worst sim/analytic ratio.
  const std::vector<std::uint64_t> seeds = SeedRange(base, iterations);
  if (verbose) {
    for (std::uint64_t seed : seeds) {
      std::printf("%s\n", check::MakeFuzzCase(seed).Describe().c_str());
    }
  }
  const std::vector<check::FuzzOutcome> outcomes = check::RunFuzzSweep(seeds, threads);
  long latency_checked = 0, peak_checked = 0;
  double max_over_single = 0.0, max_over_multi = 0.0, max_under = 0.0;
  std::uint64_t worst_multi_seed = 0;
  // Per-kind case counts, so a sweep cannot silently skip a family.
  const auto& all_kinds = runtime::AllScheduleKinds();
  std::vector<long> kind_counts(all_kinds.size(), 0);
  // Aggregation runs over the slot-indexed outcomes in seed order, so the
  // calibration stats never depend on worker scheduling.
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const std::uint64_t seed = seeds[i];
    const check::FuzzOutcome& out = outcomes[i];
    if (!out.ok()) {
      std::fprintf(stderr, "%s  case: %s\n", out.Summary().c_str(),
                   check::MakeFuzzCase(seed).Describe().c_str());
      return 1;
    }
    latency_checked += out.checked_latency ? 1 : 0;
    peak_checked += out.checked_peak ? 1 : 0;
    for (std::size_t k = 0; k < all_kinds.size(); ++k) {
      if (out.kind == all_kinds[k]) ++kind_counts[k];
    }
    if (out.checked_latency && out.simulated_makespan > 0.0 && out.analytic_latency > 0.0) {
      const double over = out.analytic_latency / out.simulated_makespan;
      if (out.num_stages == 1) {
        max_over_single = std::max(max_over_single, over);
      } else if (over > max_over_multi) {
        max_over_multi = over;
        worst_multi_seed = seed;
      }
      max_under = std::max(max_under, out.simulated_makespan / out.analytic_latency);
    }
  }
  std::printf("%ld cases ok (seeds %llu..%llu): latency bracket on %ld, "
              "peak-vs-M differential on %ld\n",
              iterations, static_cast<unsigned long long>(base),
              static_cast<unsigned long long>(base + iterations - 1),
              latency_checked, peak_checked);
  std::printf("cases per schedule kind:");
  for (std::size_t k = 0; k < all_kinds.size(); ++k) {
    std::printf("%s %s=%ld", k ? "," : "", runtime::ToString(all_kinds[k]),
                kind_counts[k]);
  }
  std::printf("\n");
  if (latency_checked > 0) {
    std::printf("max analytic/sim: %.4f (single-stage), %.4f (multi-stage, seed %llu); "
                "max sim/analytic: %.4f\n",
                max_over_single, max_over_multi,
                static_cast<unsigned long long>(worst_multi_seed), max_under);
  }
  return 0;
}
