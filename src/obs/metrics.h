// Process-wide metrics registry: named counters, gauges and histograms fed
// by the engine (tasks executed, simulations run) and the planner
// (candidates evaluated/pruned per DP level, estimator calls). Cheap enough
// to stay always-on — counters are single atomics — and exported as JSON or
// aligned-column text by the iteration-report layer and `dapple report`.
//
// Instruments may be created from concurrent threads (the planner evaluates
// candidates on a thread pool); updates are lock-free after creation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace dapple::obs {

/// Monotonically increasing integer metric.
class Counter {
 public:
  void Increment(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written floating-point metric.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Count/sum/min/max summary of observed samples plus a fixed logarithmic
/// bucket grid for quantile estimates. Enough to answer "how many, how big
/// on average, what were the extremes, where do p50/p95/p99 sit" without
/// storing the stream; full distributions belong in traces, not metrics.
class Histogram {
 public:
  /// Fixed log-scale grid: kNumBuckets buckets spanning [kBucketMin,
  /// kBucketMax) with ~14% per-bucket resolution, plus implicit under/
  /// overflow at the ends. Covers nanoseconds through days when samples
  /// are seconds — the serve daemon's request-latency range and then some.
  static constexpr int kNumBuckets = 256;
  static constexpr double kBucketMin = 1e-9;
  static constexpr double kBucketMax = 1e6;

  void Observe(double v);

  std::int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Estimated q-th quantile (0 <= q <= 1) from the bucket grid: the upper
  /// boundary of the bucket holding the rank, clamped to the exact observed
  /// [min, max]. Within one bucket width (~14%) of the true order
  /// statistic; 0 when nothing was observed.
  double Quantile(double q) const;

 private:
  /// Bucket index of one sample (clamped to the grid's ends).
  static int BucketOf(double v);

  mutable std::mutex mu_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::int64_t buckets_[kNumBuckets] = {};
};

/// Named instrument registry. Lookup creates on first use; instruments live
/// for the registry's lifetime, so callers may cache the returned reference.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Drops every instrument (tests isolate themselves with this).
  void Reset();

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,...}}},
  /// keys sorted, deterministic for a deterministic workload.
  std::string ToJson() const;

  /// Aligned `name value` lines grouped by instrument kind.
  std::string ToText() const;

  /// The process-wide registry the library's built-in instrumentation feeds.
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace dapple::obs
