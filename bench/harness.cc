#include "harness.h"

#include <cstdio>

namespace dapple::bench {

EvalRow Evaluate(const model::ModelProfile& model, const topo::Cluster& cluster,
                 long global_batch_size) {
  EvalRow row;
  row.model = model.name();
  row.config = cluster.name();
  row.global_batch_size = global_batch_size;
  Session session(model, cluster);
  row.planned = session.Plan(global_batch_size);
  row.hybrid = session.Run(row.planned.plan, global_batch_size);
  row.dp_no_overlap = planner::EstimateDataParallel(
      model, cluster, global_batch_size, planner::DataParallelVariant::kNoOverlap);
  row.dp_overlap = planner::EstimateDataParallel(
      model, cluster, global_batch_size, planner::DataParallelVariant::kOverlap);
  return row;
}

topo::Cluster SixteenDeviceConfig(char config) {
  return config == 'A' || config == 'a' ? topo::MakeConfigA(2)
                                        : topo::MakeConfig(config, 16);
}

void PrintHeader(const std::string& title, const std::string& paper_anchor) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_anchor.c_str());
  std::printf("================================================================\n");
}

void PrintComparison(const std::string& metric, const std::string& paper,
                     const std::string& measured) {
  std::printf("  %-46s paper: %-14s measured: %s\n", metric.c_str(), paper.c_str(),
              measured.c_str());
}

}  // namespace dapple::bench
