#include "serve/server.h"

#include <algorithm>
#include <chrono>

#include "dapple/dapple.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "serve/fingerprint.h"

namespace dapple::serve {

namespace {

std::size_t PerShardCapacity(long total_entries, int shards) {
  std::size_t n = 1;
  while (n < static_cast<std::size_t>(std::max(1, shards))) n <<= 1;
  const long per_shard = total_entries / static_cast<long>(n);
  return static_cast<std::size_t>(std::max(1L, per_shard));
}

/// {"id":...,"ok":false,"error":{"code":...,"message":...}} on one line.
std::string ErrorResponse(const std::string& id, const std::string& code,
                          const std::string& message) {
  obs::JsonWriter w(obs::JsonWriter::Layout::kCompact);
  w.BeginObject();
  if (!id.empty()) w.Field("id", id);
  w.Field("ok", false);
  w.Key("error").BeginObject();
  w.Field("code", code);
  w.Field("message", message);
  w.EndObject();
  w.EndObject();
  return w.str();
}

void WriteHistogramSummary(obs::JsonWriter& w, const obs::Histogram& h) {
  w.BeginObject();
  w.Field("count", h.count());
  w.Field("mean", h.mean());
  w.Field("p50", h.Quantile(0.50));
  w.Field("p95", h.Quantile(0.95));
  w.Field("p99", h.Quantile(0.99));
  w.Field("max", h.max());
  w.EndObject();
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(options),
      cache_(static_cast<std::size_t>(std::max(1, options.cache_shards)),
             PerShardCapacity(options.cache_entries, options.cache_shards)),
      runner_(sim::BatchOptions{options.workers}) {}

int Server::workers() const { return runner_.threads(); }

std::vector<std::string> Server::HandleBatch(const std::vector<std::string>& lines) {
  return runner_.Map<std::string>(static_cast<int>(lines.size()), [&](int i) {
    return HandleLine(lines[static_cast<std::size_t>(i)]);
  });
}

std::string Server::HandleLine(const std::string& line) {
  auto& metrics = obs::MetricsRegistry::Global();
  requests_.fetch_add(1, std::memory_order_relaxed);
  metrics.counter("serve.requests").Increment();

  ServeRequest request;
  try {
    request = ParseRequest(line);
  } catch (const RequestError& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics.counter("serve.errors").Increment();
    return ErrorResponse("", e.code(), e.what());
  }

  const auto t0 = std::chrono::steady_clock::now();
  try {
    std::string response = Dispatch(request);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    metrics.histogram(std::string("serve.latency.") + ToString(request.kind))
        .Observe(seconds);
    return response;
  } catch (const RequestError& e) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics.counter("serve.errors").Increment();
    return ErrorResponse(request.id, e.code(), e.what());
  } catch (const std::exception& e) {
    // The daemon's prime directive: a request may fail, the process may
    // not. Anything unclassified becomes a structured internal error.
    errors_.fetch_add(1, std::memory_order_relaxed);
    metrics.counter("serve.errors").Increment();
    return ErrorResponse(request.id, "internal", e.what());
  }
}

std::string Server::Dispatch(const ServeRequest& request) {
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.counter(std::string("serve.requests.") + ToString(request.kind)).Increment();
  switch (request.kind) {
    case RequestKind::kPlan:
      plans_.fetch_add(1, std::memory_order_relaxed);
      return HandlePlan(request);
    case RequestKind::kSimulate:
      simulates_.fetch_add(1, std::memory_order_relaxed);
      return HandleSimulate(request);
    case RequestKind::kReport:
      reports_.fetch_add(1, std::memory_order_relaxed);
      return HandleReport(request);
    case RequestKind::kStats:
      stats_requests_.fetch_add(1, std::memory_order_relaxed);
      return HandleStats(request);
  }
  throw RequestError("bad_request", "unhandled request kind");
}

Server::PlanEntryPtr Server::PlanFor(const ServeRequest& request,
                                     std::uint64_t* fingerprint) {
  model::ModelProfile model = [&] {
    try {
      return model::ModelByName(request.model);
    } catch (const Error& e) {
      throw RequestError("unknown_model", e.what());
    }
  }();
  const topo::Cluster cluster = topo::MakeConfig(request.config, request.servers);

  planner::PlannerOptions options = request.ToPlannerOptions();
  options.cache_entries_per_shard = options_.stage_cache_entries_per_shard;
  // The fingerprint covers only plan-affecting inputs; thread counts and
  // cache bounds are excluded by FingerprintPlannerOptions.
  const std::uint64_t key = FingerprintPlanRequest(model, cluster, request.gbs, options);
  if (fingerprint) *fingerprint = key;

  auto& metrics = obs::MetricsRegistry::Global();
  if (std::optional<PlanEntryPtr> cached = cache_.Lookup(key)) {
    metrics.counter("serve.cache.hits").Increment();
    return *cached;
  }
  metrics.counter("serve.cache.misses").Increment();

  Session session(model, cluster);
  planner::PlanResult planned;
  try {
    planned = session.Plan(request.gbs, options);
  } catch (const Error& e) {
    // The planner throws exactly when no feasible plan exists (e.g. an
    // infeasible memory cap even with recomputation everywhere). The
    // refusal is the answer; it must not kill the daemon.
    throw RequestError("infeasible", e.what());
  }

  auto entry = std::make_shared<const PlanEntry>(PlanEntry{
      planned.plan, planned.estimate, planner::SerializePlan(planned.plan),
      planned.stats.recompute_stages});
  cache_.Insert(key, entry);
  ExportCacheCounters();
  return entry;
}

void Server::ExportCacheCounters() {
  // Evictions are tallied inside the cache shards; forward the monotonic
  // total into the registry as increments.
  const std::int64_t total = cache_.TotalStats().evictions;
  std::int64_t exported = exported_evictions_.load(std::memory_order_relaxed);
  while (total > exported) {
    if (exported_evictions_.compare_exchange_weak(exported, total,
                                                  std::memory_order_relaxed)) {
      obs::MetricsRegistry::Global().counter("serve.cache.evictions")
          .Increment(total - exported);
      break;
    }
  }
}

namespace {

/// The response fields shared by every plan-carrying response kind.
void WritePlanFields(obs::JsonWriter& w, const ServeRequest& request,
                     std::uint64_t fingerprint, const planner::ParallelPlan& plan,
                     const planner::PlanEstimate& estimate, const std::string& plan_text,
                     int recompute_stages) {
  w.Field("model", request.model);
  w.Field("config", std::string(1, request.config));
  w.Field("servers", request.servers);
  w.Field("gbs", static_cast<std::int64_t>(request.gbs));
  w.Field("schedule", runtime::ToString(request.schedule));
  w.Field("fingerprint", FingerprintToString(fingerprint));
  w.Field("plan", plan.ToString());
  w.Field("split", plan.SplitString());
  w.Field("plan_text", plan_text);
  w.Field("stages", plan.num_stages());
  w.Field("devices", plan.num_devices());
  w.Field("latency", estimate.latency);
  w.Field("acr", estimate.acr);
  w.Field("speedup", estimate.speedup);
  w.Field("micro_batch_size", estimate.micro_batch_size);
  w.Field("num_micro_batches", estimate.num_micro_batches);
  w.Field("peak_memory", estimate.max_peak_memory);
  w.Field("memory_cap", request.memory_cap);
  w.Field("recompute_stages", recompute_stages);
}

}  // namespace

std::string Server::HandlePlan(const ServeRequest& request) {
  std::uint64_t fingerprint = 0;
  const PlanEntryPtr entry = PlanFor(request, &fingerprint);
  obs::JsonWriter w(obs::JsonWriter::Layout::kCompact);
  w.BeginObject();
  if (!request.id.empty()) w.Field("id", request.id);
  w.Field("ok", true);
  w.Field("kind", "plan");
  WritePlanFields(w, request, fingerprint, entry->plan, entry->estimate, entry->plan_text,
                  entry->recompute_stages);
  w.EndObject();
  return w.str();
}

std::string Server::HandleSimulate(const ServeRequest& request) {
  std::uint64_t fingerprint = 0;
  const PlanEntryPtr entry = PlanFor(request, &fingerprint);
  const model::ModelProfile model = model::ModelByName(request.model);
  const topo::Cluster cluster = topo::MakeConfig(request.config, request.servers);

  runtime::BuildOptions options;
  options.global_batch_size = request.gbs;
  options.schedule.kind = request.schedule;
  options.memory_cap = request.memory_cap;
  runtime::PipelineExecutor executor(model, cluster, entry->plan, options);
  const runtime::IterationReport report = executor.Run();

  obs::JsonWriter w(obs::JsonWriter::Layout::kCompact);
  w.BeginObject();
  if (!request.id.empty()) w.Field("id", request.id);
  w.Field("ok", true);
  w.Field("kind", "simulate");
  WritePlanFields(w, request, fingerprint, entry->plan, entry->estimate, entry->plan_text,
                  entry->recompute_stages);
  w.Field("simulated_latency", report.pipeline_latency);
  w.Field("throughput", report.throughput);
  w.Field("simulated_speedup", report.speedup);
  w.Field("avg_peak_memory", report.avg_peak_memory);
  w.Field("max_peak_memory", report.max_peak_memory);
  w.Field("utilization", report.avg_device_utilization);
  w.Field("oom", report.oom);
  w.EndObject();
  return w.str();
}

std::string Server::HandleReport(const ServeRequest& request) {
  std::uint64_t fingerprint = 0;
  const PlanEntryPtr entry = PlanFor(request, &fingerprint);
  const model::ModelProfile model = model::ModelByName(request.model);
  const topo::Cluster cluster = topo::MakeConfig(request.config, request.servers);

  runtime::BuildOptions options;
  options.global_batch_size = request.gbs;
  options.schedule.kind = request.schedule;
  options.memory_cap = request.memory_cap;
  runtime::PipelineExecutor executor(model, cluster, entry->plan, options);
  const runtime::ExecutionDetail detail = executor.RunDetailed();
  const obs::IterationReport report =
      obs::BuildIterationReport(detail.pipeline, detail.result);

  obs::JsonWriter w(obs::JsonWriter::Layout::kCompact);
  w.BeginObject();
  if (!request.id.empty()) w.Field("id", request.id);
  w.Field("ok", true);
  w.Field("kind", "report");
  WritePlanFields(w, request, fingerprint, entry->plan, entry->estimate, entry->plan_text,
                  entry->recompute_stages);
  w.Key("report");
  obs::WriteJson(w, report);
  w.EndObject();
  return w.str();
}

std::string Server::HandleStats(const ServeRequest& request) {
  const ServerStats stats = Stats();
  auto& metrics = obs::MetricsRegistry::Global();

  obs::JsonWriter w(obs::JsonWriter::Layout::kCompact);
  w.BeginObject();
  if (!request.id.empty()) w.Field("id", request.id);
  w.Field("ok", true);
  w.Field("kind", "stats");
  w.Field("workers", stats.workers);
  w.Key("requests").BeginObject();
  w.Field("total", stats.requests);
  w.Field("plan", stats.plans);
  w.Field("simulate", stats.simulates);
  w.Field("report", stats.reports);
  w.Field("stats", stats.stats_requests);
  w.Field("errors", stats.errors);
  w.EndObject();
  w.Key("cache").BeginObject();
  w.Field("hits", stats.cache.hits);
  w.Field("misses", stats.cache.misses);
  w.Field("entries", stats.cache.entries);
  w.Field("evictions", stats.cache.evictions);
  w.Field("capacity", static_cast<std::int64_t>(stats.cache_capacity));
  w.Field("hit_rate", stats.cache.hit_rate());
  w.EndObject();
  w.Key("latency").BeginObject();
  for (const char* kind : {"plan", "simulate", "report", "stats"}) {
    w.Key(kind);
    WriteHistogramSummary(w, metrics.histogram(std::string("serve.latency.") + kind));
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

ServerStats Server::Stats() const {
  ServerStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.plans = plans_.load(std::memory_order_relaxed);
  stats.simulates = simulates_.load(std::memory_order_relaxed);
  stats.reports = reports_.load(std::memory_order_relaxed);
  stats.stats_requests = stats_requests_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.cache = cache_.TotalStats();
  stats.cache_capacity =
      static_cast<long>(cache_.per_shard_capacity() * cache_.num_shards());
  stats.workers = workers();
  return stats;
}

}  // namespace dapple::serve
