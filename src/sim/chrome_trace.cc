#include "sim/chrome_trace.h"

#include <fstream>
#include <map>
#include <sstream>

#include "common/error.h"

namespace dapple::sim {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string ToChromeTrace(const TaskGraph& graph, const SimResult& result,
                          ChromeTraceOptions options) {
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) os << ",";
    first = false;
    os << "\n" << event;
  };

  // Process / thread metadata: one "thread" per resource.
  {
    std::ostringstream m;
    m << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\""
      << JsonEscape(options.process_name) << "\"}}";
    emit(m.str());
  }
  for (int r = 0; r < std::max(graph.num_resources(), 1); ++r) {
    std::ostringstream m;
    m << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << r
      << ",\"name\":\"thread_name\",\"args\":{\"name\":\"resource " << r << "\"}}";
    emit(m.str());
  }

  // Complete ("X") events for every executed task.
  for (const TaskRecord& rec : result.records) {
    if (!rec.executed || rec.id == kInvalidTask) continue;
    const Task& task = graph.task(rec.id);
    std::ostringstream e;
    e << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << task.resource << ",\"name\":\""
      << JsonEscape(task.name) << "\",\"cat\":\"" << ToString(task.kind)
      << "\",\"ts\":" << rec.start * 1e6 << ",\"dur\":" << (rec.end - rec.start) * 1e6
      << ",\"args\":{\"stage\":" << task.stage << ",\"microbatch\":" << task.microbatch
      << "}}";
    emit(e.str());
  }

  // Flow events: arrows from each cross-stage transfer slice to the compute
  // slices it feeds, so the viewer shows activations/gradients hopping
  // between stage rows. The "s"/"f" pair binds to the enclosing slices by
  // (tid, ts); bp=e attaches the arrow to the consumer's start.
  if (options.include_transfer_flows) {
    int flow_id = 0;
    for (const TaskRecord& rec : result.records) {
      if (!rec.executed || rec.id == kInvalidTask) continue;
      const Task& task = graph.task(rec.id);
      if (task.kind != TaskKind::kTransfer) continue;
      for (TaskId succ : graph.successors(rec.id)) {
        const TaskRecord& to = result.records[static_cast<std::size_t>(succ)];
        if (!to.executed || !IsComputeKind(graph.task(succ).kind)) continue;
        std::ostringstream s;
        s << "{\"ph\":\"s\",\"pid\":1,\"tid\":" << task.resource << ",\"id\":" << flow_id
          << ",\"name\":\"xfer\",\"cat\":\"flow\",\"ts\":" << rec.start * 1e6 << "}";
        emit(s.str());
        std::ostringstream f;
        f << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":" << graph.task(succ).resource
          << ",\"id\":" << flow_id << ",\"name\":\"xfer\",\"cat\":\"flow\",\"ts\":"
          << to.start * 1e6 << "}";
        emit(f.str());
        ++flow_id;
      }
    }
  }

  // Busy-resource occupancy counter, sampled at every task boundary.
  if (options.include_occupancy_counters) {
    std::map<double, int> deltas;
    for (const TaskRecord& rec : result.records) {
      if (!rec.executed || rec.id == kInvalidTask) continue;
      deltas[rec.start] += 1;
      deltas[rec.end] -= 1;
    }
    int busy = 0;
    for (const auto& [t, d] : deltas) {
      busy += d;
      std::ostringstream e;
      e << "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"busy resources\",\"ts\":"
        << t * 1e6 << ",\"args\":{\"busy\":" << busy << "}}";
      emit(e.str());
    }
  }

  // Memory counter events per pool.
  if (options.include_memory_counters) {
    for (std::size_t p = 0; p < result.pools.size(); ++p) {
      for (const MemorySample& sample : result.pools[p].timeline()) {
        std::ostringstream e;
        e << "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"name\":\"pool " << p
          << " bytes\",\"ts\":" << sample.time * 1e6 << ",\"args\":{\"resident\":"
          << sample.bytes << "}}";
        emit(e.str());
      }
    }
  }
  os << "\n]}\n";
  return os.str();
}

void WriteChromeTrace(const std::string& path, const TaskGraph& graph,
                      const SimResult& result, ChromeTraceOptions options) {
  std::ofstream out(path);
  DAPPLE_CHECK(out.good()) << "cannot open trace file " << path;
  out << ToChromeTrace(graph, result, std::move(options));
  DAPPLE_CHECK(out.good()) << "failed writing trace file " << path;
}

}  // namespace dapple::sim
