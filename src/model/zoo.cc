#include "model/zoo.h"

#include <cmath>

#include "common/error.h"

namespace dapple::model {

namespace {

constexpr double kMs = 1e-3;

LayerProfile Layer(std::string name, double fwd_ms, double bwd_ms, double act_out_mb,
                   double act_mem_mb, double params_m, double fixed_ms = 0.2) {
  LayerProfile l;
  l.name = std::move(name);
  l.forward_time = fwd_ms * kMs;
  l.backward_time = bwd_ms * kMs;
  l.fixed_overhead = fixed_ms * kMs;
  l.output_activation = MiB(act_out_mb);
  l.activation_memory = MiB(act_mem_mb);
  l.param_count = static_cast<std::uint64_t>(params_m * 1e6);
  return l;
}

}  // namespace

ModelProfile MakeGnmt16() {
  // 291M parameters over 16 LSTM layers; decoder layers cost ~1.45x encoder
  // layers (the paper's stated imbalance behind the 9:7 split). Boundary
  // activations are a uniform 26MB at the profile micro-batch of 64.
  std::vector<LayerProfile> layers;
  const double params_per_layer = 291.0 / 16.0;
  for (int i = 0; i < 8; ++i) {
    layers.push_back(Layer("enc" + std::to_string(i), /*fwd=*/26.0, /*bwd=*/52.0,
                           /*act_out=*/26.0, /*act_mem=*/120.0, params_per_layer, 0.3));
  }
  for (int i = 0; i < 8; ++i) {
    layers.push_back(Layer("dec" + std::to_string(i), /*fwd=*/37.7, /*bwd=*/75.4,
                           /*act_out=*/26.0, /*act_mem=*/150.0, params_per_layer, 0.3));
  }
  return ModelProfile("GNMT-16", std::move(layers), /*profile_micro_batch=*/64,
                      OptimizerKind::kAdam);
}

ModelProfile MakeBert(int encoder_layers) {
  DAPPLE_CHECK_GT(encoder_layers, 0);
  // Uniform encoder stack: 13.33M params per layer so that 48 layers give
  // the paper's 640M total; 8.8MB boundary activations at micro-batch 2.
  std::vector<LayerProfile> layers;
  const double params_per_layer = 640.0 / 48.0;
  for (int i = 0; i < encoder_layers; ++i) {
    layers.push_back(Layer("encoder" + std::to_string(i), /*fwd=*/3.4, /*bwd=*/6.8,
                           /*act_out=*/8.8, /*act_mem=*/115.0, params_per_layer));
  }
  return ModelProfile("BERT-" + std::to_string(encoder_layers), std::move(layers),
                      /*profile_micro_batch=*/2, OptimizerKind::kAdam);
}

ModelProfile MakeBert48() { return MakeBert(48); }

ModelProfile MakeBertLarge() {
  // 26 graph units matching Table VII's indices: embedding, 24 encoders,
  // classification head.
  std::vector<LayerProfile> layers;
  layers.push_back(Layer("embedding", 0.5, 0.5, 4.5, 10.0, 31.0));
  for (int i = 0; i < 24; ++i) {
    layers.push_back(Layer("encoder" + std::to_string(i), 1.7, 3.4, 4.5, 60.0, 12.6));
  }
  layers.push_back(Layer("head", 0.3, 0.6, 0.1, 2.0, 2.0));
  return ModelProfile("BERT-Large", std::move(layers), /*profile_micro_batch=*/2,
                      OptimizerKind::kAdam);
}

ModelProfile MakeXlnet36() {
  std::vector<LayerProfile> layers;
  const double params_per_layer = 500.0 / 36.0;
  for (int i = 0; i < 36; ++i) {
    layers.push_back(Layer("xl" + std::to_string(i), /*fwd=*/4.0, /*bwd=*/8.0,
                           /*act_out=*/4.2, /*act_mem=*/100.0, params_per_layer));
  }
  return ModelProfile("XLNet-36", std::move(layers), /*profile_micro_batch=*/1,
                      OptimizerKind::kAdam);
}

ModelProfile MakeResnet50() {
  // 16 residual blocks; parameters concentrate toward the deep end while
  // compute (spatially large early convolutions) leans front — the classic
  // CNN shape that makes pure DP with overlap competitive.
  const double params_m[16] = {0.1, 0.2, 0.3, 0.3, 0.5, 0.7, 0.9, 1.2,
                               1.5, 1.8, 2.2, 2.6, 2.8, 3.2, 3.2, 3.0};
  const double fwd_ms[16] = {12, 10, 9, 8, 8, 7, 7, 7, 7, 7, 7, 7, 6, 6, 6, 6};
  const double act_mb[16] = {98, 98, 98, 49, 49, 49, 49, 24, 24, 24, 24, 12, 12, 12, 12, 6};
  std::vector<LayerProfile> layers;
  for (int i = 0; i < 16; ++i) {
    layers.push_back(Layer("block" + std::to_string(i), fwd_ms[i], 2.0 * fwd_ms[i],
                           act_mb[i], 1.5 * act_mb[i], params_m[i]));
  }
  return ModelProfile("ResNet-50", std::move(layers), /*profile_micro_batch=*/128,
                      OptimizerKind::kSGD);
}

ModelProfile MakeVgg19() {
  // 25 graph units (16 convs + 5 pools + flatten + 3 fully-connected).
  // Activations decay 384MB -> 3MB along the feature extractor (at the
  // profile micro-batch 32); ~70% of the weights live in fc6 (unit 22), so
  // a split just before the fully-connected tail ships only ~3MB of
  // activations while avoiding AllReduce of the 400MB fc weights.
  struct Unit {
    const char* name;
    double fwd, act_out, params;
  };
  const Unit units[22] = {
      {"conv1_1", 14, 384, 0.002}, {"conv1_2", 14, 384, 0.037}, {"pool1", 0.5, 96, 0},
      {"conv2_1", 10, 96, 0.074},  {"conv2_2", 10, 96, 0.148},  {"pool2", 0.5, 48, 0},
      {"conv3_1", 9, 48, 0.295},   {"conv3_2", 9, 48, 0.59},    {"conv3_3", 9, 48, 0.59},
      {"conv3_4", 9, 48, 0.59},    {"pool3", 0.4, 24, 0},       {"conv4_1", 7, 24, 1.18},
      {"conv4_2", 7, 24, 2.36},    {"conv4_3", 7, 24, 2.36},    {"conv4_4", 7, 24, 2.36},
      {"pool4", 0.3, 12, 0},       {"conv5_1", 5, 12, 2.36},    {"conv5_2", 5, 12, 2.36},
      {"conv5_3", 5, 12, 2.36},    {"conv5_4", 5, 12, 2.36},    {"pool5", 0.2, 3, 0},
      {"flatten", 0.1, 3, 0},
  };
  std::vector<LayerProfile> layers;
  for (const Unit& u : units) {
    layers.push_back(Layer(u.name, u.fwd, 2.0 * u.fwd, u.act_out, 1.2 * u.act_out,
                           u.params, 0.15));
  }
  layers.push_back(Layer("fc6", 1.5, 3.0, 1.0, 2.0, 96.0, 0.15));
  layers.push_back(Layer("fc7", 0.5, 1.0, 1.0, 2.0, 16.78, 0.15));
  layers.push_back(Layer("fc8", 0.3, 0.6, 0.25, 0.5, 4.1, 0.15));
  return ModelProfile("VGG-19", std::move(layers), /*profile_micro_batch=*/32,
                      OptimizerKind::kSGD);
}

ModelProfile MakeAmoebaNet36() {
  // 36 cells; the last 12 cells hold 73% of all parameters and per-cell
  // compute ramps up by <=40% from the first to the last cell (§VI-B).
  std::vector<LayerProfile> layers;
  for (int i = 0; i < 36; ++i) {
    const double ramp = 1.0 + 0.4 * i / 35.0;
    const double fwd = 6.0 * ramp;
    const double params = i < 24 ? 252.0 / 24.0 : 681.0 / 12.0;
    layers.push_back(Layer("cell" + std::to_string(i), fwd, 2.0 * fwd,
                           /*act_out=*/11.2, /*act_mem=*/240.0, params));
  }
  return ModelProfile("AmoebaNet-36", std::move(layers), /*profile_micro_batch=*/1,
                      OptimizerKind::kRMSProp);
}

ModelProfile MakeTransformer(const TransformerSpec& spec) {
  DAPPLE_CHECK_GT(spec.layers, 0);
  DAPPLE_CHECK_GT(spec.hidden, 0);
  DAPPLE_CHECK_GT(spec.sequence_length, 0);
  DAPPLE_CHECK_GT(spec.device_teraflops, 0.0);

  const double h = spec.hidden;
  const double seq = spec.sequence_length;
  const double batch = spec.profile_micro_batch;
  // Parameters per layer: attention (4 h^2) + MLP (8 h^2) + norms.
  const double params_per_layer = 12.0 * h * h + 13.0 * h;
  // Forward FLOPs per layer: 2 FLOPs per MAC on 12 h^2 weights per token,
  // plus attention scores 2 * seq * h per token, both directions.
  const double tokens = seq * batch;
  const double fwd_flops =
      tokens * (2.0 * 12.0 * h * h + 4.0 * seq * h);
  const double fwd_seconds = fwd_flops / (spec.device_teraflops * 1e12);
  // Boundary activation: hidden state per token, fp32.
  const double act_out = tokens * h * 4.0;
  // Resident training activations per layer ~ 14x the hidden state
  // (attention probs, MLP intermediates), the standard estimate.
  const double act_mem = 14.0 * act_out;

  std::vector<LayerProfile> layers;
  for (int i = 0; i < spec.layers; ++i) {
    LayerProfile l;
    l.name = "block" + std::to_string(i);
    l.forward_time = fwd_seconds;
    l.backward_time = 2.0 * fwd_seconds;
    l.fixed_overhead = 0.2e-3;
    l.output_activation = static_cast<Bytes>(act_out);
    l.activation_memory = static_cast<Bytes>(act_mem);
    l.param_count = static_cast<std::uint64_t>(params_per_layer);
    layers.push_back(std::move(l));
  }
  return ModelProfile("Transformer-" + std::to_string(spec.layers) + "x" +
                          std::to_string(spec.hidden),
                      std::move(layers), spec.profile_micro_batch, spec.optimizer);
}

ModelProfile MakeUniformSynthetic(int layers, TimeSec forward_time, TimeSec backward_time,
                                  Bytes activation, std::uint64_t params_per_layer,
                                  int profile_micro_batch, OptimizerKind optimizer) {
  DAPPLE_CHECK_GT(layers, 0);
  std::vector<LayerProfile> list;
  for (int i = 0; i < layers; ++i) {
    LayerProfile l;
    l.name = "layer" + std::to_string(i);
    l.forward_time = forward_time;
    l.backward_time = backward_time;
    l.fixed_overhead = 0.0;
    l.output_activation = activation;
    l.activation_memory = activation * 2;
    l.param_count = params_per_layer;
    list.push_back(std::move(l));
  }
  return ModelProfile("synthetic-" + std::to_string(layers), std::move(list),
                      profile_micro_batch, optimizer);
}

std::vector<ModelProfile> AllBenchmarkModels() {
  return {MakeGnmt16(),   MakeBert48(), MakeXlnet36(),
          MakeResnet50(), MakeVgg19(),  MakeAmoebaNet36()};
}

ModelProfile ModelByName(const std::string& name) {
  for (ModelProfile& m : AllBenchmarkModels()) {
    if (m.name() == name) return m;
  }
  if (name == "BERT-Large") return MakeBertLarge();
  throw Error("unknown benchmark model '" + name + "'");
}

}  // namespace dapple::model
