// Exporters for scenario-layer results: deterministic JSON (golden-testable
// byte for byte), aligned-column text for terminals, and — for episodes —
// the fault layer's Chrome trace of the underlying recovery timeline.
#pragma once

#include <string>
#include <vector>

#include "scenario/coscheduler.h"
#include "scenario/episode.h"

namespace dapple::scenario {

/// Deterministic JSON for one episode: churn metadata wrapped around the
/// fault report's own fields (obs::JsonWriter formatting).
std::string ToJson(const EpisodeReport& report);

/// Aligned-column text rendering for terminals.
std::string ToText(const EpisodeReport& report);

/// Chrome trace of the episode's recovery timeline and fault windows —
/// exactly fault::ToChromeTrace of the underlying experiment, so a
/// rolling-maintenance episode shows outage windows closing at each rejoin
/// and the elastic-up scale-up cutovers as timeline slices.
std::string ToChromeTrace(const EpisodeReport& report);

/// Deterministic JSON for a sweep: one episode object per entry, in order.
std::string ToJson(const std::vector<EpisodeReport>& reports);

/// Deterministic JSON for a co-schedule: the split, per-job assignments and
/// the aggregate/naive-even comparison.
std::string ToJson(const CoScheduleReport& report);

/// Aligned-column text rendering of a co-schedule.
std::string ToText(const CoScheduleReport& report);

}  // namespace dapple::scenario
