#include "planner/dp_baseline.h"

#include "common/error.h"

namespace dapple::planner {

ParallelPlan MakeDataParallelPlan(const model::ModelProfile& model,
                                  const topo::Cluster& cluster) {
  ParallelPlan plan;
  plan.model = model.name();
  StagePlan stage;
  stage.layer_begin = 0;
  stage.layer_end = model.num_layers();
  stage.devices = topo::DeviceSet::Range(0, cluster.num_devices());
  plan.stages.push_back(std::move(stage));
  return plan;
}

DataParallelEstimate EstimateDataParallel(const model::ModelProfile& model,
                                          const topo::Cluster& cluster,
                                          long global_batch_size,
                                          DataParallelVariant variant) {
  DAPPLE_CHECK_GT(global_batch_size, 0);
  LatencyOptions options;
  options.overlap_allreduce = (variant == DataParallelVariant::kOverlap);
  options.check_memory = true;
  LatencyEstimator estimator(model, cluster, options);

  const ParallelPlan plan = MakeDataParallelPlan(model, cluster);
  const PlanEstimate est = estimator.Estimate(plan, global_batch_size);

  DataParallelEstimate result;
  result.feasible = est.feasible;
  result.infeasible_reason = est.infeasible_reason;
  result.iteration_time = est.latency;
  result.exposed_comm_time = est.stages.front().allreduce;
  result.compute_time = est.latency - result.exposed_comm_time;
  result.speedup = est.speedup;
  return result;
}

}  // namespace dapple::planner
