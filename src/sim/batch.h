// Parallel multi-simulation driver. Fans N independent jobs — fuzz cases,
// fault scripts, bench seeds — across a dedicated ThreadPool while keeping
// results byte-identical to a serial loop:
//
//  - outputs land in pre-sized slots indexed by job position, so result
//    order never depends on scheduling;
//  - each worker thread simulates on its own thread-local Engine arena
//    (Engine::Run), so concurrent runs share no mutable state;
//  - the first exception *by job index* wins, exactly as a serial loop
//    would throw it — not whichever worker faulted first on the clock.
//
// BatchRunner always owns its pool and never borrows ThreadPool::Shared():
// jobs routinely re-enter the shared pool themselves (an elastic replan
// invokes the parallel planner), and running a job *on* that pool would
// deadlock — ParallelFor from a worker of the same pool has no work
// stealing to fall back on.
#pragma once

#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.h"

namespace dapple {
class ThreadPool;
}  // namespace dapple

namespace dapple::sim {

struct BatchOptions {
  /// Worker threads: 1 runs jobs inline on the calling thread (no pool at
  /// all — the degenerate serial case used to prove byte-identity), 0
  /// picks the hardware concurrency, n > 1 uses exactly n.
  int threads = 1;
};

/// One simulation to run: a borrowed graph plus its engine options. The
/// graph must outlive the RunSimulations call.
struct SimJob {
  const TaskGraph* graph = nullptr;
  EngineOptions options;
};

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {});
  ~BatchRunner();

  BatchRunner(const BatchRunner&) = delete;
  BatchRunner& operator=(const BatchRunner&) = delete;

  /// Actual worker count (1 when running inline).
  int threads() const { return threads_; }

  /// Runs body(i) for i in [0, count), inline when threads() == 1,
  /// otherwise across the pool. Blocks until every index finished; if any
  /// bodies threw, rethrows the one with the lowest index.
  void ForEach(int count, const std::function<void(int)>& body);

  /// ForEach that collects body(i) into slot i. R must be default-
  /// constructible and movable.
  template <typename R>
  std::vector<R> Map(int count, const std::function<R(int)>& body) {
    std::vector<R> out(static_cast<std::size_t>(count));
    ForEach(count, [&](int i) { out[static_cast<std::size_t>(i)] = body(i); });
    return out;
  }

  /// Simulates every job; result i corresponds to jobs[i].
  std::vector<SimResult> RunSimulations(const std::vector<SimJob>& jobs);

 private:
  int threads_ = 1;
  std::unique_ptr<ThreadPool> pool_;  // null when running inline
};

}  // namespace dapple::sim
