#include "sim/engine.h"

#include <algorithm>
#include <queue>
#include <set>
#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"

namespace dapple::sim {

double SimResult::Utilization(ResourceId r) const {
  if (makespan <= 0.0) return 0.0;
  return resources.at(static_cast<std::size_t>(r)).busy / makespan;
}

double SimResult::ComputeUtilization(ResourceId r) const {
  if (makespan <= 0.0) return 0.0;
  return resources.at(static_cast<std::size_t>(r)).compute_busy / makespan;
}

Bytes SimResult::MaxPeakMemory() const {
  Bytes peak = 0;
  for (const MemoryPool& p : pools) peak = std::max(peak, p.peak());
  return peak;
}

bool SimResult::AnyOom() const {
  return std::any_of(pools.begin(), pools.end(),
                     [](const MemoryPool& p) { return p.oom(); });
}

namespace {

struct Completion {
  TimeSec time;
  TaskId task;
  bool operator>(const Completion& other) const {
    if (time != other.time) return time > other.time;
    return task > other.task;
  }
};

/// Ready-queue ordering: (priority, id) ascending.
struct ReadyOrder {
  const TaskGraph* graph;
  bool operator()(TaskId a, TaskId b) const {
    const Task& ta = graph->task(a);
    const Task& tb = graph->task(b);
    if (ta.priority != tb.priority) return ta.priority < tb.priority;
    return a < b;
  }
};

}  // namespace

SimResult Engine::Run(const TaskGraph& graph, EngineOptions options) {
  const int n = graph.num_tasks();
  const int num_resources = std::max(graph.num_resources(), 1);
  const int num_pools = std::max(
      graph.num_pools(), static_cast<int>(std::max(options.pool_capacities.size(),
                                                   options.pool_baselines.size())));

  SimResult result;
  result.records.resize(static_cast<std::size_t>(n));
  result.resources.resize(static_cast<std::size_t>(num_resources));
  result.pools.reserve(static_cast<std::size_t>(num_pools));
  for (int p = 0; p < num_pools; ++p) {
    const Bytes cap = static_cast<std::size_t>(p) < options.pool_capacities.size()
                          ? options.pool_capacities[static_cast<std::size_t>(p)]
                          : 0;
    result.pools.emplace_back(cap);
    if (static_cast<std::size_t>(p) < options.pool_baselines.size()) {
      result.pools.back().SetBaseline(options.pool_baselines[static_cast<std::size_t>(p)]);
    }
  }

  std::vector<int> pending(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) pending[static_cast<std::size_t>(t)] = graph.in_degree(t);

  // Per-resource ready sets and busy flags.
  std::vector<std::set<TaskId, ReadyOrder>> ready(
      static_cast<std::size_t>(num_resources), std::set<TaskId, ReadyOrder>(ReadyOrder{&graph}));
  std::vector<TaskId> running(static_cast<std::size_t>(num_resources), kInvalidTask);

  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> completions;
  int executed = 0;
  TimeSec now = 0.0;
  // Resources that may be able to start a task after the current event.
  std::vector<ResourceId> wake;
  wake.reserve(8);

  auto start_task = [&](TaskId id) {
    const Task& task = graph.task(id);
    running[static_cast<std::size_t>(task.resource)] = id;
    auto& rec = result.records[static_cast<std::size_t>(id)];
    rec.id = id;
    rec.start = now;
    rec.end = now + task.duration;
    rec.executed = true;
    if (task.pool >= 0 && task.alloc_at_start > 0) {
      result.pools[static_cast<std::size_t>(task.pool)].Allocate(now, task.alloc_at_start);
    }
    completions.push({rec.end, id});
  };

  auto dispatch_resource = [&](ResourceId r) {
    auto& queue = ready[static_cast<std::size_t>(r)];
    if (running[static_cast<std::size_t>(r)] != kInvalidTask || queue.empty()) return;
    const TaskId next = *queue.begin();
    queue.erase(queue.begin());
    start_task(next);
  };

  // Seed with all zero-indegree tasks.
  for (TaskId t = 0; t < n; ++t) {
    if (pending[static_cast<std::size_t>(t)] == 0) {
      ready[static_cast<std::size_t>(graph.task(t).resource)].insert(t);
    }
  }
  for (ResourceId r = 0; r < num_resources; ++r) dispatch_resource(r);

  while (!completions.empty()) {
    const Completion done = completions.top();
    completions.pop();
    now = done.time;
    const Task& task = graph.task(done.task);

    ++executed;
    auto& usage = result.resources[static_cast<std::size_t>(task.resource)];
    if (usage.tasks_executed == 0) {
      usage.first_start = result.records[static_cast<std::size_t>(done.task)].start;
    }
    usage.busy += task.duration;
    if (IsComputeKind(task.kind)) usage.compute_busy += task.duration;
    usage.last_end = now;
    usage.tasks_executed++;
    result.makespan = std::max(result.makespan, now);

    if (task.pool >= 0 && task.free_at_end > 0) {
      result.pools[static_cast<std::size_t>(task.pool)].Free(now, task.free_at_end);
    }

    running[static_cast<std::size_t>(task.resource)] = kInvalidTask;

    // Only the freed resource and resources whose ready set gained a task
    // can start something; dispatching is idempotent, so duplicates in the
    // wake list are harmless. Dispatching exactly those keeps the loop
    // O(successors) per event instead of O(num_resources).
    wake.clear();
    wake.push_back(task.resource);
    for (TaskId succ : graph.successors(done.task)) {
      if (--pending[static_cast<std::size_t>(succ)] == 0) {
        const ResourceId r = graph.task(succ).resource;
        ready[static_cast<std::size_t>(r)].insert(succ);
        wake.push_back(r);
      }
    }
    for (ResourceId r : wake) dispatch_resource(r);
  }

  if (executed != n) {
    std::ostringstream os;
    os << "task graph deadlock: executed " << executed << " of " << n
       << " tasks; first blocked:";
    int listed = 0;
    for (TaskId t = 0; t < n && listed < 5; ++t) {
      if (!result.records[static_cast<std::size_t>(t)].executed) {
        os << " '" << graph.task(t).name << "'";
        ++listed;
      }
    }
    throw Error(os.str());
  }

  auto& metrics = obs::MetricsRegistry::Global();
  metrics.counter("sim.runs").Increment();
  metrics.counter("sim.tasks_executed").Increment(executed);
  metrics.histogram("sim.makespan").Observe(result.makespan);
  return result;
}

}  // namespace dapple::sim
