#include "scenario/episode.h"

#include "obs/metrics.h"
#include "sim/batch.h"

namespace dapple::scenario {

EpisodeReport RunEpisode(const model::ModelProfile& model, const topo::Cluster& cluster,
                         const planner::ParallelPlan& plan, const EpisodeOptions& options) {
  const fault::FaultScript script =
      GenerateChurnScript(options.seed, cluster, options.churn, options.churn_options);

  fault::FaultOptions fault_options = options.fault;
  fault_options.horizon = options.churn_options.horizon;

  EpisodeReport report;
  report.seed = options.seed;
  report.churn = options.churn;
  report.fault =
      fault::RunFaultExperiment(model, cluster, plan, script, options.policy, fault_options);

  for (const fault::FaultEvent& e : script.events) {
    switch (e.kind) {
      case fault::FaultKind::kDeviceCrash: ++report.preemptions; break;
      case fault::FaultKind::kDeviceRejoin: ++report.rejoins; break;
      case fault::FaultKind::kDeviceSlowdown: ++report.slowdown_windows; break;
      case fault::FaultKind::kLinkDegradation: break;
    }
  }
  report.utilization = report.fault.healthy_throughput > 0.0
                           ? report.fault.goodput / report.fault.healthy_throughput
                           : 0.0;

  auto& metrics = obs::MetricsRegistry::Global();
  metrics.counter("scenario.episode.runs").Increment();
  metrics.counter("scenario.episode.preemptions").Increment(report.preemptions);
  metrics.counter("scenario.episode.rejoins").Increment(report.rejoins);
  metrics.counter("scenario.episode.scale_ups").Increment(report.fault.scale_ups);
  metrics.histogram("scenario.episode.utilization").Observe(report.utilization);
  return report;
}

std::vector<EpisodeReport> RunEpisodeSweep(const model::ModelProfile& model,
                                           const topo::Cluster& cluster,
                                           const planner::ParallelPlan& plan,
                                           const std::vector<EpisodeOptions>& episodes,
                                           int sim_threads) {
  sim::BatchRunner runner({.threads = sim_threads});
  return runner.Map<EpisodeReport>(static_cast<int>(episodes.size()), [&](int i) {
    return RunEpisode(model, cluster, plan, episodes[static_cast<std::size_t>(i)]);
  });
}

}  // namespace dapple::scenario
