// torchgpipe's partitioner (paper §IV-D): "Block Partitions of Sequences"
// (Barany & Grinberg) — balance the per-layer compute times into S
// contiguous blocks minimizing the largest block, one device per stage, no
// replication. This is the community GPipe baseline the paper contrasts
// DAPPLE's uneven/fewer-stage preference against.
#pragma once

#include "planner/plan.h"
#include "topo/cluster.h"

namespace dapple::planner {

class TorchGpipePlanner {
 public:
  TorchGpipePlanner(const model::ModelProfile& model, const topo::Cluster& cluster);

  /// Partitions into exactly `stages` blocks (defaults to the device
  /// count) assigned to devices 0..stages-1 in order.
  ParallelPlan Plan(int stages = 0) const;

  /// The min-max objective value of a partition: the largest block's
  /// forward+backward time at the profile micro-batch.
  double Bottleneck(const ParallelPlan& plan) const;

 private:
  const model::ModelProfile* model_;
  const topo::Cluster* cluster_;
};

}  // namespace dapple::planner
