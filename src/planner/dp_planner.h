// The DAPPLE planner (paper §IV): dynamic programming over (partition
// point, device allocation) states. A state TPL(j, state) means "the first
// j layers are planned; the remaining layers form one stage on all free
// devices". Transitions carve one more stage [j, j') placed by one of the
// three topology-aware policies; states are memoized on (j, canonical
// allocation key), where the canonical key exploits server symmetry
// (identical machines are interchangeable). Every visited state is also a
// complete candidate plan (prefix + default suffix), so pure data
// parallelism (j = 0) and straight pipelines fall out of the same search.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "planner/latency.h"
#include "planner/plan.h"
#include "planner/stage_cache.h"

namespace dapple::planner {

/// How the planner may use activation recomputation (§II-A) to fit a
/// memory cap.
enum class RecomputePolicy {
  /// Never recompute (a cap can still reject placements).
  kOff,
  /// Recompute on every stage of every candidate.
  kAll,
  /// Search without recomputation first; when nothing fits the cap, rerun
  /// with recomputation everywhere and then binary-search the cheapest
  /// per-stage subset (lowest latency penalty first) that still fits.
  kAuto,
};

const char* ToString(RecomputePolicy policy);
/// Parses "off" | "all" | "on" | "auto" (case-insensitive); throws on
/// anything else.
RecomputePolicy ParseRecomputePolicy(const std::string& text);

struct PlannerOptions {
  long global_batch_size = 0;
  /// Cap on computation stages (0 = number of devices). Smaller caps speed
  /// up the search; the paper's insight is that few stages win anyway.
  int max_stages = 0;
  /// Prune transitions whose prefix-TPL already exceeds the incumbent by
  /// this factor. 0 disables pruning.
  double prune_slack = 2.0;
  /// Number of best distinct candidates to keep for downstream re-ranking
  /// (the Session verifies the analytic top-k against the discrete-event
  /// simulator, whose schedule is exact where formula 1 approximates).
  int keep_alternatives = 8;
  /// Ablation hook: restrict the device-placement search to a subset of
  /// the three policies. Empty = all (the paper's full search space).
  std::vector<topo::PlacementPolicy> policies;
  /// Per-device memory cap in bytes; 0 = the cluster's device memory.
  /// Overrides latency.memory_cap when set. Same boundary convention as
  /// sim::MemoryPool::oom(): a candidate whose estimated peak equals the
  /// cap is feasible; one byte over is rejected.
  Bytes memory_cap = 0;
  /// Recomputation knob for fitting under the cap (see RecomputePolicy).
  RecomputePolicy recompute = RecomputePolicy::kOff;
  LatencyOptions latency;
  /// Worker threads for the subproblem-parallel search: 0 = the shared
  /// pool (sized to hardware concurrency), 1 = fully serial in the calling
  /// thread, n > 1 = a dedicated pool of n workers for this search. The
  /// winning plan is byte-identical at every setting (the merge is
  /// sequential in enumeration order; parallel work is slot-indexed).
  int num_threads = 0;
  /// Lock shards of the stage-cost memo cache (rounded up to a power of
  /// two). More shards cut contention when many threads evaluate at once.
  int cache_shards = 16;
  /// Per-shard LRU capacity bound on the stage-cost cache (entries). 0 =
  /// unbounded — fine for one search, whose vocabulary is finite; a
  /// long-lived process (the serve daemon) sets a bound so the memo table
  /// cannot grow across requests without limit. Eviction only re-derives
  /// costs; the chosen plan is identical either way.
  long cache_entries_per_shard = 0;
  /// Disables the stage-cost memo cache (A/B benchmarking hook). Cached
  /// values are bit-identical to recomputation, so this never changes the
  /// resulting plan — only how fast the search finds it.
  bool use_stage_cache = true;
};

struct PlanResult {
  ParallelPlan plan;
  PlanEstimate estimate;
  /// Number of complete candidate plans evaluated during the search.
  long candidates_evaluated = 0;
  /// Best distinct candidates by analytic latency, ascending (includes the
  /// winner at index 0).
  std::vector<std::pair<ParallelPlan, PlanEstimate>> alternatives;
  /// How the search ran: decomposition, cache traffic, wall time.
  PlannerSearchStats stats;
};

class DapplePlanner {
 public:
  DapplePlanner(const model::ModelProfile& model, const topo::Cluster& cluster,
                PlannerOptions options);

  /// Runs the search and returns the best feasible plan. Under
  /// RecomputePolicy::kAuto a memory-infeasible search is retried with
  /// recomputation everywhere, then trimmed to the cheapest per-stage
  /// subset that still fits (StagePlan::recompute flags on the result).
  /// Throws when no feasible plan exists even then.
  PlanResult Plan() const;

  /// Evaluates a fully specified plan with this planner's latency options
  /// (used to compare externally produced strategies, e.g. PipeDream's).
  PlanEstimate Evaluate(const ParallelPlan& plan) const;

 private:
  /// Effective estimator options: options_.latency with the planner-level
  /// memory cap folded in (and recompute forced on when `recompute_all`).
  LatencyOptions EffectiveLatencyOptions(bool recompute_all) const;

  /// One full DP search at fixed latency options.
  PlanResult Search(const LatencyOptions& latency) const;

  /// Turns an all-recompute plan into the cheapest per-stage recompute
  /// subset that still fits: stages sorted by latency penalty
  /// (recompute_overhead x F_s, ties by index), smallest feasible prefix
  /// found by binary search, re-estimated without the global flag. Returns
  /// the number of estimator probes spent.
  int MinimizeRecompute(const LatencyEstimator& estimator, ParallelPlan& plan,
                        PlanEstimate& estimate) const;

  const model::ModelProfile* model_;
  const topo::Cluster* cluster_;
  PlannerOptions options_;
};

}  // namespace dapple::planner
