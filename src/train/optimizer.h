// Optimizers for the numeric substrate: SGD, SGD+momentum, Adam and
// RMSProp — the four the paper's experiments use (§VI-A). Each operates on
// the flat parameter view so the same optimizer instance serves serial,
// data-parallel and pipelined training identically (a prerequisite for the
// gradient-equivalence claim to translate into identical weight
// trajectories).
#pragma once

#include <memory>
#include <vector>

#include "train/model.h"

namespace dapple::train {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  virtual const char* name() const = 0;

  /// Applies one update step: params[i] -= f(grads[i]). Slot state (Adam
  /// moments etc.) is keyed by position, so the params list must be stable
  /// across calls.
  virtual void Step(const std::vector<Tensor*>& params, const GradientVector& grads) = 0;
};

std::unique_ptr<Optimizer> MakeSgd(float learning_rate);
std::unique_ptr<Optimizer> MakeMomentum(float learning_rate, float momentum = 0.9f);
std::unique_ptr<Optimizer> MakeAdam(float learning_rate, float beta1 = 0.9f,
                                    float beta2 = 0.999f, float epsilon = 1e-8f);
std::unique_ptr<Optimizer> MakeRmsProp(float learning_rate, float decay = 0.9f,
                                       float epsilon = 1e-8f);

}  // namespace dapple::train
