// Tests for the serve subsystem: the JSON value parser, the request
// protocol (malformed input must become structured errors, never a crash),
// the fingerprint-keyed plan cache, worker-count response invariance and
// the Unix-socket transport.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "model/zoo.h"
#include "serve/fingerprint.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/transport.h"

namespace dapple::serve {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(ServeJson, ParsesScalarsObjectsAndArrays) {
  const JsonValue doc = ParseJson(
      R"({"s":"a\"b\n","n":-2.5,"i":42,"b":true,"z":null,"a":[1,2,3],"o":{"k":"v"}})");
  EXPECT_EQ(doc.Get("s").AsString(), "a\"b\n");
  EXPECT_DOUBLE_EQ(doc.Get("n").AsDouble(), -2.5);
  EXPECT_EQ(doc.Get("i").AsInt(), 42);
  EXPECT_TRUE(doc.Get("b").AsBool());
  EXPECT_TRUE(doc.Get("z").is_null());
  EXPECT_EQ(doc.Get("a").AsArray().size(), 3u);
  EXPECT_EQ(doc.Get("o").Get("k").AsString(), "v");
}

TEST(ServeJson, KeysPreserveInsertionOrder) {
  const JsonValue doc = ParseJson(R"({"z":1,"a":2,"m":3})");
  EXPECT_EQ(doc.Keys(), (std::vector<std::string>{"z", "a", "m"}));
}

TEST(ServeJson, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "{\"a\"", "{\"a\":", "{\"a\":1,", "[1,2", "\"unterminated",
        "{\"a\":1}trailing", "tru", "{'a':1}", "{\"a\":01x}", "{\"a\":--1}"}) {
    EXPECT_THROW(ParseJson(bad), Error) << "input: " << bad;
  }
}

TEST(ServeJson, TypeMismatchesThrow) {
  const JsonValue doc = ParseJson(R"({"s":"x","n":1})");
  EXPECT_THROW(doc.Get("s").AsInt(), Error);
  EXPECT_THROW(doc.Get("n").AsString(), Error);
  EXPECT_THROW(doc.Get("missing"), Error);
}

// ------------------------------------------------------------ protocol --

TEST(ServeProtocol, ParsesFullPlanRequest) {
  const ServeRequest r = ParseRequest(
      R"({"kind":"plan","id":"x1","model":"GNMT-16","config":"B","servers":2,)"
      R"("gbs":64,"schedule":"gpipe","memory_cap":"2GiB","recompute":"auto",)"
      R"("max_stages":4,"planner_threads":2})");
  EXPECT_EQ(r.kind, RequestKind::kPlan);
  EXPECT_EQ(r.id, "x1");
  EXPECT_EQ(r.model, "GNMT-16");
  EXPECT_EQ(r.config, 'B');
  EXPECT_EQ(r.servers, 2);
  EXPECT_EQ(r.gbs, 64);
  EXPECT_EQ(r.schedule, runtime::ScheduleKind::kGPipe);
  EXPECT_EQ(r.memory_cap, 2_GiB);
  EXPECT_EQ(r.recompute, planner::RecomputePolicy::kAuto);
  EXPECT_EQ(r.max_stages, 4);
  EXPECT_EQ(r.planner_threads, 2);
}

void ExpectRequestError(const std::string& line, const std::string& code) {
  try {
    ParseRequest(line);
    FAIL() << "expected RequestError for: " << line;
  } catch (const RequestError& e) {
    EXPECT_EQ(e.code(), code) << "line: " << line << " message: " << e.what();
  }
}

TEST(ServeProtocol, MalformedRequestsBecomeStructuredErrors) {
  ExpectRequestError("", "parse_error");
  ExpectRequestError("{\"kind\":\"plan\"", "parse_error");  // truncated
  ExpectRequestError("not json at all", "parse_error");
  ExpectRequestError("[1,2,3]", "bad_request");  // not an object
  ExpectRequestError(R"({"kind":"destroy"})", "bad_request");  // unknown kind
  ExpectRequestError(R"({"kind":"plan","turbo":1})", "bad_request");  // unknown field
  ExpectRequestError(R"({"kind":"plan"})", "bad_request");  // missing model
  ExpectRequestError(
      R"({"kind":"plan","model":"GNMT-16","config":"Z","servers":2,"gbs":64})",
      "bad_request");
  ExpectRequestError(
      R"({"kind":"plan","model":"GNMT-16","config":"A","servers":0,"gbs":64})",
      "bad_request");
  ExpectRequestError(
      R"({"kind":"plan","model":"GNMT-16","config":"A","servers":2,"gbs":-8})",
      "bad_request");
  ExpectRequestError(R"({"kind":"plan","model":"GNMT-16","config":"A","servers":2,)"
                     R"("gbs":64,"memory_cap":"12 parsecs"})",
                     "bad_request");
  ExpectRequestError(R"({"kind":"plan","model":"GNMT-16","config":"A","servers":2,)"
                     R"("gbs":64,"schedule":"fifo"})",
                     "bad_request");
}

// -------------------------------------------------------------- server --

std::string PlanLine(const std::string& id, const std::string& model, char config,
                     int servers, long gbs, const std::string& extra = "") {
  return "{\"kind\":\"plan\",\"id\":\"" + id + "\",\"model\":\"" + model +
         "\",\"config\":\"" + std::string(1, config) +
         "\",\"servers\":" + std::to_string(servers) +
         ",\"gbs\":" + std::to_string(gbs) + extra + "}";
}

TEST(ServeServer, IdenticalRequestsHitTheCacheWithIdenticalBytes) {
  Server server;
  const std::string line = PlanLine("a", "GNMT-16", 'A', 2, 64);
  const std::string first = server.HandleLine(line);
  const std::string second = server.HandleLine(line);
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos);

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.cache.misses, 1);
  EXPECT_EQ(stats.cache.hits, 1);
  EXPECT_EQ(stats.cache.entries, 1);
}

TEST(ServeServer, RequestFingerprintIsStable) {
  // Golden cache key for (GNMT-16, Config-A, 2 servers, gbs 64, defaults).
  // If this changes, cached plans from previous builds no longer match —
  // bump deliberately, with the fingerprint version strings.
  Server server;
  const std::string response = server.HandleLine(PlanLine("a", "GNMT-16", 'A', 2, 64));
  EXPECT_NE(response.find("\"fingerprint\":\"fp:7598bf6c60fdd633\""), std::string::npos)
      << response;
}

TEST(ServeServer, PlanAffectingOptionsChangeTheFingerprint) {
  model::ModelProfile model = model::ModelByName("GNMT-16");
  topo::Cluster cluster = topo::MakeConfigA(2);
  planner::PlannerOptions base;
  base.global_batch_size = 64;
  const std::uint64_t fp0 = FingerprintPlanRequest(model, cluster, 64, base);

  planner::PlannerOptions capped = base;
  capped.memory_cap = 2_GiB;
  EXPECT_NE(FingerprintPlanRequest(model, cluster, 64, capped), fp0);

  planner::PlannerOptions gpipe = base;
  gpipe.latency.schedule_kind = runtime::ScheduleKind::kGPipe;
  EXPECT_NE(FingerprintPlanRequest(model, cluster, 64, gpipe), fp0);

  // Execution-only knobs (thread counts, cache tuning) must NOT change the
  // key: the plan is byte-identical at every thread count.
  planner::PlannerOptions threaded = base;
  threaded.num_threads = 8;
  threaded.cache_shards = 4;
  threaded.cache_entries_per_shard = 128;
  EXPECT_EQ(FingerprintPlanRequest(model, cluster, 64, threaded), fp0);
}

TEST(ServeServer, BadRequestsNeverKillTheServer) {
  Server server;
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"{\"kind\":\"plan\",\"model\"", "parse_error"},
      {"{\"kind\":\"warp\"}", "bad_request"},
      {PlanLine("m", "NoSuchModel", 'A', 2, 64), "unknown_model"},
      {PlanLine("c", "GNMT-16", 'A', 2, 64, ",\"memory_cap\":\"1MiB\""), "infeasible"},
  };
  for (const auto& [line, code] : cases) {
    const std::string response = server.HandleLine(line);
    EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
    EXPECT_NE(response.find("\"code\":\"" + code + "\""), std::string::npos) << response;
  }
  EXPECT_EQ(server.Stats().errors, static_cast<std::int64_t>(cases.size()));
  // The daemon still answers normal requests afterwards.
  EXPECT_NE(server.HandleLine(PlanLine("ok", "GNMT-16", 'A', 2, 64)).find("\"ok\":true"),
            std::string::npos);
}

TEST(ServeServer, ResponsesAreByteIdenticalAtEveryWorkerCount) {
  // A mixed workload: duplicates (cache races), distinct configs, every
  // request kind and some failures. The response vector must not depend on
  // the worker count.
  std::vector<std::string> lines;
  for (int round = 0; round < 2; ++round) {
    lines.push_back(PlanLine("p1", "GNMT-16", 'A', 2, 64));
    lines.push_back(PlanLine("p2", "GNMT-16", 'B', 2, 32));
    lines.push_back(PlanLine("p3", "VGG-19", 'A', 1, 32));
    lines.push_back(PlanLine("p4", "GNMT-16", 'A', 2, 64, ",\"schedule\":\"gpipe\""));
    lines.push_back("{\"kind\":\"simulate\",\"id\":\"s1\",\"model\":\"GNMT-16\","
                    "\"config\":\"A\",\"servers\":2,\"gbs\":64}");
    lines.push_back(PlanLine("bad", "NoSuchModel", 'A', 2, 64));
    lines.push_back("{broken");
  }

  ServerOptions serial;
  serial.workers = 1;
  Server one(serial);
  const std::vector<std::string> serial_responses = one.HandleBatch(lines);

  ServerOptions pooled;
  pooled.workers = 8;
  Server eight(pooled);
  const std::vector<std::string> pooled_responses = eight.HandleBatch(lines);

  ASSERT_EQ(serial_responses.size(), lines.size());
  ASSERT_EQ(pooled_responses.size(), lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(serial_responses[i], pooled_responses[i]) << "line " << i;
  }
}

TEST(ServeServer, TinyCacheEvictsAndStillAnswers) {
  ServerOptions options;
  options.cache_entries = 2;  // capacity 1 per shard after the split
  options.cache_shards = 2;
  Server server(options);
  // More distinct plan requests than cache entries, twice over.
  const std::vector<std::string> models = {"GNMT-16", "VGG-19", "BERT-48"};
  for (int round = 0; round < 2; ++round) {
    for (const std::string& m : models) {
      const std::string response = server.HandleLine(PlanLine("e", m, 'A', 2, 32));
      EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
    }
  }
  const ServerStats stats = server.Stats();
  EXPECT_LE(stats.cache.entries, 2);
  EXPECT_GT(stats.cache.evictions, 0);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 6);
}

TEST(ServeServer, StatsRequestReportsCacheAndLatency) {
  Server server;
  server.HandleLine(PlanLine("a", "GNMT-16", 'A', 2, 64));
  server.HandleLine(PlanLine("b", "GNMT-16", 'A', 2, 64));
  const std::string response = server.HandleLine("{\"kind\":\"stats\",\"id\":\"s\"}");
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(response.find("\"hits\":1"), std::string::npos) << response;
  EXPECT_NE(response.find("\"misses\":1"), std::string::npos) << response;
  EXPECT_NE(response.find("\"p99\""), std::string::npos);
}

// ----------------------------------------------------------- transport --

std::string UnixRoundTrip(const std::string& path, const std::string& payload) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  // The server thread may still be between bind and listen; retry briefly.
  int rc = -1;
  for (int attempt = 0; attempt < 500; ++attempt) {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
    if (rc == 0) break;
    ::usleep(10 * 1000);
  }
  EXPECT_EQ(rc, 0) << "connect failed: " << std::strerror(errno);
  std::size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + off, payload.size() - off);
    if (n < 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::shutdown(fd, SHUT_WR);
  std::string reply;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) reply.append(chunk, n);
  ::close(fd);
  return reply;
}

TEST(ServeTransport, UnixSocketServesOneConnection) {
  const std::string path =
      "/tmp/dapple_serve_test_" + std::to_string(::getpid()) + ".sock";
  Server server;
  long handled = 0;
  std::thread daemon(
      [&] { handled = ServeUnixSocket(path, server, /*max_connections=*/1); });

  const std::string reply = UnixRoundTrip(
      path, PlanLine("u1", "GNMT-16", 'A', 2, 64) + "\n" +
                PlanLine("u2", "GNMT-16", 'A', 2, 64) + "\n" + "{nope\n");
  daemon.join();

  EXPECT_EQ(handled, 3);
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = reply.find('\n'); nl != std::string::npos;
       nl = reply.find('\n', start)) {
    lines.push_back(reply.substr(start, nl - start));
    start = nl + 1;
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"id\":\"u1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
  EXPECT_EQ(lines[0].substr(lines[0].find("\"plan\"")),
            lines[1].substr(lines[1].find("\"plan\"")));
  EXPECT_NE(lines[2].find("\"code\":\"parse_error\""), std::string::npos);
  EXPECT_EQ(server.Stats().cache.hits, 1);
}

}  // namespace
}  // namespace dapple::serve
