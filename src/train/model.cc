#include "train/model.h"

#include <algorithm>

#include "common/error.h"

namespace dapple::train {

void MlpModel::Add(std::unique_ptr<Layer> layer) {
  DAPPLE_CHECK(layer != nullptr) << "null layer";
  layers_.push_back(std::move(layer));
}

const Layer& MlpModel::layer(int i) const {
  DAPPLE_CHECK(i >= 0 && i < num_layers()) << "layer " << i;
  return *layers_[static_cast<std::size_t>(i)];
}

Layer& MlpModel::mutable_layer(int i) {
  DAPPLE_CHECK(i >= 0 && i < num_layers()) << "layer " << i;
  return *layers_[static_cast<std::size_t>(i)];
}

std::vector<Tensor*> MlpModel::Params() {
  std::vector<Tensor*> params;
  for (auto& layer : layers_) {
    if (layer->has_params()) {
      params.push_back(layer->mutable_weight());
      params.push_back(layer->mutable_bias());
    }
  }
  return params;
}

MlpModel MlpModel::Clone() const {
  MlpModel copy;
  for (const auto& layer : layers_) copy.Add(layer->Clone());
  return copy;
}

void MlpModel::CopyParamsFrom(const MlpModel& other) {
  DAPPLE_CHECK_EQ(num_layers(), other.num_layers()) << "structure mismatch";
  MlpModel& self = *this;
  MlpModel other_copy = other.Clone();
  std::vector<Tensor*> dst = self.Params();
  std::vector<Tensor*> src = other_copy.Params();
  DAPPLE_CHECK_EQ(dst.size(), src.size()) << "param count mismatch";
  for (std::size_t i = 0; i < dst.size(); ++i) *dst[i] = *src[i];
}

MlpModel MlpModel::MakeMlp(std::size_t in_features, std::size_t hidden, std::size_t out,
                           int hidden_layers, Rng& rng, bool use_tanh) {
  DAPPLE_CHECK_GE(hidden_layers, 1);
  MlpModel model;
  std::size_t width = in_features;
  for (int i = 0; i < hidden_layers; ++i) {
    model.Add(std::make_unique<Linear>(width, hidden, rng));
    if (use_tanh) {
      model.Add(std::make_unique<Tanh>());
    } else {
      model.Add(std::make_unique<Relu>());
    }
    width = hidden;
  }
  model.Add(std::make_unique<Linear>(width, out, rng));
  return model;
}

GradientVector ZeroGradients(MlpModel& model) {
  GradientVector grads;
  for (Tensor* p : model.Params()) {
    grads.emplace_back(p->rows(), p->cols(), 0.0f);
  }
  return grads;
}

void AccumulateGradients(GradientVector& dst, const GradientVector& src) {
  if (dst.empty()) {
    dst = src;
    return;
  }
  DAPPLE_CHECK_EQ(dst.size(), src.size()) << "gradient arity mismatch";
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i].AddInPlace(src[i]);
}

float MaxGradientDiff(const GradientVector& a, const GradientVector& b) {
  DAPPLE_CHECK_EQ(a.size(), b.size()) << "gradient arity mismatch";
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, Tensor::MaxAbsDiff(a[i], b[i]));
  }
  return worst;
}

}  // namespace dapple::train
