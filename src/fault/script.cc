#include "fault/script.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"

namespace dapple::fault {

namespace {

constexpr TimeSec kInf = std::numeric_limits<TimeSec>::infinity();

/// "%.12g" like the JSON writer, so scripts round-trip byte-stably.
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

const char* ToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDeviceSlowdown: return "slowdown";
    case FaultKind::kLinkDegradation: return "degrade";
    case FaultKind::kDeviceCrash: return "crash";
    case FaultKind::kDeviceRejoin: return "rejoin";
  }
  return "?";
}

bool FaultEvent::ActiveAt(TimeSec t) const {
  if (kind == FaultKind::kDeviceCrash) return t >= start;
  if (kind == FaultKind::kDeviceRejoin) return t >= start;
  return t >= start && t < end;
}

std::string FaultEvent::ToString() const {
  std::ostringstream os;
  os << fault::ToString(kind);
  if (device >= 0) os << " device=" << device;
  if (server >= 0) os << " server=" << server;
  if (kind == FaultKind::kDeviceCrash || kind == FaultKind::kDeviceRejoin) {
    os << " at=" << Num(start);
    return os.str();
  }
  os << " start=" << Num(start);
  if (end != kInf) os << " end=" << Num(end);
  if (kind == FaultKind::kDeviceSlowdown) {
    os << " mult=" << Num(compute_multiplier);
  } else {
    os << " bandwidth=" << Num(bandwidth_multiplier);
    if (extra_latency > 0.0) os << " latency=" << Num(extra_latency);
  }
  return os.str();
}

TimeSec FaultScript::FirstOnset() const {
  TimeSec first = kInf;
  for (const FaultEvent& e : events) first = std::min(first, e.start);
  return events.empty() ? 0.0 : first;
}

bool FaultScript::HasCrash() const {
  return std::any_of(events.begin(), events.end(), [](const FaultEvent& e) {
    return e.kind == FaultKind::kDeviceCrash;
  });
}

bool FaultScript::HasRejoin() const {
  return std::any_of(events.begin(), events.end(), [](const FaultEvent& e) {
    return e.kind == FaultKind::kDeviceRejoin;
  });
}

void FaultScript::Validate(const topo::Cluster& cluster) const {
  for (const FaultEvent& e : events) {
    const std::string label = e.ToString();
    DAPPLE_CHECK(e.start >= 0.0) << "negative start: " << label;
    switch (e.kind) {
      case FaultKind::kDeviceSlowdown:
        DAPPLE_CHECK(e.device >= 0 || e.server >= 0)
            << "slowdown needs a device or server target: " << label;
        DAPPLE_CHECK(e.end > e.start) << "empty window: " << label;
        DAPPLE_CHECK(e.compute_multiplier > 0.0 && e.compute_multiplier < 1.0)
            << "slowdown multiplier must be in (0, 1): " << label;
        break;
      case FaultKind::kLinkDegradation:
        DAPPLE_CHECK(e.server >= 0) << "link degradation targets a server: " << label;
        DAPPLE_CHECK(e.end > e.start) << "empty window: " << label;
        DAPPLE_CHECK(e.bandwidth_multiplier > 0.0 && e.bandwidth_multiplier <= 1.0)
            << "bandwidth multiplier must be in (0, 1]: " << label;
        DAPPLE_CHECK(e.extra_latency >= 0.0) << "negative latency: " << label;
        DAPPLE_CHECK(e.bandwidth_multiplier < 1.0 || e.extra_latency > 0.0)
            << "link degradation degrades nothing: " << label;
        break;
      case FaultKind::kDeviceCrash:
        DAPPLE_CHECK(e.device >= 0) << "crash targets a device: " << label;
        break;
      case FaultKind::kDeviceRejoin: {
        DAPPLE_CHECK(e.device >= 0) << "rejoin targets a device: " << label;
        const bool has_outage = std::any_of(
            events.begin(), events.end(), [&](const FaultEvent& c) {
              return c.kind == FaultKind::kDeviceCrash && c.device == e.device &&
                     c.start < e.start;
            });
        DAPPLE_CHECK(has_outage)
            << "rejoin without an earlier crash of the device: " << label;
        break;
      }
    }
    if (e.device >= 0) {
      DAPPLE_CHECK(e.device < cluster.num_devices())
          << "device out of range for " << cluster.name() << ": " << label;
    }
    if (e.server >= 0) {
      DAPPLE_CHECK(e.server < cluster.num_servers())
          << "server out of range for " << cluster.name() << ": " << label;
    }
  }
}

std::string FaultScript::ToString() const {
  std::string out;
  for (const FaultEvent& e : events) {
    out += e.ToString();
    out += '\n';
  }
  return out;
}

FaultScript ParseFaultScript(const std::string& text) {
  FaultScript script;
  std::istringstream lines(text);
  std::string line;
  int line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::istringstream words(line);
    std::string word;
    if (!(words >> word) || word[0] == '#') continue;

    FaultEvent e;
    if (word == "slowdown") {
      e.kind = FaultKind::kDeviceSlowdown;
    } else if (word == "degrade") {
      e.kind = FaultKind::kLinkDegradation;
      e.end = kInf;
    } else if (word == "crash") {
      e.kind = FaultKind::kDeviceCrash;
      e.end = kInf;
    } else if (word == "rejoin") {
      e.kind = FaultKind::kDeviceRejoin;
      e.end = kInf;
    } else {
      throw Error("fault script line " + std::to_string(line_no) +
                  ": unknown event kind '" + word + "'");
    }
    if (e.kind == FaultKind::kDeviceSlowdown) e.end = kInf;

    while (words >> word) {
      const std::size_t eq = word.find('=');
      if (eq == std::string::npos) {
        throw Error("fault script line " + std::to_string(line_no) +
                    ": expected key=value, got '" + word + "'");
      }
      const std::string key = word.substr(0, eq);
      const std::string value = word.substr(eq + 1);
      try {
        if (key == "device") {
          e.device = std::stoi(value);
        } else if (key == "server") {
          e.server = std::stoi(value);
        } else if (key == "start" || key == "at") {
          e.start = std::stod(value);
        } else if (key == "end") {
          e.end = std::stod(value);
        } else if (key == "mult") {
          e.compute_multiplier = std::stod(value);
        } else if (key == "bandwidth") {
          e.bandwidth_multiplier = std::stod(value);
        } else if (key == "latency") {
          e.extra_latency = std::stod(value);
        } else {
          throw Error("unknown key '" + key + "'");
        }
      } catch (const std::invalid_argument&) {
        throw Error("fault script line " + std::to_string(line_no) +
                    ": bad number in '" + word + "'");
      }
    }
    script.events.push_back(e);
  }
  return script;
}

TimeSec RejoinTimeAfter(const FaultScript& script, const FaultEvent& crash) {
  TimeSec rejoin = kInf;
  for (const FaultEvent& e : script.events) {
    if (e.kind != FaultKind::kDeviceRejoin || e.device != crash.device) continue;
    if (e.start > crash.start) rejoin = std::min(rejoin, e.start);
  }
  return rejoin;
}

FaultScript RandomFaultScript(std::uint64_t seed, const topo::Cluster& cluster,
                              const RandomFaultOptions& options) {
  Rng rng(seed * 0xd1342543de82ef95ull + 0xaf251af3b0f025b5ull);
  FaultScript script;
  const int count =
      static_cast<int>(rng.UniformInt(options.min_events, options.max_events));
  bool crashed = false;
  for (int i = 0; i < count; ++i) {
    FaultEvent e;
    const double roll = rng.Uniform(0.0, 1.0);
    if (!crashed && roll < options.crash_probability) {
      e.kind = FaultKind::kDeviceCrash;
      e.device = static_cast<topo::DeviceId>(
          rng.UniformInt(0, cluster.num_devices() - 1));
      // Keep the crash away from t=0 so every policy completes some work
      // first — recovery from "never started" is not an interesting case.
      e.start = rng.Uniform(0.2 * options.horizon, options.horizon);
      e.end = kInf;
      crashed = true;  // at most one crash per script keeps cases analyzable
    } else if (roll < options.crash_probability + options.link_probability &&
               cluster.num_servers() > 1) {
      e.kind = FaultKind::kLinkDegradation;
      e.server = static_cast<topo::ServerId>(
          rng.UniformInt(0, cluster.num_servers() - 1));
      e.start = rng.Uniform(0.0, 0.8 * options.horizon);
      e.end = e.start + rng.Uniform(0.1 * options.horizon, 0.5 * options.horizon);
      e.bandwidth_multiplier = rng.Uniform(0.2, 0.8);
      e.extra_latency = rng.Bernoulli(0.5) ? rng.Uniform(1e-5, 1e-3) : 0.0;
    } else {
      e.kind = FaultKind::kDeviceSlowdown;
      if (rng.Bernoulli(0.5)) {
        e.server = static_cast<topo::ServerId>(
            rng.UniformInt(0, cluster.num_servers() - 1));
      } else {
        e.device = static_cast<topo::DeviceId>(
            rng.UniformInt(0, cluster.num_devices() - 1));
      }
      e.start = rng.Uniform(0.0, 0.8 * options.horizon);
      e.end = e.start + rng.Uniform(0.1 * options.horizon, 0.5 * options.horizon);
      e.compute_multiplier = rng.Uniform(0.3, 0.9);
    }
    script.events.push_back(e);
  }
  // Deterministic canonical order (generation order is already
  // deterministic; sorting by start makes reports easier to read).
  std::stable_sort(script.events.begin(), script.events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.start < b.start; });
  script.Validate(cluster);
  return script;
}

}  // namespace dapple::fault
