// Minimal leveled logging. Benchmarks and examples print results directly;
// the logger is for diagnostics in the planner/simulator and defaults to
// warnings-only so test output stays clean.
#pragma once

#include <sstream>
#include <string>

namespace dapple {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {
void EmitLog(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { EmitLog(level_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace internal

}  // namespace dapple

#define DAPPLE_LOG(level)                                      \
  if (static_cast<int>(level) < static_cast<int>(::dapple::GetLogLevel())) { \
  } else                                                       \
    ::dapple::internal::LogLine(level).stream()

#define DAPPLE_LOG_DEBUG DAPPLE_LOG(::dapple::LogLevel::kDebug)
#define DAPPLE_LOG_INFO DAPPLE_LOG(::dapple::LogLevel::kInfo)
#define DAPPLE_LOG_WARN DAPPLE_LOG(::dapple::LogLevel::kWarn)
#define DAPPLE_LOG_ERROR DAPPLE_LOG(::dapple::LogLevel::kError)
