// Trainable layers for the numeric substrate. Layers are stateless with
// respect to activations: Forward returns the saved context explicitly so
// several micro-batches can be in flight simultaneously — exactly the
// property the DAPPLE runtime exploits (and the property GPipe's O(M)
// memory cost comes from).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "train/tensor.h"

namespace dapple::train {

/// Gradients of a layer's parameters; empty tensors for activation-only
/// layers.
struct LayerGrads {
  Tensor weight;
  Tensor bias;
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual const char* kind() const = 0;

  /// Computes the layer output. `saved` receives whatever the backward
  /// pass needs (typically the input); with re-computation the caller
  /// discards it and regenerates it later.
  virtual Tensor Forward(const Tensor& input, Tensor* saved) const = 0;

  /// Computes the input gradient from the saved context and the output
  /// gradient; parameter gradients (if any) are accumulated into `grads`.
  virtual Tensor Backward(const Tensor& saved, const Tensor& grad_out,
                          LayerGrads* grads) const = 0;

  virtual bool has_params() const { return false; }
  /// Parameter access for optimizers; only valid when has_params().
  virtual Tensor* mutable_weight() { return nullptr; }
  virtual Tensor* mutable_bias() { return nullptr; }

  /// Deep copy (for data-parallel replicas).
  virtual std::unique_ptr<Layer> Clone() const = 0;
};

/// Fully connected layer: out = in * W + b.
class Linear : public Layer {
 public:
  Linear(std::size_t in_features, std::size_t out_features, Rng& rng);
  Linear(Tensor weight, Tensor bias);

  const char* kind() const override { return "Linear"; }
  Tensor Forward(const Tensor& input, Tensor* saved) const override;
  Tensor Backward(const Tensor& saved, const Tensor& grad_out,
                  LayerGrads* grads) const override;
  bool has_params() const override { return true; }
  Tensor* mutable_weight() override { return &weight_; }
  Tensor* mutable_bias() override { return &bias_; }
  std::unique_ptr<Layer> Clone() const override;

 private:
  Tensor weight_;  // in x out
  Tensor bias_;    // 1 x out
};

/// Rectified linear activation.
class Relu : public Layer {
 public:
  const char* kind() const override { return "ReLU"; }
  Tensor Forward(const Tensor& input, Tensor* saved) const override;
  Tensor Backward(const Tensor& saved, const Tensor& grad_out,
                  LayerGrads* grads) const override;
  std::unique_ptr<Layer> Clone() const override { return std::make_unique<Relu>(); }
};

/// Hyperbolic tangent activation.
class Tanh : public Layer {
 public:
  const char* kind() const override { return "Tanh"; }
  Tensor Forward(const Tensor& input, Tensor* saved) const override;
  Tensor Backward(const Tensor& saved, const Tensor& grad_out,
                  LayerGrads* grads) const override;
  std::unique_ptr<Layer> Clone() const override { return std::make_unique<Tanh>(); }
};

/// Mean-squared-error loss with an explicit normalization count so that
/// micro-batch gradient accumulation sums to exactly the global-batch
/// mean: loss(micro) = sum((pred - target)^2) / (2 * normalization).
struct MseLoss {
  /// Returns the (partial) loss and writes d(loss)/d(pred) to `grad`.
  static double Compute(const Tensor& predictions, const Tensor& targets,
                        std::size_t normalization, Tensor* grad);
};

}  // namespace dapple::train
