#include "planner/torchgpipe_planner.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.h"

namespace dapple::planner {

TorchGpipePlanner::TorchGpipePlanner(const model::ModelProfile& model,
                                     const topo::Cluster& cluster)
    : model_(&model), cluster_(&cluster) {}

ParallelPlan TorchGpipePlanner::Plan(int stages) const {
  const int n = model_->num_layers();
  if (stages <= 0) stages = cluster_->num_devices();
  DAPPLE_CHECK_LE(stages, cluster_->num_devices())
      << "torchgpipe needs one device per stage";
  stages = std::min(stages, n);

  const double mb = model_->profile_micro_batch();
  // dp[j][s]: minimal max-block cost partitioning layers [0, j) into s
  // blocks (classic contiguous min-max partition DP).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(
      static_cast<std::size_t>(n + 1),
      std::vector<double>(static_cast<std::size_t>(stages + 1), kInf));
  std::vector<std::vector<int>> split(
      static_cast<std::size_t>(n + 1),
      std::vector<int>(static_cast<std::size_t>(stages + 1), -1));
  auto block_cost = [&](int a, int b) {
    return model_->ForwardTime(a, b, mb) + model_->BackwardTime(a, b, mb);
  };
  dp[0][0] = 0.0;
  for (int j = 1; j <= n; ++j) {
    for (int s = 1; s <= std::min(j, stages); ++s) {
      for (int k = s - 1; k < j; ++k) {
        const double prev = dp[static_cast<std::size_t>(k)][static_cast<std::size_t>(s - 1)];
        if (prev == kInf) continue;
        const double value = std::max(prev, block_cost(k, j));
        if (value < dp[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)]) {
          dp[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] = value;
          split[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] = k;
        }
      }
    }
  }

  std::vector<int> bounds = {n};
  int j = n;
  for (int s = stages; s > 0; --s) {
    j = split[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
    DAPPLE_CHECK_GE(j, 0) << "corrupt torchgpipe DP";
    bounds.push_back(j);
  }
  std::reverse(bounds.begin(), bounds.end());

  ParallelPlan plan;
  plan.model = model_->name();
  for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
    StagePlan stage;
    stage.layer_begin = bounds[i];
    stage.layer_end = bounds[i + 1];
    stage.devices = topo::DeviceSet::Range(static_cast<int>(i), 1);
    plan.stages.push_back(std::move(stage));
  }
  plan.Validate(*model_);
  return plan;
}

double TorchGpipePlanner::Bottleneck(const ParallelPlan& plan) const {
  const double mb = model_->profile_micro_batch();
  double worst = 0.0;
  for (const StagePlan& s : plan.stages) {
    worst = std::max(worst, model_->ForwardTime(s.layer_begin, s.layer_end, mb) +
                                model_->BackwardTime(s.layer_begin, s.layer_end, mb));
  }
  return worst;
}

}  // namespace dapple::planner
