#include "train/layer.h"

#include <cmath>

#include "common/error.h"

namespace dapple::train {

Linear::Linear(std::size_t in_features, std::size_t out_features, Rng& rng)
    : weight_(Tensor::Random(in_features, out_features, rng,
                             static_cast<float>(1.0 / std::sqrt(in_features)))),
      bias_(1, out_features, 0.0f) {}

Linear::Linear(Tensor weight, Tensor bias)
    : weight_(std::move(weight)), bias_(std::move(bias)) {
  DAPPLE_CHECK_EQ(bias_.rows(), 1u) << "bias must be a row vector";
  DAPPLE_CHECK_EQ(bias_.cols(), weight_.cols()) << "bias/weight width mismatch";
}

Tensor Linear::Forward(const Tensor& input, Tensor* saved) const {
  DAPPLE_CHECK_EQ(input.cols(), weight_.rows()) << "linear input width";
  Tensor out = input.MatMul(weight_);
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out.at(r, c) += bias_.at(0, c);
    }
  }
  if (saved) *saved = input;
  return out;
}

Tensor Linear::Backward(const Tensor& saved, const Tensor& grad_out,
                        LayerGrads* grads) const {
  DAPPLE_CHECK(grads != nullptr) << "linear backward needs a grads sink";
  // dW = saved^T * grad_out; db = column sums; dX = grad_out * W^T.
  Tensor dw = saved.Transposed().MatMul(grad_out);
  Tensor db(1, grad_out.cols(), 0.0f);
  for (std::size_t r = 0; r < grad_out.rows(); ++r) {
    for (std::size_t c = 0; c < grad_out.cols(); ++c) {
      db.at(0, c) += grad_out.at(r, c);
    }
  }
  if (grads->weight.empty()) {
    grads->weight = std::move(dw);
    grads->bias = std::move(db);
  } else {
    grads->weight.AddInPlace(dw);
    grads->bias.AddInPlace(db);
  }
  return grad_out.MatMul(weight_.Transposed());
}

std::unique_ptr<Layer> Linear::Clone() const {
  return std::make_unique<Linear>(weight_, bias_);
}

Tensor Relu::Forward(const Tensor& input, Tensor* saved) const {
  Tensor out = input;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      if (out.at(r, c) < 0.0f) out.at(r, c) = 0.0f;
    }
  }
  if (saved) *saved = input;
  return out;
}

Tensor Relu::Backward(const Tensor& saved, const Tensor& grad_out, LayerGrads*) const {
  Tensor grad_in = grad_out;
  for (std::size_t r = 0; r < grad_in.rows(); ++r) {
    for (std::size_t c = 0; c < grad_in.cols(); ++c) {
      if (saved.at(r, c) <= 0.0f) grad_in.at(r, c) = 0.0f;
    }
  }
  return grad_in;
}

Tensor Tanh::Forward(const Tensor& input, Tensor* saved) const {
  Tensor out = input;
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out.at(r, c) = std::tanh(out.at(r, c));
    }
  }
  if (saved) *saved = input;
  return out;
}

Tensor Tanh::Backward(const Tensor& saved, const Tensor& grad_out, LayerGrads*) const {
  Tensor grad_in = grad_out;
  for (std::size_t r = 0; r < grad_in.rows(); ++r) {
    for (std::size_t c = 0; c < grad_in.cols(); ++c) {
      const float t = std::tanh(saved.at(r, c));
      grad_in.at(r, c) *= 1.0f - t * t;
    }
  }
  return grad_in;
}

double MseLoss::Compute(const Tensor& predictions, const Tensor& targets,
                        std::size_t normalization, Tensor* grad) {
  DAPPLE_CHECK(predictions.rows() == targets.rows() &&
               predictions.cols() == targets.cols())
      << "loss shape mismatch";
  DAPPLE_CHECK_GT(normalization, 0u);
  double loss = 0.0;
  Tensor g(predictions.rows(), predictions.cols());
  const float inv = 1.0f / static_cast<float>(normalization);
  for (std::size_t r = 0; r < predictions.rows(); ++r) {
    for (std::size_t c = 0; c < predictions.cols(); ++c) {
      const float diff = predictions.at(r, c) - targets.at(r, c);
      loss += 0.5 * static_cast<double>(diff) * diff;
      g.at(r, c) = diff * inv;
    }
  }
  if (grad) *grad = std::move(g);
  return loss / static_cast<double>(normalization);
}

}  // namespace dapple::train
