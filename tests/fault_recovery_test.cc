// Fault recovery subsystem (fault/degrade.h + fault/recovery.h): cluster
// state snapshots, degraded-cluster construction, plan remapping, residual
// speed profiles, and the three recovery policies end to end. The headline
// acceptance case lives here at unit scale: on a persistent straggler the
// elastic replan recovers measurably more goodput than the synchronous
// stall baseline, and every pipeline the experiments build passes the full
// ScheduleValidator invariant set.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "check/validator.h"
#include "common/error.h"
#include "common/units.h"
#include "fault/degrade.h"
#include "fault/recovery.h"
#include "fault/report.h"
#include "fault/script.h"
#include "model/zoo.h"
#include "planner/plan.h"
#include "runtime/graph_builder.h"
#include "topo/cluster.h"
#include "topo/device_set.h"

namespace dapple::fault {
namespace {

model::ModelProfile EightLayerModel() {
  // Exact-representable layer times keep every simulated timestamp (and the
  // golden-style JSON determinism assertions below) platform-independent.
  return model::MakeUniformSynthetic(8, 0.002, 0.004, 1_MiB, 1'000'000);
}

planner::ParallelPlan TwoStagePlan(const model::ModelProfile& m, int replicas_per_stage) {
  planner::ParallelPlan plan;
  plan.model = m.name();
  plan.stages.push_back({0, 4, topo::DeviceSet::Range(0, replicas_per_stage)});
  plan.stages.push_back({4, 8, topo::DeviceSet::Range(replicas_per_stage, replicas_per_stage)});
  return plan;
}

FaultOptions FastOptions(long global_batch_size) {
  FaultOptions options;
  options.build.global_batch_size = global_batch_size;
  options.planner.keep_alternatives = 0;
  options.horizon = 10.0;
  return options;
}

// --- ClusterState / StateAt ------------------------------------------------

TEST(FaultStateTest, StateAtComposesWindowsAndKeepsCrashesPermanent) {
  const topo::Cluster cluster = topo::MakeConfigB(2);
  const FaultScript script = ParseFaultScript(
      "slowdown device=0 start=1 end=6 mult=0.5\n"
      "slowdown server=0 start=2 end=4 mult=0.8\n"
      "crash device=1 at=5\n");

  const ClusterState before = StateAt(script, cluster, 0.5);
  EXPECT_FALSE(before.Degraded());

  // Both windows active: device- and server-targeted slowdowns compose
  // multiplicatively into the server's control-plane multiplier.
  const ClusterState mid = StateAt(script, cluster, 3.0);
  EXPECT_DOUBLE_EQ(mid.server_compute[0], 0.4);
  EXPECT_FALSE(mid.AnyDead());
  EXPECT_TRUE(mid.Degraded());

  // Windows expire; the crash never does.
  const ClusterState late = StateAt(script, cluster, 100.0);
  EXPECT_DOUBLE_EQ(late.server_compute[0], 1.0);
  EXPECT_TRUE(late.device_dead[1]);
  EXPECT_TRUE(late.AnyDead());
  EXPECT_NE(mid, late);
}

// --- MakeDegradedCluster ---------------------------------------------------

TEST(FaultDegradeTest, DeadDeviceDrainsItsServerAndIdsStayDense) {
  const topo::Cluster cluster = topo::MakeConfigB(3);
  ClusterState state = StateAt(FaultScript{}, cluster, 0.0);
  state.device_dead[1] = true;
  state.server_compute[2] = 0.5;

  const DegradedCluster degraded = MakeDegradedCluster(cluster, state);
  ASSERT_TRUE(degraded.feasible);
  EXPECT_EQ(degraded.cluster.num_servers(), 2);
  ASSERT_EQ(degraded.to_original_server, (std::vector<topo::ServerId>{0, 2}));
  EXPECT_EQ(degraded.to_original_device, (std::vector<topo::DeviceId>{0, 2}));
  EXPECT_EQ(degraded.from_original_device, (std::vector<topo::DeviceId>{0, -1, 1}));
  // The straggler multiplier is baked into the planning cluster.
  EXPECT_DOUBLE_EQ(degraded.cluster.server_speed(0), 1.0);
  EXPECT_DOUBLE_EQ(degraded.cluster.server_speed(1), 0.5);
}

TEST(FaultDegradeTest, LinkDegradationScalesTheSurvivingFabric) {
  const topo::Cluster cluster = topo::MakeConfigB(2);
  ClusterState state = StateAt(FaultScript{}, cluster, 0.0);
  state.server_bandwidth[1] = 0.25;
  state.server_extra_latency[1] = 0.001;

  const DegradedCluster degraded = MakeDegradedCluster(cluster, state);
  ASSERT_TRUE(degraded.feasible);
  EXPECT_DOUBLE_EQ(degraded.cluster.interconnect().inter_server_bandwidth,
                   cluster.interconnect().inter_server_bandwidth * 0.25);
  EXPECT_DOUBLE_EQ(degraded.cluster.interconnect().inter_server_latency,
                   cluster.interconnect().inter_server_latency + 0.001);
}

TEST(FaultDegradeTest, NoSurvivingServerIsInfeasible) {
  const topo::Cluster cluster = topo::MakeConfigB(1);
  ClusterState state = StateAt(FaultScript{}, cluster, 0.0);
  state.device_dead[0] = true;
  const DegradedCluster degraded = MakeDegradedCluster(cluster, state);
  EXPECT_FALSE(degraded.feasible);
  EXPECT_EQ(degraded.from_original_device, (std::vector<topo::DeviceId>{-1}));
}

// --- RemapPlanToCluster ----------------------------------------------------

TEST(FaultDegradeTest, RemapKeepsLayerRangesAndClampsReplication) {
  const model::ModelProfile m = EightLayerModel();
  const planner::ParallelPlan plan = TwoStagePlan(m, 2);  // devices {0,1} | {2,3}

  const topo::Cluster cluster = topo::MakeConfigB(4);
  ClusterState state = StateAt(FaultScript{}, cluster, 0.0);
  state.device_dead[3] = true;

  const auto remapped = RemapPlanToCluster(plan, MakeDegradedCluster(cluster, state));
  ASSERT_TRUE(remapped.has_value());
  ASSERT_EQ(remapped->num_stages(), 2);
  EXPECT_EQ(remapped->stages[0].layer_begin, 0);
  EXPECT_EQ(remapped->stages[0].layer_end, 4);
  EXPECT_EQ(remapped->stages[1].layer_begin, 4);
  EXPECT_EQ(remapped->stages[1].layer_end, 8);
  // Three survivors: the first stage keeps both replicas, the second clamps.
  EXPECT_EQ(remapped->stages[0].replication(), 2);
  EXPECT_EQ(remapped->stages[1].replication(), 1);
  remapped->Validate(m);
}

TEST(FaultDegradeTest, RemapFailsWhenStagesOutnumberSurvivors) {
  const model::ModelProfile m = EightLayerModel();
  const planner::ParallelPlan plan = TwoStagePlan(m, 1);

  const topo::Cluster cluster = topo::MakeConfigB(2);
  ClusterState state = StateAt(FaultScript{}, cluster, 0.0);
  state.device_dead[1] = true;  // one survivor, two stages
  EXPECT_FALSE(RemapPlanToCluster(plan, MakeDegradedCluster(cluster, state)).has_value());
}

// --- BuildSpeedProfiles ----------------------------------------------------

struct BuiltScenario {
  model::ModelProfile model = EightLayerModel();
  topo::Cluster cluster = topo::MakeConfigB(2);
  planner::ParallelPlan plan;
  runtime::BuiltPipeline built;

  BuiltScenario() : plan(TwoStagePlan(model, 1)) {
    runtime::BuildOptions options;
    options.global_batch_size = 4;
    built = runtime::GraphBuilder(model, cluster, plan, options).Build();
  }

  std::vector<sim::ResourceSpeedProfile> Profiles(const FaultScript& script, TimeSec t0,
                                                  const ClusterState* baked = nullptr) {
    return BuildSpeedProfiles(script, cluster, {0, 1}, plan, built, t0, baked);
  }
};

TEST(FaultProfileTest, WindowsShiftIntoIterationLocalTime) {
  BuiltScenario s;
  const FaultScript script =
      ParseFaultScript("slowdown device=0 start=2 end=4 mult=0.5\n");

  const auto at_zero = s.Profiles(script, 0.0);
  ASSERT_EQ(at_zero.size(), 1u);
  EXPECT_EQ(at_zero[0].resource, 0);  // device 0's compute resource
  ASSERT_EQ(at_zero[0].segments.size(), 2u);
  EXPECT_DOUBLE_EQ(at_zero[0].segments[0].start, 2.0);
  EXPECT_DOUBLE_EQ(at_zero[0].segments[0].speed, 0.5);
  EXPECT_DOUBLE_EQ(at_zero[0].segments[1].start, 4.0);
  EXPECT_DOUBLE_EQ(at_zero[0].segments[1].speed, 1.0);

  // An iteration starting inside the window sees its remainder from t = 0.
  const auto mid = s.Profiles(script, 3.0);
  ASSERT_EQ(mid.size(), 1u);
  ASSERT_EQ(mid[0].segments.size(), 2u);
  EXPECT_DOUBLE_EQ(mid[0].segments[0].start, 0.0);
  EXPECT_DOUBLE_EQ(mid[0].segments[0].speed, 0.5);
  EXPECT_DOUBLE_EQ(mid[0].segments[1].start, 1.0);

  // Entirely in the past: no profile at all.
  EXPECT_TRUE(s.Profiles(script, 5.0).empty());
}

TEST(FaultProfileTest, CrashPinsTheDeviceForever) {
  BuiltScenario s;
  const FaultScript script = ParseFaultScript("crash device=1 at=2\n");
  const auto profiles = s.Profiles(script, 3.0);  // iteration starts after the crash
  ASSERT_EQ(profiles.size(), 1u);
  EXPECT_EQ(profiles[0].resource, 1);
  ASSERT_EQ(profiles[0].segments.size(), 1u);
  EXPECT_DOUBLE_EQ(profiles[0].segments[0].start, 0.0);
  EXPECT_DOUBLE_EQ(profiles[0].segments[0].speed, 0.0);
}

TEST(FaultProfileTest, BakedStateCancelsToResidualSpeeds) {
  BuiltScenario s;
  const FaultScript script =
      ParseFaultScript("slowdown device=0 start=2 end=4 mult=0.5\n");
  ClusterState baked = StateAt(script, s.cluster, 3.0);  // window active
  ASSERT_DOUBLE_EQ(baked.server_compute[0], 0.5);

  // While the baked window is active the pipeline's durations already carry
  // the slowdown: the residual is 1.0 inside the window and 2.0 after it.
  const auto mid = s.Profiles(script, 3.0, &baked);
  ASSERT_EQ(mid.size(), 1u);
  ASSERT_EQ(mid[0].segments.size(), 2u);
  EXPECT_DOUBLE_EQ(mid[0].segments[0].start, 0.0);
  EXPECT_DOUBLE_EQ(mid[0].segments[0].speed, 1.0);
  EXPECT_DOUBLE_EQ(mid[0].segments[1].start, 1.0);
  EXPECT_DOUBLE_EQ(mid[0].segments[1].speed, 2.0);

  // After the window the stale baked plan under-prices the device: it runs
  // at 2x the baked baseline until the next replan rebuilds it.
  const auto late = s.Profiles(script, 5.0, &baked);
  ASSERT_EQ(late.size(), 1u);
  ASSERT_EQ(late[0].segments.size(), 1u);
  EXPECT_DOUBLE_EQ(late[0].segments[0].start, 0.0);
  EXPECT_DOUBLE_EQ(late[0].segments[0].speed, 2.0);
}

// --- RunFaultExperiment ----------------------------------------------------

TEST(FaultRecoveryTest, PolicyNamesRoundTrip) {
  EXPECT_EQ(ParseRecoveryPolicy("stall"), RecoveryPolicy::kSyncStall);
  EXPECT_EQ(ParseRecoveryPolicy("checkpoint"), RecoveryPolicy::kCheckpointRestart);
  EXPECT_EQ(ParseRecoveryPolicy("replan"), RecoveryPolicy::kElasticReplan);
  EXPECT_THROW(ParseRecoveryPolicy("hope"), Error);
  EXPECT_STREQ(ToString(RecoveryPolicy::kElasticReplan), "replan");
}

TEST(FaultRecoveryTest, FaultFreeScriptMatchesHealthyThroughput) {
  const model::ModelProfile m = EightLayerModel();
  const topo::Cluster cluster = topo::MakeConfigB(2);
  const FaultReport report = RunFaultExperiment(
      m, cluster, TwoStagePlan(m, 1), FaultScript{}, RecoveryPolicy::kSyncStall,
      FastOptions(8));
  EXPECT_GT(report.iterations_completed, 0);
  EXPECT_EQ(report.replans, 0);
  EXPECT_EQ(report.iterations_lost, 0);
  EXPECT_TRUE(report.recovered);
  // Goodput only loses the fractional iteration cut off by the horizon.
  EXPECT_GT(report.goodput, 0.9 * report.healthy_throughput);
  EXPECT_LE(report.goodput, report.healthy_throughput * (1.0 + 1e-9));
}

// The acceptance demo at unit scale: a persistent 0.5x straggler server.
// Sync-stall runs at the straggler's pace forever; the elastic replan pays
// one replan and rebalances onto the heterogeneous cluster.
TEST(FaultRecoveryTest, ElasticReplanBeatsSyncStallOnAPersistentStraggler) {
  const model::ModelProfile m = EightLayerModel();
  const topo::Cluster cluster = topo::MakeConfigB(2);
  const planner::ParallelPlan plan = TwoStagePlan(m, 1);
  const FaultScript script = ParseFaultScript("slowdown server=1 start=1 mult=0.5\n");
  const FaultOptions options = FastOptions(8);

  const FaultReport stall = RunFaultExperiment(m, cluster, plan, script,
                                               RecoveryPolicy::kSyncStall, options);
  const FaultReport replan = RunFaultExperiment(m, cluster, plan, script,
                                                RecoveryPolicy::kElasticReplan, options);

  // The straggler window never closes, so the baseline never runs clean.
  EXPECT_FALSE(stall.recovered);
  EXPECT_TRUE(std::isinf(stall.time_to_recover));
  EXPECT_GT(stall.goodput_loss, 0.0);

  EXPECT_GE(replan.replans, 1);
  EXPECT_TRUE(replan.recovered);
  EXPECT_TRUE(std::isfinite(replan.time_to_recover));
  EXPECT_GT(replan.post_fault_throughput, 0.0);
  EXPECT_GT(replan.goodput, stall.goodput);
  EXPECT_LT(replan.goodput_loss, stall.goodput_loss);
}

TEST(FaultRecoveryTest, CrashUnderSyncStallHaltsTheJobForGood) {
  const model::ModelProfile m = EightLayerModel();
  const topo::Cluster cluster = topo::MakeConfigB(2);
  const FaultScript script = ParseFaultScript("crash device=1 at=2\n");
  const FaultReport report =
      RunFaultExperiment(m, cluster, TwoStagePlan(m, 1), script,
                         RecoveryPolicy::kSyncStall, FastOptions(8));

  EXPECT_FALSE(report.recovered);
  EXPECT_TRUE(std::isinf(report.time_to_recover));
  EXPECT_EQ(report.iterations_lost, 1);
  EXPECT_DOUBLE_EQ(report.post_fault_throughput, 0.0);
  // Work done before the crash still counts toward goodput.
  EXPECT_GT(report.iterations_completed, 0);
  EXPECT_GT(report.goodput, 0.0);
  EXPECT_LT(report.goodput, report.healthy_throughput);
  // The timeline ends in a stall row pinned to the horizon.
  ASSERT_FALSE(report.timeline.empty());
  EXPECT_EQ(report.timeline.back().kind, "stall");
  EXPECT_DOUBLE_EQ(report.timeline.back().end, report.horizon);
}

TEST(FaultRecoveryTest, CheckpointRestartBoundsTheRollback) {
  const model::ModelProfile m = EightLayerModel();
  const topo::Cluster cluster = topo::MakeConfigB(4);
  const planner::ParallelPlan plan = TwoStagePlan(m, 2);
  const FaultScript script = ParseFaultScript("crash device=3 at=2\n");

  FaultOptions options = FastOptions(8);
  options.checkpoint_period = 3;
  options.checkpoint_cost = 0.05;
  options.detect_latency = 0.1;
  options.restore_cost = 0.3;

  // Every pipeline (initial and remapped) must satisfy the full invariant
  // set when run fault-free — the acceptance criterion, checked inline.
  int validated = 0;
  options.pipeline_observer = [&](const runtime::BuiltPipeline& built,
                                  const planner::ParallelPlan& p,
                                  const topo::Cluster& c) {
    (void)c;
    const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
    const check::ValidationReport report =
        check::ScheduleValidator(p, built.options).Validate(built, result);
    EXPECT_TRUE(report.ok()) << "plan " << p.ToString() << ":\n" << report.ToString();
    ++validated;
  };

  const FaultReport report = RunFaultExperiment(m, cluster, plan, script,
                                                RecoveryPolicy::kCheckpointRestart, options);
  EXPECT_GE(validated, 2);  // initial + post-crash remap
  EXPECT_EQ(report.restores, 1);
  EXPECT_GE(report.checkpoints, 1);
  EXPECT_TRUE(report.recovered);
  EXPECT_TRUE(std::isfinite(report.time_to_recover));
  EXPECT_GT(report.post_fault_throughput, 0.0);
  // Rollback loses at most the in-flight iteration plus one period's work.
  EXPECT_GE(report.iterations_lost, 1);
  EXPECT_LE(report.iterations_lost, options.checkpoint_period + 1);
}

TEST(FaultRecoveryTest, ElasticReplanSurvivesACrashWithValidatedPipelines) {
  const model::ModelProfile m = EightLayerModel();
  const topo::Cluster cluster = topo::MakeConfigB(4);
  const planner::ParallelPlan plan = TwoStagePlan(m, 2);
  const FaultScript script = ParseFaultScript("crash device=3 at=2\n");

  FaultOptions options = FastOptions(8);
  int validated = 0;
  options.pipeline_observer = [&](const runtime::BuiltPipeline& built,
                                  const planner::ParallelPlan& p,
                                  const topo::Cluster& c) {
    (void)c;
    const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
    const check::ValidationReport report =
        check::ScheduleValidator(p, built.options).Validate(built, result);
    EXPECT_TRUE(report.ok()) << "plan " << p.ToString() << ":\n" << report.ToString();
    ++validated;
  };

  const FaultReport report = RunFaultExperiment(m, cluster, plan, script,
                                                RecoveryPolicy::kElasticReplan, options);
  EXPECT_GE(validated, 2);  // initial + replanned
  EXPECT_GE(report.replans, 1);
  EXPECT_TRUE(report.recovered);
  EXPECT_GT(report.post_fault_throughput, 0.0);
  // The replanned cluster lost a server; the final plan must differ in
  // placement from the initial 2:2 (three devices cannot host it).
  EXPECT_EQ(report.initial_plan, plan.ToString());
}

TEST(FaultRecoveryTest, ReportsAreByteDeterministic) {
  const model::ModelProfile m = EightLayerModel();
  const topo::Cluster cluster = topo::MakeConfigB(2);
  const planner::ParallelPlan plan = TwoStagePlan(m, 1);
  const FaultScript script = ParseFaultScript(
      "slowdown server=1 start=1 end=3 mult=0.5\n"
      "crash device=1 at=5\n");
  const FaultOptions options = FastOptions(8);

  const FaultReport a = RunFaultExperiment(m, cluster, plan, script,
                                           RecoveryPolicy::kElasticReplan, options);
  const FaultReport b = RunFaultExperiment(m, cluster, plan, script,
                                           RecoveryPolicy::kElasticReplan, options);
  EXPECT_EQ(ToJson(a), ToJson(b));
  EXPECT_EQ(ToChromeTrace(a), ToChromeTrace(b));
  EXPECT_EQ(ToText(a), ToText(b));
  // Infinity never leaks into the JSON encoding (golden-file safety).
  EXPECT_EQ(ToJson(a).find("inf"), std::string::npos);
}

}  // namespace
}  // namespace dapple::fault
