#include "planner/dp_planner.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "common/error.h"
#include "common/log.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "topo/assignment.h"

namespace dapple::planner {

namespace {

/// Canonical allocation key. Identical servers are interchangeable, so on
/// homogeneous clusters two allocations with the same sorted per-server
/// used counts lead to equivalent futures; on heterogeneous clusters the
/// server identity matters and the counts stay positional.
std::string CanonicalKey(const topo::AllocationState& state) {
  std::vector<int> counts;
  counts.reserve(static_cast<std::size_t>(state.cluster().num_servers()));
  for (int s = 0; s < state.cluster().num_servers(); ++s) {
    counts.push_back(state.used_on_server(s));
  }
  if (state.cluster().homogeneous()) {
    std::sort(counts.begin(), counts.end());
  }
  std::string key;
  for (int c : counts) {
    key += std::to_string(c);
    key += ',';
  }
  return key;
}

/// Compact identity of a plan's (layer range, device list) structure, used
/// only for dedup — raw little-endian ints, never printed. Millions of
/// candidates get one each, so formatting with to_string would be a
/// measurable share of the search.
std::string PlanSignature(const ParallelPlan& p) {
  std::string sig;
  sig.reserve(p.stages.size() * 16);
  auto put = [&sig](std::int32_t v) {
    sig.append(reinterpret_cast<const char*>(&v), sizeof(v));
  };
  for (const StagePlan& s : p.stages) {
    put(s.layer_begin);
    put(s.layer_end);
    for (topo::DeviceId d : s.devices.devices()) put(d);
    put(-1);
  }
  return sig;
}

struct SearchNode {
  std::vector<StagePlan> prefix;  // stages covering layers [0, prefix_end)
  topo::AllocationState state;
  double tpl = 0.0;  // latency of prefix + default suffix (the paper's TPL)
};

}  // namespace

const char* ToString(RecomputePolicy policy) {
  switch (policy) {
    case RecomputePolicy::kOff: return "off";
    case RecomputePolicy::kAll: return "all";
    case RecomputePolicy::kAuto: return "auto";
  }
  return "?";
}

RecomputePolicy ParseRecomputePolicy(const std::string& text) {
  std::string lower(text);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "off") return RecomputePolicy::kOff;
  if (lower == "all" || lower == "on") return RecomputePolicy::kAll;
  if (lower == "auto") return RecomputePolicy::kAuto;
  throw Error("unknown recompute policy '" + text + "' (off | all | auto)");
}

DapplePlanner::DapplePlanner(const model::ModelProfile& model, const topo::Cluster& cluster,
                             PlannerOptions options)
    : model_(&model), cluster_(&cluster), options_(options) {
  DAPPLE_CHECK_GT(options_.global_batch_size, 0) << "planner needs a global batch size";
}

PlanEstimate DapplePlanner::Evaluate(const ParallelPlan& plan) const {
  LatencyEstimator estimator(*model_, *cluster_, EffectiveLatencyOptions(
                                 options_.recompute == RecomputePolicy::kAll));
  return estimator.Estimate(plan, options_.global_batch_size);
}

LatencyOptions DapplePlanner::EffectiveLatencyOptions(bool recompute_all) const {
  LatencyOptions latency = options_.latency;
  if (options_.memory_cap > 0) latency.memory_cap = options_.memory_cap;
  if (recompute_all) latency.recompute = true;
  return latency;
}

PlanResult DapplePlanner::Plan() const {
  if (options_.recompute != RecomputePolicy::kAuto) {
    return Search(EffectiveLatencyOptions(options_.recompute == RecomputePolicy::kAll));
  }
  // Auto: try without recomputation first — it is latency-free and most
  // instances fit. DawnPiper-style fallback only when nothing fits.
  try {
    return Search(EffectiveLatencyOptions(false));
  } catch (const Error&) {
    // Fall through: rerun with recomputation on every stage (throws again
    // if even that cannot fit), then trim to the cheapest subset.
  }
  PlanResult result = Search(EffectiveLatencyOptions(true));
  const LatencyOptions plain = EffectiveLatencyOptions(false);
  LatencyEstimator estimator(*model_, *cluster_, plain);
  std::unique_ptr<StageCostCache> cache;
  if (options_.use_stage_cache && cluster_->num_devices() <= kStageCacheMaxDevices) {
    cache = std::make_unique<StageCostCache>(
        static_cast<std::size_t>(std::max(1, options_.cache_shards)),
        static_cast<std::size_t>(std::max(0L, options_.cache_entries_per_shard)));
    estimator.set_stage_cache(cache.get());
  }
  int probes = MinimizeRecompute(estimator, result.plan, result.estimate);
  int recompute_stages = 0;
  for (const StagePlan& s : result.plan.stages) recompute_stages += s.recompute ? 1 : 0;
  // The alternatives feed the Session's simulator re-ranking; give each the
  // same per-stage treatment so they stay comparable (and still fit).
  for (auto& [alt_plan, alt_est] : result.alternatives) {
    probes += MinimizeRecompute(estimator, alt_plan, alt_est);
  }
  result.stats.recompute_stages = recompute_stages;
  result.stats.fit_probes = probes;
  if (result.stats.memory_cap > 0) {
    auto& metrics = obs::MetricsRegistry::Global();
    metrics.counter("planner.cap.recompute_stages").Increment(recompute_stages);
    metrics.counter("planner.cap.fit_probes").Increment(probes);
  }
  DAPPLE_LOG_INFO << "memory-cap fit: " << recompute_stages << "/"
                  << result.plan.num_stages() << " stages recompute ("
                  << probes << " fit probes)";
  return result;
}

int DapplePlanner::MinimizeRecompute(const LatencyEstimator& estimator,
                                     ParallelPlan& plan, PlanEstimate& estimate) const {
  const int S = plan.num_stages();
  // Latency penalty of checkpointing stage s is the replayed forward:
  // recompute_overhead x F_s. Cheapest stages first, ties by stage index.
  std::vector<TimeSec> penalty(static_cast<std::size_t>(S), 0.0);
  for (const StageCost& sc : estimate.stages) {
    if (!sc.is_comm && sc.comp_index >= 0 && sc.comp_index < S) {
      penalty[static_cast<std::size_t>(sc.comp_index)] =
          estimator.options().recompute_overhead * sc.forward;
    }
  }
  std::vector<int> order(static_cast<std::size_t>(S));
  for (int i = 0; i < S; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const TimeSec pa = penalty[static_cast<std::size_t>(a)];
    const TimeSec pb = penalty[static_cast<std::size_t>(b)];
    if (pa != pb) return pa < pb;
    return a < b;
  });

  int probes = 0;
  auto estimate_prefix = [&](int k) -> PlanEstimate {
    for (int i = 0; i < S; ++i) plan.stages[static_cast<std::size_t>(i)].recompute = false;
    for (int i = 0; i < k; ++i) {
      plan.stages[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])].recompute =
          true;
    }
    ++probes;
    return estimator.Estimate(plan, options_.global_batch_size);
  };

  // Binary search the smallest feasible prefix. The predicate is monotone
  // in practice (more checkpointed stages, less stash) but not provably so
  // for single-layer stages, where the replay transient can exceed the
  // saving — the final verification probe keeps the result sound either
  // way, falling back to all-stage recomputation (known feasible: the
  // all-recompute search produced this plan).
  int lo = 0, hi = S;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (estimate_prefix(mid).feasible) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  PlanEstimate fitted = estimate_prefix(lo);
  if (!fitted.feasible && lo < S) {
    fitted = estimate_prefix(S);
  }
  estimate = fitted;
  return probes;
}

PlanResult DapplePlanner::Search(const LatencyOptions& latency) const {
  const auto search_start = std::chrono::steady_clock::now();
  const int num_layers = model_->num_layers();
  const int num_devices = cluster_->num_devices();
  const int max_stages =
      options_.max_stages > 0 ? options_.max_stages : num_devices;
  DAPPLE_CHECK_GT(num_devices, 0);

  LatencyEstimator estimator(*model_, *cluster_, latency);
  std::unique_ptr<StageCostCache> cache;
  if (options_.use_stage_cache && num_devices <= kStageCacheMaxDevices) {
    cache = std::make_unique<StageCostCache>(
        static_cast<std::size_t>(std::max(1, options_.cache_shards)),
        static_cast<std::size_t>(std::max(0L, options_.cache_entries_per_shard)));
    estimator.set_stage_cache(cache.get());
  }

  // Thread plumbing: 0 = shared pool, 1 = serial inline, n > 1 = dedicated
  // pool. The serial path bypasses the pool entirely so single-threaded
  // callers (tests, tiny replans) pay no synchronization at all.
  std::unique_ptr<ThreadPool> local_pool;
  ThreadPool* pool = nullptr;
  if (options_.num_threads == 0) {
    pool = &ThreadPool::Shared();
  } else if (options_.num_threads > 1) {
    local_pool = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options_.num_threads));
    pool = local_pool.get();
  }
  auto for_each = [&](std::size_t count, const std::function<void(std::size_t)>& body) {
    if (pool == nullptr) {
      for (std::size_t i = 0; i < count; ++i) body(i);
    } else {
      pool->ParallelFor(count, body);
    }
  };

  PlanResult best;
  best.estimate.feasible = false;
  best.estimate.latency = std::numeric_limits<TimeSec>::infinity();
  best.stats.threads =
      pool == nullptr ? 1 : static_cast<int>(pool->num_threads());
  best.stats.memory_cap = latency.memory_cap;
  // Track the best infeasible plan too so error messages are informative.
  std::string last_infeasible;
  long evaluated = 0;
  long pruned = 0;
  long memory_rejected = 0;

  // Top-k distinct feasible candidates for simulator re-ranking. The
  // signature set mirrors `alternatives` so a merge is one set lookup, not
  // O(k) signature rebuilds of every stored alternative.
  struct Alternative {
    ParallelPlan plan;
    PlanEstimate estimate;
    std::string sig;
  };
  std::vector<Alternative> alternatives;
  std::set<std::string> alternative_sigs;
  auto record_candidate = [&](const ParallelPlan& plan, const PlanEstimate& est,
                              const std::string& sig) {
    if (options_.keep_alternatives <= 0) return;
    // Fast reject: a candidate strictly worse than the current k-th best
    // can never enter the list, so skip the copy + re-sort the slow path
    // pays. Ties fall through to the old path so eviction order (and with
    // it every downstream artifact) is bit-identical to the unoptimized
    // code. This runs once per feasible candidate — millions per search.
    if (static_cast<int>(alternatives.size()) >= options_.keep_alternatives &&
        est.latency > alternatives.back().estimate.latency) {
      return;
    }
    if (!alternative_sigs.insert(sig).second) return;
    alternatives.push_back({plan, est, sig});
    std::sort(alternatives.begin(), alternatives.end(), [](const auto& a, const auto& b) {
      return a.estimate.latency < b.estimate.latency;
    });
    while (static_cast<int>(alternatives.size()) > options_.keep_alternatives) {
      alternative_sigs.erase(alternatives.back().sig);
      alternatives.pop_back();
    }
  };

  // Builds the complete plan for a prefix: remaining layers on all free
  // devices. Pure (thread-safe); returns nullopt when no device is free.
  auto build_completed = [&](const SearchNode& node,
                             int prefix_end) -> std::optional<ParallelPlan> {
    std::vector<topo::DeviceId> free;
    for (topo::DeviceId d = 0; d < num_devices; ++d) {
      if (!node.state.is_used(d)) free.push_back(d);
    }
    if (free.empty()) return std::nullopt;
    ParallelPlan plan;
    plan.model = model_->name();
    plan.stages = node.prefix;
    StagePlan last;
    last.layer_begin = prefix_end;
    last.layer_end = num_layers;
    last.devices = topo::DeviceSet(std::move(free));
    plan.stages.push_back(std::move(last));
    return plan;
  };

  // Sequential merge of an evaluated candidate into the incumbent state.
  // This is the ONLY code that touches `best`/`alternatives`, and it runs
  // in the exact enumeration order of the serial search — determinism
  // across thread counts by construction.
  auto merge = [&](const ParallelPlan& plan, const PlanEstimate& est,
                   const std::string& sig) -> std::optional<double> {
    ++evaluated;
    if (!est.feasible) {
      if (est.memory_limited) ++memory_rejected;
      last_infeasible = est.infeasible_reason;
      return std::nullopt;
    }
    record_candidate(plan, est, sig);
    if (est.latency < best.estimate.latency || !best.estimate.feasible) {
      best.plan = plan;
      best.estimate = est;
    }
    return est.latency;
  };

  auto complete = [&](const SearchNode& node, int prefix_end) -> std::optional<double> {
    auto plan = build_completed(node, prefix_end);
    if (!plan) return std::nullopt;
    const PlanEstimate est = estimator.Estimate(*plan, options_.global_batch_size);
    return merge(*plan, est, PlanSignature(*plan));
  };

  // Level-by-level DP: frontier[j] holds the best node per canonical
  // allocation key whose prefix covers layers [0, j).
  std::vector<std::map<std::string, SearchNode>> frontier(
      static_cast<std::size_t>(num_layers));
  {
    SearchNode root{{}, topo::AllocationState(*cluster_), 0.0};
    auto tpl = complete(root, 0);
    root.tpl = tpl.value_or(std::numeric_limits<double>::infinity());
    frontier[0].emplace(CanonicalKey(root.state), std::move(root));
  }

  // One candidate expansion: carve stage [j, jp) onto the subproblem's
  // devices, completing the rest with the default suffix.
  struct Expansion {
    SearchNode child;
    int jp = 0;
    std::optional<ParallelPlan> completed;
    PlanEstimate estimate;
    std::string signature;  // precomputed off the merge thread
  };

  // One unit of parallel work: a (frontier node, device placement) pair
  // that expands every split point jp on its own. Coarser than a single
  // candidate (good cache locality: all jp share the placement's stage
  // vocabulary), finer than a frontier node (parallelism exists even at
  // level 0, where the frontier is a single root).
  struct Subproblem {
    const SearchNode* node = nullptr;
    int j = 0;
    topo::DeviceSet devices;
    topo::PlacementPolicy policy = topo::PlacementPolicy::kFreshFirst;
    std::string child_key;         // CanonicalKey of the committed state
    std::vector<Expansion> expansions;  // filled by the parallel phase
  };

  for (int j = 0; j < num_layers; ++j) {
    auto& level_nodes = frontier[static_cast<std::size_t>(j)];
    if (level_nodes.empty()) continue;
    ++best.stats.levels;
    auto phase_clock = std::chrono::steady_clock::now();
    auto lap = [&phase_clock] {
      const auto now = std::chrono::steady_clock::now();
      const double s = std::chrono::duration<double>(now - phase_clock).count();
      phase_clock = now;
      return s;
    };

    // Phase 1 (sequential, cheap): enumerate this level's subproblems in
    // the canonical order: node (map order) -> size m -> deduped policy.
    std::vector<Subproblem> subproblems;
    for (auto& [key, node] : level_nodes) {
      (void)key;
      if (static_cast<int>(node.prefix.size()) + 1 >= max_stages) continue;
      // Nodes whose default-suffix completion was infeasible (tpl = inf)
      // must stay expandable: splitting the suffix further may restore
      // memory feasibility (this is exactly how AmoebaNet-36, which cannot
      // run data-parallel, still gets planned). Pruning reads the incumbent
      // only here, between levels, so it cannot observe mid-level merge
      // order and stays identical at every thread count.
      if (options_.prune_slack > 0.0 && best.estimate.feasible &&
          std::isfinite(node.tpl) &&
          node.tpl > best.estimate.latency * options_.prune_slack) {
        ++pruned;
        continue;
      }
      const int free_devices = node.state.num_free();
      for (int m = 1; m < free_devices; ++m) {
        // Distinct device sets for this size; on fresh or flat clusters the
        // three policies frequently coincide.
        std::vector<topo::DeviceSet> placements;
        std::vector<topo::PlacementPolicy> placement_policies;
        const std::vector<topo::PlacementPolicy>& policy_set =
            options_.policies.empty() ? topo::AllPlacementPolicies() : options_.policies;
        for (topo::PlacementPolicy policy : policy_set) {
          auto devices = node.state.Plan(policy, m);
          if (!devices) continue;
          if (std::find(placements.begin(), placements.end(), *devices) !=
              placements.end()) {
            continue;
          }
          placements.push_back(std::move(*devices));
          placement_policies.push_back(policy);
        }
        for (std::size_t p = 0; p < placements.size(); ++p) {
          Subproblem sub;
          sub.node = &node;
          sub.j = j;
          sub.devices = std::move(placements[p]);
          sub.policy = placement_policies[p];
          subproblems.push_back(std::move(sub));
        }
      }
    }
    best.stats.subproblems += static_cast<long>(subproblems.size());
    best.stats.enumerate_seconds += lap();

    // Phase 2 (parallel, hot): each subproblem expands all of its split
    // points, estimating the completed candidates through the shared memo
    // cache. Results land in the subproblem's own slot; nothing here reads
    // or writes search-global state.
    for_each(subproblems.size(), [&](std::size_t s) {
      Subproblem& sub = subproblems[s];
      topo::AllocationState child_state = sub.node->state;
      child_state.Commit(sub.devices);
      sub.child_key = CanonicalKey(child_state);
      sub.expansions.reserve(static_cast<std::size_t>(num_layers - sub.j - 1));
      for (int jp = sub.j + 1; jp < num_layers; ++jp) {
        Expansion e{SearchNode{sub.node->prefix, child_state, 0.0}, jp, std::nullopt,
                    {}, {}};
        StagePlan stage;
        stage.layer_begin = sub.j;
        stage.layer_end = jp;
        stage.devices = sub.devices;
        stage.policy = sub.policy;
        e.child.prefix.push_back(std::move(stage));
        e.completed = build_completed(e.child, jp);
        if (e.completed) {
          e.estimate = estimator.Estimate(*e.completed, options_.global_batch_size);
          if (options_.keep_alternatives > 0) e.signature = PlanSignature(*e.completed);
        }
        sub.expansions.push_back(std::move(e));
      }
    });
    best.stats.evaluate_seconds += lap();
    {
      std::size_t level_expansions = 0;
      for (const Subproblem& sub : subproblems) level_expansions += sub.expansions.size();
      obs::MetricsRegistry::Global()
          .histogram("planner.level_expansions")
          .Observe(static_cast<double>(level_expansions));
    }

    // Phase 3 (sequential, deterministic): merge in enumeration order —
    // subproblem order, then jp ascending — identical outcomes to the
    // single-threaded search.
    for (Subproblem& sub : subproblems) {
      for (Expansion& e : sub.expansions) {
        std::optional<double> tpl;
        if (e.completed) tpl = merge(*e.completed, e.estimate, e.signature);
        e.child.tpl = tpl.value_or(std::numeric_limits<double>::infinity());
        auto& level = frontier[static_cast<std::size_t>(e.jp)];
        auto it = level.find(sub.child_key);
        if (it == level.end() || e.child.tpl < it->second.tpl) {
          level.insert_or_assign(sub.child_key, std::move(e.child));
        }
      }
    }
    // Free processed level early; the search only moves forward.
    level_nodes.clear();
    best.stats.merge_seconds += lap();

    // Tear the level's expansion storage down on the pool: millions of
    // heap-backed candidates whose destruction parallelizes as well as
    // their construction did. Destruction order is irrelevant to the
    // search state (merge already consumed every expansion), so this
    // cannot perturb determinism.
    for_each(subproblems.size(), [&subproblems](std::size_t s) {
      std::vector<Expansion>().swap(subproblems[s].expansions);
    });
    best.stats.evaluate_seconds += lap();
  }

  best.candidates_evaluated = evaluated;
  best.alternatives.reserve(alternatives.size());
  for (Alternative& alt : alternatives) {
    best.alternatives.emplace_back(std::move(alt.plan), alt.estimate);
  }

  best.stats.candidates_evaluated = evaluated;
  best.stats.candidates_pruned = pruned;
  best.stats.memory_rejected = memory_rejected;
  if (cache) {
    const CacheShardStats totals = cache->TotalStats();
    best.stats.cache_hits = totals.hits;
    best.stats.cache_misses = totals.misses;
    best.stats.cache_entries = totals.entries;
    best.stats.cache_compute_seconds = totals.compute_seconds;
    best.stats.cache_evictions = totals.evictions;
    best.stats.shards = cache->PerShardStats();
  }
  best.stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - search_start)
          .count();

  {
    auto& metrics = obs::MetricsRegistry::Global();
    metrics.counter("planner.plans").Increment();
    metrics.counter("planner.candidates_evaluated").Increment(evaluated);
    metrics.counter("planner.candidates_pruned").Increment(pruned);
  }
  ExportSearchStats(best.stats);

  // Pin the pure data-parallel plan into the alternatives (appended past
  // the top-k cut if necessary): it is the paper's universal baseline and
  // the simulator re-ranking should always get to veto in its favour.
  if (options_.keep_alternatives > 0 && best.estimate.feasible) {
    ParallelPlan dp;
    dp.model = model_->name();
    StagePlan all;
    all.layer_begin = 0;
    all.layer_end = num_layers;
    all.devices = topo::DeviceSet::Range(0, num_devices);
    dp.stages.push_back(std::move(all));
    const PlanEstimate dp_est = estimator.Estimate(dp, options_.global_batch_size);
    if (dp_est.feasible) {
      bool present = false;
      for (const auto& [p, e] : best.alternatives) {
        (void)e;
        if (p.IsDataParallel()) {
          present = true;
          break;
        }
      }
      if (!present) best.alternatives.emplace_back(std::move(dp), dp_est);
    }
  }

  if (!best.estimate.feasible) {
    std::ostringstream os;
    os << "no feasible plan for " << model_->name() << " on " << cluster_->name() << " ("
       << num_devices << " devices)";
    if (latency.memory_cap > 0) {
      os << " under memory cap " << FormatBytes(latency.memory_cap)
         << (latency.recompute ? " with recompute" : "");
    }
    if (!last_infeasible.empty()) os << ": " << last_infeasible;
    throw Error(os.str());
  }
  DAPPLE_LOG_INFO << "planned " << model_->name() << " on " << cluster_->name() << ": "
                  << best.plan.ToString() << " (evaluated " << evaluated << " candidates)";
  return best;
}

}  // namespace dapple::planner
