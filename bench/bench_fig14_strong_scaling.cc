// Fig. 14: strong scaling — speedup at fixed global batch as the device
// count grows from 2 to 16 on Config-A, for four models; DP variants vs
// the best hybrid plan.
#include "harness.h"

#include <cstdio>
#include <vector>

#include "common/table.h"

using namespace dapple;

namespace {

// Config-A-like cluster with `gpus` devices: whole 8-GPU servers plus a
// partial server for the remainder (scaling inside a rack).
topo::Cluster PartialConfigA(int gpus) {
  if (gpus <= 8) {
    return topo::Cluster("Config-A", 1, gpus, topo::DeviceSpec{},
                         topo::MakeConfigA(1).interconnect());
  }
  if (gpus % 8 == 0) return topo::MakeConfigA(gpus / 8);
  // Mixed shapes are modelled as two servers of gpus/2 (keeps the
  // inter-server boundary, which is what drives the scaling cliff).
  return topo::Cluster("Config-A", 2, gpus / 2, topo::DeviceSpec{},
                       topo::MakeConfigA(1).interconnect());
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 14 — strong scaling at fixed GBS (Config-A)",
                     "DAPPLE paper, Fig. 14");

  struct Series {
    const char* name;
    long gbs;
  };
  const Series series[] = {{"GNMT-16", 2048}, {"BERT-48", 128}, {"XLNet-36", 128},
                           {"AmoebaNet-36", 256}};

  for (const Series& s : series) {
    const model::ModelProfile m = model::ModelByName(s.name);
    std::printf("\n%s (GBS %ld)\n", s.name, s.gbs);
    AsciiTable table({"GPUs", "DP no-overlap", "DP overlap", "Best hybrid", "Plan"});
    for (int gpus : {2, 4, 8, 10, 12, 16}) {
      const topo::Cluster cluster = PartialConfigA(gpus);
      const bench::EvalRow row = bench::Evaluate(m, cluster, s.gbs);
      table.AddRow(
          {AsciiTable::Int(gpus),
           row.dp_no_overlap.feasible ? AsciiTable::Num(row.dp_no_overlap.speedup, 2)
                                      : "OOM",
           row.dp_overlap.feasible ? AsciiTable::Num(row.dp_overlap.speedup, 2) : "OOM",
           AsciiTable::Num(row.hybrid.speedup, 2), row.planned.plan.ToString()});
    }
    std::printf("%s", table.ToString().c_str());
  }
  std::printf("\nShape check (paper Fig. 14): DP scalability dips when crossing the\n"
              "8->10 GPU boundary (gradients start crossing Ethernet) while the\n"
              "hybrid scales smoothly (tiny cross-stage activations are insensitive\n"
              "to the slow link); AmoebaNet-36 has no DP line (OOM).\n");
  return 0;
}
