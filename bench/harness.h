// Shared helpers for the per-table/per-figure benchmark binaries. Each
// binary regenerates one table or figure from the paper's evaluation
// (SVI); these helpers wrap the plan-then-simulate loop and the paper-vs-
// measured presentation.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "dapple/dapple.h"

namespace dapple::bench {

/// One evaluated configuration: the planner's choice plus the simulated
/// iteration and both DP baselines.
struct EvalRow {
  std::string model;
  std::string config;
  long global_batch_size = 0;
  planner::PlanResult planned;
  runtime::IterationReport hybrid;
  obs::IterationReport report;  // full observability report of the hybrid run
  planner::DataParallelEstimate dp_no_overlap;
  planner::DataParallelEstimate dp_overlap;
};

/// Plans and simulates `model` on `cluster`, with DP baselines.
EvalRow Evaluate(const model::ModelProfile& model, const topo::Cluster& cluster,
                 long global_batch_size);

/// One configuration for EvaluateBatch; model and cluster are borrowed and
/// must outlive the call.
struct EvalSpec {
  const model::ModelProfile* model = nullptr;
  const topo::Cluster* cluster = nullptr;
  long global_batch_size = 0;
};

/// Evaluates every spec across a sim::BatchRunner (`sim_threads`: 1 =
/// inline serial, 0 = hardware concurrency). Returned rows match `specs`
/// by index and are recorded into the bench JSON in that order regardless
/// of scheduling, so the archived trajectory stays byte-stable at every
/// thread count.
std::vector<EvalRow> EvaluateBatch(const std::vector<EvalSpec>& specs, int sim_threads = 1);

/// The cluster the paper uses for a config letter with 16 devices total
/// ('A' = 2x8, 'B'/'C' = 16x1).
topo::Cluster SixteenDeviceConfig(char config);

/// Prints the standard header naming the experiment and its paper anchor.
void PrintHeader(const std::string& title, const std::string& paper_anchor);

/// Prints a paper-vs-measured comparison line.
void PrintComparison(const std::string& metric, const std::string& paper,
                     const std::string& measured);

/// Wall seconds of `reps` identical passes of `pass`, measured after one
/// untimed warmup pass. The warmup populates per-engine arenas, SoA
/// flatten scratch and allocator caches, so per-row engine comparisons
/// time steady-state throughput instead of charging first-pass allocation
/// to whichever engine happens to run first.
double TimeWarmedPasses(int reps, const std::function<void()>& pass);

/// Minimum of `trials` TimeWarmedPasses measurements. Engine-vs-engine
/// ratio rows use the best-of so a scheduler hiccup in one trial cannot
/// fail a floor assertion; the minimum is the standard low-noise estimator
/// for deterministic CPU-bound work.
double TimeWarmedPassesBestOf(int trials, int reps, const std::function<void()>& pass);

// Every PrintHeader / PrintComparison / Evaluate call is also recorded; when
// DAPPLE_BENCH_JSON_DIR is set, the process writes the accumulated record to
// $DAPPLE_BENCH_JSON_DIR/BENCH_<binary>.json at exit — the machine-readable
// counterpart of the stdout tables, with the full iteration report embedded
// per evaluated row.

}  // namespace dapple::bench
