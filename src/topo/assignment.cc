#include "topo/assignment.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace dapple::topo {

const std::vector<PlacementPolicy>& AllPlacementPolicies() {
  static const std::vector<PlacementPolicy> kAll = {
      PlacementPolicy::kFreshFirst, PlacementPolicy::kAppendFirst,
      PlacementPolicy::kScatterFirst};
  return kAll;
}

std::string ToString(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kFreshFirst: return "FreshFirst";
    case PlacementPolicy::kAppendFirst: return "AppendFirst";
    case PlacementPolicy::kScatterFirst: return "ScatterFirst";
  }
  return "?";
}

AllocationState::AllocationState(const Cluster& cluster)
    : cluster_(&cluster),
      used_(static_cast<std::size_t>(cluster.num_devices()), false),
      used_per_server_(static_cast<std::size_t>(cluster.num_servers()), 0),
      num_free_(cluster.num_devices()) {}

int AllocationState::used_on_server(ServerId s) const {
  return used_per_server_.at(static_cast<std::size_t>(s));
}

bool AllocationState::is_used(DeviceId d) const {
  return used_.at(static_cast<std::size_t>(d));
}

std::vector<DeviceId> AllocationState::FreeDevicesOnServer(ServerId s) const {
  std::vector<DeviceId> free;
  const int per = cluster_->gpus_per_server();
  for (int i = 0; i < per; ++i) {
    const DeviceId d = s * per + i;
    if (!used_[static_cast<std::size_t>(d)]) free.push_back(d);
  }
  return free;
}

std::optional<DeviceSet> AllocationState::Plan(PlacementPolicy policy, int n) const {
  DAPPLE_CHECK_GT(n, 0) << "allocation size";
  if (n > num_free_) return std::nullopt;

  const int servers = cluster_->num_servers();
  const int per = cluster_->gpus_per_server();

  // Server visit order depends on the policy.
  std::vector<ServerId> order(static_cast<std::size_t>(servers));
  std::iota(order.begin(), order.end(), 0);

  auto free_on = [&](ServerId s) { return per - used_on_server(s); };
  auto is_fresh = [&](ServerId s) { return used_on_server(s) == 0; };
  auto is_partial = [&](ServerId s) { return used_on_server(s) > 0 && free_on(s) > 0; };

  std::vector<DeviceId> picked;
  picked.reserve(static_cast<std::size_t>(n));

  switch (policy) {
    case PlacementPolicy::kFreshFirst: {
      // Fill fresh machines first (whole machines), preferring faster
      // servers on heterogeneous clusters, then fall back to partially
      // used ones.
      std::stable_sort(order.begin(), order.end(), [&](ServerId a, ServerId b) {
        if (is_fresh(a) != is_fresh(b)) return is_fresh(a) > is_fresh(b);
        return cluster_->server_speed(a) > cluster_->server_speed(b);
      });
      for (ServerId s : order) {
        for (DeviceId d : FreeDevicesOnServer(s)) {
          if (static_cast<int>(picked.size()) == n) break;
          picked.push_back(d);
        }
        if (static_cast<int>(picked.size()) == n) break;
      }
      break;
    }
    case PlacementPolicy::kAppendFirst: {
      // Prefer machines with the fewest free GPUs (most occupied first) so
      // fragments get consumed before fresh machines are touched.
      std::stable_sort(order.begin(), order.end(), [&](ServerId a, ServerId b) {
        const bool pa = is_partial(a);
        const bool pb = is_partial(b);
        if (pa != pb) return pa > pb;
        if (pa && pb) return free_on(a) < free_on(b);
        return false;
      });
      for (ServerId s : order) {
        for (DeviceId d : FreeDevicesOnServer(s)) {
          if (static_cast<int>(picked.size()) == n) break;
          picked.push_back(d);
        }
        if (static_cast<int>(picked.size()) == n) break;
      }
      break;
    }
    case PlacementPolicy::kScatterFirst: {
      // Round-robin one GPU at a time. If some machines are already in use,
      // scatter across those first; otherwise scatter across all machines.
      std::vector<ServerId> pool;
      int pool_free = 0;
      for (ServerId s : order) {
        if (is_partial(s)) {
          pool.push_back(s);
          pool_free += free_on(s);
        }
      }
      // Use only partially-used machines when they can satisfy the request;
      // otherwise extend with fresh machines (and scatter across all
      // machines when everything is fresh).
      if (pool.empty() || pool_free < n) {
        for (ServerId s : order) {
          if (!is_partial(s) && free_on(s) > 0) pool.push_back(s);
        }
      }
      std::vector<std::vector<DeviceId>> free_lists;
      free_lists.reserve(pool.size());
      for (ServerId s : pool) free_lists.push_back(FreeDevicesOnServer(s));
      std::size_t round = 0;
      while (static_cast<int>(picked.size()) < n) {
        bool progressed = false;
        for (auto& list : free_lists) {
          if (round < list.size()) {
            picked.push_back(list[round]);
            progressed = true;
            if (static_cast<int>(picked.size()) == n) break;
          }
        }
        if (static_cast<int>(picked.size()) == n) break;
        if (!progressed) break;  // pool exhausted (cannot happen: n <= free)
        ++round;
      }
      break;
    }
  }

  if (static_cast<int>(picked.size()) != n) return std::nullopt;
  return DeviceSet(std::move(picked));
}

void AllocationState::Commit(const DeviceSet& devices) {
  for (DeviceId d : devices.devices()) {
    DAPPLE_CHECK(!used_.at(static_cast<std::size_t>(d))) << "device G" << d << " already used";
  }
  for (DeviceId d : devices.devices()) {
    used_[static_cast<std::size_t>(d)] = true;
    used_per_server_[static_cast<std::size_t>(cluster_->server_of(d))]++;
    --num_free_;
  }
}

std::optional<DeviceSet> AllocationState::Allocate(PlacementPolicy policy, int n) {
  auto planned = Plan(policy, n);
  if (planned) Commit(*planned);
  return planned;
}

std::string AllocationState::Key() const {
  std::string key;
  key.reserve(used_.size());
  for (bool u : used_) key.push_back(u ? '1' : '0');
  return key;
}

}  // namespace dapple::topo
