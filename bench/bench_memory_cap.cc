// Memory-cap frontier: what a per-device memory cap costs, and what
// recompute buys back. For GNMT-16 and AmoebaNet-36 on the paper's
// 16-device Config-A cluster, binary-search the tightest cap each policy
// can satisfy (plain planning vs --recompute=auto), then sweep a ladder of
// caps from just under the auto floor up to the uncapped peak and report,
// per level: whether each policy fits, how many stages the fit search
// checkpointed, and the simulated latency penalty against the uncapped
// plan. Every emitted plan is re-simulated under its cap with pool
// enforcement on — an OOM anywhere is a hard failure.
//
// Exits non-zero unless, for every model, auto-recompute fits at least one
// cap level where plain planning cannot (the tentpole's headline claim).
//
//   bench_memory_cap [--quick]   --quick: GNMT-16 only, coarser search.
#include "harness.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/table.h"

using namespace dapple;

namespace {

struct PlanAttempt {
  bool fits = false;
  planner::PlanResult result;
};

PlanAttempt TryPlan(const model::ModelProfile& m, const topo::Cluster& cluster,
                    long gbs, Bytes cap, planner::RecomputePolicy policy) {
  planner::PlannerOptions po;
  po.global_batch_size = gbs;
  po.memory_cap = cap;
  po.recompute = policy;
  po.keep_alternatives = 0;
  PlanAttempt attempt;
  try {
    attempt.result = planner::DapplePlanner(m, cluster, po).Plan();
    attempt.fits = true;
  } catch (const Error&) {
  }
  return attempt;
}

/// Simulates `plan` under `cap` with pool enforcement on. Returns the
/// makespan; flips `oom` if any pool overflowed (per-stage recompute flags
/// ride the plan itself).
TimeSec Simulate(const model::ModelProfile& m, const topo::Cluster& cluster,
                 const planner::ParallelPlan& plan, long gbs, Bytes cap, bool* oom) {
  runtime::BuildOptions o;
  o.global_batch_size = gbs;
  o.memory_cap = cap;
  o.enforce_memory_capacity = true;
  const runtime::BuiltPipeline built =
      runtime::GraphBuilder(m, cluster, plan, o).Build();
  const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
  if (result.AnyOom()) *oom = true;
  return result.makespan;
}

/// Smallest cap (to `resolution` precision) at which planning under
/// `policy` succeeds. Feasibility is monotone in the cap — a larger cap
/// only admits more placements — so plain bisection applies.
Bytes FeasibilityFloor(const model::ModelProfile& m, const topo::Cluster& cluster,
                       long gbs, Bytes lo, Bytes hi, Bytes resolution,
                       planner::RecomputePolicy policy) {
  while (hi - lo > resolution) {
    const Bytes mid = lo + (hi - lo) / 2;
    if (TryPlan(m, cluster, gbs, mid, policy).fits) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return hi;
}

bool RunModel(const model::ModelProfile& m, const topo::Cluster& cluster, long gbs,
              bool quick) {
  const planner::PlanResult uncapped =
      planner::DapplePlanner(m, cluster,
                             [&] {
                               planner::PlannerOptions po;
                               po.global_batch_size = gbs;
                               po.keep_alternatives = 0;
                               return po;
                             }())
          .Plan();
  const Bytes uncapped_peak = uncapped.estimate.max_peak_memory;
  bool oom = false;
  const TimeSec uncapped_latency =
      Simulate(m, cluster, uncapped.plan, gbs, 0, &oom);

  std::printf("\n%s (GBS %ld, %d devices): uncapped peak %s, latency %s\n",
              m.name().c_str(), gbs, cluster.num_devices(),
              FormatBytes(uncapped_peak).c_str(), FormatTime(uncapped_latency).c_str());

  // Bisection resolution relative to the model's own peak: fine enough
  // that the floors separate when recompute genuinely extends the
  // frontier, coarse enough to bound the planner-run count.
  const Bytes resolution = std::max<Bytes>(1, uncapped_peak / (quick ? 32 : 128));
  // The caps worth probing live between "even all-recompute cannot fit"
  // and "fits without trying"; half the checkpointed peak is a safe lower
  // bracket for the bisection.
  const Bytes floor_auto =
      FeasibilityFloor(m, cluster, gbs, uncapped_peak / 8, uncapped_peak, resolution,
                       planner::RecomputePolicy::kAuto);
  const Bytes floor_off =
      FeasibilityFloor(m, cluster, gbs, floor_auto / 2, uncapped_peak, resolution,
                       planner::RecomputePolicy::kOff);
  std::printf("tightest satisfiable cap: %s plain, %s with recompute=auto\n",
              FormatBytes(floor_off).c_str(), FormatBytes(floor_auto).c_str());
  bench::PrintComparison(m.name() + "/cap-floor",
                         "recompute extends the feasible frontier (paper §III-C)",
                         "plain " + FormatBytes(floor_off) + " -> auto " +
                             FormatBytes(floor_auto));

  // Ladder from just above the auto floor to the uncapped peak; the levels
  // between the two floors are where recompute is the difference between
  // planning and refusing.
  std::vector<Bytes> caps;
  for (double f : {1.0, 0.85, 0.7, 0.55, 0.4, 0.25, 0.1, 0.0}) {
    caps.push_back(floor_auto + static_cast<Bytes>(
                                    f * static_cast<double>(uncapped_peak - floor_auto)));
  }

  AsciiTable table({"Cap", "Plain", "Auto", "Recompute", "Peak", "Latency", "Penalty"});
  bool recompute_extends_frontier = false;
  for (const Bytes cap : caps) {
    const PlanAttempt off = TryPlan(m, cluster, gbs, cap, planner::RecomputePolicy::kOff);
    const PlanAttempt autofit =
        TryPlan(m, cluster, gbs, cap, planner::RecomputePolicy::kAuto);
    std::string recompute = "-", peak = "-", latency = "-", penalty = "-";
    if (autofit.fits) {
      const TimeSec capped_latency =
          Simulate(m, cluster, autofit.result.plan, gbs, cap, &oom);
      recompute = AsciiTable::Int(autofit.result.stats.recompute_stages) + "/" +
                  AsciiTable::Int(static_cast<int>(autofit.result.plan.stages.size()));
      peak = FormatBytes(autofit.result.estimate.max_peak_memory);
      latency = FormatTime(capped_latency);
      penalty = AsciiTable::Num(
                    (capped_latency / uncapped_latency - 1.0) * 100.0, 1) + "%";
    }
    if (off.fits) {
      // The plain plan must hold its own cap too (it never has recompute
      // stages, so only the placement differs).
      Simulate(m, cluster, off.result.plan, gbs, cap, &oom);
    }
    if (!off.fits && autofit.fits) recompute_extends_frontier = true;
    table.AddRow({FormatBytes(cap), off.fits ? "fits" : "-",
                  autofit.fits ? "fits" : "-", recompute, peak, latency, penalty});
  }
  std::printf("%s", table.ToString().c_str());

  if (oom) {
    std::printf("FAIL: a planner-approved plan OOMed under its own cap\n");
    return false;
  }
  if (!recompute_extends_frontier) {
    std::printf("FAIL: no cap level where auto-recompute fits but plain planning "
                "cannot (floors: plain %s, auto %s)\n",
                FormatBytes(floor_off).c_str(), FormatBytes(floor_auto).c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::PrintHeader("Memory-cap frontier — planning under a per-device cap",
                     "recompute as a planner knob; OOM-free guarantee (§III-C)");

  const topo::Cluster cluster = bench::SixteenDeviceConfig('A');
  bool ok = RunModel(model::ModelByName("GNMT-16"), cluster,
                     16 * model::ModelByName("GNMT-16").profile_micro_batch(), quick);
  if (!quick) {
    ok = RunModel(model::ModelByName("AmoebaNet-36"), cluster,
                  64 * model::ModelByName("AmoebaNet-36").profile_micro_batch(), quick) &&
         ok;
  }
  std::printf("\nReading the frontier: between the two floors the fit search turns\n"
              "checkpointing on stage-by-stage (cheapest latency penalty first), so\n"
              "a declared cap is either satisfied end to end or refused outright —\n"
              "never accepted and then OOMed.\n");
  return ok ? 0 : 1;
}
