// Table II: benchmark models — parameter counts, profile micro-batch and
// memory cost, measured via the DAPPLE profiler on a simulated V100.
#include "harness.h"

#include <cstdio>

#include "common/table.h"

using namespace dapple;

int main() {
  bench::PrintHeader("Table II — benchmark models", "DAPPLE paper, Table II");

  struct PaperRow {
    const char* name;
    double params_m;
    int batch;
    double memory_gb;
  };
  const PaperRow paper_rows[] = {
      {"GNMT-16", 291, 64, 3.9}, {"BERT-48", 640, 2, 11.4},   {"XLNet-36", 500, 1, 12.0},
      {"ResNet-50", 24.5, 128, 1.0}, {"VGG-19", 137, 32, 5.6}, {"AmoebaNet-36", 933, 1, 20.0},
  };

  model::Profiler profiler(topo::DeviceSpec{});
  AsciiTable table({"Model", "#Params (paper)", "#Params (measured)", "Profile batch",
                    "Mem cost (paper)", "Mem cost (measured)", "Fits V100?"});
  for (const PaperRow& row : paper_rows) {
    const model::ModelProfile m = model::ModelByName(row.name);
    const model::ProfileReport report = profiler.Report(m);
    table.AddRow({row.name, AsciiTable::Num(row.params_m, 1) + "M",
                  AsciiTable::Num(report.param_count / 1e6, 1) + "M",
                  AsciiTable::Int(report.profile_micro_batch),
                  AsciiTable::Num(row.memory_gb, 1) + "GB",
                  FormatBytes(report.memory_cost),
                  report.fits_single_device ? "yes" : "NO (OOM)"});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nNote: paper memory costs are TF-runtime measurements; ours are\n"
              "weights + optimizer state + activations. AmoebaNet-36 must not fit\n"
              "a single 16GB device (it forces pipeline parallelism, SVI-A).\n");
  return 0;
}
