#include <gtest/gtest.h>

#include <tuple>

#include "common/error.h"
#include "sim/engine.h"
#include "sim/graph.h"

namespace dapple::sim {
namespace {

Task MakeTask(std::string name, ResourceId resource, TimeSec duration,
              TaskKind kind = TaskKind::kGeneric) {
  Task t;
  t.name = std::move(name);
  t.resource = resource;
  t.duration = duration;
  t.kind = kind;
  return t;
}

TEST(Engine, SingleTask) {
  TaskGraph g;
  g.AddTask(MakeTask("a", 0, 2.0));
  const SimResult r = Engine::Run(g);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
  EXPECT_TRUE(r.records[0].executed);
  EXPECT_DOUBLE_EQ(r.records[0].start, 0.0);
  EXPECT_DOUBLE_EQ(r.records[0].end, 2.0);
}

TEST(Engine, ChainRespectsDependencies) {
  TaskGraph g;
  const TaskId a = g.AddTask(MakeTask("a", 0, 1.0));
  const TaskId b = g.AddTask(MakeTask("b", 1, 1.0));
  const TaskId c = g.AddTask(MakeTask("c", 0, 1.0));
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  const SimResult r = Engine::Run(g);
  EXPECT_DOUBLE_EQ(r.records[a].end, 1.0);
  EXPECT_DOUBLE_EQ(r.records[b].start, 1.0);
  EXPECT_DOUBLE_EQ(r.records[c].start, 2.0);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
}

TEST(Engine, IndependentResourcesRunConcurrently) {
  TaskGraph g;
  g.AddTask(MakeTask("a", 0, 3.0));
  g.AddTask(MakeTask("b", 1, 2.0));
  const SimResult r = Engine::Run(g);
  EXPECT_DOUBLE_EQ(r.makespan, 3.0);
  EXPECT_DOUBLE_EQ(r.records[1].start, 0.0);
}

TEST(Engine, SameResourceSerializes) {
  TaskGraph g;
  g.AddTask(MakeTask("a", 0, 1.0));
  g.AddTask(MakeTask("b", 0, 1.0));
  const SimResult r = Engine::Run(g);
  EXPECT_DOUBLE_EQ(r.makespan, 2.0);
}

TEST(Engine, PriorityBreaksReadyTies) {
  TaskGraph g;
  Task hi = MakeTask("hi", 0, 1.0);
  hi.priority = 0;
  Task lo = MakeTask("lo", 0, 1.0);
  lo.priority = 5;
  const TaskId lo_id = g.AddTask(lo);
  const TaskId hi_id = g.AddTask(hi);  // added second, but higher priority
  const SimResult r = Engine::Run(g);
  EXPECT_LT(r.records[hi_id].start, r.records[lo_id].start);
}

TEST(Engine, EqualPriorityFallsBackToId) {
  TaskGraph g;
  const TaskId a = g.AddTask(MakeTask("a", 0, 1.0));
  const TaskId b = g.AddTask(MakeTask("b", 0, 1.0));
  const SimResult r = Engine::Run(g);
  EXPECT_LT(r.records[a].start, r.records[b].start);
}

// Simultaneous completions drain in (time, priority, id) order — the
// documented contract from engine.h, not container luck. A (id 0, priority
// 5) and B (id 1, priority 0) both finish at t=1; their successors X and Y
// contend for resource 2, so whichever completion is processed first gets
// its successor dispatched first. The priority key must beat the id key:
// B's completion wins, Y runs at t=1 and X at t=2. Under the legacy
// (time, id) ordering the outcome was inverted.
TEST(Engine, SimultaneousCompletionsDrainByPriorityThenId) {
  auto build = [] {
    TaskGraph g;
    Task a = MakeTask("a", 0, 1.0);
    a.priority = 5;
    const TaskId a_id = g.AddTask(a);
    Task b = MakeTask("b", 1, 1.0);
    b.priority = 0;
    const TaskId b_id = g.AddTask(b);
    const TaskId x = g.AddTask(MakeTask("x", 2, 1.0));
    const TaskId y = g.AddTask(MakeTask("y", 2, 1.0));
    g.AddEdge(a_id, x);
    g.AddEdge(b_id, y);
    return std::make_tuple(std::move(g), x, y);
  };
  auto [g, x, y] = build();
  const SimResult r = Engine::Run(g);
  EXPECT_DOUBLE_EQ(r.records[y].start, 1.0);
  EXPECT_DOUBLE_EQ(r.records[x].start, 2.0);

  auto [g2, x2, y2] = build();
  const SimResult ref = RunReferenceEngine(g2);
  EXPECT_DOUBLE_EQ(ref.records[y2].start, 1.0);
  EXPECT_DOUBLE_EQ(ref.records[x2].start, 2.0);
}

// Equal (time, priority) falls through to the id key on both engines.
TEST(Engine, SimultaneousEqualPriorityCompletionsDrainById) {
  auto build = [] {
    TaskGraph g;
    const TaskId a = g.AddTask(MakeTask("a", 0, 1.0));
    const TaskId b = g.AddTask(MakeTask("b", 1, 1.0));
    const TaskId x = g.AddTask(MakeTask("x", 2, 1.0));
    const TaskId y = g.AddTask(MakeTask("y", 2, 1.0));
    g.AddEdge(a, x);
    g.AddEdge(b, y);
    return std::make_tuple(std::move(g), x, y);
  };
  auto [g, x, y] = build();
  const SimResult r = Engine::Run(g);
  EXPECT_DOUBLE_EQ(r.records[x].start, 1.0);
  EXPECT_DOUBLE_EQ(r.records[y].start, 2.0);

  auto [g2, x2, y2] = build();
  const SimResult ref = RunReferenceEngine(g2);
  EXPECT_DOUBLE_EQ(ref.records[x2].start, 1.0);
  EXPECT_DOUBLE_EQ(ref.records[y2].start, 2.0);
}

// The arena is reused across Simulate() calls on one Engine instance;
// back-to-back runs of different shapes must not leak state between runs.
TEST(Engine, ArenaReuseAcrossShapes) {
  Engine engine;
  TaskGraph small;
  small.AddTask(MakeTask("s", 0, 1.0));
  TaskGraph big;
  for (int i = 0; i < 40; ++i) {
    big.AddTask(MakeTask("t" + std::to_string(i), i % 3, 0.25 + (i % 5) * 0.5));
  }
  for (int i = 0; i + 7 < 40; i += 2) big.AddEdge(i, i + 7);

  const SimResult big_first = engine.Simulate(big);
  const SimResult small_between = engine.Simulate(small);
  const SimResult big_again = engine.Simulate(big);
  EXPECT_DOUBLE_EQ(small_between.makespan, 1.0);
  ASSERT_EQ(big_first.records.size(), big_again.records.size());
  for (std::size_t i = 0; i < big_first.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(big_first.records[i].start, big_again.records[i].start);
    EXPECT_DOUBLE_EQ(big_first.records[i].end, big_again.records[i].end);
  }
}

TEST(Engine, DeadlockDetected) {
  TaskGraph g;
  const TaskId a = g.AddTask(MakeTask("a", 0, 1.0));
  const TaskId b = g.AddTask(MakeTask("b", 0, 1.0));
  g.AddEdge(a, b);
  g.AddEdge(b, a);
  EXPECT_THROW(Engine::Run(g), Error);
}

TEST(Engine, MemoryPoolTracksAllocFree) {
  TaskGraph g;
  Task fw = MakeTask("fw", 0, 1.0, TaskKind::kForward);
  fw.pool = 0;
  fw.alloc_at_start = 100;
  const TaskId fw_id = g.AddTask(fw);
  Task bw = MakeTask("bw", 0, 1.0, TaskKind::kBackward);
  bw.pool = 0;
  bw.free_at_end = 100;
  const TaskId bw_id = g.AddTask(bw);
  g.AddEdge(fw_id, bw_id);

  EngineOptions opts;
  opts.pool_baselines = {50};
  const SimResult r = Engine::Run(g, opts);
  EXPECT_EQ(r.pools[0].baseline(), 50u);
  EXPECT_EQ(r.pools[0].peak(), 150u);
  EXPECT_EQ(r.pools[0].current(), 50u);  // back to baseline
  EXPECT_FALSE(r.AnyOom());
}

TEST(Engine, OomFlaggedWhenCapacityExceeded) {
  TaskGraph g;
  Task t = MakeTask("big", 0, 1.0);
  t.pool = 0;
  t.alloc_at_start = 1000;
  t.free_at_end = 1000;
  g.AddTask(t);
  EngineOptions opts;
  opts.pool_capacities = {500};
  const SimResult r = Engine::Run(g, opts);
  EXPECT_TRUE(r.AnyOom());
  EXPECT_EQ(r.MaxPeakMemory(), 1000u);
}

TEST(Engine, OverFreeThrows) {
  TaskGraph g;
  Task t = MakeTask("t", 0, 1.0);
  t.pool = 0;
  t.free_at_end = 10;  // never allocated
  g.AddTask(t);
  EXPECT_THROW(Engine::Run(g), Error);
}

TEST(Engine, UtilizationAccounting) {
  TaskGraph g;
  const TaskId a = g.AddTask(MakeTask("a", 0, 2.0, TaskKind::kForward));
  const TaskId b = g.AddTask(MakeTask("b", 1, 1.0, TaskKind::kTransfer));
  g.AddEdge(a, b);
  g.AddEdge(b, g.AddTask(MakeTask("c", 0, 1.0, TaskKind::kBackward)));
  const SimResult r = Engine::Run(g);
  EXPECT_DOUBLE_EQ(r.makespan, 4.0);
  EXPECT_DOUBLE_EQ(r.Utilization(0), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(r.ComputeUtilization(0), 3.0 / 4.0);
  // Transfers are not compute.
  EXPECT_DOUBLE_EQ(r.Utilization(1), 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(r.ComputeUtilization(1), 0.0);
}

TEST(Engine, ZeroDurationTasksComplete) {
  TaskGraph g;
  const TaskId a = g.AddTask(MakeTask("a", 0, 0.0));
  const TaskId b = g.AddTask(MakeTask("b", 0, 1.0));
  g.AddEdge(a, b);
  const SimResult r = Engine::Run(g);
  EXPECT_DOUBLE_EQ(r.makespan, 1.0);
}

TEST(Engine, DiamondDependency) {
  // a -> {b, c} -> d with b, c on separate resources.
  TaskGraph g;
  const TaskId a = g.AddTask(MakeTask("a", 0, 1.0));
  const TaskId b = g.AddTask(MakeTask("b", 1, 2.0));
  const TaskId c = g.AddTask(MakeTask("c", 2, 3.0));
  const TaskId d = g.AddTask(MakeTask("d", 0, 1.0));
  g.AddEdge(a, b);
  g.AddEdge(a, c);
  g.AddEdge(b, d);
  g.AddEdge(c, d);
  const SimResult r = Engine::Run(g);
  EXPECT_DOUBLE_EQ(r.records[d].start, 4.0);
  EXPECT_DOUBLE_EQ(r.makespan, 5.0);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto build = [] {
    TaskGraph g;
    for (int i = 0; i < 50; ++i) {
      g.AddTask(MakeTask("t" + std::to_string(i), i % 4, 0.5 + (i % 7) * 0.1));
    }
    for (int i = 0; i + 10 < 50; i += 3) g.AddEdge(i, i + 10);
    return g;
  };
  const TaskGraph g1 = build();
  const TaskGraph g2 = build();
  const SimResult r1 = Engine::Run(g1);
  const SimResult r2 = Engine::Run(g2);
  ASSERT_EQ(r1.records.size(), r2.records.size());
  for (std::size_t i = 0; i < r1.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.records[i].start, r2.records[i].start);
  }
}

TEST(TaskGraph, RejectsBadEdges) {
  TaskGraph g;
  const TaskId a = g.AddTask(MakeTask("a", 0, 1.0));
  EXPECT_THROW(g.AddEdge(a, a), Error);
  EXPECT_THROW(g.AddEdge(a, 99), Error);
  EXPECT_THROW(g.AddEdge(-1, a), Error);
}

TEST(TaskGraph, DuplicateEdgesCollapse) {
  TaskGraph g;
  const TaskId a = g.AddTask(MakeTask("a", 0, 1.0));
  const TaskId b = g.AddTask(MakeTask("b", 0, 1.0));
  g.AddEdge(a, b);
  g.AddEdge(a, b);
  EXPECT_EQ(g.in_degree(b), 1);
  EXPECT_EQ(g.successors(a).size(), 1u);
}

TEST(TaskGraph, ResourceAndPoolCounts) {
  TaskGraph g;
  Task t = MakeTask("a", 3, 1.0);
  t.pool = 5;
  g.AddTask(t);
  EXPECT_EQ(g.num_resources(), 4);
  EXPECT_EQ(g.num_pools(), 6);
}

TEST(MemoryPool, TimelineRecordsTrajectory) {
  MemoryPool pool;
  pool.SetBaseline(10);
  pool.Allocate(1.0, 5);
  pool.Allocate(2.0, 5);
  pool.Free(3.0, 10);
  const auto& tl = pool.timeline();
  ASSERT_EQ(tl.size(), 4u);
  EXPECT_EQ(tl[0].bytes, 10u);
  EXPECT_EQ(tl[2].bytes, 20u);
  EXPECT_EQ(tl[3].bytes, 10u);
  EXPECT_EQ(pool.peak(), 20u);
}

TEST(MemoryPool, CoincidentUpdatesCoalesce) {
  MemoryPool pool;
  pool.Allocate(1.0, 5);
  pool.Free(1.0, 5);
  // Initial sample + one coalesced sample at t=1.
  EXPECT_EQ(pool.timeline().size(), 2u);
  EXPECT_EQ(pool.timeline().back().bytes, 0u);
}

}  // namespace
}  // namespace dapple::sim
