#!/usr/bin/env bash
# Local CI: configure + build + test the tree twice — once plain, once
# under AddressSanitizer/UBSan (DAPPLE_SANITIZE=address,undefined).
#
#   tools/ci.sh [build-dir-prefix]
#
# The two build trees land in <prefix> and <prefix>-asan (default: build-ci).
#
# DAPPLE_CI_TIER selects the test tier:
#   unit (default) — `ctest -L unit`, the fast suite (pull requests)
#   full           — the whole registered suite, which adds the `-L fuzz`
#                    randomized sweeps and the `-L golden` byte-stability
#                    tests (pushes to main)
#   perf-smoke     — `ctest -L perf-smoke`: the planner, simulator and
#                    scenario determinism sweeps (reference vs arena vs
#                    SoA engines vs the batched driver, and churn-episode /
#                    co-schedule reports at every thread count — all
#                    byte-identical), the --quick planner-scaling,
#                    sim-engine, serve and scenario benches (the
#                    sim-engine bench also fences the SoA engine against
#                    regressing below the arena engine and the analytic
#                    pre-filter against dropping the sim-best candidate;
#                    the scenario bench fences elastic-up against losing
#                    to sync-stall on churn and the co-scheduler against
#                    the naive even split), the serve daemon smoke
#                    (scripted request mix against a spawned `dapple
#                    serve`), and reduced fuzz sweeps — the
#                    schedule-family sweep covering every ScheduleKind,
#                    the memory-cap sweep (plan under a random per-device
#                    cap -> refuse or fit, never OOM), the ranking-recall
#                    sweep (prefilter rank-1 recall == 100%) and the
#                    scenario sweep (churn model x policy x family; zero
#                    validator violations, zero OOM plans) (seconds; runs
#                    on the plain tree only, sanitizers would distort the
#                    timing columns — the sweeps themselves also run
#                    under ASan in the unit tier)
#
# Wider sweeps stay opt-in: `DAPPLE_FUZZ_ITERATIONS=100000 ctest -L fuzz`,
# or `tools/dapple_fuzz --iterations 100000` / `--faults` / `--memory-cap`
# directly.
set -euo pipefail

cd "$(dirname "$0")/.."
prefix="${1:-build-ci}"
jobs="$(nproc 2>/dev/null || echo 4)"
tier="${DAPPLE_CI_TIER:-unit}"

case "${tier}" in
  unit) label_args=(-L unit) ;;
  full) label_args=() ;;
  perf-smoke) label_args=(-L perf-smoke) ;;
  *)
    echo "unknown DAPPLE_CI_TIER '${tier}' (unit | full | perf-smoke)" >&2
    exit 2
    ;;
esac

run_suite() {
  local dir="$1"
  shift
  echo "=== configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "=== build ${dir}"
  cmake --build "${dir}" -j "${jobs}" >/dev/null
  echo "=== ctest tier=${tier} (${dir})"
  ctest --test-dir "${dir}" "${label_args[@]}" --output-on-failure -j "${jobs}"
}

run_suite "${prefix}"
# Sanitizer instrumentation would distort perf-smoke's timing columns, and
# the determinism sweep it carries already ran under ASan in the unit tier.
if [[ "${tier}" != "perf-smoke" ]]; then
  run_suite "${prefix}-asan" -DDAPPLE_SANITIZE=address,undefined
fi
echo "=== ci ok"
