// Machine-checkable schedule invariants (paper §III, §V-C). Every
// evaluation claim the paper makes is a claim about schedule *shape*:
// 1F1B interleave order, warmup depths K_i, early activation release, one
// gradient AllReduce per replicated stage. The ScheduleValidator verifies a
// simulated iteration against the full invariant set, independently of the
// code that produced it, so a regression in runtime/schedule.cc or
// sim/engine.cc cannot silently corrupt the bench tables:
//
//   (a) resource exclusivity and dependency order — no two tasks overlap
//       on one serial resource; every successor starts after all of its
//       predecessors end;
//   (b) per-device compute total order equals the schedule exactly —
//       runtime::StageOrder for the linear families (including GPipe's
//       LIFO backward and 2BP's deferred weight halves), the merged
//       two-chunk group order from runtime::BuildVSchedule for V-Min and
//       V-Half;
//   (c) the in-flight activation count at stage i (forwards started minus
//       releases completed, per device) never exceeds the stage's warmup
//       depth K_i (K_i + 1 under 2BP, whose weight half frees one forward
//       later);
//   (d) memory accounting conserves — per-pool allocations equal releases,
//       pools end at their baseline, and baselines/capacities/OOM flags
//       match the engine options;
//   (e) collectives appear once per stage per step: one AllReduce with
//       full backward fan-in per replicated stage, one apply per replica
//       device, one transfer per direction per (boundary, micro-batch).
//
// Violations are reported with stable string codes so tests can assert on
// the *kind* of corruption detected, not on message wording.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "planner/plan.h"
#include "runtime/graph_builder.h"
#include "sim/engine.h"

namespace dapple::check {

/// One detected invariant violation. `code` is a stable identifier (see
/// the kViolation* constants); `message` carries human-readable detail.
struct Violation {
  std::string code;
  std::string message;
};

// Stable violation codes, grouped by invariant family.
inline constexpr std::string_view kViolationNotExecuted = "task-not-executed";
inline constexpr std::string_view kViolationMakespan = "makespan-mismatch";
inline constexpr std::string_view kViolationResourceOverlap = "resource-overlap";
inline constexpr std::string_view kViolationDependencyOrder = "dependency-order";
inline constexpr std::string_view kViolationScheduleOrder = "schedule-order";
inline constexpr std::string_view kViolationWarmupShape = "warmup-depth-shape";
inline constexpr std::string_view kViolationWarmupExceeded = "warmup-exceeded";
inline constexpr std::string_view kViolationMemoryLeak = "memory-leak";
inline constexpr std::string_view kViolationMemoryUnbalanced = "memory-unbalanced";
inline constexpr std::string_view kViolationMemoryBaseline = "memory-baseline";
inline constexpr std::string_view kViolationOomFlag = "memory-oom-flag";
inline constexpr std::string_view kViolationAllReduceMissing = "allreduce-missing";
inline constexpr std::string_view kViolationAllReduceExtra = "allreduce-extra";
inline constexpr std::string_view kViolationAllReduceFanIn = "allreduce-fanin";
inline constexpr std::string_view kViolationApplyShape = "apply-shape";
inline constexpr std::string_view kViolationTransferShape = "transfer-shape";
inline constexpr std::string_view kViolationTaskCount = "task-count";

struct ValidationReport {
  std::vector<Violation> violations;
  /// Number of invariant families evaluated (for "did it actually check
  /// anything" assertions in tests).
  int checks_run = 0;

  bool ok() const { return violations.empty(); }
  bool Has(std::string_view code) const;
  /// Multi-line human-readable summary ("OK" when clean).
  std::string ToString() const;
};

/// Validates simulated iterations of one (plan, build options) pair. The
/// validator re-derives every expectation from the plan and options alone —
/// it shares no schedule-construction code with the graph builder beyond
/// runtime::StageOrder itself, which is exactly the contract under test.
class ScheduleValidator {
 public:
  ScheduleValidator(const planner::ParallelPlan& plan, runtime::BuildOptions options);

  /// Runs the full invariant set against one built pipeline and its
  /// simulation result.
  ValidationReport Validate(const runtime::BuiltPipeline& built,
                            const sim::SimResult& result) const;

 private:
  const planner::ParallelPlan* plan_;
  runtime::BuildOptions options_;
};

}  // namespace dapple::check
