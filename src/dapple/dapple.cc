#include "dapple/dapple.h"

#include <cmath>
#include <vector>
#include <limits>

#include "common/error.h"
#include "common/thread_pool.h"

namespace dapple {

Session::Session(model::ModelProfile model, topo::Cluster cluster)
    : model_(std::move(model)), cluster_(std::move(cluster)) {}

model::ProfileReport Session::Profile() const {
  model::Profiler profiler(cluster_.device());
  return profiler.Report(model_);
}

planner::PlanResult Session::Plan(long global_batch_size,
                                  planner::PlannerOptions options) const {
  options.global_batch_size = global_batch_size;
  planner::PlanResult result;
  try {
    planner::DapplePlanner planner(model_, cluster_, options);
    result = planner.Plan();
  } catch (const Error&) {
    // Nothing fits without re-computation: retry in the paper's
    // Table VIII operating mode (checkpoint + replay), which divides the
    // activation footprint by roughly the stage depth. Under the kAuto
    // policy the planner already ran this fallback itself (per stage);
    // kAll already recomputed everywhere — rethrow for both.
    if (options.latency.recompute ||
        options.recompute != planner::RecomputePolicy::kOff) {
      throw;
    }
    options.latency.recompute = true;
    planner::DapplePlanner planner(model_, cluster_, options);
    result = planner.Plan();
    // The retry's recompute decision must ride the plan itself: a later
    // build of this plan (dapple run/report, LoadPlan) would otherwise
    // stash full activations and OOM at the very cap the retry satisfied.
    for (planner::StagePlan& stage : result.plan.stages) stage.recompute = true;
    for (auto& alternative : result.alternatives) {
      for (planner::StagePlan& stage : alternative.first.stages) {
        stage.recompute = true;
      }
    }
    result.stats.recompute_stages = static_cast<int>(result.plan.stages.size());
  }

  auto simulate = [&](const planner::ParallelPlan& plan) -> TimeSec {
    runtime::BuildOptions run_options;
    run_options.global_batch_size = global_batch_size;
    run_options.schedule.recompute =
        options.latency.recompute ||
        options.recompute == planner::RecomputePolicy::kAll;
    run_options.schedule.recompute_overhead = options.latency.recompute_overhead;
    run_options.overlap_allreduce = options.latency.overlap_allreduce;
    // Same cap in the simulator pools as in the planner's feasibility
    // check, so an analytic misfit shows up as OOM (-> infinite latency)
    // during re-ranking instead of silently passing. Per-stage recompute
    // flags ride the plan itself.
    run_options.memory_cap =
        options.memory_cap > 0 ? options.memory_cap : options.latency.memory_cap;
    runtime::PipelineExecutor executor(model_, cluster_, plan, run_options);
    const runtime::IterationReport report = executor.Run();
    return report.oom ? std::numeric_limits<TimeSec>::infinity()
                      : report.pipeline_latency;
  };

  // Re-rank the analytic top-k with the discrete-event simulator: the
  // formula-1 objective ignores internal bubbles and can misorder plans
  // that are within a few percent of each other; one simulated iteration
  // per candidate settles those ties exactly.
  TimeSec best_simulated = std::numeric_limits<TimeSec>::infinity();
  if (result.alternatives.size() > 1) {
    // Candidate simulations are independent; evaluate them across the
    // shared pool and select deterministically afterwards.
    std::vector<TimeSec> simulated(result.alternatives.size());
    ThreadPool::Shared().ParallelFor(result.alternatives.size(), [&](std::size_t i) {
      simulated[i] = simulate(result.alternatives[i].first);
    });
    std::size_t best_index = 0;
    for (std::size_t i = 0; i < simulated.size(); ++i) {
      if (simulated[i] < best_simulated) {
        best_simulated = simulated[i];
        best_index = i;
      }
    }
    result.plan = result.alternatives[best_index].first;
    result.estimate = result.alternatives[best_index].second;
  } else {
    best_simulated = simulate(result.plan);
  }

  // Simulation-guided local refinement of the split positions: the DP
  // search memoizes on (boundary, allocation), which collapses
  // near-identical splits, so the exact optimum boundary (e.g. GNMT's 9:7
  // vs 10:6) may be a one-layer shift away from the analytic winner.
  if (result.plan.num_stages() > 1 && std::isfinite(best_simulated)) {
    bool improved = true;
    int rounds = 0;
    while (improved && rounds++ < 8) {
      improved = false;
      for (std::size_t b = 0; b + 1 < result.plan.stages.size(); ++b) {
        for (int delta : {-1, +1}) {
          planner::ParallelPlan candidate = result.plan;
          planner::StagePlan& lhs = candidate.stages[b];
          planner::StagePlan& rhs = candidate.stages[b + 1];
          const int boundary = lhs.layer_end + delta;
          if (boundary <= lhs.layer_begin || boundary >= rhs.layer_end) continue;
          lhs.layer_end = boundary;
          rhs.layer_begin = boundary;
          const TimeSec simulated = simulate(candidate);
          if (simulated < best_simulated) {
            best_simulated = simulated;
            planner::DapplePlanner refined_eval(model_, cluster_, options);
            result.estimate = refined_eval.Evaluate(candidate);
            result.plan = std::move(candidate);
            improved = true;
            break;
          }
        }
        if (improved) break;
      }
    }
  }
  return result;
}

runtime::IterationReport Session::Run(const planner::ParallelPlan& plan,
                                      long global_batch_size,
                                      runtime::BuildOptions options) const {
  options.global_batch_size = global_batch_size;
  runtime::PipelineExecutor executor(model_, cluster_, plan, options);
  return executor.Run();
}

runtime::IterationReport Session::PlanAndRun(long global_batch_size) const {
  const planner::PlanResult planned = Plan(global_batch_size);
  return Run(planned.plan, global_batch_size);
}

}  // namespace dapple
