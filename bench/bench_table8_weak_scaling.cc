// Table VIII: weak scaling — the largest BERT variant each pipeline depth
// supports on 16GB devices with DAPPLE + re-computation, with average GPU
// utilization.
#include "harness.h"

#include <cstdio>

#include "common/table.h"

using namespace dapple;

namespace {

// Runs BERT-L on a straight pipeline of `stages` Config-A devices and
// reports (fits, utilization).
std::pair<bool, double> TryBert(int layers, int stages) {
  const model::ModelProfile bert = model::MakeBert(layers);
  const topo::Cluster cluster = topo::MakeConfigA((stages + 7) / 8);
  planner::ParallelPlan plan;
  plan.model = bert.name();
  const int per = layers / stages;
  for (int s = 0; s < stages; ++s) {
    planner::StagePlan sp;
    sp.layer_begin = s * per;
    sp.layer_end = s + 1 == stages ? layers : (s + 1) * per;
    sp.devices = topo::DeviceSet::Range(s, 1);
    plan.stages.push_back(sp);
  }
  runtime::BuildOptions o;
  o.global_batch_size = 32;
  o.micro_batch_size = 2;
  o.schedule.recompute = true;
  runtime::PipelineExecutor exec(bert, cluster, plan, o);
  const auto report = exec.Run();
  // "Supported" means it fits AND the DAPPLE schedule can still keep its
  // full warmup depth (K_0 = S): a model that only fits with K clamped to
  // 1 serializes the pipeline, which is not the paper's operating point.
  const bool saturated =
      report.warmup_depths.front() >= std::min(stages, report.num_micro_batches);
  return {!report.oom && saturated, report.avg_device_utilization};
}

// Largest layer count (multiple of `stages`) that fits `stages` devices.
int MaxLayers(int stages) {
  int best = 0;
  for (int layers = stages; layers <= 1024; layers += stages) {
    if (TryBert(layers, stages).first) {
      best = layers;
    } else if (best > 0) {
      break;
    }
  }
  return best;
}

}  // namespace

int main() {
  bench::PrintHeader("Table VIII — max BERT size vs pipeline depth (16GB, +RC)",
                     "DAPPLE paper, Table VIII");

  struct PaperRow {
    const char* config;
    int stages;
    int paper_layers;
    double paper_params_b;
    int paper_util_pct;
  };
  const PaperRow rows[] = {{"Native-1", 1, 48, 0.64, 93},
                           {"Pipeline-2", 2, 106, 1.4, 89},
                           {"Pipeline-4", 4, 215, 2.7, 89},
                           {"Pipeline-8", 8, 428, 5.5, 87}};

  AsciiTable table({"Config", "BERT-L (paper)", "BERT-L (measured)", "#Params (measured)",
                    "Params mem", "GPU util (paper)", "GPU util (measured)"});
  int prev_layers = 0;
  for (const PaperRow& row : rows) {
    const int layers = MaxLayers(row.stages);
    const auto [fits, util] = TryBert(layers, row.stages);
    (void)fits;
    const model::ModelProfile bert = model::MakeBert(layers);
    table.AddRow({row.config, AsciiTable::Int(row.paper_layers), AsciiTable::Int(layers),
                  AsciiTable::Num(bert.TotalParamCount() / 1e9, 2) + "B",
                  FormatBytes(bert.BaselineMemory(0, layers)),
                  AsciiTable::Int(row.paper_util_pct) + "%",
                  AsciiTable::Int(static_cast<int>(util * 100)) + "%"});
    // Shape check: capacity roughly doubles with pipeline depth.
    if (prev_layers > 0 && layers < prev_layers) {
      std::printf("WARNING: capacity did not grow with depth (%d -> %d)\n", prev_layers,
                  layers);
    }
    prev_layers = layers;
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nShape check: the supported model size scales ~linearly with pipeline\n"
              "depth (BERT layers are uniform), with slightly lower utilization on\n"
              "deeper pipelines (longer warmup/drain).\n");
  return 0;
}
