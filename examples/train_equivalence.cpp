// End-to-end numeric training demo: trains the same MLP under serial,
// data-parallel and DAPPLE-pipelined execution and prints the (identical)
// loss curves — the paper's "convergence is safely preserved" claim as a
// runnable program.
//
// Usage: train_equivalence [iterations] [micro-batch]
#include <cstdio>
#include <cstdlib>

#include "dapple/dapple.h"
#include "train/trainer.h"

using namespace dapple::train;

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 100;
  const int micro = argc > 2 ? std::atoi(argv[2]) : 8;

  DatasetSpec spec;
  spec.samples = 64;
  spec.in_features = 6;
  spec.out_features = 2;
  spec.label_noise = 0.01;
  const Dataset data = MakeTeacherDataset(spec);
  dapple::Rng rng(99);
  const MlpModel model = MlpModel::MakeMlp(6, 12, 2, /*hidden_layers=*/2, rng);

  auto train_with = [&](Strategy strategy) {
    TrainerOptions o;
    o.strategy = strategy;
    o.iterations = iterations;
    o.replicas = 4;
    o.pipeline.stage_bounds = {0, 2, 5};
    o.pipeline.micro_batch = micro;
    auto opt = MakeAdam(0.01f);
    return Train(model, data, *opt, o);
  };

  TrainingRun serial = train_with(Strategy::kSerial);
  TrainingRun dp = train_with(Strategy::kDataParallel);
  TrainingRun pipe = train_with(Strategy::kPipelined);

  std::printf("iter   serial       data-parallel  DAPPLE-pipeline\n");
  for (int it = 0; it < iterations; it += std::max(1, iterations / 10)) {
    std::printf("%4d   %.6f     %.6f       %.6f\n", it,
                serial.losses[static_cast<std::size_t>(it)],
                dp.losses[static_cast<std::size_t>(it)],
                pipe.losses[static_cast<std::size_t>(it)]);
  }
  std::printf("final  %.6f     %.6f       %.6f\n", serial.final_loss(), dp.final_loss(),
              pipe.final_loss());
  std::printf("\nmax final-weight difference: DP %.2e, pipeline %.2e\n",
              MaxWeightDiff(serial.final_model, dp.final_model),
              MaxWeightDiff(serial.final_model, pipe.final_model));
  std::printf("pipeline max in-flight stashes per stage:");
  for (int k : pipe.max_in_flight) std::printf(" %d", k);
  std::printf("  (early backward scheduling at work)\n");
  return 0;
}
