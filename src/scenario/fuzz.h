// Seeded randomized testing for the scenario layer: long-horizon churn
// episodes fuzzed across (churn model x recovery policy x schedule family).
//
// Each case reuses the fault-fuzz topology stream — MakeFaultFuzzCase's
// (model, cluster, plan, schedule family, cost knobs) — then swaps in a
// seeded churn stream and a policy drawn uniformly from scenario-salted
// side-streams, so adding this mode shifted none of the pinned schedule/
// fault/memory-cap/ranking fuzz seeds. Every pipeline the episode builds
// (initial, remapped, replanned, scale-up) is executed fault-free and must
// pass the full ScheduleValidator invariant set with zero OOM tasks; the
// generated script must survive a Parse/ToString round trip; elastic-up
// rollbacks must stay checkpoint-bounded.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/fuzz.h"
#include "scenario/episode.h"

namespace dapple::scenario {

/// One generated episode configuration. Aggregate-constructed by
/// MakeScenarioFuzzCase.
struct ScenarioFuzzCase {
  std::uint64_t seed;
  model::ModelProfile model;
  topo::Cluster cluster;
  planner::ParallelPlan plan;
  ChurnModel churn;
  ChurnOptions churn_options;
  fault::RecoveryPolicy policy;
  /// Cost knobs and schedule family (from the fault-fuzz stream); the
  /// horizon is overridden to the churn horizon.
  fault::FaultOptions options;

  /// One-line description for failure messages and verbose logs.
  std::string Describe() const;
};

/// Deterministically derives an episode case from a seed, on its own salted
/// side-streams (churn knobs on one, the churn-model/policy draw on
/// another, the script itself on the generator's stream).
ScenarioFuzzCase MakeScenarioFuzzCase(std::uint64_t seed);

/// Everything observed while running one case.
struct ScenarioFuzzOutcome {
  std::uint64_t seed = 0;
  ChurnModel churn = ChurnModel::kSpotChurn;
  fault::RecoveryPolicy policy = fault::RecoveryPolicy::kSyncStall;
  /// Merged violations: validator findings (prefixed with the plan they came
  /// from), OOM tasks, round-trip mismatches, report sanity failures.
  check::ValidationReport report;
  int pipelines_validated = 0;
  int iterations_completed = 0;
  int preemptions = 0;
  int rejoins = 0;
  int scale_ups = 0;

  bool ok() const { return report.ok(); }
  /// Failure summary including the seed; empty when ok().
  std::string Summary() const;
};

/// Runs one case end to end (script round trip -> episode -> per-pipeline
/// validation -> report sanity).
ScenarioFuzzOutcome RunScenarioFuzzCase(const ScenarioFuzzCase& c);

inline ScenarioFuzzOutcome RunScenarioFuzzSeed(std::uint64_t seed) {
  return RunScenarioFuzzCase(MakeScenarioFuzzCase(seed));
}

/// Runs every seed through RunScenarioFuzzSeed on a sim::BatchRunner
/// (`threads`: 1 = inline serial, 0 = hardware concurrency). Outcome i
/// corresponds to seeds[i], byte-identical at every thread count.
std::vector<ScenarioFuzzOutcome> RunScenarioFuzzSweep(
    const std::vector<std::uint64_t>& seeds, int threads = 1);

}  // namespace dapple::scenario
