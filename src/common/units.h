// Strong unit types used throughout DAPPLE: simulated time (seconds) and
// data sizes (bytes). Keeping these as distinct vocabulary types (instead of
// bare doubles) makes cost-model signatures self-documenting and prevents
// mixing seconds with bytes at compile time where practical.
#pragma once

#include <cstdint>
#include <string>

namespace dapple {

/// Simulated time in seconds. The simulator is unit-agnostic; we standardize
/// on seconds so that bandwidths (bytes/sec) compose without conversion.
using TimeSec = double;

/// Data size in bytes.
using Bytes = std::uint64_t;

/// Bandwidth in bytes per second.
using BytesPerSec = double;

inline constexpr Bytes operator""_B(unsigned long long v) { return v; }
inline constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ull; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }
inline constexpr Bytes operator""_GiB(unsigned long long v) {
  return v * 1024ull * 1024ull * 1024ull;
}

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;
inline constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

/// Converts a fractional count of MiB to whole bytes (rounding down).
constexpr Bytes MiB(double v) { return static_cast<Bytes>(v * kMiB); }
/// Converts a fractional count of GiB to whole bytes (rounding down).
constexpr Bytes GiB(double v) { return static_cast<Bytes>(v * kGiB); }

/// Converts a Gbit/s link speed to bytes/sec (network convention: 1 Gbps =
/// 1e9 bits/sec).
constexpr BytesPerSec Gbps(double v) { return v * 1e9 / 8.0; }
/// Converts a GB/s memory/NVLink speed to bytes/sec (1 GB = 1e9 bytes).
constexpr BytesPerSec GBps(double v) { return v * 1e9; }

/// Renders a byte count with a human-friendly suffix, e.g. "26.0MB".
std::string FormatBytes(Bytes bytes);

/// Parses a byte count with an optional binary suffix: "123" (bytes),
/// "512KiB"/"512K", "12.5MiB"/"12.5M", "16GiB"/"16G", "2TiB"/"2T", plus an
/// optional "B" ("16GB" == "16GiB" here — sizes are binary throughout).
/// Case-insensitive; fractional values round down. Throws on malformed
/// input or negative values.
Bytes ParseBytes(const std::string& text);

/// Renders a simulated duration with an appropriate unit, e.g. "132.5ms".
std::string FormatTime(TimeSec seconds);

}  // namespace dapple
