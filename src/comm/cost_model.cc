#include "comm/cost_model.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace dapple::comm {

CostModel::CostModel(const topo::Cluster& cluster, CostModelOptions options)
    : cluster_(&cluster), options_(options) {
  DAPPLE_CHECK_GT(options_.memcpy_bandwidth, 0.0);
}

TimeSec CostModel::P2P(topo::DeviceId src, topo::DeviceId dst, Bytes bytes) const {
  if (src == dst || bytes == 0) return 0.0;
  const BytesPerSec bw = cluster_->bandwidth(src, dst);
  return options_.p2p_launch_overhead + cluster_->latency(src, dst) +
         static_cast<double>(bytes) / bw;
}

TimeSec CostModel::RingAllReduce(const topo::DeviceSet& devices, Bytes bytes) const {
  const int n = devices.size();
  if (n < 2 || bytes == 0) return 0.0;
  const BytesPerSec bw = devices.BottleneckBandwidth(*cluster_);
  const TimeSec lat = devices.MaxLatency(*cluster_);
  const double steps = 2.0 * (n - 1);
  const double volume = 2.0 * static_cast<double>(n - 1) / n * static_cast<double>(bytes);
  return options_.collective_launch_overhead + steps * lat + volume / bw;
}

TimeSec CostModel::HierarchicalAllReduce(const topo::DeviceSet& devices, Bytes bytes) const {
  const int n = devices.size();
  if (n < 2 || bytes == 0) return 0.0;
  const std::vector<int> counts = devices.PerServerCounts(*cluster_);
  int servers_used = 0;
  int max_per_server = 0;
  for (int c : counts) {
    if (c > 0) ++servers_used;
    max_per_server = std::max(max_per_server, c);
  }
  if (servers_used <= 1) return RingAllReduce(devices, bytes);

  const auto& net = cluster_->interconnect();
  TimeSec total = options_.collective_launch_overhead;

  // Phase 1: intra-server reduce-scatter on the busiest server (others
  // overlap). Volume (m-1)/m * bytes over NVLink.
  if (max_per_server > 1) {
    const double m = max_per_server;
    total += (m - 1.0) / m * static_cast<double>(bytes) / net.intra_server_bandwidth +
             (m - 1.0) * net.intra_server_latency;
  }
  // Phase 2: inter-server ring AllReduce over one leader per server.
  {
    const double k = servers_used;
    total += 2.0 * (k - 1.0) / k * static_cast<double>(bytes) / net.inter_server_bandwidth +
             2.0 * (k - 1.0) * net.inter_server_latency;
  }
  // Phase 3: intra-server all-gather, mirroring phase 1.
  if (max_per_server > 1) {
    const double m = max_per_server;
    total += (m - 1.0) / m * static_cast<double>(bytes) / net.intra_server_bandwidth +
             (m - 1.0) * net.intra_server_latency;
  }
  return total;
}

TimeSec CostModel::AllReduce(const topo::DeviceSet& devices, Bytes bytes) const {
  if (devices.size() < 2 || bytes == 0) return 0.0;
  if (options_.enable_hierarchical) {
    return std::min(RingAllReduce(devices, bytes), HierarchicalAllReduce(devices, bytes));
  }
  return RingAllReduce(devices, bytes);
}

BytesPerSec CostModel::WorstPairBandwidth(const topo::DeviceSet& from,
                                          const topo::DeviceSet& to) const {
  BytesPerSec worst = std::numeric_limits<BytesPerSec>::infinity();
  for (topo::DeviceId a : from.devices()) {
    for (topo::DeviceId b : to.devices()) {
      if (a == b) continue;  // co-located replica: no wire transfer
      worst = std::min(worst, cluster_->bandwidth(a, b));
    }
  }
  if (worst == std::numeric_limits<BytesPerSec>::infinity()) {
    // Fully co-located stages communicate through device memory.
    worst = options_.memcpy_bandwidth;
  }
  return worst;
}

TimeSec CostModel::CrossStage(const topo::DeviceSet& from, const topo::DeviceSet& to,
                              Bytes bytes) const {
  DAPPLE_CHECK(!from.empty() && !to.empty()) << "cross-stage transfer needs devices";
  if (bytes == 0) return 0.0;

  const double slice_out = static_cast<double>(bytes) / from.size();
  const double slice_in = static_cast<double>(bytes) / to.size();
  const BytesPerSec bw = WorstPairBandwidth(from, to);

  // The transfer completes when the busiest endpoint finishes: each sender
  // pushes slice_out bytes, each receiver drains slice_in bytes; the wire
  // phases proceed in parallel across replica pairs.
  TimeSec wire = std::max(slice_out, slice_in) / bw;

  TimeSec lat = 0.0;
  for (topo::DeviceId a : from.devices()) {
    for (topo::DeviceId b : to.devices()) {
      if (a == b) continue;
      lat = std::max(lat, cluster_->latency(a, b));
    }
  }

  // Split/concat staging copies apply only when the replica counts differ
  // (paper Fig. 9 b-d); the staged volume is one endpoint slice.
  TimeSec staging = 0.0;
  if (from.size() != to.size()) {
    staging = std::max(slice_out, slice_in) / options_.memcpy_bandwidth;
  }

  return options_.p2p_launch_overhead + lat + wire + staging;
}

}  // namespace dapple::comm
