// Calibration tests: the model zoo must reproduce every quantitative claim
// the paper makes about the benchmark models (Tables I, II, VIII and the
// §VI-B/C prose), since the planner's decisions are functions of exactly
// these vectors.
#include <gtest/gtest.h>

#include "common/error.h"
#include "model/zoo.h"
#include "planner/dp_planner.h"
#include "topo/cluster.h"

namespace dapple::model {
namespace {

TEST(Zoo, TableIIParamCounts) {
  EXPECT_NEAR(MakeGnmt16().TotalParamCount() / 1e6, 291, 2);
  EXPECT_NEAR(MakeBert48().TotalParamCount() / 1e6, 640, 2);
  EXPECT_NEAR(MakeXlnet36().TotalParamCount() / 1e6, 500, 2);
  EXPECT_NEAR(MakeResnet50().TotalParamCount() / 1e6, 24.5, 0.5);
  EXPECT_NEAR(MakeVgg19().TotalParamCount() / 1e6, 137, 2);
  EXPECT_NEAR(MakeAmoebaNet36().TotalParamCount() / 1e6, 933, 2);
}

TEST(Zoo, TableIGradientSizes) {
  // fp32 gradients; paper's Table I "Gradient Size" column.
  EXPECT_NEAR(MakeGnmt16().TotalParamBytes() / kGiB, 1.1, 0.1);
  EXPECT_NEAR(MakeBert48().TotalParamBytes() / kGiB, 2.4, 0.5);
  EXPECT_NEAR(MakeXlnet36().TotalParamBytes() / kGiB, 1.9, 0.3);
  EXPECT_NEAR(MakeAmoebaNet36().TotalParamBytes() / kGiB, 3.5, 0.4);
  EXPECT_NEAR(MakeVgg19().TotalParamBytes() / kMiB, 550, 30);
}

TEST(Zoo, TableIBoundaryActivations) {
  // Activation size at partition boundaries at the profile micro-batch.
  const ModelProfile gnmt = MakeGnmt16();
  EXPECT_NEAR(gnmt.ActivationAt(8, 64) / kMiB, 26, 1);
  const ModelProfile bert = MakeBert48();
  EXPECT_NEAR(bert.ActivationAt(24, 2) / kMiB, 8.8, 0.2);
  const ModelProfile xlnet = MakeXlnet36();
  EXPECT_NEAR(xlnet.ActivationAt(18, 1) / kMiB, 4.2, 0.2);
  const ModelProfile amoeba = MakeAmoebaNet36();
  EXPECT_NEAR(amoeba.ActivationAt(24, 1) / kMiB, 11.2, 0.3);
}

TEST(Zoo, GnmtEncoderDecoderImbalance) {
  // §VI-B: per-layer workloads of encoder vs decoder are ~1:1.45, which
  // pushes the 16-device split to 9:7.
  const ModelProfile gnmt = MakeGnmt16();
  const TimeSec enc = gnmt.layer(0).forward_time;
  const TimeSec dec = gnmt.layer(8).forward_time;
  EXPECT_NEAR(dec / enc, 1.45, 0.01);
  EXPECT_EQ(gnmt.num_layers(), 16);
  EXPECT_EQ(gnmt.optimizer(), OptimizerKind::kAdam);
}

TEST(Zoo, BertLayersAreUniform) {
  const ModelProfile bert = MakeBert48();
  EXPECT_EQ(bert.num_layers(), 48);
  for (int i = 1; i < 48; ++i) {
    EXPECT_DOUBLE_EQ(bert.layer(i).forward_time, bert.layer(0).forward_time);
    EXPECT_EQ(bert.layer(i).param_count, bert.layer(0).param_count);
  }
}

TEST(Zoo, BertWeakScalingSizes) {
  // Table VIII: BERT-48 640M -> 10.2GB with Adam (16 B/param);
  // BERT-106 1.4B; BERT-215 2.9B; BERT-428 5.7B.
  EXPECT_NEAR(MakeBert(48).BaselineMemory(0, 48) / 1e9, 10.2, 0.5);
  EXPECT_NEAR(MakeBert(106).TotalParamCount() / 1e9, 1.4, 0.1);
  EXPECT_NEAR(MakeBert(215).TotalParamCount() / 1e9, 2.9, 0.2);
  EXPECT_NEAR(MakeBert(428).TotalParamCount() / 1e9, 5.7, 0.3);
}

TEST(Zoo, VggWeightsConcentrateInFullyConnectedTail) {
  // §VI-C: ~70% of VGG-19's weights (about 400MB) sit in one fc layer and
  // boundary activations decay from 384MB to 3MB at micro-batch 32.
  const ModelProfile vgg = MakeVgg19();
  EXPECT_EQ(vgg.num_layers(), 25);
  std::uint64_t max_layer_params = 0;
  for (int i = 0; i < vgg.num_layers(); ++i) {
    max_layer_params = std::max(max_layer_params, vgg.layer(i).param_count);
  }
  EXPECT_NEAR(static_cast<double>(max_layer_params) / vgg.TotalParamCount(), 0.70, 0.03);
  EXPECT_NEAR(vgg.ActivationAt(1, 32) / kMiB, 384, 5);
  EXPECT_NEAR(vgg.ActivationAt(22, 32) / kMiB, 3, 0.5);  // conv/fc boundary
  // Activations are (weakly) decreasing along the feature extractor.
  for (int b = 2; b <= 22; ++b) {
    EXPECT_LE(vgg.ActivationAt(b, 32), vgg.ActivationAt(b - 1, 32));
  }
}

TEST(Zoo, VggComputeLivesInConvolutions) {
  const ModelProfile vgg = MakeVgg19();
  const TimeSec conv = vgg.ForwardTime(0, 22, 32);
  const TimeSec fc = vgg.ForwardTime(22, 25, 32);
  EXPECT_GT(conv, 10 * fc);
}

TEST(Zoo, AmoebaNetParamAndComputeDistribution) {
  // §VI-C: last third holds 73% of parameters; per-cell compute ramps up
  // by at most 40%.
  const ModelProfile amoeba = MakeAmoebaNet36();
  EXPECT_EQ(amoeba.num_layers(), 36);
  const double last_third = static_cast<double>(amoeba.ParamCount(24, 36));
  EXPECT_NEAR(last_third / amoeba.TotalParamCount(), 0.73, 0.01);
  const TimeSec first = amoeba.layer(0).forward_time;
  const TimeSec last = amoeba.layer(35).forward_time;
  EXPECT_NEAR(last / first, 1.4, 0.01);
  for (int i = 1; i < 36; ++i) {
    EXPECT_GE(amoeba.layer(i).forward_time, amoeba.layer(i - 1).forward_time);
  }
  EXPECT_EQ(amoeba.optimizer(), OptimizerKind::kRMSProp);
}

TEST(Zoo, ResnetIsSmallAndComputeDense) {
  const ModelProfile resnet = MakeResnet50();
  // ~100MB of weights but comparable compute to VGG: high
  // compute-to-communication density favours DP (Table V).
  EXPECT_LT(resnet.TotalParamBytes(), MiB(120));
  EXPECT_GT(resnet.ForwardTime(0, resnet.num_layers(), 128), 0.05);
  EXPECT_EQ(resnet.optimizer(), OptimizerKind::kSGD);
}

TEST(Zoo, BertLargeMatchesTableVIIShape) {
  const ModelProfile bl = MakeBertLarge();
  EXPECT_EQ(bl.num_layers(), 26);  // Table VII indices 0..26
  EXPECT_NEAR(bl.TotalParamCount() / 1e6, 335, 10);
  // Embedding is parameter-heavy but compute-light vs an encoder.
  EXPECT_GT(bl.layer(0).param_count, bl.layer(1).param_count);
  EXPECT_LT(bl.layer(0).forward_time, bl.layer(1).forward_time);
}

TEST(Zoo, ProfileMicroBatchesMatchTableII) {
  EXPECT_EQ(MakeGnmt16().profile_micro_batch(), 64);
  EXPECT_EQ(MakeBert48().profile_micro_batch(), 2);
  EXPECT_EQ(MakeXlnet36().profile_micro_batch(), 1);
  EXPECT_EQ(MakeResnet50().profile_micro_batch(), 128);
  EXPECT_EQ(MakeVgg19().profile_micro_batch(), 32);
  EXPECT_EQ(MakeAmoebaNet36().profile_micro_batch(), 1);
}

TEST(Zoo, LookupByName) {
  EXPECT_EQ(ModelByName("BERT-48").name(), "BERT-48");
  EXPECT_EQ(ModelByName("VGG-19").name(), "VGG-19");
  EXPECT_EQ(ModelByName("BERT-Large").name(), "BERT-Large");
  EXPECT_THROW(ModelByName("GPT-3"), dapple::Error);
  EXPECT_EQ(AllBenchmarkModels().size(), 6u);
}

TEST(Zoo, UniformSyntheticHelper) {
  const ModelProfile m = MakeUniformSynthetic(4, 0.01, 0.02, 100, 1000);
  EXPECT_EQ(m.num_layers(), 4);
  EXPECT_EQ(m.TotalParamCount(), 4000u);
  EXPECT_DOUBLE_EQ(m.ForwardTime(0, 4, 1.0), 0.04);
}

}  // namespace
}  // namespace dapple::model

// -- appended: parameterized transformer generator ------------------------

namespace dapple::model {
namespace {

TEST(Transformer, ParameterCountMatchesClosedForm) {
  TransformerSpec spec;
  spec.layers = 24;
  spec.hidden = 1024;
  const ModelProfile m = MakeTransformer(spec);
  // ~12 h^2 per layer: 24 * 12 * 1024^2 ~ 302M.
  EXPECT_NEAR(m.TotalParamCount() / 1e6, 302, 5);
  EXPECT_EQ(m.num_layers(), 24);
}

TEST(Transformer, ScalesQuadraticallyInHidden) {
  TransformerSpec small, big;
  small.hidden = 512;
  big.hidden = 1024;
  const ModelProfile ms = MakeTransformer(small);
  const ModelProfile mb = MakeTransformer(big);
  EXPECT_NEAR(static_cast<double>(mb.TotalParamCount()) / ms.TotalParamCount(), 4.0, 0.1);
  // Compute also grows ~quadratically (diluted by fixed launch overhead
  // and the seq*h attention term).
  const double ratio = mb.ForwardTime(0, 24, 2) / ms.ForwardTime(0, 24, 2);
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 4.1);
}

TEST(Transformer, FasterDeviceShortensTime) {
  TransformerSpec slow, fast;
  fast.device_teraflops = 30.0;
  const TimeSec t_slow = MakeTransformer(slow).ForwardTime(0, 24, 2);
  const TimeSec t_fast = MakeTransformer(fast).ForwardTime(0, 24, 2);
  EXPECT_LT(t_fast, t_slow);
}

TEST(Transformer, PlannableEndToEnd) {
  TransformerSpec spec;
  spec.layers = 32;
  spec.hidden = 2048;  // ~1.6B params: needs pipelining on 16GB
  const ModelProfile m = MakeTransformer(spec);
  EXPECT_GT(m.BaselineMemory(0, 32), 16ull << 30);
  const topo::Cluster cluster = topo::MakeConfigA(2);
  // Just verify a plan exists and is valid via the public flow.
  planner::LatencyOptions lo;
  planner::PlannerOptions po;
  po.global_batch_size = 32;
  po.max_stages = 4;
  planner::DapplePlanner planner(m, cluster, po);
  const auto result = planner.Plan();
  result.plan.Validate(m);
  EXPECT_GT(result.plan.num_stages(), 1);  // DP impossible
}

TEST(Transformer, RejectsBadSpecs) {
  TransformerSpec bad;
  bad.layers = 0;
  EXPECT_THROW(MakeTransformer(bad), dapple::Error);
  bad.layers = 2;
  bad.device_teraflops = 0;
  EXPECT_THROW(MakeTransformer(bad), dapple::Error);
}

}  // namespace
}  // namespace dapple::model
