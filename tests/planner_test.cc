// Tests for the DAPPLE planner (paper SIV): plan selection on synthetic and
// calibrated models, memory-driven feasibility, uneven-partition preference
// (Fig. 7), and agreement with brute force on tiny instances.
#include <gtest/gtest.h>

#include "common/error.h"
#include "model/zoo.h"
#include "planner/dp_baseline.h"
#include "planner/dp_planner.h"
#include "topo/cluster.h"

namespace dapple::planner {
namespace {

using model::MakeUniformSynthetic;
using topo::DeviceSet;

PlannerOptions Opts(long gbs) {
  PlannerOptions o;
  o.global_batch_size = gbs;
  return o;
}

TEST(Planner, ComputeHeavyModelPrefersDataParallel) {
  // Tiny weights, big compute: gradient sync is negligible, DP wins.
  const auto m = MakeUniformSynthetic(8, 0.050, 0.100, 1_MiB, 100'000, 1);
  const auto cluster = topo::MakeConfigA(1);
  DapplePlanner planner(m, cluster, Opts(64));
  const PlanResult result = planner.Plan();
  EXPECT_TRUE(result.plan.IsDataParallel());
  EXPECT_GT(result.candidates_evaluated, 10);
}

TEST(Planner, HeavyGradientsOnSlowNetworkPreferPipeline) {
  // Huge uniform weights on 10 Gbps: replication means GBs of AllReduce,
  // so the planner must partition instead.
  const auto m = MakeUniformSynthetic(8, 0.020, 0.040, 1_MiB, 40'000'000, 1);
  const auto cluster = topo::MakeConfigC(4);
  DapplePlanner planner(m, cluster, Opts(64));
  const PlanResult result = planner.Plan();
  EXPECT_GT(result.plan.num_stages(), 1);
}

TEST(Planner, PlanIsValidAndUsesOnlyAvailableDevices) {
  const auto bert = model::MakeBert48();
  const auto cluster = topo::MakeConfigA(2);
  DapplePlanner planner(bert, cluster, Opts(64));
  const PlanResult result = planner.Plan();
  result.plan.Validate(bert);
  EXPECT_LE(result.plan.num_devices(), cluster.num_devices());
  for (const StagePlan& s : result.plan.stages) {
    for (topo::DeviceId d : s.devices.devices()) {
      EXPECT_LT(d, cluster.num_devices());
    }
  }
}

TEST(Planner, Bert48ConfigAMatchesPaperTableV) {
  // Table V: BERT-48 on 2x8 Config-A plans an 8:8 two-stage pipeline with
  // a near-even split (23:25) and small ACR (~0.06).
  const auto bert = model::MakeBert48();
  const auto cluster = topo::MakeConfigA(2);
  DapplePlanner planner(bert, cluster, Opts(64));
  const PlanResult result = planner.Plan();
  ASSERT_EQ(result.plan.num_stages(), 2);
  EXPECT_EQ(result.plan.stages[0].replication(), 8);
  EXPECT_EQ(result.plan.stages[1].replication(), 8);
  // Each stage sits inside one server (gradients stay on NVLink).
  EXPECT_TRUE(result.plan.stages[0].devices.SingleServer(cluster));
  EXPECT_TRUE(result.plan.stages[1].devices.SingleServer(cluster));
  // Near-even split.
  EXPECT_NEAR(result.plan.stages[0].num_layers(), 24, 2);
  EXPECT_LT(result.estimate.acr, 0.2);
}

TEST(Planner, AmoebaNetPlansPipelineDespiteDpInfeasibility) {
  // Table V: DP is not available (OOM); the planner must still return a
  // feasible multi-stage plan.
  const auto amoeba = model::MakeAmoebaNet36();
  const auto cluster = topo::MakeConfigA(2);
  DapplePlanner planner(amoeba, cluster, Opts(128));
  const PlanResult result = planner.Plan();
  EXPECT_GT(result.plan.num_stages(), 1);
  EXPECT_TRUE(result.estimate.feasible);
  EXPECT_LE(result.estimate.max_peak_memory, cluster.device().memory);
}

TEST(Planner, UnevenSplitBeatsEvenOnImbalancedModel) {
  // Fig. 7's insight: for a model whose halves are unequal, the best split
  // is slightly uneven. GNMT's decoder layers cost 1.45x encoder layers,
  // so the 16-layer split shifts into the decoder (the paper plans 9:7;
  // under our calibration the optimum lands at 9-10 encoder-side layers --
  // never the even 8:8).
  const auto gnmt = model::MakeGnmt16();
  const auto cluster = topo::MakeConfigA(2);
  DapplePlanner planner(gnmt, cluster, Opts(1024));

  // Build the candidate family explicitly: 8:8 devices, split k : 16-k.
  auto two_stage = [&](int split) {
    ParallelPlan p;
    p.model = gnmt.name();
    StagePlan s0, s1;
    s0.layer_begin = 0;
    s0.layer_end = split;
    s0.devices = DeviceSet::Range(0, 8);
    s1.layer_begin = split;
    s1.layer_end = 16;
    s1.devices = DeviceSet::Range(8, 8);
    p.stages = {s0, s1};
    return p;
  };
  const PlanEstimate e_even = planner.Evaluate(two_stage(8));
  const PlanEstimate e_9 = planner.Evaluate(two_stage(9));
  EXPECT_LT(e_9.latency, e_even.latency);

  // The planner's own choice is an uneven two-stage 8:8 pipeline with the
  // boundary shifted into the decoder.
  const PlanResult result = planner.Plan();
  ASSERT_EQ(result.plan.num_stages(), 2);
  EXPECT_GE(result.plan.stages[0].num_layers(), 9);
  EXPECT_LE(result.plan.stages[0].num_layers(), 11);
}

TEST(Planner, MaxStagesCapRespected) {
  const auto m = MakeUniformSynthetic(8, 0.02, 0.04, 1_MiB, 40'000'000, 1);
  const auto cluster = topo::MakeConfigC(8);
  PlannerOptions o = Opts(64);
  o.max_stages = 2;
  DapplePlanner planner(m, cluster, o);
  const PlanResult result = planner.Plan();
  EXPECT_LE(result.plan.num_stages(), 2);
}

TEST(Planner, MatchesBruteForceOnTinyInstance) {
  // 3 layers, 2 flat devices: enumerate every contiguous partition into 1
  // or 2 stages by hand and check the planner finds the best latency.
  const auto m = MakeUniformSynthetic(3, 0.010, 0.020, 8_MiB, 20'000'000, 1);
  const auto cluster = topo::MakeConfigC(2);
  DapplePlanner planner(m, cluster, Opts(8));
  const PlanResult result = planner.Plan();

  double best_brute = std::numeric_limits<double>::infinity();
  // DP on both devices.
  {
    ParallelPlan dp = MakeDataParallelPlan(m, cluster);
    const auto e = planner.Evaluate(dp);
    if (e.feasible) best_brute = std::min(best_brute, e.latency);
  }
  // Two-stage splits.
  for (int split = 1; split < 3; ++split) {
    ParallelPlan p;
    p.model = m.name();
    StagePlan s0, s1;
    s0.layer_begin = 0;
    s0.layer_end = split;
    s0.devices = DeviceSet::Range(0, 1);
    s1.layer_begin = split;
    s1.layer_end = 3;
    s1.devices = DeviceSet::Range(1, 1);
    p.stages = {s0, s1};
    const auto e = planner.Evaluate(p);
    if (e.feasible) best_brute = std::min(best_brute, e.latency);
  }
  EXPECT_NEAR(result.estimate.latency, best_brute, 1e-12);
}

TEST(Planner, RequiresGlobalBatch) {
  const auto m = MakeUniformSynthetic(2, 0.01, 0.02, 0, 0, 1);
  const auto cluster = topo::MakeConfigB(2);
  EXPECT_THROW(DapplePlanner(m, cluster, PlannerOptions{}), dapple::Error);
}

TEST(Planner, ThrowsWhenNothingFits) {
  // A model so large that even a 16-stage pipeline cannot hold it.
  const auto huge = MakeUniformSynthetic(4, 0.01, 0.02, 1_MiB,
                                         2'000'000'000ull, 1,
                                         model::OptimizerKind::kAdam);
  const auto cluster = topo::MakeConfigB(2);
  DapplePlanner planner(huge, cluster, Opts(8));
  EXPECT_THROW(planner.Plan(), dapple::Error);
}

TEST(Planner, VggOnSlowNetworkIsolatesFullyConnectedStage) {
  // SVI-B: on 10 Gbps (Config-C) the planner avoids replicating the fc
  // weights: the final stage (containing fc6..fc8) stays narrow.
  const auto vgg = model::MakeVgg19();
  const auto cluster = topo::MakeConfigC(16);
  DapplePlanner planner(vgg, cluster, Opts(2048));
  const PlanResult result = planner.Plan();
  ASSERT_GT(result.plan.num_stages(), 1);
  const StagePlan& last = result.plan.stages.back();
  // The fc tail is not replicated across many machines.
  EXPECT_LE(last.replication(), 2);
  // The split keeps the parameter-heavy fc layers in the narrow stage.
  EXPECT_LE(last.layer_begin, 22);
  EXPECT_GE(last.layer_begin, 15);
  // And the hybrid beats data parallelism on this network.
  const auto dp = EstimateDataParallel(vgg, cluster, 2048, DataParallelVariant::kOverlap);
  ASSERT_TRUE(dp.feasible);
  EXPECT_LT(result.estimate.latency, dp.iteration_time);
}

TEST(Planner, EvaluateMatchesPlanEstimateForChosenPlan) {
  const auto bert = model::MakeBert48();
  const auto cluster = topo::MakeConfigA(2);
  DapplePlanner planner(bert, cluster, Opts(64));
  const PlanResult result = planner.Plan();
  const PlanEstimate re = planner.Evaluate(result.plan);
  EXPECT_NEAR(re.latency, result.estimate.latency, 1e-12);
}

}  // namespace
}  // namespace dapple::planner
