// Stable 64-bit canonical fingerprints. Unlike std::hash (whose values are
// explicitly unspecified and vary across standard libraries, platforms and
// process runs), Fingerprint64 is FNV-1a over a canonical byte encoding —
// the same input always produces the same 64-bit digest, on every build,
// forever. That stability is what makes the digests usable as durable
// identifiers: plan-cache keys that survive a daemon restart, BENCH row ids
// that can be compared across commits, golden values pinned in tests.
//
// Encoding rules (the canonical form the digest is defined over):
//   - unsigned/signed 64-bit integers: 8 bytes little-endian (signed via
//     two's-complement bit pattern);
//   - doubles: the IEEE-754 bit pattern as a 64-bit integer (-0.0 and 0.0
//     are normalized to +0.0 so semantically equal values agree);
//   - bools: one byte, 0 or 1;
//   - strings: length as a 64-bit integer, then the raw bytes (the length
//     prefix keeps ("ab","c") distinct from ("a","bc")).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dapple {

/// Streaming FNV-1a 64-bit hasher over the canonical encoding above.
class Fingerprint64 {
 public:
  Fingerprint64& MixBytes(const void* data, std::size_t size);

  Fingerprint64& Mix(std::uint64_t v);
  Fingerprint64& Mix(std::int64_t v) { return Mix(static_cast<std::uint64_t>(v)); }
  Fingerprint64& Mix(std::uint32_t v) { return Mix(static_cast<std::uint64_t>(v)); }
  Fingerprint64& Mix(std::int32_t v) { return Mix(static_cast<std::int64_t>(v)); }
  Fingerprint64& Mix(double v);
  Fingerprint64& Mix(bool v);
  Fingerprint64& Mix(std::string_view s);
  Fingerprint64& Mix(const char* s) { return Mix(std::string_view(s)); }

  /// The digest of everything mixed so far. Never 0: a zero digest is
  /// remapped so callers may use 0 as an "absent" sentinel.
  std::uint64_t digest() const;

 private:
  // FNV-1a offset basis.
  std::uint64_t state_ = 14695981039346656037ull;
};

/// Renders a digest as the fixed-width hex form used in logs, cache stats
/// and BENCH rows: "fp:0123456789abcdef".
std::string FingerprintToString(std::uint64_t digest);

}  // namespace dapple
