// Scheduler ablations: (1) warmup depth K swept directly (the knob behind
// policies PA/PB, §V-C) showing the latency/memory trade; (2) the
// re-computation overhead sweep around the paper's ~20% figure.
#include "harness.h"

#include <cstdio>

#include "common/table.h"

using namespace dapple;

int main() {
  bench::PrintHeader("Ablation — scheduler knobs (warmup depth K, recompute cost)",
                     "DAPPLE paper §V-C and §II-A");

  // A 4-stage GNMT pipeline on flat 25G: visible cross-stage comm makes
  // the warmup depth matter.
  const model::ModelProfile gnmt = model::MakeGnmt16();
  const topo::Cluster cluster = topo::MakeConfigB(4);
  planner::ParallelPlan plan;
  plan.model = gnmt.name();
  for (int s = 0; s < 4; ++s) {
    planner::StagePlan sp;
    sp.layer_begin = 4 * s;
    sp.layer_end = 4 * (s + 1);
    sp.devices = topo::DeviceSet::Range(s, 1);
    plan.stages.push_back(sp);
  }

  std::printf("\n(1) warmup depth K sweep (4-stage GNMT-16, Config-B, GBS 1024):\n");
  AsciiTable table({"K (stage 0)", "Latency", "Throughput (samples/s)", "Max peak mem",
                    "Note"});
  for (int k = 1; k <= 8; ++k) {
    runtime::BuildOptions o;
    o.global_batch_size = 1024;
    o.micro_batch_size = 64;
    o.schedule.warmup_override = k;
    runtime::PipelineExecutor exec(gnmt, cluster, plan, o);
    const auto r = exec.Run();
    std::string note;
    if (k == 4) note = "= PA's K0 (S)";
    if (k == 7) note = "= PB's K0 (2S-1)";
    table.AddRow({AsciiTable::Int(k), FormatTime(r.pipeline_latency),
                  AsciiTable::Num(r.throughput, 1), FormatBytes(r.max_peak_memory), note});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("Throughput saturates once K covers the pipeline round trip; memory\n"
              "keeps growing — the paper's PA/PB policies pick the two sweet spots.\n");

  std::printf("\n(2) re-computation overhead sweep (DAPPLE, BERT-48 2-stage, Config-B):\n");
  const model::ModelProfile bert = model::MakeBert48();
  const topo::Cluster two = topo::MakeConfigB(2);
  planner::ParallelPlan bplan;
  bplan.model = bert.name();
  planner::StagePlan s0, s1;
  s0.layer_begin = 0;
  s0.layer_end = 24;
  s0.devices = topo::DeviceSet::Range(0, 1);
  s1.layer_begin = 24;
  s1.layer_end = 48;
  s1.devices = topo::DeviceSet::Range(1, 1);
  bplan.stages = {s0, s1};

  AsciiTable rc_table({"RC overhead (x FW)", "Throughput (samples/s)",
                       "vs no-RC throughput", "Avg peak mem"});
  runtime::BuildOptions base;
  base.global_batch_size = 32;
  base.micro_batch_size = 2;
  const auto no_rc = runtime::PipelineExecutor(bert, two, bplan, base).Run();
  rc_table.AddRow({"no recompute", AsciiTable::Num(no_rc.throughput, 2), "1.00",
                   FormatBytes(no_rc.avg_peak_memory)});
  for (double overhead : {0.25, 0.5, 0.75, 1.0}) {
    runtime::BuildOptions o = base;
    o.schedule.recompute = true;
    o.schedule.recompute_overhead = overhead;
    const auto r = runtime::PipelineExecutor(bert, two, bplan, o).Run();
    rc_table.AddRow({AsciiTable::Num(overhead, 2), AsciiTable::Num(r.throughput, 2),
                     AsciiTable::Num(r.throughput / no_rc.throughput, 2),
                     FormatBytes(r.avg_peak_memory)});
  }
  std::printf("%s", rc_table.ToString().c_str());
  std::printf("The paper's reported ~20%% throughput cost corresponds to an overhead\n"
              "around 0.5-0.75x of the forward pass; memory savings are independent\n"
              "of the overhead.\n");
  return 0;
}
