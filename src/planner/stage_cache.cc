#include "planner/stage_cache.h"

#include "obs/metrics.h"

namespace dapple::planner {

namespace {

std::uint64_t MaskOf(const topo::DeviceSet& devices) {
  std::uint64_t mask = 0;
  for (topo::DeviceId d : devices.devices()) {
    mask |= std::uint64_t{1} << (static_cast<unsigned>(d) & 63u);
  }
  return mask;
}

}  // namespace

StageCostKey StageCostCache::CompKey(int layer_begin, int layer_end,
                                     const topo::DeviceSet& devices, int micro_batch_size,
                                     bool recompute) {
  StageCostKey key;
  key.kind = StageCostKey::Kind::kComp;
  key.layer_begin = layer_begin;
  key.layer_end = layer_end;
  key.micro_batch_size = micro_batch_size;
  key.aux = recompute ? 1 : 0;
  key.mask_a = MaskOf(devices);
  return key;
}

StageCostKey StageCostCache::CommKey(int boundary, const topo::DeviceSet& from,
                                     const topo::DeviceSet& to, int micro_batch_size) {
  StageCostKey key;
  key.kind = StageCostKey::Kind::kComm;
  key.layer_begin = boundary;
  key.layer_end = boundary;
  key.micro_batch_size = micro_batch_size;
  key.mask_a = MaskOf(from);
  key.mask_b = MaskOf(to);
  return key;
}

StageCostKey StageCostCache::MemoryKey(int layer_begin, int layer_end, int replication,
                                       int micro_batch_size, int warmup_depth,
                                       bool recompute) {
  StageCostKey key;
  key.kind = StageCostKey::Kind::kMemory;
  key.layer_begin = layer_begin;
  key.layer_end = layer_end;
  key.micro_batch_size = micro_batch_size;
  key.aux = warmup_depth;
  // Peak memory depends on the per-replica slice, not on which physical
  // devices host it; the replication factor is the whole device signature.
  key.mask_a = static_cast<std::uint64_t>(replication);
  key.mask_b = recompute ? 1 : 0;
  return key;
}

void ExportSearchStats(const PlannerSearchStats& stats) {
  auto& metrics = obs::MetricsRegistry::Global();
  metrics.counter("planner.parallel.subproblems").Increment(stats.subproblems);
  metrics.counter("planner.parallel.levels").Increment(stats.levels);
  metrics.gauge("planner.parallel.threads").Set(static_cast<double>(stats.threads));
  metrics.histogram("planner.parallel.wall_seconds").Observe(stats.wall_seconds);
  // Cap metrics only when a cap was actually in force, so uncapped runs
  // keep their metric namespace unchanged.
  if (stats.memory_cap > 0) {
    metrics.gauge("planner.cap.bytes").Set(static_cast<double>(stats.memory_cap));
    metrics.counter("planner.cap.memory_rejected").Increment(stats.memory_rejected);
    metrics.counter("planner.cap.recompute_stages").Increment(stats.recompute_stages);
    metrics.counter("planner.cap.fit_probes").Increment(stats.fit_probes);
  }
  metrics.counter("planner.cache.hits").Increment(stats.cache_hits);
  metrics.counter("planner.cache.misses").Increment(stats.cache_misses);
  metrics.counter("planner.cache.evictions").Increment(stats.cache_evictions);
  metrics.gauge("planner.cache.hit_rate").Set(stats.cache_hit_rate());
  metrics.histogram("planner.cache.compute_seconds").Observe(stats.cache_compute_seconds);
  // Per-shard distribution: a skewed entry histogram means the key hash is
  // funneling contention onto few locks.
  for (const CacheShardStats& shard : stats.shards) {
    metrics.histogram("planner.cache.shard_entries")
        .Observe(static_cast<double>(shard.entries));
    metrics.histogram("planner.cache.shard_hits").Observe(static_cast<double>(shard.hits));
    metrics.histogram("planner.cache.shard_compute_seconds")
        .Observe(shard.compute_seconds);
  }
}

}  // namespace dapple::planner
