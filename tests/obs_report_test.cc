// Unit tests for the iteration-report observability layer, pinned on the
// paper's Fig. 3 worked example: two single-device stages, M = 4, DAPPLE
// early-backward schedule. Small enough that every reported quantity is
// checkable by hand from the schedule diagram.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "model/zoo.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "planner/dp_planner.h"
#include "runtime/graph_builder.h"
#include "sim/engine.h"
#include "topo/cluster.h"
#include "topo/device_set.h"

namespace dapple {
namespace {

struct Fig3 {
  model::ModelProfile model = model::MakeUniformSynthetic(4, 0.002, 0.004, 1_MiB, 1'000'000);
  topo::Cluster cluster = topo::MakeConfigB(2);
  planner::ParallelPlan plan;
  runtime::BuildOptions options;

  Fig3() {
    plan.model = model.name();
    plan.stages.push_back({0, 2, topo::DeviceSet::Range(0, 1)});
    plan.stages.push_back({2, 4, topo::DeviceSet::Range(1, 1)});
    options.global_batch_size = 4;  // micro-batch size 1 => M = 4
    options.schedule.kind = runtime::ScheduleKind::kDapple;
  }

  obs::IterationReport Report() const {
    const runtime::BuiltPipeline built =
        runtime::GraphBuilder(model, cluster, plan, options).Build();
    const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
    return obs::BuildIterationReport(built, result);
  }
};

TEST(IterationReport, Fig3ShapeAndBatching) {
  const obs::IterationReport r = Fig3().Report();
  EXPECT_EQ(r.schedule, "DAPPLE");
  EXPECT_EQ(r.num_stages, 2);
  EXPECT_EQ(r.num_devices, 2);
  EXPECT_EQ(r.micro_batch_size, 1);
  EXPECT_EQ(r.num_micro_batches, 4);
  EXPECT_FALSE(r.recompute);
  EXPECT_FALSE(r.oom);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_NEAR(r.throughput, 4.0 / r.makespan, 1e-9);
}

TEST(IterationReport, Fig3HandComputedBusyTimes) {
  const obs::IterationReport r = Fig3().Report();
  ASSERT_EQ(r.devices.size(), 2u);
  for (const obs::DeviceReport& d : r.devices) {
    // Each stage holds 2 uniform layers: forward 2 x 2 ms, backward
    // 2 x 4 ms, times M = 4 micro-batches.
    EXPECT_NEAR(d.forward_busy, 4 * 0.004, 1e-9) << "device " << d.device;
    EXPECT_NEAR(d.backward_busy, 4 * 0.008, 1e-9) << "device " << d.device;
    // 4 FW + 4 BW + 1 Apply.
    EXPECT_EQ(d.tasks_executed, 9);
    EXPECT_GT(d.apply_busy, 0.0);
    // compute_busy covers exactly FW + BW + Apply here (no recompute).
    EXPECT_NEAR(d.compute_busy, d.forward_busy + d.backward_busy + d.apply_busy, 1e-9);
    EXPECT_NEAR(d.utilization, d.compute_busy / r.makespan, 1e-12);
    EXPECT_NEAR(d.bubble_ratio, 1.0 - d.utilization, 1e-12);
  }
  // Identical stages => identical bubble ratios, and the iteration-level
  // fraction is their mean.
  EXPECT_NEAR(r.devices[0].bubble_ratio, r.devices[1].bubble_ratio, 1e-9);
  EXPECT_NEAR(r.bubble_fraction,
              (r.devices[0].bubble_ratio + r.devices[1].bubble_ratio) / 2, 1e-12);
  // Paper formula 1 idealization: bubble ~ (S-1)/(M+S-1) = 1/5. Transfers
  // and the weight update push the measured value a little above it.
  EXPECT_GT(r.bubble_fraction, 0.2 - 1e-9);
  EXPECT_LT(r.bubble_fraction, 0.35);
  // All-device split: 2 devices x (16 + 32) ms of FW/BW compute.
  EXPECT_NEAR(r.split.compute, 2 * (0.016 + 0.032), 1e-9);
  EXPECT_EQ(r.split.allreduce, 0.0);  // single-replica stages
  EXPECT_GT(r.split.transfer, 0.0);
}

TEST(IterationReport, Fig3PhaseSplit) {
  const obs::IterationReport r = Fig3().Report();
  // Warmup ends when stage 1's first backward starts: one stage-0 forward,
  // one cross-stage transfer, one stage-1 forward.
  EXPECT_GT(r.phases.warmup_end, 0.004 + 0.004);
  EXPECT_LT(r.phases.warmup_end, r.phases.steady_end);
  EXPECT_NEAR(r.phases.warmup + r.phases.steady + r.phases.drain, r.makespan, 1e-12);
  EXPECT_NEAR(r.phases.warmup, r.phases.warmup_end, 1e-12);
  EXPECT_GT(r.phases.drain, 0.0);  // stage-0 backward tail + weight update
}

TEST(IterationReport, Fig3StagesAndWarmupDepths) {
  const obs::IterationReport r = Fig3().Report();
  ASSERT_EQ(r.stages.size(), 2u);
  // Policy PA: K_i = min(S - i, M) => K_0 = 2, K_1 = 1.
  EXPECT_EQ(r.stages[0].warmup_depth, 2);
  EXPECT_EQ(r.stages[1].warmup_depth, 1);
  EXPECT_EQ(r.stages[0].devices, std::vector<int>{0});
  EXPECT_EQ(r.stages[1].devices, std::vector<int>{1});
  // Forward activations flow 0 -> 1 only.
  EXPECT_EQ(r.stages[0].inbound_transfer, 0.0);
  EXPECT_GT(r.stages[0].outbound_transfer, 0.0);
  EXPECT_NEAR(r.stages[1].inbound_transfer, r.stages[0].outbound_transfer, 1e-12);
  EXPECT_EQ(r.stages[1].outbound_transfer, 0.0);
  // Deeper warmup stashes more activations: stage 0 peaks higher.
  EXPECT_GT(r.stages[0].peak_memory, r.stages[1].peak_memory);
}

TEST(IterationReport, Fig3LinksCarryTheActivationVolume) {
  const obs::IterationReport r = Fig3().Report();
  ASSERT_EQ(r.links.size(), 2u);
  const auto txf = std::find_if(r.links.begin(), r.links.end(),
                                [](const auto& l) { return l.name == "txf s0->s1"; });
  const auto txb = std::find_if(r.links.begin(), r.links.end(),
                                [](const auto& l) { return l.name == "txb s1->s0"; });
  ASSERT_NE(txf, r.links.end());
  ASSERT_NE(txb, r.links.end());
  // One 1 MiB activation (and one gradient) per micro-batch per direction.
  EXPECT_EQ(txf->transfers, 4);
  EXPECT_EQ(txb->transfers, 4);
  EXPECT_EQ(txf->bytes, 4 * 1_MiB);
  EXPECT_EQ(txb->bytes, 4 * 1_MiB);
  EXPECT_GT(txf->occupancy, 0.0);
  EXPECT_LT(txf->occupancy, 1.0);
}

TEST(IterationReport, Fig3JsonIsDeterministic) {
  const Fig3 fig;
  const std::string a = obs::ToJson(fig.Report());
  const std::string b = obs::ToJson(fig.Report());
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"bubble_fraction\""), std::string::npos);
  EXPECT_NE(a.find("\"txf s0->s1\""), std::string::npos);
  const std::string text = obs::ToText(fig.Report());
  EXPECT_NE(text.find("bubble fraction"), std::string::npos);
}

TEST(IterationReport, PeakVsMCurveIsFlatForDapple) {
  const Fig3 fig;
  const auto curve =
      obs::PeakVsMCurve(fig.model, fig.cluster, fig.plan, fig.options, {4, 8, 16});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_EQ(curve[0].num_micro_batches, 4);
  EXPECT_EQ(curve[2].num_micro_batches, 16);
  // §III: peak activation memory is O(K), not O(M).
  EXPECT_EQ(curve[0].max_peak_memory, curve[1].max_peak_memory);
  EXPECT_EQ(curve[1].max_peak_memory, curve[2].max_peak_memory);
}

TEST(IterationReport, PeakVsMCurveGrowsForGPipe) {
  Fig3 fig;
  fig.options.schedule.kind = runtime::ScheduleKind::kGPipe;
  fig.options.enforce_memory_capacity = false;
  const auto curve =
      obs::PeakVsMCurve(fig.model, fig.cluster, fig.plan, fig.options, {4, 16});
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_LT(curve[0].max_peak_memory, curve[1].max_peak_memory);
}

TEST(IterationReport, PeakVsMPrefilterNeverChangesTheCurve) {
  // prefilter=auto may only skip simulations, never change bytes. DAPPLE's
  // warmup saturates, so the flat tail dedups to one simulation; GPipe
  // stashes all M, so every point stays distinct and nothing dedups.
  auto& metrics = obs::MetricsRegistry::Global();
  const Fig3 dapple_fig;
  const std::vector<int> counts = {4, 8, 16, 32};
  const auto full = obs::PeakVsMCurve(dapple_fig.model, dapple_fig.cluster,
                                      dapple_fig.plan, dapple_fig.options, counts);

  const std::int64_t skipped0 =
      metrics.counter("prefilter.peak_vs_m.skipped").value();
  for (const int threads : {1, 8}) {
    const auto pre = obs::PeakVsMCurve(
        dapple_fig.model, dapple_fig.cluster, dapple_fig.plan, dapple_fig.options,
        counts, obs::PeakVsMOptions{.sim_threads = threads, .prefilter = true});
    ASSERT_EQ(pre.size(), full.size());
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_EQ(pre[i].num_micro_batches, full[i].num_micro_batches);
      EXPECT_EQ(pre[i].max_peak_memory, full[i].max_peak_memory);
    }
  }
  // Non-vacuity: the saturated DAPPLE tail must actually have been skipped.
  EXPECT_GT(metrics.counter("prefilter.peak_vs_m.skipped").value(), skipped0);

  Fig3 gpipe_fig;
  gpipe_fig.options.schedule.kind = runtime::ScheduleKind::kGPipe;
  gpipe_fig.options.enforce_memory_capacity = false;
  const std::int64_t gp_skipped0 =
      metrics.counter("prefilter.peak_vs_m.skipped").value();
  const auto gp_full = obs::PeakVsMCurve(gpipe_fig.model, gpipe_fig.cluster,
                                         gpipe_fig.plan, gpipe_fig.options, {4, 8, 16});
  const auto gp_pre = obs::PeakVsMCurve(
      gpipe_fig.model, gpipe_fig.cluster, gpipe_fig.plan, gpipe_fig.options,
      {4, 8, 16}, obs::PeakVsMOptions{.prefilter = true});
  ASSERT_EQ(gp_pre.size(), gp_full.size());
  for (std::size_t i = 0; i < gp_full.size(); ++i) {
    EXPECT_EQ(gp_pre[i].max_peak_memory, gp_full[i].max_peak_memory);
  }
  // GPipe's stash discipline grows with M: no two points may dedup.
  EXPECT_EQ(metrics.counter("prefilter.peak_vs_m.skipped").value(), gp_skipped0);
}

TEST(MetricsRegistry, CountersGaugesHistograms) {
  obs::MetricsRegistry reg;
  reg.counter("a").Increment();
  reg.counter("a").Increment(4);
  EXPECT_EQ(reg.counter("a").value(), 5);
  reg.gauge("g").Set(2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 2.5);
  reg.histogram("h").Observe(1.0);
  reg.histogram("h").Observe(3.0);
  EXPECT_EQ(reg.histogram("h").count(), 2);
  EXPECT_DOUBLE_EQ(reg.histogram("h").mean(), 2.0);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a\": 5"), std::string::npos);
  const std::string text = reg.ToText();
  EXPECT_NE(text.find("a"), std::string::npos);
  reg.Reset();
  EXPECT_EQ(reg.counter("a").value(), 0);
}

TEST(MetricsRegistry, EngineAndPlannerFeedTheGlobalRegistry) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.Reset();

  const Fig3 fig;
  (void)fig.Report();
  EXPECT_GE(reg.counter("sim.runs").value(), 1);
  EXPECT_GT(reg.counter("sim.tasks_executed").value(), 0);
  EXPECT_GE(reg.histogram("sim.makespan").count(), 1);

  planner::PlannerOptions po;
  po.global_batch_size = 8;
  planner::DapplePlanner planner(fig.model, fig.cluster, po);
  (void)planner.Plan();
  EXPECT_GE(reg.counter("planner.plans").value(), 1);
  EXPECT_GT(reg.counter("planner.estimator_calls").value(), 0);
  EXPECT_GT(reg.counter("planner.candidates_evaluated").value(), 0);
}

}  // namespace
}  // namespace dapple
