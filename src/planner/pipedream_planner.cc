#include "planner/pipedream_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "comm/cost_model.h"
#include "common/error.h"

namespace dapple::planner {

PipedreamPlanner::PipedreamPlanner(const model::ModelProfile& model,
                                   const topo::Cluster& cluster, PipedreamOptions options)
    : model_(&model), cluster_(&cluster), options_(options) {
  if (options_.micro_batch_size <= 0) {
    options_.micro_batch_size = model.profile_micro_batch();
  }
}

double PipedreamPlanner::StageCostValue(int layer_begin, int layer_end, int replicas) const {
  // PipeDream's per-stage cost: compute split across replicas, plus the
  // data-parallel weight-sync the stage incurs (4(m-1)/m * |w| over the
  // slowest link, per the PipeDream paper), at the training micro-batch.
  const double samples = static_cast<double>(options_.micro_batch_size) / replicas;
  const TimeSec compute = model_->ForwardTime(layer_begin, layer_end, samples) +
                          model_->BackwardTime(layer_begin, layer_end, samples);
  TimeSec sync = 0.0;
  if (replicas > 1) {
    const Bytes weights = model_->ParamBytes(layer_begin, layer_end);
    // Contiguous assignment: a replica group of this size spans servers
    // whenever it exceeds one machine.
    const BytesPerSec bw = replicas > cluster_->gpus_per_server()
                               ? cluster_->interconnect().inter_server_bandwidth
                               : cluster_->interconnect().intra_server_bandwidth;
    sync = 4.0 * (replicas - 1) / replicas * static_cast<double>(weights) / bw;
  }
  return compute + sync;
}

ParallelPlan PipedreamPlanner::Plan() const {
  const int n = model_->num_layers();
  const int g = cluster_->num_devices();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // dp[j][m] = minimal bottleneck for layers [0, j) on m devices.
  std::vector<std::vector<double>> dp(static_cast<std::size_t>(n + 1),
                                      std::vector<double>(static_cast<std::size_t>(g + 1),
                                                          kInf));
  struct Choice {
    int split = -1;     // previous boundary
    int replicas = 0;   // replicas of the final stage
  };
  std::vector<std::vector<Choice>> choice(
      static_cast<std::size_t>(n + 1),
      std::vector<Choice>(static_cast<std::size_t>(g + 1)));

  comm::CostModel cost(*cluster_);
  dp[0][0] = 0.0;
  for (int j = 1; j <= n; ++j) {
    for (int m = 1; m <= g; ++m) {
      for (int k = 0; k < j; ++k) {
        for (int r = 1; r <= m; ++r) {
          if (k == 0 && r != m) continue;  // first stage consumes the rest
          const double prev = dp[static_cast<std::size_t>(k)][static_cast<std::size_t>(m - r)];
          if (!std::isfinite(prev)) continue;
          double stage = StageCostValue(k, j, r);
          if (k > 0) {
            // Inbound activation transfer is part of the stage's period.
            const Bytes act = model_->ActivationAt(
                k, static_cast<double>(options_.micro_batch_size));
            stage += 2.0 * static_cast<double>(act) /
                     cluster_->interconnect().inter_server_bandwidth;
          }
          const double value = std::max(prev, stage);
          if (value < dp[static_cast<std::size_t>(j)][static_cast<std::size_t>(m)]) {
            dp[static_cast<std::size_t>(j)][static_cast<std::size_t>(m)] = value;
            choice[static_cast<std::size_t>(j)][static_cast<std::size_t>(m)] = {k, r};
          }
        }
      }
    }
  }

  DAPPLE_CHECK(std::isfinite(dp[static_cast<std::size_t>(n)][static_cast<std::size_t>(g)]))
      << "PipeDream DP found no partition";

  // Reconstruct stages back to front, then assign devices contiguously.
  std::vector<std::pair<int, int>> ranges;  // (begin, replicas), back to front
  std::vector<int> replica_counts;
  int j = n, m = g;
  while (j > 0) {
    const Choice c = choice[static_cast<std::size_t>(j)][static_cast<std::size_t>(m)];
    DAPPLE_CHECK_GE(c.replicas, 1) << "corrupt PipeDream DP table";
    ranges.emplace_back(c.split, c.replicas);
    j = c.split;
    m -= c.replicas;
  }
  std::reverse(ranges.begin(), ranges.end());

  ParallelPlan plan;
  plan.model = model_->name();
  int layer_begin = 0;
  topo::DeviceId next_device = 0;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const int layer_end = i + 1 < ranges.size() ? ranges[i + 1].first : n;
    StagePlan stage;
    stage.layer_begin = layer_begin;
    stage.layer_end = layer_end;
    stage.devices = topo::DeviceSet::Range(next_device, ranges[i].second);
    plan.stages.push_back(std::move(stage));
    next_device += ranges[i].second;
    layer_begin = layer_end;
  }
  plan.Validate(*model_);
  return plan;
}

double PipedreamPlanner::Bottleneck(const ParallelPlan& plan) const {
  double worst = 0.0;
  for (const StagePlan& s : plan.stages) {
    worst = std::max(worst, StageCostValue(s.layer_begin, s.layer_end, s.replication()));
  }
  return worst;
}

}  // namespace dapple::planner
