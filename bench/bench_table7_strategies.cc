// Table VII: strategy comparison — DAPPLE's planner vs PipeDream's planner
// on a 2x8 Config-A cluster, printed in the paper's
// "(start, end) @ [GPUs]" notation.
#include "harness.h"

#include <cstdio>
#include <sstream>

using namespace dapple;

namespace {

std::string Indent(const std::string& block, const char* prefix) {
  std::istringstream in(block);
  std::string line, out;
  while (std::getline(in, line)) out += std::string(prefix) + line + "\n";
  return out;
}

}  // namespace

int main() {
  bench::PrintHeader("Table VII — DAPPLE vs PipeDream strategies (2x8 Config-A)",
                     "DAPPLE paper, Table VII");

  struct Row {
    const char* name;
    long gbs;
    const char* paper_dapple;
    const char* paper_pipedream;
  };
  const Row rows[] = {
      {"VGG-19", 1024, "(0,16)@[G0-G13] (17,25)@[G14,G15]",
       "4 stages: (0,11)@[G0-G7] (11,17)@[G8-G13] (17,19)@G14 (19,25)@G15"},
      {"AmoebaNet-36", 128, "(0,30)@[G0-G7] (31,43)@[G8-G15]", "straight"},
      {"BERT-Large", 128, "(0,13)@[G0-G7] (14,26)@[G8-G15]", "6 stages, replicated"},
      {"XLNet-36", 128, "(0,22)@[G0-G7] (23,41)@[G8-G15]", "straight"},
  };

  const topo::Cluster cluster = topo::MakeConfigA(2);
  for (const Row& row : rows) {
    const model::ModelProfile m = model::ModelByName(row.name);
    Session session(m, cluster);
    const auto ours = session.Plan(row.gbs);
    planner::PipedreamPlanner pipedream(m, cluster);
    const auto theirs = pipedream.Plan();

    std::printf("\n%s (GBS %ld)\n", row.name, row.gbs);
    std::printf("  DAPPLE (paper):    %s\n", row.paper_dapple);
    std::printf("  DAPPLE (measured, %d stages):\n%s", ours.plan.num_stages(),
                Indent(ours.plan.ToDetailedString(), "    ").c_str());
    std::printf("  PipeDream (paper): %s\n", row.paper_pipedream);
    std::printf("  PipeDream (measured, %d stages%s):\n%s", theirs.num_stages(),
                theirs.IsStraight() ? ", straight" : "",
                Indent(theirs.ToDetailedString(), "    ").c_str());
  }
  std::printf("\nShape check: DAPPLE prefers few, slightly uneven, server-aligned\n"
              "stages; PipeDream balances per-stage time into more stages (straight\n"
              "on uniform models), ignoring the synchronous AllReduce + bubble cost.\n");
  return 0;
}
