// Analytic pipeline-latency estimator implementing the paper's optimization
// objective (§IV-A):
//
//   Tw = sum_{s<=Q} F_s                      (warmup)
//   Ts = (M-1) (F_Q + B_Q)                   (steady, pivot stage Q)
//   Te = max_s ( AR(P_s, g_s) + tail(s) )    (ending + gradient sync)
//   L  = Tw + Ts + Te
//
// with the pivot chosen by the formula-3 heuristic and cross-stage
// communication modeled as its own pipeline stage (F_s = B_s = transfer
// time, AR = 0), exactly as the paper prescribes.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "comm/cost_model.h"
#include "model/profile.h"
#include "planner/plan.h"
#include "runtime/schedule.h"
#include "topo/cluster.h"

namespace dapple::planner {

class StageCostCache;

/// One entry of the expanded stage list (computation and network stages
/// interleaved: comp0, comm01, comp1, ...).
struct StageCost {
  bool is_comm = false;
  /// Index into ParallelPlan::stages for computation stages, -1 for comm.
  int comp_index = -1;
  TimeSec forward = 0.0;    // F_s per micro-batch
  TimeSec backward = 0.0;   // B_s per micro-batch
  TimeSec allreduce = 0.0;  // AR(P_s, g_s); already overlap-reduced if enabled
  TimeSec allreduce_raw = 0.0;  // AR before overlap
};

struct PlanEstimate {
  bool feasible = true;
  std::string infeasible_reason;
  /// True when infeasibility came from the memory check (peak exceeded the
  /// per-device capacity); lets the planner count cap rejections apart
  /// from structural infeasibility.
  bool memory_limited = false;

  TimeSec latency = std::numeric_limits<TimeSec>::infinity();
  TimeSec warmup = 0.0;
  TimeSec steady = 0.0;
  TimeSec ending = 0.0;
  int pivot = -1;  // index into `stages`

  /// Average comm-stage (F+B) over average computation-stage (F+B); the
  /// paper's ACR column. 0 when the pipeline has no network stage.
  double acr = 0.0;

  int micro_batch_size = 0;
  int num_micro_batches = 0;

  /// Estimated worst per-device peak memory under the schedule family the
  /// estimator was configured with (LatencyOptions::schedule_kind; DAPPLE
  /// by default).
  Bytes max_peak_memory = 0;
  /// Per-device capacity the memory check compared against: the memory cap
  /// when one was set, the cluster's device memory otherwise.
  Bytes memory_capacity = 0;

  std::vector<StageCost> stages;

  /// Paper §VI-C speedup metric: single-device sequential time over L.
  double speedup = 0.0;
};

/// Analytic bubble/memory frontier point for one schedule family on one
/// plan — the planner-side counterpart of a simulated run, used by
/// bench_schedule_frontier to sweep families without building task graphs.
struct ScheduleFamilyEstimate {
  runtime::ScheduleKind kind = runtime::ScheduleKind::kDapple;
  TimeSec latency = 0.0;
  /// 1 - busy / (occupied device groups * latency); compute-only.
  double bubble_ratio = 0.0;
  /// Worst per-device peak memory under the family's stash discipline.
  Bytes max_peak_memory = 0;
  int micro_batch_size = 0;
  int num_micro_batches = 0;
};

struct LatencyOptions {
  /// Overlap each stage's gradient AllReduce with its own backward compute
  /// (reverse-layer bucketed model). The paper's runtime overlaps; the
  /// "DP No Overlap" baseline disables this.
  bool overlap_allreduce = true;
  /// Fraction of the hideable gradient traffic that real frameworks
  /// actually hide (bucketing granularity, kernel contention, aggregation
  /// overhead keep overlap imperfect — Poseidon-style systems report
  /// 40-70%). 1.0 = ideal overlap.
  double overlap_efficiency = 0.5;
  /// Enforce the per-device memory capacity (plans that do not fit are
  /// marked infeasible, e.g. DP for AmoebaNet-36).
  bool check_memory = true;
  /// Per-device memory cap in bytes for the feasibility check; 0 means use
  /// the cluster's device memory. Same boundary convention as
  /// sim::MemoryPool::oom(): peak == cap is feasible, peak > cap is not.
  Bytes memory_cap = 0;
  /// Schedule family whose stash discipline the memory check models
  /// (peak terms per family mirror EstimateFamily). Latency terms stay the
  /// paper's DAPPLE objective regardless.
  runtime::ScheduleKind schedule_kind = runtime::ScheduleKind::kDapple;
  /// Re-computation on every stage (paper §II-A): stash only stage-boundary
  /// activations, recompute the forward inside backward. Per-stage
  /// recomputation rides StagePlan::recompute instead; a stage recomputes
  /// when either flag is set.
  bool recompute = false;
  /// Extra fraction of *forward* time charged to backward when recomputing
  /// (the replayed forward pass). The paper's §II-A figure — "recomputation
  /// brings ~20% extra backward overhead" — translates to 0.4 here because
  /// the zoo's profiles (and the paper's workloads) have backward ≈ 2x
  /// forward: 0.4 x F = 0.2 x B. Calibrated against the simulator's
  /// recompute path (see tests/memory_cap_test.cc).
  double recompute_overhead = 0.4;
};

/// Micro-batching rule shared by the estimator and the runtime. The ideal
/// micro-batch gives every replica of the widest stage the model's profile
/// micro-batch (keeping per-replica slices efficient, §V-B2); the number of
/// micro-batches is then the largest divisor of the global batch not
/// exceeding gbs / ideal, so M * mbs always equals the global batch and
/// plans are compared on identical work.
struct MicroBatching {
  int micro_batch_size = 0;
  int num_micro_batches = 0;
};
MicroBatching ChooseMicroBatching(long global_batch_size, int profile_micro_batch,
                                  int max_replication, int num_stages = 1);

/// Bound to one (model, cluster); evaluates any plan at any global batch.
class LatencyEstimator {
 public:
  LatencyEstimator(const model::ModelProfile& model, const topo::Cluster& cluster,
                   LatencyOptions options = {});

  const model::ModelProfile& model() const { return *model_; }
  const topo::Cluster& cluster() const { return *cluster_; }
  const LatencyOptions& options() const { return options_; }

  /// Attaches a stage-cost memo cache (see planner/stage_cache.h). The
  /// cache must outlive the estimator's use of it and is consulted from
  /// whatever threads call Estimate concurrently; nullptr detaches. Cached
  /// values are bit-identical to recomputation, so attaching a cache never
  /// changes an estimate.
  void set_stage_cache(StageCostCache* cache) { cache_ = cache; }

  /// Full estimate for a plan at a global batch size.
  PlanEstimate Estimate(const ParallelPlan& plan, long global_batch_size) const;

  /// Closed-form device-compute frontier model per schedule family
  /// (transfers and gradient sync excluded — this ranks families on bubble
  /// shape and stash discipline, not absolute latency):
  ///   GPipe:  L = sumF + (M-1) maxF + sumB + (M-1) maxB, M stashes/stage.
  ///   DAPPLE: L = sumF + (M-1)(F_q + B_q) + sumB with the bottleneck
  ///           pivot q = argmax(F+B), K_i = min(S-i, M) stashes (PA).
  ///   2BP:    as DAPPLE, but the drain cascade runs on backward-input
  ///           halves and stage 0 finishes with its own weight half;
  ///           one transient extra stash per stage.
  ///   V-Min / V-Half: chunks fold onto ceil(S/2) groups; the steady round
  ///           of group g covers both hosted chunks, and each chunk stashes
  ///           at most its VStashCap.
  ScheduleFamilyEstimate EstimateFamily(runtime::ScheduleKind kind,
                                        const ParallelPlan& plan,
                                        long global_batch_size) const;

  /// Micro-batch size rule: each replica of the widest stage processes the
  /// model's profile micro-batch, i.e. mbs = profile_mb * max_replication
  /// clamped to the global batch.
  int ChooseMicroBatchSize(const ParallelPlan& plan, long global_batch_size) const;

  /// Time to run the whole global batch on one device sequentially
  /// (denominator of the paper's speedup metric). Ignores memory limits.
  TimeSec SingleDeviceTime(long global_batch_size) const;

  /// Gradient-sync time for `devices` left exposed after overlapping with
  /// the stage's own backward pass (reverse-layer order: grads of the last
  /// layers are ready first). Returns the raw AllReduce when overlap is
  /// disabled.
  TimeSec ExposedAllReduce(int layer_begin, int layer_end, const topo::DeviceSet& devices,
                           double samples) const;

  /// Formula 3: picks the pivot stage for an expanded stage list.
  static int ChoosePivot(const std::vector<StageCost>& stages, int num_micro_batches);

  /// Worst per-device peak memory of `plan` under `kind`'s stash
  /// discipline at the given micro-batching — the single peak model shared
  /// by Estimate's feasibility check and EstimateFamily's frontier, so cap
  /// semantics agree byte-for-byte. Honors per-stage recompute flags.
  Bytes FamilyPeakMemory(runtime::ScheduleKind kind, const ParallelPlan& plan,
                         const MicroBatching& mb) const;

  /// Capacity the memory check compares against: options().memory_cap when
  /// set, the cluster's device memory otherwise.
  Bytes EffectiveCapacity() const;

 private:
  /// Per-device peak memory of one stage holding `warmup_depth` stashes:
  /// baseline + K x (activation | checkpoint) + recompute transient.
  Bytes StagePeakMemory(const StagePlan& stage, double samples, int warmup_depth,
                        bool recompute) const;

  const model::ModelProfile* model_;
  const topo::Cluster* cluster_;
  comm::CostModel cost_;
  LatencyOptions options_;
  StageCostCache* cache_ = nullptr;
};

}  // namespace dapple::planner
