// The DAPPLE profiler (paper Fig. 1, step 1). On the real system it runs a
// few training steps per layer and records compute times, activation sizes
// and parameter sizes. Here it "measures" a zoo model on a simulated
// device: scaling times by device speed and optionally applying
// measurement jitter, then summarizing into the Table II statistics.
#pragma once

#include <cstdint>

#include "common/units.h"
#include "model/profile.h"
#include "topo/cluster.h"

namespace dapple::model {

/// Whole-model summary at the profile micro-batch size (paper Table II).
struct ProfileReport {
  std::string model;
  std::uint64_t param_count = 0;
  Bytes param_bytes = 0;     // fp32 weights == AllReduce gradient volume
  int profile_micro_batch = 0;
  Bytes memory_cost = 0;     // weights+opt state+activations at profile mb
  TimeSec forward_time = 0;  // whole model, one micro-batch
  TimeSec backward_time = 0;
  bool fits_single_device = true;  // memory_cost <= device memory
};

struct ProfilerOptions {
  /// Multiplicative Gaussian noise applied to measured layer times
  /// (0 = exact). Models real profiling variance.
  double time_jitter = 0.0;
  std::uint64_t seed = 0x5eed;
};

class Profiler {
 public:
  explicit Profiler(topo::DeviceSpec device, ProfilerOptions options = {});

  /// Produces the "measured" profile: layer times divided by device speed
  /// and perturbed by jitter. Sizes are exact (they are architecture
  /// properties, not measurements).
  ModelProfile Measure(const ModelProfile& model) const;

  /// Summarizes a model at its profile micro-batch size.
  ProfileReport Report(const ModelProfile& model) const;

 private:
  topo::DeviceSpec device_;
  ProfilerOptions options_;
};

}  // namespace dapple::model
