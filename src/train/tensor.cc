#include "train/tensor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace dapple::train {

Tensor::Tensor(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Tensor Tensor::Random(std::size_t rows, std::size_t cols, Rng& rng, float scale) {
  Tensor t(rows, cols);
  for (float& v : t.data_) {
    v = static_cast<float>(rng.Normal(0.0, scale));
  }
  return t;
}

float& Tensor::at(std::size_t r, std::size_t c) {
  DAPPLE_CHECK(r < rows_ && c < cols_) << "tensor index (" << r << "," << c << ") out of "
                                       << rows_ << "x" << cols_;
  return data_[r * cols_ + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  DAPPLE_CHECK(r < rows_ && c < cols_) << "tensor index (" << r << "," << c << ") out of "
                                       << rows_ << "x" << cols_;
  return data_[r * cols_ + c];
}

Tensor& Tensor::AddInPlace(const Tensor& other) {
  DAPPLE_CHECK(rows_ == other.rows_ && cols_ == other.cols_) << "shape mismatch in add";
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::Scale(float factor) {
  for (float& v : data_) v *= factor;
  return *this;
}

void Tensor::Fill(float value) { std::fill(data_.begin(), data_.end(), value); }

Tensor Tensor::MatMul(const Tensor& other) const {
  DAPPLE_CHECK_EQ(cols_, other.rows_) << "matmul inner dims";
  Tensor out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const float a = data_[i * cols_ + k];
      if (a == 0.0f) continue;
      const float* brow = &other.data_[k * other.cols_];
      float* orow = &out.data_[i * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Tensor Tensor::Transposed() const {
  Tensor out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      out.data_[j * rows_ + i] = data_[i * cols_ + j];
    }
  }
  return out;
}

Tensor Tensor::RowSlice(std::size_t begin, std::size_t end) const {
  DAPPLE_CHECK(begin <= end && end <= rows_) << "row slice [" << begin << "," << end << ")";
  Tensor out(end - begin, cols_);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * cols_),
            data_.begin() + static_cast<std::ptrdiff_t>(end * cols_), out.data_.begin());
  return out;
}

Tensor Tensor::VStack(const std::vector<Tensor>& parts) {
  DAPPLE_CHECK(!parts.empty()) << "vstack of nothing";
  std::size_t rows = 0;
  const std::size_t cols = parts.front().cols_;
  for (const Tensor& p : parts) {
    DAPPLE_CHECK_EQ(p.cols_, cols) << "vstack column mismatch";
    rows += p.rows_;
  }
  Tensor out(rows, cols);
  std::size_t offset = 0;
  for (const Tensor& p : parts) {
    std::copy(p.data_.begin(), p.data_.end(),
              out.data_.begin() + static_cast<std::ptrdiff_t>(offset));
    offset += p.data_.size();
  }
  return out;
}

float Tensor::MaxAbsDiff(const Tensor& a, const Tensor& b) {
  DAPPLE_CHECK(a.rows_ == b.rows_ && a.cols_ == b.cols_) << "diff shape mismatch";
  float worst = 0.0f;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    worst = std::max(worst, std::abs(a.data_[i] - b.data_[i]));
  }
  return worst;
}

double Tensor::SquaredNorm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return sum;
}

}  // namespace dapple::train
