// Exporters for fault-recovery experiments: deterministic JSON (golden-
// testable byte for byte), aligned-column text for terminals, and a Chrome
// trace with the recovery timeline and fault windows as separate tracks.
#pragma once

#include <string>

#include "fault/recovery.h"

namespace dapple::fault {

/// Deterministic JSON document (obs::JsonWriter formatting). Infinite
/// time-to-recover is encoded as -1 alongside "recovered": false.
std::string ToJson(const FaultReport& report);

/// Aligned-column text rendering for terminals.
std::string ToText(const FaultReport& report);

/// Chrome trace-event JSON: one track for the recovery timeline
/// (iterations, checkpoints, restores, replans, stalls) and one for the
/// fault windows. Microseconds of simulated time, like sim/chrome_trace.
std::string ToChromeTrace(const FaultReport& report);

}  // namespace dapple::fault
