// The benchmark model zoo: synthetic per-layer profiles calibrated to the
// DAPPLE paper's published characteristics (Tables I, II, VIII and the
// prose in §VI-B/§VI-C). These substitute for profiling the real models on
// a V100; the planner/scheduler only ever see these vectors, so matching
// the published distributions reproduces the published decisions.
#pragma once

#include <vector>

#include "model/profile.h"

namespace dapple::model {

/// GNMT-16 (291M params, Adam, profile micro-batch 64): 8 encoder + 8
/// decoder LSTM layers; decoder layers cost ~1.45x an encoder layer; 26MB
/// boundary activations.
ModelProfile MakeGnmt16();

/// BERT-48 (640M params, Adam, profile micro-batch 2): 48 uniform encoder
/// layers; 8.8MB boundary activations.
ModelProfile MakeBert48();

/// BERT with `encoder_layers` encoders (used by the Table VIII weak-scaling
/// study: 48/106/215/428 layers).
ModelProfile MakeBert(int encoder_layers);

/// BERT-Large as a 26-unit graph (embedding + 24 encoders + head), matching
/// Table VII's layer indices 0..26.
ModelProfile MakeBertLarge();

/// XLNet-36 (500M params, Adam, profile micro-batch 1): 36 uniform layers;
/// 4.2MB boundary activations.
ModelProfile MakeXlnet36();

/// ResNet-50 (24.5M params, SGD, profile micro-batch 128) as 16 residual
/// blocks; small weights, high compute density.
ModelProfile MakeResnet50();

/// VGG-19 (137M params, SGD, profile micro-batch 32) as 25 units; ~70% of
/// weights in the first fully-connected unit near the end; activations
/// decay 384MB -> 3MB along the model.
ModelProfile MakeVgg19();

/// AmoebaNet-36 (933M params, RMSProp, profile micro-batch 1): 36 cells;
/// the last third holds 73% of parameters; per-cell compute ramps up by
/// <=40%; 11.2MB boundary activations. Does not fit one 16GB device.
ModelProfile MakeAmoebaNet36();

/// Parameterized decoder-only transformer profile from architecture
/// hyper-parameters, using standard FLOP counting (12 * hidden^2 per token
/// per layer for attention+MLP) against a reference device throughput.
/// Lets users plan arbitrary model sizes beyond the fixed zoo.
struct TransformerSpec {
  int layers = 24;
  int hidden = 1024;
  int sequence_length = 512;
  int profile_micro_batch = 2;
  /// Sustained reference-device throughput used to turn FLOPs into time.
  double device_teraflops = 15.0;  // fp32 V100-class
  OptimizerKind optimizer = OptimizerKind::kAdam;
};
ModelProfile MakeTransformer(const TransformerSpec& spec);

/// Uniform synthetic model for tests: `layers` identical layers.
ModelProfile MakeUniformSynthetic(int layers, TimeSec forward_time, TimeSec backward_time,
                                  Bytes activation, std::uint64_t params_per_layer,
                                  int profile_micro_batch = 1,
                                  OptimizerKind optimizer = OptimizerKind::kSGD);

/// The five models of Table V / Fig. 12 plus ResNet-50 (Table II order).
std::vector<ModelProfile> AllBenchmarkModels();

/// Looks a benchmark model up by its Table II name (e.g. "BERT-48").
ModelProfile ModelByName(const std::string& name);

}  // namespace dapple::model
