// Convergence equivalence (paper §VI-A: "all the pipeline latency
// optimizations ... give equivalent gradients ... convergence is safely
// preserved"): trains the same MLP under serial, data-parallel, DAPPLE-
// pipelined, GPipe-pipelined and re-computation execution on real numbers
// and reports the loss trajectories plus final-weight divergence. Also
// shows the asynchronous (PipeDream-style) contrast the paper motivates.
#include "harness.h"

#include <cstdio>

#include "common/table.h"
#include "train/trainer.h"

using namespace dapple;
using namespace dapple::train;

int main() {
  bench::PrintHeader("Convergence — gradient/trajectory equivalence across strategies",
                     "DAPPLE paper §VI-A correctness claim");

  DatasetSpec spec;
  spec.samples = 128;
  spec.in_features = 8;
  spec.out_features = 2;
  spec.teacher_hidden = 16;
  spec.label_noise = 0.02;
  const Dataset data = MakeTeacherDataset(spec);
  Rng rng(123);
  const MlpModel model = MlpModel::MakeMlp(8, 16, 2, /*hidden_layers=*/2, rng);

  const int iterations = 80;
  struct Run {
    const char* name;
    TrainingRun run;
  };
  std::vector<Run> runs;

  {
    TrainerOptions o;
    o.strategy = Strategy::kSerial;
    o.iterations = iterations;
    auto opt = MakeAdam(0.01f);
    runs.push_back({"serial", Train(model, data, *opt, o)});
  }
  {
    TrainerOptions o;
    o.strategy = Strategy::kDataParallel;
    o.iterations = iterations;
    o.replicas = 4;
    auto opt = MakeAdam(0.01f);
    runs.push_back({"data-parallel x4", Train(model, data, *opt, o)});
  }
  {
    TrainerOptions o;
    o.strategy = Strategy::kPipelined;
    o.iterations = iterations;
    o.pipeline.stage_bounds = {0, 2, 5};
    o.pipeline.micro_batch = 16;
    auto opt = MakeAdam(0.01f);
    runs.push_back({"DAPPLE pipeline 2st", Train(model, data, *opt, o)});
  }
  {
    TrainerOptions o;
    o.strategy = Strategy::kPipelined;
    o.iterations = iterations;
    o.pipeline.stage_bounds = {0, 2, 5};
    o.pipeline.micro_batch = 16;
    o.pipeline.schedule.kind = runtime::ScheduleKind::kGPipe;
    auto opt = MakeAdam(0.01f);
    runs.push_back({"GPipe pipeline 2st", Train(model, data, *opt, o)});
  }
  {
    TrainerOptions o;
    o.strategy = Strategy::kPipelined;
    o.iterations = iterations;
    o.pipeline.stage_bounds = {0, 2, 5};
    o.pipeline.micro_batch = 16;
    o.pipeline.schedule.recompute = true;
    auto opt = MakeAdam(0.01f);
    runs.push_back({"DAPPLE + recompute", Train(model, data, *opt, o)});
  }

  std::vector<std::string> headers = {"iter"};
  for (const Run& r : runs) headers.push_back(r.name);
  AsciiTable table(headers);
  for (int it = 0; it < iterations; it += 10) {
    std::vector<std::string> row = {AsciiTable::Int(it)};
    for (const Run& r : runs) {
      row.push_back(AsciiTable::Num(r.run.losses[static_cast<std::size_t>(it)], 6));
    }
    table.AddRow(std::move(row));
  }
  {
    std::vector<std::string> row = {"final"};
    for (const Run& r : runs) row.push_back(AsciiTable::Num(r.run.final_loss(), 6));
    table.AddRow(std::move(row));
  }
  std::printf("%s", table.ToString().c_str());

  for (std::size_t i = 1; i < runs.size(); ++i) {
    const float diff =
        MaxWeightDiff(runs[0].run.final_model, runs[static_cast<std::size_t>(i)].run.final_model);
    bench::PrintComparison(std::string("final-weight divergence: ") + runs[i].name,
                           "0 (equivalent gradients)", AsciiTable::Num(diff, 6));
  }

  // Async contrast: stale gradients + weight stashing.
  MlpModel async_model = model.Clone();
  PipelineRunOptions pipe;
  pipe.stage_bounds = {0, 2, 5};
  pipe.micro_batch = 16;
  const AsyncResult async =
      RunAsyncPipeDream(async_model, data.inputs, data.targets, pipe, 0.01f);
  MlpModel serial_ref = runs[0].run.final_model.Clone();
  bench::PrintComparison("async PipeDream weight versions kept", ">1 (extra memory)",
                         AsciiTable::Int(async.weight_versions_kept));
  std::printf("\nShape check: synchronous strategies share one loss trajectory to\n"
              "float precision; asynchronous pipelining needs %d stashed weight\n"
              "versions and drifts from the synchronous trajectory — the paper's\n"
              "motivation for synchronous DAPPLE.\n", async.weight_versions_kept);
  return 0;
}
