#include "sim/engine.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <sstream>

#include "common/error.h"
#include "obs/metrics.h"

namespace dapple::sim {

TimeSec FinishTime(const ResourceSpeedProfile& profile, TimeSec start, TimeSec work) {
  if (work <= 0.0) return start;
  constexpr TimeSec kInf = std::numeric_limits<TimeSec>::infinity();
  const auto& segs = profile.segments;
  TimeSec t = start;
  TimeSec remaining = work;
  // Index of the segment active at `t` (-1 = the implicit unit-speed lead-in
  // before the first breakpoint).
  int i = -1;
  while (i + 1 < static_cast<int>(segs.size()) &&
         segs[static_cast<std::size_t>(i + 1)].start <= t) {
    ++i;
  }
  for (;;) {
    const double speed = i < 0 ? 1.0 : segs[static_cast<std::size_t>(i)].speed;
    const TimeSec seg_end = i + 1 < static_cast<int>(segs.size())
                                ? segs[static_cast<std::size_t>(i + 1)].start
                                : kInf;
    if (speed > 0.0) {
      const TimeSec finish = t + remaining / speed;
      if (finish <= seg_end) return finish;
      remaining -= (seg_end - t) * speed;
    } else if (seg_end == kInf) {
      return kInf;  // trailing zero-speed segment: pinned forever
    }
    t = seg_end;
    ++i;
  }
}

double SimResult::Utilization(ResourceId r) const {
  if (makespan <= 0.0) return 0.0;
  return resources.at(static_cast<std::size_t>(r)).busy / makespan;
}

double SimResult::ComputeUtilization(ResourceId r) const {
  if (makespan <= 0.0) return 0.0;
  return resources.at(static_cast<std::size_t>(r)).compute_busy / makespan;
}

Bytes SimResult::MaxPeakMemory() const {
  Bytes peak = 0;
  for (const MemoryPool& p : pools) peak = std::max(peak, p.peak());
  return peak;
}

bool SimResult::AnyOom() const {
  return std::any_of(pools.begin(), pools.end(),
                     [](const MemoryPool& p) { return p.oom(); });
}

namespace internal {

SimResult MakeResultShell(int num_tasks, const EngineOptions& options,
                          int num_resources, int num_pools) {
  SimResult result;
  result.records.resize(static_cast<std::size_t>(num_tasks));
  result.resources.resize(static_cast<std::size_t>(num_resources));
  result.pools.reserve(static_cast<std::size_t>(num_pools));
  for (int p = 0; p < num_pools; ++p) {
    const Bytes cap = static_cast<std::size_t>(p) < options.pool_capacities.size()
                          ? options.pool_capacities[static_cast<std::size_t>(p)]
                          : 0;
    result.pools.emplace_back(cap);
    if (static_cast<std::size_t>(p) < options.pool_baselines.size()) {
      result.pools.back().SetBaseline(options.pool_baselines[static_cast<std::size_t>(p)]);
    }
  }
  return result;
}

int NumPools(int graph_pools, const EngineOptions& options) {
  return std::max(graph_pools,
                  static_cast<int>(std::max(options.pool_capacities.size(),
                                            options.pool_baselines.size())));
}

void IndexProfiles(const EngineOptions& options, int num_resources,
                   std::vector<const ResourceSpeedProfile*>& profile_of) {
  for (const ResourceSpeedProfile& p : options.resource_speeds) {
    DAPPLE_CHECK(p.resource >= 0 && p.resource < num_resources)
        << "speed profile for unknown resource " << p.resource;
    for (std::size_t s = 0; s < p.segments.size(); ++s) {
      DAPPLE_CHECK(p.segments[s].speed >= 0.0) << "negative resource speed";
      if (s > 0) {
        DAPPLE_CHECK_GT(p.segments[s].start, p.segments[s - 1].start)
            << "speed segments must be sorted by start";
      }
    }
    if (!p.segments.empty()) profile_of[static_cast<std::size_t>(p.resource)] = &p;
  }
}

[[noreturn]] void ThrowDeadlock(const TaskGraph& graph, const SimResult& result,
                                int executed) {
  std::ostringstream os;
  os << "task graph deadlock: executed " << executed << " of "
     << graph.num_tasks() << " tasks; first blocked:";
  int listed = 0;
  for (TaskId t = 0; t < graph.num_tasks() && listed < 5; ++t) {
    if (!result.records[static_cast<std::size_t>(t)].executed) {
      os << " '" << graph.task(t).name << "'";
      ++listed;
    }
  }
  throw Error(os.str());
}

}  // namespace internal

using internal::IndexProfiles;
using internal::MakeResultShell;
using internal::NumPools;
using internal::ThrowDeadlock;

// --- Engine (arena + indexed binary heaps) ---------------------------------

SimResult Engine::Simulate(const TaskGraph& graph, const EngineOptions& options) {
  // std::push_heap/pop_heap build max-heaps, so both comparators are the
  // *reverse* of the dispatch order: the lowest key surfaces at front().
  auto ready_later = [](const Event& a, const Event& b) {
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.task > b.task;
  };
  // Completion drain order, reversed: (time, priority, id) ascending on top.
  auto completion_later = [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time > b.time;
    if (a.priority != b.priority) return a.priority > b.priority;
    return a.task > b.task;
  };

  const int n = graph.num_tasks();
  const int num_resources = std::max(graph.num_resources(), 1);
  const int num_pools = NumPools(graph.num_pools(), options);

  SimResult result = MakeResultShell(n, options, num_resources, num_pools);

  // Re-arm the arena. assign()/clear() keep each vector's capacity, so after
  // the first run of a given shape the event loop allocates nothing.
  pending_.assign(static_cast<std::size_t>(n), 0);
  for (TaskId t = 0; t < n; ++t) pending_[static_cast<std::size_t>(t)] = graph.in_degree(t);
  profile_of_.assign(static_cast<std::size_t>(num_resources), nullptr);
  IndexProfiles(options, num_resources, profile_of_);
  if (ready_.size() < static_cast<std::size_t>(num_resources)) {
    ready_.resize(static_cast<std::size_t>(num_resources));
  }
  for (int r = 0; r < num_resources; ++r) ready_[static_cast<std::size_t>(r)].clear();
  running_.assign(static_cast<std::size_t>(num_resources), kInvalidTask);
  completions_.clear();
  wake_.clear();

  int executed = 0;
  TimeSec now = 0.0;

  auto start_task = [&](TaskId id) {
    const Task& task = graph.task(id);
    running_[static_cast<std::size_t>(task.resource)] = id;
    auto& rec = result.records[static_cast<std::size_t>(id)];
    rec.id = id;
    rec.start = now;
    rec.started = true;
    const ResourceSpeedProfile* profile =
        profile_of_[static_cast<std::size_t>(task.resource)];
    rec.end = profile ? FinishTime(*profile, now, task.duration) : now + task.duration;
    if (task.pool >= 0 && task.alloc_at_start > 0) {
      result.pools[static_cast<std::size_t>(task.pool)].Allocate(now, task.alloc_at_start);
    }
    if (rec.end == std::numeric_limits<TimeSec>::infinity()) {
      // Pinned by a permanent zero-speed window: the resource stays
      // occupied, the task never completes, and its record stays
      // executed = false.
      return;
    }
    rec.executed = true;
    completions_.push_back({rec.end, task.priority, id});
    std::push_heap(completions_.begin(), completions_.end(), completion_later);
  };

  auto dispatch_resource = [&](ResourceId r) {
    auto& queue = ready_[static_cast<std::size_t>(r)];
    if (running_[static_cast<std::size_t>(r)] != kInvalidTask || queue.empty()) return;
    std::pop_heap(queue.begin(), queue.end(), ready_later);
    const TaskId next = queue.back().task;
    queue.pop_back();
    start_task(next);
  };

  auto enqueue_ready = [&](TaskId id) {
    const Task& task = graph.task(id);
    auto& queue = ready_[static_cast<std::size_t>(task.resource)];
    queue.push_back({0.0, task.priority, id});
    std::push_heap(queue.begin(), queue.end(), ready_later);
  };

  // Seed with all zero-indegree tasks.
  for (TaskId t = 0; t < n; ++t) {
    if (pending_[static_cast<std::size_t>(t)] == 0) enqueue_ready(t);
  }
  for (ResourceId r = 0; r < num_resources; ++r) dispatch_resource(r);

  while (!completions_.empty()) {
    std::pop_heap(completions_.begin(), completions_.end(), completion_later);
    const Event done = completions_.back();
    completions_.pop_back();
    now = done.time;
    const Task& task = graph.task(done.task);

    ++executed;
    auto& usage = result.resources[static_cast<std::size_t>(task.resource)];
    if (usage.tasks_executed == 0) {
      usage.first_start = result.records[static_cast<std::size_t>(done.task)].start;
    }
    // With a speed profile the wall-clock occupancy differs from the work;
    // without one, use the duration directly to keep legacy runs bit-exact.
    const TimeSec elapsed =
        profile_of_[static_cast<std::size_t>(task.resource)] != nullptr
            ? done.time - result.records[static_cast<std::size_t>(done.task)].start
            : task.duration;
    usage.busy += elapsed;
    if (IsComputeKind(task.kind)) usage.compute_busy += elapsed;
    usage.last_end = now;
    usage.tasks_executed++;
    result.makespan = std::max(result.makespan, now);

    if (task.pool >= 0 && task.free_at_end > 0) {
      result.pools[static_cast<std::size_t>(task.pool)].Free(now, task.free_at_end);
    }

    running_[static_cast<std::size_t>(task.resource)] = kInvalidTask;

    // Only the freed resource and resources whose ready queue gained a task
    // can start something; dispatching is idempotent, so duplicates in the
    // wake list are harmless. Dispatching exactly those keeps the loop
    // O(successors) per event instead of O(num_resources).
    wake_.clear();
    wake_.push_back(task.resource);
    for (TaskId succ : graph.successors(done.task)) {
      if (--pending_[static_cast<std::size_t>(succ)] == 0) {
        enqueue_ready(succ);
        wake_.push_back(graph.task(succ).resource);
      }
    }
    for (ResourceId r : wake_) dispatch_resource(r);
  }

  if (executed != n) {
    if (options.allow_incomplete) {
      result.completed = false;
      result.tasks_unfinished = n - executed;
      // Pinned tasks hold unreleased allocations; leave the pools as they
      // are — the partial state is what a fault-aborted iteration looks
      // like, and callers discard it anyway.
    } else {
      ThrowDeadlock(graph, result, executed);
    }
  }

  auto& metrics = obs::MetricsRegistry::Global();
  metrics.counter("sim.runs").Increment();
  metrics.counter("sim.tasks_executed").Increment(executed);
  metrics.histogram("sim.makespan").Observe(result.makespan);
  return result;
}

SimResult Engine::Run(const TaskGraph& graph, EngineOptions options) {
  thread_local Engine engine;
  return engine.Simulate(graph, options);
}

// --- Reference engine (legacy containers, same ordering contract) ----------

namespace {

struct Completion {
  TimeSec time;
  int priority;
  TaskId task;
  bool operator>(const Completion& other) const {
    if (time != other.time) return time > other.time;
    if (priority != other.priority) return priority > other.priority;
    return task > other.task;
  }
};

/// Ready-queue ordering: (priority, id) ascending.
struct ReadyOrder {
  const TaskGraph* graph;
  bool operator()(TaskId a, TaskId b) const {
    const Task& ta = graph->task(a);
    const Task& tb = graph->task(b);
    if (ta.priority != tb.priority) return ta.priority < tb.priority;
    return a < b;
  }
};

}  // namespace

SimResult RunReferenceEngine(const TaskGraph& graph, const EngineOptions& options) {
  const int n = graph.num_tasks();
  const int num_resources = std::max(graph.num_resources(), 1);
  const int num_pools = NumPools(graph.num_pools(), options);

  SimResult result = MakeResultShell(n, options, num_resources, num_pools);

  std::vector<int> pending(static_cast<std::size_t>(n));
  for (TaskId t = 0; t < n; ++t) pending[static_cast<std::size_t>(t)] = graph.in_degree(t);

  std::vector<const ResourceSpeedProfile*> profile_of(
      static_cast<std::size_t>(num_resources), nullptr);
  IndexProfiles(options, num_resources, profile_of);

  // Per-resource ready sets and busy flags.
  std::vector<std::set<TaskId, ReadyOrder>> ready(
      static_cast<std::size_t>(num_resources), std::set<TaskId, ReadyOrder>(ReadyOrder{&graph}));
  std::vector<TaskId> running(static_cast<std::size_t>(num_resources), kInvalidTask);

  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> completions;
  int executed = 0;
  TimeSec now = 0.0;
  // Resources that may be able to start a task after the current event.
  std::vector<ResourceId> wake;
  wake.reserve(8);

  auto start_task = [&](TaskId id) {
    const Task& task = graph.task(id);
    running[static_cast<std::size_t>(task.resource)] = id;
    auto& rec = result.records[static_cast<std::size_t>(id)];
    rec.id = id;
    rec.start = now;
    rec.started = true;
    const ResourceSpeedProfile* profile =
        profile_of[static_cast<std::size_t>(task.resource)];
    rec.end = profile ? FinishTime(*profile, now, task.duration) : now + task.duration;
    if (task.pool >= 0 && task.alloc_at_start > 0) {
      result.pools[static_cast<std::size_t>(task.pool)].Allocate(now, task.alloc_at_start);
    }
    if (rec.end == std::numeric_limits<TimeSec>::infinity()) {
      return;  // pinned forever; resource stays occupied
    }
    rec.executed = true;
    completions.push({rec.end, task.priority, id});
  };

  auto dispatch_resource = [&](ResourceId r) {
    auto& queue = ready[static_cast<std::size_t>(r)];
    if (running[static_cast<std::size_t>(r)] != kInvalidTask || queue.empty()) return;
    const TaskId next = *queue.begin();
    queue.erase(queue.begin());
    start_task(next);
  };

  for (TaskId t = 0; t < n; ++t) {
    if (pending[static_cast<std::size_t>(t)] == 0) {
      ready[static_cast<std::size_t>(graph.task(t).resource)].insert(t);
    }
  }
  for (ResourceId r = 0; r < num_resources; ++r) dispatch_resource(r);

  while (!completions.empty()) {
    const Completion done = completions.top();
    completions.pop();
    now = done.time;
    const Task& task = graph.task(done.task);

    ++executed;
    auto& usage = result.resources[static_cast<std::size_t>(task.resource)];
    if (usage.tasks_executed == 0) {
      usage.first_start = result.records[static_cast<std::size_t>(done.task)].start;
    }
    const TimeSec elapsed =
        profile_of[static_cast<std::size_t>(task.resource)] != nullptr
            ? done.time - result.records[static_cast<std::size_t>(done.task)].start
            : task.duration;
    usage.busy += elapsed;
    if (IsComputeKind(task.kind)) usage.compute_busy += elapsed;
    usage.last_end = now;
    usage.tasks_executed++;
    result.makespan = std::max(result.makespan, now);

    if (task.pool >= 0 && task.free_at_end > 0) {
      result.pools[static_cast<std::size_t>(task.pool)].Free(now, task.free_at_end);
    }

    running[static_cast<std::size_t>(task.resource)] = kInvalidTask;

    wake.clear();
    wake.push_back(task.resource);
    for (TaskId succ : graph.successors(done.task)) {
      if (--pending[static_cast<std::size_t>(succ)] == 0) {
        const ResourceId r = graph.task(succ).resource;
        ready[static_cast<std::size_t>(r)].insert(succ);
        wake.push_back(r);
      }
    }
    for (ResourceId r : wake) dispatch_resource(r);
  }

  if (executed != n) {
    if (options.allow_incomplete) {
      result.completed = false;
      result.tasks_unfinished = n - executed;
    } else {
      ThrowDeadlock(graph, result, executed);
    }
  }

  // Deliberately not sim.runs: the oracle only backs differential checks,
  // and global run counts should reflect real simulations.
  obs::MetricsRegistry::Global().counter("sim.reference_runs").Increment();
  return result;
}

}  // namespace dapple::sim
