#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/error.h"
#include "sim/chrome_trace.h"

namespace dapple::sim {
namespace {

TaskGraph SmallGraph() {
  TaskGraph g;
  Task fw;
  fw.name = "FW s0 m0";
  fw.kind = TaskKind::kForward;
  fw.resource = 0;
  fw.duration = 0.002;
  fw.pool = 0;
  fw.alloc_at_start = 1000;
  fw.stage = 0;
  fw.microbatch = 0;
  const TaskId f = g.AddTask(std::move(fw));
  Task bw;
  bw.name = "BW s0 m0";
  bw.kind = TaskKind::kBackward;
  bw.resource = 0;
  bw.duration = 0.004;
  bw.pool = 0;
  bw.free_at_end = 1000;
  bw.stage = 0;
  bw.microbatch = 0;
  const TaskId b = g.AddTask(std::move(bw));
  g.AddEdge(f, b);
  return g;
}

TEST(ChromeTrace, ContainsCompleteEventsWithTimes) {
  const TaskGraph g = SmallGraph();
  const SimResult r = Engine::Run(g);
  const std::string json = ToChromeTrace(g, r);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"FW s0 m0\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"FW\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"BW\""), std::string::npos);
  // FW duration 2000us, BW starts at 2000us.
  EXPECT_NE(json.find("\"dur\":2000"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2000"), std::string::npos);
}

TEST(ChromeTrace, MemoryCountersToggle) {
  const TaskGraph g = SmallGraph();
  const SimResult r = Engine::Run(g);
  ChromeTraceOptions with;
  EXPECT_NE(ToChromeTrace(g, r, with).find("pool 0 bytes"), std::string::npos);
  ChromeTraceOptions without;
  without.include_memory_counters = false;
  EXPECT_EQ(ToChromeTrace(g, r, without).find("pool 0 bytes"), std::string::npos);
}

TEST(ChromeTrace, EscapesSpecialCharacters) {
  TaskGraph g;
  Task t;
  t.name = "weird \"name\"\nline";
  t.resource = 0;
  t.duration = 0.001;
  g.AddTask(std::move(t));
  const SimResult r = Engine::Run(g);
  const std::string json = ToChromeTrace(g, r);
  EXPECT_NE(json.find("weird \\\"name\\\"\\nline"), std::string::npos);
}

TEST(ChromeTrace, WritesFile) {
  const TaskGraph g = SmallGraph();
  const SimResult r = Engine::Run(g);
  const std::string path = "/tmp/dapple_trace_test.json";
  WriteChromeTrace(path, g, r);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
  EXPECT_THROW(WriteChromeTrace("/no/such/dir/x.json", g, r), Error);
}

TEST(ChromeTrace, ThreadMetadataPerResource) {
  TaskGraph g;
  for (int r = 0; r < 3; ++r) {
    Task t;
    t.name = "t" + std::to_string(r);
    t.resource = r;
    t.duration = 0.001;
    g.AddTask(std::move(t));
  }
  const SimResult result = Engine::Run(g);
  const std::string json = ToChromeTrace(g, result);
  EXPECT_NE(json.find("\"name\":\"resource 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"resource 2\""), std::string::npos);
}

}  // namespace
}  // namespace dapple::sim
