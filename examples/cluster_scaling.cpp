// Cluster scaling study: how the planner's choice and the achieved speedup
// evolve as one model scales from 2 to 32 GPUs across the three hardware
// configs — a capacity-planning view built on the public API.
//
// Usage: cluster_scaling [model-name] [global-batch]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"
#include "common/error.h"
#include "dapple/dapple.h"

using namespace dapple;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "XLNet-36";
  const long gbs = argc > 2 ? std::atol(argv[2]) : 128;
  const model::ModelProfile m = model::ModelByName(name);

  std::printf("%s, GBS %ld\n", name.c_str(), gbs);
  for (char config : {'A', 'B', 'C'}) {
    AsciiTable table({"GPUs", "Plan", "Split", "Speedup", "Efficiency", "Peak mem"});
    for (int gpus : {2, 4, 8, 16, 32}) {
      const topo::Cluster cluster =
          config == 'A' ? topo::MakeConfigA(std::max(1, gpus / 8))
                        : topo::MakeConfig(config, gpus);
      if (cluster.num_devices() != gpus && config == 'A' && gpus < 8) continue;
      Session session(m, cluster);
      planner::PlannerOptions opts;
      opts.max_stages = 6;  // keep the 32-GPU search quick
      try {
        const auto planned = session.Plan(gbs, opts);
        const auto r = session.Run(planned.plan, gbs);
        table.AddRow({AsciiTable::Int(cluster.num_devices()), planned.plan.ToString(),
                      planned.plan.SplitString(), AsciiTable::Num(r.speedup, 2),
                      AsciiTable::Num(100 * r.speedup / cluster.num_devices(), 0) + "%",
                      FormatBytes(r.max_peak_memory)});
      } catch (const dapple::Error&) {
        table.AddRow({AsciiTable::Int(cluster.num_devices()), "infeasible", "-", "-", "-",
                      "-"});
      }
    }
    std::printf("\nConfig-%c:\n%s", config, table.ToString().c_str());
  }
  return 0;
}
