// The OOM-free guarantee under random memory caps: every seeded case draws
// a model, a schedule family and a per-device cap scaled around the
// family's uncapped peak; the planner must either declare the cap
// infeasible or emit a plan whose capped simulation passes the full
// validator with zero OOM violations (see src/check/fuzz.h).
//
// Iteration count and base seed come from the environment so CI can widen
// the sweep (the acceptance sweep is DAPPLE_FUZZ_ITERATIONS=1000) and a
// failure is reproducible without recompiling:
//
//   DAPPLE_FUZZ_ITERATIONS=1000 ctest -R MemoryCapFuzz
//   build/tools/dapple_fuzz --memory-cap --repro <seed printed on failure>
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "check/fuzz.h"
#include "runtime/schedule.h"

namespace dapple {
namespace {

long EnvLong(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atol(value) : fallback;
}

TEST(MemoryCapFuzzTest, PlannerNeverEmitsAnOomPlanUnderRandomCaps) {
  const long iterations = EnvLong("DAPPLE_FUZZ_ITERATIONS", 250);
  const auto base = static_cast<std::uint64_t>(EnvLong("DAPPLE_FUZZ_SEED", 0));

  long planned = 0, infeasible = 0, with_recompute = 0;
  const auto& all_kinds = runtime::AllScheduleKinds();
  std::vector<long> kind_counts(all_kinds.size(), 0);
  for (long i = 0; i < iterations; ++i) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(i);
    const check::MemoryCapFuzzCase c = check::MakeMemoryCapFuzzCase(seed);
    const check::MemoryCapFuzzOutcome out = check::RunMemoryCapFuzzCase(c);
    ASSERT_TRUE(out.ok()) << out.Summary() << "  case: " << c.Describe();
    if (out.planned) {
      ++planned;
      EXPECT_LE(out.analytic_peak, out.memory_cap) << c.Describe();
      EXPECT_LE(out.simulated_peak, out.memory_cap) << c.Describe();
    } else {
      ++infeasible;
    }
    with_recompute += out.recompute_stages > 0 ? 1 : 0;
    for (std::size_t k = 0; k < all_kinds.size(); ++k) {
      if (out.kind == all_kinds[k]) ++kind_counts[k];
    }
  }
  // The cap draw (0.25x–1.3x of the uncapped peak) must keep both outcomes
  // and the recompute fit search exercised; a distribution drift here would
  // silently gut the guarantee this test claims.
  EXPECT_GE(planned, iterations / 4);
  EXPECT_GE(infeasible, iterations / 20);
  EXPECT_GE(with_recompute, iterations / 100);
  // Every schedule family must appear — the cap semantics differ per family
  // (GPipe's M stashes, DAPPLE's warmup depths, the V shapes' folded
  // chunks), so dropping one would skip its peak model entirely.
  for (std::size_t k = 0; k < all_kinds.size(); ++k) {
    EXPECT_GE(kind_counts[k], iterations / 20)
        << "schedule kind " << runtime::ToString(all_kinds[k])
        << " underrepresented in " << iterations << " cases";
  }
}

TEST(MemoryCapFuzzTest, CasesAreDeterministicInTheSeed) {
  const check::MemoryCapFuzzCase a = check::MakeMemoryCapFuzzCase(29);
  const check::MemoryCapFuzzCase b = check::MakeMemoryCapFuzzCase(29);
  EXPECT_EQ(a.Describe(), b.Describe());
  const check::MemoryCapFuzzOutcome oa = check::RunMemoryCapFuzzCase(a);
  const check::MemoryCapFuzzOutcome ob = check::RunMemoryCapFuzzCase(b);
  EXPECT_EQ(oa.planned, ob.planned);
  EXPECT_EQ(oa.analytic_peak, ob.analytic_peak);
  EXPECT_EQ(oa.simulated_peak, ob.simulated_peak);
}

TEST(MemoryCapFuzzTest, SweepIsIdenticalAtEveryThreadCount) {
  std::vector<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 24; ++s) seeds.push_back(s);
  const auto serial = check::RunMemoryCapFuzzSweep(seeds, 1);
  const auto threaded = check::RunMemoryCapFuzzSweep(seeds, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].planned, threaded[i].planned);
    EXPECT_EQ(serial[i].analytic_peak, threaded[i].analytic_peak);
    EXPECT_EQ(serial[i].simulated_peak, threaded[i].simulated_peak);
    EXPECT_EQ(serial[i].recompute_stages, threaded[i].recompute_stages);
  }
}

}  // namespace
}  // namespace dapple
