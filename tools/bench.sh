#!/usr/bin/env bash
# Performance trajectory: build and run the paper-reproduction benches with
# machine-readable output, so successive commits can be compared row by row.
#
#   tools/bench.sh [build-dir] [json-dir]
#
# Builds <build-dir> (default: build-bench), runs the table/figure benches
# plus the fault-recovery sweep with DAPPLE_BENCH_JSON_DIR pointed at
# <json-dir> (default: <build-dir>/bench-json), and leaves one
# BENCH_<name>.json per binary there. Archive that directory per commit to
# track the trajectory; `diff -u old/BENCH_x.json new/BENCH_x.json` shows
# exactly which rows moved.
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build-bench}"
json_dir="${2:-${build}/bench-json}"
jobs="$(nproc 2>/dev/null || echo 4)"

benches=(
  bench_fig3_schedule
  bench_fig12_speedups
  bench_table1_traffic
  bench_table2_models
  bench_table4_policy
  bench_table7_strategies
  bench_fault_recovery
  bench_planner_scale
  bench_sim_engine
  bench_memory_cap
  bench_serve
  bench_scenario
)

echo "=== configure ${build}"
cmake -B "${build}" -S . >/dev/null
echo "=== build ${build}"
cmake --build "${build}" -j "${jobs}" --target "${benches[@]}" >/dev/null

mkdir -p "${json_dir}"
for bench in "${benches[@]}"; do
  echo "=== ${bench}"
  args=()
  # The serve bench's full worker sweep is sized for real multi-core hosts;
  # the trajectory archive only needs the quick sweep's rows (which still
  # enforce the warm>=10x and byte-identity acceptance checks).
  if [ "${bench}" = bench_serve ]; then args=(--quick); fi
  DAPPLE_BENCH_JSON_DIR="${json_dir}" "${build}/bench/${bench}" ${args[@]+"${args[@]}"} >/dev/null
done

echo "=== bench json archived in ${json_dir}:"
ls -l "${json_dir}"/BENCH_*.json
