#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace dapple {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  DAPPLE_CHECK(!values.empty()) << "quantile of empty vector";
  DAPPLE_CHECK(q >= 0.0 && q <= 1.0) << "q=" << q;
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double GeometricMean(const std::vector<double>& values) {
  DAPPLE_CHECK(!values.empty()) << "geometric mean of empty vector";
  double log_sum = 0.0;
  for (double v : values) {
    DAPPLE_CHECK_GT(v, 0.0) << "geometric mean requires positive values";
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace dapple
