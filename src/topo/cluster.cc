#include "topo/cluster.h"

#include "common/error.h"

namespace dapple::topo {

Cluster::Cluster(std::string name, int num_servers, int gpus_per_server, DeviceSpec device,
                 InterconnectSpec interconnect)
    : name_(std::move(name)),
      num_servers_(num_servers),
      gpus_per_server_(gpus_per_server),
      device_(device),
      interconnect_(interconnect) {
  DAPPLE_CHECK_GT(num_servers_, 0) << "cluster " << name_;
  DAPPLE_CHECK_GT(gpus_per_server_, 0) << "cluster " << name_;
  DAPPLE_CHECK_GT(device_.relative_speed, 0.0);
  DAPPLE_CHECK_GT(interconnect_.intra_server_bandwidth, 0.0);
  DAPPLE_CHECK_GT(interconnect_.inter_server_bandwidth, 0.0);
}

Cluster Cluster::WithServerSpeeds(std::vector<double> server_speeds) const {
  DAPPLE_CHECK_EQ(server_speeds.size(), static_cast<std::size_t>(num_servers_))
      << "one speed per server";
  for (double speed : server_speeds) {
    DAPPLE_CHECK_GT(speed, 0.0) << "server speed";
  }
  Cluster copy = *this;
  copy.server_speeds_ = std::move(server_speeds);
  return copy;
}

double Cluster::server_speed(ServerId s) const {
  DAPPLE_CHECK(s >= 0 && s < num_servers_) << "server " << s;
  if (server_speeds_.empty()) return 1.0;
  return server_speeds_[static_cast<std::size_t>(s)];
}

double Cluster::device_speed(DeviceId d) const {
  return device_.relative_speed * server_speed(server_of(d));
}

ServerId Cluster::server_of(DeviceId d) const {
  DAPPLE_CHECK(d >= 0 && d < num_devices()) << "device " << d << " out of range";
  return d / gpus_per_server_;
}

bool Cluster::same_server(DeviceId a, DeviceId b) const {
  return server_of(a) == server_of(b);
}

BytesPerSec Cluster::bandwidth(DeviceId a, DeviceId b) const {
  DAPPLE_CHECK_NE(a, b) << "p2p bandwidth of a device with itself";
  return same_server(a, b) ? interconnect_.intra_server_bandwidth
                           : interconnect_.inter_server_bandwidth;
}

TimeSec Cluster::latency(DeviceId a, DeviceId b) const {
  DAPPLE_CHECK_NE(a, b) << "p2p latency of a device with itself";
  return same_server(a, b) ? interconnect_.intra_server_latency
                           : interconnect_.inter_server_latency;
}

Cluster Cluster::WithServers(int num_servers) const {
  DAPPLE_CHECK(num_servers > 0 && num_servers <= num_servers_)
      << "cannot slice " << num_servers << " servers from " << name_;
  Cluster sliced(name_, num_servers, gpus_per_server_, device_, interconnect_);
  if (!server_speeds_.empty()) {
    sliced.server_speeds_.assign(server_speeds_.begin(),
                                 server_speeds_.begin() + num_servers);
  }
  return sliced;
}

Cluster MakeConfigA(int num_servers) {
  InterconnectSpec net;
  net.intra_server_bandwidth = GBps(130.0);
  net.intra_server_latency = 3e-6;
  net.inter_server_bandwidth = Gbps(25.0);
  net.inter_server_latency = 30e-6;
  return Cluster("Config-A", num_servers, /*gpus_per_server=*/8, DeviceSpec{}, net);
}

Cluster MakeConfigB(int num_servers) {
  InterconnectSpec net;
  // Single-GPU servers: the intra-server link is never exercised, but keep a
  // sane value so degenerate single-device collectives stay well defined.
  net.intra_server_bandwidth = GBps(130.0);
  net.intra_server_latency = 3e-6;
  net.inter_server_bandwidth = Gbps(25.0);
  net.inter_server_latency = 30e-6;
  return Cluster("Config-B", num_servers, /*gpus_per_server=*/1, DeviceSpec{}, net);
}

Cluster MakeConfigC(int num_servers) {
  InterconnectSpec net;
  net.intra_server_bandwidth = GBps(130.0);
  net.intra_server_latency = 3e-6;
  net.inter_server_bandwidth = Gbps(10.0);
  net.inter_server_latency = 30e-6;
  return Cluster("Config-C", num_servers, /*gpus_per_server=*/1, DeviceSpec{}, net);
}

Cluster MakeConfig(char which, int num_servers) {
  switch (which) {
    case 'A':
    case 'a':
      return MakeConfigA(num_servers);
    case 'B':
    case 'b':
      return MakeConfigB(num_servers);
    case 'C':
    case 'c':
      return MakeConfigC(num_servers);
    default:
      throw Error(std::string("unknown hardware config '") + which + "'");
  }
}

}  // namespace dapple::topo
