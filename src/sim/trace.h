// Trace rendering: ASCII Gantt charts of pipeline schedules (the shape of
// paper Figs. 3, 4, 7, 8) and memory-over-time plots (Fig. 3(c)). These are
// diagnostics for examples/benches, not part of the simulation itself.
#pragma once

#include <string>

#include "sim/engine.h"
#include "sim/graph.h"

namespace dapple::sim {

/// Renders one lane per resource. Forward tasks print the micro-batch index
/// digit, backward tasks print the index as a letter (0->a), recompute 'r',
/// transfers '-', allreduce '#', apply '='. Idle time is '.'.
std::string RenderGantt(const TaskGraph& graph, const SimResult& result, int width = 100);

/// Renders a pool's resident-bytes trajectory as a `height`-row bar plot
/// with a byte-scale legend.
std::string RenderMemoryTimeline(const MemoryPool& pool, TimeSec horizon, int width = 80,
                                 int height = 8);

}  // namespace dapple::sim
