// Micro-batch scheduling (paper §III, §V-C, plus two families from the
// follow-up literature). Five schedules:
//
//   GPipe      — inject all M micro-batches' forwards, then run backwards;
//                activation memory grows O(M).
//   DAPPLE     — early backward scheduling (1F1B): inject K_i forwards at
//                stage i, then strictly interleave one-forward-one-backward
//                so each micro-batch's activations are freed as soon as
//                possible; peak memory is O(K_i), independent of M.
//   DAPPLE-2BP — 1F1B with the 2BP backward split: backward is emitted as a
//                backward-input half (propagates the gradient upstream) and
//                a deferred backward-weight half (accumulates the weight
//                gradient, gating the stage's AllReduce). The input half is
//                all downstream stages wait on, so the drain cascade runs on
//                half-backwards and the weight halves fill the slack.
//   V-Min      — V-shape building-block schedule (Qi et al., "Pipeline
//   V-Half       Parallelism with Controllable Memory"): the S pipeline
//                chunks fold onto ceil(S/2) device groups, group g hosting
//                chunk g (descending leg) and chunk S-1-g (ascending leg).
//                Per-chunk in-flight caps bound peak activation memory to
//                ~1/3 (V-Min) or ~1/2 (V-Half) of 1F1B's at equal devices.
//
// Warmup depth policies (§V-C): PA: K_i = min(S-i, D);
// PB: K_i = min(2(S-i)-1, D), where D is the memory-supported in-flight
// count. Every schedule is expressed as a per-device total order of
// FW/BW(/BWW) tasks, realized in the task graph with control edges — the
// same mechanism (TF control dependencies) the paper's runtime uses.
#pragma once

#include <string_view>
#include <vector>

namespace dapple::runtime {

enum class ScheduleKind {
  kDapple,
  kGPipe,
  kDappleSplitBw,  // 1F1B + 2BP backward-input/backward-weight split
  kVMin,           // V-shape, ~1/3 of 1F1B activation memory
  kVHalf,          // V-shape, ~1/2 of 1F1B activation memory
};
enum class WarmupPolicy { kPA, kPB };

const char* ToString(ScheduleKind kind);
const char* ToString(WarmupPolicy policy);

/// Every ScheduleKind, in enum order — for fuzzers, benches, and the
/// ToString/Parse fixed-point test, so adding a kind extends them all.
const std::vector<ScheduleKind>& AllScheduleKinds();

/// Case-insensitive parse accepting each kind's ToString name plus the
/// CLI-friendly aliases ("dapple", "gpipe", "dapple-2bp"/"2bp"/"split-bw",
/// "v-min"/"vmin", "v-half"/"vhalf"). Returns false on unknown names,
/// leaving *kind untouched; ToString(Parse(s)) is a fixed point for every
/// name ToString emits.
bool ParseScheduleKind(std::string_view name, ScheduleKind* kind);

/// True for the V-shape families, whose chunks fold onto device groups.
bool IsVShape(ScheduleKind kind);

/// The device group hosting pipeline chunk `stage`: min(stage, S-1-stage)
/// for the V shapes (group g runs chunks g and S-1-g), identity otherwise.
int HostStage(ScheduleKind kind, int stage, int num_stages);

/// Number of device groups a schedule actually occupies: ceil(S/2) for the
/// V shapes, S otherwise.
int NumGroups(ScheduleKind kind, int num_stages);

/// Per-chunk in-flight stash cap of a V schedule (before clamping by M):
/// ceil((S-c)/2) for V-Half, ceil((S-c)/3) for V-Min, both at least 1.
/// Group g's two caps sum to ~S/2+1 (V-Half) or ~S/3+1 (V-Min) on every
/// group, which is what bounds peak activation relative to 1F1B's S.
int VStashCap(ScheduleKind kind, int stage, int num_stages);

struct ScheduleOptions {
  ScheduleKind kind = ScheduleKind::kDapple;
  WarmupPolicy warmup = WarmupPolicy::kPA;
  /// Re-computation on every stage: stash only stage-boundary activations,
  /// replay the forward inside backward. Per-stage recomputation rides
  /// planner::StagePlan::recompute; a stage recomputes when either is set.
  bool recompute = false;
  /// Extra backward cost as a fraction of *forward* time when recomputing
  /// (the replayed forward). 0.4 x F = 0.2 x B on the zoo's backward ≈ 2x
  /// forward profiles — the paper's §II-A "~20% extra backward overhead".
  /// Must match planner::LatencyOptions::recompute_overhead (regression-
  /// tested in tests/memory_cap_test.cc).
  double recompute_overhead = 0.4;
  /// Ablation hook: force the warmup depth K for every stage (still
  /// clamped by M and the memory limit). 0 = use the policy formulas.
  int warmup_override = 0;
};

/// One step of a device's execution order.
struct ScheduleStep {
  bool is_backward = false;
  int microbatch = 0;
  /// kDappleSplitBw only: true on the deferred backward-weight half
  /// (is_backward is also true there); false on backward-input steps and on
  /// every step of every other kind.
  bool weight_grad = false;
};

/// One step of a V-schedule device group's order: a chunk-tagged step
/// (the group interleaves two chunks, so each step names its chunk).
struct GroupStep {
  int stage = 0;
  bool is_backward = false;
  int microbatch = 0;
};

/// The deterministic V execution order plus the per-chunk in-flight depths
/// it realizes (the V analogue of BuiltPipeline::warmup_depths).
struct VSchedule {
  /// [group g][step]: the merged order of chunks g and S-1-g on group g.
  std::vector<std::vector<GroupStep>> group_orders;
  /// [chunk]: max micro-batches the order keeps stashed for that chunk.
  std::vector<int> in_flight;
};

/// Builds the V order as a unit-time greedy list schedule over chunk
/// states: a forward is ready when its upstream chunk has produced the
/// micro-batch and the chunk's stash is below its cap; a backward is ready
/// when its own forward and the downstream backward are done. Each tick,
/// every group issues at most one ready step, preferring backwards (frees a
/// stash) and the later-hosted chunk (unblocks the upstream backward chain
/// soonest); readiness is judged at tick start. The caps are non-increasing
/// in the chunk index, which makes the greedy order deadlock-free: the
/// oldest incomplete micro-batch always has a ready frontier step.
/// Deterministic in (kind, S, M); shared by the graph builder and the
/// validator so both sides derive the same expectation.
VSchedule BuildVSchedule(ScheduleKind kind, int num_stages, int num_micro_batches);

/// Warmup depth K_i for stage i of S stages (paper policies PA/PB),
/// clamped by the memory-supported in-flight count `memory_limit`
/// (0 = unlimited) and by M. GPipe's "warmup" is all of M; the V shapes
/// report min(cap, M) (their realized depths come from BuildVSchedule).
int WarmupDepth(const ScheduleOptions& options, int stage_index, int num_stages,
                int num_micro_batches, int memory_limit);

/// The per-device total order of forward/backward steps for stage i.
/// DAPPLE: F0..F_{K-1}, B0, F_K, B1, F_{K+1}, ..., trailing backwards.
/// DAPPLE-2BP: as DAPPLE, with each backward split into BI_m, F_{m+K},
/// BWW_m — the weight half yields to the next forward, filling the slot the
/// full backward would have blocked.
/// GPipe:  F0..F_{M-1}, B_{M-1}..B0 (reverse-order backward, LIFO in
/// activation stack order, per Fig. 3(a)).
/// V shapes: the projection of BuildVSchedule's group order onto chunk i
/// (useful for per-chunk inspection; devices follow the merged group order).
std::vector<ScheduleStep> StageOrder(const ScheduleOptions& options, int stage_index,
                                     int num_stages, int num_micro_batches,
                                     int memory_limit);

}  // namespace dapple::runtime
