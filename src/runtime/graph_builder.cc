#include "runtime/graph_builder.h"

#include <algorithm>
#include <string>
#include <vector>

#include "comm/cost_model.h"
#include "common/error.h"
#include "planner/latency.h"

namespace dapple::runtime {

const char* ToString(ReplicationMode mode) {
  switch (mode) {
    case ReplicationMode::kSplitMicroBatch: return "split";
    case ReplicationMode::kRoundRobin: return "round-robin";
  }
  return "?";
}

namespace {

struct StageInfo {
  const planner::StagePlan* plan = nullptr;
  /// Device/replication source. Identity for the linear schedules; for the
  /// V shapes, chunk c executes on its host group's stage
  /// (min(c, S-1-c)), so both chunks of a group share one device set.
  const planner::StagePlan* exec = nullptr;
  double samples = 0.0;  // examples per FW/BW task on one device
  TimeSec forward = 0.0;
  TimeSec backward = 0.0;
  TimeSec bw_input = 0.0;   // 2BP: backward-input half (carries recompute)
  TimeSec bw_weight = 0.0;  // 2BP: deferred backward-weight half
  Bytes baseline = 0;
  Bytes full_activation = 0;   // per in-flight micro-batch (no recompute)
  Bytes checkpoint = 0;        // per in-flight micro-batch (recompute)
  Bytes fw_alloc = 0;          // allocated at FW start
  Bytes bw_alloc = 0;          // transient working set at BW start
  Bytes bw_free = 0;           // released at BW end (2BP: at BWW end)
  int warmup = 0;
};

}  // namespace

GraphBuilder::GraphBuilder(const model::ModelProfile& model, const topo::Cluster& cluster,
                           const planner::ParallelPlan& plan, BuildOptions options)
    : model_(&model), cluster_(&cluster), plan_(&plan), options_(options) {
  DAPPLE_CHECK_GT(options_.global_batch_size, 0) << "global batch size";
  plan.Validate(model);
}

BuiltPipeline GraphBuilder::Build() const {
  const int num_stages = plan_->num_stages();
  const int num_devices = cluster_->num_devices();
  const ScheduleKind kind = options_.schedule.kind;
  const bool v_shape = IsVShape(kind);
  const bool split_bw = kind == ScheduleKind::kDappleSplitBw;
  comm::CostModel cost(*cluster_);

  int max_replication = 1;
  for (const auto& s : plan_->stages) max_replication = std::max(max_replication, s.replication());

  BuiltPipeline built;
  built.num_devices = num_devices;
  built.num_stages = num_stages;
  built.options = options_;
  if (options_.micro_batch_size > 0) {
    built.micro_batch_size = options_.micro_batch_size;
    built.num_micro_batches = static_cast<int>(
        std::max<long>(1, options_.global_batch_size / built.micro_batch_size));
  } else {
    const planner::MicroBatching mb = planner::ChooseMicroBatching(
        options_.global_batch_size, model_->profile_micro_batch(), max_replication,
        num_stages);
    built.micro_batch_size = mb.micro_batch_size;
    built.num_micro_batches = mb.num_micro_batches;
  }
  DAPPLE_CHECK_GT(built.micro_batch_size, 0);
  const int mbs = built.micro_batch_size;
  const int m_total = built.num_micro_batches;

  // The deterministic V order is shared with the validator; its realized
  // per-chunk depths become warmup_depths below.
  VSchedule vsched;
  if (v_shape) vsched = BuildVSchedule(kind, num_stages, m_total);

  // --- Per-stage costs and memory effects -------------------------------
  std::vector<StageInfo> info(static_cast<std::size_t>(num_stages));
  for (int i = 0; i < num_stages; ++i) {
    StageInfo& si = info[static_cast<std::size_t>(i)];
    si.plan = &plan_->stages[static_cast<std::size_t>(i)];
    si.exec = &plan_->stages[static_cast<std::size_t>(HostStage(kind, i, num_stages))];
    const int r = si.exec->replication();
    si.samples = options_.replication == ReplicationMode::kSplitMicroBatch
                     ? static_cast<double>(mbs) / r
                     : static_cast<double>(mbs);
    // Reference durations at unit speed; per-device tasks divide by their
    // own device's speed (heterogeneous servers / stragglers).
    si.forward =
        model_->ForwardTime(si.plan->layer_begin, si.plan->layer_end, si.samples, 1.0);
    si.backward =
        model_->BackwardTime(si.plan->layer_begin, si.plan->layer_end, si.samples, 1.0);
    // A stage recomputes when the global schedule flag or its own plan
    // flag (set by the memory-constrained planner) asks for it.
    const bool recompute = options_.schedule.recompute || si.plan->recompute;
    // 2BP halves the backward at the input/weight gradient boundary; the
    // forward replay under recompute must precede the input half (the
    // gradient leaves the stage there), so the overhead lands on BI.
    si.bw_weight = 0.5 * si.backward;
    if (recompute) {
      si.backward += options_.schedule.recompute_overhead * si.forward;
    }
    si.bw_input = si.backward - si.bw_weight;
    si.baseline = model_->BaselineMemory(si.plan->layer_begin, si.plan->layer_end);
    si.full_activation =
        model_->ActivationMemory(si.plan->layer_begin, si.plan->layer_end, si.samples);
    si.checkpoint =
        model_->CheckpointMemory(si.plan->layer_begin, si.plan->layer_end, si.samples);
    if (recompute) {
      si.fw_alloc = si.checkpoint;
      // Transient working set while one layer block replays in backward.
      si.bw_alloc = model_->MaxLayerActivationMemory(si.plan->layer_begin,
                                                     si.plan->layer_end, si.samples);
      si.bw_free = si.fw_alloc + si.bw_alloc;
    } else {
      si.fw_alloc = si.full_activation;
      si.bw_alloc = 0;
      si.bw_free = si.full_activation;
    }

    if (v_shape) {
      // The realized in-flight depth of the deterministic V order (at most
      // the VStashCap bound; the greedy order may stay below it).
      si.warmup = vsched.in_flight[static_cast<std::size_t>(i)];
      continue;
    }

    // Memory-supported in-flight count D (the 1F1B family throttles;
    // GPipe's all-forwards injection is what we want to observe OOMing).
    int memory_limit = 0;
    if ((kind == ScheduleKind::kDapple || kind == ScheduleKind::kDappleSplitBw) &&
        options_.enforce_memory_capacity && si.fw_alloc > 0) {
      // 2BP holds one extra stash transiently: the next forward runs
      // between BI_m and BWW_m, before BWW_m frees micro-batch m.
      const Bytes reserve =
          si.baseline + si.bw_alloc + (split_bw ? si.fw_alloc : Bytes{0});
      const Bytes capacity =
          options_.memory_cap > 0 ? options_.memory_cap : cluster_->device().memory;
      if (capacity > reserve) {
        memory_limit = static_cast<int>((capacity - reserve) / std::max<Bytes>(si.fw_alloc, 1));
      }
      memory_limit = std::max(memory_limit, 1);
    }
    si.warmup =
        WarmupDepth(options_.schedule, i, num_stages, m_total, memory_limit);
  }
  // Warmup depths must be non-increasing along the pipeline: with the
  // interleaved order, stage i's B_m waits on stage i+1's B_m, which sits
  // behind F_{m+K_{i+1}-1} there — a K that grows downstream would deadlock
  // the control chains. Memory clamping can only lower a K, so restoring
  // monotonicity by lowering downstream stages keeps every stage feasible.
  // (The V shapes skip this: their order comes whole from BuildVSchedule,
  // whose caps are non-increasing by construction.)
  if (!v_shape) {
    for (int i = 1; i < num_stages; ++i) {
      info[static_cast<std::size_t>(i)].warmup =
          std::min(info[static_cast<std::size_t>(i)].warmup,
                   info[static_cast<std::size_t>(i - 1)].warmup);
    }
  }
  for (int i = 0; i < num_stages; ++i) {
    built.warmup_depths.push_back(info[static_cast<std::size_t>(i)].warmup);
    built.stage_recompute.push_back(
        options_.schedule.recompute ||
                plan_->stages[static_cast<std::size_t>(i)].recompute
            ? 1
            : 0);
  }

  // --- Resource ids ------------------------------------------------------
  const ResourceLayout layout = built.layout();

  sim::TaskGraph& graph = built.graph;

  // fw_tasks[i][m] / bw_tasks[i][m] / bww_tasks[i][m]: per-replica task ids
  // (one entry in round-robin mode). Under 2BP, bw_tasks holds the
  // backward-input halves (they carry the cross-stage gradient, so every
  // transfer keeps reading bw_tasks) and bww_tasks the weight halves.
  std::vector<std::vector<std::vector<sim::TaskId>>> fw_tasks(
      static_cast<std::size_t>(num_stages));
  std::vector<std::vector<std::vector<sim::TaskId>>> bw_tasks(
      static_cast<std::size_t>(num_stages));
  std::vector<std::vector<std::vector<sim::TaskId>>> bww_tasks(
      static_cast<std::size_t>(num_stages));

  auto replicas_for = [&](int stage, int micro) -> std::vector<int> {
    const int r = info[static_cast<std::size_t>(stage)].exec->replication();
    if (options_.replication == ReplicationMode::kSplitMicroBatch) {
      std::vector<int> all(static_cast<std::size_t>(r));
      for (int k = 0; k < r; ++k) all[static_cast<std::size_t>(k)] = k;
      return all;
    }
    return {micro % r};
  };

  for (int i = 0; i < num_stages; ++i) {
    const StageInfo& si = info[static_cast<std::size_t>(i)];
    fw_tasks[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(m_total));
    bw_tasks[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(m_total));
    bww_tasks[static_cast<std::size_t>(i)].resize(static_cast<std::size_t>(m_total));
    for (int m = 0; m < m_total; ++m) {
      for (int rep : replicas_for(i, m)) {
        const topo::DeviceId dev = si.exec->devices[rep];
        const double dev_speed = cluster_->device_speed(dev);
        sim::Task fw;
        fw.name = "FW s" + std::to_string(i) + " m" + std::to_string(m) + " G" +
                  std::to_string(dev);
        fw.kind = sim::TaskKind::kForward;
        fw.resource = dev;
        fw.duration = si.forward / dev_speed;
        fw.pool = dev;
        fw.alloc_at_start = si.fw_alloc;
        fw.stage = i;
        fw.microbatch = m;
        fw.device = dev;
        fw_tasks[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)].push_back(
            graph.AddTask(std::move(fw)));

        sim::Task bw;
        bw.name = (split_bw ? "BI s" : "BW s") + std::to_string(i) + " m" +
                  std::to_string(m) + " G" + std::to_string(dev);
        bw.kind = sim::TaskKind::kBackward;
        bw.resource = dev;
        bw.duration = (split_bw ? si.bw_input : si.backward) / dev_speed;
        bw.pool = dev;
        bw.alloc_at_start = si.bw_alloc;
        // 2BP: the stash (and the replay working set) stays live until the
        // weight half has consumed the activations; BWW frees it all.
        bw.free_at_end = split_bw ? Bytes{0} : si.bw_free;
        bw.stage = i;
        bw.microbatch = m;
        bw.device = dev;
        bw_tasks[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)].push_back(
            graph.AddTask(std::move(bw)));

        if (split_bw) {
          sim::Task bww;
          bww.name = "BWW s" + std::to_string(i) + " m" + std::to_string(m) + " G" +
                     std::to_string(dev);
          bww.kind = sim::TaskKind::kBackwardWeight;
          bww.resource = dev;
          bww.duration = si.bw_weight / dev_speed;
          bww.pool = dev;
          bww.free_at_end = si.bw_free;
          bww.stage = i;
          bww.microbatch = m;
          bww.device = dev;
          bww_tasks[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)].push_back(
              graph.AddTask(std::move(bww)));
        }
      }
    }
  }

  // --- Data dependencies: FW chain, BW chain, cross-stage transfers ------
  for (int i = 0; i < num_stages; ++i) {
    const StageInfo& si = info[static_cast<std::size_t>(i)];
    for (int m = 0; m < m_total; ++m) {
      const auto& fws = fw_tasks[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)];
      const auto& bws = bw_tasks[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)];
      // Same-replica FW -> BW (activations live on the device).
      DAPPLE_CHECK_EQ(fws.size(), bws.size());
      for (std::size_t k = 0; k < fws.size(); ++k) graph.AddEdge(fws[k], bws[k]);
      if (split_bw) {
        // BI produces the intermediate gradients BWW contracts against.
        const auto& bwws =
            bww_tasks[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)];
        DAPPLE_CHECK_EQ(bws.size(), bwws.size());
        for (std::size_t k = 0; k < bws.size(); ++k) graph.AddEdge(bws[k], bwws[k]);
      }
    }
    if (i + 1 == num_stages) continue;

    const StageInfo& sn = info[static_cast<std::size_t>(i + 1)];
    const Bytes act = model_->ActivationAt(si.plan->layer_end, static_cast<double>(mbs));
    for (int m = 0; m < m_total; ++m) {
      const auto& src = fw_tasks[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)];
      const auto& dst = fw_tasks[static_cast<std::size_t>(i + 1)][static_cast<std::size_t>(m)];
      TimeSec tx_time;
      if (options_.replication == ReplicationMode::kSplitMicroBatch) {
        // Co-located device sets (a V group's two chunks, or the V bottom)
        // degrade to a local memcpy inside CrossStage.
        tx_time = cost.CrossStage(si.exec->devices, sn.exec->devices, act);
      } else {
        const topo::DeviceId a = graph.task(src.front()).device;
        const topo::DeviceId b = graph.task(dst.front()).device;
        tx_time = a == b ? 0.0 : cost.P2P(a, b, act);
      }
      sim::Task txf;
      txf.name = "TXf " + std::to_string(i) + "->" + std::to_string(i + 1) + " m" +
                 std::to_string(m);
      txf.kind = sim::TaskKind::kTransfer;
      txf.resource = layout.ForwardChannel(i);
      txf.duration = tx_time;
      txf.stage = i;
      txf.microbatch = m;
      txf.bytes = act;
      const sim::TaskId txf_id = graph.AddTask(std::move(txf));
      for (sim::TaskId t : src) graph.AddEdge(t, txf_id);
      for (sim::TaskId t : dst) graph.AddEdge(txf_id, t);

      const auto& bsrc = bw_tasks[static_cast<std::size_t>(i + 1)][static_cast<std::size_t>(m)];
      const auto& bdst = bw_tasks[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)];
      TimeSec btx_time;
      if (options_.replication == ReplicationMode::kSplitMicroBatch) {
        btx_time = cost.CrossStage(sn.exec->devices, si.exec->devices, act);
      } else {
        const topo::DeviceId a = graph.task(bsrc.front()).device;
        const topo::DeviceId b = graph.task(bdst.front()).device;
        btx_time = a == b ? 0.0 : cost.P2P(a, b, act);
      }
      sim::Task txb;
      txb.name = "TXb " + std::to_string(i + 1) + "->" + std::to_string(i) + " m" +
                 std::to_string(m);
      txb.kind = sim::TaskKind::kTransfer;
      txb.resource = layout.BackwardChannel(i);
      txb.duration = btx_time;
      txb.stage = i;
      txb.microbatch = m;
      txb.bytes = act;
      const sim::TaskId txb_id = graph.AddTask(std::move(txb));
      for (sim::TaskId t : bsrc) graph.AddEdge(t, txb_id);
      for (sim::TaskId t : bdst) graph.AddEdge(txb_id, t);
    }
  }

  // --- Control dependencies: per-device execution order ------------------
  // Picks the concrete task of a schedule step for one replica slot.
  auto step_task = [&](int stage, bool is_backward, bool weight_grad, int micro,
                       int rep) -> sim::TaskId {
    const auto& arr = weight_grad ? bww_tasks : (is_backward ? bw_tasks : fw_tasks);
    const auto& list =
        arr[static_cast<std::size_t>(stage)][static_cast<std::size_t>(micro)];
    if (options_.replication == ReplicationMode::kRoundRobin) {
      DAPPLE_CHECK_EQ(list.size(), 1u);
      return list.front();
    }
    return list[static_cast<std::size_t>(rep)];
  };

  if (v_shape) {
    // One chain per device group: the merged two-chunk order from
    // BuildVSchedule. The chain follows the global tick order — a linear
    // extension of the data dependencies — so adding it keeps the graph
    // acyclic.
    const int groups = NumGroups(kind, num_stages);
    for (int g = 0; g < groups; ++g) {
      const int r = info[static_cast<std::size_t>(g)].exec->replication();
      const auto& order = vsched.group_orders[static_cast<std::size_t>(g)];
      for (int rep = 0; rep < r; ++rep) {
        sim::TaskId prev = sim::kInvalidTask;
        int position = 0;
        for (const GroupStep& step : order) {
          if (options_.replication == ReplicationMode::kRoundRobin &&
              step.microbatch % r != rep) {
            continue;
          }
          const sim::TaskId current =
              step_task(step.stage, step.is_backward, false, step.microbatch, rep);
          graph.mutable_task(current).priority = position++;
          if (prev != sim::kInvalidTask) graph.AddEdge(prev, current);
          prev = current;
        }
      }
    }
  } else {
    for (int i = 0; i < num_stages; ++i) {
      const StageInfo& si = info[static_cast<std::size_t>(i)];
      const int r = si.exec->replication();
      const std::vector<ScheduleStep> order =
          StageOrder(options_.schedule, i, num_stages, m_total, si.warmup);
      for (int rep = 0; rep < r; ++rep) {
        sim::TaskId prev = sim::kInvalidTask;
        int position = 0;
        for (const ScheduleStep& step : order) {
          // In round-robin mode a device only executes its assigned
          // micro-batches.
          if (options_.replication == ReplicationMode::kRoundRobin &&
              step.microbatch % r != rep) {
            continue;
          }
          const sim::TaskId current = step_task(i, step.is_backward, step.weight_grad,
                                                step.microbatch, rep);
          graph.mutable_task(current).priority = position++;
          if (prev != sim::kInvalidTask) graph.AddEdge(prev, current);
          prev = current;
        }
      }
    }
  }

  // --- Gradient synchronization and weight update -------------------------
  // Under 2BP the weight gradients come from the BWW halves, so they (not
  // the BI halves) gate AllReduce/APPLY.
  const auto& grad_tasks = split_bw ? bww_tasks : bw_tasks;
  for (int i = 0; i < num_stages; ++i) {
    const StageInfo& si = info[static_cast<std::size_t>(i)];
    const Bytes weights = model_->ParamBytes(si.plan->layer_begin, si.plan->layer_end);
    sim::TaskId ar_id = sim::kInvalidTask;
    if (si.exec->replication() > 1) {
      sim::Task ar;
      ar.name = "AR s" + std::to_string(i);
      ar.kind = sim::TaskKind::kAllReduce;
      ar.resource = layout.AllReduceLane(i);
      if (options_.overlap_allreduce) {
        // Gradient buckets synchronize while the final micro-batch's
        // backward is still running (reverse-layer order); only the
        // exposed remainder extends the iteration. The estimator and the
        // runtime share one overlap model so measured latencies track
        // planned ones.
        planner::LatencyOptions lat;
        lat.overlap_allreduce = true;
        planner::LatencyEstimator estimator(*model_, *cluster_, lat);
        ar.duration = estimator.ExposedAllReduce(si.plan->layer_begin, si.plan->layer_end,
                                                 si.exec->devices, si.samples);
      } else {
        ar.duration = cost.AllReduce(si.exec->devices, weights);
      }
      ar.stage = i;
      ar.bytes = weights;
      ar_id = graph.AddTask(std::move(ar));
      for (int m = 0; m < m_total; ++m) {
        for (sim::TaskId t :
             grad_tasks[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)]) {
          graph.AddEdge(t, ar_id);
        }
      }
    }
    for (int rep = 0; rep < si.exec->replication(); ++rep) {
      const topo::DeviceId dev = si.exec->devices[rep];
      sim::Task apply;
      apply.name = "APPLY s" + std::to_string(i) + " G" + std::to_string(dev);
      apply.kind = sim::TaskKind::kApply;
      apply.resource = dev;
      apply.duration =
          static_cast<double>(weights) / cost.options().memcpy_bandwidth;
      apply.stage = i;
      apply.device = dev;
      apply.priority = 1 << 20;  // after any scheduled FW/BW on the device
      const sim::TaskId apply_id = graph.AddTask(std::move(apply));
      if (ar_id != sim::kInvalidTask) {
        graph.AddEdge(ar_id, apply_id);
      } else {
        for (int m = 0; m < m_total; ++m) {
          for (sim::TaskId t :
               grad_tasks[static_cast<std::size_t>(i)][static_cast<std::size_t>(m)]) {
            if (graph.task(t).device == dev) graph.AddEdge(t, apply_id);
          }
        }
      }
    }
  }

  // --- Memory pools -------------------------------------------------------
  // A device's baseline is the sum over the stages it hosts — one stage for
  // the linear schedules, a group's two chunks for the V shapes.
  built.engine_options.pool_baselines.assign(static_cast<std::size_t>(num_devices), 0);
  built.engine_options.pool_capacities.assign(static_cast<std::size_t>(num_devices), 0);
  for (int i = 0; i < num_stages; ++i) {
    const StageInfo& si = info[static_cast<std::size_t>(i)];
    if (v_shape && HostStage(kind, i, num_stages) != i) continue;
    Bytes baseline = si.baseline;
    if (v_shape) {
      const int partner = num_stages - 1 - i;
      if (partner != i) {
        baseline += info[static_cast<std::size_t>(partner)].baseline;
      }
    }
    for (topo::DeviceId d : si.exec->devices.devices()) {
      built.engine_options.pool_baselines[static_cast<std::size_t>(d)] = baseline;
      if (options_.enforce_memory_capacity) {
        built.engine_options.pool_capacities[static_cast<std::size_t>(d)] =
            options_.memory_cap > 0 ? options_.memory_cap : cluster_->device().memory;
      }
    }
  }

  return built;
}

}  // namespace dapple::runtime
