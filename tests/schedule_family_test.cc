// Sim-measured properties of the expanded schedule space (the
// controllable-memory V shapes and the split-backward 2BP family), pinned
// against the incumbent 1F1B on equal hardware:
//
//   - V-Min's peak activation memory is at most ~1/3 of 1F1B's (V-Half:
//     ~1/2) on the same devices — each bound carries a two-chunk
//     quantization slack, the discretization the paper's ratio hides;
//   - DAPPLE-2BP never has a longer makespan than plain 1F1B on uniform
//     stages (the weight halves fill drain bubbles, they never add any);
//   - the 2BP stash transient stays within K+1 micro-batches per stage.
//
// Everything here is measured from MemoryPool high-water marks and engine
// makespans, not from the analytic estimator, so a builder regression in
// any family shows up as a broken physical property, not a formula drift.
#include <gtest/gtest.h>

#include <algorithm>

#include "model/profile.h"
#include "model/zoo.h"
#include "planner/plan.h"
#include "runtime/graph_builder.h"
#include "sim/engine.h"
#include "topo/cluster.h"

namespace dapple {
namespace {

// One device per stage, `layers_per_stage` layers each, devices dense from
// zero. The model must have stages * layers_per_stage layers.
planner::ParallelPlan OneDevicePerStage(int stages, int layers_per_stage) {
  planner::ParallelPlan plan;
  plan.model = "uniform";
  for (int i = 0; i < stages; ++i) {
    planner::StagePlan sp;
    sp.layer_begin = i * layers_per_stage;
    sp.layer_end = (i + 1) * layers_per_stage;
    sp.devices = topo::DeviceSet::Range(i, 1);
    plan.stages.push_back(sp);
  }
  return plan;
}

struct RunResult {
  runtime::BuiltPipeline built;
  sim::SimResult sim;
};

RunResult RunSchedule(const model::ModelProfile& m, const topo::Cluster& cluster,
                      const planner::ParallelPlan& plan, runtime::ScheduleKind kind,
                      long gbs) {
  runtime::BuildOptions o;
  o.global_batch_size = gbs;
  o.schedule.kind = kind;
  o.enforce_memory_capacity = false;  // measure the peak, don't clamp to it
  runtime::GraphBuilder builder(m, cluster, plan, o);
  RunResult r{builder.Build(), {}};
  r.sim = sim::Engine::Run(r.built.graph, r.built.engine_options);
  return r;
}

// Largest activation high-water mark over the devices that executed work
// (peak above the always-resident baseline).
Bytes MaxActivationPeak(const RunResult& r) {
  Bytes peak = 0;
  for (int d = 0; d < r.built.num_devices; ++d) {
    const sim::MemoryPool& pool = r.sim.pools[static_cast<std::size_t>(d)];
    peak = std::max(peak, pool.peak() - pool.baseline());
  }
  return peak;
}

// Equal-device comparison (the paper's framing): D devices run either
// 1F1B with D stages of two layers each, or a V schedule with 2D
// single-layer chunks folded onto the same D devices (chunks D..2D-1
// declare the idle devices D..2D-1 to keep the plan valid; execution lands
// on the host groups 0..D-1). Same model, same micro-batches, same
// hardware — only the schedule family changes.
class VMemoryPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(VMemoryPropertyTest, VShapesBoundPeakActivationRelativeTo1F1B) {
  const int d = GetParam();
  const int chunks = 2 * d;
  const model::ModelProfile m =
      model::MakeUniformSynthetic(chunks, 0.002, 0.004, 8u << 20, 1'000'000);
  const topo::Cluster cluster = topo::MakeConfigB(chunks);
  const planner::ParallelPlan plan_1f1b = OneDevicePerStage(d, 2);
  const planner::ParallelPlan plan_v = OneDevicePerStage(chunks, 1);
  plan_1f1b.Validate(m);
  plan_v.Validate(m);

  for (const long gbs : {static_cast<long>(2 * d), 16L}) {
    const RunResult base =
        RunSchedule(m, cluster, plan_1f1b, runtime::ScheduleKind::kDapple, gbs);
    const RunResult vmin =
        RunSchedule(m, cluster, plan_v, runtime::ScheduleKind::kVMin, gbs);
    const RunResult vhalf =
        RunSchedule(m, cluster, plan_v, runtime::ScheduleKind::kVHalf, gbs);

    // The V runs execute only on the D host devices; the declared idle
    // devices must stay untouched.
    for (int dev = d; dev < chunks; ++dev) {
      EXPECT_EQ(vmin.sim.pools[static_cast<std::size_t>(dev)].peak(),
                vmin.sim.pools[static_cast<std::size_t>(dev)].baseline())
          << "idle device " << dev << " allocated activations";
    }

    // Per-chunk stash bytes for one micro-batch (the builder's fw_alloc):
    // the quantization unit of the V bounds.
    const Bytes chunk_act =
        m.ActivationMemory(0, 1, static_cast<double>(vmin.built.micro_batch_size));
    ASSERT_GT(chunk_act, 0u);

    const Bytes peak_base = MaxActivationPeak(base);
    const Bytes peak_vmin = MaxActivationPeak(vmin);
    const Bytes peak_vhalf = MaxActivationPeak(vhalf);
    ASSERT_GT(peak_base, 0u);

    EXPECT_LE(peak_vmin, peak_base / 3 + 2 * chunk_act)
        << "D=" << d << " gbs=" << gbs;
    EXPECT_LE(peak_vhalf, peak_base / 2 + 2 * chunk_act)
        << "D=" << d << " gbs=" << gbs;
    // The headline claim, without slack: strictly less memory than 1F1B on
    // the same devices once the pipeline is deep enough to matter.
    if (d >= 2) {
      EXPECT_LT(peak_vmin, peak_base) << "D=" << d << " gbs=" << gbs;
      EXPECT_LT(peak_vhalf, peak_base) << "D=" << d << " gbs=" << gbs;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Devices, VMemoryPropertyTest, ::testing::Values(2, 3, 4));

// DAPPLE-2BP vs plain 1F1B on uniform stages: same model, same plan, same
// devices. The split backward reorders work (BI, next FW, BWW) without
// adding any, so the makespan — and with equal total work, the total
// bubble — can only shrink.
class SplitBwPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SplitBwPropertyTest, SplitBackwardNeverLengthensTheUniformPipeline) {
  const int stages = GetParam();
  const model::ModelProfile m =
      model::MakeUniformSynthetic(stages * 2, 0.002, 0.004, 8u << 20, 1'000'000);
  const topo::Cluster cluster = topo::MakeConfigB(stages);
  const planner::ParallelPlan plan = OneDevicePerStage(stages, 2);
  plan.Validate(m);

  for (const long gbs : {4L, 8L, 16L}) {
    const RunResult base =
        RunSchedule(m, cluster, plan, runtime::ScheduleKind::kDapple, gbs);
    const RunResult split =
        RunSchedule(m, cluster, plan, runtime::ScheduleKind::kDappleSplitBw, gbs);

    // Equal total work is what turns the makespan comparison into a bubble
    // comparison.
    double base_work = 0.0, split_work = 0.0;
    for (const sim::Task& t : base.built.graph.tasks()) base_work += t.duration;
    for (const sim::Task& t : split.built.graph.tasks()) split_work += t.duration;
    EXPECT_NEAR(base_work, split_work, 1e-9);

    EXPECT_LE(split.sim.makespan, base.sim.makespan * (1.0 + 1e-9))
        << "S=" << stages << " gbs=" << gbs;

    // The 2BP stash transient: at most K+1 micro-batches of activations
    // live per stage (the forward that fills the 1F1B slot runs before the
    // trailing weight half frees micro-batch m).
    const Bytes stage_act =
        m.ActivationMemory(0, 2, static_cast<double>(split.built.micro_batch_size));
    for (int i = 0; i < stages; ++i) {
      const sim::MemoryPool& pool = split.sim.pools[static_cast<std::size_t>(i)];
      const int k = split.built.warmup_depths[static_cast<std::size_t>(i)];
      EXPECT_LE(pool.peak() - pool.baseline(),
                static_cast<Bytes>(k + 1) * stage_act)
          << "stage " << i << " gbs=" << gbs;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Stages, SplitBwPropertyTest, ::testing::Values(2, 4));

}  // namespace
}  // namespace dapple
