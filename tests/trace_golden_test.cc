// Golden-file test for the Chrome trace exporter: the paper's Fig. 3
// scenario (two single-device stages, M = 4, DAPPLE early-backward
// schedule) must serialize byte-for-byte to the checked-in JSON. Any
// change to the trace format, the schedule shape, or the engine's
// tie-breaking shows up as a diff here before it reaches users' traces.
//
// To regenerate after an intentional format/schedule change:
//
//   DAPPLE_REGEN_GOLDEN=1 ctest -L golden
//
// then review the diff of tests/golden/fig3_two_stage_m4.json by hand.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "model/zoo.h"
#include "runtime/graph_builder.h"
#include "sim/chrome_trace.h"
#include "sim/engine.h"
#include "topo/cluster.h"
#include "topo/device_set.h"

namespace dapple {
namespace {

std::string GoldenPath() {
  return std::string(DAPPLE_GOLDEN_DIR) + "/fig3_two_stage_m4.json";
}

std::string RenderFig3Trace() {
  // Exact-representable layer times (2 ms / 4 ms) keep the emitted
  // microsecond timestamps integral and platform-independent.
  const auto m = model::MakeUniformSynthetic(4, 0.002, 0.004, 1_MiB, 1'000'000);
  const topo::Cluster cluster = topo::MakeConfigB(2);
  planner::ParallelPlan plan;
  plan.model = m.name();
  plan.stages.push_back({0, 2, topo::DeviceSet::Range(0, 1)});
  plan.stages.push_back({2, 4, topo::DeviceSet::Range(1, 1)});
  runtime::BuildOptions options;
  options.global_batch_size = 4;  // micro-batch size 1 => M = 4
  options.schedule.kind = runtime::ScheduleKind::kDapple;
  const runtime::BuiltPipeline built =
      runtime::GraphBuilder(m, cluster, plan, options).Build();
  const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
  return sim::ToChromeTrace(built.graph, result);
}

TEST(TraceGoldenTest, Fig3TwoStageScheduleMatchesGolden) {
  const std::string trace = RenderFig3Trace();

  if (std::getenv("DAPPLE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    out << trace;
    GTEST_SKIP() << "regenerated " << GoldenPath() << "; review the diff";
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << GoldenPath()
                         << " (regenerate with DAPPLE_REGEN_GOLDEN=1)";
  std::ostringstream golden;
  golden << in.rdbuf();

  EXPECT_EQ(trace, golden.str())
      << "trace output drifted from " << GoldenPath()
      << "; if intentional, regenerate with DAPPLE_REGEN_GOLDEN=1 and review";
}

}  // namespace
}  // namespace dapple
