#include "sim/memory.h"

#include <algorithm>

#include "common/error.h"

namespace dapple::sim {

MemoryPool::MemoryPool(Bytes capacity) : capacity_(capacity) {
  timeline_.push_back({0.0, 0});
}

void MemoryPool::SetBaseline(Bytes bytes) {
  DAPPLE_CHECK_EQ(current_, baseline_) << "baseline set after traffic";
  baseline_ = bytes;
  current_ = bytes;
  peak_ = std::max(peak_, current_);
  timeline_.front().bytes = bytes;
}

void MemoryPool::Allocate(TimeSec now, Bytes bytes) {
  if (bytes == 0) return;
  current_ += bytes;
  if (current_ > peak_) {
    peak_ = current_;
    peak_time_ = now;
  }
  Record(now);
}

void MemoryPool::Free(TimeSec now, Bytes bytes) {
  if (bytes == 0) return;
  DAPPLE_CHECK_GE(current_, baseline_ + bytes)
      << "freeing more activation bytes than allocated";
  current_ -= bytes;
  Record(now);
}

void MemoryPool::Record(TimeSec now) {
  if (!timeline_.empty() && timeline_.back().time == now) {
    timeline_.back().bytes = current_;
  } else {
    timeline_.push_back({now, current_});
  }
}

}  // namespace dapple::sim
