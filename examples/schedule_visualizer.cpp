// Schedule visualizer: renders the DAPPLE vs GPipe execution of any
// benchmark model as an ASCII Gantt chart plus per-device memory
// trajectories — the fastest way to *see* early backward scheduling.
//
// Usage: schedule_visualizer [model-name] [stages] [micro-batches]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "dapple/dapple.h"

using namespace dapple;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "BERT-48";
  const int stages = argc > 2 ? std::atoi(argv[2]) : 4;
  const int micro_batches = argc > 3 ? std::atoi(argv[3]) : 8;

  const model::ModelProfile m = model::ModelByName(name);
  const topo::Cluster cluster = topo::MakeConfigB(stages);

  // Even straight pipeline over `stages` devices.
  planner::ParallelPlan plan;
  plan.model = m.name();
  const int per = m.num_layers() / stages;
  for (int s = 0; s < stages; ++s) {
    planner::StagePlan sp;
    sp.layer_begin = s * per;
    sp.layer_end = s + 1 == stages ? m.num_layers() : (s + 1) * per;
    sp.devices = topo::DeviceSet::Range(s, 1);
    plan.stages.push_back(sp);
  }

  std::printf("%s on %d stages, %d micro-batches of %d\n\n", name.c_str(), stages,
              micro_batches, m.profile_micro_batch());

  for (auto kind : {runtime::ScheduleKind::kGPipe, runtime::ScheduleKind::kDapple}) {
    runtime::BuildOptions o;
    o.global_batch_size = static_cast<long>(micro_batches) * m.profile_micro_batch();
    o.micro_batch_size = m.profile_micro_batch();
    o.schedule.kind = kind;
    o.enforce_memory_capacity = false;
    runtime::PipelineExecutor exec(m, cluster, plan, o);
    const auto detail = exec.RunDetailed();

    std::printf("=== %s: latency %s, avg util %.0f%%, max peak %s ===\n",
                runtime::ToString(kind), FormatTime(detail.report.pipeline_latency).c_str(),
                100 * detail.report.avg_device_utilization,
                FormatBytes(detail.report.max_peak_memory).c_str());
    std::printf("%s", sim::RenderGantt(detail.pipeline.graph, detail.result, 100).c_str());
    std::printf("GPU0 memory:\n%s\n",
                sim::RenderMemoryTimeline(detail.result.pools[0], detail.result.makespan,
                                          100, 5)
                    .c_str());
  }
  std::printf("Digits are forward micro-batches, letters are backwards, '-' transfers,\n"
              "'#' AllReduce, '=' the optimizer apply.\n");
  return 0;
}
