// Tests for the micro-batch schedules (paper SIII / SV-C): warmup depths
// PA/PB, the early-backward interleave, and the GPipe baseline order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>

#include "common/error.h"
#include "runtime/schedule.h"

namespace dapple::runtime {
namespace {

ScheduleOptions Dapple(WarmupPolicy warmup = WarmupPolicy::kPA) {
  ScheduleOptions o;
  o.kind = ScheduleKind::kDapple;
  o.warmup = warmup;
  return o;
}

ScheduleOptions GPipe() {
  ScheduleOptions o;
  o.kind = ScheduleKind::kGPipe;
  return o;
}

TEST(WarmupDepth, PolicyAFormula) {
  // PA: Ki = min(S - i, D) for 4 stages, M large, no memory limit.
  EXPECT_EQ(WarmupDepth(Dapple(), 0, 4, 100, 0), 4);
  EXPECT_EQ(WarmupDepth(Dapple(), 1, 4, 100, 0), 3);
  EXPECT_EQ(WarmupDepth(Dapple(), 3, 4, 100, 0), 1);
}

TEST(WarmupDepth, PolicyBFormula) {
  // PB: Ki = min(2(S - i) - 1, D).
  EXPECT_EQ(WarmupDepth(Dapple(WarmupPolicy::kPB), 0, 4, 100, 0), 7);
  EXPECT_EQ(WarmupDepth(Dapple(WarmupPolicy::kPB), 1, 4, 100, 0), 5);
  EXPECT_EQ(WarmupDepth(Dapple(WarmupPolicy::kPB), 3, 4, 100, 0), 1);
}

TEST(WarmupDepth, MemoryLimitClamps) {
  EXPECT_EQ(WarmupDepth(Dapple(WarmupPolicy::kPB), 0, 4, 100, 2), 2);
  EXPECT_EQ(WarmupDepth(Dapple(), 0, 8, 100, 3), 3);
}

TEST(WarmupDepth, ClampedByMicroBatchCount) {
  EXPECT_EQ(WarmupDepth(Dapple(), 0, 8, 2, 0), 2);
}

TEST(WarmupDepth, GPipeInjectsEverything) {
  EXPECT_EQ(WarmupDepth(GPipe(), 0, 4, 10, 0), 10);
  EXPECT_EQ(WarmupDepth(GPipe(), 3, 4, 10, 2), 10);  // GPipe ignores D
}

TEST(WarmupDepth, ValidatesStageIndex) {
  EXPECT_THROW(WarmupDepth(Dapple(), 4, 4, 10, 0), dapple::Error);
  EXPECT_THROW(WarmupDepth(Dapple(), -1, 4, 10, 0), dapple::Error);
}

// Every order must contain each micro-batch exactly once forward and once
// backward, with FW m before BW m.
void CheckValidOrder(const std::vector<ScheduleStep>& order, int m_total) {
  ASSERT_EQ(order.size(), static_cast<std::size_t>(2 * m_total));
  std::vector<int> fw_pos(static_cast<std::size_t>(m_total), -1);
  std::vector<int> bw_pos(static_cast<std::size_t>(m_total), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    auto& slot = order[i].is_backward ? bw_pos : fw_pos;
    ASSERT_GE(order[i].microbatch, 0);
    ASSERT_LT(order[i].microbatch, m_total);
    ASSERT_EQ(slot[static_cast<std::size_t>(order[i].microbatch)], -1);
    slot[static_cast<std::size_t>(order[i].microbatch)] = static_cast<int>(i);
  }
  for (int m = 0; m < m_total; ++m) {
    EXPECT_LT(fw_pos[static_cast<std::size_t>(m)], bw_pos[static_cast<std::size_t>(m)]);
  }
}

TEST(StageOrder, DappleInterleavesAfterWarmup) {
  // S=2, stage 0, M=6, K=2: F0 F1 B0 F2 B1 F3 B2 F4 B3 F5 B4 B5.
  const auto order = StageOrder(Dapple(), 0, 2, 6, 0);
  CheckValidOrder(order, 6);
  EXPECT_FALSE(order[0].is_backward);
  EXPECT_FALSE(order[1].is_backward);
  EXPECT_TRUE(order[2].is_backward);
  EXPECT_EQ(order[2].microbatch, 0);
  EXPECT_FALSE(order[3].is_backward);
  EXPECT_EQ(order[3].microbatch, 2);
}

TEST(StageOrder, LastStageIsStrict1F1B) {
  // K = 1 at the last stage: F0 B0 F1 B1 ...
  const auto order = StageOrder(Dapple(), 1, 2, 4, 0);
  CheckValidOrder(order, 4);
  for (std::size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(order[i].is_backward, i % 2 == 1);
    EXPECT_EQ(order[i].microbatch, static_cast<int>(i / 2));
  }
}

TEST(StageOrder, GPipeAllForwardThenReverseBackward) {
  const auto order = StageOrder(GPipe(), 0, 3, 4, 0);
  CheckValidOrder(order, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(order[static_cast<std::size_t>(i)].is_backward);
    EXPECT_EQ(order[static_cast<std::size_t>(i)].microbatch, i);
  }
  // Backward in LIFO order: 3, 2, 1, 0.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(order[static_cast<std::size_t>(4 + i)].is_backward);
    EXPECT_EQ(order[static_cast<std::size_t>(4 + i)].microbatch, 3 - i);
  }
}

TEST(StageOrder, InFlightNeverExceedsWarmupDepth) {
  // The defining property of early backward scheduling: at most K
  // activations are live at any point in the order.
  for (int stages : {2, 4, 8}) {
    for (int m_total : {4, 16, 64}) {
      for (auto policy : {WarmupPolicy::kPA, WarmupPolicy::kPB}) {
        for (int i = 0; i < stages; ++i) {
          const int k = WarmupDepth(Dapple(policy), i, stages, m_total, 0);
          const auto order = StageOrder(Dapple(policy), i, stages, m_total, 0);
          int live = 0, max_live = 0;
          for (const ScheduleStep& step : order) {
            live += step.is_backward ? -1 : 1;
            max_live = std::max(max_live, live);
          }
          EXPECT_EQ(max_live, std::min(k, m_total))
              << "S=" << stages << " M=" << m_total << " i=" << i;
        }
      }
    }
  }
}

TEST(StageOrder, GPipeInFlightIsM) {
  const auto order = StageOrder(GPipe(), 0, 4, 16, 0);
  int live = 0, max_live = 0;
  for (const ScheduleStep& step : order) {
    live += step.is_backward ? -1 : 1;
    max_live = std::max(max_live, live);
  }
  EXPECT_EQ(max_live, 16);
}

TEST(StageOrder, SingleMicroBatchDegenerates) {
  for (auto kind : {ScheduleKind::kDapple, ScheduleKind::kGPipe}) {
    ScheduleOptions o;
    o.kind = kind;
    const auto order = StageOrder(o, 0, 2, 1, 0);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_FALSE(order[0].is_backward);
    EXPECT_TRUE(order[1].is_backward);
  }
}

TEST(Names, ToStringStable) {
  EXPECT_STREQ(ToString(ScheduleKind::kDapple), "DAPPLE");
  EXPECT_STREQ(ToString(ScheduleKind::kGPipe), "GPipe");
  EXPECT_STREQ(ToString(ScheduleKind::kDappleSplitBw), "DAPPLE-2BP");
  EXPECT_STREQ(ToString(ScheduleKind::kVMin), "V-Min");
  EXPECT_STREQ(ToString(ScheduleKind::kVHalf), "V-Half");
  EXPECT_STREQ(ToString(WarmupPolicy::kPA), "PA");
  EXPECT_STREQ(ToString(WarmupPolicy::kPB), "PB");
}

// ToString → Parse is a fixed point for every enum value, and the parse is
// case-insensitive, so `dapple plan --schedule v-min` (or V-MIN, or vmin)
// always lands on the kind whose reports print "V-Min".
TEST(Names, ParseToStringFixedPointForEveryKind) {
  for (ScheduleKind kind : AllScheduleKinds()) {
    const std::string name = ToString(kind);
    ScheduleKind parsed = ScheduleKind::kGPipe;
    ASSERT_TRUE(ParseScheduleKind(name, &parsed)) << name;
    EXPECT_EQ(parsed, kind) << name;

    std::string lower = name, upper = name;
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    for (const std::string& variant : {lower, upper}) {
      parsed = ScheduleKind::kGPipe;
      ASSERT_TRUE(ParseScheduleKind(variant, &parsed)) << variant;
      EXPECT_EQ(parsed, kind) << variant;
    }
  }
}

TEST(Names, ParseAcceptsCliAliases) {
  const struct {
    const char* name;
    ScheduleKind want;
  } cases[] = {
      {"dapple", ScheduleKind::kDapple},
      {"1f1b", ScheduleKind::kDapple},
      {"gpipe", ScheduleKind::kGPipe},
      {"dapple-2bp", ScheduleKind::kDappleSplitBw},
      {"dapple_2bp", ScheduleKind::kDappleSplitBw},
      {"2bp", ScheduleKind::kDappleSplitBw},
      {"split-bw", ScheduleKind::kDappleSplitBw},
      {"splitbw", ScheduleKind::kDappleSplitBw},
      {"v-min", ScheduleKind::kVMin},
      {"vmin", ScheduleKind::kVMin},
      {"V-MIN", ScheduleKind::kVMin},
      {"v-half", ScheduleKind::kVHalf},
      {"vhalf", ScheduleKind::kVHalf},
      {"V_Half", ScheduleKind::kVHalf},
  };
  for (const auto& c : cases) {
    ScheduleKind parsed = ScheduleKind::kGPipe;
    ASSERT_TRUE(ParseScheduleKind(c.name, &parsed)) << c.name;
    EXPECT_EQ(parsed, c.want) << c.name;
  }
}

TEST(Names, ParseRejectsUnknownAndLeavesKindUntouched) {
  ScheduleKind parsed = ScheduleKind::kVHalf;
  EXPECT_FALSE(ParseScheduleKind("pipedream", &parsed));
  EXPECT_FALSE(ParseScheduleKind("", &parsed));
  EXPECT_FALSE(ParseScheduleKind("v", &parsed));
  EXPECT_EQ(parsed, ScheduleKind::kVHalf);
}

ScheduleOptions SplitBw(WarmupPolicy warmup = WarmupPolicy::kPA) {
  ScheduleOptions o;
  o.kind = ScheduleKind::kDappleSplitBw;
  o.warmup = warmup;
  return o;
}

// A split-backward order must contain FW m, BI m (is_backward, not
// weight_grad) and BWW m (is_backward and weight_grad) exactly once per
// micro-batch, with FW m < BI m < BWW m.
void CheckValidSplitOrder(const std::vector<ScheduleStep>& order, int m_total) {
  ASSERT_EQ(order.size(), static_cast<std::size_t>(3 * m_total));
  std::vector<int> fw_pos(static_cast<std::size_t>(m_total), -1);
  std::vector<int> bi_pos(static_cast<std::size_t>(m_total), -1);
  std::vector<int> bww_pos(static_cast<std::size_t>(m_total), -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const ScheduleStep& step = order[i];
    ASSERT_GE(step.microbatch, 0);
    ASSERT_LT(step.microbatch, m_total);
    if (step.weight_grad) ASSERT_TRUE(step.is_backward);
    auto& slot = !step.is_backward ? fw_pos : (step.weight_grad ? bww_pos : bi_pos);
    ASSERT_EQ(slot[static_cast<std::size_t>(step.microbatch)], -1);
    slot[static_cast<std::size_t>(step.microbatch)] = static_cast<int>(i);
  }
  for (int m = 0; m < m_total; ++m) {
    const auto mi = static_cast<std::size_t>(m);
    EXPECT_LT(fw_pos[mi], bi_pos[mi]) << "m=" << m;
    EXPECT_LT(bi_pos[mi], bww_pos[mi]) << "m=" << m;
  }
}

TEST(StageOrder, SplitBwSteadyPatternIsBiFwBww) {
  // S=2, stage 0, M=6, K=2: F0 F1 | B0 F2 W0 | B1 F3 W1 | ... — each round
  // the backward-input half runs first (the downstream stage waits on it),
  // the next forward fills the slot, and the weight half trails.
  const auto order = StageOrder(SplitBw(), 0, 2, 6, 0);
  CheckValidSplitOrder(order, 6);
  EXPECT_FALSE(order[0].is_backward);
  EXPECT_FALSE(order[1].is_backward);
  EXPECT_TRUE(order[2].is_backward);
  EXPECT_FALSE(order[2].weight_grad);
  EXPECT_EQ(order[2].microbatch, 0);
  EXPECT_FALSE(order[3].is_backward);
  EXPECT_EQ(order[3].microbatch, 2);
  EXPECT_TRUE(order[4].weight_grad);
  EXPECT_EQ(order[4].microbatch, 0);
}

TEST(StageOrder, SplitBwInFlightTransientIsWarmupPlusOne) {
  // Activations are freed by the weight half, which trails the forward that
  // fills the 1F1B slot — so the stash briefly holds K+1 micro-batches.
  for (int stages : {2, 4}) {
    for (int m_total : {4, 16}) {
      for (int i = 0; i < stages; ++i) {
        const int k = WarmupDepth(SplitBw(), i, stages, m_total, 0);
        const auto order = StageOrder(SplitBw(), i, stages, m_total, 0);
        int live = 0, max_live = 0;
        for (const ScheduleStep& step : order) {
          if (!step.is_backward) ++live;
          if (step.weight_grad) --live;  // BWW frees; BI does not
          max_live = std::max(max_live, live);
        }
        EXPECT_LE(max_live, std::min(k, m_total) + 1)
            << "S=" << stages << " M=" << m_total << " i=" << i;
        EXPECT_GE(max_live, std::min(k, m_total));
      }
    }
  }
}

// Every V group order must run each hosted (chunk, micro-batch) pair once
// forward and once backward with FW first, and the realized per-chunk
// stash depth must respect min(VStashCap, M).
void CheckVSchedule(ScheduleKind kind, int stages, int m_total) {
  SCOPED_TRACE(testing::Message() << ToString(kind) << " S=" << stages
                                  << " M=" << m_total);
  const VSchedule v = BuildVSchedule(kind, stages, m_total);
  ASSERT_EQ(v.group_orders.size(),
            static_cast<std::size_t>(NumGroups(kind, stages)));
  ASSERT_EQ(v.in_flight.size(), static_cast<std::size_t>(stages));
  for (int g = 0; g < NumGroups(kind, stages); ++g) {
    std::vector<int> hosted;
    for (int c = 0; c < stages; ++c) {
      if (HostStage(kind, c, stages) == g) hosted.push_back(c);
    }
    const auto& order = v.group_orders[static_cast<std::size_t>(g)];
    ASSERT_EQ(order.size(), hosted.size() * 2 * static_cast<std::size_t>(m_total));
    for (int c : hosted) {
      std::vector<int> fw_pos(static_cast<std::size_t>(m_total), -1);
      std::vector<int> bw_pos(static_cast<std::size_t>(m_total), -1);
      int live = 0, max_live = 0;
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (order[i].stage != c) continue;
        ASSERT_GE(order[i].microbatch, 0);
        ASSERT_LT(order[i].microbatch, m_total);
        auto& slot = order[i].is_backward ? bw_pos : fw_pos;
        ASSERT_EQ(slot[static_cast<std::size_t>(order[i].microbatch)], -1);
        slot[static_cast<std::size_t>(order[i].microbatch)] = static_cast<int>(i);
        live += order[i].is_backward ? -1 : 1;
        max_live = std::max(max_live, live);
      }
      for (int m = 0; m < m_total; ++m) {
        EXPECT_LT(fw_pos[static_cast<std::size_t>(m)],
                  bw_pos[static_cast<std::size_t>(m)])
            << "chunk " << c << " m=" << m;
      }
      const int cap = std::min(VStashCap(kind, c, stages), m_total);
      EXPECT_LE(max_live, cap) << "chunk " << c;
      EXPECT_EQ(max_live, v.in_flight[static_cast<std::size_t>(c)]) << "chunk " << c;
    }
  }
}

TEST(VSchedule, OrdersAreValidAcrossTheGrid) {
  for (ScheduleKind kind : {ScheduleKind::kVMin, ScheduleKind::kVHalf}) {
    for (int stages = 1; stages <= 8; ++stages) {
      for (int m_total : {1, 2, 4, 8, 16}) {
        CheckVSchedule(kind, stages, m_total);
      }
    }
  }
}

TEST(VSchedule, FoldingPairsFirstAndLastChunks) {
  EXPECT_EQ(NumGroups(ScheduleKind::kVMin, 4), 2);
  EXPECT_EQ(NumGroups(ScheduleKind::kVMin, 5), 3);
  EXPECT_EQ(NumGroups(ScheduleKind::kDapple, 4), 4);
  EXPECT_EQ(HostStage(ScheduleKind::kVMin, 0, 4), 0);
  EXPECT_EQ(HostStage(ScheduleKind::kVMin, 3, 4), 0);
  EXPECT_EQ(HostStage(ScheduleKind::kVMin, 1, 4), 1);
  EXPECT_EQ(HostStage(ScheduleKind::kVMin, 2, 4), 1);
  EXPECT_EQ(HostStage(ScheduleKind::kVMin, 2, 5), 2);  // middle chunk alone
  EXPECT_EQ(HostStage(ScheduleKind::kDapple, 3, 4), 3);
  EXPECT_TRUE(IsVShape(ScheduleKind::kVMin));
  EXPECT_TRUE(IsVShape(ScheduleKind::kVHalf));
  EXPECT_FALSE(IsVShape(ScheduleKind::kDappleSplitBw));
}

TEST(VSchedule, StashCapsMatchTheMemoryDivisor) {
  // V-Half: ceil((S-c)/2); V-Min: ceil((S-c)/3); both floored at 1.
  EXPECT_EQ(VStashCap(ScheduleKind::kVHalf, 0, 6), 3);
  EXPECT_EQ(VStashCap(ScheduleKind::kVHalf, 3, 6), 2);
  EXPECT_EQ(VStashCap(ScheduleKind::kVHalf, 5, 6), 1);
  EXPECT_EQ(VStashCap(ScheduleKind::kVMin, 0, 6), 2);
  EXPECT_EQ(VStashCap(ScheduleKind::kVMin, 3, 6), 1);
  EXPECT_EQ(VStashCap(ScheduleKind::kVMin, 0, 12), 4);
  EXPECT_EQ(VStashCap(ScheduleKind::kVHalf, 0, 12), 6);
}

}  // namespace
}  // namespace dapple::runtime
