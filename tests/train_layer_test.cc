// Layer-level correctness: analytic gradients vs finite differences, loss
// normalization semantics, and optimizer update rules.
#include <gtest/gtest.h>

#include <cmath>

#include "train/layer.h"
#include "train/model.h"
#include "train/optimizer.h"

namespace dapple::train {
namespace {

// Finite-difference check of dLoss/dInput for a single layer, where
// Loss = sum of outputs (grad_out of all ones).
void CheckInputGradient(const Layer& layer, const Tensor& input, float tolerance) {
  Tensor saved;
  const Tensor out = layer.Forward(input, &saved);
  Tensor grad_out(out.rows(), out.cols(), 1.0f);
  LayerGrads grads;
  const Tensor analytic = layer.Backward(saved, grad_out, &grads);

  const float eps = 1e-3f;
  for (std::size_t r = 0; r < input.rows(); ++r) {
    for (std::size_t c = 0; c < input.cols(); ++c) {
      Tensor plus = input, minus = input;
      plus.at(r, c) += eps;
      minus.at(r, c) -= eps;
      double sum_plus = 0, sum_minus = 0;
      const Tensor op = layer.Forward(plus, nullptr);
      const Tensor om = layer.Forward(minus, nullptr);
      for (std::size_t i = 0; i < op.rows(); ++i) {
        for (std::size_t j = 0; j < op.cols(); ++j) {
          sum_plus += op.at(i, j);
          sum_minus += om.at(i, j);
        }
      }
      const float numeric = static_cast<float>((sum_plus - sum_minus) / (2.0 * eps));
      EXPECT_NEAR(analytic.at(r, c), numeric, tolerance)
          << layer.kind() << " at (" << r << "," << c << ")";
    }
  }
}

TEST(Layers, LinearInputGradientMatchesFiniteDifference) {
  Rng rng(11);
  Linear layer(4, 3, rng);
  const Tensor input = Tensor::Random(2, 4, rng, 1.0f);
  CheckInputGradient(layer, input, 2e-2f);
}

TEST(Layers, LinearWeightGradientMatchesFiniteDifference) {
  Rng rng(12);
  Linear layer(3, 2, rng);
  const Tensor input = Tensor::Random(2, 3, rng, 1.0f);
  Tensor saved;
  const Tensor out = layer.Forward(input, &saved);
  Tensor grad_out(out.rows(), out.cols(), 1.0f);
  LayerGrads grads;
  (void)layer.Backward(saved, grad_out, &grads);

  const float eps = 1e-3f;
  Tensor* w = layer.mutable_weight();
  for (std::size_t r = 0; r < w->rows(); ++r) {
    for (std::size_t c = 0; c < w->cols(); ++c) {
      const float orig = w->at(r, c);
      w->at(r, c) = orig + eps;
      double sp = 0;
      const Tensor op = layer.Forward(input, nullptr);
      for (std::size_t i = 0; i < op.size(); ++i) sp += op.data()[i];
      w->at(r, c) = orig - eps;
      double sm = 0;
      const Tensor om = layer.Forward(input, nullptr);
      for (std::size_t i = 0; i < om.size(); ++i) sm += om.data()[i];
      w->at(r, c) = orig;
      EXPECT_NEAR(grads.weight.at(r, c), (sp - sm) / (2 * eps), 2e-2f);
    }
  }
}

TEST(Layers, ReluAndTanhGradients) {
  Rng rng(13);
  const Tensor input = Tensor::Random(3, 4, rng, 1.0f);
  CheckInputGradient(Relu(), input, 2e-2f);
  CheckInputGradient(Tanh(), input, 2e-2f);
}

TEST(Layers, ReluZeroesNegatives) {
  Tensor in(1, 3);
  in.at(0, 0) = -1;
  in.at(0, 1) = 0;
  in.at(0, 2) = 2;
  Tensor saved;
  const Tensor out = Relu().Forward(in, &saved);
  EXPECT_FLOAT_EQ(out.at(0, 0), 0);
  EXPECT_FLOAT_EQ(out.at(0, 2), 2);
}

TEST(Loss, MseValueAndGradient) {
  Tensor pred(2, 1), target(2, 1);
  pred.at(0, 0) = 3;
  pred.at(1, 0) = 1;
  target.at(0, 0) = 1;
  target.at(1, 0) = 1;
  Tensor grad;
  // loss = 0.5*(4+0)/2 = 1; grad = (pred-target)/2.
  const double loss = MseLoss::Compute(pred, target, 2, &grad);
  EXPECT_DOUBLE_EQ(loss, 1.0);
  EXPECT_FLOAT_EQ(grad.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(grad.at(1, 0), 0.0f);
}

TEST(Loss, NormalizationSumsToGlobalMean) {
  // Two half-batches normalized by the full count must sum to the
  // full-batch gradient: the algebra behind gradient accumulation.
  Rng rng(14);
  const Tensor pred = Tensor::Random(4, 2, rng, 1.0f);
  const Tensor target = Tensor::Random(4, 2, rng, 1.0f);
  Tensor g_full;
  MseLoss::Compute(pred, target, 4, &g_full);
  Tensor g0, g1;
  MseLoss::Compute(pred.RowSlice(0, 2), target.RowSlice(0, 2), 4, &g0);
  MseLoss::Compute(pred.RowSlice(2, 4), target.RowSlice(2, 4), 4, &g1);
  const Tensor stacked = Tensor::VStack({g0, g1});
  EXPECT_LT(Tensor::MaxAbsDiff(g_full, stacked), 1e-7f);
}

TEST(Model, CloneIsDeepAndEquivalent) {
  Rng rng(15);
  MlpModel m = MlpModel::MakeMlp(4, 8, 2, 2, rng);
  MlpModel c = m.Clone();
  EXPECT_EQ(MaxGradientDiff(ZeroGradients(m), ZeroGradients(c)), 0.0f);
  // Perturb the clone; the original must not move.
  c.Params()[0]->at(0, 0) += 1.0f;
  EXPECT_NE(m.Params()[0]->at(0, 0), c.Params()[0]->at(0, 0));
}

TEST(Model, ParamsOrderingStable) {
  Rng rng(16);
  MlpModel m = MlpModel::MakeMlp(4, 8, 2, 1, rng);
  // Linear(4->8) + Tanh + Linear(8->2): 4 parameter tensors.
  const auto params = m.Params();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0]->rows(), 4u);  // first weight
  EXPECT_EQ(params[1]->rows(), 1u);  // first bias
  EXPECT_EQ(params[2]->rows(), 8u);  // second weight
}

TEST(Optimizers, SgdStep) {
  Rng rng(17);
  MlpModel m = MlpModel::MakeMlp(2, 2, 1, 1, rng);
  auto params = m.Params();
  const float before = params[0]->at(0, 0);
  GradientVector grads = ZeroGradients(m);
  grads[0].at(0, 0) = 2.0f;
  MakeSgd(0.1f)->Step(params, grads);
  EXPECT_FLOAT_EQ(params[0]->at(0, 0), before - 0.2f);
}

TEST(Optimizers, MomentumAccumulates) {
  Rng rng(18);
  MlpModel m = MlpModel::MakeMlp(2, 2, 1, 1, rng);
  auto params = m.Params();
  const float before = params[0]->at(0, 0);
  GradientVector grads = ZeroGradients(m);
  grads[0].at(0, 0) = 1.0f;
  auto opt = MakeMomentum(0.1f, 0.5f);
  opt->Step(params, grads);
  opt->Step(params, grads);
  // Step 1: v=1, delta=-0.1. Step 2: v=1.5, delta=-0.15.
  EXPECT_NEAR(params[0]->at(0, 0), before - 0.25f, 1e-6f);
}

TEST(Optimizers, AdamFirstStepIsLrSized) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Rng rng(19);
  MlpModel m = MlpModel::MakeMlp(2, 2, 1, 1, rng);
  auto params = m.Params();
  const float before = params[0]->at(0, 0);
  GradientVector grads = ZeroGradients(m);
  grads[0].at(0, 0) = 0.01f;
  MakeAdam(0.1f)->Step(params, grads);
  EXPECT_NEAR(params[0]->at(0, 0), before - 0.1f, 1e-3f);
}

TEST(Optimizers, RmsPropNormalizesScale) {
  Rng rng(20);
  MlpModel m = MlpModel::MakeMlp(2, 2, 1, 1, rng);
  auto params = m.Params();
  GradientVector small = ZeroGradients(m);
  GradientVector large = ZeroGradients(m);
  small[0].at(0, 0) = 0.01f;
  large[0].at(0, 0) = 100.0f;
  MlpModel m2 = m.Clone();
  auto p2 = m2.Params();
  const float b1 = params[0]->at(0, 0);
  MakeRmsProp(0.1f)->Step(params, small);
  MakeRmsProp(0.1f)->Step(p2, large);
  // Both steps are ~lr / sqrt(1-decay) regardless of gradient magnitude.
  EXPECT_NEAR(params[0]->at(0, 0) - b1, p2[0]->at(0, 0) - b1, 1e-3f);
}

}  // namespace
}  // namespace dapple::train
