// Numeric backpropagation executors. Three execution strategies must
// produce bit-comparable gradients at the same global batch (paper §VI-A:
// "all the pipeline latency optimizations ... give equivalent gradients
// for training when keeping global batch size fixed"):
//
//   RunSerial        — whole batch, whole model, one device.
//   RunDataParallel  — batch split over R replicas, gradient accumulation,
//                      AllReduce-style averaging.
//   RunPipelined     — model split into stages; micro-batches walked in the
//                      actual DAPPLE (or GPipe) per-stage order with an
//                      activation stash per in-flight micro-batch, optional
//                      re-computation, and gradient accumulation per stage.
//
// The pipelined executor is a real interpreter of runtime/schedule.h's
// orders: it refuses to execute a step whose inputs have not been produced
// yet, so a schedule that would deadlock on the simulator also deadlocks
// here — and it reports the maximum number of stashed micro-batches, which
// is the numeric counterpart of the simulator's peak-memory claim.
#pragma once

#include <vector>

#include "runtime/schedule.h"
#include "train/model.h"

namespace dapple::train {

struct BackpropResult {
  double loss = 0.0;
  GradientVector grads;  // aligned with MlpModel::Params()
  /// Per computation stage: the largest number of micro-batch activation
  /// stashes simultaneously live (1-stage executions report {1}).
  std::vector<int> max_in_flight;
};

/// Whole-batch forward/backward on the full model.
BackpropResult RunSerial(MlpModel& model, const Tensor& inputs, const Tensor& targets);

/// Data parallelism: rows are split contiguously over `replicas` model
/// copies; each computes gradients for its shard; shards are summed
/// (gradient accumulation + AllReduce) into the global-batch gradient.
BackpropResult RunDataParallel(const MlpModel& model, const Tensor& inputs,
                               const Tensor& targets, int replicas);

struct PipelineRunOptions {
  /// Stage boundaries as layer indices: {0, k1, k2, ..., num_layers}.
  std::vector<int> stage_bounds;
  /// Rows per micro-batch; must divide the batch.
  int micro_batch = 0;
  /// Per-stage replica counts for hybrid pipeline + data parallelism
  /// (paper Fig. 9's split/concat): each micro-batch is row-split into
  /// |replicas| slices, forwarded independently, and re-concatenated at
  /// the next stage boundary; stage gradients are AllReduce-summed.
  /// Empty = 1 replica everywhere. Each count must divide micro_batch.
  std::vector<int> stage_replicas;
  runtime::ScheduleOptions schedule;
};

/// Pipeline-parallel execution following the per-stage schedule orders.
BackpropResult RunPipelined(MlpModel& model, const Tensor& inputs, const Tensor& targets,
                            const PipelineRunOptions& options);

/// Asynchronous PipeDream-style execution for contrast (paper §I): each
/// micro-batch's gradients are applied immediately (no end-of-batch sync),
/// so backward passes of in-flight micro-batches see newer weights unless
/// every in-flight version is stashed. Returns the number of weight
/// versions that had to be kept live — the memory cost the paper's
/// synchronous design eliminates.
struct AsyncResult {
  double loss = 0.0;
  int weight_versions_kept = 0;
};
AsyncResult RunAsyncPipeDream(MlpModel& model, const Tensor& inputs, const Tensor& targets,
                              const PipelineRunOptions& options, float learning_rate);

}  // namespace dapple::train
