#include "common/table.h"

#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace dapple {

AsciiTable::AsciiTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  DAPPLE_CHECK(!headers_.empty()) << "table needs at least one column";
}

void AsciiTable::AddRow(std::vector<std::string> cells) {
  DAPPLE_CHECK_EQ(cells.size(), headers_.size()) << "row arity mismatch";
  rows_.push_back(std::move(cells));
}

void AsciiTable::AddSeparator() { rows_.emplace_back(); }

std::string AsciiTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t w : widths) s += std::string(w + 2, '-') + "+";
    s += "\n";
    return s;
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      s += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    s += "\n";
    return s;
  };

  std::ostringstream os;
  os << rule() << line(headers_) << rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << rule();
    } else {
      os << line(row);
    }
  }
  os << rule();
  return os.str();
}

std::string AsciiTable::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string AsciiTable::Int(long long value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  return buf;
}

}  // namespace dapple
