// Tests for the pipeline-latency estimator: the paper's formulas 1-3 have
// closed forms on simple pipelines which the estimator must reproduce
// exactly, plus the micro-batching rule and memory feasibility.
#include <gtest/gtest.h>

#include "common/error.h"
#include "model/zoo.h"
#include "planner/dp_baseline.h"
#include "planner/latency.h"
#include "topo/cluster.h"

namespace dapple::planner {
namespace {

using model::MakeUniformSynthetic;
using model::ModelProfile;
using topo::Cluster;
using topo::DeviceSet;

// A cluster with effectively free communication isolates the compute-side
// formulas.
Cluster FastCluster(int servers, int gpus) {
  topo::InterconnectSpec net;
  net.intra_server_bandwidth = GBps(1e9);
  net.inter_server_bandwidth = GBps(1e9);
  net.intra_server_latency = 0.0;
  net.inter_server_latency = 0.0;
  return Cluster("fast", servers, gpus, topo::DeviceSpec{}, net);
}

ParallelPlan TwoStagePlan(const ModelProfile& m, int split, int p, int q) {
  ParallelPlan plan;
  plan.model = m.name();
  StagePlan s0;
  s0.layer_begin = 0;
  s0.layer_end = split;
  s0.devices = DeviceSet::Range(0, p);
  StagePlan s1;
  s1.layer_begin = split;
  s1.layer_end = m.num_layers();
  s1.devices = DeviceSet::Range(p, q);
  plan.stages = {s0, s1};
  return plan;
}

TEST(MicroBatching, IdealDividesExactly) {
  // GBS 64, profile 2, widest stage 8 -> mbs 16, M 4.
  const MicroBatching mb = ChooseMicroBatching(64, 2, 8);
  EXPECT_EQ(mb.micro_batch_size, 16);
  EXPECT_EQ(mb.num_micro_batches, 4);
}

TEST(MicroBatching, RoundsUpToNextDivisor) {
  // GBS 64, ideal mbs 22 -> target M ceil(64/22)=3 -> next divisor 4.
  const MicroBatching mb = ChooseMicroBatching(64, 2, 11);
  EXPECT_EQ(mb.num_micro_batches, 4);
  EXPECT_EQ(mb.micro_batch_size, 16);
}

TEST(MicroBatching, ProductAlwaysEqualsGlobalBatch) {
  for (long gbs : {64L, 128L, 1024L, 100L, 96L}) {
    for (int repl : {1, 3, 5, 8, 16}) {
      const MicroBatching mb = ChooseMicroBatching(gbs, 2, repl);
      EXPECT_EQ(static_cast<long>(mb.micro_batch_size) * mb.num_micro_batches, gbs);
    }
  }
}

TEST(MicroBatching, SmallGlobalBatchIsOneMicroBatch) {
  const MicroBatching mb = ChooseMicroBatching(2, 4, 1);
  EXPECT_EQ(mb.num_micro_batches, 1);
  EXPECT_EQ(mb.micro_batch_size, 2);
}

TEST(Latency, SingleStageClosedForm) {
  // One stage on one device: L = M (F + B), no AllReduce.
  const ModelProfile m = MakeUniformSynthetic(4, 0.010, 0.020, 0, 0);
  const Cluster cluster = FastCluster(1, 1);
  LatencyEstimator est(m, cluster);
  ParallelPlan plan;
  plan.model = m.name();
  StagePlan s;
  s.layer_begin = 0;
  s.layer_end = 4;
  s.devices = DeviceSet::Range(0, 1);
  plan.stages = {s};
  const PlanEstimate e = est.Estimate(plan, 8);
  EXPECT_EQ(e.num_micro_batches, 8);
  EXPECT_NEAR(e.latency, 8 * (0.040 + 0.080), 1e-9);
  EXPECT_EQ(e.pivot, 0);
  EXPECT_EQ(e.acr, 0.0);
}

TEST(Latency, TwoEqualStagesClosedForm) {
  // Perfectly even split, free comm: L = 2F + (M-1)(F+B) + 2B where F, B
  // are per-stage times (the classic 1F1B latency).
  const ModelProfile m = MakeUniformSynthetic(4, 0.010, 0.020, 0, 0);
  const Cluster cluster = FastCluster(1, 2);
  LatencyEstimator est(m, cluster);
  const ParallelPlan plan = TwoStagePlan(m, 2, 1, 1);
  const PlanEstimate e = est.Estimate(plan, 8);
  const double f = 0.020, b = 0.040;  // two layers per stage
  EXPECT_EQ(e.num_micro_batches, 8);
  EXPECT_NEAR(e.latency, 2 * f + 7 * (f + b) + 2 * b, 1e-6);
}

TEST(Latency, PivotMovesToSlowestStage) {
  std::vector<StageCost> stages(3);
  stages[0].forward = 0.010;
  stages[0].backward = 0.020;
  stages[1].forward = 0.050;  // dominant stage
  stages[1].backward = 0.100;
  stages[2].forward = 0.010;
  stages[2].backward = 0.020;
  EXPECT_EQ(LatencyEstimator::ChoosePivot(stages, 16), 1);
}

TEST(Latency, PivotStaysLastWhenBalanced) {
  std::vector<StageCost> stages(3);
  for (auto& s : stages) {
    s.forward = 0.010;
    s.backward = 0.020;
  }
  EXPECT_EQ(LatencyEstimator::ChoosePivot(stages, 16), 2);
}

TEST(Latency, PivotSingleMicroBatchDegenerate) {
  std::vector<StageCost> stages(2);
  stages[0].forward = 1.0;
  stages[0].backward = 1.0;
  stages[1].forward = 0.1;
  stages[1].backward = 0.1;
  // M = 1: steady phases are all zero; pivot stays at the last stage.
  EXPECT_EQ(LatencyEstimator::ChoosePivot(stages, 1), 1);
}

TEST(Latency, FewerStagesAreMoreEfficientAtFixedWork) {
  // GPipe/DAPPLE insight (SII-A): pipeline efficiency 1/(1 + (1+a)(S-1)/M)
  // falls with S at fixed M and alpha. Compare straight pipelines of 2, 4,
  // and 8 stages by per-device efficiency (speedup / devices used).
  const ModelProfile m = MakeUniformSynthetic(8, 0.010, 0.020, 0, 0);
  const Cluster cluster = FastCluster(1, 8);
  LatencyEstimator est(m, cluster);

  auto efficiency = [&](int stages) {
    ParallelPlan plan;
    plan.model = m.name();
    const int per = 8 / stages;
    for (int s = 0; s < stages; ++s) {
      StagePlan sp;
      sp.layer_begin = s * per;
      sp.layer_end = (s + 1) * per;
      sp.devices = DeviceSet::Range(s, 1);
      plan.stages.push_back(sp);
    }
    // Same M for all shapes so the comparison isolates S.
    PlanEstimate e = est.Estimate(plan, 16);
    EXPECT_EQ(e.num_micro_batches, 16);
    return e.speedup / stages;
  };
  EXPECT_GT(efficiency(2), efficiency(4));
  EXPECT_GT(efficiency(4), efficiency(8));
}

TEST(Latency, MoreMicroBatchesImproveEfficiency) {
  const ModelProfile m = MakeUniformSynthetic(4, 0.010, 0.020, 0, 0);
  const Cluster cluster = FastCluster(1, 2);
  LatencyEstimator est(m, cluster);
  const ParallelPlan plan = TwoStagePlan(m, 2, 1, 1);
  const PlanEstimate e8 = est.Estimate(plan, 8);
  const PlanEstimate e64 = est.Estimate(plan, 64);
  EXPECT_GT(e64.speedup, e8.speedup);
  EXPECT_LE(e64.speedup, 2.0 + 1e-9);
}

TEST(Latency, AcrReflectsCommComputeRatio) {
  const model::ModelProfile heavy_act =
      MakeUniformSynthetic(4, 0.001, 0.002, 64_MiB, 1000, 1);
  const topo::Cluster slow = topo::MakeConfigC(2);
  LatencyEstimator est(heavy_act, slow);
  const ParallelPlan plan = TwoStagePlan(heavy_act, 2, 1, 1);
  const PlanEstimate e = est.Estimate(plan, 8);
  EXPECT_GT(e.acr, 1.0);  // 64MB over 10Gbps dwarfs 3ms compute

  const model::ModelProfile light_act =
      MakeUniformSynthetic(4, 0.050, 0.100, 1_MiB, 1000, 1);
  LatencyEstimator est2(light_act, slow);
  const PlanEstimate e2 = est2.Estimate(TwoStagePlan(light_act, 2, 1, 1), 8);
  EXPECT_LT(e2.acr, 0.1);
}

TEST(Latency, ExposedAllReduceHidesBehindBackward) {
  // Long backward + small gradients: fully hidden. Short backward + huge
  // gradients: mostly exposed.
  const model::ModelProfile small_grads =
      MakeUniformSynthetic(4, 0.050, 0.100, 0, 1'000'000, 1);
  const topo::Cluster a = topo::MakeConfigA(1);
  LatencyOptions overlap;
  overlap.overlap_allreduce = true;
  LatencyEstimator est(small_grads, a, overlap);
  const TimeSec exposed = est.ExposedAllReduce(0, 4, DeviceSet::Range(0, 8), 1.0);
  EXPECT_LT(exposed, 1e-3);

  const model::ModelProfile big_grads =
      MakeUniformSynthetic(4, 0.0001, 0.0002, 0, 200'000'000, 1);
  LatencyEstimator est2(big_grads, a, overlap);
  const TimeSec exposed2 = est2.ExposedAllReduce(0, 4, DeviceSet::Range(0, 8), 1.0);
  EXPECT_GT(exposed2, 5e-3);
}

TEST(Latency, OverlapNeverWorseThanRaw) {
  const model::ModelProfile m = model::MakeBert48();
  const topo::Cluster a = topo::MakeConfigA(2);
  LatencyOptions no_overlap;
  no_overlap.overlap_allreduce = false;
  LatencyEstimator raw(m, a, no_overlap);
  LatencyEstimator hidden(m, a);
  const TimeSec t_raw = raw.ExposedAllReduce(0, 24, DeviceSet::Range(0, 8), 2.0);
  const TimeSec t_hidden = hidden.ExposedAllReduce(0, 24, DeviceSet::Range(0, 8), 2.0);
  EXPECT_LE(t_hidden, t_raw);
  EXPECT_GT(t_raw, 0.0);
}

TEST(Latency, RecomputeIncreasesBackwardAndShrinksMemory) {
  const model::ModelProfile bert = model::MakeBert48();
  const topo::Cluster b = topo::MakeConfigB(2);
  LatencyOptions plain;
  LatencyOptions rc;
  rc.recompute = true;
  LatencyEstimator est_plain(bert, b, plain);
  LatencyEstimator est_rc(bert, b, rc);
  const ParallelPlan plan = TwoStagePlan(bert, 24, 1, 1);
  const PlanEstimate e_plain = est_plain.Estimate(plan, 16);
  const PlanEstimate e_rc = est_rc.Estimate(plan, 16);
  EXPECT_GT(e_rc.latency, e_plain.latency);
  EXPECT_LT(e_rc.max_peak_memory, e_plain.max_peak_memory);
}

TEST(Latency, DataParallelInfeasibleForAmoebaNet) {
  const model::ModelProfile amoeba = model::MakeAmoebaNet36();
  const topo::Cluster a = topo::MakeConfigA(2);
  const auto dp = EstimateDataParallel(amoeba, a, 128, DataParallelVariant::kOverlap);
  EXPECT_FALSE(dp.feasible);  // Table V: "DP not available due to memory"
}

TEST(Latency, DataParallelOverlapBeatsNoOverlap) {
  const model::ModelProfile vgg = model::MakeVgg19();
  const topo::Cluster b = topo::MakeConfigB(16);
  const auto no = EstimateDataParallel(vgg, b, 2048, DataParallelVariant::kNoOverlap);
  const auto yes = EstimateDataParallel(vgg, b, 2048, DataParallelVariant::kOverlap);
  ASSERT_TRUE(no.feasible);
  ASSERT_TRUE(yes.feasible);
  EXPECT_LT(yes.iteration_time, no.iteration_time);
  EXPECT_GT(yes.speedup, no.speedup);
}

TEST(Latency, VggOverlapIsEspeciallyEffective) {
  // §VI-B: VGG's weights live at the end while compute lives at the front;
  // backward visits the fc layers first, so nearly all gradient traffic
  // hides behind the conv backward. The exposed fraction must be small.
  const model::ModelProfile vgg = model::MakeVgg19();
  const topo::Cluster b = topo::MakeConfigB(16);
  LatencyEstimator est(vgg, b);
  const DeviceSet all = DeviceSet::Range(0, 16);
  const TimeSec raw = comm::CostModel(b).AllReduce(all, vgg.TotalParamBytes());
  const TimeSec exposed = est.ExposedAllReduce(0, vgg.num_layers(), all, 128.0);
  EXPECT_LT(exposed, 0.55 * raw);
}

TEST(Latency, SingleDeviceTimeHandlesRemainders) {
  const ModelProfile m = MakeUniformSynthetic(2, 0.010, 0.020, 0, 0, /*profile_mb=*/4);
  const Cluster cluster = FastCluster(1, 1);
  LatencyEstimator est(m, cluster);
  // 10 samples at profile 4: two full micro-batches + remainder of 2.
  const TimeSec full = est.SingleDeviceTime(8);
  const TimeSec with_rem = est.SingleDeviceTime(10);
  EXPECT_GT(with_rem, full);
  EXPECT_LT(with_rem, est.SingleDeviceTime(12) + 1e-12);
}

TEST(Latency, EstimateValidatesPlan) {
  const ModelProfile m = MakeUniformSynthetic(4, 0.01, 0.02, 0, 0);
  const Cluster cluster = FastCluster(1, 2);
  LatencyEstimator est(m, cluster);
  ParallelPlan bad;
  bad.model = m.name();
  StagePlan s;
  s.layer_begin = 1;  // does not start at 0
  s.layer_end = 4;
  s.devices = DeviceSet::Range(0, 1);
  bad.stages = {s};
  EXPECT_THROW(est.Estimate(bad, 8), dapple::Error);
}

}  // namespace
}  // namespace dapple::planner
