#include "scenario/report.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "fault/report.h"
#include "obs/json.h"

namespace dapple::scenario {

namespace {

double FiniteOr(double v, double fallback) { return std::isfinite(v) ? v : fallback; }

void WriteEpisode(obs::JsonWriter& w, const EpisodeReport& report) {
  w.BeginObject();
  w.Field("seed", static_cast<std::int64_t>(report.seed));
  w.Field("churn", ToString(report.churn));
  w.Field("policy", fault::ToString(report.fault.policy));
  w.Field("preemptions", report.preemptions);
  w.Field("rejoins", report.rejoins);
  w.Field("slowdown_windows", report.slowdown_windows);
  w.Field("utilization", report.utilization);
  w.Key("experiment").BeginObject();
  w.Field("final_plan", report.fault.final_plan);
  w.Field("horizon", report.fault.horizon);
  w.Field("iterations_completed", report.fault.iterations_completed);
  w.Field("goodput", report.fault.goodput);
  w.Field("goodput_loss", report.fault.goodput_loss);
  w.Field("recovered", report.fault.recovered);
  w.Field("time_to_recover", FiniteOr(report.fault.time_to_recover, -1.0));
  w.Field("replans", report.fault.replans);
  w.Field("checkpoints", report.fault.checkpoints);
  w.Field("restores", report.fault.restores);
  w.Field("iterations_lost", report.fault.iterations_lost);
  if (report.fault.scale_ups > 0) {
    w.Field("scale_ups", report.fault.scale_ups);
    w.Field("max_scale_up_rollback", report.fault.max_scale_up_rollback);
  }
  w.Key("faults").BeginArray();
  for (const fault::FaultEvent& e : report.fault.script.events) w.Value(e.ToString());
  w.EndArray();
  w.EndObject();
  w.EndObject();
}

}  // namespace

std::string ToJson(const EpisodeReport& report) {
  obs::JsonWriter w;
  WriteEpisode(w, report);
  return w.str();
}

std::string ToText(const EpisodeReport& report) {
  std::ostringstream os;
  char line[256];
  os << "episode seed=" << report.seed << " churn=" << ToString(report.churn) << "\n";
  std::snprintf(line, sizeof(line), "  %-22s %4d preemptions, %d rejoins, %d slowdowns\n",
                "churn stream", report.preemptions, report.rejoins,
                report.slowdown_windows);
  os << line;
  std::snprintf(line, sizeof(line), "  %-22s %12.2f %%\n", "utilization",
                100.0 * report.utilization);
  os << line;
  os << fault::ToText(report.fault);
  return os.str();
}

std::string ToChromeTrace(const EpisodeReport& report) {
  return fault::ToChromeTrace(report.fault);
}

std::string ToJson(const std::vector<EpisodeReport>& reports) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("episodes").BeginArray();
  for (const EpisodeReport& report : reports) WriteEpisode(w, report);
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string ToJson(const CoScheduleReport& report) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("jobs").BeginArray();
  for (const JobAssignment& job : report.jobs) {
    w.BeginObject();
    w.Field("name", job.name);
    w.Field("server_begin", job.server_begin);
    w.Field("servers", job.servers);
    w.Field("plan", job.plan.ToString());
    w.Field("iteration_time", job.iteration_time);
    w.Field("makespan", job.makespan);
    w.EndObject();
  }
  w.EndArray();
  w.Key("results").BeginObject();
  w.Field("aggregate_makespan", report.aggregate_makespan);
  w.Field("naive_even_makespan", report.naive_even_makespan);
  w.Field("utilization", report.utilization);
  w.Field("preemptions", report.preemptions);
  w.Field("greedy_steps", report.greedy_steps);
  w.Field("exchange_moves", report.exchange_moves);
  w.Field("cache_hits", static_cast<std::int64_t>(report.cache_hits));
  w.Field("cache_misses", static_cast<std::int64_t>(report.cache_misses));
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string ToText(const CoScheduleReport& report) {
  std::ostringstream os;
  char line[256];
  os << "co-schedule: " << report.jobs.size() << " jobs\n";
  for (const JobAssignment& job : report.jobs) {
    std::snprintf(line, sizeof(line), "  %-12s servers [%d, %d)  iter %10.6g s  makespan %10.6g s  %s\n",
                  job.name.c_str(), job.server_begin, job.server_begin + job.servers,
                  job.iteration_time, job.makespan, job.plan.ToString().c_str());
    os << line;
  }
  std::snprintf(line, sizeof(line), "  %-22s %12.6g s\n", "aggregate makespan",
                report.aggregate_makespan);
  os << line;
  std::snprintf(line, sizeof(line), "  %-22s %12.6g s\n", "naive even split",
                report.naive_even_makespan);
  os << line;
  std::snprintf(line, sizeof(line), "  %-22s %12.2f %%\n", "utilization",
                100.0 * report.utilization);
  os << line;
  std::snprintf(line, sizeof(line), "  %-22s %4d greedy, %d exchanges, %d preemptions\n",
                "search", report.greedy_steps, report.exchange_moves, report.preemptions);
  os << line;
  std::snprintf(line, sizeof(line), "  %-22s %4ld hits / %ld misses\n", "plan cache",
                report.cache_hits, report.cache_misses);
  os << line;
  return os.str();
}

}  // namespace dapple::scenario
