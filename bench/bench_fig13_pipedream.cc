// Fig. 13: DAPPLE's plan vs PipeDream's strategy, both executed under the
// DAPPLE synchronous runtime, on 2x8 and 4x8 Config-A clusters.
#include "harness.h"

#include <cstdio>

#include "common/table.h"
#include "planner/torchgpipe_planner.h"

using namespace dapple;

int main() {
  bench::PrintHeader("Fig. 13 — DAPPLE vs PipeDream strategies under sync runtime",
                     "DAPPLE paper, Fig. 13");

  struct Row {
    const char* name;
    long gbs;
    double paper_2x8_ratio;  // DAPPLE over PipeDream-strategy speedup, 2x8
  };
  const Row rows[] = {{"XLNet-36", 128, 14.9 / 8.6},
                      {"BERT-Large", 128, 14.5 / 11.5},
                      {"AmoebaNet-36", 128, 11.6 / 6.3},
                      {"VGG-19", 1024, 9.6 / 3.0}};

  for (int servers : {2, 4}) {
    const topo::Cluster cluster = topo::MakeConfigA(servers);
    std::printf("\n%dx8 cluster (%d GPUs)\n", servers, cluster.num_devices());
    AsciiTable table({"Model", "DAPPLE speedup", "w/ PipeDream strategy",
                      "w/ torchgpipe strategy", "ratio vs PipeDream",
                      "paper ratio (2x8)"});
    for (const Row& row : rows) {
      const model::ModelProfile m = model::ModelByName(row.name);
      Session session(m, cluster);
      // Few stages win (SIV-D); capping the search keeps the 4x8 sweep
      // fast without changing the chosen plans.
      planner::PlannerOptions opts;
      opts.max_stages = 4;
      opts.prune_slack = 1.3;
      const auto ours = session.Plan(row.gbs, opts);
      const auto ours_run = session.Run(ours.plan, row.gbs);

      planner::PipedreamPlanner pipedream(m, cluster);
      const auto theirs = pipedream.Plan();
      const auto theirs_run = session.Run(theirs, row.gbs);

      planner::TorchGpipePlanner torchgpipe(m, cluster);
      const auto tg_run = session.Run(torchgpipe.Plan(), row.gbs);

      table.AddRow({row.name, AsciiTable::Num(ours_run.speedup, 1),
                    AsciiTable::Num(theirs_run.speedup, 1),
                    AsciiTable::Num(tg_run.speedup, 1),
                    AsciiTable::Num(ours_run.speedup / theirs_run.speedup, 2) + "x",
                    servers == 2 ? AsciiTable::Num(row.paper_2x8_ratio, 2) + "x" : "-"});
    }
    std::printf("%s", table.ToString().c_str());
  }
  std::printf("\nShape check: DAPPLE's strategies consistently beat PipeDream's under\n"
              "synchronous training (paper: up to 3.23x), with the largest gaps on\n"
              "models where PipeDream picks deep straight pipelines or replicates\n"
              "parameter-heavy stages across machines.\n");
  return 0;
}
