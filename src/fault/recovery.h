// Recovery-policy experiments: run a training timeline iteration by
// iteration under a fault script and measure what each policy salvages.
//
// Four policies, in increasing sophistication:
//   kSyncStall         — do nothing. Synchronous training runs at the
//                        straggler's pace; a fail-stop crash halts the job
//                        for good (an outage with a rejoin merely freezes
//                        it for the outage's duration).
//   kCheckpointRestart — checkpoint every N iterations (paying a cost),
//                        and on a crash roll back to the last checkpoint,
//                        pay a restore cost, and continue on a structurally
//                        remapped plan (same layer split, fewer devices).
//   kElasticReplan     — on any detected cluster-state change, re-run the
//                        DAPPLE planner against the degraded cluster (dead
//                        servers excluded, stragglers as speed multipliers)
//                        and continue with the new plan. The paper's DP
//                        planner is cheap enough to re-run online. Has no
//                        state-migration path onto *new* hardware, so its
//                        control-plane view treats crashes as permanent
//                        even when the script later rejoins the device.
//   kElasticUp         — elastic replan that also scales *up*: when a
//                        crashed device rejoins, re-run the planner on the
//                        grown cluster and migrate via a checkpoint-bounded
//                        cutover — pay replan + restore and roll back to
//                        the last periodic checkpoint, so a scale-up never
//                        loses more than checkpoint_period iterations.
//
// Everything is simulated time: detection latency, restore and replan costs
// are configured constants, so identical (plan, script, options) produce a
// byte-identical report.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fault/degrade.h"
#include "fault/script.h"
#include "model/profile.h"
#include "planner/dp_planner.h"
#include "planner/plan.h"
#include "runtime/graph_builder.h"
#include "topo/cluster.h"

namespace dapple::fault {

enum class RecoveryPolicy { kSyncStall, kCheckpointRestart, kElasticReplan, kElasticUp };

const char* ToString(RecoveryPolicy policy);
/// Parses "stall" / "checkpoint" / "replan" / "elastic-up"; throws
/// dapple::Error otherwise.
RecoveryPolicy ParseRecoveryPolicy(const std::string& name);

/// Every policy, in enum order (sweeps and CLIs iterate this).
std::vector<RecoveryPolicy> AllRecoveryPolicies();

struct FaultOptions {
  /// Simulated experiment length. 0 = 25x the healthy iteration time.
  TimeSec horizon = 0.0;
  /// Safety cap on simulated iterations.
  int max_iterations = 1000;
  /// Checkpoint every N iterations (checkpoint–restart and elastic-up,
  /// which needs a recent checkpoint to bound its scale-up cutover).
  int checkpoint_period = 5;
  TimeSec checkpoint_cost = 0.2;
  TimeSec restore_cost = 2.0;
  /// Time from a fail-stop to the control plane noticing it.
  TimeSec detect_latency = 0.5;
  /// Simulated cost of one planner run plus state migration (elastic
  /// replan). A constant, not measured wall clock, for reproducibility.
  TimeSec replan_cost = 1.0;
  /// Planner configuration for elastic replans.
  planner::PlannerOptions planner;
  /// Pipeline build configuration (micro-batching, schedule).
  runtime::BuildOptions build;
  /// Called for every pipeline the experiment runs (initial, remapped and
  /// replanned), with the cluster it was built for. check/fuzz hangs the
  /// ScheduleValidator here; fault itself must not depend on check.
  std::function<void(const runtime::BuiltPipeline&, const planner::ParallelPlan&,
                     const topo::Cluster&)>
      pipeline_observer;
};

/// One row of the experiment timeline, in absolute simulated time.
struct TimelineRow {
  /// "iteration" | "checkpoint" | "restore" | "replan" | "scale-up" | "stall"
  std::string kind;
  TimeSec start = 0.0;
  TimeSec end = 0.0;
  int iteration = -1;  // completed-iteration index; -1 for non-iteration rows
  std::string note;
};

struct FaultReport {
  RecoveryPolicy policy = RecoveryPolicy::kSyncStall;
  std::string model;
  std::string cluster;
  std::string initial_plan;
  std::string final_plan;
  FaultScript script;
  long global_batch_size = 0;
  TimeSec horizon = 0.0;

  TimeSec healthy_iteration_time = 0.0;
  /// Samples/sec with no faults.
  double healthy_throughput = 0.0;

  int iterations_completed = 0;
  /// Samples/sec actually achieved over the horizon — the headline metric.
  double goodput = 0.0;
  /// 1 - goodput / healthy_throughput.
  double goodput_loss = 0.0;
  /// First fault onset to the end of the first iteration that runs clean
  /// under the policy's final configuration; +inf when that never happens
  /// (sync-stall after a crash, or a persistent straggler it cannot dodge).
  TimeSec time_to_recover = 0.0;
  bool recovered = false;
  /// Samples/sec from the start of the first recovered iteration to the end
  /// of the horizon; 0 when never recovered.
  double post_fault_throughput = 0.0;

  int replans = 0;
  int checkpoints = 0;
  int restores = 0;
  /// Iterations whose work was thrown away (rollback or crash abort).
  int iterations_lost = 0;
  /// Elastic-up only: growth cutovers taken (replan onto a grown cluster).
  int scale_ups = 0;
  /// Elastic-up only: the largest rollback any single scale-up cutover paid,
  /// in iterations — bounded by checkpoint_period by construction.
  int max_scale_up_rollback = 0;

  std::vector<TimelineRow> timeline;
};

/// Runs the iteration loop for one policy. The plan is the healthy-cluster
/// plan the job started with (typically the DAPPLE planner's winner).
/// Deterministic: no wall clock, no global state.
FaultReport RunFaultExperiment(const model::ModelProfile& model, const topo::Cluster& cluster,
                               const planner::ParallelPlan& plan, const FaultScript& script,
                               RecoveryPolicy policy, const FaultOptions& options);

/// Runs one experiment per policy on a sim::BatchRunner (`sim_threads`:
/// 1 = inline serial, 0 = hardware concurrency). Each experiment is
/// deterministic and self-contained, so reports come back in `policies`
/// order and byte-identical at every thread count. When `sim_threads` > 1
/// a configured pipeline_observer runs concurrently from worker threads
/// and must be thread-safe.
std::vector<FaultReport> RunFaultPolicySweep(const model::ModelProfile& model,
                                             const topo::Cluster& cluster,
                                             const planner::ParallelPlan& plan,
                                             const FaultScript& script,
                                             const std::vector<RecoveryPolicy>& policies,
                                             const FaultOptions& options, int sim_threads = 1);

}  // namespace dapple::fault
