#include "serve/transport.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <vector>

#include "common/error.h"

namespace dapple::serve {

namespace {

[[noreturn]] void ThrowErrno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

}  // namespace

long ServeStream(std::istream& in, std::ostream& out, Server& server) {
  const int max_batch = std::max(1, server.options().max_batch);
  long handled = 0;
  std::string line;
  std::vector<std::string> batch;
  while (std::getline(in, line)) {
    batch.clear();
    batch.push_back(line);
    // Drain whatever further lines are already buffered so concurrent
    // clients writing ahead get their requests fanned across the pool.
    while (static_cast<int>(batch.size()) < max_batch &&
           in.rdbuf()->in_avail() > 0 && std::getline(in, line)) {
      batch.push_back(line);
    }
    for (const std::string& response : server.HandleBatch(batch)) {
      out << response << '\n';
    }
    out.flush();
    handled += static_cast<long>(batch.size());
  }
  return handled;
}

namespace {

/// NDJSON loop over a connected socket fd: accumulate bytes, split on
/// '\n', dispatch complete lines in greedy batches.
long ServeConnection(int fd, Server& server) {
  const std::size_t max_batch =
      static_cast<std::size_t>(std::max(1, server.options().max_batch));
  long handled = 0;
  std::string buffer;
  std::vector<std::string> pending;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) open = false;  // EOF: fall through to flush pending lines
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      pending.push_back(buffer.substr(start, nl - start));
      start = nl + 1;
    }
    buffer.erase(0, start);

    while (!pending.empty()) {
      const std::size_t take = std::min(pending.size(), max_batch);
      std::vector<std::string> batch(pending.begin(),
                                     pending.begin() + static_cast<long>(take));
      pending.erase(pending.begin(), pending.begin() + static_cast<long>(take));
      std::string reply;
      for (const std::string& response : server.HandleBatch(batch)) {
        reply += response;
        reply += '\n';
      }
      handled += static_cast<long>(batch.size());
      std::size_t off = 0;
      while (off < reply.size()) {
        const ssize_t wrote = ::write(fd, reply.data() + off, reply.size() - off);
        if (wrote < 0) {
          if (errno == EINTR) continue;
          return handled;
        }
        off += static_cast<std::size_t>(wrote);
      }
    }
  }
  return handled;
}

long ServeListener(int listen_fd, Server& server, int max_connections) {
  long handled = 0;
  for (int accepted = 0; max_connections <= 0 || accepted < max_connections;
       ++accepted) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) { --accepted; continue; }
      ::close(listen_fd);
      ThrowErrno("accept failed");
    }
    handled += ServeConnection(fd, server);
    ::close(fd);
  }
  ::close(listen_fd);
  return handled;
}

}  // namespace

long ServeUnixSocket(const std::string& path, Server& server, int max_connections) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    throw Error("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket failed");
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    ThrowErrno("bind failed for " + path);
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    ThrowErrno("listen failed for " + path);
  }
  const long handled = ServeListener(fd, server, max_connections);
  ::unlink(path.c_str());
  return handled;
}

long ServeTcp(int port, Server& server, int max_connections) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) ThrowErrno("socket failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    ThrowErrno("bind failed for port " + std::to_string(port));
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    ThrowErrno("listen failed for port " + std::to_string(port));
  }
  return ServeListener(fd, server, max_connections);
}

}  // namespace dapple::serve
