// Analytic candidate ranking with a provable top-K simulation pre-filter.
//
// RankCandidates scores every (plan, global batch) candidate with the
// analytic LatencyEstimator — microseconds per candidate — and hands the
// scores to sim::PrefilterBatch, which simulates only the candidates whose
// score lands within the bracket-derived band of the analytic minimum. The
// caller supplies the simulate callback (building task graphs needs the
// runtime layer, which sits above the planner), so this header stays a
// pure planner/sim composition.
//
// The cut derives from the two calibrated analytic/sim brackets
// (check/fuzz.h): on DAPPLE split-mode plans without a warmup override,
// analytic <= kAnalyticOverSim x sim and sim <= kSimOverAnalytic x analytic.
// The adaptive cut (sim/prefilter.h) simulates only candidates scoring
// within kAnalyticOverSim x (best simulated makespan); its keep-set never
// exceeds the static worst-case band of
// kAnalyticOverSim x kSimOverAnalytic = 2.6x over the analytic argmin, and
// the true sim-best provably survives either cut. Candidates outside the
// calibrated family void the guarantee; widen
// RankingOptions::analytic_over_sim or disable the prefilter there.
#pragma once

#include <functional>
#include <vector>

#include "planner/latency.h"
#include "planner/plan.h"
#include "sim/prefilter.h"

namespace dapple::planner {

/// Analytic-over-sim bracket factor the adaptive cut uses. Mirrors
/// check::kAnalyticOverSimCommTolerance — the fuzz harness pins the bracket
/// itself, tests/prefilter_test.cc pins this mirror (planner cannot include
/// check headers; check links planner, not the reverse).
inline constexpr double kPrefilterAnalyticOverSim = 1.30;
/// Sim-over-analytic bracket factor; mirrors check::kSimOverAnalyticTolerance.
inline constexpr double kPrefilterSimOverAnalytic = 2.0;
/// The static worst-case keep band: the adaptive cut's keep-set is always
/// within this multiple of the minimum analytic score, and so is the true
/// sim-best candidate.
inline constexpr double kPrefilterBand =
    kPrefilterAnalyticOverSim * kPrefilterSimOverAnalytic;

/// One ranking candidate: a plan evaluated at a global batch size.
struct RankingCandidate {
  ParallelPlan plan;
  long global_batch_size = 0;
};

struct RankingOptions {
  /// False simulates every feasible candidate (the --prefilter=off oracle).
  bool prefilter = true;
  /// Bracket factor for the adaptive cut (see sim::PrefilterOptions).
  double analytic_over_sim = kPrefilterAnalyticOverSim;
  /// Phase-1 probe simulations anchoring the cut.
  int probe = 8;
  /// Worker threads for both the scoring pass and the simulations.
  int threads = 1;
};

struct RankingResult {
  /// Analytic latency per candidate; +infinity when the estimator declared
  /// the candidate infeasible (such candidates are never simulated and
  /// never win).
  std::vector<double> scores;
  /// Selection and simulated values (indices into the candidate vector).
  sim::PrefilterResult sim;
  /// Winning candidate index (== sim.best); -1 when nothing was rankable.
  int best = -1;
};

/// Scores all candidates with `estimator`, then simulates the surviving
/// band through `simulate` (candidate index -> simulated makespan).
/// Deterministic at every thread count.
RankingResult RankCandidates(const LatencyEstimator& estimator,
                             const std::vector<RankingCandidate>& candidates,
                             const std::function<double(int)>& simulate,
                             const RankingOptions& options = {});

}  // namespace dapple::planner
