// Umbrella header and top-level facade for the DAPPLE library.
//
// Typical use (see examples/quickstart.cc):
//
//   auto model = dapple::model::MakeBert48();
//   auto cluster = dapple::topo::MakeConfigA(/*num_servers=*/2);
//   dapple::Session session(model, cluster);
//   auto planned = session.Plan(/*global_batch_size=*/64);
//   auto report = session.Run(planned.plan, /*global_batch_size=*/64);
//
// The Session wires the three paper components together: the profiler
// (model statistics), the planner (partition/replication/placement DP) and
// the runtime (early-backward-scheduled pipelined execution on the
// simulator).
#pragma once

#include "check/fuzz.h"
#include "check/validator.h"
#include "comm/cost_model.h"
#include "fault/degrade.h"
#include "fault/recovery.h"
#include "fault/report.h"
#include "fault/script.h"
#include "model/profile.h"
#include "model/profiler.h"
#include "model/zoo.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "planner/dp_baseline.h"
#include "planner/dp_planner.h"
#include "planner/latency.h"
#include "planner/pipedream_planner.h"
#include "planner/torchgpipe_planner.h"
#include "planner/plan.h"
#include "planner/plan_io.h"
#include "runtime/executor.h"
#include "runtime/graph_builder.h"
#include "runtime/schedule.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "topo/assignment.h"
#include "topo/cluster.h"
#include "topo/device_set.h"

namespace dapple {

/// End-to-end facade: profile -> plan -> run for one (model, cluster).
class Session {
 public:
  Session(model::ModelProfile model, topo::Cluster cluster);

  const model::ModelProfile& model() const { return model_; }
  const topo::Cluster& cluster() const { return cluster_; }

  /// Table II style summary of the model on this cluster's device.
  model::ProfileReport Profile() const;

  /// Runs the DAPPLE planner at a global batch size. If no plan fits
  /// device memory without re-computation, retries with re-computation
  /// enabled (the paper's Table VIII operating mode); the chosen latency
  /// options are reflected in the result's estimate.
  planner::PlanResult Plan(long global_batch_size,
                           planner::PlannerOptions options = {}) const;

  /// Executes one training iteration of a plan on the simulated cluster.
  runtime::IterationReport Run(const planner::ParallelPlan& plan, long global_batch_size,
                               runtime::BuildOptions options = {}) const;

  /// Convenience: plan then run at the same global batch size.
  runtime::IterationReport PlanAndRun(long global_batch_size) const;

 private:
  model::ModelProfile model_;
  topo::Cluster cluster_;
};

}  // namespace dapple
