// Exhaustive equivalence sweep: on every small instance (≤ 4 devices,
// ≤ 6 layers) the DP planner must find exactly the brute-force optimum,
// not merely stay within a factor of it. The models are compute-heavy
// (small parameter counts, so gradient sync never dominates), where every
// optimal plan uses all devices — the family on which the DP's
// all-free-devices final stage is lossless and the memoization must be
// exact. Pruning is disabled so any gap is the canonicalization itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "fault/degrade.h"
#include "model/zoo.h"
#include "planner/bruteforce.h"
#include "planner/dp_planner.h"
#include "topo/assignment.h"
#include "topo/cluster.h"

namespace dapple::planner {
namespace {

std::vector<topo::Cluster> SmallClusters() {
  std::vector<topo::Cluster> clusters;
  for (int servers = 2; servers <= 4; ++servers) {
    clusters.push_back(topo::MakeConfigB(servers));
  }
  clusters.push_back(topo::MakeConfigC(3));
  // Multi-GPU servers: the three placement policies produce genuinely
  // different device sets here (NVLink inside, Ethernet across).
  clusters.push_back(topo::Cluster("2x2", 2, 2, topo::DeviceSpec{},
                                   topo::InterconnectSpec{}));
  return clusters;
}

std::vector<model::ModelProfile> SmallModels(int layers) {
  std::vector<model::ModelProfile> models;
  models.push_back(model::MakeUniformSynthetic(layers, 0.01, 0.02, 1_MiB, 2'000'000, 1));
  // Skewed compute: late layers 3x the early ones, pushing the optimal
  // split point off-center.
  std::vector<model::LayerProfile> list;
  for (int i = 0; i < layers; ++i) {
    model::LayerProfile l;
    l.name = "s" + std::to_string(i);
    l.forward_time = i < layers / 2 ? 0.005 : 0.015;
    l.backward_time = l.forward_time * 2;
    l.output_activation = 1_MiB;
    l.activation_memory = 2_MiB;
    l.param_count = 1'500'000;
    list.push_back(std::move(l));
  }
  models.emplace_back("skewed", std::move(list), 1, model::OptimizerKind::kSGD);
  return models;
}

TEST(PlannerEquivalenceTest, DpMatchesBruteForceOnAllSmallInstances) {
  int instances = 0;
  for (const topo::Cluster& cluster : SmallClusters()) {
    for (int layers = 2; layers <= 6; ++layers) {
      for (const model::ModelProfile& m : SmallModels(layers)) {
        const int max_stages = std::min({layers, cluster.num_devices(), 4});

        BruteForceOptions bf;
        bf.global_batch_size = 8;
        bf.max_stages = max_stages;
        const PlanResult optimal = BruteForcePlanner(m, cluster, bf).Plan();

        PlannerOptions dp;
        dp.global_batch_size = 8;
        dp.max_stages = max_stages;
        dp.prune_slack = 0;  // no pruning: test the memoization alone
        const PlanResult ours = DapplePlanner(m, cluster, dp).Plan();

        EXPECT_NEAR(ours.estimate.latency, optimal.estimate.latency, 1e-9)
            << m.name() << " x" << layers << "L on " << cluster.name() << ": dp="
            << ours.plan.ToString() << " optimal=" << optimal.plan.ToString();
        ++instances;
      }
    }
  }
  EXPECT_EQ(instances, 50);  // 5 clusters x 5 layer counts x 2 models
}

TEST(PlannerEquivalenceTest, ParallelSearchMatchesBruteForceToo) {
  // The brute-force equivalence holds through the parallel code path as
  // well: 8 worker threads, memo cache on, same optimum to the bit. This is
  // stronger than the determinism sweep (parallel == serial) because the
  // reference here is an independent enumerator, not the serial DP.
  int instances = 0;
  for (const topo::Cluster& cluster : SmallClusters()) {
    for (int layers = 3; layers <= 6; layers += 3) {
      for (const model::ModelProfile& m : SmallModels(layers)) {
        const int max_stages = std::min({layers, cluster.num_devices(), 4});

        BruteForceOptions bf;
        bf.global_batch_size = 8;
        bf.max_stages = max_stages;
        const PlanResult optimal = BruteForcePlanner(m, cluster, bf).Plan();

        PlannerOptions dp;
        dp.global_batch_size = 8;
        dp.max_stages = max_stages;
        dp.prune_slack = 0;
        dp.num_threads = 8;
        const PlanResult ours = DapplePlanner(m, cluster, dp).Plan();

        EXPECT_NEAR(ours.estimate.latency, optimal.estimate.latency, 1e-9)
            << m.name() << " x" << layers << "L on " << cluster.name()
            << " (8 threads): dp=" << ours.plan.ToString()
            << " optimal=" << optimal.plan.ToString();
        ++instances;
      }
    }
  }
  EXPECT_EQ(instances, 20);  // 5 clusters x 2 layer counts x 2 models
}

TEST(PlannerEquivalenceTest, DegradedClusterWithDeadServerStaysOptimal) {
  // Elastic replan edge case: a whole server dies, the fault layer builds a
  // dense survivor cluster, and the planner re-runs on it. The replan must
  // still be the exact optimum for the degraded topology — through both the
  // serial and the parallel path. A 3-server Config-B cluster losing one
  // server leaves an asymmetric 2-device remainder, the shape a buggy
  // canonicalization would mishandle.
  const topo::Cluster cluster = topo::MakeConfigB(3);
  const auto m = model::MakeUniformSynthetic(4, 0.01, 0.02, 1_MiB, 2'000'000, 1);

  for (topo::DeviceId dead = 0; dead < cluster.num_devices(); ++dead) {
    fault::ClusterState state;
    state.device_dead.assign(static_cast<std::size_t>(cluster.num_devices()), false);
    state.device_dead[static_cast<std::size_t>(dead)] = true;
    state.server_compute.assign(static_cast<std::size_t>(cluster.num_servers()), 1.0);
    state.server_bandwidth.assign(static_cast<std::size_t>(cluster.num_servers()), 1.0);
    state.server_extra_latency.assign(static_cast<std::size_t>(cluster.num_servers()), 0.0);
    const fault::DegradedCluster degraded = fault::MakeDegradedCluster(cluster, state);
    ASSERT_TRUE(degraded.feasible);
    ASSERT_EQ(degraded.cluster.num_devices(), cluster.num_devices() - 1);

    BruteForceOptions bf;
    bf.global_batch_size = 8;
    bf.max_stages = 2;
    const PlanResult optimal = BruteForcePlanner(m, degraded.cluster, bf).Plan();

    for (int threads : {1, 8}) {
      PlannerOptions dp;
      dp.global_batch_size = 8;
      dp.max_stages = 2;
      dp.prune_slack = 0;
      dp.num_threads = threads;
      const PlanResult ours = DapplePlanner(m, degraded.cluster, dp).Plan();
      EXPECT_NEAR(ours.estimate.latency, optimal.estimate.latency, 1e-9)
          << "dead device " << dead << ", " << threads
          << " threads: dp=" << ours.plan.ToString()
          << " optimal=" << optimal.plan.ToString();
    }
  }
}

TEST(PlannerEquivalenceTest, EverySinglePolicyRestrictionIsAlsoOptimalForIt) {
  // Restricting the DP to one placement policy must still match a brute
  // force restricted the same way — the memoization may not conflate
  // states that only a missing policy could distinguish.
  const auto m = model::MakeUniformSynthetic(4, 0.01, 0.02, 1_MiB, 2'000'000, 1);
  const topo::Cluster cluster("2x2", 2, 2, topo::DeviceSpec{}, topo::InterconnectSpec{});

  BruteForceOptions bf;
  bf.global_batch_size = 8;
  bf.max_stages = 4;
  const PlanResult optimal = BruteForcePlanner(m, cluster, bf).Plan();

  TimeSec best_restricted = std::numeric_limits<TimeSec>::infinity();
  for (topo::PlacementPolicy policy : topo::AllPlacementPolicies()) {
    PlannerOptions dp;
    dp.global_batch_size = 8;
    dp.max_stages = 4;
    dp.prune_slack = 0;
    dp.policies = {policy};
    const PlanResult ours = DapplePlanner(m, cluster, dp).Plan();
    EXPECT_TRUE(ours.estimate.feasible) << topo::ToString(policy);
    // A restricted search can never beat the full-policy optimum.
    EXPECT_GE(ours.estimate.latency, optimal.estimate.latency - 1e-12)
        << topo::ToString(policy);
    best_restricted = std::min(best_restricted, ours.estimate.latency);
  }
  // And the best single policy must recover it (the full search is just
  // the union of the three restrictions).
  EXPECT_NEAR(best_restricted, optimal.estimate.latency, 1e-9);
}

}  // namespace
}  // namespace dapple::planner
