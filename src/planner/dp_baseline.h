// Data-parallel baseline estimators (the "DP No Overlap" and "DP + Normal
// Overlap" series of paper Figs. 12/14). Both use gradient accumulation
// (one AllReduce per iteration); the overlap variant hides gradient
// buckets behind the backward pass of the final micro-batch, reverse-layer
// order, matching [20]'s intra-iteration overlap.
#pragma once

#include "model/profile.h"
#include "planner/latency.h"
#include "topo/cluster.h"

namespace dapple::planner {

enum class DataParallelVariant { kNoOverlap, kOverlap };

struct DataParallelEstimate {
  bool feasible = true;
  std::string infeasible_reason;
  TimeSec iteration_time = 0.0;
  TimeSec compute_time = 0.0;
  TimeSec exposed_comm_time = 0.0;
  double speedup = 0.0;  // vs. single-device sequential execution
};

/// Replicates the whole model on every cluster device and estimates one
/// training iteration at `global_batch_size`.
DataParallelEstimate EstimateDataParallel(const model::ModelProfile& model,
                                          const topo::Cluster& cluster,
                                          long global_batch_size,
                                          DataParallelVariant variant);

/// The all-devices one-stage ParallelPlan used by the estimators above.
ParallelPlan MakeDataParallelPlan(const model::ModelProfile& model,
                                  const topo::Cluster& cluster);

}  // namespace dapple::planner
