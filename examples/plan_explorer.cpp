// Plan explorer: define a custom model (layer-by-layer), pick a hardware
// config, and compare what the DAPPLE planner chooses against hand-rolled
// alternatives — the workflow a performance engineer would use before
// committing cluster time.
//
// Usage: plan_explorer [config-letter] [global-batch]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "dapple/dapple.h"

using namespace dapple;

namespace {

// A made-up recommendation model: a wide, parameter-heavy embedding front
// (the e-commerce workloads the paper's introduction motivates), a stack
// of interaction layers, and a small scoring head.
model::ModelProfile MakeRecommender() {
  std::vector<model::LayerProfile> layers;
  auto add = [&](std::string name, double fwd_ms, double act_mb, double params_m) {
    model::LayerProfile l;
    l.name = std::move(name);
    l.forward_time = fwd_ms * 1e-3;
    l.backward_time = 2 * fwd_ms * 1e-3;
    l.fixed_overhead = 0.2e-3;
    l.output_activation = MiB(act_mb);
    l.activation_memory = MiB(act_mb * 1.5);
    l.param_count = static_cast<std::uint64_t>(params_m * 1e6);
    layers.push_back(std::move(l));
  };
  add("embedding", 2.0, 48.0, 450.0);  // huge sparse-ish table, light compute
  for (int i = 0; i < 10; ++i) {
    add("interact" + std::to_string(i), 6.0, 12.0, 8.0);
  }
  add("scoring", 1.5, 0.5, 2.0);
  return model::ModelProfile("Recommender", std::move(layers), /*profile_micro_batch=*/64,
                             model::OptimizerKind::kAdam);
}

}  // namespace

int main(int argc, char** argv) {
  const char config = argc > 1 ? argv[1][0] : 'A';
  const long gbs = argc > 2 ? std::atol(argv[2]) : 2048;

  const model::ModelProfile m = MakeRecommender();
  const topo::Cluster cluster =
      config == 'A' ? topo::MakeConfigA(2) : topo::MakeConfig(config, 16);
  Session session(m, cluster);

  std::printf("model %s: %.0fM params, %d layers, cluster %s (%d devices), GBS %ld\n",
              m.name().c_str(), m.TotalParamCount() / 1e6, m.num_layers(),
              cluster.name().c_str(), cluster.num_devices(), gbs);

  const auto planned = session.Plan(gbs);
  std::printf("\nplanner choice: %s (split %s), %ld candidates evaluated\n%s",
              planned.plan.ToString().c_str(), planned.plan.SplitString().c_str(),
              planned.candidates_evaluated, planned.plan.ToDetailedString().c_str());

  // Compare against the obvious hand-rolled strategies.
  AsciiTable table({"Strategy", "Latency", "Throughput (samples/s)", "Speedup",
                    "Max peak mem"});
  auto add_row = [&](const std::string& name, const planner::ParallelPlan& plan) {
    const auto r = session.Run(plan, gbs);
    table.AddRow({name, FormatTime(r.pipeline_latency), AsciiTable::Num(r.throughput, 0),
                  AsciiTable::Num(r.speedup, 2), FormatBytes(r.max_peak_memory)});
  };
  add_row("DAPPLE planner", planned.plan);
  add_row("pure data parallel", planner::MakeDataParallelPlan(m, cluster));
  {
    // Isolate the parameter-heavy embedding on one device.
    planner::ParallelPlan manual;
    manual.model = m.name();
    planner::StagePlan s0, s1;
    s0.layer_begin = 0;
    s0.layer_end = 1;
    s0.devices = topo::DeviceSet::Range(0, 1);
    s1.layer_begin = 1;
    s1.layer_end = m.num_layers();
    s1.devices = topo::DeviceSet::Range(1, cluster.num_devices() - 1);
    manual.stages = {s0, s1};
    add_row("embedding-isolated 1:" + std::to_string(cluster.num_devices() - 1), manual);
  }
  {
    planner::PipedreamPlanner pipedream(m, cluster);
    add_row("PipeDream strategy", pipedream.Plan());
  }
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}
