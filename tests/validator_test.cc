// ScheduleValidator tests: a clean run passes every invariant family, and
// each hand-crafted corruption of the schedule (overlapped resource,
// reordered backward, exceeded warmup depth, leaked activation, missing
// AllReduce, ...) is detected under its stable violation code.
#include <gtest/gtest.h>

#include "check/validator.h"
#include "model/zoo.h"
#include "runtime/graph_builder.h"
#include "sim/engine.h"
#include "topo/cluster.h"
#include "topo/device_set.h"

namespace dapple {
namespace {

struct Scenario {
  model::ModelProfile model;
  topo::Cluster cluster;
  planner::ParallelPlan plan;
  runtime::BuildOptions options;

  runtime::BuiltPipeline Build() const {
    return runtime::GraphBuilder(model, cluster, plan, options).Build();
  }
};

/// Two single-device stages on Config-B, M = 4. DAPPLE warmup depths are
/// K = {2, 1} (policy PA), so stage 0 pipelines two micro-batches.
Scenario TwoStage(runtime::ScheduleKind kind) {
  Scenario s{model::MakeUniformSynthetic(4, 0.002, 0.004, 1_MiB, 1'000'000),
             topo::MakeConfigB(2),
             {},
             {}};
  s.plan.model = s.model.name();
  s.plan.stages.push_back({0, 2, topo::DeviceSet::Range(0, 1)});
  s.plan.stages.push_back({2, 4, topo::DeviceSet::Range(1, 1)});
  s.options.global_batch_size = 4;
  s.options.schedule.kind = kind;
  s.options.enforce_memory_capacity = false;
  return s;
}

/// Stage 0 replicated over two devices (so it owns a gradient AllReduce),
/// stage 1 on the third device.
Scenario Replicated() {
  Scenario s{model::MakeUniformSynthetic(4, 0.002, 0.004, 1_MiB, 1'000'000),
             topo::MakeConfigB(3),
             {},
             {}};
  s.plan.model = s.model.name();
  s.plan.stages.push_back({0, 2, topo::DeviceSet::Range(0, 2)});
  s.plan.stages.push_back({2, 4, topo::DeviceSet::Range(2, 1)});
  s.options.global_batch_size = 8;  // mbs auto-resolves to 2 => M = 4
  s.options.schedule.kind = runtime::ScheduleKind::kDapple;
  s.options.enforce_memory_capacity = false;
  return s;
}

check::ValidationReport Validate(const Scenario& s, const runtime::BuiltPipeline& built,
                                 const sim::SimResult& result) {
  return check::ScheduleValidator(s.plan, s.options).Validate(built, result);
}

/// First task matching a predicate; aborts the test if absent.
template <typename Pred>
sim::TaskId FindTask(const sim::TaskGraph& graph, Pred pred) {
  for (const sim::Task& t : graph.tasks()) {
    if (pred(t)) return t.id;
  }
  ADD_FAILURE() << "no task matches";
  return sim::kInvalidTask;
}

sim::TaskId FindCompute(const sim::TaskGraph& graph, sim::TaskKind kind, int stage,
                        int microbatch, int device) {
  return FindTask(graph, [&](const sim::Task& t) {
    return t.kind == kind && t.stage == stage && t.microbatch == microbatch &&
           t.device == device;
  });
}

TEST(ValidatorTest, CleanDappleRunPasses) {
  const Scenario s = TwoStage(runtime::ScheduleKind::kDapple);
  const runtime::BuiltPipeline built = s.Build();
  const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
  const check::ValidationReport report = Validate(s, built, result);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GE(report.checks_run, 7);
  EXPECT_EQ(report.ToString().substr(0, 2), "OK");
}

TEST(ValidatorTest, CleanGPipeRunPasses) {
  const Scenario s = TwoStage(runtime::ScheduleKind::kGPipe);
  const runtime::BuiltPipeline built = s.Build();
  const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
  const check::ValidationReport report = Validate(s, built, result);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ValidatorTest, CleanReplicatedRunPasses) {
  const Scenario s = Replicated();
  const runtime::BuiltPipeline built = s.Build();
  const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
  const check::ValidationReport report = Validate(s, built, result);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// Mutation 1: slide one forward on top of its device neighbour.
TEST(ValidatorTest, DetectsResourceOverlap) {
  const Scenario s = TwoStage(runtime::ScheduleKind::kDapple);
  const runtime::BuiltPipeline built = s.Build();
  sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);

  const sim::TaskId f0 = FindCompute(built.graph, sim::TaskKind::kForward, 0, 0, 0);
  const sim::TaskId f1 = FindCompute(built.graph, sim::TaskKind::kForward, 0, 1, 0);
  const auto& r0 = result.records[static_cast<std::size_t>(f0)];
  auto& r1 = result.records[static_cast<std::size_t>(f1)];
  const TimeSec len = r1.end - r1.start;
  r1.start = (r0.start + r0.end) / 2;  // halfway into F0
  r1.end = r1.start + len;

  const check::ValidationReport report = Validate(s, built, result);
  EXPECT_TRUE(report.Has(check::kViolationResourceOverlap)) << report.ToString();
}

// Mutation 2: swap two backwards, breaking GPipe's LIFO backward order.
TEST(ValidatorTest, DetectsReorderedBackward) {
  const Scenario s = TwoStage(runtime::ScheduleKind::kGPipe);
  const runtime::BuiltPipeline built = s.Build();
  sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);

  const sim::TaskId b3 = FindCompute(built.graph, sim::TaskKind::kBackward, 0, 3, 0);
  const sim::TaskId b0 = FindCompute(built.graph, sim::TaskKind::kBackward, 0, 0, 0);
  std::swap(result.records[static_cast<std::size_t>(b3)],
            result.records[static_cast<std::size_t>(b0)]);

  const check::ValidationReport report = Validate(s, built, result);
  EXPECT_TRUE(report.Has(check::kViolationScheduleOrder)) << report.ToString();
}

// Mutation 3: claim a smaller warmup depth than the schedule actually used.
TEST(ValidatorTest, DetectsExceededWarmupDepth) {
  const Scenario s = TwoStage(runtime::ScheduleKind::kDapple);
  runtime::BuiltPipeline built = s.Build();
  const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
  ASSERT_EQ(built.warmup_depths[0], 2);  // PA: K_0 = min(S - 0, D) = 2

  built.warmup_depths[0] = 1;  // the run keeps 2 micro-batches in flight

  const check::ValidationReport report = Validate(s, built, result);
  EXPECT_TRUE(report.Has(check::kViolationWarmupExceeded)) << report.ToString();
}

// Mutation 4: a backward that forgets to release its activations.
TEST(ValidatorTest, DetectsLeakedActivation) {
  const Scenario s = TwoStage(runtime::ScheduleKind::kDapple);
  runtime::BuiltPipeline built = s.Build();
  const sim::TaskId leak = FindCompute(built.graph, sim::TaskKind::kBackward, 0, 0, 0);
  ASSERT_GT(built.graph.task(leak).free_at_end, 0u);
  built.graph.mutable_task(leak).free_at_end = 0;

  const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
  const check::ValidationReport report = Validate(s, built, result);
  EXPECT_TRUE(report.Has(check::kViolationMemoryLeak)) << report.ToString();
  EXPECT_TRUE(report.Has(check::kViolationMemoryUnbalanced)) << report.ToString();
}

// Mutation 5: the replicated stage's gradient AllReduce disappears.
TEST(ValidatorTest, DetectsMissingAllReduce) {
  const Scenario s = Replicated();
  runtime::BuiltPipeline built = s.Build();
  const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);

  const sim::TaskId ar = FindTask(built.graph, [](const sim::Task& t) {
    return t.kind == sim::TaskKind::kAllReduce;
  });
  built.graph.mutable_task(ar).kind = sim::TaskKind::kGeneric;

  const check::ValidationReport report = Validate(s, built, result);
  EXPECT_TRUE(report.Has(check::kViolationAllReduceMissing)) << report.ToString();
}

// Mutation 6: a transfer jumps the gun on its producing forward.
TEST(ValidatorTest, DetectsDependencyOrderViolation) {
  const Scenario s = TwoStage(runtime::ScheduleKind::kDapple);
  const runtime::BuiltPipeline built = s.Build();
  sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);

  const sim::TaskId fwd = FindCompute(built.graph, sim::TaskKind::kForward, 0, 0, 0);
  ASSERT_FALSE(built.graph.successors(fwd).empty());
  const sim::TaskId succ = built.graph.successors(fwd).front();
  auto& rec = result.records[static_cast<std::size_t>(succ)];
  const TimeSec len = rec.end - rec.start;
  rec.start = result.records[static_cast<std::size_t>(fwd)].start;  // before fwd ends
  rec.end = rec.start + len;

  const check::ValidationReport report = Validate(s, built, result);
  EXPECT_TRUE(report.Has(check::kViolationDependencyOrder)) << report.ToString();
}

// Mutation 7: the reported makespan disagrees with the last task.
TEST(ValidatorTest, DetectsMakespanMismatch) {
  const Scenario s = TwoStage(runtime::ScheduleKind::kDapple);
  const runtime::BuiltPipeline built = s.Build();
  sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
  result.makespan += 1.0;

  const check::ValidationReport report = Validate(s, built, result);
  EXPECT_TRUE(report.Has(check::kViolationMakespan)) << report.ToString();
}

// Mutation 8: a stray AllReduce on an unreplicated stage.
TEST(ValidatorTest, DetectsExtraAllReduce) {
  const Scenario s = TwoStage(runtime::ScheduleKind::kDapple);
  runtime::BuiltPipeline built = s.Build();
  const sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);

  const sim::TaskId apply = FindTask(built.graph, [](const sim::Task& t) {
    return t.kind == sim::TaskKind::kApply && t.stage == 0;
  });
  built.graph.mutable_task(apply).kind = sim::TaskKind::kAllReduce;

  const check::ValidationReport report = Validate(s, built, result);
  EXPECT_TRUE(report.Has(check::kViolationAllReduceExtra)) << report.ToString();
}

// Mutation 9: a record never marked as executed.
TEST(ValidatorTest, DetectsUnexecutedTask) {
  const Scenario s = TwoStage(runtime::ScheduleKind::kDapple);
  const runtime::BuiltPipeline built = s.Build();
  sim::SimResult result = sim::Engine::Run(built.graph, built.engine_options);
  result.records[0].executed = false;

  const check::ValidationReport report = Validate(s, built, result);
  EXPECT_TRUE(report.Has(check::kViolationNotExecuted)) << report.ToString();
}

}  // namespace
}  // namespace dapple
