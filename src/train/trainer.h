// Training loop driving any of the three executors over a dataset,
// recording the loss curve — the substrate behind the repository's
// convergence-equivalence experiments (paper §VI-A's "convergence is
// safely preserved").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "train/data.h"
#include "train/executor.h"
#include "train/optimizer.h"

namespace dapple::train {

enum class Strategy { kSerial, kDataParallel, kPipelined };

const char* ToString(Strategy strategy);

struct TrainerOptions {
  Strategy strategy = Strategy::kSerial;
  int iterations = 50;
  /// Data-parallel replica count (strategy kDataParallel).
  int replicas = 2;
  /// Pipeline settings (strategy kPipelined).
  PipelineRunOptions pipeline;
};

struct TrainingRun {
  std::vector<double> losses;  // one entry per iteration
  MlpModel final_model;
  /// Worst per-stage in-flight stash count across the run (pipelined).
  std::vector<int> max_in_flight;

  double final_loss() const { return losses.empty() ? 0.0 : losses.back(); }
};

/// Trains `model` (copied; the input is untouched) with `optimizer` on the
/// full dataset each iteration (full-batch training keeps the equivalence
/// claim exact) and returns the loss trajectory and final weights.
TrainingRun Train(const MlpModel& model, const Dataset& data, Optimizer& optimizer,
                  const TrainerOptions& options);

/// Largest elementwise weight difference between two runs' final models.
float MaxWeightDiff(MlpModel& a, MlpModel& b);

}  // namespace dapple::train
