// Runtime behaviour tests: the executor must reproduce the paper's core
// scheduling claims — DAPPLE's peak memory independent of M, GPipe's O(M)
// growth and OOM, re-computation's memory/throughput trade, PB vs PA, and
// split vs round-robin replication (Fig. 8).
#include <gtest/gtest.h>

#include "common/error.h"
#include "model/zoo.h"
#include "planner/plan.h"
#include "runtime/executor.h"
#include "topo/cluster.h"

namespace dapple::runtime {
namespace {

using model::MakeUniformSynthetic;
using planner::ParallelPlan;
using planner::StagePlan;
using topo::DeviceSet;

ParallelPlan TwoStage(const model::ModelProfile& m, int split, int p, int q) {
  ParallelPlan plan;
  plan.model = m.name();
  StagePlan s0, s1;
  s0.layer_begin = 0;
  s0.layer_end = split;
  s0.devices = DeviceSet::Range(0, p);
  s1.layer_begin = split;
  s1.layer_end = m.num_layers();
  s1.devices = DeviceSet::Range(p, q);
  plan.stages = {s0, s1};
  return plan;
}

BuildOptions Opts(long gbs, ScheduleKind kind = ScheduleKind::kDapple,
                  bool recompute = false) {
  BuildOptions o;
  o.global_batch_size = gbs;
  o.schedule.kind = kind;
  o.schedule.recompute = recompute;
  o.micro_batch_size = 2;  // Table VI keeps micro-batch fixed at 2
  return o;
}

class TableVIFixture : public ::testing::Test {
 protected:
  TableVIFixture()
      : bert_(model::MakeBert48()),
        cluster_(topo::MakeConfigB(2)),
        plan_(TwoStage(bert_, 24, 1, 1)) {}

  IterationReport Run(long gbs, ScheduleKind kind, bool recompute) const {
    PipelineExecutor exec(bert_, cluster_, plan_, Opts(gbs, kind, recompute));
    return exec.Run();
  }

  model::ModelProfile bert_;
  topo::Cluster cluster_;
  ParallelPlan plan_;
};

TEST_F(TableVIFixture, DappleMemoryIndependentOfM) {
  const auto m2 = Run(4, ScheduleKind::kDapple, false);
  const auto m8 = Run(16, ScheduleKind::kDapple, false);
  const auto m16 = Run(32, ScheduleKind::kDapple, false);
  EXPECT_EQ(m2.max_peak_memory, m8.max_peak_memory);
  EXPECT_EQ(m8.max_peak_memory, m16.max_peak_memory);
}

TEST_F(TableVIFixture, GPipeMemoryGrowsWithM) {
  const auto m2 = Run(4, ScheduleKind::kGPipe, false);
  const auto m8 = Run(16, ScheduleKind::kGPipe, false);
  EXPECT_GT(m8.max_peak_memory, m2.max_peak_memory);
}

TEST_F(TableVIFixture, GPipeEventuallyOoms) {
  const auto m16 = Run(32, ScheduleKind::kGPipe, false);
  EXPECT_TRUE(m16.oom);
  const auto dapple16 = Run(32, ScheduleKind::kDapple, false);
  EXPECT_FALSE(dapple16.oom);
}

TEST_F(TableVIFixture, ThroughputImprovesWithM) {
  const auto m2 = Run(4, ScheduleKind::kDapple, false);
  const auto m8 = Run(16, ScheduleKind::kDapple, false);
  const auto m16 = Run(32, ScheduleKind::kDapple, false);
  EXPECT_GT(m8.throughput, m2.throughput);
  EXPECT_GT(m16.throughput, m8.throughput);
}

TEST_F(TableVIFixture, RecomputationTradesThroughputForMemory) {
  const auto plain = Run(16, ScheduleKind::kDapple, false);
  const auto rc = Run(16, ScheduleKind::kDapple, true);
  EXPECT_LT(rc.max_peak_memory, plain.max_peak_memory);
  EXPECT_LT(rc.throughput, plain.throughput);
  // ~20% throughput cost for ~ the paper's backward-replay overhead.
  EXPECT_GT(rc.throughput, 0.6 * plain.throughput);
}

TEST_F(TableVIFixture, SameMicroBatchCountMatchesGPipeThroughputAtM2) {
  // With M=2 and 2 stages, DAPPLE and GPipe have identical bubble time
  // (paper SIII-B: "exact same bubble time as GPipe given the same stage
  // partition, micro-batches and device mapping").
  const auto dapple = Run(4, ScheduleKind::kDapple, false);
  const auto gpipe = Run(4, ScheduleKind::kGPipe, false);
  EXPECT_NEAR(dapple.pipeline_latency, gpipe.pipeline_latency,
              1e-6 + 0.02 * gpipe.pipeline_latency);
}

TEST(Runtime, GPipeAndDappleSameBubbleTimeUniform) {
  // Free communication, uniform stages: the two schedules have identical
  // makespans for any M (the memory profile, not the bubbles, differs).
  const auto m = MakeUniformSynthetic(4, 0.010, 0.020, 1_MiB, 1000, 1);
  const auto cluster = topo::MakeConfigA(1);
  const ParallelPlan plan = TwoStage(m, 2, 1, 1);
  for (long gbs : {4L, 8L, 16L}) {
    BuildOptions o;
    o.global_batch_size = gbs;
    o.micro_batch_size = 1;
    o.schedule.kind = ScheduleKind::kDapple;
    const auto dapple = PipelineExecutor(m, cluster, plan, o).Run();
    o.schedule.kind = ScheduleKind::kGPipe;
    const auto gpipe = PipelineExecutor(m, cluster, plan, o).Run();
    EXPECT_NEAR(dapple.pipeline_latency, gpipe.pipeline_latency,
                1e-9 + 0.03 * gpipe.pipeline_latency)
        << "gbs=" << gbs;
    EXPECT_LE(dapple.max_peak_memory, gpipe.max_peak_memory);
  }
}

TEST(Runtime, SplitReplicationBeatsRoundRobin) {
  // Fig. 8: splitting each micro-batch across replicas pipelines better
  // than round-robining whole micro-batches (tail effect).
  const auto m = MakeUniformSynthetic(4, 0.020, 0.040, 1_MiB, 1000, 2);
  const auto cluster = topo::MakeConfigA(1);
  // Stage 0 costs ~2x stage 1 per micro-batch, so it is replicated on two
  // devices — the paper's exact scenario.
  ParallelPlan plan;
  plan.model = m.name();
  StagePlan s0, s1;
  s0.layer_begin = 0;
  s0.layer_end = 3;
  s0.devices = DeviceSet::Range(0, 2);
  s1.layer_begin = 3;
  s1.layer_end = 4;
  s1.devices = DeviceSet::Range(2, 1);
  plan.stages = {s0, s1};

  BuildOptions o;
  o.global_batch_size = 20;
  o.micro_batch_size = 2;
  o.replication = ReplicationMode::kSplitMicroBatch;
  const auto split = PipelineExecutor(m, cluster, plan, o).Run();
  o.replication = ReplicationMode::kRoundRobin;
  const auto rr = PipelineExecutor(m, cluster, plan, o).Run();
  EXPECT_LT(split.pipeline_latency, rr.pipeline_latency);
}

TEST(Runtime, PolicyBHelpsWhenAcrIsHigh) {
  // Table IV: PB >= PA, with real gains only when cross-stage
  // communication is comparable to compute.
  const auto m = MakeUniformSynthetic(8, 0.004, 0.008, 48_MiB, 1'000'000, 1);
  const auto cluster = topo::MakeConfigB(4);
  ParallelPlan plan;
  plan.model = m.name();
  for (int s = 0; s < 4; ++s) {
    StagePlan sp;
    sp.layer_begin = 2 * s;
    sp.layer_end = 2 * (s + 1);
    sp.devices = DeviceSet::Range(s, 1);
    plan.stages.push_back(sp);
  }
  BuildOptions o;
  o.global_batch_size = 32;
  o.micro_batch_size = 1;
  o.schedule.warmup = WarmupPolicy::kPA;
  const auto pa = PipelineExecutor(m, cluster, plan, o).Run();
  o.schedule.warmup = WarmupPolicy::kPB;
  const auto pb = PipelineExecutor(m, cluster, plan, o).Run();
  EXPECT_LE(pb.pipeline_latency, pa.pipeline_latency * (1 + 1e-9));
  EXPECT_LT(pb.pipeline_latency, 0.98 * pa.pipeline_latency);
  // PB keeps more activations alive.
  EXPECT_GE(pb.max_peak_memory, pa.max_peak_memory);
}

TEST(Runtime, SpeedupBoundedByDeviceCount) {
  const auto bert = model::MakeBert48();
  const auto cluster = topo::MakeConfigA(2);
  const ParallelPlan plan = TwoStage(bert, 24, 8, 8);
  BuildOptions o;
  o.global_batch_size = 64;
  const auto report = PipelineExecutor(bert, cluster, plan, o).Run();
  EXPECT_GT(report.speedup, 1.0);
  EXPECT_LE(report.speedup, 16.0);
  EXPECT_GT(report.avg_device_utilization, 0.3);
  EXPECT_LE(report.avg_device_utilization, 1.0);
  EXPECT_NEAR(report.bubble_fraction, 1.0 - report.avg_device_utilization, 1e-12);
}

TEST(Runtime, WarmupDepthsReported) {
  const auto bert = model::MakeBert48();
  const auto cluster = topo::MakeConfigB(2);
  const ParallelPlan plan = TwoStage(bert, 24, 1, 1);
  BuildOptions o;
  o.global_batch_size = 16;
  o.micro_batch_size = 2;
  const auto report = PipelineExecutor(bert, cluster, plan, o).Run();
  ASSERT_EQ(report.warmup_depths.size(), 2u);
  EXPECT_EQ(report.warmup_depths[0], 2);
  EXPECT_EQ(report.warmup_depths[1], 1);
}

TEST(Runtime, DetailExposesTraceableArtifacts) {
  const auto m = MakeUniformSynthetic(4, 0.01, 0.02, 1_MiB, 1000, 1);
  const auto cluster = topo::MakeConfigB(2);
  const ParallelPlan plan = TwoStage(m, 2, 1, 1);
  BuildOptions o;
  o.global_batch_size = 8;
  const ExecutionDetail detail = PipelineExecutor(m, cluster, plan, o).RunDetailed();
  EXPECT_GT(detail.pipeline.graph.num_tasks(), 0);
  EXPECT_EQ(detail.result.makespan, detail.report.pipeline_latency);
  EXPECT_GE(detail.result.pools.size(), 2u);
}

}  // namespace
}  // namespace dapple::runtime

// -- appended tests -----------------------------------------------------

namespace dapple::runtime {
namespace {

TEST(Runtime, StageStatsBreakdown) {
  const auto bert = model::MakeBert48();
  const auto cluster = topo::MakeConfigA(2);
  planner::ParallelPlan plan;
  plan.model = bert.name();
  planner::StagePlan s0, s1;
  s0.layer_begin = 0;
  s0.layer_end = 24;
  s0.devices = topo::DeviceSet::Range(0, 8);
  s1.layer_begin = 24;
  s1.layer_end = 48;
  s1.devices = topo::DeviceSet::Range(8, 8);
  plan.stages = {s0, s1};
  BuildOptions o;
  o.global_batch_size = 64;
  const auto report = PipelineExecutor(bert, cluster, plan, o).Run();
  ASSERT_EQ(report.stage_stats.size(), 2u);
  for (const StageStats& s : report.stage_stats) {
    EXPECT_GT(s.forward_busy, 0.0);
    // Backward is ~2x forward in the zoo calibration.
    EXPECT_GT(s.backward_busy, 1.5 * s.forward_busy);
    EXPECT_GT(s.utilization, 0.3);
    EXPECT_LE(s.utilization, 1.0);
    // Replicated stages synchronize gradients.
    EXPECT_GT(s.allreduce_time, 0.0);
  }
  // Only the downstream stage receives cross-stage traffic.
  EXPECT_EQ(report.stage_stats[0].inbound_transfer, 0.0);
  EXPECT_GT(report.stage_stats[1].inbound_transfer, 0.0);
}

TEST(Runtime, StageStatsUtilizationConsistentWithGlobal) {
  const auto m = model::MakeUniformSynthetic(4, 0.01, 0.02, 1_MiB, 1000, 1);
  const auto cluster = topo::MakeConfigB(2);
  const planner::ParallelPlan plan = TwoStage(m, 2, 1, 1);
  BuildOptions o;
  o.global_batch_size = 16;
  const auto report = PipelineExecutor(m, cluster, plan, o).Run();
  double mean = 0;
  for (const StageStats& s : report.stage_stats) mean += s.utilization;
  mean /= report.stage_stats.size();
  EXPECT_NEAR(mean, report.avg_device_utilization, 1e-9);
}

}  // namespace
}  // namespace dapple::runtime
