// Table V (with Table III's hardware configs as the header): DAPPLE
// planning results for every benchmark model on Configs A/B/C with 16
// devices — output plan, split position and ACR.
#include "harness.h"

#include <cstdio>

#include "common/table.h"

using namespace dapple;

int main() {
  bench::PrintHeader("Table V — DAPPLE planning results (16 devices)",
                     "DAPPLE paper, Tables III and V");

  std::printf("Hardware configs (Table III):\n");
  for (char c : {'A', 'B', 'C'}) {
    const topo::Cluster cl = bench::SixteenDeviceConfig(c);
    std::printf("  %s: %d servers x %d %s, intra %s, inter %.0f Gbps\n", cl.name().c_str(),
                cl.num_servers(), cl.gpus_per_server(), cl.device().name.c_str(),
                cl.gpus_per_server() > 1 ? "NVLink" : "n/a",
                cl.interconnect().inter_server_bandwidth * 8.0 / 1e9);
  }

  struct Row {
    const char* name;
    long gbs;
    const char* paper_plan[3];  // A, B, C
  };
  const Row rows[] = {
      {"ResNet-50", 2048, {"DP", "DP", "DP"}},
      {"VGG-19", 2048, {"DP", "DP", "15:1"}},
      {"GNMT-16", 1024, {"8:8 @ 9:7", "8:8 @ 9:7", "Straight"}},
      {"BERT-48", 64, {"8:8 @ 23:25", "Straight", "Straight"}},
      {"XLNet-36", 128, {"8:8 @ 18:18", "8:8 @ 18:18", "Straight"}},
      {"AmoebaNet-36", 128, {"8:8 @ 24:12", "11:5 @ 27:9", "11:5 @ 27:9"}},
  };

  AsciiTable table({"Model (GBS)", "Config", "Plan (measured)", "Split (measured)",
                    "ACR", "Plan (paper)"});
  for (const Row& row : rows) {
    const model::ModelProfile m = model::ModelByName(row.name);
    for (int ci = 0; ci < 3; ++ci) {
      const char config = static_cast<char>('A' + ci);
      const topo::Cluster cluster = bench::SixteenDeviceConfig(config);
      Session session(m, cluster);
      const auto planned = session.Plan(row.gbs);
      table.AddRow({std::string(row.name) + " (" + std::to_string(row.gbs) + ")",
                    std::string(1, config), planned.plan.ToString(),
                    planned.plan.SplitString(),
                    planned.estimate.acr > 0 ? AsciiTable::Num(planned.estimate.acr, 2)
                                             : "-",
                    row.paper_plan[ci]});
    }
    table.AddSeparator();
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nShape check: DP for compute-dense/small models (ResNet, VGG on fast\n"
      "nets); two-stage 8:8 server-aligned pipelines on Config-A for the\n"
      "uniform giants; deeper/narrower pipelines as the network slows; VGG-19\n"
      "isolates its fc tail on Config-C; AmoebaNet's split tilts toward the\n"
      "front (its last third holds 73%% of parameters). Deviations from the\n"
      "paper's exact plans are catalogued in EXPERIMENTS.md.\n");
  return 0;
}
