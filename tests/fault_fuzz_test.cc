// Randomized fault-recovery sweep: each seed derives a (model, cluster,
// plan) configuration, a random fault script, and a recovery policy, runs
// the full experiment, and pushes every pipeline it builds — initial,
// checkpoint-remapped, elastically replanned — through the complete
// ScheduleValidator invariant set (see check/fuzz.h).
//
// Iteration count and base seed come from the environment so CI can widen
// the sweep and a failure reproduces without recompiling:
//
//   DAPPLE_FUZZ_ITERATIONS=2000 DAPPLE_FUZZ_SEED=123 ctest -L fuzz
//   build/tools/dapple_fuzz --faults --repro <seed printed by the failure>
#include <gtest/gtest.h>

#include <cstdlib>

#include "check/fuzz.h"

namespace dapple {
namespace {

long EnvLong(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::atol(value) : fallback;
}

TEST(FaultFuzzTest, RecoveredSchedulesSatisfyAllInvariants) {
  const long iterations = EnvLong("DAPPLE_FUZZ_ITERATIONS", 100);
  const auto base = static_cast<std::uint64_t>(EnvLong("DAPPLE_FUZZ_SEED", 0));

  long pipelines = 0, replans = 0, restores = 0;
  for (long i = 0; i < iterations; ++i) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(i);
    const check::FaultFuzzCase c = check::MakeFaultFuzzCase(seed);
    const check::FaultFuzzOutcome out = check::RunFaultFuzzCase(c);
    ASSERT_TRUE(out.ok()) << out.Summary() << "  case: " << c.Describe();
    EXPECT_GE(out.pipelines_validated, 1) << c.Describe();
    pipelines += out.pipelines_validated;
    replans += out.replans;
    restores += out.restores;
  }
  // The generator must keep exercising the interesting recovery paths, not
  // just fault-free baselines (distribution drift would gut the test).
  EXPECT_GE(pipelines, iterations);
  EXPECT_GE(replans + restores, iterations / 20);
}

TEST(FaultFuzzTest, CasesAreDeterministicInTheSeed) {
  const check::FaultFuzzCase a = check::MakeFaultFuzzCase(17);
  const check::FaultFuzzCase b = check::MakeFaultFuzzCase(17);
  EXPECT_EQ(a.Describe(), b.Describe());
  EXPECT_EQ(a.script.ToString(), b.script.ToString());
  const check::FaultFuzzOutcome oa = check::RunFaultFuzzCase(a);
  const check::FaultFuzzOutcome ob = check::RunFaultFuzzCase(b);
  EXPECT_EQ(oa.iterations_completed, ob.iterations_completed);
  EXPECT_EQ(oa.replans, ob.replans);
  EXPECT_EQ(oa.restores, ob.restores);
}

}  // namespace
}  // namespace dapple
