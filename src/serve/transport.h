// Transports for the serve protocol: the same newline-delimited JSON
// exchange carried over stdio (one process, pipes) or a listening Unix /
// TCP socket (long-lived daemon).
//
// All transports batch greedily: after blocking for one request line, any
// further lines already buffered are drained (up to the server's
// max_batch) and dispatched together through Server::HandleBatch, so a
// client that writes N requests before reading gets them planned across
// the worker pool. Responses always come back in request order.
#pragma once

#include <iosfwd>
#include <string>

#include "serve/server.h"

namespace dapple::serve {

/// Serves requests from `in` to `out` until EOF. Returns the number of
/// requests handled. This is `dapple serve --stdio`.
long ServeStream(std::istream& in, std::ostream& out, Server& server);

/// Listens on a Unix-domain socket at `path` (unlinking any stale socket
/// first) and serves connections sequentially, each until its EOF.
/// `max_connections` bounds how many connections are accepted before
/// returning (0 = serve forever); tests use 1. Returns requests handled.
long ServeUnixSocket(const std::string& path, Server& server,
                     int max_connections = 0);

/// Same protocol over TCP on 127.0.0.1:`port`.
long ServeTcp(int port, Server& server, int max_connections = 0);

}  // namespace dapple::serve
