// Turning a fault script into concrete degradation: snapshots of the
// cluster state at a point in simulated time, construction of the degraded
// cluster the planner replans against (dead devices excluded, stragglers as
// WithServerSpeeds multipliers), structural plan remapping for
// checkpoint–restart, and piecewise-constant engine speed profiles that
// re-cost in-flight tasks at fault-window boundaries.
#pragma once

#include <optional>
#include <vector>

#include "fault/script.h"
#include "planner/plan.h"
#include "runtime/graph_builder.h"
#include "sim/engine.h"
#include "topo/cluster.h"

namespace dapple::fault {

/// The cluster as the control plane sees it at one instant: which devices
/// have fail-stopped and what compute/network multipliers are active.
/// Indexed by *original* cluster ids throughout.
struct ClusterState {
  std::vector<bool> device_dead;            // per device
  std::vector<double> server_compute;       // per server, product of slowdowns
  std::vector<double> server_bandwidth;     // per server, product of degradations
  std::vector<TimeSec> server_extra_latency;  // per server, max of degradations

  bool AnyDead() const;
  /// True when anything differs from the healthy cluster.
  bool Degraded() const;

  bool operator==(const ClusterState& other) const;
  bool operator!=(const ClusterState& other) const { return !(*this == other); }
};

/// Evaluates the script at time t. A crash holds from its start until the
/// closest later rejoin of the same device (forever when none — permanent
/// for every legacy script); windows contribute while t is in [start, end).
/// Device-targeted slowdowns fold into their server's multiplier (the
/// planner reasons per-server).
ClusterState StateAt(const FaultScript& script, const topo::Cluster& cluster, TimeSec t);

/// A healthy sub-cluster with dense ids plus the id maps back to the
/// original. A dead device drains its whole server: the cluster model is
/// server-granular, and the paper's placement policies assume full
/// machines.
struct DegradedCluster {
  topo::Cluster cluster;
  /// False when no server survives (every machine lost a device).
  bool feasible = true;
  std::vector<topo::ServerId> to_original_server;   // degraded -> original
  std::vector<topo::DeviceId> to_original_device;   // degraded -> original
  std::vector<topo::DeviceId> from_original_device;  // original -> degraded, -1 if gone
};

/// Builds the cluster a recovery policy plans against: servers with a dead
/// device removed, straggler multipliers applied via WithServerSpeeds, and
/// inter-server bandwidth/latency scaled by the worst active link
/// degradation. With nothing degraded, returns the original with identity
/// maps.
DegradedCluster MakeDegradedCluster(const topo::Cluster& original, const ClusterState& state);

/// Checkpoint–restart's structural remap: keep every stage's layer range,
/// reassign devices onto the degraded cluster in id order, clamping each
/// stage's replication to what still fits. Returns nullopt when the
/// degraded cluster has fewer devices than the plan has stages.
///
/// With `allow_growth` (the elastic scale-up fallback when a full replan
/// probe fails), devices beyond the plan's total are distributed round-robin
/// as extra stage replicas instead of being silently left idle — the
/// historical behaviour when a cluster *grew* was to keep the old plan
/// unchanged, which wasted every rejoined machine.
std::optional<planner::ParallelPlan> RemapPlanToCluster(const planner::ParallelPlan& plan,
                                                        const DegradedCluster& degraded,
                                                        bool allow_growth = false);

/// Compiles the script into per-resource engine speed profiles for one
/// iteration starting at absolute time t0, against a pipeline built for a
/// (possibly degraded) cluster:
///
///  - device slowdowns multiply the device resource's speed during the
///    window; overlapping windows compose multiplicatively;
///  - a crash pins the device resource at speed 0 from the crash onward;
///  - link degradations slow the stage-boundary channels and AllReduce
///    lanes that cross the afflicted server. The extra latency is folded
///    into an effective-speed factor using the slowest transfer actually
///    scheduled on that channel, so byte-heavy channels see it the least.
///
/// `to_original_device` maps the built pipeline's dense device ids to
/// original cluster ids (identity before any replan). Window times are
/// shifted by -t0 into the iteration's local clock; events entirely in the
/// past are dropped (crashes stay: a dead device stays dead).
///
/// `baked` is the cluster state the pipeline was built for: after a replan
/// or remap the degraded cluster already carries straggler multipliers and
/// scaled bandwidth in its task durations, so the profiles express only the
/// *residual* — speed relative to the baked baseline. A device whose baked
/// slowdown window has ended runs at >1x until the next replan catches up.
/// Pass nullptr for a pipeline built against the healthy original cluster.
std::vector<sim::ResourceSpeedProfile> BuildSpeedProfiles(
    const FaultScript& script, const topo::Cluster& original,
    const std::vector<topo::DeviceId>& to_original_device,
    const planner::ParallelPlan& plan, const runtime::BuiltPipeline& built, TimeSec t0,
    const ClusterState* baked = nullptr);

}  // namespace dapple::fault
