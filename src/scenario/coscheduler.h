// Multi-job co-scheduling under a shared device budget: N concurrent
// training jobs split one cluster at server granularity, each getting a
// contiguous, disjoint server range and its own DAPPLE plan on that slice.
//
// The split search is greedy + exchange improvement: every job starts with
// one server, each remaining server goes to whichever job shrinks the
// aggregate makespan (= max over jobs of iterations x simulated iteration
// time) the most, then single-server moves between job pairs run to a
// fixed point. Candidate evaluations — plan on the slice, build, simulate —
// fan out over a sim::BatchRunner and memoize in a serve-fingerprint-keyed
// ShardedCache, so a sweep that revisits (model, slice width, batch) pays
// the planner once. Deterministic: identical inputs produce byte-identical
// reports at every worker count (cache traffic is counted per deduped
// evaluation round, not per racing thread).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/sharded_cache.h"
#include "model/profile.h"
#include "planner/dp_planner.h"
#include "planner/plan.h"
#include "runtime/graph_builder.h"
#include "topo/cluster.h"

namespace dapple::scenario {

/// One training job competing for the budget.
struct JobSpec {
  std::string name;
  model::ModelProfile model;
  long global_batch_size = 64;
  /// Iterations the job still has to run; fixes the job's makespan scale.
  int iterations = 100;
};

struct CoScheduleOptions {
  /// Worker threads for candidate evaluation (sim::BatchRunner semantics:
  /// 1 = inline serial, 0 = hardware concurrency, n = dedicated pool).
  int sim_threads = 1;
  /// Upper bound on exchange-improvement passes (each pass scans every
  /// ordered job pair; the loop usually reaches its fixed point earlier).
  int exchange_rounds = 8;
  planner::PlannerOptions planner;
  runtime::BuildOptions build;
  /// Called once per finally-assigned job pipeline with the slice it was
  /// built for. Tests hang the ScheduleValidator here; scenario itself must
  /// not depend on check.
  std::function<void(const runtime::BuiltPipeline&, const planner::ParallelPlan&,
                     const topo::Cluster&)>
      pipeline_observer;
};

struct JobAssignment {
  std::string name;
  /// Contiguous server range [server_begin, server_begin + servers) of the
  /// budget cluster — disjoint across jobs by construction.
  int server_begin = 0;
  int servers = 0;
  planner::ParallelPlan plan;
  TimeSec iteration_time = 0.0;
  /// iterations x iteration_time on the assigned slice.
  TimeSec makespan = 0.0;
};

struct CoScheduleReport {
  std::vector<JobAssignment> jobs;
  /// max over jobs — the time until the whole batch of jobs drains.
  TimeSec aggregate_makespan = 0.0;
  /// Aggregate of the naive even split (floor(S/N) servers each, remainder
  /// round-robin) — the baseline the search must beat.
  TimeSec naive_even_makespan = 0.0;
  /// Assigned busy device-time / (budget devices x aggregate makespan).
  double utilization = 0.0;
  /// Servers moved between jobs during exchange improvement; each move
  /// preempts the devices it takes from the losing job.
  int preemptions = 0;
  int greedy_steps = 0;
  int exchange_moves = 0;
  /// Plan-cache traffic across the whole search (deterministic: counted per
  /// deduped evaluation round).
  long cache_hits = 0;
  long cache_misses = 0;
};

/// Plans N jobs under a shared budget. Throws dapple::Error when the budget
/// has fewer servers than there are jobs, or when no feasible split exists.
class CoScheduler {
 public:
  CoScheduler(topo::Cluster budget, CoScheduleOptions options = {});

  /// Runs the greedy + exchange split search. Books scenario.cosched.*
  /// metrics in the global MetricsRegistry.
  CoScheduleReport Schedule(const std::vector<JobSpec>& jobs);

 private:
  struct Cell;  // one evaluated (job, width) point
  class Evaluator;

  topo::Cluster budget_;
  CoScheduleOptions options_;
};

/// Convenience wrapper: construct, schedule, return.
CoScheduleReport CoSchedule(const topo::Cluster& budget, const std::vector<JobSpec>& jobs,
                            const CoScheduleOptions& options = {});

}  // namespace dapple::scenario
