// Iteration-report observability layer: turns one simulated training
// iteration (TaskGraph + SimResult + BuiltPipeline) into the structured
// quantities the paper's evaluation is stated in — per-device and per-stage
// bubble ratios (formula 1's (S-1)/(M+S-1) idealization made measurable),
// the compute / transfer / AllReduce / apply time split,
// warmup/steady/drain phase boundaries (Fig. 4), per-link transfer volume
// and occupancy, and memory high-water marks with the peak-vs-M curve of
// §III's O(K)-not-O(M) claim.
//
// Exported as deterministic JSON (golden-testable) and aligned-column text;
// surfaced by `dapple report` and emitted by every bench binary as a
// machine-readable blob.
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"
#include "planner/stage_cache.h"
#include "runtime/graph_builder.h"
#include "sim/engine.h"

namespace dapple::obs {

/// Busy-time decomposition of the whole iteration, summed across resources.
struct TimeSplit {
  TimeSec compute = 0.0;    // FW + BW + recompute task time on devices
  TimeSec apply = 0.0;      // optimizer weight updates
  TimeSec transfer = 0.0;   // cross-stage activation/gradient movement
  TimeSec allreduce = 0.0;  // exposed gradient synchronization
};

/// Warmup / steady / drain boundaries of the pipeline iteration (Fig. 4):
/// warmup ends when the first backward starts anywhere, steady ends when
/// the last forward finishes, drain runs to the makespan.
struct PhaseSplit {
  TimeSec warmup_end = 0.0;
  TimeSec steady_end = 0.0;
  TimeSec warmup = 0.0;
  TimeSec steady = 0.0;
  TimeSec drain = 0.0;
};

struct DeviceReport {
  int device = -1;
  int stage = -1;  // computation stage hosted by this device
  TimeSec forward_busy = 0.0;
  TimeSec backward_busy = 0.0;
  TimeSec apply_busy = 0.0;
  TimeSec compute_busy = 0.0;  // all compute-kind task time
  double utilization = 0.0;    // compute_busy / makespan
  /// 1 - utilization: the device's idle-plus-waiting share of the
  /// iteration — the measured counterpart of paper formula 1's bubble term.
  double bubble_ratio = 0.0;
  TimeSec first_start = 0.0;
  TimeSec last_end = 0.0;
  int tasks_executed = 0;
  Bytes peak_memory = 0;
  Bytes baseline_memory = 0;
  bool oom = false;
};

struct StageReport {
  int stage = -1;
  std::vector<int> devices;
  int warmup_depth = 0;
  TimeSec forward_busy = 0.0;   // per-replica mean
  TimeSec backward_busy = 0.0;  // per-replica mean
  TimeSec allreduce = 0.0;      // the stage's exposed gradient-sync task
  TimeSec inbound_transfer = 0.0;   // forward activations arriving from stage-1
  TimeSec outbound_transfer = 0.0;  // forward activations leaving to stage+1
  double utilization = 0.0;         // replica mean of compute_busy / makespan
  double bubble_ratio = 0.0;        // 1 - utilization
  Bytes peak_memory = 0;            // worst replica device
};

/// One serial communication resource (a per-direction cross-stage channel
/// or a per-stage AllReduce lane).
struct LinkReport {
  int resource = -1;
  std::string name;  // "txf s0->s1", "txb s1->s0", "ar s1"
  int transfers = 0;
  TimeSec busy = 0.0;
  Bytes bytes = 0;         // total payload moved (task metadata)
  double occupancy = 0.0;  // busy / makespan
};

struct PoolReport {
  int pool = -1;
  Bytes peak = 0;
  Bytes baseline = 0;
  Bytes capacity = 0;  // 0 = unlimited
  TimeSec peak_time = 0.0;  // first time the peak was resident
  bool oom = false;
};

struct IterationReport {
  TimeSec makespan = 0.0;
  std::string schedule;     // "dapple" / "gpipe"
  std::string replication;  // "split" / "round-robin"
  bool recompute = false;
  /// Stages that ran with activation recomputation (global flag or the
  /// plan's per-stage flags; see BuiltPipeline::stage_recompute).
  int recompute_stages = 0;
  /// Per-device memory cap the pipeline was built under (0 = none; the
  /// pools then carry the cluster's device memory).
  Bytes memory_cap = 0;
  int micro_batch_size = 0;
  int num_micro_batches = 0;
  int num_stages = 0;
  int num_devices = 0;  // devices hosting a stage

  /// Mean bubble_ratio over participating devices.
  double bubble_fraction = 0.0;
  double throughput = 0.0;  // samples / simulated second

  TimeSplit split;
  PhaseSplit phases;
  std::vector<DeviceReport> devices;
  std::vector<StageReport> stages;
  std::vector<LinkReport> links;
  std::vector<PoolReport> pools;

  Bytes max_peak_memory = 0;
  bool oom = false;

  /// Search stats of the planning run that produced this iteration's plan
  /// (thread count, subproblem decomposition, memo-cache traffic). Absent
  /// by default — attach via `attach_planner_stats` after a fresh planner
  /// run — so reports built from fixed plans (goldens) stay byte-identical.
  bool has_planner_stats = false;
  planner::PlannerSearchStats planner_stats;
  void attach_planner_stats(const planner::PlannerSearchStats& stats) {
    planner_stats = stats;
    has_planner_stats = true;
  }
};

/// Summarizes one executed iteration. Pure: reads the graph, records and
/// pools; feeds nothing back into the registry.
IterationReport BuildIterationReport(const runtime::BuiltPipeline& pipeline,
                                     const sim::SimResult& result);

/// Deterministic JSON document (see obs/json.h for formatting guarantees).
std::string ToJson(const IterationReport& report);

/// Writes the report as one JSON object into an existing writer, for
/// embedding in larger documents (bench blobs).
void WriteJson(JsonWriter& writer, const IterationReport& report);

/// Aligned-column text rendering for terminals.
std::string ToText(const IterationReport& report);

/// One point of the peak-memory-vs-M curve.
struct PeakVsMPoint {
  int num_micro_batches = 0;
  Bytes max_peak_memory = 0;
};

struct PeakVsMOptions {
  /// Worker threads for the per-point builds and simulations (1 = serial,
  /// 0 = hardware concurrency). The curve is byte-identical at every count.
  int sim_threads = 1;
  /// Skip simulating M points whose stash discipline provably repeats an
  /// already-simulated point: every point is still built, and two points
  /// with identical per-stage warmup depths and recompute flags (at the
  /// fixed micro-batch size) hold identical stash sets, so their peaks are
  /// equal and the later point reuses the earlier simulation. Flat-curve
  /// schedules (DAPPLE past warmup saturation) collapse to one simulation;
  /// growing curves (GPipe stashes all M) dedup nothing. Counters
  /// prefilter.peak_vs_m.{simulated,skipped} record the split; the curve's
  /// bytes never change (obs_report_test pins off == auto).
  bool prefilter = false;
};

/// Re-builds and re-simulates the pipeline at several micro-batch counts
/// (fixed micro-batch size) and records the worst device peak at each —
/// flat for DAPPLE (O(K)), linear for GPipe (O(M)).
std::vector<PeakVsMPoint> PeakVsMCurve(const model::ModelProfile& model,
                                       const topo::Cluster& cluster,
                                       const planner::ParallelPlan& plan,
                                       runtime::BuildOptions options,
                                       const std::vector<int>& micro_batch_counts,
                                       const PeakVsMOptions& curve_options);

/// Back-compat overload: `sim_threads` only, prefilter off.
std::vector<PeakVsMPoint> PeakVsMCurve(const model::ModelProfile& model,
                                       const topo::Cluster& cluster,
                                       const planner::ParallelPlan& plan,
                                       runtime::BuildOptions options,
                                       const std::vector<int>& micro_batch_counts,
                                       int sim_threads = 1);

}  // namespace dapple::obs
