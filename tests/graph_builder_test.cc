// Structural tests for the plan -> task-graph transformation (paper SV):
// task counts, dependency shape, warmup monotonicity, split vs round-robin
// replication, and memory effect wiring.
#include <gtest/gtest.h>

#include "common/error.h"
#include "model/zoo.h"
#include "planner/plan.h"
#include "runtime/graph_builder.h"
#include "sim/engine.h"
#include "topo/cluster.h"

namespace dapple::runtime {
namespace {

using model::MakeUniformSynthetic;
using planner::ParallelPlan;
using planner::StagePlan;
using topo::DeviceSet;

ParallelPlan MakePlan(const model::ModelProfile& m,
                      std::vector<std::pair<int, DeviceSet>> splits) {
  ParallelPlan plan;
  plan.model = m.name();
  int begin = 0;
  for (auto& [end, devices] : splits) {
    StagePlan s;
    s.layer_begin = begin;
    s.layer_end = end;
    s.devices = devices;
    plan.stages.push_back(s);
    begin = end;
  }
  return plan;
}

BuildOptions Opts(long gbs, ScheduleKind kind = ScheduleKind::kDapple) {
  BuildOptions o;
  o.global_batch_size = gbs;
  o.schedule.kind = kind;
  return o;
}

TEST(GraphBuilder, TaskCountUnreplicatedPipeline) {
  const auto m = MakeUniformSynthetic(4, 0.01, 0.02, 1_MiB, 1000, 1);
  const auto cluster = topo::MakeConfigB(2);
  const auto plan = MakePlan(m, {{2, DeviceSet::Range(0, 1)}, {4, DeviceSet::Range(1, 1)}});
  GraphBuilder builder(m, cluster, plan, Opts(8));
  const BuiltPipeline built = builder.Build();
  const int m_total = built.num_micro_batches;
  // Per micro-batch: 2 FW + 2 BW + 1 TXf + 1 TXb; plus 2 APPLY, no AR.
  EXPECT_EQ(built.graph.num_tasks(), m_total * 6 + 2);
  EXPECT_EQ(built.micro_batch_size * m_total, 8);
}

TEST(GraphBuilder, TaskCountReplicatedStage) {
  const auto m = MakeUniformSynthetic(4, 0.01, 0.02, 1_MiB, 1000, 1);
  const auto cluster = topo::MakeConfigA(1);
  const auto plan = MakePlan(m, {{2, DeviceSet::Range(0, 2)}, {4, DeviceSet::Range(2, 1)}});
  GraphBuilder builder(m, cluster, plan, Opts(8));
  const BuiltPipeline built = builder.Build();
  const int m_total = built.num_micro_batches;
  // Per micro-batch: 3 FW + 3 BW + 2 TX; plus 1 AR + 3 APPLY.
  EXPECT_EQ(built.graph.num_tasks(), m_total * 8 + 4);
}

TEST(GraphBuilder, RoundRobinAssignsWholeMicroBatches) {
  const auto m = MakeUniformSynthetic(2, 0.01, 0.02, 1_MiB, 1000, 1);
  const auto cluster = topo::MakeConfigA(1);
  const auto plan = MakePlan(m, {{1, DeviceSet::Range(0, 2)}, {2, DeviceSet::Range(2, 1)}});
  BuildOptions o = Opts(8);
  o.replication = ReplicationMode::kRoundRobin;
  o.micro_batch_size = 2;
  GraphBuilder builder(m, cluster, plan, o);
  const BuiltPipeline built = builder.Build();
  // 4 micro-batches: stage0 has ONE FW per micro-batch (not per replica).
  int fw_stage0 = 0;
  for (const auto& t : built.graph.tasks()) {
    if (t.kind == sim::TaskKind::kForward && t.stage == 0) ++fw_stage0;
  }
  EXPECT_EQ(fw_stage0, 4);
  // Alternating device assignment.
  for (const auto& t : built.graph.tasks()) {
    if (t.kind == sim::TaskKind::kForward && t.stage == 0) {
      EXPECT_EQ(t.device, t.microbatch % 2);
    }
  }
}

TEST(GraphBuilder, WarmupDepthsAreMonotoneNonIncreasing) {
  const auto bert = model::MakeBert48();
  const auto cluster = topo::MakeConfigB(4);
  const auto plan = MakePlan(bert, {{12, DeviceSet::Range(0, 1)},
                                    {24, DeviceSet::Range(1, 1)},
                                    {36, DeviceSet::Range(2, 1)},
                                    {48, DeviceSet::Range(3, 1)}});
  GraphBuilder builder(bert, cluster, plan, Opts(32));
  const BuiltPipeline built = builder.Build();
  ASSERT_EQ(built.warmup_depths.size(), 4u);
  for (std::size_t i = 1; i < built.warmup_depths.size(); ++i) {
    EXPECT_LE(built.warmup_depths[i], built.warmup_depths[i - 1]);
  }
  EXPECT_EQ(built.warmup_depths.back(), 1);
}

TEST(GraphBuilder, BuiltGraphsExecuteWithoutDeadlock) {
  // Cross product of schedules, policies and replication modes on a
  // replicated pipeline must all reach completion.
  const auto m = MakeUniformSynthetic(6, 0.01, 0.02, 1_MiB, 1000, 1);
  const auto cluster = topo::MakeConfigA(1);
  const auto plan = MakePlan(m, {{2, DeviceSet::Range(0, 2)},
                                 {4, DeviceSet::Range(2, 4)},
                                 {6, DeviceSet::Range(6, 2)}});
  for (auto kind : {ScheduleKind::kDapple, ScheduleKind::kGPipe}) {
    for (auto warmup : {WarmupPolicy::kPA, WarmupPolicy::kPB}) {
      for (auto mode : {ReplicationMode::kSplitMicroBatch, ReplicationMode::kRoundRobin}) {
        BuildOptions o = Opts(16, kind);
        o.schedule.warmup = warmup;
        o.replication = mode;
        GraphBuilder builder(m, cluster, plan, o);
        const BuiltPipeline built = builder.Build();
        EXPECT_NO_THROW(sim::Engine::Run(built.graph, built.engine_options))
            << ToString(kind) << "/" << ToString(warmup) << "/" << ToString(mode);
      }
    }
  }
}

TEST(GraphBuilder, MemoryEffectsBalance) {
  // Every byte a FW allocates is freed by its BW: pools end at baseline.
  const auto m = MakeUniformSynthetic(4, 0.01, 0.02, 1_MiB, 1000, 1);
  const auto cluster = topo::MakeConfigB(2);
  const auto plan = MakePlan(m, {{2, DeviceSet::Range(0, 1)}, {4, DeviceSet::Range(1, 1)}});
  for (bool recompute : {false, true}) {
    BuildOptions o = Opts(8);
    o.schedule.recompute = recompute;
    GraphBuilder builder(m, cluster, plan, o);
    const BuiltPipeline built = builder.Build();
    const sim::SimResult r = sim::Engine::Run(built.graph, built.engine_options);
    for (const auto& pool : r.pools) {
      EXPECT_EQ(pool.current(), pool.baseline());
    }
  }
}

TEST(GraphBuilder, RecomputeShrinksForwardStash) {
  const auto bert = model::MakeBert48();
  const auto cluster = topo::MakeConfigB(2);
  const auto plan = MakePlan(bert, {{24, DeviceSet::Range(0, 1)},
                                    {48, DeviceSet::Range(1, 1)}});
  BuildOptions plain = Opts(16);
  BuildOptions rc = Opts(16);
  rc.schedule.recompute = true;
  const BuiltPipeline b_plain = GraphBuilder(bert, cluster, plan, plain).Build();
  const BuiltPipeline b_rc = GraphBuilder(bert, cluster, plan, rc).Build();
  auto fw_alloc = [](const BuiltPipeline& b) {
    for (const auto& t : b.graph.tasks()) {
      if (t.kind == sim::TaskKind::kForward && t.stage == 1) return t.alloc_at_start;
    }
    return Bytes{0};
  };
  EXPECT_LT(fw_alloc(b_rc), fw_alloc(b_plain));
  EXPECT_GT(fw_alloc(b_rc), 0u);
}

TEST(GraphBuilder, PoolBaselinesHoldWeightsAndOptimizerState) {
  const auto bert = model::MakeBert48();
  const auto cluster = topo::MakeConfigB(2);
  const auto plan = MakePlan(bert, {{24, DeviceSet::Range(0, 1)},
                                    {48, DeviceSet::Range(1, 1)}});
  const BuiltPipeline built = GraphBuilder(bert, cluster, plan, Opts(16)).Build();
  EXPECT_EQ(built.engine_options.pool_baselines[0], bert.BaselineMemory(0, 24));
  EXPECT_EQ(built.engine_options.pool_baselines[1], bert.BaselineMemory(24, 48));
  EXPECT_EQ(built.engine_options.pool_capacities[0], cluster.device().memory);
}

TEST(GraphBuilder, AllReduceOnlyForReplicatedStages) {
  const auto m = MakeUniformSynthetic(4, 0.01, 0.02, 1_MiB, 1000, 1);
  const auto cluster = topo::MakeConfigA(1);
  const auto plan = MakePlan(m, {{2, DeviceSet::Range(0, 2)}, {4, DeviceSet::Range(2, 1)}});
  const BuiltPipeline built = GraphBuilder(m, cluster, plan, Opts(8)).Build();
  int ar_count = 0;
  for (const auto& t : built.graph.tasks()) {
    if (t.kind == sim::TaskKind::kAllReduce) {
      ++ar_count;
      EXPECT_EQ(t.stage, 0);
    }
  }
  EXPECT_EQ(ar_count, 1);
}

TEST(GraphBuilder, ExplicitMicroBatchSizeHonored) {
  const auto m = MakeUniformSynthetic(2, 0.01, 0.02, 0, 0, 1);
  const auto cluster = topo::MakeConfigB(2);
  const auto plan = MakePlan(m, {{1, DeviceSet::Range(0, 1)}, {2, DeviceSet::Range(1, 1)}});
  BuildOptions o = Opts(16);
  o.micro_batch_size = 2;
  const BuiltPipeline built = GraphBuilder(m, cluster, plan, o).Build();
  EXPECT_EQ(built.micro_batch_size, 2);
  EXPECT_EQ(built.num_micro_batches, 8);
}

TEST(GraphBuilder, RejectsZeroBatch) {
  const auto m = MakeUniformSynthetic(2, 0.01, 0.02, 0, 0, 1);
  const auto cluster = topo::MakeConfigB(2);
  const auto plan = MakePlan(m, {{2, DeviceSet::Range(0, 1)}});
  EXPECT_THROW(GraphBuilder(m, cluster, plan, Opts(0)), dapple::Error);
}

}  // namespace
}  // namespace dapple::runtime
