#include "sim/soa.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"

namespace dapple::sim {

namespace {

/// Packs (priority, id) into one unsigned key whose integer order equals
/// the lexicographic dispatch order: the signed priority is biased into the
/// high 32 bits, the (non-negative) task id fills the low 32.
inline std::uint64_t PackReadyKey(int priority, TaskId id) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(priority) ^ 0x80000000u)
          << 32) |
         static_cast<std::uint32_t>(id);
}

inline TaskId KeyTask(std::uint64_t key) {
  return static_cast<TaskId>(static_cast<std::uint32_t>(key));
}

}  // namespace

void SoaGraph::Assign(const TaskGraph& graph) {
  source_ = &graph;
  const int n = graph.num_tasks();
  num_tasks_ = n;
  num_resources_ = std::max(graph.num_resources(), 1);
  num_pools_ = graph.num_pools();

  const auto un = static_cast<std::size_t>(n);
  duration_.resize(un);
  resource_.resize(un);
  in_degree_.resize(un);
  is_compute_.resize(un);
  alloc_pool_.resize(un);
  free_pool_.resize(un);
  alloc_bytes_.resize(un);
  free_bytes_.resize(un);
  ready_key_.resize(un);
  succ_offsets_.resize(un + 1);

  std::size_t edges = 0;
  for (TaskId t = 0; t < n; ++t) edges += graph.successors(t).size();
  succ_.resize(edges);

  std::int32_t offset = 0;
  for (TaskId t = 0; t < n; ++t) {
    const Task& task = graph.task(t);
    const auto ut = static_cast<std::size_t>(t);
    duration_[ut] = task.duration;
    resource_[ut] = task.resource;
    in_degree_[ut] = graph.in_degree(t);
    is_compute_[ut] = IsComputeKind(task.kind) ? 1 : 0;
    alloc_pool_[ut] = task.pool >= 0 && task.alloc_at_start > 0 ? task.pool : -1;
    free_pool_[ut] = task.pool >= 0 && task.free_at_end > 0 ? task.pool : -1;
    alloc_bytes_[ut] = task.alloc_at_start;
    free_bytes_[ut] = task.free_at_end;
    ready_key_[ut] = PackReadyKey(task.priority, t);
    succ_offsets_[ut] = offset;
    for (TaskId s : graph.successors(t)) {
      succ_[static_cast<std::size_t>(offset++)] = s;
    }
  }
  succ_offsets_[un] = offset;
}

SimResult SoaEngine::Simulate(const SoaGraph& graph, const EngineOptions& options) {
  // Heap comparators are the reverse of the drain order (std::push_heap
  // builds max-heaps): lowest (time, key) / lowest key surfaces at front().
  auto completion_later = [](const Completion& a, const Completion& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.key > b.key;
  };
  auto ready_later = [](std::uint64_t a, std::uint64_t b) { return a > b; };

  const int n = graph.num_tasks();
  const int num_resources = graph.num_resources();
  const int num_pools = internal::NumPools(graph.num_pools(), options);

  SimResult result = internal::MakeResultShell(n, options, num_resources, num_pools);

  // Hot array bases, hoisted so the event loop indexes raw pointers instead
  // of re-reading vector headers through the graph reference.
  const TimeSec* const duration = graph.duration().data();
  const std::int32_t* const resource_of = graph.resource().data();
  const std::uint8_t* const is_compute = graph.is_compute().data();
  const std::int32_t* const alloc_pool = graph.alloc_pool().data();
  const std::int32_t* const free_pool = graph.free_pool().data();
  const Bytes* const alloc_bytes = graph.alloc_bytes().data();
  const Bytes* const free_bytes = graph.free_bytes().data();
  const std::uint64_t* const ready_key = graph.ready_key().data();
  const std::int32_t* const succ_offsets = graph.succ_offsets().data();
  const std::int32_t* const succ = graph.succ().data();

  // Re-arm the arena (capacity survives across runs).
  pending_ = graph.in_degree();
  profile_of_.assign(static_cast<std::size_t>(num_resources), nullptr);
  internal::IndexProfiles(options, num_resources, profile_of_);
  const bool any_profile = !options.resource_speeds.empty();
  if (ready_.size() < static_cast<std::size_t>(num_resources)) {
    ready_.resize(static_cast<std::size_t>(num_resources));
  }
  for (int r = 0; r < num_resources; ++r) ready_[static_cast<std::size_t>(r)].clear();
  busy_.assign(static_cast<std::size_t>(num_resources), 0);
  completions_.clear();
  wake_.clear();

  TaskRecord* const records = result.records.data();
  int executed = 0;
  TimeSec now = 0.0;

  auto start_task = [&](TaskId id) {
    const auto uid = static_cast<std::size_t>(id);
    const std::int32_t res = resource_of[uid];
    busy_[static_cast<std::size_t>(res)] = 1;
    TaskRecord& rec = records[uid];
    rec.id = id;
    rec.start = now;
    rec.started = true;
    if (!any_profile) {
      rec.end = now + duration[uid];
    } else {
      const ResourceSpeedProfile* profile = profile_of_[static_cast<std::size_t>(res)];
      rec.end = profile ? FinishTime(*profile, now, duration[uid]) : now + duration[uid];
    }
    const std::int32_t apool = alloc_pool[uid];
    if (apool >= 0) {
      result.pools[static_cast<std::size_t>(apool)].Allocate(now, alloc_bytes[uid]);
    }
    if (rec.end == std::numeric_limits<TimeSec>::infinity()) {
      // Pinned by a permanent zero-speed window: the resource stays
      // occupied, the task never completes, and its record stays
      // executed = false.
      return;
    }
    rec.executed = true;
    completions_.push_back({rec.end, ready_key[uid]});
    std::push_heap(completions_.begin(), completions_.end(), completion_later);
  };

  auto dispatch_resource = [&](std::int32_t r) {
    auto& queue = ready_[static_cast<std::size_t>(r)];
    if (busy_[static_cast<std::size_t>(r)] != 0 || queue.empty()) return;
    std::pop_heap(queue.begin(), queue.end(), ready_later);
    const TaskId next = KeyTask(queue.back());
    queue.pop_back();
    start_task(next);
  };

  auto enqueue_ready = [&](TaskId id) {
    const auto uid = static_cast<std::size_t>(id);
    auto& queue = ready_[static_cast<std::size_t>(resource_of[uid])];
    queue.push_back(ready_key[uid]);
    std::push_heap(queue.begin(), queue.end(), ready_later);
  };

  // Seed with all zero-indegree tasks.
  for (TaskId t = 0; t < n; ++t) {
    if (pending_[static_cast<std::size_t>(t)] == 0) enqueue_ready(t);
  }
  for (std::int32_t r = 0; r < num_resources; ++r) dispatch_resource(r);

  while (!completions_.empty()) {
    std::pop_heap(completions_.begin(), completions_.end(), completion_later);
    const Completion done = completions_.back();
    completions_.pop_back();
    now = done.time;
    const TaskId id = KeyTask(done.key);
    const auto uid = static_cast<std::size_t>(id);
    const std::int32_t res = resource_of[uid];

    ++executed;
    ResourceUsage& usage = result.resources[static_cast<std::size_t>(res)];
    if (usage.tasks_executed == 0) usage.first_start = records[uid].start;
    // With a speed profile the wall-clock occupancy differs from the work;
    // without one, use the duration directly to keep runs bit-exact with
    // the fixed-duration engines.
    const TimeSec elapsed =
        any_profile && profile_of_[static_cast<std::size_t>(res)] != nullptr
            ? done.time - records[uid].start
            : duration[uid];
    usage.busy += elapsed;
    if (is_compute[uid]) usage.compute_busy += elapsed;
    usage.last_end = now;
    usage.tasks_executed++;
    result.makespan = std::max(result.makespan, now);

    const std::int32_t fpool = free_pool[uid];
    if (fpool >= 0) {
      result.pools[static_cast<std::size_t>(fpool)].Free(now, free_bytes[uid]);
    }

    busy_[static_cast<std::size_t>(res)] = 0;

    // Only the freed resource and resources whose ready queue gained a task
    // can start something; dispatching is idempotent, so duplicates in the
    // wake list are harmless.
    wake_.clear();
    wake_.push_back(res);
    const std::int32_t succ_end = succ_offsets[uid + 1];
    for (std::int32_t e = succ_offsets[uid]; e < succ_end; ++e) {
      const TaskId s = succ[static_cast<std::size_t>(e)];
      if (--pending_[static_cast<std::size_t>(s)] == 0) {
        enqueue_ready(s);
        wake_.push_back(resource_of[static_cast<std::size_t>(s)]);
      }
    }
    for (const std::int32_t r : wake_) dispatch_resource(r);
  }

  if (executed != n) {
    if (options.allow_incomplete) {
      result.completed = false;
      result.tasks_unfinished = n - executed;
    } else {
      internal::ThrowDeadlock(graph.source(), result, executed);
    }
  }

  auto& metrics = obs::MetricsRegistry::Global();
  metrics.counter("sim.runs").Increment();
  metrics.counter("sim.soa_runs").Increment();
  metrics.counter("sim.tasks_executed").Increment(executed);
  metrics.histogram("sim.makespan").Observe(result.makespan);
  return result;
}

SimResult SoaEngine::SimulateGraph(const TaskGraph& graph, const EngineOptions& options) {
  scratch_.Assign(graph);
  return Simulate(scratch_, options);
}

SimResult SoaEngine::Run(const TaskGraph& graph, const EngineOptions& options) {
  thread_local SoaEngine engine;
  return engine.SimulateGraph(graph, options);
}

}  // namespace dapple::sim
