// Model profiles: the per-layer statistics the DAPPLE profiler extracts
// (paper Fig. 1 — compute times, activation sizes, parameter sizes). A
// ModelProfile is the planner's only view of a model, so reproducing the
// paper's planning decisions reduces to calibrating these vectors against
// every quantitative statement in the paper (see model/zoo.cc).
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace dapple::model {

/// Optimizer choice; determines the always-resident bytes per parameter
/// (fp32 weight + gradient + optimizer slots), matching Table VIII's
/// "16 bytes per parameter with Adam".
enum class OptimizerKind { kSGD, kAdam, kRMSProp };

const char* ToString(OptimizerKind kind);

/// Resident bytes per parameter: weight+grad (8) plus 0/1/2 fp32 slots.
Bytes OptimizerBytesPerParam(OptimizerKind kind);

/// Per-layer statistics measured at the profile micro-batch size.
/// Compute times split into a fixed launch/overhead part and a part that
/// scales linearly with the number of samples; the fixed part is what makes
/// very small per-replica slices inefficient (the paper's Fig. 8 "tail
/// effect" and its advice to keep micro-batches large enough).
struct LayerProfile {
  std::string name;
  /// Variable forward time at the profile micro-batch size.
  TimeSec forward_time = 0.0;
  /// Variable backward time at the profile micro-batch size.
  TimeSec backward_time = 0.0;
  /// Per-invocation fixed overhead (kernel launches, framework).
  TimeSec fixed_overhead = 0.0;
  /// Bytes of activation handed to the next layer (at profile micro-batch).
  Bytes output_activation = 0;
  /// Bytes of activation state this layer keeps live until its backward
  /// pass (at profile micro-batch).
  Bytes activation_memory = 0;
  /// Number of trainable parameters.
  std::uint64_t param_count = 0;
};

/// Immutable profiled model: an ordered layer list plus the micro-batch
/// size the numbers were measured at. All query methods take a `samples`
/// argument — the number of examples one device processes per task — and
/// scale the variable parts linearly from the profile micro-batch.
class ModelProfile {
 public:
  ModelProfile(std::string name, std::vector<LayerProfile> layers, int profile_micro_batch,
               OptimizerKind optimizer);

  const std::string& name() const { return name_; }
  int num_layers() const { return static_cast<int>(layers_.size()); }
  const LayerProfile& layer(int i) const;
  const std::vector<LayerProfile>& layers() const { return layers_; }
  int profile_micro_batch() const { return profile_micro_batch_; }
  OptimizerKind optimizer() const { return optimizer_; }

  /// Total trainable parameters of layers [begin, end).
  std::uint64_t ParamCount(int begin, int end) const;
  std::uint64_t TotalParamCount() const { return ParamCount(0, num_layers()); }

  /// fp32 parameter bytes of layers [begin, end) — the AllReduce volume.
  Bytes ParamBytes(int begin, int end) const;
  Bytes TotalParamBytes() const { return ParamBytes(0, num_layers()); }

  /// Resident bytes for weights+grads+optimizer state of layers [begin,end).
  Bytes BaselineMemory(int begin, int end) const;

  /// Forward compute time of layers [begin, end) for `samples` examples on
  /// a device of `relative_speed` (1.0 = profiling device).
  TimeSec ForwardTime(int begin, int end, double samples, double relative_speed = 1.0) const;

  /// Backward analogue of ForwardTime.
  TimeSec BackwardTime(int begin, int end, double samples, double relative_speed = 1.0) const;

  /// Activation bytes crossing the boundary after layer `boundary-1` (i.e.
  /// the input to layer `boundary`), for `samples` examples. Boundary 0 is
  /// the model input and is never transferred; boundary num_layers() is the
  /// loss and carries nothing.
  Bytes ActivationAt(int boundary, double samples) const;

  /// Activation state layers [begin, end) keep live between their forward
  /// and backward passes, for `samples` examples.
  Bytes ActivationMemory(int begin, int end, double samples) const;

  /// Activation state kept when re-computation is on: one checkpoint per
  /// layer (its input activation); everything between checkpoints is
  /// recomputed block-by-block during backward, so only these boundaries
  /// stay resident per in-flight micro-batch.
  Bytes CheckpointMemory(int begin, int end, double samples) const;

  /// Largest single layer's activation state in [begin, end) — the
  /// transient working set while re-computation replays one layer block.
  Bytes MaxLayerActivationMemory(int begin, int end, double samples) const;

 private:
  void CheckRange(int begin, int end) const;
  double Scale(double samples) const;

  std::string name_;
  std::vector<LayerProfile> layers_;
  int profile_micro_batch_;
  OptimizerKind optimizer_;
  // Prefix sums for O(1) range queries; index i covers layers [0, i).
  std::vector<std::uint64_t> param_prefix_;
  std::vector<double> fwd_prefix_;
  std::vector<double> bwd_prefix_;
  std::vector<double> overhead_prefix_;
  std::vector<double> act_mem_prefix_;
};

}  // namespace dapple::model
